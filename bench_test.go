package jrsnd

// Benchmark harness: one benchmark per paper artifact (Table I and every
// figure of §VI-B), micro-benchmarks for the hot substrate operations, and
// ablation benches for the design choices called out in DESIGN.md §6.
//
// Figure benches run the full n=2000 Monte-Carlo campaign at Runs=1 per
// iteration (the paper's 100-run averages are produced by cmd/jrsnd-sim);
// besides wall-clock time they report the headline measured quantity via
// b.ReportMetric so bench output doubles as a quick reproduction check.

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/chips"
	"repro/internal/codepool"
	"repro/internal/core"
	"repro/internal/dsss"
	"repro/internal/experiment"
	"repro/internal/field"
	"repro/internal/ibc"
	"repro/internal/metrics"
	"repro/internal/rs"
	"repro/internal/trace"
)

func benchSweep(b *testing.B) experiment.SweepConfig {
	b.Helper()
	return experiment.SweepConfig{
		Runs:   1,
		Seed:   1,
		Jammer: experiment.JamReactive,
	}
}

func reportLast(b *testing.B, fig experiment.Figure, label, unit string) {
	b.Helper()
	for _, s := range fig.Series {
		if s.Label == label && len(s.Y) > 0 {
			b.ReportMetric(s.Y[len(s.Y)-1], unit)
			return
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiment.Table1()
		if len(fig.Series) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig2a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Fig2a(benchSweep(b))
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, fig, "JR-SND (sim)", "P@m=200")
	}
}

func BenchmarkFig2b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Fig2b(benchSweep(b))
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, fig, "JR-SND T̄ = max", "s@m=200")
	}
}

func BenchmarkFig3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Fig3a(benchSweep(b))
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, fig, "JR-SND (sim)", "P@l=160")
	}
}

func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Fig3b(benchSweep(b))
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, fig, "JR-SND (sim)", "P@n=4000")
	}
}

func BenchmarkFig4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Fig4(benchSweep(b), 40)
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, fig, "JR-SND (sim)", "P@q=100")
	}
}

func BenchmarkFig4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Fig4(benchSweep(b), 20)
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, fig, "JR-SND (sim)", "P@q=100")
	}
}

func BenchmarkFig5a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Fig5a(benchSweep(b))
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, fig, "JR-SND (sim)", "P@nu=8")
	}
}

func BenchmarkFig5b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Fig5b(benchSweep(b))
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, fig, "JR-SND T̄ = max", "s@nu=8")
	}
}

func BenchmarkDSSSValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.DSSSValidation(1, 5)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkDoSExperiment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.DoSExperiment(1, 10)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// --- Ablation benches (DESIGN.md §6) ---

// ablationPoint measures P̂_D with a strong random jammer.
func ablationPoint(b *testing.B, disableRedundancy bool) float64 {
	b.Helper()
	p := analysis.Defaults()
	p.N = 400
	p.L = 20
	p.Q = 40
	p.Z = 30
	p.FieldWidth, p.FieldHeight = 2250, 2250
	m, err := experiment.MeasurePoint(experiment.PointConfig{
		Params:            p,
		Jammer:            experiment.JamRandom,
		Runs:              3,
		Seed:              1,
		DisableRedundancy: disableRedundancy,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m.PD
}

func BenchmarkAblationRedundancyOn(b *testing.B) {
	var pd float64
	for i := 0; i < b.N; i++ {
		pd = ablationPoint(b, false)
	}
	b.ReportMetric(pd, "P_D")
}

func BenchmarkAblationRedundancyOff(b *testing.B) {
	var pd float64
	for i := 0; i < b.N; i++ {
		pd = ablationPoint(b, true)
	}
	b.ReportMetric(pd, "P_D")
}

func dosAblation(b *testing.B, gamma int) float64 {
	b.Helper()
	p := analysis.Defaults()
	p.N = 12
	p.M = 6
	p.L = 12
	p.Q = 0
	p.Gamma = gamma
	p.FieldWidth, p.FieldHeight = 1000, 1000
	positions := make([]field.Point, p.N)
	for i := range positions {
		positions[i] = field.Point{X: 100 + float64(i%4)*50, Y: 100 + float64(i/4)*50}
	}
	net, err := core.NewNetwork(core.NetworkConfig{
		Params:    p,
		Seed:      1,
		Jammer:    core.JamNone,
		Positions: positions,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := net.Compromise([]int{p.N - 1}); err != nil {
		b.Fatal(err)
	}
	report, err := net.RunDoSAttack(p.N-1, 20)
	if err != nil {
		b.Fatal(err)
	}
	return float64(report.MACVerifications)
}

func BenchmarkAblationRevocationOn(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		v = dosAblation(b, 5)
	}
	b.ReportMetric(v, "verifications")
}

func BenchmarkAblationRevocationOff(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		v = dosAblation(b, 1<<20)
	}
	b.ReportMetric(v, "verifications")
}

// --- Substrate micro-benchmarks ---

func BenchmarkCorrelate512(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	u := chips.NewRandom(rng, 512)
	v := chips.NewRandom(rng, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chips.Correlate(u, v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCorrelateAt512(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	code := chips.NewRandom(rng, 512)
	buf := make([]int32, 4096)
	for i := range buf {
		buf[i] = int32(rng.Intn(3) - 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chips.CorrelateAt(code, buf, i%(len(buf)-512))
	}
}

func BenchmarkSpread(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	code := chips.NewRandom(rng, 512)
	bits := dsss.BytesToBits(make([]byte, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsss.Spread(bits, code); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSlidingWindowSync(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	codes := make([]chips.Sequence, 8)
	for i := range codes {
		codes[i] = chips.NewRandom(rng, 512)
	}
	msg := dsss.BytesToBits([]byte{0xAA, 0x55})
	sig, err := dsss.Spread(msg, codes[5])
	if err != nil {
		b.Fatal(err)
	}
	ch, err := dsss.NewChannel(2000 + sig.Len())
	if err != nil {
		b.Fatal(err)
	}
	ch.Add(sig, 1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsss.Synchronize(ch.Samples(), codes, 0.15, len(msg)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSEncode(b *testing.B) {
	codec, err := rs.NewCodec(1.0)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 25)
	rand.New(rand.NewSource(5)).Read(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSDecodeWithErasures(b *testing.B) {
	codec, err := rs.NewCodec(1.0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	msg := make([]byte, 25)
	rng.Read(msg)
	enc, err := codec.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	erasures := rng.Perm(len(enc))[:len(enc)/3]
	for _, e := range erasures {
		enc[e] ^= 0x5A
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Decode(enc, len(msg), erasures); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreDistribution2000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := codepool.New(codepool.Config{
			N: 2000, M: 100, L: 40,
			Rand: rand.New(rand.NewSource(int64(i))),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSharedCodes(b *testing.B) {
	pool, err := codepool.New(codepool.Config{
		N: 2000, M: 100, L: 40, Rand: rand.New(rand.NewSource(7)),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Shared(i%2000, (i+1)%2000)
	}
}

func BenchmarkBlomSharedKey(b *testing.B) {
	auth, err := ibc.NewAuthority(ibc.AuthorityConfig{Rand: rand.New(rand.NewSource(8))})
	if err != nil {
		b.Fatal(err)
	}
	key, err := auth.Issue(1, rand.New(rand.NewSource(9)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key.SharedKey(ibc.NodeID(i%60000 + 2))
	}
}

func BenchmarkIDSignVerify(b *testing.B) {
	auth, err := ibc.NewAuthority(ibc.AuthorityConfig{Rand: rand.New(rand.NewSource(10))})
	if err != nil {
		b.Fatal(err)
	}
	key, err := auth.Issue(1, rand.New(rand.NewSource(11)))
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("m-ndp request")
	sig := key.Sign(msg)
	root := auth.RootPublicKey()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ibc.Verify(root, 1, msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionCodeDerivation(b *testing.B) {
	var key [32]byte
	key[0] = 7
	nA := []byte{1, 2, 3}
	nB := []byte{4, 5, 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ibc.SessionCode(key, nA, nB, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNDPRoundEventSim(b *testing.B) {
	// Full event-driven D-NDP over a 40-node cluster.
	p := analysis.Defaults()
	p.N = 40
	p.M = 12
	p.L = 10
	p.Q = 0
	p.FieldWidth, p.FieldHeight = 1200, 1200
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := core.NewNetwork(core.NetworkConfig{
			Params: p,
			Seed:   int64(i),
			Jammer: core.JamReactive,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := net.RunDNDP(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineUFHSimulation(b *testing.B) {
	u := baseline.DefaultUFH()
	rng := rand.New(rand.NewSource(12))
	var last float64
	for i := 0; i < b.N; i++ {
		last = u.SimulateEstablishment(rng)
	}
	b.ReportMetric(last, "s/establishment")
}

func BenchmarkChipLevelExchange(b *testing.B) {
	// One complete chip-level frame round trip (transmit + scan + decode)
	// at the paper's N=512.
	rng := rand.New(rand.NewSource(13))
	frame, err := dsss.NewFrame(1.0, 0.15)
	if err != nil {
		b.Fatal(err)
	}
	code := chips.NewRandom(rng, 512)
	msg := []byte("HELLO:A")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig, err := frame.Transmit(msg, code)
		if err != nil {
			b.Fatal(err)
		}
		ch, err := dsss.NewChannel(sig.Len() + 600)
		if err != nil {
			b.Fatal(err)
		}
		ch.Add(sig, 300)
		if _, _, _, err := frame.ReceiveScan(ch.Samples(), []chips.Sequence{code}, len(msg)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrossCheck(b *testing.B) {
	p := analysis.Defaults()
	p.N = 150
	p.L = 15
	p.Q = 3
	p.M = 20
	p.FieldWidth, p.FieldHeight = 1370, 1370
	var res experiment.CrossCheckResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.CrossCheck(p, 2, int64(i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.EventPD, "P_D(event)")
	b.ReportMetric(res.CampaignPD, "P_D(campaign)")
}

func BenchmarkRunEpochsMobility(b *testing.B) {
	p := analysis.Defaults()
	p.N = 30
	p.M = 6
	p.L = 10
	p.Q = 0
	p.FieldWidth, p.FieldHeight = 900, 900
	for i := 0; i < b.N; i++ {
		deploy, err := field.New(p.FieldWidth, p.FieldHeight)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(i)))
		positions := deploy.PlaceUniform(rng, p.N)
		mob, err := field.NewWaypoint(field.WaypointConfig{
			Field: deploy, MinSpeed: 5, MaxSpeed: 15, Rand: rng,
		}, positions)
		if err != nil {
			b.Fatal(err)
		}
		net, err := core.NewNetwork(core.NetworkConfig{
			Params: p, Seed: int64(i), Jammer: core.JamReactive, Positions: positions,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := net.RunEpochs(core.EpochConfig{
			Mobility: mob, StepSeconds: 30, Epochs: 2, Window: 1, MNDP: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignSingleRun2000(b *testing.B) {
	// One full n=2000 campaign run (the unit of every figure point).
	p := analysis.Defaults()
	for i := 0; i < b.N; i++ {
		m, err := experiment.MeasurePoint(experiment.PointConfig{
			Params: p,
			Jammer: experiment.JamReactive,
			Runs:   1,
			Seed:   int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if m.PHat < 0 || m.PHat > 1 {
			b.Fatal("nonsense measurement")
		}
	}
}

// Observability micro-benches: the instrumentation contract is that an
// *uninstrumented* hot path (nil registry handles, nil trace sink) costs
// under 100 ns/op — effectively one pointer check — so metrics and tracing
// can stay compiled into every protocol path.

func BenchmarkMetricsEmit(b *testing.B) {
	b.Run("nil-handles", func(b *testing.B) {
		var c *metrics.Counter
		var h *metrics.Histogram
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
			h.Observe(float64(i))
		}
	})
	b.Run("live", func(b *testing.B) {
		reg := metrics.New()
		c := reg.Counter("bench_total", "bench counter")
		h := reg.Histogram("bench_hist", "bench histogram", metrics.ExponentialBounds(1, 2, 16))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
			h.Observe(float64(i % 65536))
		}
	})
}

func BenchmarkRecorderEmit(b *testing.B) {
	ev := trace.Event{At: 1, Kind: trace.KindTx, Node: 1, Peer: 2, Detail: "bench"}
	b.Run("nil-recorder", func(b *testing.B) {
		var r *trace.Recorder
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Emit(ev)
		}
	})
	b.Run("live", func(b *testing.B) {
		r, err := trace.NewRecorder(1024)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Emit(ev)
		}
	})
}
