// Command jrsnd-dsss is a chip-level DSSS inspector: it spreads a message
// with a pseudorandom code, optionally jams part of the frame with the
// correct code (the strongest attack) and with a foreign code (which the
// correlation receiver shrugs off), then shows synchronization and
// de-spreading step by step.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/analysis"
	"repro/internal/chips"
	"repro/internal/dsss"
)

func main() {
	var (
		msg     = flag.String("msg", "HELLO:A", "message to transmit")
		seed    = flag.Int64("seed", 1, "random seed")
		jamFrac = flag.Float64("jam", 0.3, "fraction of the frame to jam with the correct code")
		foreign = flag.Bool("foreign", true, "also superimpose a foreign-code transmission")
		offset  = flag.Int("offset", 700, "chip offset of the frame in the receive buffer")
	)
	flag.Parse()
	if err := run(*msg, *seed, *jamFrac, *foreign, *offset); err != nil {
		fmt.Fprintln(os.Stderr, "jrsnd-dsss:", err)
		os.Exit(1)
	}
}

func run(msg string, seed int64, jamFrac float64, foreign bool, offset int) error {
	if jamFrac < 0 || jamFrac > 1 {
		return fmt.Errorf("jam fraction %v out of [0,1]", jamFrac)
	}
	if offset < 0 {
		return fmt.Errorf("offset %d must be >= 0", offset)
	}
	p := analysis.Defaults()
	rng := rand.New(rand.NewSource(seed))

	frame, err := dsss.NewFrame(p.Mu, p.Tau)
	if err != nil {
		return err
	}
	code := chips.NewRandom(rng, p.ChipLen)
	fmt.Printf("spread code:      N=%d chips, τ=%.2f, μ=%.0f (tolerates %.0f%% jamming)\n",
		p.ChipLen, p.Tau, p.Mu, 100*p.Mu/(1+p.Mu))
	fmt.Printf("message:          %q (%d bytes → %d coded bits → %d chips on air)\n",
		msg, len(msg), frame.EncodedBits(len(msg)), frame.AirtimeChips(len(msg), p.ChipLen))

	signal, err := frame.Transmit([]byte(msg), code)
	if err != nil {
		return err
	}
	ch, err := dsss.NewChannel(offset + signal.Len() + 2000)
	if err != nil {
		return err
	}
	ch.Add(signal, offset)

	if foreign {
		other := chips.NewRandom(rng, p.ChipLen)
		otherSig, err := frame.Transmit([]byte("NOISE-NEIGHBOR"), other)
		if err != nil {
			return err
		}
		ch.Add(otherSig, 0)
		fmt.Println("channel:          + concurrent foreign-code transmission (negligible interference)")
	}
	if jamFrac > 0 {
		// A reactive jammer needs time to identify the code, so it hits
		// the tail of the frame.
		jamChips := int(jamFrac * float64(signal.Len()))
		from := signal.Len() - jamChips
		ch.AddInverted(signal.Slice(from, signal.Len()), offset+from)
		fmt.Printf("channel:          + same-code jamming over the trailing %.0f%% of the frame\n", 100*jamFrac)
	}

	got, _, lockedAt, err := frame.ReceiveScan(ch.Samples(), []chips.Sequence{code}, len(msg))
	if err != nil {
		fmt.Printf("de-spread:        FAILED (%v) — jamming above the ECC budget\n", err)
		return nil
	}
	fmt.Printf("synchronization:  frame locked at chip offset %d (expected %d)\n", lockedAt, offset)
	fmt.Printf("de-spread:        %q\n", got)
	if string(got) == msg {
		fmt.Println("result:           message recovered exactly")
	} else {
		fmt.Println("result:           CORRUPTED (should not happen within the budget)")
	}
	return nil
}
