package main

import "testing"

func TestRunSurvivesSubBudgetJam(t *testing.T) {
	if err := run("HELLO:A", 1, 0.3, true, 700); err != nil {
		t.Fatal(err)
	}
}

func TestRunFailsGracefullyAboveBudget(t *testing.T) {
	// Above the ECC budget run() reports the failure but returns nil (the
	// outcome is the demonstration).
	if err := run("HELLO:A", 1, 0.7, false, 100); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("x", 1, -0.1, false, 0); err == nil {
		t.Fatal("accepted negative jam fraction")
	}
	if err := run("x", 1, 1.5, false, 0); err == nil {
		t.Fatal("accepted jam fraction > 1")
	}
	if err := run("x", 1, 0, false, -3); err == nil {
		t.Fatal("accepted negative offset")
	}
}
