package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestSeededFixturesExit1 is the analyzer liveness gate `make
// lint-fixtures` runs: each seeded-violation fixture must fail the lint
// (exit 1) with at least the expected number of findings for its check.
// A broken analyzer that reports nothing fails here instead of passing
// the repo-wide lint silently.
func TestSeededFixturesExit1(t *testing.T) {
	cases := []struct {
		check       string
		dir         string
		minFindings int
	}{
		// Leaked goroutines: inline, via named function, Done without Add.
		{"goroutinelifecycle", "../../internal/lint/testdata/goroutinelifecycle=repro/internal/transport/gltest", 3},
		// The AB/BA cycle and the reentrant double-lock.
		{"lockorder", "../../internal/lint/testdata/lockorder=repro/internal/authd/lotest", 2},
		// The allocating //jrsnd:hotpath callee, one finding per construct.
		{"hotpathalloc", "../../internal/lint/testdata/hotpathalloc=repro/internal/dsss/hptest", 7},
	}
	for _, tc := range cases {
		t.Run(tc.check, func(t *testing.T) {
			var out, errw bytes.Buffer
			code := run([]string{"-json", "-checks", tc.check, "-dir", tc.dir},
				strings.NewReader(""), &out, &errw)
			if code != 1 {
				t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
			}
			var res lint.Result
			if err := json.NewDecoder(&out).Decode(&res); err != nil {
				t.Fatalf("decode -json output: %v", err)
			}
			got := 0
			for _, d := range res.Findings {
				if d.Check == tc.check {
					got++
				}
			}
			if got < tc.minFindings {
				t.Errorf("findings for %s = %d, want >= %d: %+v", tc.check, got, tc.minFindings, res.Findings)
			}
			if len(res.Suppressed) == 0 {
				t.Errorf("fixture should also exercise //jrsnd:allow %s suppression", tc.check)
			}
		})
	}
}

// TestDirFlagUsage pins the <path>=<importpath> syntax.
func TestDirFlagUsage(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-dir", "nosuchseparator"}, strings.NewReader(""), &out, &errw); code != 2 {
		t.Errorf("exit = %d, want 2 for malformed -dir", code)
	}
	if !strings.Contains(errw.String(), "<path>=<importpath>") {
		t.Errorf("usage hint missing: %q", errw.String())
	}
}
