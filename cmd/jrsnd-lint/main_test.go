package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunCleanRepo is the CLI-level acceptance check: the shipped tree
// lints clean with exit 0, and the stderr summary is the one-liner the
// Makefile surfaces.
func TestRunCleanRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var out, errw bytes.Buffer
	code := run([]string{"./..."}, strings.NewReader(""), &out, &errw)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if !strings.Contains(errw.String(), "jrsnd-lint: clean") {
		t.Errorf("summary line missing from stderr: %q", errw.String())
	}
}

func TestRunUnknownCheck(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-checks", "nosuch", "./..."}, strings.NewReader(""), &out, &errw); code != 2 {
		t.Errorf("exit = %d, want 2 for unknown check", code)
	}
}

// TestSummarize pins the -json | -summarize pipeline the Makefile runs.
func TestSummarize(t *testing.T) {
	dirty := `{"packages": 3, "findings": [{"check":"wallclock","file":"x.go","line":1,"col":1,"message":"m"}], "suppressed": []}`
	var out, errw bytes.Buffer
	if code := run([]string{"-summarize"}, strings.NewReader(dirty), &out, &errw); code != 1 {
		t.Errorf("exit = %d, want 1 for findings", code)
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(out.String(), "1 findings") {
		t.Errorf("summary = %q", out.String())
	}

	clean := `{"packages": 3, "findings": [], "suppressed": [{"check":"wallclock","file":"y.go","line":2,"col":2,"message":"m","reason":"r r"}]}`
	out.Reset()
	errw.Reset()
	if code := run([]string{"-summarize"}, strings.NewReader(clean), &out, &errw); code != 0 {
		t.Errorf("exit = %d, want 0 for clean", code)
	}
	if !strings.Contains(out.String(), "clean") || !strings.Contains(out.String(), "1 suppressed") {
		t.Errorf("summary = %q", out.String())
	}

	if code := run([]string{"-summarize"}, strings.NewReader("not json"), &out, &errw); code != 2 {
		t.Errorf("exit = %d, want 2 for bad JSON", code)
	}
}
