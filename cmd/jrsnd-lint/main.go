// jrsnd-lint runs the repo's invariant analyzers (internal/lint) over a
// set of packages and fails the build on any unsuppressed finding.
//
//	jrsnd-lint ./...                 # human-readable findings, exit 1 if any
//	jrsnd-lint -json ./...           # full Result as JSON on stdout
//	jrsnd-lint -checks wallclock,globalrand ./internal/core
//	jrsnd-lint -summarize < lint.json  # one-line verdict from a -json run
//	jrsnd-lint -dir testdata/x=repro/internal/authd/xtest  # fixture mode:
//	    load one directory under a chosen import path (go list skips
//	    testdata, and analyzer scoping keys on the import path)
//
// Exit codes: 0 clean (suppressions are fine), 1 findings, 2 usage or
// load failure. See docs/static-analysis.md for the invariants and the
// //jrsnd:allow directive grammar.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("jrsnd-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the full result as JSON on stdout")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	dirMode := fs.String("dir", "", "fixture mode: load one directory as <path>=<importpath> instead of package patterns")
	summarize := fs.Bool("summarize", false, "read a -json result from stdin and print the one-line verdict")
	verbose := fs.Bool("v", false, "also print suppressed findings with their directive reasons")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *summarize {
		var res lint.Result
		if err := json.NewDecoder(stdin).Decode(&res); err != nil {
			fmt.Fprintf(stderr, "jrsnd-lint: -summarize: bad JSON on stdin: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout, lint.Summary(res))
		if len(res.Findings) > 0 {
			return 1
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintf(stderr, "jrsnd-lint: %v\n", err)
		return 2
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "jrsnd-lint: %v\n", err)
		return 2
	}
	var pkgs []*lint.Package
	if *dirMode != "" {
		dir, asPath, ok := strings.Cut(*dirMode, "=")
		if !ok || dir == "" || asPath == "" {
			fmt.Fprintln(stderr, "jrsnd-lint: -dir wants <path>=<importpath>")
			return 2
		}
		pkg, err := loader.LoadDir(dir, asPath)
		if err != nil {
			fmt.Fprintf(stderr, "jrsnd-lint: %v\n", err)
			return 2
		}
		pkgs = []*lint.Package{pkg}
	} else {
		pkgs, err = loader.LoadPatterns(fs.Args()...)
		if err != nil {
			fmt.Fprintf(stderr, "jrsnd-lint: %v\n", err)
			return 2
		}
	}

	res := lint.Run(pkgs, analyzers)
	if *jsonOut {
		// JSON mode leaves the verdict to the consumer (e.g. a piped
		// -summarize) instead of double-printing it on stderr.
		if err := lint.JSON(stdout, res, loader.ModuleRoot); err != nil {
			fmt.Fprintf(stderr, "jrsnd-lint: %v\n", err)
			return 2
		}
	} else {
		lint.Human(stdout, res, loader.ModuleRoot, *verbose)
		fmt.Fprintln(stderr, lint.Summary(res))
	}
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers resolves a -checks list against the suite.
func selectAnalyzers(csv string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if csv == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (have: %s)", name, names(all))
		}
		out = append(out, a)
	}
	return out, nil
}

func names(as []*lint.Analyzer) string {
	var ns []string
	for _, a := range as {
		ns = append(ns, a.Name)
	}
	return strings.Join(ns, ", ")
}
