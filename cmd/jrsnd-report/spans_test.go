package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/trace"
)

// traceOneChaosCell runs one cell of the chaos fault matrix with span
// tracing and returns the directory holding its JSONL trace — the same
// shape `jrsnd-sim -chaos -trace-jsonl <dir>` produces.
func traceOneChaosCell(t *testing.T, cell faults.Cell) string {
	t.Helper()
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "cell.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	jw := trace.NewJSONLWriter(f)
	res, err := faults.RunCellTraced(cell, 1, jw)
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("chaos cell %s failed under tracing: %+v", cell.Name, res)
	}
	return dir
}

// TestSpanReportFromChaosRun is the acceptance path of the observability
// issue: a chaos-matrix cell's span trace must reconstruct per-handshake
// critical paths into a per-phase latency breakdown plus a
// flamegraph-compatible folded-stack export.
func TestSpanReportFromChaosRun(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos cell is slow")
	}
	// The adversarial cell exercises the deepest pipeline: jamming forces
	// retries, so attempts, sweeps, and verify phases all appear.
	dir := traceOneChaosCell(t, faults.Cell{Name: "jam=sweep/churn=false/loss=0.00", Jammer: core.JamSweep})

	out := filepath.Join(t.TempDir(), "spans.md")
	folded := filepath.Join(t.TempDir(), "flame.folded")
	if err := run(1, 1, 0, out, nil, []string{dir}, folded, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "## Span traces") {
		t.Fatalf("missing Span traces section:\n%s", text)
	}
	// Per-phase latency breakdown over the handshake pipeline.
	for _, phase := range []string{"`sim.run`", "`dndp.attempt`", "`dndp.hello_sweep`"} {
		if !strings.Contains(text, phase) {
			t.Fatalf("phase table missing %s:\n%s", phase, text)
		}
	}
	// At least one handshake's critical path, phase by phase.
	if !strings.Contains(text, "Critical path of the slowest completed handshake") {
		t.Fatalf("missing critical-path reconstruction:\n%s", text)
	}

	fdata, err := os.ReadFile(folded)
	if err != nil {
		t.Fatal(err)
	}
	ftext := string(fdata)
	if !strings.Contains(ftext, "sim.run;dndp.attempt") {
		t.Fatalf("folded stacks missing the attempt path:\n%s", ftext)
	}
	for _, line := range strings.Split(strings.TrimSpace(ftext), "\n") {
		if !strings.Contains(line, " ") {
			t.Fatalf("malformed folded line %q", line)
		}
	}
}

// TestSpanReportWarnsOnTruncatedTrace: orphaned span ends (the start fell
// out of a bounded recorder) must surface as an explicit warning.
func TestSpanReportWarnsOnTruncatedTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "truncated.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	jw := trace.NewJSONLWriter(f)
	// An end without its start: the signature of a ring-evicted head.
	jw.Emit(trace.Event{At: 1.5, Kind: trace.KindSpanEnd, Node: 0, Peer: 1, Span: 42})
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out := filepath.Join(dir, "out.md")
	if err := run(1, 1, 0, out, nil, []string{path}, "", true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "WARNING") || !strings.Contains(string(data), "truncated") {
		t.Fatalf("no truncation warning for an orphaned span end:\n%s", data)
	}
}

func TestExpandTracePathsRejectsEmptyDir(t *testing.T) {
	if _, err := expandTracePaths([]string{t.TempDir()}); err == nil {
		t.Fatal("accepted a directory with no trace files")
	}
	if _, err := expandTracePaths([]string{"/nonexistent/trace.jsonl"}); err == nil {
		t.Fatal("accepted a missing path")
	}
}
