// Command jrsnd-report runs the complete reproduction — every paper figure
// plus the validation experiments — checks the paper's qualitative claims
// against the measurements, and writes a Markdown report.
//
// Usage:
//
//	jrsnd-report -runs 20 -o report.md
//	jrsnd-report -runs 100 -seed 7 -n 2000    # paper-fidelity pass
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/experiment"
	"repro/internal/metrics"
)

func main() {
	var (
		runs   = flag.Int("runs", 20, "Monte-Carlo runs per parameter point")
		seed   = flag.Int64("seed", 1, "base random seed")
		n      = flag.Int("n", 0, "override node count (0 = Table I default)")
		out    = flag.String("o", "", "output file (default stdout)")
		mfiles = flag.String("metrics", "", "comma-separated metric snapshots (from jrsnd-sim -metrics, JSON or Prometheus text) to merge into a Telemetry section")
		monly  = flag.Bool("telemetry-only", false, "with -metrics, write only the Telemetry section and skip the experiment sweep")
		tfiles = flag.String("trace", "", "comma-separated span-trace JSONL files or directories (from jrsnd-sim -trace-jsonl) to analyze in a Span Traces section")
		tonly  = flag.Bool("trace-only", false, "with -trace, write only the trace-derived sections and skip the experiment sweep")
		folded = flag.String("folded", "", "with -trace, also export aggregate folded stacks (flamegraph input) to this file")
	)
	flag.Parse()
	paths := splitPaths(*mfiles)
	tracePaths := splitPaths(*tfiles)
	if *monly && len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "jrsnd-report: -telemetry-only requires -metrics")
		os.Exit(2)
	}
	if (*tonly || *folded != "") && len(tracePaths) == 0 {
		fmt.Fprintln(os.Stderr, "jrsnd-report: -trace-only and -folded require -trace")
		os.Exit(2)
	}
	if err := run(*runs, *seed, *n, *out, paths, tracePaths, *folded, *monly || *tonly); err != nil {
		fmt.Fprintln(os.Stderr, "jrsnd-report:", err)
		os.Exit(1)
	}
}

func run(runs int, seed int64, n int, out string, metricPaths, tracePaths []string, foldedPath string, sectionsOnly bool) error {
	base := analysis.Defaults()
	if n > 0 {
		base.N = n
	}
	start := time.Now()
	// Open the output before the (long) evaluation so path errors fail
	// fast.
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	var telemetry *metrics.Snapshot
	if len(metricPaths) > 0 {
		agg, err := mergeSnapshots(metricPaths)
		if err != nil {
			return err
		}
		telemetry = &agg
	}
	// Load traces (and fail on bad paths) before the long sweep.
	var traces []traceFile
	if len(tracePaths) > 0 {
		files, err := expandTracePaths(tracePaths)
		if err != nil {
			return err
		}
		if traces, err = loadTraces(files); err != nil {
			return err
		}
	}
	var report experiment.Report
	if !sectionsOnly {
		var err error
		report, err = experiment.BuildReport(experiment.SweepConfig{
			Base:   base,
			Runs:   runs,
			Seed:   seed,
			Jammer: experiment.JamReactive,
		})
		if err != nil {
			return err
		}
		if err := experiment.WriteMarkdown(w, report); err != nil {
			return err
		}
	}
	if telemetry != nil {
		if err := writeTelemetry(w, *telemetry, metricPaths); err != nil {
			return err
		}
	}
	if len(traces) > 0 {
		if err := writeSpanReport(w, traces); err != nil {
			return err
		}
		if foldedPath != "" {
			if err := writeFoldedFile(foldedPath, traces); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "folded stacks -> %s\n", foldedPath)
		}
	}
	fmt.Fprintf(os.Stderr, "report built in %v\n", time.Since(start).Round(time.Second))
	failed := 0
	for _, c := range report.Checks {
		if !c.Pass {
			failed++
			fmt.Fprintf(os.Stderr, "CLAIM FAILED [%s]: %s (%s)\n", c.Artifact, c.Claim, c.Detail)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d claim checks failed", failed)
	}
	return nil
}
