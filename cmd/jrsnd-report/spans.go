package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Span-trace analysis: reconstruct the causal span forests written by
// jrsnd-sim (-trace-jsonl, including the per-cell directories of -chaos
// runs), attribute handshake latency per phase, pull out per-handshake
// critical paths, and export flamegraph-compatible folded stacks.

// traceFile is one loaded JSONL trace stream.
type traceFile struct {
	Path   string
	Events int
	Forest *trace.Forest
}

// expandTracePaths resolves each -trace argument: a directory contributes
// every *.jsonl inside it (sorted), anything else is taken as a file.
func expandTracePaths(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		info, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			out = append(out, a)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(a, "*.jsonl"))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("%s: no *.jsonl trace files", a)
		}
		sort.Strings(matches)
		out = append(out, matches...)
	}
	return out, nil
}

// loadTraces reads and reconstructs every trace file. Each file is built
// into its own forest: virtual time and span IDs restart per stream (one
// chaos cell, one instrumented run), so streams must not be merged at the
// event level.
func loadTraces(paths []string) ([]traceFile, error) {
	out := make([]traceFile, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		events, err := trace.ReadJSONL(bufio.NewReader(f))
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, traceFile{Path: p, Events: len(events), Forest: trace.BuildSpans(events)})
	}
	return out, nil
}

// criticalPath flattens a handshake's span subtree into time order: the
// attempt root plus every descendant, which for the D-NDP pipeline reads
// as the phase-by-phase story of where the handshake's latency went.
func criticalPath(root *trace.Span) []*trace.Span {
	var out []*trace.Span
	var walk func(s *trace.Span)
	walk = func(s *trace.Span) {
		out = append(out, s)
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(root)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// slowestCompletedAttempt finds the completed D-NDP attempt with the
// largest duration across all files — the most informative single
// handshake to narrate — and the file it came from.
func slowestCompletedAttempt(files []traceFile) (*trace.Span, string) {
	var best *trace.Span
	bestFile := ""
	for _, tf := range files {
		for _, a := range tf.Forest.Named("dndp.attempt") {
			if a.Open {
				continue
			}
			if best == nil || a.Duration() > best.Duration() {
				best, bestFile = a, tf.Path
			}
		}
	}
	return best, bestFile
}

// writeSpanReport renders the Span Traces markdown section: health
// warnings (truncated or unbalanced traces), the aggregate per-phase
// latency breakdown, and the critical path of the slowest completed
// handshake.
func writeSpanReport(w io.Writer, files []traceFile) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "\n## Span traces\n\n")
	forests := make([]*trace.Forest, len(files))
	totalEvents, totalSpans := 0, 0
	for i, tf := range files {
		forests[i] = tf.Forest
		totalEvents += tf.Events
		totalSpans += len(tf.Forest.ByID)
	}
	fmt.Fprintf(bw, "%d trace file(s), %d events, %d spans reconstructed.\n\n",
		len(files), totalEvents, totalSpans)

	// Trace-health warnings. Orphan ends prove the stream lost its head
	// (a bounded Recorder evicted the start events); open spans are
	// legitimate protocol outcomes (jam-destroyed handshakes, crashed
	// nodes) but also what a truncated tail looks like, so both surface.
	for _, tf := range files {
		if tf.Forest.OrphanEnds > 0 {
			fmt.Fprintf(bw, "**WARNING**: `%s` has %d span end(s) without a start — "+
				"the trace was truncated (events dropped from a bounded recorder); "+
				"durations below undercount.\n\n", tf.Path, tf.Forest.OrphanEnds)
		}
	}
	if open := countOpen(files); open > 0 {
		fmt.Fprintf(bw, "%d span(s) never ended (jam-destroyed handshakes, crashed "+
			"nodes, or a truncated trace tail); their durations are clamped to "+
			"the last event time of their stream.\n\n", open)
	}

	// Per-phase latency breakdown, aggregated across every file.
	phases := trace.Phases(forests...)
	if len(phases) == 0 {
		fmt.Fprintf(bw, "No spans found — was the trace recorded with span "+
			"instrumentation enabled?\n")
		return bw.Flush()
	}
	fmt.Fprintf(bw, "| phase | count | open | total (s) | mean (s) | p50 (s) | p95 (s) | max (s) |\n")
	fmt.Fprintf(bw, "|---|---:|---:|---:|---:|---:|---:|---:|\n")
	for _, p := range phases {
		fmt.Fprintf(bw, "| `%s` | %d | %d | %.4g | %.4g | %.4g | %.4g | %.4g |\n",
			p.Name, p.Count, p.Open, p.Total, p.Mean(), p.P50, p.P95, p.Max)
	}
	fmt.Fprintln(bw)

	// Critical path of the slowest completed handshake: the per-phase
	// story of a single discovery, worst case first.
	if attempt, path := slowestCompletedAttempt(files); attempt != nil {
		fmt.Fprintf(bw, "Critical path of the slowest completed handshake "+
			"(node %d → %d, %.4gs, `%s`):\n\n", attempt.Node, attempt.Peer, attempt.Duration(), path)
		fmt.Fprintf(bw, "| phase | start (s) | end (s) | duration (s) | outcome |\n")
		fmt.Fprintf(bw, "|---|---:|---:|---:|---|\n")
		for _, s := range criticalPath(attempt) {
			outcome := s.EndDetail
			if s.Open {
				outcome = "(never ended)"
			}
			fmt.Fprintf(bw, "| `%s` | %.4g | %.4g | %.4g | %s |\n",
				s.Name, s.Start, s.End, s.Duration(), outcome)
		}
		fmt.Fprintln(bw)
	} else {
		fmt.Fprintf(bw, "No completed `dndp.attempt` span found — every traced "+
			"handshake was destroyed or the trace predates span instrumentation.\n\n")
	}
	return bw.Flush()
}

func countOpen(files []traceFile) int {
	n := 0
	for _, tf := range files {
		n += tf.Forest.Open
	}
	return n
}

// writeFoldedFile exports the aggregate folded-stack flamegraph input.
func writeFoldedFile(path string, files []traceFile) error {
	forests := make([]*trace.Forest, len(files))
	for i, tf := range files {
		forests[i] = tf.Forest
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = trace.WriteFolded(f, forests...)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// splitPaths parses a comma-separated path list flag.
func splitPaths(flagVal string) []string {
	var out []string
	for _, p := range strings.Split(flagVal, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
