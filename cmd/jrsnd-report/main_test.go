package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestRunScaledDown(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	out := filepath.Join(t.TempDir(), "report.md")
	// n=400 keeps the pass fast; some absolute-anchor claims are tuned to
	// n=2000 and may fail at this scale, which run() reports as an error —
	// accept either outcome but require the report file to be complete.
	err := run(1, 1, 400, out, nil, nil, "", false)
	data, readErr := os.ReadFile(out)
	if readErr != nil {
		t.Fatalf("report not written: %v (run err: %v)", readErr, err)
	}
	text := string(data)
	for _, want := range []string{"# JR-SND reproduction report", "Claim checks", "Measured series"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestRunRejectsBadOutput(t *testing.T) {
	// The output file opens before the evaluation, so this fails fast.
	if err := run(1, 1, 400, "/nonexistent-dir/x/report.md", nil, nil, "", false); err == nil {
		t.Fatal("accepted unwritable output path")
	}
}

// TestTelemetryMerge exercises the snapshot-aggregation path end to end:
// two snapshots in the two supported formats merge into one Telemetry
// section with summed counters.
func TestTelemetryMerge(t *testing.T) {
	dir := t.TempDir()

	reg := metrics.New()
	reg.Counter("jrsnd_core_tx_total", "transmissions").Add(7)
	reg.Histogram("jrsnd_core_discovery_latency_seconds", "latency",
		[]float64{0.1, 1}).Observe(0.05)
	snap := reg.Snapshot()

	promPath := filepath.Join(dir, "a.prom")
	jsonPath := filepath.Join(dir, "b.json")
	pf, err := os.Create(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.WritePrometheus(pf, snap); err != nil {
		t.Fatal(err)
	}
	pf.Close()
	jf, err := os.Create(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.WriteJSON(jf, snap); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	out := filepath.Join(dir, "telemetry.md")
	if err := run(1, 1, 400, out, []string{promPath, jsonPath}, nil, "", true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "## Telemetry") {
		t.Fatal("missing Telemetry section")
	}
	if !strings.Contains(text, "| `jrsnd_core_tx_total` | 14 |") {
		t.Fatalf("counters did not sum across snapshots:\n%s", text)
	}
	if !strings.Contains(text, "jrsnd_core_discovery_latency_seconds") {
		t.Fatal("missing merged histogram row")
	}
}

// TestTelemetryMergeRejectsGarbage checks load errors surface per file.
func TestTelemetryMergeRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.prom")
	if err := os.WriteFile(bad, []byte("not a snapshot\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mergeSnapshots([]string{bad}); err == nil {
		t.Fatal("merged a garbage snapshot")
	}
	if _, err := mergeSnapshots([]string{filepath.Join(dir, "missing.prom")}); err == nil {
		t.Fatal("merged a missing snapshot")
	}
}
