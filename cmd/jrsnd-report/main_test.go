package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunScaledDown(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	out := filepath.Join(t.TempDir(), "report.md")
	// n=400 keeps the pass fast; some absolute-anchor claims are tuned to
	// n=2000 and may fail at this scale, which run() reports as an error —
	// accept either outcome but require the report file to be complete.
	err := run(1, 1, 400, out)
	data, readErr := os.ReadFile(out)
	if readErr != nil {
		t.Fatalf("report not written: %v (run err: %v)", readErr, err)
	}
	text := string(data)
	for _, want := range []string{"# JR-SND reproduction report", "Claim checks", "Measured series"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestRunRejectsBadOutput(t *testing.T) {
	// The output file opens before the evaluation, so this fails fast.
	if err := run(1, 1, 400, "/nonexistent-dir/x/report.md"); err == nil {
		t.Fatal("accepted unwritable output path")
	}
}
