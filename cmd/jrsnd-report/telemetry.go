package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/metrics"
)

// loadSnapshot reads one metric snapshot, accepting either of the formats
// jrsnd-sim writes: JSON (sniffed by a leading '{') or Prometheus text.
func loadSnapshot(path string) (metrics.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return metrics.Snapshot{}, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		b, err := br.Peek(1)
		if err != nil {
			return metrics.Snapshot{}, fmt.Errorf("%s: empty snapshot", path)
		}
		if b[0] == ' ' || b[0] == '\t' || b[0] == '\n' || b[0] == '\r' {
			_, _ = br.Discard(1)
			continue
		}
		if b[0] == '{' {
			return metrics.ReadJSON(br)
		}
		return metrics.ParsePrometheus(br)
	}
}

// mergeSnapshots loads every file and folds it into one aggregate:
// counters and histograms sum, gauges keep their high-water maximum.
func mergeSnapshots(paths []string) (metrics.Snapshot, error) {
	agg := metrics.NewSnapshot()
	for _, p := range paths {
		s, err := loadSnapshot(p)
		if err != nil {
			return metrics.Snapshot{}, fmt.Errorf("load %s: %w", p, err)
		}
		if err := agg.Merge(s); err != nil {
			return metrics.Snapshot{}, fmt.Errorf("merge %s: %w", p, err)
		}
	}
	return agg, nil
}

// writeTelemetry renders the merged snapshot as a Markdown section.
func writeTelemetry(w io.Writer, s metrics.Snapshot, paths []string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "\n## Telemetry\n\n")
	fmt.Fprintf(bw, "Aggregated from %d snapshot(s): %s. Counters and histograms sum\n",
		len(paths), strings.Join(paths, ", "))
	fmt.Fprintf(bw, "across runs; gauges keep their high-water maximum.\n\n")

	if names := s.SortedCounterNames(); len(names) > 0 {
		fmt.Fprintf(bw, "| counter | total |\n|---|---:|\n")
		for _, name := range names {
			fmt.Fprintf(bw, "| `%s` | %d |\n", name, s.Counters[name])
		}
		fmt.Fprintln(bw)
	}
	if names := s.SortedGaugeNames(); len(names) > 0 {
		fmt.Fprintf(bw, "| gauge | max |\n|---|---:|\n")
		for _, name := range names {
			fmt.Fprintf(bw, "| `%s` | %g |\n", name, s.Gauges[name])
		}
		fmt.Fprintln(bw)
	}
	if names := s.SortedHistogramNames(); len(names) > 0 {
		fmt.Fprintf(bw, "| histogram | count | mean | p50 | p95 |\n|---|---:|---:|---:|---:|\n")
		for _, name := range names {
			h := s.Histograms[name]
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Fprintf(bw, "| `%s` | %d | %.4g | %.4g | %.4g |\n",
				name, h.Count, mean, h.Quantile(0.5), h.Quantile(0.95))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
