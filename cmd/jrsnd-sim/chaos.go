package main

import (
	"fmt"
	"io"
	"time"

	"repro/internal/adversary"
	"repro/internal/faults"
)

// chaosCells selects the fault matrix for the -chaos/-adversary flag pair:
// the full 32-cell matrix by default, or just the named Byzantine
// behavior's cells.
func chaosCells(adversaryFlag string) ([]faults.Cell, error) {
	if adversaryFlag == "" {
		return faults.Matrix(), nil
	}
	kind, err := adversary.ParseKind(adversaryFlag)
	if err != nil {
		return nil, err
	}
	if kind == adversary.None {
		return nil, fmt.Errorf("-adversary none is not a behavior; omit the flag for the full matrix")
	}
	return faults.MatrixFor(kind), nil
}

// runChaos executes the given fault matrix and prints one line per cell.
// The returned count is the number of failed cells (invariant violations
// plus non-deterministic replays); the caller maps it to the exit code.
func runChaos(w io.Writer, seed int64, cells []faults.Cell) (int, error) {
	fmt.Fprintf(w, "chaos: %d-cell fault matrix (jammer × churn × loss × adversary), seed %d\n\n", len(cells), seed)
	fmt.Fprintf(w, "  %-34s %10s %8s %s\n", "cell", "discovered", "determ.", "violations")
	start := time.Now()
	failed := 0
	results, err := faults.RunMatrix(cells, seed)
	if err != nil {
		return 0, err
	}
	for _, r := range results {
		status := "ok"
		if len(r.Violations) > 0 {
			status = fmt.Sprintf("%d", len(r.Violations))
		}
		fmt.Fprintf(w, "  %-34s %10d %8t %s\n", r.Cell.Name, r.Discovered, r.Deterministic, status)
		if !r.Passed() {
			failed++
			for _, v := range r.Violations {
				fmt.Fprintf(w, "    !! %v\n", v)
			}
		}
	}
	fmt.Fprintf(w, "\n%d/%d cells passed in %v\n", len(results)-failed, len(results), time.Since(start).Round(time.Millisecond))
	return failed, nil
}
