package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/adversary"
	"repro/internal/faults"
	"repro/internal/trace"
)

// chaosCells selects the fault matrix for the -chaos/-adversary flag pair:
// the full 32-cell matrix by default, or just the named Byzantine
// behavior's cells.
func chaosCells(adversaryFlag string) ([]faults.Cell, error) {
	if adversaryFlag == "" {
		return faults.Matrix(), nil
	}
	kind, err := adversary.ParseKind(adversaryFlag)
	if err != nil {
		return nil, err
	}
	if kind == adversary.None {
		return nil, fmt.Errorf("-adversary none is not a behavior; omit the flag for the full matrix")
	}
	return faults.MatrixFor(kind), nil
}

// runChaos executes the given fault matrix and prints one line per cell.
// With a non-empty traceDir, each cell's first determinism run streams its
// protocol trace to <traceDir>/<cell>.jsonl (virtual time restarts per
// cell, so each cell gets its own file rather than one interleaved
// stream). The returned count is the number of failed cells (invariant
// violations plus non-deterministic replays); the caller maps it to the
// exit code.
func runChaos(w io.Writer, seed int64, cells []faults.Cell, traceDir string) (int, error) {
	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			return 0, err
		}
	}
	fmt.Fprintf(w, "chaos: %d-cell fault matrix (jammer × churn × loss × adversary), seed %d\n\n", len(cells), seed)
	fmt.Fprintf(w, "  %-34s %10s %8s %s\n", "cell", "discovered", "determ.", "violations")
	start := time.Now()
	failed := 0
	for _, cell := range cells {
		var (
			r   faults.CellResult
			err error
		)
		if traceDir != "" {
			r, err = runCellTracedToFile(cell, seed, filepath.Join(traceDir, cellFileName(cell.Name)))
		} else {
			r, err = faults.RunCell(cell, seed)
		}
		if err != nil {
			return 0, err
		}
		status := "ok"
		if len(r.Violations) > 0 {
			status = fmt.Sprintf("%d", len(r.Violations))
		}
		fmt.Fprintf(w, "  %-34s %10d %8t %s\n", r.Cell.Name, r.Discovered, r.Deterministic, status)
		if !r.Passed() {
			failed++
			for _, v := range r.Violations {
				fmt.Fprintf(w, "    !! %v\n", v)
			}
		}
	}
	fmt.Fprintf(w, "\n%d/%d cells passed in %v\n", len(cells)-failed, len(cells), time.Since(start).Round(time.Millisecond))
	if traceDir != "" {
		fmt.Fprintf(w, "traces: one JSONL file per cell in %s\n", traceDir)
	}
	return failed, nil
}

// runCellTracedToFile runs one cell with its first determinism run
// streaming trace events to path.
func runCellTracedToFile(cell faults.Cell, seed int64, path string) (faults.CellResult, error) {
	f, err := os.Create(path)
	if err != nil {
		return faults.CellResult{}, err
	}
	jw := trace.NewJSONLWriter(f)
	res, runErr := faults.RunCellTraced(cell, seed, jw)
	err = jw.Close()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if runErr != nil {
		return faults.CellResult{}, runErr
	}
	return res, err
}

// cellFileName maps a cell name like "jam=sweep/churn=true/loss=0.15" to a
// filesystem-safe trace file name.
func cellFileName(name string) string {
	r := strings.NewReplacer("/", "_", "=", "-")
	return r.Replace(name) + ".jsonl"
}
