// Command jrsnd-sim reproduces the paper's evaluation artifacts: pass an
// experiment id and it prints the measured series next to the theoretical
// curves. Available ids: table1, fig2a, fig2b, fig3a, fig3b, fig4a, fig4b,
// fig5a, fig5b, dsss, dos, ext-antennas, ext-gold, ext-adaptive-nu,
// baseline-q, baseline-latency, baseline-dos, or "all".
//
// Usage:
//
//	jrsnd-sim -exp fig4a -runs 100 -seed 1
//	jrsnd-sim -exp all -runs 20 -csv out/   # quicker full pass + CSV files
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	os.Exit(mainRun())
}

// mainRun parses flags, dispatches the selected mode, and returns the
// process exit code. It exists (instead of os.Exit calls inline) so the
// profile teardown deferred below always runs.
func mainRun() int {
	var (
		exp     = flag.String("exp", "all", "experiment id (table1, fig2a..fig5b, dsss, dos, all)")
		runs    = flag.Int("runs", 100, "Monte-Carlo runs per parameter point")
		seed    = flag.Int64("seed", 1, "base random seed")
		jammer  = flag.String("jammer", "reactive", "jammer model: none, random, reactive")
		iterate = flag.Bool("iterate-mndp", false, "close the logical graph under repeated M-NDP rounds")
		n       = flag.Int("n", 0, "override node count (0 = Table I default)")
		csvDir  = flag.String("csv", "", "also write each figure as <dir>/<id>.csv")
		point   = flag.Bool("point", false, "instead of a figure, measure a single point at the (possibly overridden) parameters and print it with 95% confidence intervals")
		q       = flag.Int("q", -1, "override compromised-node count (with -point)")
		list    = flag.Bool("list", false, "list the available experiment ids and exit")
		mfile   = flag.String("metrics", "", "run one instrumented protocol-engine deployment and write the metric snapshot here (.json for JSON, anything else for Prometheus text)")
		tfile   = flag.String("trace-jsonl", "", "stream protocol trace events as JSONL: a file for an instrumented deployment, a directory (one file per cell) with -chaos")
		chaos   = flag.Bool("chaos", false, "run the fault matrix (jammer × churn × loss × adversary) with invariant checking; exits non-zero on any violation")
		adv     = flag.String("adversary", "", "with -chaos: restrict the matrix to one Byzantine behavior (replay, forge, bitflip, flood)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProf = flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	)
	flag.Parse()
	if *list {
		for _, id := range experimentIDs() {
			fmt.Println(id)
		}
		return 0
	}
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrsnd-sim:", err)
		return 1
	}
	defer stopProf()
	if *adv != "" && !*chaos {
		fmt.Fprintln(os.Stderr, "jrsnd-sim: -adversary requires -chaos")
		return 2
	}
	if *chaos {
		// The chaos harness fixes its own deployment and adversaries; the
		// experiment-selection flags cannot apply. -trace-jsonl is
		// reinterpreted as a directory: one JSONL trace per cell.
		if *point || *mfile != "" || *n != 0 || *q != -1 {
			fmt.Fprintln(os.Stderr, "jrsnd-sim: -chaos cannot be combined with -point, -metrics, -n, or -q")
			return 2
		}
		cells, err := chaosCells(*adv)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jrsnd-sim:", err)
			return 2
		}
		violations, err := runChaos(os.Stdout, *seed, cells, *tfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jrsnd-sim:", err)
			return 1
		}
		if violations > 0 {
			fmt.Fprintf(os.Stderr, "jrsnd-sim: %d invariant violations\n", violations)
			return 1
		}
		return 0
	}
	if *mfile != "" || *tfile != "" {
		if err := runInstrumented(*mfile, *tfile, *seed, *jammer, *n, *q); err != nil {
			fmt.Fprintln(os.Stderr, "jrsnd-sim:", err)
			return 1
		}
		return 0
	}
	if *point {
		if err := runPoint(*runs, *seed, *jammer, *n, *q); err != nil {
			fmt.Fprintln(os.Stderr, "jrsnd-sim:", err)
			return 1
		}
		return 0
	}
	if err := run(*exp, *runs, *seed, *jammer, *iterate, *n, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "jrsnd-sim:", err)
		return 1
	}
	return 0
}

// startProfiles arms the optional -cpuprofile/-memprofile outputs. The
// returned stop function ends CPU profiling and snapshots the heap; it is
// safe to call when neither profile was requested.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Fprintf(os.Stderr, "cpu profile -> %s\n", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jrsnd-sim: memprofile:", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "jrsnd-sim: memprofile:", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "heap profile -> %s\n", memPath)
		}
	}, nil
}

func run(exp string, runs int, seed int64, jammer string, iterate bool, n int, csvDir string) error {
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	var jm experiment.JammerModel
	switch jammer {
	case "none":
		jm = experiment.JamNone
	case "random":
		jm = experiment.JamRandom
	case "reactive":
		jm = experiment.JamReactive
	default:
		return fmt.Errorf("unknown jammer %q", jammer)
	}
	base := analysis.Defaults()
	if n > 0 {
		base.N = n
	}
	cfg := experiment.SweepConfig{
		Base:        base,
		Runs:        runs,
		Seed:        seed,
		Jammer:      jm,
		IterateMNDP: iterate,
	}

	runners := []runner{
		{"table1", func() (experiment.Figure, error) { return experiment.Table1(), nil }},
		{"fig2a", func() (experiment.Figure, error) { return experiment.Fig2a(cfg) }},
		{"fig2b", func() (experiment.Figure, error) { return experiment.Fig2b(cfg) }},
		{"fig3a", func() (experiment.Figure, error) { return experiment.Fig3a(cfg) }},
		{"fig3b", func() (experiment.Figure, error) { return experiment.Fig3b(cfg) }},
		{"fig4a", func() (experiment.Figure, error) { return experiment.Fig4(cfg, 40) }},
		{"fig4b", func() (experiment.Figure, error) { return experiment.Fig4(cfg, 20) }},
		{"fig5a", func() (experiment.Figure, error) { return experiment.Fig5a(cfg) }},
		{"fig5b", func() (experiment.Figure, error) { return experiment.Fig5b(cfg) }},
		{"dsss", func() (experiment.Figure, error) { return experiment.DSSSValidation(seed, max(runs, 10)) }},
		{"dos", func() (experiment.Figure, error) { return experiment.DoSExperiment(seed, 20) }},
		{"ext-antennas", func() (experiment.Figure, error) { return experiment.ExtAntennas(base) }},
		{"ext-gold", func() (experiment.Figure, error) { return experiment.GoldComparison(seed, 64, 5000) }},
		{"ext-z", func() (experiment.Figure, error) { return experiment.ExtZ(cfg) }},
		{"ext-noise", func() (experiment.Figure, error) { return experiment.InterferenceValidation(seed, max(runs, 10)) }},
		{"ext-predistribution", func() (experiment.Figure, error) { return experiment.PredistributionComparison(base, seed) }},
		{"ext-crosscheck", func() (experiment.Figure, error) {
			return experiment.CrossCheckFigure(analysis.Params{}, max(runs/4, 3), seed)
		}},
		{"ext-adaptive-nu", func() (experiment.Figure, error) {
			return experiment.ExtAdaptiveNu(cfg, nil, 8)
		}},
		{"baseline-q", func() (experiment.Figure, error) { return experiment.BaselineQ(cfg) }},
		{"baseline-latency", func() (experiment.Figure, error) {
			return experiment.BaselineLatency(base, seed, max(runs*10, 100))
		}},
		{"baseline-dos", func() (experiment.Figure, error) { return experiment.BaselineDoS(base) }},
	}
	if ids := experimentIDs(); len(ids) != len(runners) {
		return fmt.Errorf("internal: experiment id list out of sync (%d vs %d)", len(ids), len(runners))
	}
	matched := false
	for _, r := range runners {
		if exp != "all" && exp != r.id {
			continue
		}
		matched = true
		start := time.Now()
		fig, err := r.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", r.id, err)
		}
		if err := experiment.Print(os.Stdout, fig); err != nil {
			return err
		}
		if csvDir != "" {
			f, err := os.Create(filepath.Join(csvDir, r.id+".csv"))
			if err != nil {
				return err
			}
			werr := experiment.WriteCSV(f, fig)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return werr
			}
		}
		fmt.Printf("  (%s computed in %v)\n\n", r.id, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// runner pairs an experiment id with its producer.
type runner struct {
	id string
	fn func() (experiment.Figure, error)
}

// experimentIDs lists every supported -exp id, in run order. A consistency
// check in run() keeps it in sync with the runner table.
func experimentIDs() []string {
	return []string{
		"table1",
		"fig2a", "fig2b", "fig3a", "fig3b", "fig4a", "fig4b", "fig5a", "fig5b",
		"dsss", "dos",
		"ext-antennas", "ext-gold", "ext-z", "ext-noise",
		"ext-predistribution", "ext-crosscheck", "ext-adaptive-nu",
		"baseline-q", "baseline-latency", "baseline-dos",
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// coreJammer maps the -jammer flag to the protocol engine's adversary kind.
func coreJammer(jammer string) (core.JammerKind, error) {
	switch jammer {
	case "none":
		return core.JamNone, nil
	case "random":
		return core.JamRandom, nil
	case "reactive":
		return core.JamReactive, nil
	default:
		return 0, fmt.Errorf("unknown jammer %q", jammer)
	}
}

// runInstrumented runs one fully instrumented protocol-engine deployment
// (D-NDP followed by M-NDP) and writes the metric snapshot and, optionally,
// the streaming trace. Default deployment: 50 nodes under Table I density.
func runInstrumented(metricsPath, jsonlPath string, seed int64, jammer string, n, q int) error {
	jk, err := coreJammer(jammer)
	if err != nil {
		return err
	}
	p := analysis.Defaults()
	if n <= 0 {
		n = 50
	}
	if n != p.N {
		// Shrink the field with the node count so the physical-neighbor
		// density (and with it the protocol behavior) matches Table I.
		f := math.Sqrt(float64(n) / float64(p.N))
		p.FieldWidth *= f
		p.FieldHeight *= f
		p.M = max(10, p.M*n/p.N)
		p.L = max(4, p.L*n/p.N)
		if p.L > p.M {
			p.L = p.M
		}
		p.Q = p.Q * n / p.N
		p.N = n
	}
	if q >= 0 {
		p.Q = q
	} else if p.Q == 0 {
		p.Q = max(1, n/10) // give a reactive jammer codes to chase
	}

	reg := metrics.New()
	// Open both outputs before the (comparatively long) run so path errors
	// fail fast.
	var mout *os.File
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		mout = f
	}
	var sink trace.Sink
	var jsonl *trace.JSONLWriter
	if jsonlPath != "" {
		f, err := os.Create(jsonlPath)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonl = trace.NewJSONLWriter(f)
		sink = jsonl
	}

	net, err := core.NewNetwork(core.NetworkConfig{
		Params:  p,
		Seed:    seed,
		Jammer:  jk,
		Trace:   sink,
		Metrics: reg,
	})
	if err != nil {
		return err
	}
	if _, err := net.CompromiseRandom(p.Q); err != nil {
		return err
	}
	if err := net.RunDNDP(1); err != nil {
		return err
	}
	if err := net.RunMNDP(1); err != nil {
		return err
	}
	if jsonl != nil {
		if err := jsonl.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d events -> %s\n", jsonl.Written(), jsonlPath)
	}

	snap := reg.Snapshot()
	if mout != nil {
		var err error
		if strings.HasSuffix(metricsPath, ".json") {
			err = metrics.WriteJSON(mout, snap)
		} else {
			err = metrics.WritePrometheus(mout, snap)
		}
		if cerr := mout.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("metrics: %d counters, %d gauges, %d histograms -> %s\n",
			len(snap.Counters), len(snap.Gauges), len(snap.Histograms), metricsPath)
	}
	fmt.Printf("instrumented run: n=%d m=%d l=%d q=%d, %s jamming, %d pairs discovered\n",
		p.N, p.M, p.L, p.Q, jk, len(net.Discoveries()))
	return nil
}

func runPoint(runs int, seed int64, jammer string, n, q int) error {
	var jm experiment.JammerModel
	switch jammer {
	case "none":
		jm = experiment.JamNone
	case "random":
		jm = experiment.JamRandom
	case "reactive":
		jm = experiment.JamReactive
	default:
		return fmt.Errorf("unknown jammer %q", jammer)
	}
	p := analysis.Defaults()
	if n > 0 {
		p.N = n
	}
	if q >= 0 {
		p.Q = q
	}
	m, err := experiment.MeasurePoint(experiment.PointConfig{
		Params: p,
		Jammer: jm,
		Runs:   runs,
		Seed:   seed,
	})
	if err != nil {
		return err
	}
	lower, upper := analysis.DNDPBounds(p)
	fmt.Printf("point measurement: n=%d m=%d l=%d q=%d ν=%d, %s jamming, %d runs\n\n",
		p.N, p.M, p.L, p.Q, p.Nu, jm, runs)
	fmt.Printf("  P̂_D    = %.4f ± %.4f   (Theorem 1: [%.4f, %.4f])\n", m.PD, m.PDCI, lower, upper)
	fmt.Printf("  P̂_M    = %.4f ± %.4f\n", m.PM, m.PMCI)
	fmt.Printf("  P̂      = %.4f ± %.4f\n", m.PHat, m.PHatCI)
	fmt.Printf("  T̄_D    = %.4f s         (Theorem 2: %.4f s; P50 %.4f, P95 %.4f)\n",
		m.TD, analysis.DNDPLatency(p), m.TD50, m.TD95)
	fmt.Printf("  T̄_M    = %.4f s\n", m.TM)
	fmt.Printf("  T̄      = %.4f s\n", m.TBar)
	fmt.Printf("  g      = %.2f physical neighbors, %.0f edges/run, %.0f compromised codes\n",
		m.AvgDegree, m.Edges, m.CompromisedCodes)
	return nil
}
