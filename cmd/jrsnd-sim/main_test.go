package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", 1, 1, "reactive", false, 0, ""); err == nil {
		t.Fatal("accepted unknown experiment id")
	}
}

func TestRunUnknownJammer(t *testing.T) {
	if err := run("table1", 1, 1, "bogus", false, 0, ""); err == nil {
		t.Fatal("accepted unknown jammer")
	}
}

func TestRunTable1(t *testing.T) {
	if err := run("table1", 1, 1, "reactive", false, 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentIDsInSync(t *testing.T) {
	// run() cross-checks the id list against the runner table; invoking
	// any single experiment exercises that check.
	ids := experimentIDs()
	if len(ids) < 20 {
		t.Fatalf("only %d experiment ids", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestRunQuickFigureWithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	dir := t.TempDir()
	// A reduced deployment keeps the sweep quick.
	if err := run("ext-antennas", 1, 1, "reactive", false, 0, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "ext-antennas.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV written")
	}
}

func TestRunBaselines(t *testing.T) {
	if err := run("baseline-dos", 1, 1, "reactive", false, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("baseline-latency", 2, 1, "reactive", false, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("ext-gold", 1, 1, "reactive", false, 0, ""); err != nil {
		t.Fatal(err)
	}
}

// TestRunInstrumented covers the -metrics/-trace-jsonl deployment mode:
// a small instrumented run must produce a parseable Prometheus snapshot
// and a monotonic JSONL trace.
func TestRunInstrumented(t *testing.T) {
	dir := t.TempDir()
	promPath := filepath.Join(dir, "out.prom")
	jsonlPath := filepath.Join(dir, "out.jsonl")
	if err := runInstrumented(promPath, jsonlPath, 1, "reactive", 30, -1); err != nil {
		t.Fatal(err)
	}

	pf, err := os.Open(promPath)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	snap, err := metrics.ParsePrometheus(pf)
	if err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
	for _, want := range []string{
		`jrsnd_core_tx_total{kind="HELLO"}`,
		"jrsnd_sim_events_fired_total",
	} {
		if snap.Counters[want] == 0 {
			t.Errorf("counter %s missing or zero", want)
		}
	}
	if _, ok := snap.Histograms["jrsnd_core_discovery_latency_seconds"]; !ok {
		t.Error("discovery-latency histogram missing")
	}

	tf, err := os.Open(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	events, err := trace.ReadJSONL(tf)
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}

	// JSON snapshot flavor, no trace.
	jsonPath := filepath.Join(dir, "out.json")
	if err := runInstrumented(jsonPath, "", 1, "none", 30, 0); err != nil {
		t.Fatal(err)
	}
	jf, err := os.Open(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	if _, err := metrics.ReadJSON(jf); err != nil {
		t.Fatalf("JSON snapshot does not parse: %v", err)
	}

	if err := runInstrumented(promPath, "", 1, "bogus", 30, -1); err == nil {
		t.Fatal("accepted unknown jammer")
	}
}

func TestRunPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	if err := runPoint(2, 1, "reactive", 300, 5); err != nil {
		t.Fatal(err)
	}
	if err := runPoint(1, 1, "bogus", 0, -1); err == nil {
		t.Fatal("accepted unknown jammer")
	}
}

func TestRunChaosMatrixPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix in -short mode")
	}
	cells, err := chaosCells("")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	failed, err := runChaos(&sb, 1, cells, "")
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("chaos matrix failed %d cells:\n%s", failed, sb.String())
	}
	want := fmt.Sprintf("%d/%d cells passed", len(cells), len(cells))
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("summary missing %q:\n%s", want, sb.String())
	}
}

func TestChaosCellsAdversarySelection(t *testing.T) {
	for _, bad := range []string{"none", "martian"} {
		if _, err := chaosCells(bad); err == nil {
			t.Fatalf("-adversary %s accepted", bad)
		}
	}
	full, err := chaosCells("")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"replay", "forge", "bitflip", "flood"} {
		cells, err := chaosCells(kind)
		if err != nil {
			t.Fatal(err)
		}
		if len(cells) == 0 || len(cells) >= len(full) {
			t.Fatalf("-adversary %s selected %d of %d cells", kind, len(cells), len(full))
		}
		for _, c := range cells {
			if c.Adversary.String() != kind {
				t.Fatalf("cell %q leaked into the %s selection", c.Name, kind)
			}
		}
	}
}
