package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", 1, 1, "reactive", false, 0, ""); err == nil {
		t.Fatal("accepted unknown experiment id")
	}
}

func TestRunUnknownJammer(t *testing.T) {
	if err := run("table1", 1, 1, "bogus", false, 0, ""); err == nil {
		t.Fatal("accepted unknown jammer")
	}
}

func TestRunTable1(t *testing.T) {
	if err := run("table1", 1, 1, "reactive", false, 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentIDsInSync(t *testing.T) {
	// run() cross-checks the id list against the runner table; invoking
	// any single experiment exercises that check.
	ids := experimentIDs()
	if len(ids) < 20 {
		t.Fatalf("only %d experiment ids", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestRunQuickFigureWithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	dir := t.TempDir()
	// A reduced deployment keeps the sweep quick.
	if err := run("ext-antennas", 1, 1, "reactive", false, 0, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "ext-antennas.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV written")
	}
}

func TestRunBaselines(t *testing.T) {
	if err := run("baseline-dos", 1, 1, "reactive", false, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("baseline-latency", 2, 1, "reactive", false, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("ext-gold", 1, 1, "reactive", false, 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	if err := runPoint(2, 1, "reactive", 300, 5); err != nil {
		t.Fatal(err)
	}
	if err := runPoint(1, 1, "bogus", 0, -1); err == nil {
		t.Fatal("accepted unknown jammer")
	}
}
