package main

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/authd"
	"repro/internal/metrics"
)

// TestAuthdSmoke is the `make authd-smoke` gate: boot the service on an
// ephemeral loopback port, provision a batch of nodes, revoke one code
// past γ, scrape GET /metrics and assert the provision/revoke counters,
// then shut down gracefully.
func TestAuthdSmoke(t *testing.T) {
	p := analysis.Defaults()
	p.N, p.M, p.L, p.Gamma, p.Q = 64, 4, 8, 2, 0
	srv, err := authd.New(authd.Config{Params: p, Seed: 9, Rate: -1})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cl := &authd.Client{Base: "http://" + addr, ClientID: "smoke"}

	if err := cl.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	prov, err := cl.Provision(ctx, 8, "smoke")
	if err != nil {
		t.Fatalf("provision: %v", err)
	}
	if len(prov.Nodes) != 8 {
		t.Fatalf("provisioned %d nodes, want 8", len(prov.Nodes))
	}
	code := prov.Nodes[0].Codes[0]
	var revokedNow int
	for i := 0; i <= p.Gamma; i++ {
		rr, err := cl.Revoke(ctx, int32(code))
		if err != nil {
			t.Fatalf("revoke: %v", err)
		}
		if rr.RevokedNow {
			revokedNow++
		}
	}
	if revokedNow != 1 {
		t.Fatalf("RevokedNow observed %d times, want exactly 1", revokedNow)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	snap, err := metrics.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("parse exposition: %v", err)
	}
	checks := map[string]uint64{
		"authd_provisioned_nodes_total":           8,
		"authd_revoke_reports_total":              uint64(p.Gamma) + 1,
		"authd_revoked_codes_total":               1,
		`authd_requests_total{route="provision"}`: 1,
		`authd_requests_total{route="revoke"}`:    uint64(p.Gamma) + 1,
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != want {
			t.Errorf("metric %s = %d, want %d", name, got, want)
		}
	}

	shutCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if err := cl.Healthz(ctx); err == nil {
		t.Fatal("service still answering after shutdown")
	}
}

// TestLoadgenLoopback exercises the acceptance path: `jrsnd-authority
// -loadgen` boots an in-process server, completes a mixed
// provision/join/revoke run, and prints throughput plus p50/p99.
func TestLoadgenLoopback(t *testing.T) {
	var out bytes.Buffer
	code, err := run(options{
		loadgen:  true,
		n:        256,
		m:        4,
		l:        8,
		gamma:    3,
		seed:     2,
		workers:  4,
		requests: 120,
		mix:      "50,20,30",
		batch:    2,
	}, &out)
	if err != nil {
		t.Fatalf("loadgen run: %v\n%s", err, out.String())
	}
	if code != 0 {
		t.Fatalf("exit code %d\n%s", code, out.String())
	}
	text := out.String()
	for _, want := range []string{"ops/s", "p50", "p99", "provision", "join", "revoke", "epoch"} {
		if !strings.Contains(text, want) {
			t.Fatalf("loadgen output missing %q:\n%s", want, text)
		}
	}
}

func TestBadFlagCombos(t *testing.T) {
	var out bytes.Buffer
	if code, err := run(options{target: "http://x"}, &out); code != 2 || err == nil {
		t.Fatalf("-target without -loadgen: code %d err %v, want 2 + error", code, err)
	}
	if code, err := run(options{loadgen: true, mix: "1,2"}, &out); code != 2 || err == nil {
		t.Fatalf("bad mix: code %d err %v, want 2 + error", code, err)
	}
	if code, err := run(options{loadgen: true, mix: "0,0,0"}, &out); code != 2 || err == nil {
		t.Fatalf("zero mix: code %d err %v, want 2 + error", code, err)
	}
	if code, err := run(options{crashPoint: "post-append"}, &out); code != 2 || err == nil {
		t.Fatalf("-crash-point without -data-dir: code %d err %v, want 2 + error", code, err)
	}
	if code, err := run(options{crashPoint: "nonsense", dataDir: t.TempDir()}, &out); code != 2 || err == nil {
		t.Fatalf("unknown crash point: code %d err %v, want 2 + error", code, err)
	}
	if code, err := run(options{crashHarness: true, loadgen: true}, &out); code != 2 || err == nil {
		t.Fatalf("-crash-harness with -loadgen: code %d err %v, want 2 + error", code, err)
	}
	if code, err := run(options{loadgen: true, mix: "1,1,1", dataDir: t.TempDir()}, &out); code != 2 || err == nil {
		t.Fatalf("-loadgen with -data-dir: code %d err %v, want 2 + error", code, err)
	}
}

func TestParseMix(t *testing.T) {
	p, j, r, err := parseMix(" 70, 10 ,20 ")
	if err != nil || p != 70 || j != 10 || r != 20 {
		t.Fatalf("parseMix = %d,%d,%d (%v)", p, j, r, err)
	}
	for _, bad := range []string{"", "1", "1,2", "a,b,c", "-1,2,3", "1,2,3,4"} {
		if _, _, _, err := parseMix(bad); err == nil {
			t.Fatalf("parseMix(%q) accepted", bad)
		}
	}
}
