package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/authd"
	"repro/internal/codepool"
)

// Crash-fault harness (`jrsnd-authority -crash-harness`, `make
// authd-crash`). Two phases:
//
// Phase 1 runs the in-process matrix (authd.RunCrashMatrix) exhaustively:
// every crash point, many cycles, with the panic-based hook standing in
// for process death.
//
// Phase 2 is the real thing: for each crash point it re-executes this
// binary as a durable server armed to os.Exit(137) at that point, hammers
// it over HTTP with the load generator plus a tracked client whose
// acknowledged responses form a ledger, waits for the child to die, then
// boots a clean child on the same data directory and checks the four
// recovery invariants against the ledger: no double-assigned slot (every
// acked node still holds exactly its acked codes), no lost acknowledged
// mutation, exactly-one-revocation, monotonic epoch. Each verify child is
// stopped with SIGTERM, so graceful drain-flushes-WAL is exercised every
// cycle: mutations acked just before the SIGTERM must survive into the
// next cycle's recovery.
//
// Any violation → exit 1.

// crashExitCode is how an armed child dies — the conventional SIGKILL
// status, distinguishable from flag errors (2) and ordinary failures (1).
const crashExitCode = 137

// harness pool sizing: small enough that provisions exhaust and joins
// trigger expansion rounds (epoch bumps) within a cycle's traffic.
const (
	harnessN     = 96
	harnessM     = 8
	harnessL     = 4
	harnessGamma = 3
)

// harnessLedger accumulates acknowledged state across every child of one
// crash point. Only fully received responses enter it, so everything in
// here was acknowledged and must survive any crash.
type harnessLedger struct {
	mu             sync.Mutex
	nodes          map[int][]codepool.CodeID
	maxEpoch       int
	maxSeq         uint64 // highest WAL sequence any acknowledged response carried
	revCode        int32
	revAcks        int
	revokedNowAcks int
	violations     []string
}

func newLedger(revCode int32) *harnessLedger {
	return &harnessLedger{nodes: map[int][]codepool.CodeID{}, revCode: revCode}
}

// ackSeq records the WAL sequence of an acknowledged mutation — the
// replica harness's promotion gate uses the maximum as "what any client
// knows was acknowledged".
func (l *harnessLedger) ackSeq(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.maxSeq {
		l.maxSeq = seq
	}
}

func (l *harnessLedger) ackedSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.maxSeq
}

func (l *harnessLedger) violate(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.violations = append(l.violations, fmt.Sprintf(format, args...))
}

func (l *harnessLedger) ackAssign(node int, codes []codepool.CodeID, epoch int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev, ok := l.nodes[node]; ok && !equalCodes(prev, codes) {
		l.violations = append(l.violations,
			fmt.Sprintf("node %d acked twice with different codes: %v then %v", node, prev, codes))
		return
	}
	l.nodes[node] = append([]codepool.CodeID(nil), codes...)
	if epoch > l.maxEpoch {
		l.maxEpoch = epoch
	}
}

func (l *harnessLedger) ackRevoke(res authd.RevokeResult) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.revAcks++
	if res.RevokedNow {
		l.revokedNowAcks++
		if l.revokedNowAcks > 1 {
			l.violations = append(l.violations,
				fmt.Sprintf("code %d acknowledged RevokedNow %d times", l.revCode, l.revokedNowAcks))
		}
	}
}

func equalCodes(a, b []codepool.CodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func runCrashHarness(opts options, out io.Writer) (int, error) {
	cycles := opts.crashCycles
	if cycles < 1 {
		cycles = 1
	}

	// Phase 1: in-process matrix, more cycles than the tier1-bounded test.
	matrixDir, err := os.MkdirTemp("", "jrsnd-crash-matrix-*")
	if err != nil {
		return 1, err
	}
	defer os.RemoveAll(matrixDir)
	fmt.Fprintf(out, "crash-harness: phase 1 — in-process matrix (%d points)\n", len(authd.CrashPoints))
	mp := serverConfig(opts).Params
	mp.N, mp.M, mp.L, mp.Gamma, mp.Q = harnessN, harnessM, harnessL, harnessGamma, 0
	reports, err := authd.RunCrashMatrix(authd.CrashConfig{
		Dir:         matrixDir,
		Params:      mp,
		Seed:        opts.seed,
		Cycles:      3 * cycles,
		OpsPerCycle: 64,
	})
	if err != nil {
		return 1, err
	}
	fmt.Fprint(out, authd.FormatCrashReports(reports))
	for _, r := range reports {
		if !r.Passed() {
			return 1, fmt.Errorf("in-process matrix: crash point %s violated invariants", r.Point)
		}
	}

	// Phase 2: subprocess kill-restart loop.
	exe, err := os.Executable()
	if err != nil {
		return 1, fmt.Errorf("locating own binary: %w", err)
	}
	work := opts.crashDir
	ephemeral := work == ""
	if ephemeral {
		if work, err = os.MkdirTemp("", "jrsnd-crash-proc-*"); err != nil {
			return 1, err
		}
	} else if err := os.MkdirAll(work, 0o755); err != nil {
		return 1, err
	}

	failed := false
	for _, pt := range authd.CrashPoints {
		fmt.Fprintf(out, "crash-harness: phase 2 — subprocess kill-restart at %s\n", pt)
		led := newLedger(3)
		dir := filepath.Join(work, "proc-"+string(pt))
		for cycle := 0; cycle < cycles; cycle++ {
			if err := runKillCycle(exe, dir, pt, cycle, opts.seed, led); err != nil {
				led.violate("cycle %d: %v", cycle, err)
				break
			}
		}
		// One last clean boot so mutations acked during the final cycle's
		// graceful pass are verified too.
		if len(led.violations) == 0 {
			if err := verifyCleanBoot(exe, dir, opts.seed, led); err != nil {
				led.violate("final verification: %v", err)
			}
		}
		if n := len(led.violations); n > 0 {
			failed = true
			fmt.Fprintf(out, "crash-harness: %s FAILED (%d violations)\n", pt, n)
			for _, v := range led.violations {
				fmt.Fprintf(out, "  violation: %s\n", v)
			}
		} else {
			fmt.Fprintf(out, "crash-harness: %s ok (%d acked nodes, %d revoke acks, epoch %d)\n",
				pt, len(led.nodes), led.revAcks, led.maxEpoch)
		}
	}
	if failed {
		return 1, errors.New("crash harness detected invariant violations")
	}
	if ephemeral {
		os.RemoveAll(work)
	}
	fmt.Fprintln(out, "crash-harness: all crash points survived kill-restart with invariants intact")
	return 0, nil
}

// runKillCycle runs one crash → recover → verify round: an armed child is
// driven until it dies at its crash point, then a clean child recovers the
// same directory, the ledger is checked against it, a few more tracked
// mutations are acked, and it is drained with SIGTERM.
func runKillCycle(exe, dir string, pt authd.CrashPoint, cycle int, seed int64, led *harnessLedger) error {
	// Append points fire per mutation; snapshot points fire once per
	// snapshot, so those children snapshot aggressively and crash on a
	// low hit count. Staggering by cycle moves the cut through the
	// workload (and across snapshot boundaries, since the directory's
	// mutation count carries over).
	crashAfter, snapEvery := 25+40*cycle, 64
	if pt == authd.CrashMidSnapshot || pt == authd.CrashMidTruncate {
		crashAfter, snapEvery = 1+cycle, 16
	}
	armed := []string{
		"-crash-point", string(pt),
		"-crash-after", strconv.Itoa(crashAfter),
	}
	ch, err := startChild(exe, dir, snapEvery, seed, armed)
	if err != nil {
		return fmt.Errorf("armed child: %w", err)
	}

	// Hammer it until it dies: background load (revoke weight 0 so the
	// tracked client owns all revocation accounting) plus tracked ops.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _ = authd.RunLoad(ctx, authd.LoadConfig{
			Target:       ch.url,
			Workers:      3,
			Requests:     200_000,
			MixProvision: 55,
			MixJoin:      45,
			MixRevoke:    0,
			Seed:         seed + int64(cycle),
			Timeout:      5 * time.Second,
		})
	}()
	go func() {
		defer wg.Done()
		trackedOps(ctx, ch.url, led, 0)
	}()

	state, werr := ch.wait(90 * time.Second)
	cancel()
	wg.Wait()
	if werr != nil {
		return fmt.Errorf("armed child never died: %w (output:\n%s)", werr, ch.output())
	}
	if state != crashExitCode {
		return fmt.Errorf("armed child exited %d, want %d (output:\n%s)", state, crashExitCode, ch.output())
	}

	// Recover on a clean child and verify every acked mutation survived;
	// then ack a few more mutations and drain it gracefully, so the next
	// cycle also proves SIGTERM flushed the WAL.
	v, err := startChild(exe, dir, snapEvery, seed, nil)
	if err != nil {
		return fmt.Errorf("recovery child: %w", err)
	}
	verifyLedger(v.url, led)
	trackedOps(context.Background(), v.url, led, 6)
	if err := v.terminate(); err != nil {
		return fmt.Errorf("graceful drain: %w (output:\n%s)", err, v.output())
	}
	return nil
}

// verifyCleanBoot boots one more clean child and re-checks the ledger —
// covering mutations acked after the last cycle's verification.
func verifyCleanBoot(exe, dir string, seed int64, led *harnessLedger) error {
	v, err := startChild(exe, dir, 64, seed, nil)
	if err != nil {
		return err
	}
	verifyLedger(v.url, led)
	return v.terminate()
}

// trackedOps drives acknowledged mutations into the ledger. With n == 0
// it runs until ctx is cancelled (racing a crash — errors are expected
// and simply not recorded); with n > 0 it performs exactly n acked ops
// against a healthy server and fails the ledger if any errors.
func trackedOps(ctx context.Context, url string, led *harnessLedger, n int) {
	cl := &authd.Client{Base: url, ClientID: "crash-harness", MaxAttempts: 1}
	mustAck := n > 0
	for i := 0; n == 0 || i < n; i++ {
		select {
		case <-ctx.Done():
			return
		default:
		}
		opCtx, cancelOp := context.WithTimeout(ctx, 5*time.Second)
		var err error
		switch i % 4 {
		case 0, 1:
			var res authd.ProvisionResponse
			if res, err = cl.Provision(opCtx, 1, "tracked"); err == nil {
				for _, a := range res.Nodes {
					led.ackAssign(a.Node, a.Codes, res.Epoch)
				}
				led.ackSeq(res.Seq)
			}
		case 2:
			var res authd.JoinResponse
			if res, err = cl.Join(opCtx, "tracked"); err == nil {
				led.ackAssign(res.Node, res.Codes, res.Epoch)
				led.ackSeq(res.Seq)
			}
		default:
			var res authd.RevokeResult
			if res, err = cl.Revoke(opCtx, led.revCode); err == nil {
				led.ackRevoke(res)
				led.ackSeq(res.Seq)
			}
		}
		cancelOp()
		if err != nil && !errors.Is(err, authd.ErrExhausted) {
			if mustAck {
				led.violate("tracked op against healthy server failed: %v", err)
				return
			}
			// Racing a crash: the child is dead or dying. Stop hammering.
			return
		}
	}
}

// verifyLedger checks every recovery invariant against a freshly
// recovered server.
func verifyLedger(url string, led *harnessLedger) {
	cl := &authd.Client{Base: url, ClientID: "crash-verify"}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Monotonic epoch: recovery must never report an epoch older than one
	// a client saw acknowledged.
	info, err := cl.Epoch(ctx)
	if err != nil {
		led.violate("epoch probe after recovery: %v", err)
		return
	}
	led.mu.Lock()
	maxEpoch, nodes := led.maxEpoch, make(map[int][]codepool.CodeID, len(led.nodes))
	for n, c := range led.nodes {
		nodes[n] = c
	}
	revAcks := led.revAcks
	led.mu.Unlock()
	if info.Epoch < maxEpoch {
		led.violate("epoch went backwards: recovered %d < acked %d", info.Epoch, maxEpoch)
	}

	// No lost acknowledged mutation / no double assignment: every acked
	// node must still exist with exactly its acked code set.
	for node, codes := range nodes {
		ni, err := cl.Node(ctx, node)
		if err != nil {
			led.violate("acked node %d lost after recovery: %v", node, err)
			continue
		}
		if !equalCodes(ni.Codes, codes) {
			led.violate("acked node %d recovered with codes %v, acked %v", node, ni.Codes, codes)
		}
	}

	// Revocation durability + exactly-once: past γ acknowledged reports
	// the code must be revoked, and re-reporting a revoked code must not
	// claim RevokedNow again. The probe report is itself acked, so it
	// joins the ledger.
	if revAcks > harnessGamma {
		res, err := cl.Revoke(ctx, led.revCode)
		if err != nil {
			led.violate("revoke probe after recovery: %v", err)
			return
		}
		led.ackRevoke(res)
		if !res.Revoked {
			led.violate("code %d had %d acked reports (γ=%d) but recovered unrevoked",
				led.revCode, revAcks, harnessGamma)
		}
	}
}

// child is one subprocess server instance.
type child struct {
	cmd    *exec.Cmd
	url    string
	lines  bytes.Buffer
	mu     sync.Mutex
	exited chan int       // exit status, buffered
	scanWg sync.WaitGroup // joins the stdout scanner goroutine
}

// startChild launches `exe` as a durable server on an ephemeral port,
// waits for its "serving on" line, and returns it running.
func startChild(exe, dir string, snapEvery int, seed int64, extra []string) (*child, error) {
	args := []string{
		"-addr", "127.0.0.1:0",
		"-data-dir", dir,
		"-n", strconv.Itoa(harnessN),
		"-m", strconv.Itoa(harnessM),
		"-l", strconv.Itoa(harnessL),
		"-gamma", strconv.Itoa(harnessGamma),
		"-seed", strconv.FormatInt(seed, 10),
		"-rate", "-1",
		"-snapshot-every", strconv.Itoa(snapEvery),
	}
	args = append(args, extra...)
	c := &child{cmd: exec.Command(exe, args...), exited: make(chan int, 1)}
	stdout, err := c.cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	c.cmd.Stderr = &lockedWriter{c: c}

	addrCh := make(chan string, 1)
	if err := c.cmd.Start(); err != nil {
		return nil, err
	}
	// The scanner goroutine terminates when the pipe closes on process
	// exit; scanWg joins it so reads of the line buffer after an exit
	// observe the complete output.
	c.scanWg.Add(1)
	go func() {
		defer c.scanWg.Done()
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			c.mu.Lock()
			c.lines.WriteString(line)
			c.lines.WriteByte('\n')
			c.mu.Unlock()
			if i := strings.Index(line, "serving on http://"); i >= 0 {
				fields := strings.Fields(line[i+len("serving on "):])
				select {
				case addrCh <- fields[0]:
				default:
				}
			}
		}
		err := c.cmd.Wait()
		code := 0
		var xe *exec.ExitError
		if errors.As(err, &xe) {
			code = xe.ExitCode()
		} else if err != nil {
			code = -1
		}
		c.exited <- code
	}()

	select {
	case c.url = <-addrCh:
		return c, nil
	case code := <-c.exited:
		c.exited <- code // keep it readable for wait()
		return nil, fmt.Errorf("child exited %d before serving (output:\n%s)", code, c.output())
	case <-time.After(30 * time.Second):
		_ = c.cmd.Process.Kill()
		return nil, fmt.Errorf("child never reported its address (output:\n%s)", c.output())
	}
}

// kill SIGKILLs the child — the replica harness's crash fault — and waits
// for it to die.
func (c *child) kill() {
	_ = c.cmd.Process.Kill()
	code := <-c.exited
	c.exited <- code // keep readable for a later wait()
	c.scanWg.Wait()
}

// wait blocks until the child exits on its own (the armed crash) and
// returns its exit status.
func (c *child) wait(timeout time.Duration) (int, error) {
	select {
	case code := <-c.exited:
		c.scanWg.Wait()
		return code, nil
	case <-time.After(timeout):
		_ = c.cmd.Process.Kill()
		<-c.exited
		c.scanWg.Wait()
		return 0, errors.New("timed out waiting for the armed crash")
	}
}

// terminate sends SIGTERM and requires a clean graceful drain (exit 0).
func (c *child) terminate() error {
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	code, err := c.wait(30 * time.Second)
	if err != nil {
		return err
	}
	if code != 0 {
		return fmt.Errorf("graceful shutdown exited %d", code)
	}
	return nil
}

func (c *child) output() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lines.String()
}

// lockedWriter folds the child's stderr into the same line buffer.
type lockedWriter struct{ c *child }

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.c.mu.Lock()
	defer w.c.mu.Unlock()
	return w.c.lines.Write(p)
}
