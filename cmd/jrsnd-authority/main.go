// Command jrsnd-authority runs the networked code-provisioning authority
// of §V-A/§V-D (internal/authd): an HTTP service that hands out
// pre-distributed spread-code sets, admits late joiners (running further
// distribution rounds when the pre-provisioned slots run out), and
// processes invalid-code reports through the γ-threshold revocation
// table. With -loadgen it instead drives a mixed provision/join/revoke
// workload — against -target, or against a private in-process server on
// a loopback ephemeral port — and prints throughput and p50/p99 latency.
//
// With -data-dir the authority is durable: every acknowledged mutation
// hits a write-ahead log before the response, periodic snapshots bound
// replay time, and a restart recovers the exact acknowledged state. The
// crash-fault flags exist for the harness: -crash-point kills the
// process (exit 137) at a named durability step, and -crash-harness runs
// the full kill-restart matrix against a real subprocess under load.
//
// With -follow the process serves as a follower replica: it streams the
// primary's acknowledged WAL over /v1/replicate, applies records through
// the recovery path with per-record fingerprint verification, redirects
// mutations to the primary (421 + X-JRSND-Primary), and can be promoted
// with POST /v1/promote. -replica-harness runs the replication-fault
// harness: replica kill/restart under load, an asymmetric partition that
// forces a snapshot catch-up, and primary kill + gated promotion +
// client failover, verifying the acknowledged-state ledger on every
// surviving replica.
//
//	jrsnd-authority -addr 127.0.0.1:7946 -n 2000 -m 100 -l 40
//	jrsnd-authority -addr 127.0.0.1:7946 -data-dir /var/lib/jrsnd -min-sync 1
//	jrsnd-authority -addr 127.0.0.1:7947 -data-dir /var/lib/jrsnd-f1 -follow http://127.0.0.1:7946,http://127.0.0.1:7947
//	jrsnd-authority -loadgen -requests 5000 -workers 8
//	jrsnd-authority -loadgen -target http://127.0.0.1:7946,http://127.0.0.1:7947 -mix 50,25,25
//	jrsnd-authority -crash-harness -crash-cycles 2
//	jrsnd-authority -replica-harness -replica-cycles 1
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/authd"
)

type options struct {
	addr  string
	n     int
	m     int
	l     int
	gamma int
	seed  int64

	shards int
	rate   float64
	burst  int
	pprof  bool

	dataDir    string
	snapEvery  int
	fsyncEvery int

	follow     string
	followerID string
	minSync    int

	crashPoint   string
	crashAfter   int
	crashHarness bool
	crashCycles  int
	crashDir     string

	replicaHarness bool
	replicaCycles  int

	loadgen  bool
	target   string
	workers  int
	requests int
	mix      string
	batch    int
	jsonOut  string
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", "127.0.0.1:7946", "listen address (server mode)")
	flag.IntVar(&opts.n, "n", 512, "deployment slots n")
	flag.IntVar(&opts.m, "m", 16, "codes per node m")
	flag.IntVar(&opts.l, "l", 8, "nodes sharing each code l")
	flag.IntVar(&opts.gamma, "gamma", 5, "revocation threshold γ")
	flag.Int64Var(&opts.seed, "seed", 1, "pool seed")
	flag.IntVar(&opts.shards, "shards", 0, "state shards (0 = derived from GOMAXPROCS)")
	flag.Float64Var(&opts.rate, "rate", 0, "per-client req/s (0 = default 64, negative = unlimited)")
	flag.IntVar(&opts.burst, "burst", 0, "per-client burst (0 = default)")
	flag.BoolVar(&opts.pprof, "pprof", false, "mount /debug/pprof/ and fold Go runtime gauges into /metrics")
	flag.StringVar(&opts.dataDir, "data-dir", "", "durable data directory (WAL + snapshots); empty = in-memory")
	flag.IntVar(&opts.snapEvery, "snapshot-every", 0, "snapshot+truncate after this many mutations (0 = default 4096, negative = off)")
	flag.IntVar(&opts.fsyncEvery, "fsync-every", 0, "WAL appends per fsync (0 or 1 = every append)")
	flag.StringVar(&opts.follow, "follow", "", "comma-separated replica URLs: serve as a follower replicating from whichever is primary (requires -data-dir)")
	flag.StringVar(&opts.followerID, "follower-id", "", "stable follower identity for replication acks (default follower-<pid>)")
	flag.IntVar(&opts.minSync, "min-sync", 0, "followers that must hold a mutation before it is acknowledged (0 = async)")
	flag.StringVar(&opts.crashPoint, "crash-point", "", "crash-fault injection: os.Exit(137) at this WAL/snapshot point (requires -data-dir)")
	flag.IntVar(&opts.crashAfter, "crash-after", 1, "crash at the Nth hit of -crash-point")
	flag.BoolVar(&opts.crashHarness, "crash-harness", false, "run the crash-fault harness: in-process matrix + subprocess kill-restart loop")
	flag.IntVar(&opts.crashCycles, "crash-cycles", 2, "crash harness: kill-restart cycles per crash point")
	flag.StringVar(&opts.crashDir, "crash-dir", "", "crash harness: working directory (empty = a temp dir, removed on success)")
	flag.BoolVar(&opts.replicaHarness, "replica-harness", false, "run the replication-fault harness: replica kill/restart, partitions, primary kill + promotion")
	flag.IntVar(&opts.replicaCycles, "replica-cycles", 1, "replica harness: fault cycles")
	flag.BoolVar(&opts.loadgen, "loadgen", false, "run the load generator instead of serving")
	flag.StringVar(&opts.target, "target", "", "loadgen target URL (empty = boot an in-process server)")
	flag.IntVar(&opts.workers, "workers", 8, "loadgen concurrent workers")
	flag.IntVar(&opts.requests, "requests", 2000, "loadgen total operations")
	flag.StringVar(&opts.mix, "mix", "70,10,20", "loadgen provision,join,revoke weights")
	flag.IntVar(&opts.batch, "batch", 1, "loadgen slots per provision request")
	flag.StringVar(&opts.jsonOut, "json", "", "loadgen: also write the report as JSON to this file")
	flag.Parse()

	code, err := run(opts, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrsnd-authority:", err)
	}
	os.Exit(code)
}

// run executes one mode and returns the process exit code. Exit 2 marks
// bad flag combinations, matching the jrsnd-sim convention.
func run(opts options, out io.Writer) (int, error) {
	if opts.replicaHarness {
		if opts.loadgen || opts.crashHarness || opts.crashPoint != "" || opts.follow != "" {
			return 2, fmt.Errorf("-replica-harness excludes -loadgen, -crash-harness, -crash-point, and -follow")
		}
		return runReplicaHarness(opts, out)
	}
	if opts.crashHarness {
		if opts.loadgen || opts.crashPoint != "" {
			return 2, fmt.Errorf("-crash-harness excludes -loadgen and -crash-point")
		}
		return runCrashHarness(opts, out)
	}
	if opts.follow != "" {
		if opts.loadgen || opts.crashPoint != "" {
			return 2, fmt.Errorf("-follow excludes -loadgen and -crash-point")
		}
		if opts.dataDir == "" {
			return 2, fmt.Errorf("-follow requires -data-dir")
		}
		return runFollower(opts, out)
	}
	if opts.crashPoint != "" {
		if opts.dataDir == "" {
			return 2, fmt.Errorf("-crash-point requires -data-dir")
		}
		if !validCrashPoint(opts.crashPoint) {
			return 2, fmt.Errorf("unknown crash point %q (valid: %v)", opts.crashPoint, authd.CrashPoints)
		}
	}
	if opts.loadgen {
		if opts.dataDir != "" {
			return 2, fmt.Errorf("-data-dir is a server-mode flag; point -loadgen at a durable server with -target")
		}
		return runLoadgen(opts, out)
	}
	if opts.target != "" {
		return 2, fmt.Errorf("-target requires -loadgen")
	}
	return runServer(opts, out)
}

func validCrashPoint(name string) bool {
	for _, p := range authd.CrashPoints {
		if string(p) == name {
			return true
		}
	}
	return false
}

func serverConfig(opts options) authd.Config {
	p := analysis.Defaults()
	p.N, p.M, p.L, p.Gamma = opts.n, opts.m, opts.l, opts.gamma
	return authd.Config{
		Params:          p,
		Seed:            opts.seed,
		Shards:          opts.shards,
		Rate:            opts.rate,
		Burst:           opts.burst,
		EnableProfiling: opts.pprof,
		Durable: authd.Durability{
			Dir:           opts.dataDir,
			SnapshotEvery: opts.snapEvery,
			FsyncEvery:    opts.fsyncEvery,
		},
		Replication: authd.ReplicationConfig{MinSync: opts.minSync},
	}
}

// runFollower serves as a follower replica: the managed server replicates
// from whichever -follow candidate is primary, refuses mutations with a
// redirect hint, and can be promoted via POST /v1/promote.
func runFollower(opts options, out io.Writer) (int, error) {
	id := opts.followerID
	if id == "" {
		id = fmt.Sprintf("follower-%d", os.Getpid())
	}
	primaries := strings.Split(opts.follow, ",")
	for i := range primaries {
		primaries[i] = strings.TrimSpace(primaries[i])
	}
	f, err := authd.StartFollower(authd.FollowerConfig{
		Server:    serverConfig(opts),
		Primaries: primaries,
		ID:        id,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(out, "jrsnd-authority: "+format+"\n", args...)
		},
	})
	if err != nil {
		return 1, err
	}
	addr, err := f.Start(opts.addr)
	if err != nil {
		return 1, err
	}
	fmt.Fprintf(out, "jrsnd-authority: serving on http://%s (follower %s, n=%d m=%d l=%d γ=%d)\n",
		addr, id, opts.n, opts.m, opts.l, opts.gamma)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case <-stop:
	case err := <-f.Fatal():
		// A fingerprint divergence at apply time: the replica refuses to
		// serve a second history. Exit 4 so harnesses can tell this from
		// ordinary failures.
		fmt.Fprintln(out, "jrsnd-authority: FATAL:", err)
		return 4, err
	}
	fmt.Fprintln(out, "jrsnd-authority: draining…")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Close(ctx); err != nil {
		return 1, fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(out, "jrsnd-authority: stopped")
	return 0, nil
}

func runServer(opts options, out io.Writer) (int, error) {
	cfg := serverConfig(opts)
	if opts.crashPoint != "" {
		// Armed crash: die with the conventional SIGKILL code at the Nth
		// hit, simulating a power cut at exactly that durability step.
		target := authd.CrashPoint(opts.crashPoint)
		after := int64(opts.crashAfter)
		if after < 1 {
			after = 1
		}
		var hits atomic.Int64
		cfg.Durable.CrashHook = func(p authd.CrashPoint) {
			if p == target && hits.Add(1) == after {
				os.Exit(crashExitCode)
			}
		}
	}
	srv, err := authd.New(cfg)
	if err != nil {
		return 1, err
	}
	addr, err := srv.Start(opts.addr)
	if err != nil {
		return 1, err
	}
	fmt.Fprintf(out, "jrsnd-authority: serving on http://%s (n=%d m=%d l=%d γ=%d)\n",
		addr, opts.n, opts.m, opts.l, opts.gamma)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Fprintln(out, "jrsnd-authority: draining…")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return 1, fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(out, "jrsnd-authority: stopped")
	return 0, nil
}

func parseMix(mix string) (p, j, r int, err error) {
	parts := strings.Split(mix, ",")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("mix %q must be three comma-separated weights", mix)
	}
	vals := make([]int, 3)
	for i, part := range parts {
		vals[i], err = strconv.Atoi(strings.TrimSpace(part))
		if err != nil || vals[i] < 0 {
			return 0, 0, 0, fmt.Errorf("mix %q: bad weight %q", mix, part)
		}
	}
	if vals[0]+vals[1]+vals[2] == 0 {
		return 0, 0, 0, fmt.Errorf("mix %q sums to zero", mix)
	}
	return vals[0], vals[1], vals[2], nil
}

func runLoadgen(opts options, out io.Writer) (int, error) {
	mp, mj, mr, err := parseMix(opts.mix)
	if err != nil {
		return 2, err
	}

	target := opts.target
	if target == "" {
		// Self-contained mode: boot a private server on a loopback
		// ephemeral port and drive it. Rate limiting is disabled — the
		// point is to measure the service, not the limiter.
		cfg := serverConfig(opts)
		cfg.Rate = -1
		srv, err := authd.New(cfg)
		if err != nil {
			return 1, err
		}
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return 1, err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		target = "http://" + addr
		fmt.Fprintf(out, "loadgen: booted in-process server on %s\n", target)
	}

	lc := authd.LoadConfig{
		Target:       target,
		Workers:      opts.workers,
		Requests:     opts.requests,
		MixProvision: mp,
		MixJoin:      mj,
		MixRevoke:    mr,
		Batch:        opts.batch,
		Seed:         opts.seed,
	}
	if strings.Contains(target, ",") {
		// A replica set: workers fail over across the replicas and follow
		// not-primary redirects to wherever mutations are accepted.
		lc.Target, lc.Targets = "", strings.Split(target, ",")
	}
	report, err := authd.RunLoad(context.Background(), lc)
	if err != nil {
		return 1, err
	}
	fmt.Fprint(out, report.Format())
	if opts.jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return 1, err
		}
		if err := os.WriteFile(opts.jsonOut, append(data, '\n'), 0o644); err != nil {
			return 1, err
		}
		fmt.Fprintf(out, "loadgen: report written to %s\n", opts.jsonOut)
	}
	if report.Errors > 0 {
		return 1, fmt.Errorf("%d operations failed", report.Errors)
	}
	return 0, nil
}
