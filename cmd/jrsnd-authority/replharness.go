package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/authd"
	"repro/internal/codepool"
)

// Replication-fault harness (`jrsnd-authority -replica-harness`, `make
// authd-replica`). It boots a three-replica group as real subprocesses —
// one durable primary with -min-sync 1 and two followers replicating from
// it — then runs fault cycles against it while a tracked client builds an
// acknowledged-state ledger through the failover client (so the harness
// itself exercises endpoint rotation and the 421-redirect-to-primary
// path):
//
//  1. Follower kill/restart: SIGKILL a follower mid-load, keep
//     acknowledging mutations (min-sync 1 is satisfied by the survivor),
//     restart it on the same directory, and require the whole group to
//     converge to one (sequence, fingerprint).
//  2. Asymmetric partition → snapshot catch-up: pause a follower's pull
//     loop (the follower cannot reach the primary; the primary never
//     dials out, so nothing else changes), push the primary past its
//     snapshot window so the paused follower's position falls off the
//     compacted stream, unpause, and require it to re-bootstrap via the
//     snapshot transfer (checked against its
//     jrsnd_authd_catchup_snapshots_total metric).
//  3. Primary kill → gated promotion → failover: pause one follower to
//     force lag, acknowledge more mutations (held only by the live
//     follower), SIGKILL the primary, then require the promotion gate to
//     REFUSE the lagging follower (409) and accept the up-to-date one;
//     clients fail over to the new primary with no reconfiguration, the
//     old primary restarts as a follower (any unacknowledged tail it
//     fsynced before dying must be detected as divergent and wiped, never
//     served), and the group converges again.
//
// After every cycle the four recovery invariants are checked against
// EVERY live replica — reads go to each replica directly, so a follower
// that lost an acknowledged mutation cannot hide behind the primary:
// no double-assigned slot, no lost acknowledged mutation,
// exactly-one-revocation, monotonic epoch. Any violation → exit 1.

const (
	replSnapEvery = 48
	replicaCount  = 3
)

// replGroup is the harness's view of the replica set. Addresses are
// reserved up front and stay fixed across restarts: every replica must
// know every other replica's URL before any of them starts, and a
// restarted replica must come back where its peers (and the ledger
// client's endpoint list) already expect it.
type replGroup struct {
	exe   string
	seed  int64
	addrs []string
	urls  []string
	dirs  []string
	kids  []*child // index-aligned with urls; nil while down
	out   io.Writer
}

func runReplicaHarness(opts options, out io.Writer) (int, error) {
	cycles := opts.replicaCycles
	if cycles < 1 {
		cycles = 1
	}
	exe, err := os.Executable()
	if err != nil {
		return 1, fmt.Errorf("locating own binary: %w", err)
	}
	work, err := os.MkdirTemp("", "jrsnd-replica-*")
	if err != nil {
		return 1, err
	}

	g := &replGroup{exe: exe, seed: opts.seed, out: out}
	for i := 0; i < replicaCount; i++ {
		addr, err := reserveAddr()
		if err != nil {
			return 1, err
		}
		g.addrs = append(g.addrs, addr)
		g.urls = append(g.urls, "http://"+addr)
		g.dirs = append(g.dirs, filepath.Join(work, fmt.Sprintf("replica-%d", i)))
	}
	g.kids = make([]*child, replicaCount)

	fmt.Fprintf(out, "replica-harness: %d-replica group (min-sync 1, snapshot-every %d) at %s\n",
		replicaCount, replSnapEvery, strings.Join(g.urls, " "))
	if err := g.startPrimary(0); err != nil {
		return 1, err
	}
	for i := 1; i < replicaCount; i++ {
		if err := g.startFollower(i); err != nil {
			return 1, err
		}
	}

	led := newLedger(3)
	for cycle := 0; cycle < cycles; cycle++ {
		fmt.Fprintf(out, "replica-harness: cycle %d — follower kill/restart under load\n", cycle)
		if err := g.followerKillCycle(led); err != nil {
			led.violate("follower kill cycle %d: %v", cycle, err)
			break
		}
		fmt.Fprintf(out, "replica-harness: cycle %d — partition + snapshot catch-up\n", cycle)
		if err := g.partitionCatchupCycle(led); err != nil {
			led.violate("partition cycle %d: %v", cycle, err)
			break
		}
		fmt.Fprintf(out, "replica-harness: cycle %d — primary kill, gated promotion, failover\n", cycle)
		if err := g.promotionCycle(led); err != nil {
			led.violate("promotion cycle %d: %v", cycle, err)
			break
		}
	}

	for _, c := range g.kids {
		if c != nil {
			c.kill()
		}
	}
	if n := len(led.violations); n > 0 {
		fmt.Fprintf(out, "replica-harness: FAILED (%d violations)\n", n)
		for _, v := range led.violations {
			fmt.Fprintf(out, "  violation: %s\n", v)
		}
		for i, c := range g.kids {
			if c == nil {
				continue
			}
			fmt.Fprintf(out, "replica-harness: replica %d output:\n%s\n", i, c.output())
		}
		return 1, errors.New("replica harness detected invariant violations")
	}
	os.RemoveAll(work)
	fmt.Fprintf(out, "replica-harness: all cycles passed (%d acked nodes, max acked seq %d, epoch %d)\n",
		len(led.nodes), led.ackedSeq(), led.maxEpoch)
	return 0, nil
}

// reserveAddr picks a free loopback port and releases it for the child.
func reserveAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	return addr, ln.Close()
}

func (g *replGroup) startPrimary(i int) error {
	c, err := startChild(g.exe, g.dirs[i], replSnapEvery, g.seed, []string{
		"-addr", g.addrs[i], "-min-sync", "1",
	})
	if err != nil {
		return fmt.Errorf("primary %d: %w", i, err)
	}
	g.kids[i] = c
	return nil
}

// startFollower boots replica i as a follower. The follow list is the
// whole group — including itself, which reports the follower role and is
// skipped by primary discovery — and -min-sync 1 is set so that if this
// replica is later promoted, it acknowledges under the same durability
// contract the original primary had.
func (g *replGroup) startFollower(i int) error {
	c, err := startChild(g.exe, g.dirs[i], replSnapEvery, g.seed, []string{
		"-addr", g.addrs[i],
		"-follow", strings.Join(g.urls, ","),
		"-follower-id", fmt.Sprintf("replica-%d", i),
		"-min-sync", "1",
	})
	if err != nil {
		return fmt.Errorf("follower %d: %w", i, err)
	}
	g.kids[i] = c
	return nil
}

// roles asks every live replica for its role and returns the primary's
// index plus the follower indices. Exactly one primary is itself an
// invariant here.
func (g *replGroup) roles() (int, []int, error) {
	prim := -1
	var fols []int
	for i, url := range g.urls {
		if g.kids[i] == nil {
			continue
		}
		st, err := authd.FetchReplicationStatus(nil, url)
		if err != nil {
			return 0, nil, fmt.Errorf("role probe %s: %w", url, err)
		}
		if st.Role == "primary" {
			if prim >= 0 {
				return 0, nil, fmt.Errorf("two primaries: %s and %s", g.urls[prim], url)
			}
			prim = i
		} else {
			fols = append(fols, i)
		}
	}
	if prim < 0 {
		return 0, nil, errors.New("no replica reports the primary role")
	}
	return prim, fols, nil
}

// ack drives n tracked mutations through the failover client — the same
// provision/join/revoke mix as the crash harness, routed over the full
// endpoint list. With tolerate set, ErrUnavailable is an accepted
// outcome (mid-fault there may briefly be no reachable primary);
// anything else unexpected is a violation. Only fully received responses
// enter the ledger.
func (g *replGroup) ack(led *harnessLedger, n int, tolerate bool) {
	cl := &authd.Client{Endpoints: append([]string(nil), g.urls...), ClientID: "replica-harness"}
	for i := 0; i < n; i++ {
		opCtx, cancelOp := context.WithTimeout(context.Background(), 15*time.Second)
		var err error
		switch i % 4 {
		case 0, 1:
			var res authd.ProvisionResponse
			if res, err = cl.Provision(opCtx, 1, "tracked"); err == nil {
				for _, a := range res.Nodes {
					led.ackAssign(a.Node, a.Codes, res.Epoch)
				}
				led.ackSeq(res.Seq)
			}
		case 2:
			var res authd.JoinResponse
			if res, err = cl.Join(opCtx, "tracked"); err == nil {
				led.ackAssign(res.Node, res.Codes, res.Epoch)
				led.ackSeq(res.Seq)
			}
		default:
			var res authd.RevokeResult
			if res, err = cl.Revoke(opCtx, led.revCode); err == nil {
				led.ackRevoke(res)
				led.ackSeq(res.Seq)
			}
		}
		cancelOp()
		switch {
		case err == nil, errors.Is(err, authd.ErrExhausted):
		case tolerate && errors.Is(err, authd.ErrUnavailable):
		default:
			led.violate("tracked op failed: %v", err)
			return
		}
	}
}

// drive acknowledges mutations until the acked WAL sequence advances by
// at least records. Revokes always append a record, so this terminates
// even once the slot pool is exhausted; the op budget bounds it anyway.
func (g *replGroup) drive(led *harnessLedger, records uint64) error {
	target := led.ackedSeq() + records
	for budget := 0; budget < 64; budget++ {
		if led.ackedSeq() >= target {
			return nil
		}
		g.ack(led, 16, false)
		if len(led.violations) > 0 {
			return errors.New("tracked ops failed while driving the WAL forward")
		}
	}
	return fmt.Errorf("could not advance the acked sequence to %d (at %d)", target, led.ackedSeq())
}

// waitConverged polls the replica set until every live member reports
// the same (last_seq, fingerprint) and exactly one is primary.
// Fingerprint equality is the strong check: equal chains mean equal
// histories, record for record.
func (g *replGroup) waitConverged(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	last := "no probe completed"
	for time.Now().Before(deadline) {
		sts := make([]authd.ReplicationStatus, 0, len(g.urls))
		ok := true
		for i, url := range g.urls {
			if g.kids[i] == nil {
				continue
			}
			st, err := authd.FetchReplicationStatus(nil, url)
			if err != nil {
				ok = false
				last = fmt.Sprintf("%s unreachable: %v", url, err)
				break
			}
			sts = append(sts, st)
		}
		if ok && len(sts) > 0 {
			primaries := 0
			agree := true
			for _, st := range sts {
				if st.Role == "primary" {
					primaries++
				}
				if st.LastSeq != sts[0].LastSeq || st.FP != sts[0].FP {
					agree = false
				}
			}
			if primaries == 1 && agree {
				return nil
			}
			last = fmt.Sprintf("%d primaries, states %v", primaries, summarize(sts))
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("replicas did not converge within %v (last: %s)", timeout, last)
}

func summarize(sts []authd.ReplicationStatus) []string {
	out := make([]string, len(sts))
	for i, st := range sts {
		fp := st.FP
		if len(fp) > 8 {
			fp = fp[:8]
		}
		out[i] = fmt.Sprintf("%s@%d/%s", st.Role, st.LastSeq, fp)
	}
	return out
}

// verifyAll checks the ledger invariants against every live replica.
func (g *replGroup) verifyAll(led *harnessLedger) {
	for i, url := range g.urls {
		if g.kids[i] == nil {
			continue
		}
		g.verifyReplica(url, led)
	}
}

// verifyReplica is the read-only ledger check against one replica:
// every acked node present with exactly its acked codes, epoch
// monotonic, and the acknowledged revocation still in force. It is
// read-only (unlike the crash harness's verifyLedger, whose probe
// revoke is a mutation) so it can run against followers directly.
func (g *replGroup) verifyReplica(url string, led *harnessLedger) {
	cl := &authd.Client{Base: url, ClientID: "replica-verify"}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	info, err := cl.Epoch(ctx)
	if err != nil {
		led.violate("%s: epoch probe: %v", url, err)
		return
	}
	led.mu.Lock()
	maxEpoch := led.maxEpoch
	nodes := make(map[int][]codepool.CodeID, len(led.nodes))
	for n, c := range led.nodes {
		nodes[n] = c
	}
	revokedNow := led.revokedNowAcks
	led.mu.Unlock()
	if info.Epoch < maxEpoch {
		led.violate("%s: epoch went backwards: %d < acked %d", url, info.Epoch, maxEpoch)
	}
	for node, codes := range nodes {
		ni, err := cl.Node(ctx, node)
		if err != nil {
			led.violate("%s: acked node %d lost: %v", url, node, err)
			continue
		}
		if !equalCodes(ni.Codes, codes) {
			led.violate("%s: node %d holds codes %v, acked %v", url, node, ni.Codes, codes)
		}
	}
	if revokedNow > 0 && info.Revoked < 1 {
		led.violate("%s: acknowledged revocation of code %d missing", url, led.revCode)
	}
}

// followerKillCycle: SIGKILL a follower while background load and
// tracked mutations are in flight, keep acknowledging with one follower
// down, restart it on its own directory, converge, verify everywhere.
func (g *replGroup) followerKillCycle(led *harnessLedger) error {
	_, fols, err := g.roles()
	if err != nil {
		return err
	}
	if len(fols) == 0 {
		return errors.New("no follower to kill")
	}
	victim := fols[len(fols)-1]

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Background load over the full endpoint list: revoke weight 0 so
		// the tracked client owns all revocation accounting, Unavailable
		// outcomes expected while the victim is down.
		_, _ = authd.RunLoad(ctx, authd.LoadConfig{
			Targets:      append([]string(nil), g.urls...),
			Workers:      3,
			Requests:     200_000,
			MixProvision: 55,
			MixJoin:      45,
			MixRevoke:    0,
			Seed:         g.seed + 17,
			Timeout:      5 * time.Second,
		})
	}()

	g.ack(led, 16, false)
	g.kids[victim].kill()
	g.kids[victim] = nil
	// The group must keep acknowledging with one follower down: min-sync 1
	// is satisfied by the surviving follower.
	g.ack(led, 24, true)
	if err := g.startFollower(victim); err != nil {
		cancel()
		wg.Wait()
		return err
	}
	g.ack(led, 8, true)
	cancel()
	wg.Wait()

	if err := g.waitConverged(30 * time.Second); err != nil {
		return err
	}
	g.verifyAll(led)
	return nil
}

// partitionCatchupCycle: pause one follower's pull loop, push the
// primary past its snapshot window so the follower's position is
// compacted out of the stream, unpause, and require a snapshot
// re-bootstrap (observed via the follower's catch-up counter).
func (g *replGroup) partitionCatchupCycle(led *harnessLedger) error {
	_, fols, err := g.roles()
	if err != nil {
		return err
	}
	if len(fols) == 0 {
		return errors.New("no follower to partition")
	}
	lagged := g.urls[fols[0]]

	before, err := scrapeCounter(lagged, "jrsnd_authd_catchup_snapshots_total")
	if err != nil {
		return fmt.Errorf("scrape before partition: %w", err)
	}
	if err := postPause(lagged, true); err != nil {
		return fmt.Errorf("pause %s: %w", lagged, err)
	}
	// Two snapshot windows of acknowledged mutations: the primary
	// snapshots and compacts its stream, so the paused follower's
	// position precedes the stream base and only a snapshot can catch it
	// up.
	if err := g.drive(led, 2*replSnapEvery+16); err != nil {
		return err
	}
	if err := postPause(lagged, false); err != nil {
		return fmt.Errorf("unpause %s: %w", lagged, err)
	}
	if err := g.waitConverged(30 * time.Second); err != nil {
		return err
	}
	after, err := scrapeCounter(lagged, "jrsnd_authd_catchup_snapshots_total")
	if err != nil {
		return fmt.Errorf("scrape after catch-up: %w", err)
	}
	if after <= before {
		return fmt.Errorf("%s converged without a snapshot catch-up (counter %v -> %v); the partition did not exercise the bootstrap path", lagged, before, after)
	}
	g.verifyAll(led)
	return nil
}

// promotionCycle: induce lag on one follower, kill the primary, require
// the promotion gate to refuse the laggard and accept the up-to-date
// follower, fail clients over, rejoin the old primary as a follower, and
// converge.
func (g *replGroup) promotionCycle(led *harnessLedger) error {
	prim, fols, err := g.roles()
	if err != nil {
		return err
	}
	if len(fols) < 2 {
		return fmt.Errorf("need two followers for the promotion cycle, have %d", len(fols))
	}
	lag, up := fols[0], fols[1]

	// Lag one follower, then acknowledge mutations only the other holds.
	if err := postPause(g.urls[lag], true); err != nil {
		return fmt.Errorf("pause %s: %w", g.urls[lag], err)
	}
	g.ack(led, 16, false)
	minSeq := led.ackedSeq()

	g.kids[prim].kill()
	g.kids[prim] = nil

	// No lost acknowledged mutation across the replica set: min-sync 1
	// means every acked record was fetched durably by at least one
	// follower before the client saw it.
	stUp, err := authd.FetchReplicationStatus(nil, g.urls[up])
	if err != nil {
		return fmt.Errorf("status of %s after primary kill: %w", g.urls[up], err)
	}
	if stUp.LastSeq < minSeq {
		return fmt.Errorf("%s holds seq %d < max acked %d: an acknowledged mutation exists on no surviving replica", g.urls[up], stUp.LastSeq, minSeq)
	}
	stLag, err := authd.FetchReplicationStatus(nil, g.urls[lag])
	if err != nil {
		return fmt.Errorf("status of %s after primary kill: %w", g.urls[lag], err)
	}
	if stLag.LastSeq >= minSeq {
		return fmt.Errorf("%s was paused but holds seq %d >= acked %d; the lag induction failed", g.urls[lag], stLag.LastSeq, minSeq)
	}

	// The promotion gate must refuse the follower that does not hold the
	// full acknowledged prefix…
	if status, err := postPromote(g.urls[lag], minSeq); err != nil {
		return fmt.Errorf("gate probe on %s: %w", g.urls[lag], err)
	} else if status != http.StatusConflict {
		return fmt.Errorf("promotion gate did not refuse the lagging follower: status %d, want %d", status, http.StatusConflict)
	}
	// …and accept the one that does.
	if status, err := postPromote(g.urls[up], minSeq); err != nil {
		return fmt.Errorf("promote %s: %w", g.urls[up], err)
	} else if status != http.StatusOK {
		return fmt.Errorf("promoting the up-to-date follower failed: status %d", status)
	}
	if err := postPause(g.urls[lag], false); err != nil {
		return fmt.Errorf("unpause %s: %w", g.urls[lag], err)
	}

	// Clients fail over: mutations keep landing through the same endpoint
	// list with no reconfiguration.
	g.ack(led, 24, true)

	// The old primary rejoins as a follower. Any unacknowledged tail it
	// fsynced before dying is not part of the acknowledged history; the
	// new primary must report it divergent and the rejoiner must wipe and
	// re-bootstrap rather than serve it.
	if err := g.startFollower(prim); err != nil {
		return err
	}
	g.ack(led, 8, true)
	if err := g.waitConverged(45 * time.Second); err != nil {
		return err
	}
	g.verifyAll(led)
	return nil
}

// postPause toggles a follower's pull loop — the harness's asymmetric
// partition (the follower stops reaching the primary; nothing else
// changes).
func postPause(url string, paused bool) error {
	body := strings.NewReader(fmt.Sprintf(`{"paused":%v}`, paused))
	resp, err := http.Post(url+"/v1/replpause", "application/json", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replpause: %s", resp.Status)
	}
	return nil
}

// postPromote asks a replica to become primary and returns the HTTP
// status — the gate refusal is a status, not a transport error.
func postPromote(url string, minSeq uint64) (int, error) {
	body := strings.NewReader(fmt.Sprintf(`{"min_seq":%d}`, minSeq))
	resp, err := http.Post(url+"/v1/promote", "application/json", body)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	return resp.StatusCode, nil
}

// scrapeCounter reads one instrument's value from a replica's /metrics.
func scrapeCounter(url, name string) (float64, error) {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
			fields := strings.Fields(line)
			if len(fields) == 2 {
				return strconv.ParseFloat(fields[1], 64)
			}
		}
	}
	return 0, fmt.Errorf("metric %s not found on %s", name, url)
}
