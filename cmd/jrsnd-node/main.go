// Command jrsnd-node runs one JR-SND neighbor-discovery daemon over real
// UDP sockets (internal/transport). On boot it fetches its code-slot
// assignment from a running jrsnd-authority, derives its handshake key,
// binds the datagram socket, and then works its configured peer set:
// dialing until every peer has completed the authenticated handshake,
// beaconing wire HELLO frames, and recording which neighbors it has
// discovered. An HTTP sidecar serves /metrics (Prometheus exposition),
// /status (JSON), and /healthz; -trace streams the transport's
// peer-lifecycle and drop events as JSONL.
//
//	jrsnd-node -authority http://127.0.0.1:7946 -node-id 3 \
//	    -addr 127.0.0.1:9003 -peers 127.0.0.1:9001,127.0.0.1:9002
//
// With -e2e it instead runs the multi-process end-to-end harness (`make
// node-e2e`): boot a real authority plus -e2e-nodes daemons on loopback,
// wait for full mutual discovery, SIGKILL one daemon, verify its peers
// reap it, restart it on the same slot and address, verify re-discovery,
// and require zero invariant violations and clean shutdowns throughout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/authd"
	"repro/internal/ibc"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

type options struct {
	authority string
	nodeID    int
	addr      string
	httpAddr  string
	peers     string
	beacon    time.Duration
	idleAfter time.Duration
	pingEvery time.Duration
	maxPeers  int
	tracePath string

	e2e          bool
	e2eNodes     int
	e2eAuthority string
	e2eDir       string
}

func main() {
	var opts options
	flag.StringVar(&opts.authority, "authority", "", "jrsnd-authority base URL (required)")
	flag.IntVar(&opts.nodeID, "node-id", -1, "this daemon's provisioned slot ID (required)")
	flag.StringVar(&opts.addr, "addr", "127.0.0.1:0", "UDP listen address")
	flag.StringVar(&opts.httpAddr, "http", "127.0.0.1:0", "HTTP sidecar address (/metrics, /status, /healthz)")
	flag.StringVar(&opts.peers, "peers", "", "comma-separated peer UDP addresses to discover")
	flag.DurationVar(&opts.beacon, "beacon", 250*time.Millisecond, "beacon interval: re-dial unregistered peers and broadcast a HELLO frame")
	flag.DurationVar(&opts.idleAfter, "idle-after", 30*time.Second, "reap a peer silent this long")
	flag.DurationVar(&opts.pingEvery, "ping-every", 0, "keepalive probe interval (0 = idle-after/3)")
	flag.IntVar(&opts.maxPeers, "max-peers", 64, "peer table cap")
	flag.StringVar(&opts.tracePath, "trace", "", "write transport trace events to this JSONL file")
	flag.BoolVar(&opts.e2e, "e2e", false, "run the multi-process e2e harness instead of serving")
	flag.IntVar(&opts.e2eNodes, "e2e-nodes", 8, "e2e: number of node daemons")
	flag.StringVar(&opts.e2eAuthority, "e2e-authority", "", "e2e: path to the jrsnd-authority binary (required with -e2e)")
	flag.StringVar(&opts.e2eDir, "e2e-dir", "", "e2e: working directory for traces and logs (empty = a temp dir, removed on success)")
	flag.Parse()

	code, err := run(opts, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrsnd-node:", err)
	}
	os.Exit(code)
}

// run executes one mode and returns the process exit code (2 = bad
// flags, matching the jrsnd-authority convention).
func run(opts options, out io.Writer) (int, error) {
	if opts.e2e {
		if opts.e2eAuthority == "" {
			return 2, fmt.Errorf("-e2e requires -e2e-authority")
		}
		if opts.e2eNodes < 2 {
			return 2, fmt.Errorf("-e2e-nodes %d: need at least 2", opts.e2eNodes)
		}
		return runE2E(opts, out)
	}
	if opts.authority == "" {
		return 2, fmt.Errorf("-authority is required")
	}
	if opts.nodeID < 0 {
		return 2, fmt.Errorf("-node-id is required (a provisioned slot ID)")
	}
	return serve(opts, out)
}

// parsePeers splits the -peers flag.
func parsePeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// daemon is one running node: the transport endpoint plus the discovery
// state the sidecar reports.
type daemon struct {
	node     int
	endpoint *transport.Endpoint
	reg      *metrics.Registry
	limits   wire.Limits
	peers    []string // configured peer addresses
	helloTx  *metrics.Counter
	helloRx  *metrics.Counter

	mu         sync.Mutex
	discovered map[int]bool // peers whose HELLO frame decoded and matched their transport identity
	violations []string
}

// startDaemon provisions against the authority and brings the endpoint
// up. Tests drive it in-process; serve() wraps it in a process.
func startDaemon(opts options, sink trace.Sink) (*daemon, error) {
	client := &authd.Client{Base: opts.authority, ClientID: fmt.Sprintf("jrsnd-node-%d", opts.nodeID)}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	info, err := client.Node(ctx, opts.nodeID)
	if err != nil {
		return nil, fmt.Errorf("fetching slot %d from the authority: %w", opts.nodeID, err)
	}
	d := &daemon{
		node:       opts.nodeID,
		reg:        metrics.New(),
		limits:     wire.DefaultLimits(),
		peers:      parsePeers(opts.peers),
		discovered: map[int]bool{},
	}
	d.helloTx = d.reg.Counter("jrsnd_node_hello_frames_tx_total", "discovery HELLO frames broadcast")
	d.helloRx = d.reg.Counter("jrsnd_node_hello_frames_rx_total", "discovery HELLO frames received and verified")
	d.endpoint, err = transport.Listen(opts.addr, transport.Config{
		Node:      opts.nodeID,
		Key:       transport.NodeKey(info.Node, info.Codes),
		Directory: transport.NewAuthorityDirectory(client),
		MaxPeers:  opts.maxPeers,
		IdleAfter: opts.idleAfter,
		PingEvery: opts.pingEvery,
		Metrics:   d.reg,
		Trace:     sink,
		OnFrame:   d.onFrame,
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// onFrame consumes one frame from an authenticated peer. Under honest
// operation every frame decodes and names its own sender; anything else
// is an invariant violation the e2e harness fails on.
func (d *daemon) onFrame(from int, frame []byte) {
	kind, payload, err := wire.Decode(frame, d.limits)
	if err != nil {
		d.violate("frame from authenticated peer %d rejected by decoder: %v", from, err)
		return
	}
	if kind != wire.KindHello {
		return // this daemon only speaks discovery HELLOs
	}
	hello, ok := payload.(wire.Hello)
	if !ok || int(hello.Initiator) != from {
		d.violate("HELLO from peer %d claims initiator %v", from, payload)
		return
	}
	d.helloRx.Inc()
	d.mu.Lock()
	d.discovered[from] = true
	d.mu.Unlock()
}

func (d *daemon) violate(format string, args ...any) {
	d.mu.Lock()
	d.violations = append(d.violations, fmt.Sprintf(format, args...))
	d.mu.Unlock()
}

// beat runs one beacon tick: re-dial every configured peer (a no-op for
// registered ones — UDP loses handshakes, so dialing retries until the
// peer answers) and broadcast one wire HELLO frame.
func (d *daemon) beat() {
	for _, addr := range d.peers {
		_ = d.endpoint.Dial(addr)
	}
	frame, err := wire.Encode(wire.KindHello, wire.Hello{Initiator: ibc.NodeID(d.node)}, d.limits)
	if err != nil {
		d.violate("encoding own HELLO: %v", err)
		return
	}
	if n, _ := d.endpoint.Broadcast(frame); n > 0 {
		d.helloTx.Inc()
	}
}

// status is the sidecar's JSON report, and what the e2e harness polls.
type status struct {
	Node       int      `json:"node"`
	UDP        string   `json:"udp"`
	Peers      []int    `json:"peers"`
	Discovered []int    `json:"discovered"`
	TxDgrams   uint64   `json:"tx_datagrams"`
	RxDgrams   uint64   `json:"rx_datagrams"`
	Violations []string `json:"violations"`
}

func (d *daemon) status() status {
	d.mu.Lock()
	disc := make([]int, 0, len(d.discovered))
	for id := range d.discovered {
		disc = append(disc, id)
	}
	viol := append([]string(nil), d.violations...)
	d.mu.Unlock()
	sort.Ints(disc)
	if viol == nil {
		viol = []string{}
	}
	return status{
		Node:       d.node,
		UDP:        d.endpoint.Addr(),
		Peers:      d.endpoint.Peers(),
		Discovered: disc,
		TxDgrams:   d.endpoint.TxDatagrams(),
		RxDgrams:   d.endpoint.RxDatagrams(),
		Violations: viol,
	}
}

// handler builds the sidecar mux.
func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(d.status())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = metrics.WritePrometheus(w, d.reg.Snapshot())
	})
	return mux
}

// serve runs the daemon until SIGTERM/SIGINT.
func serve(opts options, out io.Writer) (int, error) {
	var sink trace.Sink
	if opts.tracePath != "" {
		f, err := os.Create(opts.tracePath)
		if err != nil {
			return 1, err
		}
		defer f.Close()
		jw := trace.NewJSONLWriter(f)
		defer jw.Close()
		sink = jw
	}
	d, err := startDaemon(opts, sink)
	if err != nil {
		return 1, err
	}
	defer d.endpoint.Close()
	fmt.Fprintf(out, "jrsnd-node: node %d listening on udp://%s\n", d.node, d.endpoint.Addr())

	ln, err := net.Listen("tcp", opts.httpAddr)
	if err != nil {
		return 1, err
	}
	srv := &http.Server{Handler: d.handler()}
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(out, "jrsnd-node: serving on http://%s\n", ln.Addr())

	ticker := time.NewTicker(opts.beacon)
	defer ticker.Stop()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	d.beat() // first tick now: handshakes start before the first beacon interval elapses
	for {
		select {
		case <-ticker.C:
			d.beat()
		case <-stop:
			fmt.Fprintln(out, "jrsnd-node: draining…")
			d.endpoint.Bye()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
			if err := d.endpoint.Close(); err != nil {
				return 1, err
			}
			fmt.Fprintln(out, "jrsnd-node: stopped")
			return 0, nil
		}
	}
}
