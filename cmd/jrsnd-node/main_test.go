package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/authd"
	"repro/internal/metrics"
)

// In-process coverage of the daemon: flag validation, and a two-daemon
// discovery smoke against a real (in-process) authority. The full
// multi-process path — subprocesses, SIGKILL, restart — is `make
// node-e2e` (runE2E), which tier1 runs.

func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		opts options
	}{
		{"no authority", options{nodeID: 1}},
		{"no node id", options{authority: "http://127.0.0.1:1", nodeID: -1}},
		{"e2e without authority binary", options{e2e: true, e2eNodes: 4}},
		{"e2e with one node", options{e2e: true, e2eAuthority: "/bin/true", e2eNodes: 1}},
	}
	for _, c := range cases {
		if code, err := run(c.opts, &strings.Builder{}); code != 2 || err == nil {
			t.Errorf("%s: run() = (%d, %v), want (2, error)", c.name, code, err)
		}
	}
}

func TestParsePeers(t *testing.T) {
	got := parsePeers(" a:1, ,b:2,")
	if len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Fatalf("parsePeers = %v", got)
	}
	if parsePeers("") != nil {
		t.Fatal("empty flag must parse to no peers")
	}
}

// startTestAuthority boots an in-process authority with count slots
// provisioned.
func startTestAuthority(t *testing.T, count int) string {
	t.Helper()
	p := analysis.Defaults()
	p.N, p.M, p.L, p.Gamma = 64, 8, 4, 3
	srv, err := authd.New(authd.Config{Params: p, Seed: 1, Rate: -1})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	base := "http://" + addr
	client := &authd.Client{Base: base}
	if _, err := client.Provision(context.Background(), count, "test"); err != nil {
		t.Fatal(err)
	}
	return base
}

// TestTwoDaemonsDiscover: two in-process daemons, provisioned by a real
// authority, must authenticate and mutually discover via HELLO frames.
func TestTwoDaemonsDiscover(t *testing.T) {
	base := startTestAuthority(t, 2)

	d0, err := startDaemon(options{authority: base, nodeID: 0, addr: "127.0.0.1:0", idleAfter: 10 * time.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d0.endpoint.Close() })
	d1, err := startDaemon(options{
		authority: base, nodeID: 1, addr: "127.0.0.1:0",
		peers: d0.endpoint.Addr(), idleAfter: 10 * time.Second,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d1.endpoint.Close() })

	deadline := time.Now().Add(10 * time.Second)
	for {
		d0.beat()
		d1.beat()
		s0, s1 := d0.status(), d1.status()
		if len(s0.Discovered) == 1 && s0.Discovered[0] == 1 &&
			len(s1.Discovered) == 1 && s1.Discovered[0] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no mutual discovery: %+v / %+v", s0, s1)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if s := d0.status(); len(s.Violations) != 0 {
		t.Fatalf("daemon 0 violations: %v", s.Violations)
	}
	if s := d1.status(); len(s.Violations) != 0 {
		t.Fatalf("daemon 1 violations: %v", s.Violations)
	}
}

// TestSidecarEndpoints: /status must serve well-formed JSON and /metrics
// a parseable Prometheus exposition.
func TestSidecarEndpoints(t *testing.T) {
	base := startTestAuthority(t, 1)
	d, err := startDaemon(options{authority: base, nodeID: 0, addr: "127.0.0.1:0"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.endpoint.Close() })
	ts := httptest.NewServer(d.handler())
	t.Cleanup(ts.Close)

	s, err := fetchStatus(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if s.Node != 0 || s.UDP == "" || s.Violations == nil {
		t.Fatalf("bad status: %+v", s)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	snap, err := metrics.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("/metrics is not exposition-correct: %v", err)
	}
	if _, ok := snap.Gauges["jrsnd_transport_peers"]; !ok {
		t.Fatal("jrsnd_transport_peers missing from /metrics")
	}

	resp2, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("/healthz = %d", resp2.StatusCode)
	}
}

// TestStatusJSONShape: the harness depends on these exact field names.
func TestStatusJSONShape(t *testing.T) {
	b, err := json.Marshal(status{Node: 3, UDP: "u", Peers: []int{1}, Discovered: []int{1}, Violations: []string{}})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"node"`, `"udp"`, `"peers"`, `"discovered"`, `"tx_datagrams"`, `"rx_datagrams"`, `"violations"`} {
		if !strings.Contains(string(b), field) {
			t.Fatalf("status JSON lost field %s: %s", field, b)
		}
	}
}
