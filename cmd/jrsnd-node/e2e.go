package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Multi-process end-to-end harness (`jrsnd-node -e2e`, `make node-e2e`).
//
// Boots a real jrsnd-authority subprocess, provisions -e2e-nodes slots,
// and starts one jrsnd-node subprocess per slot on loopback, each
// configured with every other node's UDP address. Then:
//
//  1. waits until every daemon reports full mutual discovery — every
//     peer authenticated AND a decoded HELLO frame from each;
//  2. SIGKILLs one daemon and waits for the survivors to reap it from
//     their peer tables (keepalive probes going unanswered);
//  3. restarts the daemon on the same slot and the same UDP address and
//     waits for full re-discovery;
//  4. requires zero invariant violations on every daemon, then SIGTERMs
//     everything and requires clean exits.
//
// Any violation, timeout, or unclean exit → exit 1.

// e2e pool sizing: small but larger than the node count.
const (
	e2eN     = 64
	e2eM     = 8
	e2eL     = 4
	e2eGamma = 3
)

const e2eDiscoveryTimeout = 60 * time.Second

func runE2E(opts options, out io.Writer) (int, error) {
	dir := opts.e2eDir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "jrsnd-node-e2e-*"); err != nil {
			return 1, err
		}
		defer func() { _ = os.RemoveAll(dir) }() // kept on failure paths that return early? no — removed; logs are printed instead
	}
	if err := e2eRun(opts, dir, out); err != nil {
		return 1, err
	}
	fmt.Fprintln(out, "node-e2e: PASS")
	return 0, nil
}

func e2eRun(opts options, dir string, out io.Writer) error {
	selfExe, err := os.Executable()
	if err != nil {
		return err
	}
	n := opts.e2eNodes

	// Authority first: the daemons cannot even derive their keys without it.
	auth, err := startProc(opts.e2eAuthority, []string{
		"-addr", "127.0.0.1:0",
		"-n", strconv.Itoa(e2eN),
		"-m", strconv.Itoa(e2eM),
		"-l", strconv.Itoa(e2eL),
		"-gamma", strconv.Itoa(e2eGamma),
		"-rate", "-1",
	}, "serving on http://")
	if err != nil {
		return fmt.Errorf("starting the authority: %w", err)
	}
	defer auth.kill()
	fmt.Fprintf(out, "node-e2e: authority on %s\n", auth.match)

	// Provision the slots the daemons will claim (slot IDs 0..n-1).
	if err := e2eProvision(auth.match, n); err != nil {
		return err
	}
	fmt.Fprintf(out, "node-e2e: provisioned %d slots\n", n)

	// Reserve one loopback UDP port per node. The ports are released
	// before the daemons bind them — a race in principle, but the harness
	// needs every daemon to know every peer's address before any of them
	// start, and loopback port reuse in the gap is vanishingly rare.
	addrs, err := reserveUDPAddrs(n)
	if err != nil {
		return err
	}

	nodeArgs := func(id int) []string {
		others := make([]string, 0, n-1)
		for i, a := range addrs {
			if i != id {
				others = append(others, a)
			}
		}
		return []string{
			"-authority", auth.match,
			"-node-id", strconv.Itoa(id),
			"-addr", addrs[id],
			"-peers", strings.Join(others, ","),
			"-http", "127.0.0.1:0",
			"-beacon", "100ms",
			"-idle-after", "2s",
			"-ping-every", "500ms",
			"-trace", filepath.Join(dir, fmt.Sprintf("node-%d.trace.jsonl", id)),
		}
	}

	nodes := make([]*proc, n)
	defer func() {
		for _, nd := range nodes {
			if nd != nil {
				nd.kill()
			}
		}
	}()
	for id := 0; id < n; id++ {
		if nodes[id], err = startProc(selfExe, nodeArgs(id), "serving on http://"); err != nil {
			return fmt.Errorf("starting node %d: %w", id, err)
		}
	}
	fmt.Fprintf(out, "node-e2e: %d daemons up\n", n)

	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	want := func(self int) []int {
		w := make([]int, 0, n-1)
		for _, id := range all {
			if id != self {
				w = append(w, id)
			}
		}
		return w
	}

	// Phase 1: full mutual discovery.
	for id, nd := range nodes {
		if err := pollStatus(nd.match, e2eDiscoveryTimeout, func(s status) bool {
			return equalInts(s.Discovered, want(id)) && equalInts(s.Peers, want(id))
		}); err != nil {
			return fmt.Errorf("node %d never reached full discovery: %w\n%s", id, err, nd.output())
		}
	}
	if err := checkViolations(nodes); err != nil {
		return err
	}
	fmt.Fprintf(out, "node-e2e: full mutual discovery across %d nodes\n", n)

	// Phase 2: SIGKILL one daemon; the survivors must reap it.
	victim := 1
	nodes[victim].kill()
	fmt.Fprintf(out, "node-e2e: killed node %d\n", victim)
	for id, nd := range nodes {
		if id == victim {
			continue
		}
		if err := pollStatus(nd.match, e2eDiscoveryTimeout, func(s status) bool {
			return !containsInt(s.Peers, victim)
		}); err != nil {
			return fmt.Errorf("node %d never reaped the killed peer: %w\n%s", id, err, nd.output())
		}
	}
	fmt.Fprintf(out, "node-e2e: survivors reaped node %d\n", victim)

	// Phase 3: restart on the same slot and address; full re-discovery.
	if nodes[victim], err = startProc(selfExe, nodeArgs(victim), "serving on http://"); err != nil {
		return fmt.Errorf("restarting node %d: %w", victim, err)
	}
	if err := pollStatus(nodes[victim].match, e2eDiscoveryTimeout, func(s status) bool {
		return equalInts(s.Discovered, want(victim)) && equalInts(s.Peers, want(victim))
	}); err != nil {
		return fmt.Errorf("restarted node %d never re-discovered: %w\n%s", victim, err, nodes[victim].output())
	}
	for id, nd := range nodes {
		if id == victim {
			continue
		}
		if err := pollStatus(nd.match, e2eDiscoveryTimeout, func(s status) bool {
			return containsInt(s.Peers, victim)
		}); err != nil {
			return fmt.Errorf("node %d never re-admitted the restarted peer: %w\n%s", id, err, nd.output())
		}
	}
	if err := checkViolations(nodes); err != nil {
		return err
	}
	fmt.Fprintf(out, "node-e2e: node %d restarted and re-discovered\n", victim)

	// Phase 4: graceful shutdown all around.
	for id, nd := range nodes {
		if err := nd.terminate(); err != nil {
			return fmt.Errorf("node %d unclean shutdown: %w\n%s", id, err, nd.output())
		}
		nodes[id] = nil
	}
	if err := auth.terminate(); err != nil {
		return fmt.Errorf("authority unclean shutdown: %w\n%s", err, auth.output())
	}
	return nil
}

// e2eProvision claims `count` slots from the authority so GET /v1/node
// resolves for slot IDs 0..count-1.
func e2eProvision(base string, count int) error {
	body, err := json.Marshal(map[string]any{"count": count, "tag": "node-e2e"})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/provision", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("provisioning: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("provisioning: %s: %s", resp.Status, b)
	}
	return nil
}

// reserveUDPAddrs binds and releases count loopback UDP ports.
func reserveUDPAddrs(count int) ([]string, error) {
	addrs := make([]string, count)
	conns := make([]net.PacketConn, count)
	for i := range addrs {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		conns[i] = pc
		addrs[i] = pc.LocalAddr().String()
	}
	for _, pc := range conns {
		_ = pc.Close()
	}
	return addrs, nil
}

// pollStatus polls a daemon's /status until cond holds.
func pollStatus(base string, timeout time.Duration, cond func(status) bool) error {
	deadline := time.Now().Add(timeout)
	var last string
	for time.Now().Before(deadline) {
		s, err := fetchStatus(base)
		if err != nil {
			last = err.Error()
		} else {
			if cond(s) {
				return nil
			}
			b, _ := json.Marshal(s)
			last = string(b)
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("condition not reached in %v (last status: %s)", timeout, last)
}

func fetchStatus(base string) (status, error) {
	resp, err := http.Get(base + "/status")
	if err != nil {
		return status{}, err
	}
	defer resp.Body.Close()
	var s status
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return status{}, err
	}
	return s, nil
}

// checkViolations fails if any live daemon has recorded an invariant
// violation.
func checkViolations(nodes []*proc) error {
	for id, nd := range nodes {
		if nd == nil {
			continue
		}
		s, err := fetchStatus(nd.match)
		if err != nil {
			return fmt.Errorf("node %d status: %w", id, err)
		}
		if len(s.Violations) != 0 {
			return fmt.Errorf("node %d reported invariant violations: %v", id, s.Violations)
		}
	}
	return nil
}

func equalInts(got, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// proc is one managed subprocess, in the style of the authority
// harness's child: stdout is scanned for a "<prefix>URL" line (match),
// stderr folds into the same buffer, exit status lands on exited.
type proc struct {
	cmd    *exec.Cmd
	match  string // the URL from the awaited line, e.g. "http://127.0.0.1:40331"
	mu     sync.Mutex
	lines  bytes.Buffer
	exited chan int
	scanWg sync.WaitGroup // joins the stdout scanner goroutine
}

// startProc launches exe and waits for a stdout line containing prefix;
// match is set to the whitespace-delimited token starting at the URL.
func startProc(exe string, args []string, prefix string) (*proc, error) {
	p := &proc{cmd: exec.Command(exe, args...), exited: make(chan int, 1)}
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	p.cmd.Stderr = &procWriter{p: p}
	matchCh := make(chan string, 1)
	if err := p.cmd.Start(); err != nil {
		return nil, err
	}
	// The scanner goroutine terminates when the pipe closes on process
	// exit; scanWg joins it so reads of the line buffer after an exit
	// observe the complete output.
	p.scanWg.Add(1)
	go func() {
		defer p.scanWg.Done()
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.lines.WriteString(line)
			p.lines.WriteByte('\n')
			p.mu.Unlock()
			if i := strings.Index(line, prefix); i >= 0 {
				urlStart := i + len(prefix) - len("http://")
				fields := strings.Fields(line[urlStart:])
				if len(fields) > 0 {
					select {
					case matchCh <- fields[0]:
					default:
					}
				}
			}
		}
		err := p.cmd.Wait()
		code := 0
		var xe *exec.ExitError
		if errors.As(err, &xe) {
			code = xe.ExitCode()
		} else if err != nil {
			code = -1
		}
		p.exited <- code
	}()

	select {
	case p.match = <-matchCh:
		return p, nil
	case code := <-p.exited:
		p.exited <- code
		return nil, fmt.Errorf("process exited %d before serving (output:\n%s)", code, p.output())
	case <-time.After(30 * time.Second):
		_ = p.cmd.Process.Kill()
		return nil, fmt.Errorf("process never reported its address (output:\n%s)", p.output())
	}
}

// kill SIGKILLs the process — the harness's crash fault — and waits for
// it to die.
func (p *proc) kill() {
	_ = p.cmd.Process.Kill()
	code := <-p.exited
	p.exited <- code
	p.scanWg.Wait()
}

// terminate sends SIGTERM and requires a clean exit.
func (p *proc) terminate() error {
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case code := <-p.exited:
		p.exited <- code
		p.scanWg.Wait()
		if code != 0 {
			return fmt.Errorf("exit status %d", code)
		}
		return nil
	case <-time.After(30 * time.Second):
		_ = p.cmd.Process.Kill()
		<-p.exited
		p.scanWg.Wait()
		return errors.New("timed out draining")
	}
}

func (p *proc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lines.String()
}

// procWriter folds stderr into the line buffer.
type procWriter struct{ p *proc }

func (w *procWriter) Write(b []byte) (int, error) {
	w.p.mu.Lock()
	defer w.p.mu.Unlock()
	return w.p.lines.Write(b)
}
