// Command jrsnd-theory prints the closed-form performance model of §VI-A:
// the derived protocol constants, the Theorem 1 discovery-probability
// bounds as functions of q, the Theorem 2/4 latencies as functions of m
// and ν, and the combined JR-SND predictions.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	var (
		n  = flag.Int("n", 0, "override node count")
		m  = flag.Int("m", 0, "override codes per node")
		l  = flag.Int("l", 0, "override sharers per code")
		q  = flag.Int("q", -1, "override compromised nodes")
		nu = flag.Int("nu", 0, "override M-NDP hop bound")
	)
	flag.Parse()
	p := analysis.Defaults()
	if *n > 0 {
		p.N = *n
	}
	if *m > 0 {
		p.M = *m
	}
	if *l > 0 {
		p.L = *l
	}
	if *q >= 0 {
		p.Q = *q
	}
	if *nu > 0 {
		p.Nu = *nu
	}
	if err := run(p); err != nil {
		fmt.Fprintln(os.Stderr, "jrsnd-theory:", err)
		os.Exit(1)
	}
}

func run(p analysis.Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	fmt.Printf("JR-SND theory model (n=%d m=%d l=%d q=%d ν=%d z=%d)\n\n",
		p.N, p.M, p.L, p.Q, p.Nu, p.Z)

	fmt.Println("Derived constants (§V-B):")
	fmt.Printf("  pool size s           = %d\n", p.S())
	fmt.Printf("  l_h (coded HELLO)     = %.0f bits\n", p.HelloBits())
	fmt.Printf("  l_f (coded auth msg)  = %.0f bits\n", p.AuthBits())
	fmt.Printf("  t_h (HELLO airtime)   = %.6f s\n", p.THello())
	fmt.Printf("  t_b (buffer window)   = %.4f s\n", p.TBuffer())
	fmt.Printf("  λ   (t_p/t_b)         = %.2f\n", p.Lambda())
	fmt.Printf("  t_p (processing)      = %.4f s\n", p.TProcess())
	fmt.Printf("  r   (HELLO rounds)    = %d\n", p.HelloRounds())
	fmt.Printf("  g   (avg degree)      = %.2f\n\n", p.AvgDegree())

	fmt.Println("Code pre-distribution (Eqs. 1-2):")
	fmt.Printf("  Pr[share >= 1 code]   = %.4f\n", 1-analysis.PrShared(p, 0))
	mean := 0.0
	for x := 0; x <= p.M; x++ {
		mean += float64(x) * analysis.PrShared(p, x)
	}
	fmt.Printf("  E[shared codes]       = %.3f\n", mean)
	fmt.Printf("  α (code compromised)  = %.4f\n", analysis.Alpha(p))
	fmt.Printf("  E[compromised codes]  = %.1f\n\n", analysis.ExpectedCompromisedCodes(p))

	lower, upper := analysis.DNDPBounds(p)
	fmt.Println("D-NDP (Theorems 1-2):")
	fmt.Printf("  P̂−  (reactive jam)    = %.4f\n", lower)
	fmt.Printf("  P̂+  (random jam)      = %.4f\n", upper)
	fmt.Printf("  T̄_D                   = %.4f s\n\n", analysis.DNDPLatency(p))

	g := p.AvgDegree()
	pm := analysis.MNDPLowerBound(lower, g)
	fmt.Println("M-NDP (Theorems 3-4, ν as configured):")
	fmt.Printf("  P̂_M lower bound (ν=2) = %.4f\n", pm)
	fmt.Printf("  T̄_M(ν=%d)              = %.4f s\n\n", p.Nu, analysis.MNDPLatency(p, p.Nu, g))

	pHat, tBar := analysis.Combined(p)
	fmt.Println("JR-SND combined:")
	fmt.Printf("  P̂ = P̂_D + (1−P̂_D)·P̂_M = %.4f\n", pHat)
	fmt.Printf("  T̄ = max(T̄_D, T̄_M)     = %.4f s\n\n", tBar)

	fmt.Println("Sweep of q (reactive jamming):")
	fmt.Println("  q     α       P̂_D     P̂_M     P̂")
	for _, q := range []int{0, 20, 40, 60, 80, 100} {
		pq := p
		pq.Q = q
		lo, _ := analysis.DNDPBounds(pq)
		pmq := analysis.MNDPLowerBound(lo, g)
		fmt.Printf("  %-4d  %.4f  %.4f  %.4f  %.4f\n",
			q, analysis.AlphaQ(pq, q), lo, pmq, lo+(1-lo)*pmq)
	}
	return nil
}
