package main

import (
	"testing"

	"repro/internal/analysis"
)

func TestRunDefaults(t *testing.T) {
	if err := run(analysis.Defaults()); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsInvalidParams(t *testing.T) {
	p := analysis.Defaults()
	p.M = 0
	if err := run(p); err == nil {
		t.Fatal("accepted invalid params")
	}
}

func TestRunStressedPoint(t *testing.T) {
	p := analysis.Defaults()
	p.Q = 100
	p.Nu = 6
	if err := run(p); err != nil {
		t.Fatal(err)
	}
}
