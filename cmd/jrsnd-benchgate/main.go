// Command jrsnd-benchgate is the benchmark-regression gate: it runs the
// Go benchmarks of the hot-path packages (sim, dsss, authd), reduces each
// benchmark to its best observed ns/op across -count repetitions, and
// compares the result against the checked-in per-suite baseline
// (BENCH_sim.json, BENCH_dsss.json, …). A benchmark slower than
// baseline × (1 + tolerance) is a regression and the gate exits nonzero —
// wired into `make tier1` so every hot-path change is measured against
// the locked-in trajectory.
//
// Usage:
//
//	jrsnd-benchgate                      # gate every suite against its baseline
//	jrsnd-benchgate -suite sim,dsss      # subset
//	jrsnd-benchgate -update              # re-measure and rewrite the baselines
//	jrsnd-benchgate -tolerance 0.5       # fail at >1.5× baseline
//
// The default tolerance is deliberately loose (fail only past 2×):
// checked-in baselines travel across machines, and the gate exists to
// catch algorithmic regressions — an accidental O(n²), a lost fast path —
// not scheduler jitter. Tighten it on a pinned benchmarking host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// suite is one gated benchmark package.
type suite struct {
	Pkg      string // go package pattern
	Baseline string // checked-in baseline file, relative to -dir
}

// suites maps -suite names to their packages; suiteOrder fixes the run
// order (and the -suite "" default).
var suites = map[string]suite{
	"sim":       {Pkg: "./internal/sim", Baseline: "BENCH_sim.json"},
	"dsss":      {Pkg: "./internal/dsss", Baseline: "BENCH_dsss.json"},
	"authd":     {Pkg: "./internal/authd", Baseline: "BENCH_authd_go.json"},
	"transport": {Pkg: "./internal/transport", Baseline: "BENCH_transport.json"},
}

var suiteOrder = []string{"sim", "dsss", "authd", "transport"}

// benchResult is one benchmark's reduced measurement.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// baselineFile is the on-disk baseline shape (one file per suite, in the
// flat snake_case style of BENCH_authd.json).
type baselineFile struct {
	Suite      string                 `json:"suite"`
	GoBench    string                 `json:"go_bench"` // the command the numbers came from
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

func main() {
	var (
		suitesFlag = flag.String("suite", "", "comma-separated suites to gate (default: "+strings.Join(suiteOrder, ",")+")")
		update     = flag.Bool("update", false, "re-measure and rewrite the baseline files instead of gating")
		tolerance  = flag.Float64("tolerance", 1.0, "allowed slowdown fraction: fail when ns/op > baseline*(1+tolerance)")
		benchtime  = flag.String("benchtime", "100ms", "go test -benchtime per benchmark")
		count      = flag.Int("count", 3, "go test -count repetitions (best run wins)")
		dir        = flag.String("dir", ".", "repo root holding the baseline files")
		input      = flag.String("input", "", "gate pre-recorded `go test -bench` output from this file instead of running benchmarks (requires exactly one -suite)")
	)
	flag.Parse()
	os.Exit(run(os.Stdout, os.Stderr, config{
		Suites:    splitSuites(*suitesFlag),
		Update:    *update,
		Tolerance: *tolerance,
		Benchtime: *benchtime,
		Count:     *count,
		Dir:       *dir,
		Input:     *input,
	}))
}

type config struct {
	Suites    []string
	Update    bool
	Tolerance float64
	Benchtime string
	Count     int
	Dir       string
	Input     string
}

func splitSuites(flagVal string) []string {
	if flagVal == "" {
		return suiteOrder
	}
	var out []string
	for _, s := range strings.Split(flagVal, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// run executes the gate and returns the process exit code: 0 clean, 1 on
// regression (or error), 2 on bad flags.
func run(out, errw io.Writer, cfg config) int {
	if cfg.Tolerance < 0 {
		fmt.Fprintln(errw, "jrsnd-benchgate: -tolerance must be >= 0")
		return 2
	}
	if cfg.Input != "" && (len(cfg.Suites) != 1 || cfg.Update) {
		fmt.Fprintln(errw, "jrsnd-benchgate: -input requires exactly one -suite and no -update")
		return 2
	}
	failed := false
	for _, name := range cfg.Suites {
		s, ok := suites[name]
		if !ok {
			fmt.Fprintf(errw, "jrsnd-benchgate: unknown suite %q (have %s)\n", name, strings.Join(suiteOrder, ", "))
			return 2
		}
		results, cmdline, err := measure(name, s, cfg)
		if err != nil {
			fmt.Fprintf(errw, "jrsnd-benchgate: %s: %v\n", name, err)
			return 1
		}
		if len(results) == 0 {
			fmt.Fprintf(errw, "jrsnd-benchgate: %s: no benchmarks found\n", name)
			return 1
		}
		basePath := filepath.Join(cfg.Dir, s.Baseline)
		if cfg.Update {
			if err := writeBaseline(basePath, baselineFile{Suite: name, GoBench: cmdline, Benchmarks: results}); err != nil {
				fmt.Fprintf(errw, "jrsnd-benchgate: %s: %v\n", name, err)
				return 1
			}
			fmt.Fprintf(out, "%s: baseline updated (%d benchmarks) -> %s\n", name, len(results), basePath)
			continue
		}
		base, err := readBaseline(basePath)
		if err != nil {
			fmt.Fprintf(errw, "jrsnd-benchgate: %s: %v (run with -update to record a baseline)\n", name, err)
			return 1
		}
		findings := compare(base.Benchmarks, results, cfg.Tolerance)
		for _, f := range findings {
			fmt.Fprintf(out, "%s: %s\n", name, f.Text)
			if f.Regression {
				failed = true
			}
		}
		if !hasRegression(findings) {
			fmt.Fprintf(out, "%s: %d benchmarks within %.2gx of baseline\n", name, len(base.Benchmarks), 1+cfg.Tolerance)
		}
	}
	if failed {
		fmt.Fprintln(errw, "jrsnd-benchgate: performance regression — investigate, or re-baseline deliberately with -update")
		return 1
	}
	return 0
}

// measure obtains a suite's reduced results: from a pre-recorded -input
// file, or by running `go test -bench`.
func measure(name string, s suite, cfg config) (map[string]benchResult, string, error) {
	if cfg.Input != "" {
		data, err := os.ReadFile(cfg.Input)
		if err != nil {
			return nil, "", err
		}
		res, err := parseBench(string(data))
		return res, "pre-recorded: " + cfg.Input, err
	}
	args := []string{"test", "-run", "^$", "-bench", ".", "-benchmem",
		"-benchtime", cfg.Benchtime, "-count", strconv.Itoa(cfg.Count), s.Pkg}
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	outBytes, err := cmd.CombinedOutput()
	if err != nil {
		return nil, "", fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, outBytes)
	}
	res, err := parseBench(string(outBytes))
	return res, "go " + strings.Join(args, " "), err
}

// parseBench reduces `go test -bench` output to per-benchmark results,
// keeping the best (minimum) ns/op across -count repetitions — the run
// least disturbed by the machine — and the matching memory columns.
func parseBench(out string) (map[string]benchResult, error) {
	results := map[string]benchResult{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// BenchmarkName-8  1234  567 ns/op [ 89 B/op  2 allocs/op ]
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		name = strings.TrimPrefix(name, "Benchmark")
		r := benchResult{NsPerOp: -1}
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
				}
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			}
		}
		if r.NsPerOp < 0 {
			continue
		}
		if prev, ok := results[name]; !ok || r.NsPerOp < prev.NsPerOp {
			results[name] = r
		}
	}
	return results, nil
}

// finding is one comparison outcome line.
type finding struct {
	Text       string
	Regression bool
}

func hasRegression(fs []finding) bool {
	for _, f := range fs {
		if f.Regression {
			return true
		}
	}
	return false
}

// compare gates current results against the baseline. A benchmark slower
// than baseline*(1+tolerance) regresses; a benchmark that disappeared
// regresses (deleting the measurement is not a way past the gate); a new
// benchmark is reported but passes (record it with -update).
func compare(base, cur map[string]benchResult, tolerance float64) []finding {
	var names []string
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []finding
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			out = append(out, finding{
				Text:       fmt.Sprintf("REGRESSION %s: benchmark missing (baseline %.0f ns/op)", name, b.NsPerOp),
				Regression: true,
			})
			continue
		}
		limit := b.NsPerOp * (1 + tolerance)
		if c.NsPerOp > limit {
			out = append(out, finding{
				Text: fmt.Sprintf("REGRESSION %s: %.0f ns/op vs baseline %.0f (limit %.0f, %.2fx)",
					name, c.NsPerOp, b.NsPerOp, limit, c.NsPerOp/b.NsPerOp),
				Regression: true,
			})
		}
	}
	var newNames []string
	for name := range cur {
		if _, ok := base[name]; !ok {
			newNames = append(newNames, name)
		}
	}
	sort.Strings(newNames)
	for _, name := range newNames {
		out = append(out, finding{Text: fmt.Sprintf("new benchmark %s: %.0f ns/op (not in baseline; -update to record)", name, cur[name].NsPerOp)})
	}
	return out
}

func readBaseline(path string) (baselineFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return baselineFile{}, err
	}
	var b baselineFile
	if err := json.Unmarshal(data, &b); err != nil {
		return baselineFile{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return baselineFile{}, fmt.Errorf("%s: empty baseline", path)
	}
	return b, nil
}

func writeBaseline(path string, b baselineFile) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
