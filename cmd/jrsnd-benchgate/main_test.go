package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeBenchOutput mimics `go test -bench -benchmem -count 3` output for
// one benchmark: three repetitions with jitter (min wins) plus the noise
// lines the parser must skip.
const fakeBenchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScheduleRun-8    	      81	    301472 ns/op	   62664 B/op	    1037 allocs/op
BenchmarkScheduleRun-8    	      85	    295011 ns/op	   62664 B/op	    1037 allocs/op
BenchmarkScheduleRun-8    	      79	    310990 ns/op	   62664 B/op	    1037 allocs/op
BenchmarkCascade-8        	      88	    311442 ns/op	  131208 B/op	    4101 allocs/op
PASS
ok  	repro/internal/sim	0.146s
`

func TestParseBenchKeepsBestRun(t *testing.T) {
	res, err := parseBench(fakeBenchOutput)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(res), res)
	}
	sr, ok := res["ScheduleRun"]
	if !ok {
		t.Fatalf("missing ScheduleRun (GOMAXPROCS suffix not stripped?): %+v", res)
	}
	if sr.NsPerOp != 295011 {
		t.Fatalf("ScheduleRun ns/op = %v, want the minimum across runs (295011)", sr.NsPerOp)
	}
	if sr.BytesPerOp != 62664 || sr.AllocsPerOp != 1037 {
		t.Fatalf("memory columns mis-parsed: %+v", sr)
	}
}

func TestCompareVerdicts(t *testing.T) {
	base := map[string]benchResult{
		"Fast":   {NsPerOp: 100},
		"Stable": {NsPerOp: 1000},
		"Gone":   {NsPerOp: 50},
	}
	cur := map[string]benchResult{
		"Fast":   {NsPerOp: 100 * 2.5}, // past the 2x limit at tolerance 1.0
		"Stable": {NsPerOp: 1999},      // 1.999x: inside the limit
		"Fresh":  {NsPerOp: 10},        // new: reported, not failed
	}
	fs := compare(base, cur, 1.0)
	regressions := map[string]bool{}
	for _, f := range fs {
		if f.Regression {
			name := strings.Fields(strings.TrimPrefix(f.Text, "REGRESSION "))[0]
			regressions[strings.TrimSuffix(name, ":")] = true
		}
	}
	if !regressions["Fast"] {
		t.Errorf("2.5x slowdown not flagged: %+v", fs)
	}
	if !regressions["Gone"] {
		t.Errorf("disappeared benchmark not flagged: %+v", fs)
	}
	if regressions["Stable"] || regressions["Fresh"] {
		t.Errorf("false positives: %+v", fs)
	}
}

// TestGateFailsOnSeededRegression is the acceptance check: a synthetic
// 3x-slower measurement against a recorded baseline must exit nonzero,
// and the same measurement against its own baseline must pass.
func TestGateFailsOnSeededRegression(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	baseline := `{
  "suite": "sim",
  "go_bench": "recorded for test",
  "benchmarks": {
    "ScheduleRun": {"ns_per_op": 100000, "bytes_per_op": 62664, "allocs_per_op": 1037},
    "Cascade": {"ns_per_op": 300000, "bytes_per_op": 131208, "allocs_per_op": 4101}
  }
}`
	writeFile("BENCH_sim.json", baseline)
	// Seeded regression: ScheduleRun 3x over its baseline.
	slow := writeFile("slow.txt", `
BenchmarkScheduleRun-8   100   300000 ns/op   62664 B/op   1037 allocs/op
BenchmarkCascade-8       100   300000 ns/op   131208 B/op  4101 allocs/op
`)
	var out, errw strings.Builder
	code := run(&out, &errw, config{Suites: []string{"sim"}, Tolerance: 1.0, Dir: dir, Input: slow})
	if code != 1 {
		t.Fatalf("exit = %d, want 1 for a 3x regression\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "REGRESSION ScheduleRun") {
		t.Fatalf("missing regression finding:\n%s", out.String())
	}

	// The same numbers as their own baseline: clean pass.
	healthy := writeFile("healthy.txt", `
BenchmarkScheduleRun-8   100   99000 ns/op   62664 B/op   1037 allocs/op
BenchmarkCascade-8       100   310000 ns/op  131208 B/op  4101 allocs/op
`)
	out.Reset()
	errw.Reset()
	if code := run(&out, &errw, config{Suites: []string{"sim"}, Tolerance: 1.0, Dir: dir, Input: healthy}); code != 0 {
		t.Fatalf("exit = %d, want 0 for in-tolerance numbers\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
}

func TestGateFlagValidation(t *testing.T) {
	var out, errw strings.Builder
	if code := run(&out, &errw, config{Suites: []string{"bogus"}}); code != 2 {
		t.Fatalf("unknown suite: exit = %d, want 2", code)
	}
	if code := run(&out, &errw, config{Suites: []string{"sim", "dsss"}, Input: "x"}); code != 2 {
		t.Fatalf("-input with two suites: exit = %d, want 2", code)
	}
	if code := run(&out, &errw, config{Suites: []string{"sim"}, Tolerance: -1}); code != 2 {
		t.Fatalf("negative tolerance: exit = %d, want 2", code)
	}
	// Missing baseline: actionable error, exit 1.
	dir := t.TempDir()
	input := filepath.Join(dir, "in.txt")
	if err := os.WriteFile(input, []byte("BenchmarkX-8 1 5 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	errw.Reset()
	if code := run(&out, &errw, config{Suites: []string{"sim"}, Dir: dir, Input: input}); code != 1 {
		t.Fatalf("missing baseline: exit = %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "-update") {
		t.Fatalf("missing-baseline error not actionable: %s", errw.String())
	}
}
