package faults

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ibc"
	"repro/internal/sim"
)

// Protocol invariants. After a deployment quiesces — every scheduled
// event drained, monitor timeouts applied — the following must hold no
// matter which fault schedule ran:
//
//  1. Symmetry: an up, honest node i lists j as a logical neighbor iff j
//     lists i (discovery is mutual by construction: both D-NDP and M-NDP
//     end in a two-sided acceptance).
//  2. Mutual authentication: when i and j list each other, both hold the
//     same pairwise session key — no neighbor entry exists without a
//     completed mutual auth deriving it.
//  3. Bounded half-open state: no handshake record is older than the
//     retry budget (the session-timeout GC must have reclaimed it).
//
// A fourth invariant — same-seed determinism — is a property of whole
// runs, not one state; the chaos harness checks it by running every cell
// twice (see RunCell).

// Violation is one invariant breach at a specific node pair.
type Violation struct {
	// Invariant names the broken property: "symmetry", "mutual-auth", or
	// "half-open".
	Invariant string
	// Node and Peer locate the breach (Peer is -1 for single-node
	// invariants).
	Node, Peer int
	// Detail is the human-readable specifics.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: node %d peer %d: %s", v.Invariant, v.Node, v.Peer, v.Detail)
}

// CheckInvariants verifies the quiescent-state invariants over every up,
// honest node. halfOpenBudget is the maximum age a half-open handshake
// record may have (pass the retry SessionTimeout; with retries disabled
// any bound documents the leak). Returned violations are ordered by node
// index for deterministic output.
func CheckInvariants(net *core.Network, halfOpenBudget sim.Time) []Violation {
	var out []Violation
	skip := func(i int) bool {
		nd := net.Node(i)
		return nd.Down() || nd.Compromised()
	}
	keys := func(i int) map[ibc.NodeID][32]byte {
		m := map[ibc.NodeID][32]byte{}
		for _, nb := range net.Node(i).Neighbors() {
			m[nb.ID] = nb.SessionKey
		}
		return m
	}
	for i := 0; i < net.NumNodes(); i++ {
		if skip(i) {
			continue
		}
		ki := keys(i)
		for j := i + 1; j < net.NumNodes(); j++ {
			if skip(j) {
				continue
			}
			keyIJ, hasIJ := ki[ibc.NodeID(j)]
			kj := keys(j)
			keyJI, hasJI := kj[ibc.NodeID(i)]
			if hasIJ != hasJI {
				out = append(out, Violation{
					Invariant: "symmetry", Node: i, Peer: j,
					Detail: fmt.Sprintf("one-sided neighbor entry (i->j %v, j->i %v)", hasIJ, hasJI),
				})
				continue
			}
			if hasIJ && keyIJ != keyJI {
				out = append(out, Violation{
					Invariant: "mutual-auth", Node: i, Peer: j,
					Detail: "session keys differ across the pair",
				})
			}
		}
		if n := net.Node(i).HalfOpenOlderThan(halfOpenBudget); n > 0 {
			out = append(out, Violation{
				Invariant: "half-open", Node: i, Peer: -1,
				Detail: fmt.Sprintf("%d half-open handshake records older than %v", n, halfOpenBudget),
			})
		}
	}
	return out
}
