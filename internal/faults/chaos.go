package faults

import (
	"encoding/json"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Chaos harness: a fault matrix of jammer model × node churn × channel
// loss × Byzantine adversary, each cell running a full hardened deployment
// to quiescence, applying the monitor timeouts, and checking the protocol
// invariants. Every cell runs twice under the same seed; diverging
// outcomes fail the determinism invariant.

// Cell is one fault-matrix configuration.
type Cell struct {
	Name   string
	Jammer core.JammerKind
	Churn  bool
	// Loss is the channel fault intensity: loss probability per frame,
	// with duplication and reorder at half that rate. 0 disables channel
	// faults.
	Loss float64
	// Adversary arms a Byzantine behavior (replay, forge, bitflip, flood)
	// on one compromised node; None runs jamming/churn/loss only.
	Adversary adversary.Kind
}

// CellResult is the outcome of one chaos cell.
type CellResult struct {
	Cell Cell
	// Discovered counts mutually discovered pairs at quiescence.
	Discovered int
	// Violations lists every invariant breach (empty on a healthy run).
	Violations []Violation
	// Deterministic reports whether two same-seed runs of the cell
	// produced byte-identical outcomes.
	Deterministic bool
}

// Passed reports whether the cell upheld every invariant.
func (r CellResult) Passed() bool {
	return len(r.Violations) == 0 && r.Deterministic
}

// Matrix returns the full fault matrix: the 16 base cells (4 jammers ×
// churn on/off × loss on/off) plus 16 adversary cells (4 Byzantine
// behaviors × {no jamming, intelligent jamming} × churn on/off, loss 0).
func Matrix() []Cell {
	jammers := []core.JammerKind{core.JamNone, core.JamPulse, core.JamSweep, core.JamIntelligent}
	var cells []Cell
	for _, jam := range jammers {
		for _, churn := range []bool{false, true} {
			for _, loss := range []float64{0, 0.15} {
				name := fmt.Sprintf("jam=%s/churn=%t/loss=%.2f", jam, churn, loss)
				cells = append(cells, Cell{Name: name, Jammer: jam, Churn: churn, Loss: loss})
			}
		}
	}
	return append(cells, adversaryCells()...)
}

// adversaryCells builds the Byzantine extension of the matrix.
func adversaryCells() []Cell {
	var cells []Cell
	for _, kind := range adversary.Kinds {
		for _, jam := range []core.JammerKind{core.JamNone, core.JamIntelligent} {
			for _, churn := range []bool{false, true} {
				name := fmt.Sprintf("adv=%s/jam=%s/churn=%t", kind, jam, churn)
				cells = append(cells, Cell{Name: name, Jammer: jam, Churn: churn, Adversary: kind})
			}
		}
	}
	return cells
}

// MatrixFor restricts the matrix to one Byzantine behavior's cells;
// adversary.None selects the 16 base (non-Byzantine) cells.
func MatrixFor(kind adversary.Kind) []Cell {
	var out []Cell
	for _, cell := range Matrix() {
		if cell.Adversary == kind {
			out = append(out, cell)
		}
	}
	return out
}

// chaosParams is the deployment every cell runs: a 12-node cluster with a
// code pool small enough that compromising two nodes leaves the jammers
// real work and some pairs without a usable shared code — forcing the
// retry and fallback paths.
func chaosParams() analysis.Params {
	p := analysis.Defaults()
	p.N = 12
	p.M = 6
	p.L = 4
	p.Q = 0
	p.FieldWidth, p.FieldHeight = 1000, 1000
	p.Range = 300
	return p
}

// chaosPositions clusters all n nodes within mutual range so every pair
// is physically discoverable.
func chaosPositions(n int) []field.Point {
	pts := make([]field.Point, n)
	for i := range pts {
		pts[i] = field.Point{X: 100 + float64(i%5)*30, Y: 100 + float64(i/5)*30}
	}
	return pts
}

// RunCell executes one chaos cell twice under the given seed and returns
// the verified outcome.
func RunCell(cell Cell, seed int64) (CellResult, error) {
	return RunCellTraced(cell, seed, nil)
}

// RunCellTraced is RunCell with a trace sink attached to the first of the
// two determinism runs. Trace emission is passive — it never feeds back
// into RNG draws or event ordering, and the determinism fingerprint
// excludes it — so a traced cell still replays byte-identically.
func RunCellTraced(cell Cell, seed int64, sink trace.Sink) (CellResult, error) {
	first, fp1, err := runCellOnce(cell, seed, sink)
	if err != nil {
		return CellResult{}, fmt.Errorf("faults: cell %s: %w", cell.Name, err)
	}
	_, fp2, err := runCellOnce(cell, seed, nil)
	if err != nil {
		return CellResult{}, fmt.Errorf("faults: cell %s (replay): %w", cell.Name, err)
	}
	first.Deterministic = fp1 == fp2
	return first, nil
}

// runCellOnce builds the cell's deployment, drains it with the fault plan
// armed, applies the monitor timeouts, and checks invariants. The returned
// fingerprint captures the complete observable outcome for the
// determinism check.
func runCellOnce(cell Cell, seed int64, sink trace.Sink) (CellResult, string, error) {
	p := chaosParams()
	retry := core.DefaultRetryConfig(p)
	streams := sim.NewStreams(seed ^ int64(len(cell.Name))<<32)

	var injector radio.FaultInjector
	if cell.Loss > 0 {
		var err error
		injector, err = NewChannel(ChannelConfig{
			Loss:     cell.Loss,
			Dup:      cell.Loss / 2,
			Reorder:  cell.Loss / 2,
			MaxDelay: 0.01,
		}, streams.Get("chaos-channel"))
		if err != nil {
			return CellResult{}, "", err
		}
	}

	net, err := core.NewNetwork(core.NetworkConfig{
		Params:          p,
		Seed:            seed,
		Jammer:          cell.Jammer,
		Positions:       chaosPositions(p.N),
		Faults:          injector,
		Retry:           retry,
		Defense:         core.DefaultDefenseConfig(p),
		ClockSkewSpread: 0.05,
		Trace:           sink,
	})
	if err != nil {
		return CellResult{}, "", err
	}
	compromised, err := net.CompromiseRandom(2)
	if err != nil {
		return CellResult{}, "", err
	}
	if cell.Adversary != adversary.None {
		// One of the compromised nodes turns Byzantine: it keeps its codes
		// and radio but records/forges/corrupts/floods instead of jamming.
		if _, err := net.ArmAdversary(compromised[0], cell.Adversary); err != nil {
			return CellResult{}, "", err
		}
	}

	if cell.Churn {
		isCompromised := map[int]bool{}
		for _, i := range compromised {
			isCompromised[i] = true
		}
		var honest []int
		for i := 0; i < net.NumNodes(); i++ {
			if !isCompromised[i] {
				honest = append(honest, i)
			}
		}
		rng := streams.Get("chaos-churn")
		plan, err := RandomChurn(len(honest), 2, 1.0, rng)
		if err != nil {
			return CellResult{}, "", err
		}
		for i := range plan {
			plan[i].Node = honest[plan[i].Node]
		}
		if err := ScheduleChurn(net, plan); err != nil {
			return CellResult{}, "", err
		}
	}

	if err := net.RunDNDP(1); err != nil {
		return CellResult{}, "", err
	}
	if err := net.RunMNDP(1); err != nil {
		return CellResult{}, "", err
	}
	// Quiescent: apply the monitor timeouts, then check invariants.
	net.ExpireStaleNeighbors()
	net.ExpireSilentSessions()
	violations := CheckInvariants(net, retry.SessionTimeout)

	res := CellResult{
		Cell:       cell,
		Discovered: len(net.Discoveries()),
		Violations: violations,
	}
	fp, err := fingerprint(net, violations)
	if err != nil {
		return CellResult{}, "", err
	}
	return res, fp, nil
}

// fingerprint serializes a run's observable outcome: the discovery ledger,
// the medium counters, and any violations.
func fingerprint(net *core.Network, violations []Violation) (string, error) {
	pairs, err := json.Marshal(net.Discoveries())
	if err != nil {
		return "", err
	}
	stats, err := json.Marshal(net.MediumStats())
	if err != nil {
		return "", err
	}
	vs, err := json.Marshal(violations)
	if err != nil {
		return "", err
	}
	return string(pairs) + "|" + string(stats) + "|" + string(vs), nil
}

// RunMatrix runs every cell and returns the results in matrix order.
func RunMatrix(cells []Cell, seed int64) ([]CellResult, error) {
	out := make([]CellResult, 0, len(cells))
	for _, cell := range cells {
		res, err := RunCell(cell, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
