// Package faults is the deterministic fault-injection layer: seed-driven
// channel fault plans (loss, duplication, bounded reorder) that plug into
// radio.Medium, node-churn schedules driven through the simulation engine,
// protocol invariant checking over a quiesced deployment, and the chaos
// harness that runs a jammer × churn × loss fault matrix and asserts the
// invariants in every cell. Everything is derived from explicit RNG
// streams so a fault plan replays bit-identically under the same seed.
package faults

import (
	"fmt"
	"math/rand"

	"repro/internal/radio"
	"repro/internal/sim"
)

// ChannelConfig describes a probabilistic channel fault plan. All
// probabilities are per-transmission and independent; the zero value is a
// fault-free channel.
type ChannelConfig struct {
	// Loss is the probability a transmission is silently dropped.
	Loss float64
	// Dup is the probability a delivered transmission arrives twice.
	Dup float64
	// Reorder is the probability a delivered transmission is held back by
	// a uniform delay in (0, MaxDelay], letting later frames overtake it.
	Reorder float64
	// MaxDelay bounds the reorder delay. Required when Reorder > 0.
	MaxDelay sim.Time
}

// Validate rejects configurations outside the model.
func (c ChannelConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"Loss", c.Loss}, {"Dup", c.Dup}, {"Reorder", c.Reorder}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s %v outside [0, 1]", p.name, p.v)
		}
	}
	if c.Reorder > 0 && c.MaxDelay <= 0 {
		return fmt.Errorf("faults: Reorder %v needs a positive MaxDelay", c.Reorder)
	}
	return nil
}

// channel implements radio.FaultInjector for a ChannelConfig.
type channel struct {
	cfg ChannelConfig
	rng *rand.Rand
}

// NewChannel builds a deterministic channel fault plan. The medium consults
// it once per non-jammed transmission, in engine order, so the same seed
// replays the same fault schedule.
func NewChannel(cfg ChannelConfig, rng *rand.Rand) (radio.FaultInjector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("faults: rng must be set")
	}
	return &channel{cfg: cfg, rng: rng}, nil
}

// Decide draws every fault coordinate unconditionally so the RNG stream
// advances identically regardless of which verdicts fire — a dropped frame
// must not shift the fate of the frames behind it.
func (c *channel) Decide(from, to int, msg radio.Message) radio.FaultDecision {
	drop := c.rng.Float64() < c.cfg.Loss
	dup := c.rng.Float64() < c.cfg.Dup
	reorder := c.rng.Float64() < c.cfg.Reorder
	hold := c.rng.Float64()
	var d radio.FaultDecision
	if drop {
		d.Drop = true
		return d
	}
	d.Duplicate = dup
	if reorder {
		d.Delay = sim.Time(hold) * c.cfg.MaxDelay
	}
	return d
}
