package faults

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/sim"
)

// ChurnEvent is one node's crash/restart cycle in a churn schedule.
type ChurnEvent struct {
	// Node is the index of the node that fails.
	Node int
	// CrashAt is the virtual time the node crashes, losing all volatile
	// protocol state.
	CrashAt sim.Time
	// RestartAt is when it comes back up; must be after CrashAt. Zero
	// means the node never restarts (a permanent failure).
	RestartAt sim.Time
	// RediscoverAfter is the extra delay after restart before the node
	// re-initiates D-NDP. Ignored when RestartAt is zero.
	RediscoverAfter sim.Time
}

// Validate rejects impossible schedules.
func (e ChurnEvent) Validate() error {
	if e.CrashAt < 0 {
		return fmt.Errorf("faults: churn CrashAt %v must be >= 0", e.CrashAt)
	}
	if e.RestartAt != 0 && e.RestartAt <= e.CrashAt {
		return fmt.Errorf("faults: churn RestartAt %v must follow CrashAt %v", e.RestartAt, e.CrashAt)
	}
	if e.RediscoverAfter < 0 {
		return fmt.Errorf("faults: churn RediscoverAfter %v must be >= 0", e.RediscoverAfter)
	}
	return nil
}

// ScheduleChurn arms a churn plan on the network's engine: each event's
// crash, restart, and re-discovery fire at their virtual times during the
// next engine drain. Call before core's Run* methods so the events
// interleave with protocol traffic.
func ScheduleChurn(net *core.Network, plan []ChurnEvent) error {
	engine := net.Engine()
	now := engine.Now()
	for _, e := range plan {
		if err := e.Validate(); err != nil {
			return err
		}
		if e.Node < 0 || e.Node >= net.NumNodes() {
			return fmt.Errorf("faults: churn node %d out of range", e.Node)
		}
		e := e
		if _, err := engine.Schedule(e.CrashAt-now, func() { _ = net.CrashNode(e.Node) }); err != nil {
			return err
		}
		if e.RestartAt == 0 {
			continue
		}
		if _, err := engine.Schedule(e.RestartAt-now, func() {
			_ = net.RestartNode(e.Node)
		}); err != nil {
			return err
		}
		if err := net.ScheduleDiscovery(e.Node, e.RestartAt-now+e.RediscoverAfter); err != nil {
			return err
		}
	}
	return nil
}

// RandomChurn draws a deterministic churn plan: count distinct nodes crash
// at uniform times in [0, window) and restart after an outage of up to
// window, re-running discovery shortly after. Crashing nodes are drawn
// from [0, n).
func RandomChurn(n, count int, window sim.Time, rng *rand.Rand) ([]ChurnEvent, error) {
	if count < 0 || count > n {
		return nil, fmt.Errorf("faults: cannot churn %d of %d nodes", count, n)
	}
	if window <= 0 {
		return nil, fmt.Errorf("faults: churn window %v must be positive", window)
	}
	if rng == nil {
		return nil, fmt.Errorf("faults: rng must be set")
	}
	perm := rng.Perm(n)[:count]
	plan := make([]ChurnEvent, 0, count)
	for _, node := range perm {
		crash := sim.Time(rng.Float64()) * window
		outage := sim.Time(rng.Float64())*window + window/16
		plan = append(plan, ChurnEvent{
			Node:            node,
			CrashAt:         crash,
			RestartAt:       crash + outage,
			RediscoverAfter: window / 16,
		})
	}
	return plan, nil
}
