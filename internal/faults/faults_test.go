package faults

import (
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/radio"
)

func TestChannelConfigValidation(t *testing.T) {
	bad := []ChannelConfig{
		{Loss: -0.1},
		{Loss: 1.1},
		{Dup: 2},
		{Reorder: -1},
		{Reorder: 0.5}, // MaxDelay missing
	}
	for i, cfg := range bad {
		if _, err := NewChannel(cfg, rand.New(rand.NewSource(1))); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewChannel(ChannelConfig{Loss: 0.5}, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := NewChannel(ChannelConfig{}, rand.New(rand.NewSource(1))); err != nil {
		t.Fatalf("fault-free channel rejected: %v", err)
	}
}

func TestChannelRatesAndDeterminism(t *testing.T) {
	cfg := ChannelConfig{Loss: 0.3, Dup: 0.2, Reorder: 0.1, MaxDelay: 0.05}
	decide := func(seed int64, n int) (drops, dups, delays int, trace []radio.FaultDecision) {
		ch, err := NewChannel(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			d := ch.Decide(0, 1, radio.Message{Kind: 1})
			trace = append(trace, d)
			if d.Drop {
				drops++
			}
			if d.Duplicate {
				dups++
			}
			if d.Delay > 0 {
				delays++
				if d.Delay > cfg.MaxDelay {
					t.Fatalf("delay %v exceeds MaxDelay %v", d.Delay, cfg.MaxDelay)
				}
			}
		}
		return
	}
	const n = 20000
	drops, dups, delays, trace1 := decide(7, n)
	near := func(got int, want float64) bool {
		return float64(got) > want*0.9 && float64(got) < want*1.1
	}
	if !near(drops, cfg.Loss*n) {
		t.Fatalf("drop rate %d/%d far from %.2f", drops, n, cfg.Loss)
	}
	// Dup and reorder only apply to delivered frames.
	delivered := float64(n - drops)
	if !near(dups, cfg.Dup*delivered) {
		t.Fatalf("dup rate %d/%.0f far from %.2f", dups, delivered, cfg.Dup)
	}
	if !near(delays, cfg.Reorder*delivered) {
		t.Fatalf("reorder rate %d/%.0f far from %.2f", delays, delivered, cfg.Reorder)
	}
	_, _, _, trace2 := decide(7, n)
	for i := range trace1 {
		if trace1[i] != trace2[i] {
			t.Fatalf("same-seed decision %d diverged: %+v vs %+v", i, trace1[i], trace2[i])
		}
	}
}

func TestChurnEventValidation(t *testing.T) {
	bad := []ChurnEvent{
		{Node: 0, CrashAt: -1},
		{Node: 0, CrashAt: 2, RestartAt: 1},
		{Node: 0, CrashAt: 1, RestartAt: 2, RediscoverAfter: -1},
	}
	for i, e := range bad {
		if e.Validate() == nil {
			t.Fatalf("event %d accepted: %+v", i, e)
		}
	}
	if err := (ChurnEvent{Node: 0, CrashAt: 1, RestartAt: 2}).Validate(); err != nil {
		t.Fatalf("valid event rejected: %v", err)
	}
	if err := (ChurnEvent{Node: 0, CrashAt: 1}).Validate(); err != nil {
		t.Fatalf("permanent failure rejected: %v", err)
	}
}

func TestRandomChurnBounds(t *testing.T) {
	if _, err := RandomChurn(5, 6, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("count > n accepted")
	}
	if _, err := RandomChurn(5, 2, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("zero window accepted")
	}
	plan, err := RandomChurn(10, 4, 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, e := range plan {
		if err := e.Validate(); err != nil {
			t.Fatalf("generated invalid event %+v: %v", e, err)
		}
		if seen[e.Node] {
			t.Fatalf("node %d churned twice", e.Node)
		}
		seen[e.Node] = true
	}
}

// TestScheduledChurnRecoversDiscovery runs a crash/restart cycle through
// the engine mid-discovery and checks the restarted node re-discovers its
// neighborhood and the invariants hold at quiescence.
func TestScheduledChurnRecoversDiscovery(t *testing.T) {
	p := chaosParams()
	retry := core.DefaultRetryConfig(p)
	net, err := core.NewNetwork(core.NetworkConfig{
		Params:    p,
		Seed:      3,
		Positions: chaosPositions(p.N),
		Retry:     retry,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := []ChurnEvent{{Node: 0, CrashAt: 0.5, RestartAt: 5, RediscoverAfter: 0.1}}
	if err := ScheduleChurn(net, plan); err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	net.ExpireStaleNeighbors()
	net.ExpireSilentSessions()
	if vs := CheckInvariants(net, retry.SessionTimeout); len(vs) != 0 {
		t.Fatalf("invariant violations after churn: %v", vs)
	}
	if len(net.Node(0).Neighbors()) == 0 {
		t.Fatal("restarted node ended with no neighbors")
	}
}

// TestInvariantCheckerFlagsViolations plants a breach and checks the
// checker reports it: symmetry is broken by a crash that wipes one side.
// The healthy baseline needs the retry GC — even a fault-free run leaks
// half-open responder records when two nodes' handshakes cross (one
// direction completes first, the other's CONFIRM is ignored).
func TestInvariantCheckerFlagsViolations(t *testing.T) {
	p := chaosParams()
	net, err := core.NewNetwork(core.NetworkConfig{
		Params:    p,
		Seed:      9,
		Positions: chaosPositions(p.N),
		Retry:     core.DefaultRetryConfig(p),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if vs := CheckInvariants(net, 0); len(vs) != 0 {
		t.Fatalf("healthy quiesced network reported violations: %v", vs)
	}
	// Crash and instantly restart node 0: its table is empty while its
	// peers still list it — a symmetry breach the checker must flag.
	if err := net.CrashNode(0); err != nil {
		t.Fatal(err)
	}
	if err := net.RestartNode(0); err != nil {
		t.Fatal(err)
	}
	vs := CheckInvariants(net, 0)
	if len(vs) == 0 {
		t.Fatal("planted symmetry breach not reported")
	}
	for _, v := range vs {
		if v.Invariant != "symmetry" {
			t.Fatalf("unexpected violation kind: %v", v)
		}
	}
}

// TestHalfOpenInvariantFlagsSeedLeak checks the half-open invariant fires
// on the seed engine's session leak (no retry GC) under the intelligent
// attack.
func TestHalfOpenInvariantFlagsSeedLeak(t *testing.T) {
	p := chaosParams()
	net, err := core.NewNetwork(core.NetworkConfig{
		Params:    p,
		Seed:      5,
		Jammer:    core.JamIntelligent,
		Positions: chaosPositions(p.N),
	})
	if err != nil {
		t.Fatal(err)
	}
	var all []int
	for i := 0; i < net.NumNodes(); i++ {
		all = append(all, i)
	}
	if err := net.Compromise(all[:4]); err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range CheckInvariants(net, 0) {
		if v.Invariant == "half-open" {
			found = true
		}
	}
	if !found {
		t.Fatal("seed half-open leak not flagged")
	}
}

// TestMatrixShape checks the matrix composition: 16 base cells plus 4
// cells per Byzantine behavior, unique names, and a working filter.
func TestMatrixShape(t *testing.T) {
	cells := Matrix()
	if len(cells) != 32 {
		t.Fatalf("matrix has %d cells, want 32", len(cells))
	}
	names := map[string]bool{}
	perKind := map[adversary.Kind]int{}
	for _, c := range cells {
		if names[c.Name] {
			t.Fatalf("duplicate cell name %q", c.Name)
		}
		names[c.Name] = true
		perKind[c.Adversary]++
		if c.Adversary != adversary.None && c.Loss != 0 {
			t.Fatalf("adversary cell %q mixes channel loss in", c.Name)
		}
	}
	if perKind[adversary.None] != 16 {
		t.Fatalf("%d base cells, want 16", perKind[adversary.None])
	}
	for _, k := range adversary.Kinds {
		if perKind[k] != 4 {
			t.Fatalf("%d cells for adversary %s, want 4", perKind[k], k)
		}
		if got := MatrixFor(k); len(got) != 4 {
			t.Fatalf("MatrixFor(%s) returned %d cells, want 4", k, len(got))
		}
	}
	if got := MatrixFor(adversary.None); len(got) != 16 {
		t.Fatalf("MatrixFor(none) returned %d cells, want 16", len(got))
	}
}

// TestChaosMatrix runs the full fault matrix — the acceptance gate: at
// least 12 cells, zero invariant violations, every cell deterministic.
func TestChaosMatrix(t *testing.T) {
	cells := Matrix()
	if len(cells) < 12 {
		t.Fatalf("matrix has %d cells, want >= 12", len(cells))
	}
	results, err := RunMatrix(cells, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Deterministic {
			t.Errorf("cell %s: non-deterministic outcome", r.Cell.Name)
		}
		for _, v := range r.Violations {
			t.Errorf("cell %s: %v", r.Cell.Name, v)
		}
		if r.Cell.Jammer == core.JamNone && r.Cell.Loss == 0 && !r.Cell.Churn && r.Discovered == 0 {
			t.Errorf("cell %s: benign cell discovered nothing", r.Cell.Name)
		}
	}
}
