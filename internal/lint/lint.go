package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// jrsnd-lint machine-enforces the repo's prose invariants: simulator
// determinism (no wall clocks or global randomness in the protocol
// engine), the bounded-decode discipline of internal/wire, and
// constant-time handling of authentication tags. Each invariant is one
// Analyzer; a finding is either fixed or suppressed in place with a
// reasoned //jrsnd:allow directive. See docs/static-analysis.md.

// Diagnostic is one finding, anchored to a file position.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	// Reason carries the directive text for suppressed diagnostics.
	Reason string `json:"reason,omitempty"`
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Pkg   *Package
	check string
	out   *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.out = append(*p.out, Diagnostic{
		Check:   p.check,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	// AppliesTo scopes the check by import path; nil means every package.
	AppliesTo func(pkgPath string) bool
	Run       func(*Pass)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		wallclockAnalyzer,
		globalrandAnalyzer,
		cryptocompareAnalyzer,
		boundedallocAnalyzer,
		mutexaliasingAnalyzer,
		spanbalanceAnalyzer,
	}
}

// KnownChecks returns every valid check name, including the directive
// meta-check, for directive validation and -checks parsing.
func KnownChecks() map[string]bool {
	known := map[string]bool{directiveCheck: true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	return known
}

// Result is one suite run over a package set.
type Result struct {
	Packages int `json:"packages"`
	// Findings are active diagnostics: any entry fails the gate.
	Findings []Diagnostic `json:"findings"`
	// Suppressed are diagnostics matched by a //jrsnd:allow directive.
	Suppressed []Diagnostic `json:"suppressed"`
}

// Run executes the given analyzers over the packages, applies suppression
// directives, and validates the directives themselves.
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	res := Result{Packages: len(pkgs)}
	running := map[string]bool{}
	for _, a := range analyzers {
		running[a.Name] = true
	}
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			a.Run(&Pass{Pkg: pkg, check: a.Name, out: &raw})
		}
		dirs := collectDirectives(pkg)
		for _, d := range raw {
			if dir := matchDirective(dirs, d); dir != nil {
				dir.used = true
				d.Reason = dir.reason
				res.Suppressed = append(res.Suppressed, d)
				continue
			}
			res.Findings = append(res.Findings, d)
		}
		res.Findings = append(res.Findings, validateDirectives(dirs, running)...)
	}
	sortDiags(res.Findings)
	sortDiags(res.Suppressed)
	return res
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
}
