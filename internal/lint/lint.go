package lint

import (
	"fmt"
	"go/token"
	"runtime"
	"sort"
	"sync"
)

// jrsnd-lint machine-enforces the repo's prose invariants: simulator
// determinism (no wall clocks or global randomness in the protocol
// engine), the bounded-decode discipline of internal/wire, constant-time
// handling of authentication tags, and — since the suite grew an
// interprocedural call-graph substrate — goroutine lifecycle hygiene,
// lock-acquisition ordering, and allocation-free hot paths. Each
// invariant is one Analyzer; a finding is either fixed or suppressed in
// place with a reasoned //jrsnd:allow directive. See
// docs/static-analysis.md.

// Diagnostic is one finding, anchored to a file position.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	// Reason carries the directive text for suppressed diagnostics.
	Reason string `json:"reason,omitempty"`
}

// Pass is one per-package analyzer's view of one package.
type Pass struct {
	Pkg   *Package
	check string
	out   *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.out = append(*p.out, Diagnostic{
		Check:   p.check,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// SuitePass is an interprocedural analyzer's view of the whole load: all
// packages at once plus the shared call graph.
type SuitePass struct {
	Pkgs  []*Package
	Graph *CallGraph
	fset  *token.FileSet
	check string
	out   *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *SuitePass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.fset.Position(pos)
	*p.out = append(*p.out, Diagnostic{
		Check:   p.check,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named invariant check. Exactly one of Run (lexical,
// per package) or RunSuite (interprocedural, whole package set) is set.
type Analyzer struct {
	Name string
	Doc  string
	// AppliesTo scopes a per-package check by import path; nil means
	// every package. Suite analyzers scope themselves internally.
	AppliesTo func(pkgPath string) bool
	Run       func(*Pass)
	RunSuite  func(*SuitePass)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		wallclockAnalyzer,
		globalrandAnalyzer,
		cryptocompareAnalyzer,
		boundedallocAnalyzer,
		mutexaliasingAnalyzer,
		spanbalanceAnalyzer,
		goroutinelifecycleAnalyzer,
		lockorderAnalyzer,
		hotpathallocAnalyzer,
	}
}

// KnownChecks returns every valid check name, including the directive
// meta-check, for directive validation and -checks parsing.
func KnownChecks() map[string]bool {
	known := map[string]bool{directiveCheck: true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	return known
}

// Result is one suite run over a package set.
type Result struct {
	Packages int `json:"packages"`
	// Findings are active diagnostics: any entry fails the gate.
	Findings []Diagnostic `json:"findings"`
	// Suppressed are diagnostics matched by a //jrsnd:allow directive.
	Suppressed []Diagnostic `json:"suppressed"`
}

// Run executes the given analyzers over the packages, applies
// suppression directives, and validates the directives themselves.
// Per-package analyzers fan out over a bounded worker pool; the finding
// order is deterministic regardless of scheduling (sorted by position).
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	res := Result{Packages: len(pkgs)}
	running := map[string]bool{}
	var perPkg, suite []*Analyzer
	for _, a := range analyzers {
		running[a.Name] = true
		if a.RunSuite != nil {
			suite = append(suite, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}

	// Per-package analyzers: each worker owns one package's raw slice, so
	// the merge below is deterministic in package order even though the
	// scheduling is not.
	raws := make([][]Diagnostic, len(pkgs))
	workers := analysisWorkers(len(pkgs))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				pkg := pkgs[i]
				for _, a := range perPkg {
					if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
						continue
					}
					a.Run(&Pass{Pkg: pkg, check: a.Name, out: &raws[i]})
				}
			}
		}()
	}
	for i := range pkgs {
		work <- i
	}
	close(work)
	wg.Wait()

	var raw []Diagnostic
	for _, r := range raws {
		raw = append(raw, r...)
	}

	// Interprocedural analyzers run once over the whole set, sharing one
	// call graph.
	if len(suite) > 0 && len(pkgs) > 0 {
		graph := BuildCallGraph(pkgs)
		for _, a := range suite {
			a.RunSuite(&SuitePass{
				Pkgs:  pkgs,
				Graph: graph,
				fset:  pkgs[0].Fset,
				check: a.Name,
				out:   &raw,
			})
		}
	}

	// Directive matching is global: directives are keyed by file, so a
	// suite-level finding matches the directive in whichever package owns
	// the file.
	var dirs []*directive
	for _, pkg := range pkgs {
		dirs = append(dirs, collectDirectives(pkg)...)
	}
	for _, d := range raw {
		if dir := matchDirective(dirs, d); dir != nil {
			dir.used = true
			d.Reason = dir.reason
			res.Suppressed = append(res.Suppressed, d)
			continue
		}
		res.Findings = append(res.Findings, d)
	}
	res.Findings = append(res.Findings, validateDirectives(dirs, running)...)
	sortDiags(res.Findings)
	sortDiags(res.Suppressed)
	return res
}

// analysisWorkers bounds the per-package fan-out: enough to cover the
// CPUs, never more than the packages, at least one.
func analysisWorkers(pkgs int) int {
	n := runtime.GOMAXPROCS(0)
	if n > pkgs {
		n = pkgs
	}
	if n < 1 {
		n = 1
	}
	return n
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}
