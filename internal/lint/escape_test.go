package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestHotpathEscapeCrossCheck makes the hotpathalloc analyzer and the
// compiler agree: the //jrsnd:hotpath closures in chips and dsss are
// compiled with -gcflags=-m and no "escapes to heap" / "moved to heap"
// diagnostic may land inside a hot function body. The two packages are
// copied into a throwaway module first, because a build-cache hit on the
// real packages would silently print no diagnostics at all and the test
// would pass vacuously.
func TestHotpathEscapeCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a throwaway module")
	}
	l := testLoader(t)
	pkgs, err := l.LoadPatterns("./internal/chips", "./internal/dsss")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	graph := BuildCallGraph(pkgs)
	var sink []Diagnostic
	pass := &SuitePass{Pkgs: pkgs, Graph: graph, fset: l.Fset, check: "hotpathalloc", out: &sink}
	var roots []string
	for _, pkg := range pkgs {
		roots = append(roots, hotpathRoots(pass, pkg)...)
	}
	if len(sink) != 0 {
		t.Fatalf("unattached //jrsnd:hotpath directives: %+v", sink)
	}
	if len(roots) < 4 {
		t.Fatalf("hotpath roots = %v, want at least the despread/sync/correlation kernels", roots)
	}

	// Hot body line ranges, keyed by module-relative file path.
	type span struct{ name string; lo, hi int }
	hot := map[string][]span{}
	closure := graph.Closure(roots)
	for key := range closure {
		node := graph.Funcs[key]
		if node == nil {
			continue
		}
		p0 := l.Fset.Position(node.Decl.Pos())
		p1 := l.Fset.Position(node.Decl.End())
		rel, err := filepath.Rel(l.ModuleRoot, p0.Filename)
		if err != nil {
			t.Fatal(err)
		}
		hot[rel] = append(hot[rel], span{name: ShortFuncName(key), lo: p0.Line, hi: p1.Line})
	}

	// Copy the packages — plus their transitive module-internal
	// dependencies — verbatim (same relative paths, so line numbers
	// transfer) into a fresh module and compile with -m.
	deps, err := l.goList("list", "-deps", "-json=ImportPath,Dir,Standard", "--", "./internal/chips", "./internal/dsss")
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	for _, d := range deps {
		if d.Standard || !strings.HasPrefix(d.ImportPath, l.ModulePath) {
			continue
		}
		dir, err := filepath.Rel(l.ModuleRoot, d.Dir)
		if err != nil {
			t.Fatal(err)
		}
		src := filepath.Join(l.ModuleRoot, dir)
		dst := filepath.Join(tmp, dir)
		if err := os.MkdirAll(dst, 0o755); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(src, name))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte("module repro\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "build", "-gcflags=./...=-m", "./...")
	cmd.Dir = tmp
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build -gcflags=-m: %v\n%s", err, out)
	}

	diagRe := regexp.MustCompile(`^(\S+\.go):(\d+):\d+: (.*)$`)
	sawDiag := false
	for _, line := range strings.Split(string(out), "\n") {
		m := diagRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		sawDiag = true
		msg := m[3]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		lineNo, _ := strconv.Atoi(m[2])
		file := filepath.ToSlash(m[1])
		for _, s := range hot[file] {
			if lineNo >= s.lo && lineNo <= s.hi {
				t.Errorf("compiler escape inside hot path %s: %s:%d: %s", s.name, file, lineNo, msg)
			}
		}
	}
	if !sawDiag {
		t.Fatal("go build -gcflags=-m produced no diagnostics at all; the cross-check ran vacuously")
	}
}
