// Package lotest seeds lockorder violations: the canonical AB/BA
// ordering cycle and a reentrant double-lock reached through a callee.
package lotest

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

// ab acquires a then b — together with ba below this is the AB/BA cycle.
// The finding anchors at the earliest witness acquisition, which is the
// b-acquisition here.
func (p *pair) ab() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock() // want lockorder "lock-order cycle"
	defer p.b.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock()
	defer p.a.Unlock()
}

type rentr struct {
	mu sync.Mutex
}

// outer holds mu across a call to inner, which locks mu again: a
// guaranteed self-deadlock on Go's non-reentrant mutexes. The witness is
// the call site, reached through the callee's transitive lock summary.
func (r *rentr) outer() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inner() // want lockorder "reentrant double-lock"
}

func (r *rentr) inner() {
	r.mu.Lock()
	defer r.mu.Unlock()
}

// ordered is the negative: both functions take c before d, so the graph
// stays acyclic.
type ordered struct {
	c sync.Mutex
	d sync.Mutex
}

func (o *ordered) first() {
	o.c.Lock()
	defer o.c.Unlock()
	o.d.Lock()
	defer o.d.Unlock()
}

func (o *ordered) second() {
	o.c.Lock()
	o.d.Lock()
	o.d.Unlock()
	o.c.Unlock()
}
