package lotest

import "sync"

// waived is a second AB/BA cycle whose finding is suppressed with a
// reasoned directive at its anchor (the earliest witness acquisition).
type waived struct {
	e sync.Mutex
	f sync.Mutex
}

func (w *waived) ef() {
	w.e.Lock()
	defer w.e.Unlock()
	//jrsnd:allow lockorder fixture exercises the suppression path
	w.f.Lock()
	defer w.f.Unlock()
}

func (w *waived) fe() {
	w.f.Lock()
	defer w.f.Unlock()
	w.e.Lock()
	defer w.e.Unlock()
}
