// Golden input for the wallclock analyzer: machine-clock reads in a
// deterministic package, the injected-clock pattern that replaces them,
// and both directive placements (trailing and line-above).
package wallclock

import "time"

func bad() time.Time {
	return time.Now() // want wallclock "time.Now"
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want wallclock "time.Since"
}

func badTimers() {
	_ = time.NewTimer(time.Second) // want wallclock "time.NewTimer"
	<-time.After(time.Second)      // want wallclock "time.After"
	time.Sleep(time.Millisecond)   // want wallclock "time.Sleep"
}

func badValueRef() func() time.Time {
	return time.Now // want wallclock "time.Now"
}

func okInjected(now func() time.Time) time.Time { return now() }

func okConstant() time.Duration { return 5 * time.Second }

func okMethods(t0 time.Time) bool { return t0.After(time.Unix(0, 0)) }

func suppressedTrailing() time.Time {
	return time.Now() //jrsnd:allow wallclock demo of a trailing reasoned suppression
}

func suppressedAbove() time.Time {
	//jrsnd:allow wallclock demo of a standalone directive on the line above
	return time.Now()
}
