// Package gltest seeds goroutinelifecycle violations: fire-and-forget
// goroutines (inline and through a named function), a Done without a
// paired Add, and — as negatives — every accepted lifecycle shape.
package gltest

import (
	"context"
	"sync"
)

type server struct {
	wg   sync.WaitGroup
	done chan struct{}
}

func work(counter *int) { *counter = *counter + 1 }

// leak is the classic fire-and-forget: nothing joins or cancels it.
func (s *server) leak(counter *int) {
	go func() { // want goroutinelifecycle "fire-and-forget goroutine"
		for {
			work(counter)
		}
	}()
}

// spin is a named spawned body with no lifecycle signal; the analyzer
// must resolve it through the call graph.
func spin(counter *int) {
	for {
		work(counter)
	}
}

func (s *server) leakNamed(counter *int) {
	go spin(counter) // want goroutinelifecycle "fire-and-forget goroutine"
}

// unpaired has a Done in the body but no Add in the spawner.
func (s *server) unpaired(counter *int) {
	go func() { // want goroutinelifecycle "never calls Add"
		defer s.wg.Done()
		work(counter)
	}()
}

// joined is the accepted WaitGroup shape.
func (s *server) joined(counter *int) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work(counter)
	}()
	s.wg.Wait()
}

// cancellable selects on a done channel.
func (s *server) cancellable(counter *int) {
	go func() {
		for {
			select {
			case <-s.done:
				return
			default:
				work(counter)
			}
		}
	}()
}

// ctxWorker consults a plumbed-in context; the analyzer finds the use
// inside the named body.
func ctxWorker(ctx context.Context, counter *int) {
	for ctx.Err() == nil {
		work(counter)
	}
}

func (s *server) cancellableCtx(ctx context.Context, counter *int) {
	go ctxWorker(ctx, counter)
}

// signalled closes a channel on completion, so a waiter can observe it.
func (s *server) signalled(counter *int) chan struct{} {
	ch := make(chan struct{})
	go func() {
		work(counter)
		close(ch)
	}()
	return ch
}

// suppressed carries a reasoned allow directive.
func (s *server) suppressed(counter *int) {
	//jrsnd:allow goroutinelifecycle fixture exercises the suppression path
	go func() {
		for {
			work(counter)
		}
	}()
}
