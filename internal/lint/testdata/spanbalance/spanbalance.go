// Golden input for the spanbalance analyzer: locally-held spans that
// leak (never ended, ended on only some return paths, or dropped on the
// fall-through path) against the legal lifetimes — defer, end-on-every-
// path, and the handoff idioms (field store, parent argument, scheduled
// closure).
package spanbalance

import "repro/internal/trace"

func badNeverEnded(tr *trace.Tracer) {
	sp := tr.Start(0, 0, 1, -1, "phase") // want spanbalance "never ended"
	if sp == 0 {
		println("tracing off")
	}
}

func badLeakyReturn(tr *trace.Tracer, fail bool) {
	sp := tr.Start(0, 0, 1, -1, "phase")
	if fail {
		return // want spanbalance "without a matching End"
	}
	tr.End(1, sp, 1, -1, "ok")
}

func badFallsOff(tr *trace.Tracer, ok bool) {
	sp := tr.Start(0, 0, 1, -1, "phase") // want spanbalance "falls off the end"
	if ok {
		tr.End(1, sp, 1, -1, "ok")
	}
}

func badLoopReturn(tr *trace.Tracer, rounds int) {
	for i := 0; i < rounds; i++ {
		sp := tr.Start(float64(i), 0, 1, -1, "round")
		if i == 3 {
			return // want spanbalance "without a matching End"
		}
		tr.End(float64(i)+1, sp, 1, -1, "")
	}
}

func okDefer(tr *trace.Tracer, fail bool) {
	sp := tr.Start(0, 0, 1, -1, "phase")
	defer tr.End(1, sp, 1, -1, "done")
	if fail {
		return
	}
	println("work")
}

func okEveryPath(tr *trace.Tracer, fail bool) {
	sp := tr.Start(0, 0, 1, -1, "phase")
	if fail {
		tr.End(1, sp, 1, -1, "failed")
		return
	}
	tr.End(1, sp, 1, -1, "ok")
}

func okSwitch(tr *trace.Tracer, mode int) {
	sp := tr.Start(0, 0, 1, -1, "phase")
	switch mode {
	case 0:
		tr.End(1, sp, 1, -1, "a")
	default:
		tr.End(1, sp, 1, -1, "b")
	}
}

func okLoopBalanced(tr *trace.Tracer, rounds int) {
	for i := 0; i < rounds; i++ {
		sp := tr.Start(float64(i), 0, 1, -1, "round")
		tr.End(float64(i)+1, sp, 1, -1, "")
	}
}

type handshake struct{ span trace.SpanID }

// okStoredDirect: a span assigned straight into protocol state is never a
// tracked local — its closer finds it in the struct.
func okStoredDirect(tr *trace.Tracer, h *handshake) {
	h.span = tr.Start(0, 0, 1, -1, "attempt")
}

// okHandoffField: storing the local into a field transfers custody.
func okHandoffField(tr *trace.Tracer, h *handshake) {
	sp := tr.Start(0, 0, 1, -1, "attempt")
	h.span = sp
}

// okHandoffClosure: the scheduled continuation owns the End.
func okHandoffClosure(tr *trace.Tracer, schedule func(func())) {
	sp := tr.Start(0, 0, 1, -1, "sweep")
	schedule(func() {
		tr.End(1, sp, 1, -1, "swept")
	})
}

// okHandoffArg: passing the ID along (here as a child's parent) hands it
// off; the callee side is responsible for the close.
func okHandoffArg(tr *trace.Tracer) {
	sync := tr.Start(0, 0, 1, -1, "sync")
	child := tr.Start(1, sync, 1, -1, "despread")
	tr.End(2, child, 1, -1, "")
}

// okClosureOwnSpan: a span opened inside a func literal belongs to the
// literal's own extent, not the enclosing function's return paths.
func okClosureOwnSpan(tr *trace.Tracer) func() {
	return func() {
		sp := tr.Start(0, 0, 1, -1, "deferred work")
		tr.End(1, sp, 1, -1, "")
	}
}

func suppressedLeak(tr *trace.Tracer) {
	sp := tr.Start(0, 0, 1, -1, "phase") //jrsnd:allow spanbalance deliberately left open to demonstrate suppression
	if sp == 0 {
		println("tracing off")
	}
}
