// Golden input for the globalrand analyzer: package-level math/rand
// draws (v1 and v2) versus draws through an injected *rand.Rand.
package globalrand

import (
	"math/rand"
	v2 "math/rand/v2"
)

func bad() int {
	return rand.Intn(10) // want globalrand "rand.Intn"
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want globalrand "rand.Shuffle"
}

func badRead(buf []byte) {
	_, _ = rand.Read(buf) // want globalrand "rand.Read"
}

func badV2() int {
	return v2.IntN(10) // want globalrand "rand.IntN"
}

func okInjected(rng *rand.Rand) int { return rng.Intn(10) }

func okConstructor() *rand.Rand { return rand.New(rand.NewSource(1)) }

func suppressed() float64 {
	return rand.Float64() //jrsnd:allow globalrand demo of a reasoned suppression
}
