// Package hptest seeds hotpathalloc violations: a clean //jrsnd:hotpath
// kernel whose callee allocates in every way the analyzer flags, plus a
// directive that guards nothing.
package hptest

import (
	"errors"
	"fmt"
)

var sink map[int]int

// kernel is itself allocation-free; every finding below comes from its
// static call closure.
//
//jrsnd:hotpath
func kernel(buf []int32) int {
	s := 0
	for _, v := range buf {
		s += int(v)
	}
	return s + helper(len(buf), "tag")
}

func helper(n int, name string) int {
	xs := make([]int, 0, n) // want hotpathalloc "make in hot path"
	for i := 0; i < n; i++ {
		xs = append(xs, i) // want hotpathalloc "append in hot path"
	}
	sink[n] = n // want hotpathalloc "map write in hot path"
	var boxed any = n // want hotpathalloc "interface boxing in hot path"
	_ = boxed
	f := func() int { return n } // want hotpathalloc "closure in hot path"
	raw := []byte(name) // want hotpathalloc "conversion in hot path"
	if len(raw) == 0 {
		fmt.Println(n) // want hotpathalloc "fmt.Println in hot path"
	}
	if n < 0 {
		panic(errors.New("negative")) // want hotpathalloc "errors.New in hot path"
	}
	return len(xs) + f()
}

// cold allocates freely: it is outside every hot closure, so none of
// this is flagged.
func cold(n int) []int {
	out := make([]int, n)
	return append(out, n)
}

//jrsnd:hotpath floating directive guards nothing // want hotpathalloc "not attached to a function"

// suppressedKernel's one allocation carries a reasoned directive.
//
//jrsnd:hotpath
func suppressedKernel(n int) int {
	//jrsnd:allow hotpathalloc fixture exercises the suppression path
	xs := make([]int, n)
	return len(xs)
}
