// Golden input for the directive meta-check: a one-word reason, an
// unknown check name, a directive with no check, and a stale directive
// that suppresses nothing. Expectations live in the golden test table
// (this package's directives are themselves the subject, so trailing
// want-markers would change their parse).
package directive

import "time"

func badReason() time.Time {
	return time.Now() //jrsnd:allow wallclock terse
}

func unknownCheck() {
	_ = 1 //jrsnd:allow nosuchcheck this check does not exist anywhere
}

func staleDirective() {
	_ = 2 //jrsnd:allow wallclock this directive suppresses nothing at all
}

func missingCheck() {
	_ = 3 //jrsnd:allow
}
