// Golden input for the boundedalloc analyzer: allocation sizes read off
// the wire with and without a dominating cap comparison, and bounded
// versus unbounded io.ReadAll.
package boundedalloc

import (
	"encoding/binary"
	"io"
)

type params struct{ MaxFrame int }

func badDecode(b []byte) []byte {
	n := int(binary.BigEndian.Uint16(b))
	return make([]byte, n) // want boundedalloc "allocation size n"
}

func badTwoDim(b []byte) []uint32 {
	count := int(b[0])
	out := make([]uint32, 0, count) // want boundedalloc "allocation size count"
	return out
}

func okGuarded(b []byte, budget int) []byte {
	n := int(binary.BigEndian.Uint16(b))
	if n > budget {
		return nil
	}
	return make([]byte, n)
}

func okLenDerived(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func okCapNamed(p params) []byte { return make([]byte, p.MaxFrame) }

func okConstant() []byte { return make([]byte, 64) }

func badReadAll(r io.Reader) ([]byte, error) {
	return io.ReadAll(r) // want boundedalloc "io.ReadAll"
}

func okLimitedReadAll(r io.Reader) ([]byte, error) {
	return io.ReadAll(io.LimitReader(r, 1<<16))
}

func suppressed(n int) []byte {
	return make([]byte, n) //jrsnd:allow boundedalloc n is validated by the only caller in this demo
}
