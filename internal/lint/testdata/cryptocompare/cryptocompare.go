// Golden input for the cryptocompare analyzer: variable-time comparisons
// of values named like authentication material, against the constant-time
// forms and the shapes the heuristic must NOT flag (constants, nil,
// unrelated names).
package cryptocompare

import (
	"bytes"
	"crypto/hmac"
)

const kindAuth = 7

type msg struct {
	MAC     []byte
	AuthTag string
	Kind    byte
}

func badBytesEqual(mac, expect []byte) bool {
	return bytes.Equal(mac, expect) // want cryptocompare "mac"
}

func badFieldEqual(m msg, presented string) bool {
	return m.AuthTag == presented // want cryptocompare "AuthTag"
}

func badDigestArray(digest, sum [32]byte) bool {
	return digest == sum // want cryptocompare "digest"
}

func okHMACEqual(mac, expect []byte) bool { return hmac.Equal(mac, expect) }

func okConstantKind(m msg) bool { return m.Kind == kindAuth }

func okNilCheck(mac []byte) bool { return mac == nil }

func okEmptyString(tag string) bool { return tag == "" }

func okUnrelatedNames(a, b string) bool { return a == b }

func okUnrelatedBytes(payload, frame []byte) bool { return bytes.Equal(payload, frame) }

func suppressed(tag, label string) bool {
	return tag == label //jrsnd:allow cryptocompare client display label not authentication material
}
