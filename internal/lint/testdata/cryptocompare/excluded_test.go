// This file must never be loaded: the analyzers run over non-test files
// only, so the variable-time MAC comparison below is legal here. The
// golden test asserts no diagnostic cites this file.
package cryptocompare

import "bytes"

func testOnlyCompare(mac, expect []byte) bool {
	return bytes.Equal(mac, expect)
}
