// Golden input for the mutexaliasing analyzer: lock-holding structs
// passed by value and exported methods leaking guarded interiors, against
// the copy-out-under-lock pattern.
package mutexaliasing

import "sync"

type registry struct {
	mu    sync.Mutex
	items []int
	index map[string]int
}

type wrapper struct{ inner registry } // lock nested one level down

type plain struct{ items []int } // no lock anywhere

func badByValueParam(r registry) int { // want mutexaliasing "by value"
	return len(r.items)
}

func badNestedByValue(w wrapper) int { // want mutexaliasing "by value"
	return len(w.inner.items)
}

func (r registry) BadValueReceiver() int { // want mutexaliasing "by value"
	return len(r.items)
}

func (r *registry) BadItems() []int {
	return r.items // want mutexaliasing "guarded interior state"
}

func (r *registry) BadIndex() map[string]int {
	return r.index // want mutexaliasing "guarded interior state"
}

func okByPointer(r *registry) int { return len(r.items) }

func (r *registry) OKCopy() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.items...)
}

func (r *registry) interior() []int { return r.items } // unexported: callers are this package

func (p *plain) Items() []int { return p.items } // no lock: aliasing is the caller's business

func (r *registry) Suppressed() []int {
	return r.items //jrsnd:allow mutexaliasing documented read-only escape in this demo package
}
