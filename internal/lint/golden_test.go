package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The golden tests load each testdata package through the real loader
// under an import path that satisfies the analyzer's package scoping,
// run the suite, and compare active findings against `// want <check>
// "<substring>"` markers in the source. Suppressed findings are asserted
// by count (their lines carry the //jrsnd:allow directives themselves).

var (
	loaderOnce sync.Once
	sharedL    *Loader
	loaderErr  error
)

// testLoader shares one Loader (and its export-data cache) across every
// test in the package, including the repo-wide self-lint.
func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { sharedL, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return sharedL
}

func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer %q", name)
	return nil
}

type marker struct {
	check, substr string
}

var markerRe = regexp.MustCompile(`// want (\w+) "([^"]+)"`)

// collectMarkers maps line numbers to want-markers for one file.
func collectMarkers(t *testing.T, path string) map[int][]marker {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	out := map[int][]marker{}
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range markerRe.FindAllStringSubmatch(line, -1) {
			out[i+1] = append(out[i+1], marker{check: m[1], substr: m[2]})
		}
	}
	return out
}

func runGolden(t *testing.T, analyzer, dir, asPath string, wantSuppressed int) {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", dir), asPath)
	if err != nil {
		t.Fatalf("load testdata/%s: %v", dir, err)
	}
	res := Run([]*Package{pkg}, []*Analyzer{analyzerByName(t, analyzer)})

	want := map[string]bool{} // "line/check/substr" -> matched
	for _, file := range listGoFiles(t, pkg.Dir) {
		for line, ms := range collectMarkers(t, file) {
			for _, m := range ms {
				want[fmt.Sprintf("%s:%d:%s:%s", file, line, m.check, m.substr)] = false
			}
		}
	}
	for _, d := range res.Findings {
		matched := false
		for key, seen := range want {
			if seen {
				continue
			}
			parts := strings.SplitN(key, ":", 4)
			if parts[0] == d.File && parts[1] == fmt.Sprint(d.Line) && parts[2] == d.Check && strings.Contains(d.Message, parts[3]) {
				want[key] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding %s:%d [%s] %s", d.File, d.Line, d.Check, d.Message)
		}
	}
	for key, seen := range want {
		if !seen {
			t.Errorf("missing expected finding %s", key)
		}
	}
	if len(res.Suppressed) != wantSuppressed {
		t.Errorf("suppressed = %d, want %d: %+v", len(res.Suppressed), wantSuppressed, res.Suppressed)
	}
	for _, d := range res.Suppressed {
		if d.Reason == "" {
			t.Errorf("suppressed finding without a reason: %+v", d)
		}
	}
}

func listGoFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

func TestGoldenWallclock(t *testing.T) {
	runGolden(t, "wallclock", "wallclock", "repro/internal/sim/wallclocktest", 2)
}

func TestGoldenGlobalrand(t *testing.T) {
	runGolden(t, "globalrand", "globalrand", "repro/internal/experiment/grtest", 1)
}

func TestGoldenCryptocompare(t *testing.T) {
	runGolden(t, "cryptocompare", "cryptocompare", "repro/internal/core/cctest", 1)
}

func TestGoldenBoundedalloc(t *testing.T) {
	runGolden(t, "boundedalloc", "boundedalloc", "repro/internal/wire/batest", 1)
}

func TestGoldenMutexaliasing(t *testing.T) {
	runGolden(t, "mutexaliasing", "mutexaliasing", "repro/internal/authd/matest", 1)
}

func TestGoldenSpanbalance(t *testing.T) {
	runGolden(t, "spanbalance", "spanbalance", "repro/internal/core/sbtest", 1)
}

// TestInstrumentedPackageScope pins which import paths spanbalance
// polices: exactly the span-emitting packages of docs/observability.md.
func TestInstrumentedPackageScope(t *testing.T) {
	for _, path := range []string{
		"repro/internal/core", "repro/internal/sim", "repro/internal/dsss",
		"repro/internal/authd", "repro/internal/core/sub",
	} {
		if !IsInstrumentedPackage(path) {
			t.Errorf("IsInstrumentedPackage(%q) = false, want true", path)
		}
	}
	for _, path := range []string{
		"repro", "repro/internal/trace", "repro/internal/wire",
		"repro/internal/faults", "repro/cmd/jrsnd-report", "repro/internal/corecraft",
	} {
		if IsInstrumentedPackage(path) {
			t.Errorf("IsInstrumentedPackage(%q) = true, want false", path)
		}
	}
}

// TestGoldenCryptocompareSkipsTestFiles pins the _test.go exclusion: the
// deliberate variable-time comparison in excluded_test.go must not
// surface.
func TestGoldenCryptocompareSkipsTestFiles(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "cryptocompare"), "repro/internal/core/cctest2")
	if err != nil {
		t.Fatal(err)
	}
	res := Run([]*Package{pkg}, []*Analyzer{analyzerByName(t, "cryptocompare")})
	for _, d := range append(res.Findings, res.Suppressed...) {
		if strings.Contains(d.File, "_test.go") {
			t.Errorf("diagnostic from a _test.go file: %+v", d)
		}
	}
}

// TestGoldenDirective pins the directive meta-check. Expectations are a
// table because this package's directives are themselves the subject.
func TestGoldenDirective(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "directive"), "repro/internal/sim/dirtest")
	if err != nil {
		t.Fatal(err)
	}
	res := Run([]*Package{pkg}, []*Analyzer{analyzerByName(t, "wallclock")})
	if len(res.Suppressed) != 0 {
		t.Errorf("suppressed = %+v, want none (every directive here is defective)", res.Suppressed)
	}
	type exp struct {
		line   int
		check  string
		substr string
	}
	wants := []exp{
		{11, "wallclock", "time.Now"},
		{11, "directive", "written reason"},
		{15, "directive", "unknown check"},
		{19, "directive", "suppresses nothing"},
		{23, "directive", "needs a check name"},
	}
	if len(res.Findings) != len(wants) {
		t.Errorf("findings = %d, want %d: %+v", len(res.Findings), len(wants), res.Findings)
	}
	for _, w := range wants {
		found := false
		for _, d := range res.Findings {
			if d.Line == w.line && d.Check == w.check && strings.Contains(d.Message, w.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing finding line %d [%s] ~%q in %+v", w.line, w.check, w.substr, res.Findings)
		}
	}
}

// TestDeterministicPackageScope pins which import paths wallclock
// polices.
func TestDeterministicPackageScope(t *testing.T) {
	for _, path := range []string{
		"repro/internal/core", "repro/internal/sim", "repro/internal/dsss",
		"repro/internal/radio", "repro/internal/faults", "repro/internal/wire",
		"repro/internal/adversary", "repro/internal/codepool", "repro/internal/authd",
		"repro/internal/core/sub",
	} {
		if !IsDeterministicPackage(path) {
			t.Errorf("IsDeterministicPackage(%q) = false, want true", path)
		}
	}
	for _, path := range []string{
		"repro", "repro/internal/experiment", "repro/internal/metrics",
		"repro/cmd/jrsnd-sim", "repro/internal/corecraft",
	} {
		if IsDeterministicPackage(path) {
			t.Errorf("IsDeterministicPackage(%q) = true, want false", path)
		}
	}
}
