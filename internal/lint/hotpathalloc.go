package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// hotpathalloc: the DSSS correlation inner loop runs once per candidate
// (offset, code, tau) triple — millions of evaluations per synchronization
// window — so a single allocation in it turns into GC pressure that the
// jamming-resilience benchmarks (and the compressed-sensing scale regimes
// the ROADMAP targets) cannot absorb. A function marked with the
//
//	//jrsnd:hotpath
//
// directive promises its full static call closure is allocation-free.
// The analyzer walks the closure through the shared call graph and flags
// every construct the compiler would (or could) heap-allocate:
//
//   - make of any kind, and append (statically unprovable to stay in cap)
//   - map writes
//   - interface boxing: a concrete value converted to an interface in a
//     call argument (including variadic ...any), assignment, or return
//   - closures (func literals capture and escape)
//   - string <-> []byte conversions
//   - known-allocating stdlib calls (fmt.*, errors.New, strings.Join, …)
//
// Tests cross-check the marked kernels against `go build -gcflags=-m`
// escape output so the analyzer and the compiler agree. Interface call
// sites are analysis boundaries (see callgraph.go); the seeded kernels
// have none.

const hotpathDirective = "jrsnd:hotpath"

var hotpathallocAnalyzer = &Analyzer{
	Name:     "hotpathalloc",
	Doc:      "the static call closure of every //jrsnd:hotpath function must be allocation-free",
	RunSuite: runHotpathalloc,
}

func runHotpathalloc(pass *SuitePass) {
	var roots []string
	for _, pkg := range pass.Pkgs {
		roots = append(roots, hotpathRoots(pass, pkg)...)
	}
	closure := pass.Graph.Closure(roots)
	// Deterministic member order: sort closure keys.
	var members []string
	for key := range closure {
		members = append(members, key)
	}
	sort.Strings(members)
	for _, key := range members {
		node := pass.Graph.Funcs[key]
		if node == nil {
			continue
		}
		chain := closure[key]
		scanHotFunction(pass, node, chain)
	}
}

// hotpathRoots finds the //jrsnd:hotpath directives in one package and
// resolves each to the function it marks. A directive that is not the
// doc line of a function declaration is itself a finding: it silently
// guards nothing.
func hotpathRoots(pass *SuitePass, pkg *Package) []string {
	var roots []string
	for _, f := range pkg.Files {
		// Map declaration start lines to keys for line-above attachment.
		declByLine := map[int]string{}
		docComments := map[*ast.CommentGroup]bool{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if fd.Body != nil {
				declByLine[pkg.Fset.Position(fd.Pos()).Line] = obj.FullName()
			}
			if fd.Doc != nil {
				docComments[fd.Doc] = true
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				fields := strings.Fields(strings.TrimPrefix(c.Text, "//"))
				if len(fields) == 0 || fields[0] != hotpathDirective {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				if key, ok := declByLine[line+1]; ok {
					roots = append(roots, key)
					continue
				}
				pass.Reportf(c.Pos(),
					"//jrsnd:hotpath directive is not attached to a function declaration with a body; place it on the line directly above the func")
			}
		}
	}
	return roots
}

// scanHotFunction flags every allocating construct in one closure
// member. chain is the call path (root first) that pulled the member
// into the hot closure.
func scanHotFunction(pass *SuitePass, node *FuncNode, chain []string) {
	info := node.Pkg.Info
	where := hotWhere(chain)

	// Track the innermost function signature for return-boxing checks.
	var sigStack []*types.Signature
	if sig, ok := node.Obj.Type().(*types.Signature); ok {
		sigStack = append(sigStack, sig)
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(v.Pos(), "closure in hot path%s: func literals capture variables and escape to the heap", where)
			// Still scan the body for the other constructs, with the
			// literal's own signature for return checks.
			if sig, ok := info.TypeOf(v).(*types.Signature); ok {
				sigStack = append(sigStack, sig)
				ast.Inspect(v.Body, walk)
				sigStack = sigStack[:len(sigStack)-1]
			}
			return false
		case *ast.CallExpr:
			scanHotCall(pass, info, v, where)
		case *ast.AssignStmt:
			scanHotAssign(pass, info, v, where)
		case *ast.ValueSpec:
			scanHotValueSpec(pass, info, v, where)
		case *ast.ReturnStmt:
			if len(sigStack) > 0 {
				scanHotReturn(pass, info, v, sigStack[len(sigStack)-1], where)
			}
		}
		return true
	}
	ast.Inspect(node.Decl.Body, walk)
}

// hotWhere renders the call chain suffix for messages: "" for the root
// itself, " (hot path dsss.DespreadInto -> chips.CorrelateAt)" deeper in.
func hotWhere(chain []string) string {
	if len(chain) <= 1 {
		return " (hot path " + ShortFuncName(chain[0]) + ")"
	}
	var parts []string
	for _, c := range chain {
		parts = append(parts, ShortFuncName(c))
	}
	return " (hot path " + strings.Join(parts, " -> ") + ")"
}

// scanHotCall flags make/append, conversions, denylisted allocators, and
// boxing at call arguments.
func scanHotCall(pass *SuitePass, info *types.Info, call *ast.CallExpr, where string) {
	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make in hot path%s: allocates every call", where)
			case "append":
				pass.Reportf(call.Pos(), "append in hot path%s: growth beyond capacity allocates and the bound is not statically provable", where)
			}
			return
		}
	}

	// Conversions: T(x) where T is a type.
	if tv, ok := info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		from := info.TypeOf(call.Args[0])
		to := tv.Type
		if from != nil && isStringByteConv(from, to) {
			pass.Reportf(call.Pos(), "string/[]byte conversion in hot path%s: copies the contents on every call", where)
		}
		return
	}

	// Denylisted stdlib allocators.
	if callee, _ := CalleeOf(info, call); callee != nil && callee.Pkg() != nil {
		if reason := allocatingStdlib(callee); reason != "" {
			pass.Reportf(call.Pos(), "%s in hot path%s: %s", callee.Pkg().Name()+"."+callee.Name(), where, reason)
			return
		}
	}

	// Boxing at call arguments.
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case i < sig.Params().Len()-1 || (!sig.Variadic() && i < sig.Params().Len()):
			param = sig.Params().At(i).Type()
		case sig.Variadic() && call.Ellipsis == 0:
			// A bare argument landing in the variadic slot: boxing is
			// against the slice element type, and building the slice
			// itself allocates.
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := last.Underlying().(*types.Slice); ok {
				param = sl.Elem()
			}
		default:
			if sig.Params().Len() > 0 {
				param = sig.Params().At(sig.Params().Len() - 1).Type()
			}
		}
		if param == nil {
			continue
		}
		if boxes(info, arg, param) {
			pass.Reportf(arg.Pos(), "interface boxing in hot path%s: concrete argument converted to %s allocates", where, param.String())
		}
	}
}

// scanHotAssign flags map writes and interface-boxing assignments.
func scanHotAssign(pass *SuitePass, info *types.Info, as *ast.AssignStmt, where string) {
	for i, lhs := range as.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if t := info.TypeOf(idx.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(lhs.Pos(), "map write in hot path%s: map assignment can allocate (bucket growth)", where)
					continue
				}
			}
		}
		if i >= len(as.Rhs) {
			continue // multi-value rhs: conversion happens at the call, checked there
		}
		lt := info.TypeOf(lhs)
		if lt != nil && types.IsInterface(lt) && boxes(info, as.Rhs[i], lt) {
			pass.Reportf(as.Rhs[i].Pos(), "interface boxing in hot path%s: concrete value assigned to %s allocates", where, lt.String())
		}
	}
}

// scanHotValueSpec flags boxing in `var x I = concrete` declarations.
func scanHotValueSpec(pass *SuitePass, info *types.Info, vs *ast.ValueSpec, where string) {
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		lt := info.TypeOf(name)
		if lt != nil && types.IsInterface(lt) && boxes(info, vs.Values[i], lt) {
			pass.Reportf(vs.Values[i].Pos(), "interface boxing in hot path%s: concrete value assigned to %s allocates", where, lt.String())
		}
	}
}

// scanHotReturn flags boxing at return statements against the enclosing
// function's result types.
func scanHotReturn(pass *SuitePass, info *types.Info, ret *ast.ReturnStmt, sig *types.Signature, where string) {
	if len(ret.Results) != sig.Results().Len() {
		return // bare return or multi-value forward
	}
	for i, r := range ret.Results {
		rt := sig.Results().At(i).Type()
		if types.IsInterface(rt) && boxes(info, r, rt) {
			pass.Reportf(r.Pos(), "interface boxing in hot path%s: concrete value returned as %s allocates", where, rt.String())
		}
	}
}

// boxes reports whether assigning expr to target converts a concrete
// value to an interface. Interface-to-interface assignments and nil do
// not allocate; predeclared error sentinels do not box at the use site.
func boxes(info *types.Info, expr ast.Expr, target types.Type) bool {
	if target == nil || !types.IsInterface(target) {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	return !types.IsInterface(tv.Type)
}

// isStringByteConv recognizes string <-> []byte (and []rune) copies.
func isStringByteConv(from, to types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(from) && isByteSlice(to)) || (isByteSlice(from) && isStr(to))
}

// allocatingStdlib returns a reason string for stdlib calls that always
// (or almost always) allocate, "" otherwise.
func allocatingStdlib(fn *types.Func) string {
	pkg := fn.Pkg().Path()
	name := fn.Name()
	switch pkg {
	case "fmt":
		return "fmt formats through interfaces and allocates"
	case "errors":
		if name == "New" {
			return "allocates a new error value"
		}
	case "strings":
		switch name {
		case "Join", "Repeat", "Replace", "ReplaceAll", "Split", "Fields", "ToUpper", "ToLower", "Clone":
			return "builds a new string on every call"
		}
	case "bytes":
		switch name {
		case "Join", "Repeat", "Clone", "Split", "Fields":
			return "builds a new slice on every call"
		}
	case "strconv":
		switch name {
		case "FormatInt", "FormatUint", "FormatFloat", "FormatBool", "Itoa", "Quote", "QuoteToASCII":
			return "formats into a new string on every call"
		}
	}
	return ""
}
