package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// lockorder: authd and transport each hold several mutexes (poolMu, the
// registry shard locks, the WAL's syncMu/mu pair, the endpoint mu), and
// a deadlock needs only two call paths that acquire the same pair in
// opposite orders. The analyzer builds a static lock-acquisition graph:
// acquiring B while holding A adds the edge A→B, including acquisitions
// made transitively by callees (through the shared call graph). Any
// cycle — including a self-edge, which is a reentrant double-lock on
// Go's non-reentrant mutexes — is a potential-deadlock finding, with the
// witness edge positions and call chains printed.
//
// Approximations (documented in docs/static-analysis.md):
//   - Lock identity is the declared variable or struct field, so every
//     instance of the same field is one graph node.
//   - Held regions are lexical: a lock is held from its acquire call to
//     the matching Unlock in statement order; a deferred Unlock holds to
//     the end of the function. Early-return unlock paths can therefore
//     under-count held regions (missed edges, never false edges from
//     release placement).
//   - RLock and Lock map to the same node: an RLock self-cycle can still
//     deadlock through a queued writer.

// lockorderPkgs scopes the analyzer to the mutex-heavy layers.
var lockorderPkgs = []string{
	"repro/internal/authd",
	"repro/internal/transport",
}

func isLockorderPackage(pkgPath string) bool {
	for _, root := range lockorderPkgs {
		if pkgPath == root || strings.HasPrefix(pkgPath, root+"/") {
			return true
		}
	}
	return false
}

var lockorderAnalyzer = &Analyzer{
	Name:     "lockorder",
	Doc:      "lock-acquisition order across authd and transport must be acyclic (cycles are potential deadlocks)",
	RunSuite: runLockorder,
}

// lockID names one lock node: a declared mutex variable or field.
type lockID struct {
	// key is stable across packages: pkgpath.name@file:line of the
	// declaration.
	key string
	// label is the short human form used in messages.
	label string
}

// lockAcq records one (possibly transitive) acquisition a function makes.
type lockAcq struct {
	id *lockID
	// chain lists the callee FullNames walked to reach the acquisition;
	// empty for a direct acquire.
	chain []string
}

// lockEdge is one held→acquired observation.
type lockEdge struct {
	from, to *lockID
	// pos is where the inner acquisition (or the call leading to it)
	// happens in the witnessing function.
	pos token.Pos
	// fn is the witnessing function's FullName.
	fn string
	// chain is the callee path for transitive acquisitions.
	chain []string
}

type lockorderState struct {
	pass     *SuitePass
	fset     *token.FileSet
	memo     map[string][]lockAcq
	visiting map[string]bool
	edges    map[[2]string]*lockEdge
	nodes    map[string]*lockID
}

func runLockorder(pass *SuitePass) {
	st := &lockorderState{
		pass:     pass,
		fset:     pass.fset,
		memo:     map[string][]lockAcq{},
		visiting: map[string]bool{},
		edges:    map[[2]string]*lockEdge{},
		nodes:    map[string]*lockID{},
	}
	// Deterministic traversal: scoped functions sorted by key.
	var keys []string
	for key, node := range pass.Graph.Funcs {
		if isLockorderPackage(node.Pkg.Path) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		st.scanFunction(pass.Graph.Funcs[key])
	}
	st.reportCycles()
}

// lockEvent linearizes one lock-relevant statement in a function body.
type lockEvent struct {
	pos     token.Pos
	kind    int // 0 acquire, 1 release, 2 call
	id      *lockID
	callee  string
	calleeO *types.Func
}

// scanFunction walks one function's body in statement order, tracking
// the lexically held set and adding graph edges for every acquisition
// (direct or via callee) made while something is held.
func (st *lockorderState) scanFunction(node *FuncNode) {
	events := st.lockEvents(node)
	var held []*lockID
	for _, ev := range events {
		switch ev.kind {
		case 0: // acquire
			for _, h := range held {
				st.addEdge(&lockEdge{from: h, to: ev.id, pos: ev.pos, fn: node.Key})
			}
			held = append(held, ev.id)
		case 1: // release
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].key == ev.id.key {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		case 2: // call
			if len(held) == 0 {
				continue
			}
			for _, acq := range st.summary(ev.callee) {
				for _, h := range held {
					st.addEdge(&lockEdge{
						from:  h,
						to:    acq.id,
						pos:   ev.pos,
						fn:    node.Key,
						chain: append([]string{ev.callee}, acq.chain...),
					})
				}
			}
		}
	}
}

// lockEvents extracts the ordered acquire/release/call events of a body.
// Unlock calls inside defer statements are dropped: the lock is held to
// the end of the function.
func (st *lockorderState) lockEvents(node *FuncNode) []lockEvent {
	info := node.Pkg.Info
	deferredUnlocks := map[*ast.CallExpr]bool{}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if _, release := st.classifyLockCall(info, d.Call); release == 1 {
				deferredUnlocks[d.Call] = true
			}
		}
		return true
	})
	var events []lockEvent
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, kind := st.classifyLockCall(info, call); id != nil {
			if kind == 1 && deferredUnlocks[call] {
				return true
			}
			st.nodes[id.key] = id
			events = append(events, lockEvent{pos: call.Pos(), kind: kind, id: id})
			return true
		}
		if callee, iface := CalleeOf(info, call); callee != nil && !iface {
			if st.pass.Graph.Node(callee) != nil {
				events = append(events, lockEvent{pos: call.Pos(), kind: 2, callee: callee.FullName(), calleeO: callee})
			}
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// classifyLockCall recognizes sync mutex operations: kind 0 for
// Lock/RLock/TryLock acquisitions, 1 for Unlock/RUnlock releases, and
// resolves the lock variable the call targets. Unresolvable receivers
// (map entries, call results) yield nil.
func (st *lockorderState) classifyLockCall(info *types.Info, call *ast.CallExpr) (*lockID, int) {
	callee, _ := CalleeOf(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return nil, 0
	}
	recv := recvNamed(callee)
	if recv != "Mutex" && recv != "RWMutex" {
		return nil, 0
	}
	var kind int
	switch callee.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		kind = 0
	case "Unlock", "RUnlock":
		kind = 1
	default:
		return nil, 0
	}
	obj := receiverObject(info, call)
	v, ok := obj.(*types.Var)
	if !ok {
		return nil, 0
	}
	return st.lockIDForVar(v), kind
}

// lockIDForVar keys a lock by its declaration site, which is stable
// between a source load of the declaring package and the same field seen
// through export data (file and line survive both).
func (st *lockorderState) lockIDForVar(v *types.Var) *lockID {
	pos := st.fset.Position(v.Pos())
	pkg := ""
	if v.Pkg() != nil {
		pkg = v.Pkg().Path()
	}
	base := filepath.Base(pos.Filename)
	return &lockID{
		key:   fmt.Sprintf("%s.%s@%s:%d", pkg, v.Name(), base, pos.Line),
		label: fmt.Sprintf("%s (%s:%d)", v.Name(), base, pos.Line),
	}
}

// summary returns every lock a function acquires anywhere in its static
// call closure, memoized, with the callee chain that reaches each one.
func (st *lockorderState) summary(fnKey string) []lockAcq {
	if acqs, ok := st.memo[fnKey]; ok {
		return acqs
	}
	if st.visiting[fnKey] {
		return nil
	}
	st.visiting[fnKey] = true
	defer delete(st.visiting, fnKey)
	node := st.pass.Graph.Funcs[fnKey]
	if node == nil {
		st.memo[fnKey] = nil
		return nil
	}
	seen := map[string]bool{}
	var acqs []lockAcq
	info := node.Pkg.Info
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, kind := st.classifyLockCall(info, call); id != nil && kind == 0 && !seen[id.key] {
			seen[id.key] = true
			st.nodes[id.key] = id
			acqs = append(acqs, lockAcq{id: id})
		}
		return true
	})
	for _, c := range node.Calls {
		if c.Interface {
			continue
		}
		for _, sub := range st.summary(c.Callee) {
			if seen[sub.id.key] {
				continue
			}
			seen[sub.id.key] = true
			acqs = append(acqs, lockAcq{id: sub.id, chain: append([]string{c.Callee}, sub.chain...)})
		}
	}
	st.memo[fnKey] = acqs
	return acqs
}

// addEdge records the first witness for a held→acquired pair.
func (st *lockorderState) addEdge(e *lockEdge) {
	key := [2]string{e.from.key, e.to.key}
	if prev, ok := st.edges[key]; ok {
		// Keep the earliest witness position for determinism.
		if e.pos < prev.pos {
			st.edges[key] = e
		}
		return
	}
	st.edges[key] = e
}

// reportCycles finds strongly connected components of the acquisition
// graph and reports each cyclic one once, anchored at its earliest
// witness, with every in-cycle edge's position and call chain printed.
func (st *lockorderState) reportCycles() {
	adj := map[string][]string{}
	for key := range st.edges {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	for k := range adj {
		sort.Strings(adj[k])
	}
	sccs := stronglyConnected(adj)
	for _, scc := range sccs {
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		var cycleEdges []*lockEdge
		for key, e := range st.edges {
			if inSCC[key[0]] && inSCC[key[1]] && (len(scc) > 1 || key[0] == key[1]) {
				cycleEdges = append(cycleEdges, e)
			}
		}
		if len(cycleEdges) == 0 {
			continue
		}
		sort.Slice(cycleEdges, func(i, j int) bool { return cycleEdges[i].pos < cycleEdges[j].pos })
		var labels []string
		for _, n := range scc {
			labels = append(labels, st.nodes[n].label)
		}
		var witnesses []string
		for _, e := range cycleEdges {
			p := st.fset.Position(e.pos)
			w := fmt.Sprintf("%s -> %s in %s at %s:%d", e.from.label, e.to.label,
				ShortFuncName(e.fn), filepath.Base(p.Filename), p.Line)
			if len(e.chain) > 0 {
				var parts []string
				for _, c := range e.chain {
					parts = append(parts, ShortFuncName(c))
				}
				w += " (via " + strings.Join(parts, " -> ") + ")"
			}
			witnesses = append(witnesses, w)
		}
		kind := "lock-order cycle"
		if len(scc) == 1 {
			kind = "reentrant double-lock"
		}
		st.pass.Reportf(cycleEdges[0].pos,
			"potential deadlock: %s among {%s}; witness paths: %s",
			kind, strings.Join(labels, ", "), strings.Join(witnesses, "; "))
	}
}

// stronglyConnected returns Tarjan SCCs of size >1, plus singletons with
// a self-edge, sorted for deterministic reporting.
func stronglyConnected(adj map[string][]string) [][]string {
	var nodes []string
	nodeSet := map[string]bool{}
	add := func(n string) {
		if !nodeSet[n] {
			nodeSet[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range adj {
		add(from)
		for _, to := range tos {
			add(to)
		}
	}
	sort.Strings(nodes)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			selfEdge := false
			for _, t := range adj[v] {
				if t == v {
					selfEdge = true
				}
			}
			if len(scc) > 1 || selfEdge {
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}
