package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// Output: the human renderer prints editor-clickable file:line:col lines
// with the suppression recipe, the JSON renderer emits the whole Result
// for tooling (the Makefile's summary step consumes it), and Summary is
// the one-liner both modes end with.

// Human writes findings (and, when verbose, suppressions) as
// file:line:col diagnostics relative to root.
func Human(w io.Writer, res Result, root string, verbose bool) {
	for _, d := range res.Findings {
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", relPath(root, d.File), d.Line, d.Col, d.Check, d.Message)
		if d.Check != directiveCheck {
			fmt.Fprintf(w, "\tfix it, or suppress with a reason: //jrsnd:allow %s <why this site is exempt>\n", d.Check)
		}
	}
	if verbose {
		for _, d := range res.Suppressed {
			fmt.Fprintf(w, "%s:%d:%d: [%s, suppressed: %s] %s\n", relPath(root, d.File), d.Line, d.Col, d.Check, d.Reason, d.Message)
		}
	}
}

// JSON writes the full result as one JSON object.
func JSON(w io.Writer, res Result, root string) error {
	out := res
	out.Findings = relDiags(root, res.Findings)
	out.Suppressed = relDiags(root, res.Suppressed)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Summary renders the one-line gate verdict.
func Summary(res Result) string {
	verdict := "clean"
	if len(res.Findings) > 0 {
		verdict = "FAIL"
	}
	return fmt.Sprintf("jrsnd-lint: %s — %d packages, %d findings, %d suppressed by //jrsnd:allow",
		verdict, res.Packages, len(res.Findings), len(res.Suppressed))
}

func relDiags(root string, ds []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, len(ds))
	for i, d := range ds {
		d.File = relPath(root, d.File)
		out[i] = d
	}
	return out
}

func relPath(root, file string) string {
	if root == "" {
		return file
	}
	if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return rel
	}
	return file
}
