package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallclock: the chaos matrix's double-run determinism check (PR 2/3,
// docs/robustness.md) is only meaningful if nothing inside the simulated
// world reads the machine clock. Every package that executes under the
// simulator's virtual time — plus authd, whose tests inject cfg.now —
// must not call the wall-clock entry points of package time. Legitimate
// wall-clock sites (service latency telemetry, real HTTP retry sleeps)
// carry //jrsnd:allow wallclock directives explaining why the read never
// feeds deterministic state.

// deterministicPkgs are the import-path roots where wall-clock reads are
// banned. Sub-packages inherit the ban.
var deterministicPkgs = []string{
	"repro/internal/core",
	"repro/internal/sim",
	"repro/internal/dsss",
	"repro/internal/radio",
	"repro/internal/faults",
	"repro/internal/wire",
	"repro/internal/adversary",
	"repro/internal/codepool",
	"repro/internal/authd",
	// The transport is the real (socket) path, so wall-clock use is
	// legitimate there — but each site must justify itself with an
	// allow directive, keeping the sim/real clock boundary auditable.
	"repro/internal/transport",
}

// wallclockFuncs are the package-level time functions that read or arm
// the machine clock.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"Sleep":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// IsDeterministicPackage reports whether wallclock polices pkgPath.
func IsDeterministicPackage(pkgPath string) bool {
	for _, root := range deterministicPkgs {
		if pkgPath == root || strings.HasPrefix(pkgPath, root+"/") {
			return true
		}
	}
	return false
}

var wallclockAnalyzer = &Analyzer{
	Name:      "wallclock",
	Doc:       "forbid machine-clock reads (time.Now, time.Since, timers) in deterministic packages",
	AppliesTo: IsDeterministicPackage,
	Run: func(pass *Pass) {
		forEachPkgFuncUse(pass, "time", wallclockFuncs, func(id *ast.Ident) {
			pass.Reportf(id.Pos(),
				"time.%s reads the machine clock in a deterministic package; inject a clock (sim virtual time or a now func) instead", id.Name)
		})
	},
}

// forEachPkgFuncUse calls fn for every identifier that resolves to a
// package-level function of pkgPath whose name is in names. Methods
// (receiver present) never match, so rng.Intn survives a ban on
// rand.Intn.
func forEachPkgFuncUse(pass *Pass, pkgPath string, names map[string]bool, fn func(*ast.Ident)) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.Pkg.Info.Uses[id].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
				return true
			}
			if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			if names[obj.Name()] {
				fn(id)
			}
			return true
		})
	}
}
