package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden and seeded-violation coverage for the interprocedural suite.
// Each fixture package must produce exactly its want-marked findings —
// a broken analyzer that reports nothing fails these tests rather than
// passing the repo-wide self-lint vacuously.

func TestGoldenGoroutinelifecycle(t *testing.T) {
	runGolden(t, "goroutinelifecycle", "goroutinelifecycle", "repro/internal/transport/gltest", 1)
}

func TestGoldenLockorder(t *testing.T) {
	runGolden(t, "lockorder", "lockorder", "repro/internal/authd/lotest", 1)
}

func TestGoldenHotpathalloc(t *testing.T) {
	runGolden(t, "hotpathalloc", "hotpathalloc", "repro/internal/dsss/hptest", 1)
}

// TestSuiteScopeExcludesOtherPackages pins the package scoping: the same
// seeded violations outside the service/scoped import paths produce no
// concurrency findings (hotpathalloc is directive-scoped, not
// path-scoped, so it is exercised above instead).
func TestSuiteScopeExcludesOtherPackages(t *testing.T) {
	l := testLoader(t)
	for _, tc := range []struct {
		dir, asPath, check string
	}{
		{"goroutinelifecycle", "repro/internal/experiment/gltest", "goroutinelifecycle"},
		{"lockorder", "repro/internal/sim/lotest", "lockorder"},
	} {
		pkg, err := l.LoadDir(filepath.Join("testdata", tc.dir), tc.asPath)
		if err != nil {
			t.Fatal(err)
		}
		res := Run([]*Package{pkg}, []*Analyzer{analyzerByName(t, tc.check)})
		for _, d := range res.Findings {
			if d.Check == tc.check {
				t.Errorf("%s fired outside its package scope (as %s): %+v", tc.check, tc.asPath, d)
			}
		}
	}
}

// TestStaleDirectivesForSuiteChecks pins stale-directive detection for
// the three new checks: an allow that suppresses nothing is itself a
// finding when its check runs.
func TestStaleDirectivesForSuiteChecks(t *testing.T) {
	dir := t.TempDir()
	src := `package stale

import "sync"

var mu sync.Mutex

//jrsnd:allow goroutinelifecycle nothing here spawns goroutines
func a() {}

//jrsnd:allow lockorder nothing here locks anything
func b() { mu.Lock(); mu.Unlock() }

//jrsnd:allow hotpathalloc nothing here is hot
func c() {}
`
	if err := os.WriteFile(filepath.Join(dir, "stale.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l := testLoader(t)
	pkg, err := l.LoadDir(dir, "repro/internal/transport/staletest")
	if err != nil {
		t.Fatal(err)
	}
	res := Run([]*Package{pkg}, []*Analyzer{
		analyzerByName(t, "goroutinelifecycle"),
		analyzerByName(t, "lockorder"),
		analyzerByName(t, "hotpathalloc"),
	})
	for _, check := range []string{"goroutinelifecycle", "lockorder", "hotpathalloc"} {
		found := false
		for _, d := range res.Findings {
			if d.Check == directiveCheck && strings.Contains(d.Message, "//jrsnd:allow "+check) &&
				strings.Contains(d.Message, "suppresses nothing") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no stale-directive finding for unused //jrsnd:allow %s: %+v", check, res.Findings)
		}
	}
}
