package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// goroutinelifecycle: the service layers (authd replication, the
// transport peer manager, the daemons and harnesses) are goroutine-heavy,
// and a goroutine nobody joins or cancels is a leak that -race cannot
// see: it holds its captures forever and keeps running after Shutdown
// returned. Every `go` statement in a service package must be provably
// one of:
//
//   - joined: the spawned body calls (*sync.WaitGroup).Done and the
//     spawning function calls Add on the same group;
//   - cancellable: the spawned body receives from a channel (a done/stop
//     channel, a select with a receive case, ranging over a channel) or
//     has a context.Context plumbed into it and consults it;
//   - completion-signalled: the spawned body close()s a channel, so some
//     waiter observes termination;
//   - a stdlib serve loop: the body runs (*net/http.Server).Serve (or
//     ListenAndServe), whose documented cancel path is Shutdown/Close.
//
// The search is interprocedural: `go e.sendLoop(p)` is resolved through
// the call graph and sendLoop's body is searched, transitively through
// static callees up to a bounded depth. Anything else is a
// fire-and-forget finding.

// servicePkgs are the goroutine- and mutex-heavy layers the concurrency
// analyzers (goroutinelifecycle, lockorder) police.
var servicePkgs = []string{
	"repro/internal/authd",
	"repro/internal/transport",
	"repro/cmd/jrsnd-authority",
	"repro/cmd/jrsnd-node",
}

// IsServicePackage reports whether the concurrency analyzers police
// pkgPath. Sub-packages inherit the scope.
func IsServicePackage(pkgPath string) bool {
	for _, root := range servicePkgs {
		if pkgPath == root || strings.HasPrefix(pkgPath, root+"/") {
			return true
		}
	}
	return false
}

var goroutinelifecycleAnalyzer = &Analyzer{
	Name:     "goroutinelifecycle",
	Doc:      "every go statement in service packages must be joined (WaitGroup), cancellable (channel/context), or completion-signalled",
	RunSuite: runGoroutinelifecycle,
}

// lifecycleSignals is what a spawned body (and its static callees) can
// exhibit to prove the goroutine terminates observably.
type lifecycleSignals struct {
	wgDone     bool         // calls (*sync.WaitGroup).Done
	wgDoneObj  types.Object // the WaitGroup variable Done was called on, when resolvable
	chanRecv   bool         // receives from a channel (unary <-, range, select case)
	ctxUse     bool         // references a context.Context value
	chanClose  bool         // close()s a channel
	serveLoop  bool         // runs (*net/http.Server).Serve / ListenAndServe
	searchedFn map[string]bool
}

// lifecycleDepth bounds the transitive body search from a go statement.
const lifecycleDepth = 3

func runGoroutinelifecycle(pass *SuitePass) {
	for _, pkg := range pass.Pkgs {
		if !IsServicePackage(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pass, pkg, f, g)
				return true
			})
		}
	}
}

func checkGoStmt(pass *SuitePass, pkg *Package, file *ast.File, g *ast.GoStmt) {
	sig := &lifecycleSignals{searchedFn: map[string]bool{}}

	// Arguments evaluated at spawn time can plumb a context in
	// (go worker(ctx, …)); so can the spawned function's own body.
	for _, arg := range g.Call.Args {
		scanLifecycleExpr(pkg.Info, arg, sig)
	}

	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		scanLifecycleBody(pass.Graph, pkg.Info, fun.Body, sig, lifecycleDepth)
	default:
		callee, _ := CalleeOf(pkg.Info, g.Call)
		if node := pass.Graph.Node(callee); node != nil {
			sig.searchedFn[node.Key] = true
			scanLifecycleBody(pass.Graph, node.Pkg.Info, node.Decl.Body, sig, lifecycleDepth)
		}
	}

	switch {
	case sig.wgDone:
		if !spawnerAdds(pkg.Info, file, g, sig.wgDoneObj) {
			pass.Reportf(g.Pos(),
				"goroutine calls WaitGroup.Done but the spawning function never calls Add on the group; pair Add before the go statement with Done in the body")
		}
	case sig.chanRecv, sig.ctxUse, sig.chanClose, sig.serveLoop:
		// Cancellable, signalled, or a stdlib serve loop: accounted for.
	default:
		pass.Reportf(g.Pos(),
			"fire-and-forget goroutine: the spawned body is neither joined (WaitGroup.Add/Done), cancellable (done channel, select receive, or context), nor completion-signalled (close); give it a join or cancel path")
	}
}

// scanLifecycleBody searches one function body (including nested
// FuncLits) for lifecycle signals, following static calls to loaded
// functions up to depth.
func scanLifecycleBody(graph *CallGraph, info *types.Info, body *ast.BlockStmt, sig *lifecycleSignals, depth int) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.UnaryExpr:
			if v.Op.String() == "<-" {
				sig.chanRecv = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(v.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					sig.chanRecv = true
				}
			}
		case *ast.Ident:
			if isContextValue(info, v) {
				sig.ctxUse = true
			}
		case *ast.CallExpr:
			scanLifecycleCall(graph, info, v, sig, depth)
		}
		return true
	})
}

// scanLifecycleCall classifies one call inside a spawned body.
func scanLifecycleCall(graph *CallGraph, info *types.Info, call *ast.CallExpr, sig *lifecycleSignals, depth int) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "close" {
				sig.chanClose = true
			}
			return
		}
	}
	callee, _ := CalleeOf(info, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	recv := recvNamed(callee)
	switch {
	case callee.Pkg().Path() == "sync" && recv == "WaitGroup" && callee.Name() == "Done":
		sig.wgDone = true
		if sig.wgDoneObj == nil {
			sig.wgDoneObj = receiverObject(info, call)
		}
	case callee.Pkg().Path() == "net/http" && recv == "Server" &&
		(callee.Name() == "Serve" || callee.Name() == "ListenAndServe" || callee.Name() == "ListenAndServeTLS"):
		sig.serveLoop = true
	default:
		if depth <= 0 {
			return
		}
		node := graph.Node(callee)
		if node == nil || sig.searchedFn[node.Key] {
			return
		}
		sig.searchedFn[node.Key] = true
		scanLifecycleBody(graph, node.Pkg.Info, node.Decl.Body, sig, depth-1)
	}
}

// scanLifecycleExpr looks for context values in spawn-time expressions.
func scanLifecycleExpr(info *types.Info, e ast.Expr, sig *lifecycleSignals) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && isContextValue(info, id) {
			sig.ctxUse = true
		}
		return true
	})
}

// isContextValue reports whether id is a use of a context.Context-typed
// value.
func isContextValue(info *types.Info, id *ast.Ident) bool {
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	return tn.Pkg() != nil && tn.Pkg().Path() == "context" && tn.Name() == "Context"
}

// recvNamed returns the named type of a method's receiver ("" for
// package functions).
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// receiverObject resolves the variable a method call's receiver
// expression names (w in w.Done()), nil when it is not a simple
// identifier or selector chain.
func receiverObject(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok {
			return s.Obj()
		}
		return info.Uses[x.Sel]
	}
	return nil
}

// spawnerAdds reports whether the function enclosing the go statement
// calls Add on a WaitGroup — the same group as Done when both resolve.
// The outermost enclosing declaration is searched, so an Add in the
// function that spawned an intermediate closure still counts.
func spawnerAdds(info *types.Info, file *ast.File, g *ast.GoStmt, doneObj types.Object) bool {
	body := enclosingBody(file, g)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, _ := CalleeOf(info, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" ||
			recvNamed(callee) != "WaitGroup" || callee.Name() != "Add" {
			return true
		}
		if doneObj != nil {
			if obj := receiverObject(info, call); obj != nil && obj != doneObj {
				return true // Add on a different group
			}
		}
		found = true
		return false
	})
	return found
}

// enclosingBody returns the body of the outermost FuncDecl containing
// the go statement, found by position containment in the file's AST.
func enclosingBody(file *ast.File, g *ast.GoStmt) *ast.BlockStmt {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Body.Pos() <= g.Pos() && g.End() <= fd.Body.End() {
			return fd.Body
		}
	}
	return nil
}
