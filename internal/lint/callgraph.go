package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The call-graph substrate shared by the interprocedural analyzers
// (goroutinelifecycle, lockorder, hotpathalloc). It is built once per
// Run over the loaded package set and records, for every function or
// method declared in a loaded package, the static calls its body makes.
//
// Soundness limits (documented in docs/static-analysis.md):
//   - Calls through function values (callbacks, fields of func type) are
//     invisible: the callee cannot be resolved statically.
//   - Calls through an interface resolve to the *declared interface
//     method*, never to its implementations. The site is recorded with
//     Interface=true so analyzers can treat it as an analysis boundary.
//   - Code inside a FuncLit is attributed to the enclosing declared
//     function (flattened), an over-approximation for deferred or
//     spawned closures.
//
// Functions are keyed by types.Func.FullName(), which is stable between
// a source-loaded package and the same package seen through export data,
// so cross-package edges resolve to the source-loaded body when one
// exists.

// CallSite is one statically resolved call.
type CallSite struct {
	// Callee is the FullName key of the resolved callee.
	Callee string
	// Obj is the callee as seen from the caller's package (possibly an
	// export-data object).
	Obj *types.Func
	// Pos is the call position.
	Pos token.Pos
	// Interface marks dynamic dispatch through a declared interface
	// method: the graph does not expand it to implementations.
	Interface bool
}

// FuncNode is one declared function or method with a body.
type FuncNode struct {
	// Key is the FullName of the declared object.
	Key string
	// Pkg is the loaded package declaring the function.
	Pkg *Package
	// Decl is the source declaration (Body non-nil).
	Decl *ast.FuncDecl
	// Obj is the declared *types.Func.
	Obj *types.Func
	// Calls are the statically resolved calls in body order.
	Calls []CallSite
}

// CallGraph indexes every declared function in a loaded package set.
type CallGraph struct {
	// Funcs maps FullName keys to declared nodes.
	Funcs map[string]*FuncNode
	// modulePkgs is the set of loaded import paths, distinguishing
	// module-internal callees (whose bodies the graph holds) from
	// external ones.
	modulePkgs map[string]bool
}

// BuildCallGraph walks every loaded package once and records the static
// call edges.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Funcs: map[string]*FuncNode{}, modulePkgs: map[string]bool{}}
	for _, pkg := range pkgs {
		g.modulePkgs[pkg.Path] = true
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Key: obj.FullName(), Pkg: pkg, Decl: fd, Obj: obj}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee, iface := CalleeOf(pkg.Info, call)
					if callee == nil {
						return true
					}
					node.Calls = append(node.Calls, CallSite{
						Callee:    callee.FullName(),
						Obj:       callee,
						Pos:       call.Pos(),
						Interface: iface,
					})
					return true
				})
				g.Funcs[node.Key] = node
			}
		}
	}
	return g
}

// CalleeOf resolves the static callee of a call expression, reporting
// whether the dispatch goes through an interface. Builtins, conversions,
// and function-value calls resolve to nil.
func CalleeOf(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn, false
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn, types.IsInterface(sel.Recv())
			}
			return nil, false
		}
		// Package-qualified call (pkg.Func).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn, false
		}
	}
	return nil, false
}

// Node returns the declared node for a callee object, nil when the
// callee's body is outside the loaded set (stdlib, interface method).
func (g *CallGraph) Node(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return g.Funcs[fn.FullName()]
}

// Closure computes the static call closure of the given root keys,
// restricted to functions with loaded bodies. The result maps each
// member to the call chain (FullName keys, root first) that reached it;
// roots map to a one-element chain. Interface call sites are analysis
// boundaries and are not expanded. Traversal order is deterministic:
// roots are visited sorted, calls in body order.
func (g *CallGraph) Closure(roots []string) map[string][]string {
	sorted := append([]string(nil), roots...)
	sort.Strings(sorted)
	reached := map[string][]string{}
	var visit func(key string, chain []string)
	visit = func(key string, chain []string) {
		node := g.Funcs[key]
		if node == nil {
			return
		}
		if _, ok := reached[key]; ok {
			return
		}
		chain = append(append([]string(nil), chain...), key)
		reached[key] = chain
		for _, c := range node.Calls {
			if c.Interface {
				continue
			}
			visit(c.Callee, chain)
		}
	}
	for _, r := range sorted {
		visit(r, nil)
	}
	return reached
}

// ShortFuncName renders a FullName key compactly for messages:
// "repro/internal/dsss.DespreadInto" → "dsss.DespreadInto",
// "(*repro/internal/transport.Endpoint).sendLoop" →
// "(*transport.Endpoint).sendLoop".
func ShortFuncName(key string) string {
	shorten := func(qual string) string {
		if i := strings.LastIndex(qual, "/"); i >= 0 {
			return qual[i+1:]
		}
		return qual
	}
	if strings.HasPrefix(key, "(") {
		if i := strings.LastIndex(key, ")."); i >= 0 {
			recv, meth := key[1:i], key[i+2:]
			star := ""
			if strings.HasPrefix(recv, "*") {
				star, recv = "*", recv[1:]
			}
			return "(" + star + shorten(recv) + ")." + meth
		}
	}
	return shorten(key)
}
