package lint

import (
	"go/ast"
)

// globalrand: the chaos matrix re-runs every cell and demands
// bit-identical outcomes, and CompromiseRandom/Join/loadgen draws are all
// keyed to explicit seeds. Randomness drawn from math/rand's package
// globals (seeded per process, shared across goroutines) silently breaks
// that: two runs of the same seed diverge. Every draw must flow through
// an injected *rand.Rand. The constructors (New, NewSource, NewZipf) are
// exactly how such a Rand is built, so they stay legal.

// globalRandFuncs are the math/rand package-level functions that consult
// the shared global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// globalRandV2Funcs is the math/rand/v2 equivalent (v2 has no Seed/Read;
// N and the *N variants are the new names).
var globalRandV2Funcs = map[string]bool{
	"Int": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "N": true,
}

var globalrandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid math/rand package-level draws; randomness must flow through an injected *rand.Rand",
	Run: func(pass *Pass) {
		report := func(id *ast.Ident) {
			pass.Reportf(id.Pos(),
				"rand.%s draws from the process-global source and breaks seeded reproducibility; thread an injected *rand.Rand", id.Name)
		}
		forEachPkgFuncUse(pass, "math/rand", globalRandFuncs, report)
		forEachPkgFuncUse(pass, "math/rand/v2", globalRandV2Funcs, report)
	},
}
