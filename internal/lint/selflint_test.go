package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSelfLintRepoClean runs the full suite over the real repository
// tree — the same invocation `make lint` gates tier1 with — and demands
// zero active findings. This is the enforcement loop: any new wall-clock
// read, global rand draw, variable-time MAC comparison, unbounded decode
// allocation, or lock-copy anywhere in the module either gets fixed or
// gets a reasoned //jrsnd:allow directive before tests pass again.
func TestSelfLintRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	l := testLoader(t)
	pkgs, err := l.LoadPatterns("./...")
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; expected the whole module", len(pkgs))
	}
	res := Run(pkgs, Analyzers())
	for _, d := range res.Findings {
		t.Errorf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
	}

	// The known, deliberate wall-clock and config-alloc sites must be
	// present as reasoned suppressions — if a refactor deletes the code
	// they excuse, the unused-directive check above flips to a finding.
	if len(res.Suppressed) == 0 {
		t.Fatal("expected reasoned suppressions (sim telemetry, authd service clocks); got none")
	}
	for _, d := range res.Suppressed {
		if len(strings.Fields(d.Reason)) < 2 {
			t.Errorf("suppression at %s:%d lacks a written reason: %+v", d.File, d.Line, d)
		}
	}
}

// TestSelfLintCatchesSeededViolation feeds the suite a synthetic package
// under a deterministic import path containing the exact bug this PR
// fixed (a wall-clock RNG seed) and asserts it dies with a file:line
// diagnostic — the acceptance check that the gate actually gates.
func TestSelfLintCatchesSeededViolation(t *testing.T) {
	l := testLoader(t)
	dir := t.TempDir()
	src := `package seeded

import (
	"math/rand"
	"time"
)

func jitterSource() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}
`
	if err := os.WriteFile(filepath.Join(dir, "seeded.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir, "repro/internal/authd/seeded")
	if err != nil {
		t.Fatal(err)
	}
	res := Run([]*Package{pkg}, Analyzers())
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %+v, want exactly the wall-clock seed", res.Findings)
	}
	d := res.Findings[0]
	if d.Check != "wallclock" || d.Line != 9 || !strings.Contains(d.Message, "time.Now") {
		t.Errorf("finding = %+v, want wallclock time.Now at line 9", d)
	}
}
