package lint

import (
	"go/ast"
	"go/types"
)

// mutexaliasing: the sharded registries (authd.registry, the rate
// limiter, codepool.Revoker) are only as safe as their encapsulation.
// Two ways that encapsulation silently dies: a lock-holding struct is
// passed or received by value (the copy's mutex guards nothing — go
// vet's copylocks catches copies, this catches the declarations), and an
// exported method hands out a reference to the guarded interior (a map
// or slice field returned as-is escapes the mutex: the caller mutates or
// iterates it unlocked). Interior state must be copied out under the
// lock before it is returned.

var mutexaliasingAnalyzer = &Analyzer{
	Name: "mutexaliasing",
	Doc:  "forbid passing lock-holding structs by value and exported methods returning guarded maps/slices by reference",
	Run:  runMutexaliasing,
}

func runMutexaliasing(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockByValue(pass, fd)
			checkInteriorReturn(pass, fd)
		}
	}
}

// checkLockByValue flags receiver and parameter declarations whose
// non-pointer type transitively contains a sync lock.
func checkLockByValue(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	fields := []*ast.Field{}
	if fd.Recv != nil {
		fields = append(fields, fd.Recv.List...)
	}
	if fd.Type.Params != nil {
		fields = append(fields, fd.Type.Params.List...)
	}
	for _, field := range fields {
		t := info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if holdsLock(t, map[types.Type]bool{}) {
			pass.Reportf(field.Type.Pos(),
				"%s passes a lock-holding struct by value; the copy's mutex guards nothing — use a pointer", fd.Name.Name)
		}
	}
}

// holdsLock reports whether t (passed by value) would copy a sync
// primitive.
func holdsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "Once", "WaitGroup", "Cond", "Map", "Pool":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if holdsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return holdsLock(u.Elem(), seen)
	}
	return false
}

// checkInteriorReturn flags exported methods on lock-holding structs
// that return a map- or slice-typed selector chain rooted at the
// receiver.
func checkInteriorReturn(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	if fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() || len(fd.Recv.List) == 0 {
		return
	}
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return
	}
	recvObj := info.Defs[names[0]]
	if recvObj == nil {
		return
	}
	base := recvObj.Type()
	if ptr, ok := base.Underlying().(*types.Pointer); ok {
		base = ptr.Elem()
	}
	if !holdsLock(base, map[types.Type]bool{}) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if !rootedAtReceiver(info, res, recvObj) {
				continue
			}
			switch info.TypeOf(res).Underlying().(type) {
			case *types.Map, *types.Slice:
				pass.Reportf(res.Pos(),
					"exported %s returns guarded interior state %s by reference; copy it out under the lock", fd.Name.Name, types.ExprString(res))
			}
		}
		return true
	})
}

// rootedAtReceiver reports whether e is a selector/index chain with at
// least one step whose root identifier is the method receiver.
func rootedAtReceiver(info *types.Info, e ast.Expr, recv types.Object) bool {
	steps := 0
	for {
		switch v := e.(type) {
		case *ast.SelectorExpr:
			e, steps = v.X, steps+1
		case *ast.IndexExpr:
			e, steps = v.X, steps+1
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.Ident:
			return steps > 0 && info.Uses[v] == recv
		default:
			return false
		}
	}
}
