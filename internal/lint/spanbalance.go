package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// spanbalance: the causal-span traces of docs/observability.md are only
// evidence if every Start is eventually answered. An open span in a
// report is supposed to mean "the jammer destroyed this handshake" — a
// span that merely leaked out of scope forges that signal. The invariant:
// a span ID held in a local variable must either reach an End call on
// every return path of its function, or be handed off to a closer that
// outlives the function — stored into protocol state, passed along as an
// argument (e.g. as another span's parent), or captured by a scheduled
// closure. A local span that can leave its function neither ended nor
// handed off is a leak.
//
// Detection is type-driven: a "start" is any call returning
// trace.SpanID whose callee name ends in Start (Tracer.Start and
// wrappers like Network.spanStart); an "end" use is the variable
// appearing as an argument of a callee whose name ends in End. Any other
// move of the value — field store, argument, return, closure capture —
// transfers ownership and exempts the variable.

// instrumentedPkgs are the import-path roots that emit causal spans;
// sub-packages inherit the policing.
var instrumentedPkgs = []string{
	"repro/internal/core",
	"repro/internal/sim",
	"repro/internal/dsss",
	"repro/internal/authd",
}

// IsInstrumentedPackage reports whether spanbalance polices pkgPath.
func IsInstrumentedPackage(pkgPath string) bool {
	for _, root := range instrumentedPkgs {
		if pkgPath == root || strings.HasPrefix(pkgPath, root+"/") {
			return true
		}
	}
	return false
}

var spanbalanceAnalyzer = &Analyzer{
	Name:      "spanbalance",
	Doc:       "every locally-held trace span must reach End on all return paths or be handed off",
	AppliesTo: IsInstrumentedPackage,
	Run:       runSpanbalance,
}

func runSpanbalance(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkSpanBalance(pass, fd)
			}
		}
	}
}

// spanVar is one local variable observed to receive a span ID.
type spanVar struct {
	name     string
	startPos token.Pos
	// startStmts are the assignments that (re)open the span.
	startStmts map[*ast.AssignStmt]bool
	// endCalls are the End-suffixed calls that pass the variable.
	endCalls map[*ast.CallExpr]bool
	// escaped marks a handoff: the value left the function's custody, so
	// some longer-lived closer owns the End.
	escaped bool
}

func checkSpanBalance(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	vars := map[types.Object]*spanVar{}

	// Pass 1: find top-level locals assigned from a start call. Spans
	// opened inside a func literal belong to that literal's own dynamic
	// extent (usually a scheduled continuation), not to fd's return paths.
	inspectOutsideFuncLits(fd.Body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isSpanStartCall(info, call) {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		sv := vars[obj]
		if sv == nil {
			sv = &spanVar{
				name:       id.Name,
				startPos:   call.Pos(),
				startStmts: map[*ast.AssignStmt]bool{},
				endCalls:   map[*ast.CallExpr]bool{},
			}
			vars[obj] = sv
		}
		sv.startStmts[as] = true
	})
	if len(vars) == 0 {
		return
	}

	// Pass 2: classify every use of each tracked variable.
	classifySpanUses(fd.Body, info, vars)

	for _, sv := range vars {
		if sv.escaped {
			continue
		}
		if len(sv.endCalls) == 0 {
			pass.Reportf(sv.startPos,
				"span %q is started but never ended and never handed off; End it on every return path or store/pass it to its closer", sv.name)
			continue
		}
		checkSpanPaths(pass, fd, sv)
	}
}

// inspectOutsideFuncLits walks root, skipping func-literal interiors.
func inspectOutsideFuncLits(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// classifySpanUses records, for each tracked variable, its End uses and
// any escape (handoff) use.
func classifySpanUses(body *ast.BlockStmt, info *types.Info, vars map[types.Object]*spanVar) {
	var stack []ast.Node
	funcLitDepth := 0
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			if _, ok := stack[len(stack)-1].(*ast.FuncLit); ok {
				funcLitDepth--
			}
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if _, ok := n.(*ast.FuncLit); ok {
			funcLitDepth++
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		sv := vars[info.Uses[id]]
		if sv == nil {
			return true
		}
		if funcLitDepth > 0 {
			sv.escaped = true // captured by a closure: the closure closes it
			return true
		}
		classifyOneUse(sv, info, id, parentOf(stack))
		return true
	})
}

// parentOf returns the nearest non-paren ancestor of the node on top of
// the stack.
func parentOf(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

func classifyOneUse(sv *spanVar, info *types.Info, id *ast.Ident, parent ast.Node) {
	switch p := parent.(type) {
	case *ast.CallExpr:
		if strings.HasSuffix(calleeName(info, p), "End") {
			sv.endCalls[p] = true
			return
		}
		// Passed to anything else — including as another span's parent in
		// a Start call — the ID is handed off.
		sv.escaped = true
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == ast.Expr(id) {
				return // reassignment target: not a read
			}
		}
		// On the RHS: stored somewhere. Only an all-blank assignment
		// (`_ = sp`) keeps custody here.
		for _, l := range p.Lhs {
			if lid, ok := l.(*ast.Ident); !ok || lid.Name != "_" {
				sv.escaped = true
				return
			}
		}
	case *ast.BinaryExpr, *ast.CaseClause, *ast.SwitchStmt:
		// Comparisons read the ID without moving it.
	default:
		// Return, field store via composite literal, channel send, &x,
		// index expression, anything unanticipated: treat as a handoff
		// rather than guess.
		sv.escaped = true
	}
}

// spanPath is the abstract state of one control-flow path.
type spanPath struct {
	open       bool // a start has run with no matching end yet
	deferred   bool // a defer holding an End covers every later exit
	terminated bool // the path already returned (or broke out)
}

// checkSpanPaths reports return paths (and the implicit fall-off-the-end
// return) that can leave the span open. The walk is a structural
// approximation of the CFG: branches merge pessimistically (open if open
// on any surviving branch), loops may run zero times, and break/continue
// end the current path.
func checkSpanPaths(pass *Pass, fd *ast.FuncDecl, sv *spanVar) {
	startLine := pass.Pkg.Fset.Position(sv.startPos).Line

	endsHere := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false // an End inside a closure runs later, not now
			}
			if call, ok := m.(*ast.CallExpr); ok && sv.endCalls[call] {
				found = true
			}
			return !found
		})
		return found
	}
	simple := func(s ast.Stmt, st spanPath) spanPath {
		if as, ok := s.(*ast.AssignStmt); ok && sv.startStmts[as] {
			st.open = true
			return st
		}
		if _, ok := s.(*ast.DeferStmt); ok {
			if endsHere(s) {
				st.deferred = true
			}
			return st
		}
		if endsHere(s) {
			st.open = false
		}
		return st
	}
	merge := func(a, b spanPath) spanPath {
		switch {
		case a.terminated && b.terminated:
			return spanPath{terminated: true}
		case a.terminated:
			return b
		case b.terminated:
			return a
		}
		return spanPath{open: a.open || b.open, deferred: a.deferred && b.deferred}
	}

	var walk func(stmts []ast.Stmt, st spanPath) spanPath
	walkCases := func(init ast.Stmt, bodies [][]ast.Stmt, hasDefault bool, st spanPath) spanPath {
		if init != nil {
			st = simple(init, st)
		}
		merged := spanPath{terminated: true}
		for _, body := range bodies {
			merged = merge(merged, walk(body, st))
		}
		if !hasDefault {
			merged = merge(merged, st)
		}
		return merged
	}
	walk = func(stmts []ast.Stmt, st spanPath) spanPath {
		for _, s := range stmts {
			if st.terminated {
				break
			}
			switch t := s.(type) {
			case *ast.ReturnStmt:
				if st.open && !st.deferred {
					pass.Reportf(t.Pos(),
						"return leaks span %q (started at line %d) without a matching End", sv.name, startLine)
				}
				st.terminated = true
			case *ast.BranchStmt:
				st.terminated = true
			case *ast.BlockStmt:
				st = walk(t.List, st)
			case *ast.LabeledStmt:
				st = walk([]ast.Stmt{t.Stmt}, st)
			case *ast.IfStmt:
				if t.Init != nil {
					st = simple(t.Init, st)
				}
				thenSt := walk(t.Body.List, st)
				elseSt := st
				switch e := t.Else.(type) {
				case *ast.BlockStmt:
					elseSt = walk(e.List, st)
				case *ast.IfStmt:
					elseSt = walk([]ast.Stmt{e}, st)
				}
				st = merge(thenSt, elseSt)
			case *ast.ForStmt:
				inner := st
				if t.Init != nil {
					inner = simple(t.Init, inner)
				}
				body := walk(t.Body.List, inner)
				st.open = inner.open || (body.open && !body.terminated)
			case *ast.RangeStmt:
				body := walk(t.Body.List, st)
				st.open = st.open || (body.open && !body.terminated)
			case *ast.SwitchStmt:
				var bodies [][]ast.Stmt
				hasDefault := false
				for _, c := range t.Body.List {
					cc := c.(*ast.CaseClause)
					bodies = append(bodies, cc.Body)
					hasDefault = hasDefault || cc.List == nil
				}
				st = walkCases(t.Init, bodies, hasDefault, st)
			case *ast.TypeSwitchStmt:
				var bodies [][]ast.Stmt
				hasDefault := false
				for _, c := range t.Body.List {
					cc := c.(*ast.CaseClause)
					bodies = append(bodies, cc.Body)
					hasDefault = hasDefault || cc.List == nil
				}
				st = walkCases(t.Init, bodies, hasDefault, st)
			case *ast.SelectStmt:
				var bodies [][]ast.Stmt
				for _, c := range t.Body.List {
					bodies = append(bodies, c.(*ast.CommClause).Body)
				}
				st = walkCases(nil, bodies, true, st)
			default:
				st = simple(s, st)
			}
		}
		return st
	}

	final := walk(fd.Body.List, spanPath{})
	if final.open && !final.deferred && !final.terminated {
		pass.Reportf(sv.startPos,
			"span %q can still be open when %s falls off the end; End it on every path or hand it off", sv.name, fd.Name.Name)
	}
}

// isSpanStartCall reports whether call opens a span: its single result is
// trace.SpanID and its callee name ends in Start.
func isSpanStartCall(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil || !isSpanIDType(t) {
		return false
	}
	return strings.HasSuffix(calleeName(info, call), "Start")
}

// isSpanIDType matches the trace package's SpanID named type.
func isSpanIDType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "SpanID" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "/trace")
}

// calleeName resolves the called function's name; "" for conversions,
// indirect calls, and anything else without a static *types.Func callee.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	if fn, ok := info.Uses[id].(*types.Func); ok {
		return fn.Name()
	}
	return ""
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
