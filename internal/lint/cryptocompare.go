package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// cryptocompare: §V-B's handshake rejects forgeries by MAC verification,
// and the DoS analysis of §VI assumes an attacker learns nothing from
// how a verifier fails. A short-circuiting comparison (== on a tag
// string, bytes.Equal on a MAC) leaks the length of the matching prefix
// through timing; verification must go through hmac.Equal or
// subtle.ConstantTimeCompare (in this repo: ibc.VerifyMAC). The check is
// a heuristic over declared names — values whose name suggests
// authentication material must not be compared with a variable-time
// primitive. False positives at sites that are genuinely not secret
// (e.g. a client-chosen label that happens to be called "tag") take a
// //jrsnd:allow cryptocompare directive saying so.

// sensitiveNameRe matches identifiers that plausibly hold authentication
// material.
var sensitiveNameRe = regexp.MustCompile(`(?i)mac|tag|digest|auth`)

var cryptocompareAnalyzer = &Analyzer{
	Name: "cryptocompare",
	Doc:  "require constant-time comparison (hmac.Equal / subtle.ConstantTimeCompare) for MAC/tag/digest values",
	Run:  runCryptocompare,
}

func runCryptocompare(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				// Comparing against a constant (a message-kind byte, "")
				// or nil is not a secret comparison.
				if isConstOrNil(info, e.X) || isConstOrNil(info, e.Y) {
					return true
				}
				if !comparableSecretType(info.TypeOf(e.X)) {
					return true
				}
				if name, ok := sensitiveOperand(e.X, e.Y); ok {
					pass.Reportf(e.OpPos,
						"%s compared with %s leaks a timing side channel; use hmac.Equal or subtle.ConstantTimeCompare", name, e.Op)
				}
			case *ast.CallExpr:
				if !isPkgFunc(info, e.Fun, "bytes", "Equal") || len(e.Args) != 2 {
					return true
				}
				if name, ok := sensitiveOperand(e.Args[0], e.Args[1]); ok {
					pass.Reportf(e.Pos(),
						"%s compared with bytes.Equal leaks a timing side channel; use hmac.Equal or subtle.ConstantTimeCompare", name)
				}
			}
			return true
		})
	}
}

// comparableSecretType limits == findings to types where a variable-time
// equality actually exists over secret bytes: strings and byte arrays.
// (Slices don't support ==; numeric equality is single-instruction.)
func comparableSecretType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Array:
		elem, ok := u.Elem().Underlying().(*types.Basic)
		return ok && elem.Kind() == types.Byte
	}
	return false
}

func isConstOrNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && (tv.Value != nil || tv.IsNil())
}

// sensitiveOperand returns the first operand name matching the
// authentication-material pattern.
func sensitiveOperand(exprs ...ast.Expr) (string, bool) {
	for _, e := range exprs {
		if name := operandName(e); name != "" && sensitiveNameRe.MatchString(name) {
			return name, true
		}
	}
	return "", false
}

// operandName digs out the innermost declared name of an expression:
// p.MAC -> "MAC", digests[i] -> "digests", computeTag() -> "computeTag".
func operandName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	case *ast.IndexExpr:
		return operandName(v.X)
	case *ast.CallExpr:
		return operandName(v.Fun)
	case *ast.ParenExpr:
		return operandName(v.X)
	case *ast.StarExpr:
		return operandName(v.X)
	case *ast.UnaryExpr:
		return operandName(v.X)
	}
	return ""
}

// isPkgFunc reports whether e resolves to the package-level function
// pkgPath.name.
func isPkgFunc(info *types.Info, e ast.Expr, pkgPath, name string) bool {
	var id *ast.Ident
	switch v := e.(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return false
	}
	fn, ok := info.Uses[id].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}
