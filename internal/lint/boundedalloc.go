package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// boundedalloc: the internal/wire discipline (PR 3) and the authd request
// codec (PR 4) promise that no byte count read off the wire reaches an
// allocator or reader unchecked — a hostile frame declaring a 4 GiB body
// must die at a Params-derived cap, not in make. The analyzer polices the
// two codec packages: every make([]T, n) with a non-constant size must be
// dominated by a cap comparison on that size (approximated as: some
// variable of the size expression appears in a relational comparison in
// the enclosing function, or the size is derived from len/cap of data
// already held, or it names a cap/limit), and io.ReadAll must read
// through io.LimitReader / http.MaxBytesReader.

// boundedallocPkgs are the decode-path packages under the discipline.
var boundedallocPkgs = []string{
	"repro/internal/wire",
	"repro/internal/authd",
	"repro/internal/transport",
}

// capNameRe matches size expressions that reference an explicit cap.
var capNameRe = regexp.MustCompile(`(?i)max|cap|lim|bound`)

var boundedallocAnalyzer = &Analyzer{
	Name: "boundedalloc",
	Doc:  "in codec packages, allocation and read sizes must be dominated by a cap comparison",
	AppliesTo: func(pkgPath string) bool {
		for _, root := range boundedallocPkgs {
			if pkgPath == root || strings.HasPrefix(pkgPath, root+"/") {
				return true
			}
		}
		return false
	},
	Run: runBoundedalloc,
}

func runBoundedalloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncAllocs(pass, fd.Body)
		}
	}
}

func checkFuncAllocs(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	// Guard set: the source text of every operand of a relational
	// comparison anywhere in the function. A size whose variable appears
	// here has (approximately) been checked against something.
	guarded := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok {
			switch be.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				guarded[types.ExprString(be.X)] = true
				guarded[types.ExprString(be.Y)] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" && len(call.Args) >= 2 {
				if _, isSlice := info.TypeOf(call.Args[0]).Underlying().(*types.Slice); isSlice {
					for _, size := range call.Args[1:] {
						if !sizeBounded(info, size, guarded) {
							pass.Reportf(size.Pos(),
								"allocation size %s is not dominated by a cap comparison; check it against a Params-derived limit first", types.ExprString(size))
						}
					}
				}
			}
			return true
		}
		if isPkgFunc(info, call.Fun, "io", "ReadAll") && len(call.Args) == 1 {
			if !limitedReader(info, call.Args[0]) {
				pass.Reportf(call.Pos(),
					"io.ReadAll without io.LimitReader/http.MaxBytesReader reads an attacker-controlled length; bound it")
			}
		}
		return true
	})
}

// sizeBounded reports whether a make size expression is acceptably
// bounded: constant, derived from len/cap/min/max of data already in
// memory, naming an explicit cap, or mentioning a variable the function
// compares relationally somewhere.
func sizeBounded(info *types.Info, size ast.Expr, guarded map[string]bool) bool {
	if tv, ok := info.Types[size]; ok && tv.Value != nil {
		return true
	}
	if guarded[types.ExprString(size)] {
		return true
	}
	bounded := false
	ast.Inspect(size, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "len", "cap", "min", "max":
						bounded = true
					}
				}
			}
		case *ast.Ident:
			if guarded[v.Name] || capNameRe.MatchString(v.Name) {
				bounded = true
			}
		case *ast.SelectorExpr:
			if guarded[types.ExprString(v)] || capNameRe.MatchString(v.Sel.Name) {
				bounded = true
				return false
			}
		}
		return true
	})
	return bounded
}

// limitedReader reports whether e is directly a bounded-reader
// construction.
func limitedReader(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	return isPkgFunc(info, call.Fun, "io", "LimitReader") ||
		isPkgFunc(info, call.Fun, "net/http", "MaxBytesReader")
}
