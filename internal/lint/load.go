package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The loader builds fully type-checked packages using only the standard
// library: package enumeration and import resolution are delegated to the
// go command (`go list -json` / `go list -deps -export -json`), source is
// parsed with go/parser, and imports are satisfied from the compiler's
// export data via go/importer's gc lookup hook. Nothing here depends on
// golang.org/x/tools, so go.mod stays dependency-free.

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/wire").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset is the shared position set for every file in the load.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, in filename order.
	Files []*ast.File
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	// Info holds the type-checker's expression, definition, and use maps.
	Info *types.Info
}

// Loader loads module packages from source with export-data imports.
type Loader struct {
	// ModuleRoot is the directory holding go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string
	// Fset is shared by every package this loader produces.
	Fset *token.FileSet

	impMu   sync.Mutex        // serializes the gc importer's internal cache
	exports map[string]string // import path -> export data file
	gc      types.Importer
}

// NewLoader locates the enclosing module from dir (walking up to go.mod)
// and prepares an importer backed by compiler export data.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		Fset:       token.NewFileSet(),
		exports:    map[string]string{},
	}
	l.gc = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l, nil
}

// modulePath extracts the module path from the first `module` directive.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// goList runs the go command in the module root and decodes the JSON
// package stream it prints.
func (l *Loader) goList(args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModuleRoot
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(&out)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
}

// lookup feeds the gc importer the export data file for an import path,
// resolving paths missing from the preloaded set with a one-off go list.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		pkgs, err := l.goList("list", "-export", "-json=ImportPath,Export", "--", path)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			l.exports[p.ImportPath] = p.Export
		}
		file = l.exports[path]
	}
	if file == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(file)
}

// Import satisfies types.Importer over the export-data lookup. Package
// type-checks run concurrently (LoadPatterns), so the gc importer's
// internal package cache is serialized here; the FileSet and parser are
// safe for concurrent use on their own.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	l.impMu.Lock()
	defer l.impMu.Unlock()
	return l.gc.Import(path)
}

// LoadPatterns loads every package the go command matches for patterns
// (e.g. "./..."), pre-seeding export data for the whole dependency graph
// in one child process.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	deps, err := l.goList(append([]string{"list", "-deps", "-export", "-json=ImportPath,Export,Standard", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	for _, d := range deps {
		if d.Export != "" {
			l.exports[d.ImportPath] = d.Export
		}
	}
	match, err := l.goList(append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	sort.Slice(match, func(i, j int) bool { return match[i].ImportPath < match[j].ImportPath })
	// Module packages type-check independently of each other — imports
	// come from export data, never from sibling loads — so the loads fan
	// out over a bounded worker pool. Results land in index slots, keeping
	// the returned order deterministic regardless of scheduling.
	pkgs := make([]*Package, len(match))
	errs := make([]error, len(match))
	workers := analysisWorkers(len(match))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				m := match[i]
				var files []string
				for _, f := range m.GoFiles {
					files = append(files, filepath.Join(m.Dir, f))
				}
				pkgs[i], errs[i] = l.load(m.ImportPath, m.Dir, files)
			}
		}()
	}
	for i := range match {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

// LoadDir loads the single package in dir under a caller-chosen import
// path. Test harnesses use it to type-check testdata packages (which the
// go command deliberately ignores) under paths that exercise the
// analyzers' package scoping.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return l.load(asPath, dir, files)
}

// load parses and type-checks one package from explicit file paths.
func (l *Loader) load(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", fn, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-check %s: %v (and %d more)", path, typeErrs[0], len(typeErrs)-1)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}
