package lint

import (
	"strconv"
	"strings"
)

// Suppression directives. A finding is silenced in place by a comment of
// the form
//
//	//jrsnd:allow <check> <reason…>
//
// placed either at the end of the offending line or alone on the line
// immediately above it. The reason is mandatory prose (at least two
// words): the directive is the audit trail for why the invariant does
// not apply at this site. Malformed directives — unknown check name,
// missing reason — and directives that suppress nothing are themselves
// findings under the "directive" meta-check, so a stale allow cannot
// linger after the code it excused is gone.

// directiveCheck is the meta-check name for directive hygiene findings.
const directiveCheck = "directive"

const directivePrefix = "//jrsnd:allow"

type directive struct {
	file   string
	line   int
	col    int
	check  string
	reason string
	used   bool
}

// collectDirectives scans every comment in the package for directives.
func collectDirectives(pkg *Package) []*directive {
	var dirs []*directive
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other //jrsnd:allowXYZ token
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &directive{file: pos.Filename, line: pos.Line, col: pos.Column}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					d.check = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// matchDirective finds a well-formed directive that covers diagnostic d:
// same file, same check, on the finding's line or the line above.
func matchDirective(dirs []*directive, d Diagnostic) *directive {
	for _, dir := range dirs {
		if dir.check != d.Check || dir.file != d.File || !wellFormed(dir) {
			continue
		}
		if dir.line == d.Line || dir.line == d.Line-1 {
			return dir
		}
	}
	return nil
}

// wellFormed requires a reason of at least two words — a single token is
// a label, not an explanation.
func wellFormed(d *directive) bool {
	return d.check != "" && len(strings.Fields(d.reason)) >= 2
}

// validateDirectives turns directive-hygiene violations into findings.
// Unused-directive validation is limited to the checks actually running,
// so a partial run (-checks) does not misreport directives owned by the
// checks it skipped.
func validateDirectives(dirs []*directive, running map[string]bool) []Diagnostic {
	known := KnownChecks()
	var out []Diagnostic
	for _, d := range dirs {
		diag := Diagnostic{Check: directiveCheck, File: d.file, Line: d.line, Col: d.col}
		switch {
		case d.check == "":
			diag.Message = "directive needs a check name: //jrsnd:allow <check> <reason>"
		case !known[d.check]:
			diag.Message = "directive names unknown check " + strconv.Quote(d.check)
		case len(strings.Fields(d.reason)) < 2:
			diag.Message = "directive for " + d.check + " needs a written reason (at least two words)"
		case !d.used && running[d.check]:
			diag.Message = "unused //jrsnd:allow " + d.check + " directive suppresses nothing; delete it"
		default:
			continue
		}
		out = append(out, diag)
	}
	return out
}
