// Package codepool implements the random spread-code pre-distribution
// scheme of §V-A: before deployment the authority generates a secret pool
// of s = w·m spread codes and, over m rounds, randomly partitions the nodes
// into w subsets of cardinality l, assigning one fresh code per subset.
// After m rounds every node holds exactly m codes and every code is shared
// by exactly l nodes (up to the virtual-node padding when l ∤ n).
//
// The package also models node-compromise attacks (which codes an
// adversary learns by compromising q nodes) and the local revocation
// counters of §V-D.
package codepool

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"repro/internal/chips"
)

// CodeID identifies a spread code in the authority's pool ℂ = {C_1 … C_s}.
type CodeID int32

// Pool is the authority's view of the pre-distribution: which node holds
// which codes. Only the authority has the full map; a deployed node sees
// just its own code set.
type Pool struct {
	n       int // real nodes
	m       int // codes per node
	l       int // target sharers per code
	w       int // subsets per round
	virtual int // padding nodes (l' in the paper)
	assign  [][]CodeID
	holders [][]int32  // real holders per code, sorted
	vacant  [][]CodeID // code sets of unclaimed virtual nodes (§V-A join)
	seed    []byte     // secret used to materialize chip sequences

	expansions int // batch expansions run by Join (§V-A further rounds)

	uniformPool int // nonzero for NewUniform pools: the pool size s
}

// Config configures pre-distribution.
type Config struct {
	// N is the number of nodes, M the number of codes per node, L the
	// number of nodes sharing each code.
	N, M, L int
	// Rand drives the random partitions; required for reproducibility.
	Rand *rand.Rand
	// Seed is the secret that materializes CodeIDs into chip sequences.
	// Optional; defaults to a seed drawn from Rand.
	Seed []byte
}

// New runs the m-round distribution process.
func New(cfg Config) (*Pool, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("codepool: need at least 2 nodes, got %d", cfg.N)
	}
	if cfg.M < 1 {
		return nil, fmt.Errorf("codepool: need at least 1 code per node, got %d", cfg.M)
	}
	if cfg.L < 2 || cfg.L > cfg.N {
		return nil, fmt.Errorf("codepool: sharers per code l=%d must be in [2, n=%d]", cfg.L, cfg.N)
	}
	if cfg.Rand == nil {
		return nil, fmt.Errorf("codepool: Config.Rand must be set")
	}
	w := (cfg.N + cfg.L - 1) / cfg.L
	padded := w * cfg.L
	p := &Pool{
		n:       cfg.N,
		m:       cfg.M,
		l:       cfg.L,
		w:       w,
		virtual: padded - cfg.N,
		assign:  make([][]CodeID, cfg.N),
		holders: make([][]int32, w*cfg.M),
		vacant:  make([][]CodeID, 0, padded-cfg.N),
		seed:    cfg.Seed,
	}
	if p.seed == nil {
		p.seed = make([]byte, 32)
		for i := 0; i < len(p.seed); i += 8 {
			binary.BigEndian.PutUint64(p.seed[i:], cfg.Rand.Uint64())
		}
	}
	for i := range p.assign {
		p.assign[i] = make([]CodeID, 0, cfg.M)
	}
	ids := make([]int, padded) // real node indices plus virtual ids >= n
	for i := range ids {
		ids[i] = i
	}
	virtualAssign := make([][]CodeID, padded-cfg.N)
	for round := 0; round < cfg.M; round++ {
		cfg.Rand.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for subset := 0; subset < w; subset++ {
			code := CodeID(round*w + subset)
			for k := 0; k < cfg.L; k++ {
				node := ids[subset*cfg.L+k]
				if node < cfg.N {
					p.assign[node] = append(p.assign[node], code)
					p.holders[code] = append(p.holders[code], int32(node))
				} else {
					// Virtual-node code sets are kept for §V-A late join.
					virtualAssign[node-cfg.N] = append(virtualAssign[node-cfg.N], code)
				}
			}
		}
	}
	p.vacant = virtualAssign
	for _, h := range p.holders {
		sort.Slice(h, func(i, j int) bool { return h[i] < h[j] })
	}
	for i := range p.assign {
		sort.Slice(p.assign[i], func(a, b int) bool { return p.assign[i][a] < p.assign[i][b] })
	}
	return p, nil
}

// N returns the number of nodes, M the codes per node, L the sharing
// parameter, and S the pool size.
func (p *Pool) N() int { return p.n }

// M returns the number of codes assigned to each node.
func (p *Pool) M() int { return p.m }

// L returns the maximum number of nodes sharing a code.
func (p *Pool) L() int { return p.l }

// S returns the pool size s (w·m for the structured scheme).
func (p *Pool) S() int {
	if p.uniformPool > 0 {
		return p.uniformPool
	}
	return p.w * p.m
}

// Codes returns node i's code set ℂ_i (a copy).
func (p *Pool) Codes(node int) []CodeID {
	out := make([]CodeID, len(p.assign[node]))
	copy(out, p.assign[node])
	return out
}

// Holders returns the sorted node indices sharing code c (a copy).
func (p *Pool) Holders(c CodeID) []int {
	out := make([]int, len(p.holders[c]))
	for i, v := range p.holders[c] {
		out[i] = int(v)
	}
	return out
}

// Shared returns the codes shared by nodes a and b, ℂ_a ∩ ℂ_b. Both code
// lists are sorted, so this is a linear merge.
func (p *Pool) Shared(a, b int) []CodeID {
	ca, cb := p.assign[a], p.assign[b]
	var out []CodeID
	i, j := 0, 0
	for i < len(ca) && j < len(cb) {
		switch {
		case ca[i] < cb[j]:
			i++
		case ca[i] > cb[j]:
			j++
		default:
			out = append(out, ca[i])
			i++
			j++
		}
	}
	return out
}

// Sequence materializes code c as its N-chip pseudorandom sequence. Only
// the authority (and the nodes the code was issued to) can do this, since
// it requires the pool seed.
func (p *Pool) Sequence(c CodeID, chipLen int) chips.Sequence {
	var buf [12]byte
	copy(buf[:], "code")
	binary.BigEndian.PutUint32(buf[4:8], uint32(c))
	seed := append(append([]byte(nil), p.seed...), buf[:8]...)
	return chips.Derive(seed, chipLen)
}

// Compromise returns the set of codes an adversary learns by compromising
// the given nodes (the union of their code sets).
func (p *Pool) Compromise(nodes []int) *CodeSet {
	cs := NewCodeSet(p.S())
	for _, node := range nodes {
		for _, c := range p.assign[node] {
			cs.Add(c)
		}
	}
	return cs
}

// CompromiseRandom compromises q distinct random nodes and returns both the
// node indices and the learned code set.
func (p *Pool) CompromiseRandom(rng *rand.Rand, q int) ([]int, *CodeSet, error) {
	if q < 0 || q > p.n {
		return nil, nil, fmt.Errorf("codepool: cannot compromise %d of %d nodes", q, p.n)
	}
	perm := rng.Perm(p.n)[:q]
	return perm, p.Compromise(perm), nil
}

// NewUniform builds a pool with the *unstructured* random pre-distribution
// of the sensor-network literature (the paper's ref [11]): each node
// independently draws M distinct codes uniformly from a pool of PoolSize
// codes. Unlike the paper's partition scheme there is no cap on how many
// nodes share a code — the number of holders is Binomial(n, m/s) with an
// unbounded tail, which is exactly the "fine control of the damage from
// compromised spread codes" the paper's scheme adds. Exposed so the
// ext-predistribution experiment can quantify the difference.
func NewUniform(cfg Config, poolSize int) (*Pool, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("codepool: need at least 2 nodes, got %d", cfg.N)
	}
	if cfg.M < 1 || cfg.M > poolSize {
		return nil, fmt.Errorf("codepool: m=%d must be in [1, poolSize=%d]", cfg.M, poolSize)
	}
	if cfg.Rand == nil {
		return nil, fmt.Errorf("codepool: Config.Rand must be set")
	}
	p := &Pool{
		n: cfg.N,
		m: cfg.M,
		// l is a target in the structured scheme; for the uniform scheme
		// record the binomial mean n·m/s as the comparable figure.
		l:       int(float64(cfg.N) * float64(cfg.M) / float64(poolSize)),
		w:       0,
		assign:  make([][]CodeID, cfg.N),
		holders: make([][]int32, poolSize),
		seed:    cfg.Seed,
	}
	if p.seed == nil {
		p.seed = make([]byte, 32)
		for i := 0; i < len(p.seed); i += 8 {
			binary.BigEndian.PutUint64(p.seed[i:], cfg.Rand.Uint64())
		}
	}
	p.uniformPool = poolSize
	for node := 0; node < cfg.N; node++ {
		perm := cfg.Rand.Perm(poolSize)[:cfg.M]
		codes := make([]CodeID, cfg.M)
		for i, c := range perm {
			codes[i] = CodeID(c)
			p.holders[c] = append(p.holders[c], int32(node))
		}
		sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
		p.assign[node] = codes
	}
	for _, h := range p.holders {
		sort.Slice(h, func(i, j int) bool { return h[i] < h[j] })
	}
	return p, nil
}

// MaxHolders returns the largest number of nodes sharing any single code —
// exactly l for the structured scheme, a binomial tail for the uniform
// one.
func (p *Pool) MaxHolders() int {
	best := 0
	for _, h := range p.holders {
		if len(h) > best {
			best = len(h)
		}
	}
	return best
}

// HolderQuantile returns the q-quantile of the per-code holder counts.
func (p *Pool) HolderQuantile(q float64) int {
	counts := make([]int, len(p.holders))
	for i, h := range p.holders {
		counts[i] = len(h)
	}
	sort.Ints(counts)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(q * float64(len(counts)-1))
	return counts[idx]
}

// CodeSet is a dense bitset over CodeIDs.
type CodeSet struct {
	bits  []uint64
	count int
}

// NewCodeSet creates an empty set able to hold ids in [0, size).
func NewCodeSet(size int) *CodeSet {
	return &CodeSet{bits: make([]uint64, (size+63)/64)}
}

// Add inserts c; duplicates are ignored.
func (s *CodeSet) Add(c CodeID) {
	w, b := int(c)/64, uint(c)%64
	if s.bits[w]&(1<<b) == 0 {
		s.bits[w] |= 1 << b
		s.count++
	}
}

// Remove deletes c if present.
func (s *CodeSet) Remove(c CodeID) {
	w, b := int(c)/64, uint(c)%64
	if s.bits[w]&(1<<b) != 0 {
		s.bits[w] &^= 1 << b
		s.count--
	}
}

// Contains reports membership.
func (s *CodeSet) Contains(c CodeID) bool {
	if s == nil {
		return false
	}
	w, b := int(c)/64, uint(c)%64
	if w >= len(s.bits) {
		return false
	}
	return s.bits[w]&(1<<b) != 0
}

// Len returns the cardinality.
func (s *CodeSet) Len() int {
	if s == nil {
		return 0
	}
	return s.count
}

// Rank returns c's position in the sorted enumeration of the set (the
// number of members strictly below c), or -1 when c is not a member. A
// sweep-style adversary uses it to rotate a fixed-size target window
// across its compromised codes without materializing the list.
func (s *CodeSet) Rank(c CodeID) int {
	if !s.Contains(c) {
		return -1
	}
	w, b := int(c)/64, uint(c)%64
	rank := 0
	for i := 0; i < w; i++ {
		rank += bits.OnesCount64(s.bits[i])
	}
	rank += bits.OnesCount64(s.bits[w] & (1<<b - 1))
	return rank
}
