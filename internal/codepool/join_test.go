package codepool

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJoinConsumesVacantSlots(t *testing.T) {
	// n = 37, l = 8 → 3 virtual nodes pre-provisioned.
	p := mustPool(t, 37, 6, 8, 31)
	if p.VacantSlots() != 3 {
		t.Fatalf("VacantSlots = %d, want 3", p.VacantSlots())
	}
	for join := 0; join < 3; join++ {
		node, err := p.Join(nil)
		if err != nil {
			t.Fatal(err)
		}
		if node != 37+join {
			t.Fatalf("join %d: node index %d, want %d", join, node, 37+join)
		}
		if got := len(p.Codes(node)); got != 6 {
			t.Fatalf("joined node has %d codes, want 6", got)
		}
	}
	if p.VacantSlots() != 0 {
		t.Fatalf("VacantSlots = %d after consuming all, want 0", p.VacantSlots())
	}
	// All codes now shared by exactly l nodes (the padding is filled).
	for c := 0; c < p.S(); c++ {
		if got := len(p.Holders(CodeID(c))); got != 8 {
			t.Fatalf("code %d has %d holders after joins, want exactly 8", c, got)
		}
	}
}

func TestJoinBatchExpansion(t *testing.T) {
	// l | n: no vacant slots; the first join triggers a batch of w = 5.
	p := mustPool(t, 40, 6, 8, 32)
	if p.VacantSlots() != 0 {
		t.Fatalf("VacantSlots = %d, want 0", p.VacantSlots())
	}
	if _, err := p.Join(nil); err == nil {
		t.Fatal("expansion without rng must fail")
	}
	rng := rand.New(rand.NewSource(1))
	node, err := p.Join(rng)
	if err != nil {
		t.Fatal(err)
	}
	if node != 40 {
		t.Fatalf("node = %d, want 40", node)
	}
	if p.VacantSlots() != 4 {
		t.Fatalf("VacantSlots = %d after batch of 5 minus 1, want 4", p.VacantSlots())
	}
	// Joined node has m distinct codes; holders grow to at most l+1.
	codes := p.Codes(node)
	if len(codes) != 6 {
		t.Fatalf("joined node has %d codes, want 6", len(codes))
	}
	seen := map[CodeID]bool{}
	for _, c := range codes {
		if seen[c] {
			t.Fatalf("duplicate code %d", c)
		}
		seen[c] = true
	}
	for c := 0; c < p.S(); c++ {
		if got := len(p.Holders(CodeID(c))); got > 9 {
			t.Fatalf("code %d has %d holders, want <= l+1 = 9", c, got)
		}
	}
	// Consume the whole batch: every code then has exactly l+1 holders.
	for i := 0; i < 4; i++ {
		if _, err := p.Join(rng); err != nil {
			t.Fatal(err)
		}
	}
	for c := 0; c < p.S(); c++ {
		if got := len(p.Holders(CodeID(c))); got != 9 {
			t.Fatalf("code %d has %d holders after full batch, want 9", c, got)
		}
	}
}

func TestExpansionsCountsBatchRuns(t *testing.T) {
	// l | n: no vacant slots, so every w-th join runs a further
	// distribution round and bumps the expansion (epoch) counter.
	p := mustPool(t, 40, 6, 8, 34) // w = 5
	if p.Expansions() != 0 {
		t.Fatalf("Expansions = %d before any join, want 0", p.Expansions())
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 11; i++ { // 11 joins over batches of 5 → 3 expansions
		if _, err := p.Join(rng); err != nil {
			t.Fatal(err)
		}
	}
	if p.Expansions() != 3 {
		t.Fatalf("Expansions = %d after 11 joins with w=5, want 3", p.Expansions())
	}
}

func TestJoinedNodesShareCodesWithOldNodes(t *testing.T) {
	p := mustPool(t, 40, 10, 8, 33)
	rng := rand.New(rand.NewSource(2))
	node, err := p.Join(rng)
	if err != nil {
		t.Fatal(err)
	}
	// The joined node must share a code with at least one existing node
	// (each of its codes has l existing holders).
	found := false
	for old := 0; old < 40 && !found; old++ {
		if len(p.Shared(old, node)) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("joined node shares no codes with anyone")
	}
	// Holders/Codes stay mutually consistent.
	for _, c := range p.Codes(node) {
		ok := false
		for _, h := range p.Holders(c) {
			if h == node {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("holders of %d missing the joined node", c)
		}
	}
}

// Property: any sequence of joins preserves the core invariants — m codes
// per node, no duplicates, holders sorted and consistent.
func TestPropertyJoinInvariants(t *testing.T) {
	f := func(seed int64, joinsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p, err := New(Config{N: 20, M: 5, L: 6, Rand: rng})
		if err != nil {
			return false
		}
		joins := int(joinsRaw) % 15
		for j := 0; j < joins; j++ {
			node, err := p.Join(rng)
			if err != nil {
				return false
			}
			codes := p.Codes(node)
			if len(codes) != 5 {
				return false
			}
			seen := map[CodeID]bool{}
			for _, c := range codes {
				if seen[c] {
					return false
				}
				seen[c] = true
			}
		}
		for c := 0; c < p.S(); c++ {
			holders := p.Holders(CodeID(c))
			for i := 1; i < len(holders); i++ {
				if holders[i-1] >= holders[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
