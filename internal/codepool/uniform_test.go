package codepool

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewUniformValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewUniform(Config{N: 1, M: 5, Rand: rng}, 100); err == nil {
		t.Fatal("accepted n=1")
	}
	if _, err := NewUniform(Config{N: 10, M: 0, Rand: rng}, 100); err == nil {
		t.Fatal("accepted m=0")
	}
	if _, err := NewUniform(Config{N: 10, M: 101, Rand: rng}, 100); err == nil {
		t.Fatal("accepted m > pool size")
	}
	if _, err := NewUniform(Config{N: 10, M: 5, Rand: nil}, 100); err == nil {
		t.Fatal("accepted nil rng")
	}
}

func TestNewUniformBasicInvariants(t *testing.T) {
	p, err := NewUniform(Config{N: 100, M: 10, Rand: rand.New(rand.NewSource(2))}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if p.S() != 500 {
		t.Fatalf("S = %d, want 500", p.S())
	}
	total := 0
	for node := 0; node < 100; node++ {
		codes := p.Codes(node)
		if len(codes) != 10 {
			t.Fatalf("node %d has %d codes", node, len(codes))
		}
		seen := map[CodeID]bool{}
		for _, c := range codes {
			if seen[c] {
				t.Fatalf("node %d holds duplicate code %d", node, c)
			}
			seen[c] = true
		}
	}
	for c := 0; c < p.S(); c++ {
		total += len(p.Holders(CodeID(c)))
	}
	if total != 100*10 {
		t.Fatalf("holder slots %d, want 1000", total)
	}
}

func TestUniformHolderTailExceedsStructuredCap(t *testing.T) {
	// The paper's claim: the partition scheme caps every code at exactly
	// l holders, while uniform drawing at the same density produces a
	// binomial tail well above the mean. Use the Table I geometry scaled
	// down: n=500, m=40, s=500 → mean holders 40.
	rng := rand.New(rand.NewSource(3))
	structured, err := New(Config{N: 500, M: 40, L: 40, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := NewUniform(Config{N: 500, M: 40, Rand: rng}, structured.S())
	if err != nil {
		t.Fatal(err)
	}
	if structured.MaxHolders() != 40 {
		t.Fatalf("structured max holders %d, want exactly l=40", structured.MaxHolders())
	}
	if uniform.MaxHolders() <= 40 {
		t.Fatalf("uniform max holders %d, expected a tail above the mean 40", uniform.MaxHolders())
	}
	// Binomial(500, 40/500): sd ≈ 6; the max over 500 codes should exceed
	// mean + 2sd comfortably.
	if uniform.MaxHolders() < 50 {
		t.Fatalf("uniform max holders %d suspiciously small", uniform.MaxHolders())
	}
	if q := structured.HolderQuantile(0.99); q != 40 {
		t.Fatalf("structured p99 holders %d, want 40", q)
	}
}

func TestUniformSharingProbabilityComparable(t *testing.T) {
	// At equal density the sharing probability of the two schemes is
	// nearly identical — the paper's scheme costs nothing on discovery.
	rng := rand.New(rand.NewSource(4))
	const n, m, l = 400, 20, 20
	structured, err := New(Config{N: n, M: m, L: l, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := NewUniform(Config{N: n, M: m, Rand: rng}, structured.S())
	if err != nil {
		t.Fatal(err)
	}
	shareRate := func(p *Pool) float64 {
		pairs, shared := 0, 0
		for a := 0; a < 100; a++ {
			for b := a + 1; b < 100; b++ {
				pairs++
				if len(p.Shared(a, b)) > 0 {
					shared++
				}
			}
		}
		return float64(shared) / float64(pairs)
	}
	s, u := shareRate(structured), shareRate(uniform)
	if math.Abs(s-u) > 0.08 {
		t.Fatalf("sharing rates diverge: structured %.3f vs uniform %.3f", s, u)
	}
}

func TestUniformCompromiseAndSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p, err := NewUniform(Config{N: 50, M: 8, Rand: rng}, 200)
	if err != nil {
		t.Fatal(err)
	}
	_, cs, err := p.CompromiseRandom(rand.New(rand.NewSource(6)), 5)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Len() == 0 || cs.Len() > 40 {
		t.Fatalf("compromised %d codes, want in (0, 40]", cs.Len())
	}
	if p.Sequence(3, 256).Len() != 256 {
		t.Fatal("sequence materialization broken for uniform pools")
	}
}
