package codepool

import (
	"fmt"
	"math/rand"
	"sort"
)

// Late join (§V-A): the authority admits a new node by handing it the code
// set of an unclaimed virtual node from the original pre-distribution. When
// those run out, the authority runs the distribution process for a further
// batch of w slots over the existing s codes, after which every code is
// shared by one more node. "We do not expect too many new nodes in the
// target scenario, so the number of nodes sharing any code will be only
// slightly larger than l."

// VacantSlots returns how many pre-provisioned (virtual-node) code sets
// remain before the next join forces a batch expansion.
func (p *Pool) VacantSlots() int { return len(p.vacant) }

// Expansions returns how many batch expansions Join has run — the number
// of times the authority had to execute the §V-A "further rounds of the
// distribution process" because the pre-provisioned slots were exhausted.
// It acts as the authority's distribution-epoch counter: epoch 0 is the
// original pre-deployment distribution.
func (p *Pool) Expansions() int { return p.expansions }

// Join admits one new node and returns its index. rng is needed only when
// a batch expansion runs (no vacant slots left).
func (p *Pool) Join(rng *rand.Rand) (int, error) {
	if len(p.vacant) == 0 {
		if rng == nil {
			return 0, fmt.Errorf("codepool: batch expansion requires an rng")
		}
		p.expandBatch(rng)
	}
	codes := p.vacant[len(p.vacant)-1]
	p.vacant = p.vacant[:len(p.vacant)-1]

	node := p.n
	p.n++
	sorted := append([]CodeID(nil), codes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p.assign = append(p.assign, sorted)
	for _, c := range sorted {
		p.holders[c] = insertSorted(p.holders[c], int32(node))
	}
	return node, nil
}

// expandBatch provisions w more slots over the existing pool: in each of
// the m rounds the w slots are randomly matched one-to-one with that
// round's w codes, so every code gains exactly one future holder.
func (p *Pool) expandBatch(rng *rand.Rand) {
	batch := make([][]CodeID, p.w)
	perm := make([]int, p.w)
	for i := range perm {
		perm[i] = i
	}
	for round := 0; round < p.m; round++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for subset := 0; subset < p.w; subset++ {
			code := CodeID(round*p.w + subset)
			batch[perm[subset]] = append(batch[perm[subset]], code)
		}
	}
	p.vacant = append(p.vacant, batch...)
	p.expansions++
}

func insertSorted(xs []int32, v int32) []int32 {
	i := sort.Search(len(xs), func(i int) bool { return xs[i] >= v })
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}
