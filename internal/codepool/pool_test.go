package codepool

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustPool(t *testing.T, n, m, l int, seed int64) *Pool {
	t.Helper()
	p, err := New(Config{N: n, M: m, L: l, Rand: rand.New(rand.NewSource(seed))})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []Config{
		{N: 1, M: 5, L: 2, Rand: rng},
		{N: 10, M: 0, L: 2, Rand: rng},
		{N: 10, M: 5, L: 1, Rand: rng},
		{N: 10, M: 5, L: 11, Rand: rng},
		{N: 10, M: 5, L: 2, Rand: nil},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestExactAssignmentWhenLDividesN(t *testing.T) {
	const n, m, l = 40, 10, 8
	p := mustPool(t, n, m, l, 2)
	if p.S() != (n/l)*m {
		t.Fatalf("S = %d, want %d", p.S(), (n/l)*m)
	}
	for node := 0; node < n; node++ {
		codes := p.Codes(node)
		if len(codes) != m {
			t.Fatalf("node %d has %d codes, want %d", node, len(codes), m)
		}
		seen := map[CodeID]bool{}
		for _, c := range codes {
			if seen[c] {
				t.Fatalf("node %d holds code %d twice", node, c)
			}
			seen[c] = true
		}
	}
	for c := 0; c < p.S(); c++ {
		if holders := p.Holders(CodeID(c)); len(holders) != l {
			t.Fatalf("code %d shared by %d nodes, want exactly %d", c, len(holders), l)
		}
	}
}

func TestVirtualNodePadding(t *testing.T) {
	// n = 37, l = 8 → w = 5, 3 virtual nodes; every code shared by <= l.
	const n, m, l = 37, 6, 8
	p := mustPool(t, n, m, l, 3)
	if p.S() != 5*m {
		t.Fatalf("S = %d, want %d", p.S(), 5*m)
	}
	total := 0
	for c := 0; c < p.S(); c++ {
		h := len(p.Holders(CodeID(c)))
		if h > l {
			t.Fatalf("code %d shared by %d > l=%d nodes", c, h, l)
		}
		total += h
	}
	if total != n*m {
		t.Fatalf("total holder slots = %d, want n·m = %d", total, n*m)
	}
	for node := 0; node < n; node++ {
		if got := len(p.Codes(node)); got != m {
			t.Fatalf("node %d has %d codes, want %d", node, got, m)
		}
	}
}

func TestHoldersAndCodesConsistent(t *testing.T) {
	p := mustPool(t, 50, 8, 10, 4)
	for c := 0; c < p.S(); c++ {
		for _, node := range p.Holders(CodeID(c)) {
			found := false
			for _, cc := range p.Codes(node) {
				if cc == CodeID(c) {
					found = true
				}
			}
			if !found {
				t.Fatalf("holders says node %d has code %d but Codes disagrees", node, c)
			}
		}
	}
}

func TestSharedMatchesBruteForce(t *testing.T) {
	p := mustPool(t, 60, 12, 10, 5)
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			want := map[CodeID]bool{}
			bcodes := map[CodeID]bool{}
			for _, c := range p.Codes(b) {
				bcodes[c] = true
			}
			for _, c := range p.Codes(a) {
				if bcodes[c] {
					want[c] = true
				}
			}
			got := p.Shared(a, b)
			if len(got) != len(want) {
				t.Fatalf("Shared(%d,%d) = %v, want %d codes", a, b, got, len(want))
			}
			for _, c := range got {
				if !want[c] {
					t.Fatalf("Shared(%d,%d) contains %d not in both sets", a, b, c)
				}
			}
		}
	}
}

func TestSharedCountMatchesEq1(t *testing.T) {
	// Eq. (1): Pr[x] = C(m,x)·((l-1)/(n-1))^x·((n-l)/(n-1))^(m-x).
	// Check the Monte-Carlo mean x̄ against m(l-1)/(n-1).
	const n, m, l = 200, 20, 10
	var sum float64
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		p := mustPool(t, n, m, l, int64(100+trial))
		pairs := 0
		shared := 0
		for a := 0; a < 40; a++ {
			for b := a + 1; b < 40; b++ {
				shared += len(p.Shared(a, b))
				pairs++
			}
		}
		sum += float64(shared) / float64(pairs)
	}
	got := sum / trials
	want := float64(m) * float64(l-1) / float64(n-1)
	if math.Abs(got-want) > 0.12*want {
		t.Fatalf("mean shared codes = %v, want ≈ %v (Eq. 1 mean)", got, want)
	}
}

func TestSharedCountDistributionMatchesEq1ChiSquare(t *testing.T) {
	// Goodness of fit: the empirical distribution of shared-code counts
	// across pairs must match the Binomial(m, (l−1)/(n−1)) of Eq. 1, not
	// just its mean. Pool assignments across rounds are independent, so a
	// chi-square over the low-count buckets applies.
	const n, m, l = 300, 15, 10
	counts := map[int]int{}
	pairs := 0
	for trial := 0; trial < 20; trial++ {
		p := mustPool(t, n, m, l, int64(500+trial))
		for a := 0; a < 30; a++ {
			for b := a + 1; b < 30; b++ {
				counts[len(p.Shared(a, b))]++
				pairs++
			}
		}
	}
	pr := float64(l-1) / float64(n-1)
	// Buckets 0,1,2 and 3+ keep expected counts comfortably above 5.
	expected := make([]float64, 4)
	probs := make([]float64, 4)
	rem := 1.0
	for x := 0; x < 3; x++ {
		probs[x] = binomPMF(m, x, pr)
		rem -= probs[x]
	}
	probs[3] = rem
	chi2 := 0.0
	for x := 0; x < 4; x++ {
		expected[x] = probs[x] * float64(pairs)
		observed := 0
		if x < 3 {
			observed = counts[x]
		} else {
			for k, v := range counts {
				if k >= 3 {
					observed += v
				}
			}
		}
		d := float64(observed) - expected[x]
		chi2 += d * d / expected[x]
	}
	// 3 degrees of freedom; the 0.999 critical value is 16.27. The pairs
	// within a trial are weakly dependent (shared pool), so allow margin.
	if chi2 > 25 {
		t.Fatalf("chi-square %.2f too large; distribution diverges from Eq. 1", chi2)
	}
}

// binomPMF is a small local binomial PMF (the analysis package owns the
// production version; duplicating 6 lines avoids an import cycle risk).
func binomPMF(n, k int, p float64) float64 {
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
}

func TestSequenceDeterministicPerCode(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	seed := []byte("pool-secret")
	p1, err := New(Config{N: 20, M: 4, L: 5, Rand: rng, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New(Config{N: 20, M: 4, L: 5, Rand: rand.New(rand.NewSource(7)), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Sequence(3, 512).Equal(p2.Sequence(3, 512)) {
		t.Fatal("same seed+id produced different sequences")
	}
	if p1.Sequence(3, 512).Equal(p1.Sequence(4, 512)) {
		t.Fatal("different ids produced identical sequences")
	}
	if p1.Sequence(3, 512).Len() != 512 {
		t.Fatal("wrong sequence length")
	}
}

func TestCompromise(t *testing.T) {
	p := mustPool(t, 100, 10, 10, 8)
	nodes := []int{3, 7, 11}
	cs := p.Compromise(nodes)
	want := map[CodeID]bool{}
	for _, node := range nodes {
		for _, c := range p.Codes(node) {
			want[c] = true
		}
	}
	if cs.Len() != len(want) {
		t.Fatalf("compromised %d codes, want %d", cs.Len(), len(want))
	}
	for c := range want {
		if !cs.Contains(c) {
			t.Fatalf("code %d missing from compromised set", c)
		}
	}
}

func TestCompromiseRandomMatchesEq2(t *testing.T) {
	// Eq. (2): α = 1 − C(n−l, q)/C(n, q). Expected compromised codes s·α.
	const n, m, l, q = 400, 10, 20, 20
	alpha := 1.0
	for i := 0; i < q; i++ {
		alpha *= float64(n-l-i) / float64(n-i)
	}
	alpha = 1 - alpha
	var sum float64
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		p := mustPool(t, n, m, l, int64(trial))
		_, cs, err := p.CompromiseRandom(rand.New(rand.NewSource(int64(1000+trial))), q)
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(cs.Len())
	}
	got := sum / trials
	want := float64((n/l)*m) * alpha
	if math.Abs(got-want) > 0.08*want {
		t.Fatalf("mean compromised codes = %v, want ≈ s·α = %v", got, want)
	}
}

func TestCompromiseRandomValidation(t *testing.T) {
	p := mustPool(t, 20, 4, 5, 9)
	rng := rand.New(rand.NewSource(1))
	if _, _, err := p.CompromiseRandom(rng, -1); err == nil {
		t.Fatal("accepted negative q")
	}
	if _, _, err := p.CompromiseRandom(rng, 21); err == nil {
		t.Fatal("accepted q > n")
	}
	if _, cs, err := p.CompromiseRandom(rng, 0); err != nil || cs.Len() != 0 {
		t.Fatalf("q=0: err=%v len=%d, want empty", err, cs.Len())
	}
}

func TestCodeSet(t *testing.T) {
	s := NewCodeSet(100)
	if s.Contains(5) || s.Len() != 0 {
		t.Fatal("fresh set not empty")
	}
	s.Add(5)
	s.Add(5)
	s.Add(99)
	if !s.Contains(5) || !s.Contains(99) || s.Len() != 2 {
		t.Fatalf("set state wrong after adds: len=%d", s.Len())
	}
	s.Remove(5)
	s.Remove(5)
	if s.Contains(5) || s.Len() != 1 {
		t.Fatal("remove failed")
	}
	var nilSet *CodeSet
	if nilSet.Contains(3) || nilSet.Len() != 0 {
		t.Fatal("nil set should behave as empty")
	}
}

func TestRevoker(t *testing.T) {
	if _, err := NewRevoker(0); err == nil {
		t.Fatal("accepted γ=0")
	}
	r, err := NewRevoker(3)
	if err != nil {
		t.Fatal(err)
	}
	const code = CodeID(7)
	for i := 0; i < 3; i++ {
		if r.ReportInvalid(code) {
			t.Fatalf("revoked after %d reports, threshold is 3", i+1)
		}
	}
	if r.Revoked(code) {
		t.Fatal("revoked at exactly γ reports; must exceed γ")
	}
	if !r.ReportInvalid(code) {
		t.Fatal("report γ+1 did not revoke")
	}
	if !r.Revoked(code) || r.RevokedCodes() != 1 {
		t.Fatal("revocation state wrong")
	}
	// Further reports on a revoked code are no-ops.
	if r.ReportInvalid(code) {
		t.Fatal("revoked code revoked again")
	}
	if r.Count(code) != 4 {
		t.Fatalf("Count = %d, want 4", r.Count(code))
	}
}

// Property: for arbitrary valid (n, m, l), every node gets exactly m
// distinct codes and no code exceeds l sharers.
func TestPropertyDistributionInvariants(t *testing.T) {
	f := func(seed int64, nRaw, mRaw, lRaw uint8) bool {
		n := 4 + int(nRaw)%60
		m := 1 + int(mRaw)%12
		l := 2 + int(lRaw)%8
		if l > n {
			l = n
		}
		p, err := New(Config{N: n, M: m, L: l, Rand: rand.New(rand.NewSource(seed))})
		if err != nil {
			return false
		}
		for node := 0; node < n; node++ {
			codes := p.Codes(node)
			if len(codes) != m {
				return false
			}
			seen := map[CodeID]bool{}
			for _, c := range codes {
				if seen[c] {
					return false
				}
				seen[c] = true
			}
		}
		for c := 0; c < p.S(); c++ {
			if len(p.Holders(CodeID(c))) > l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
