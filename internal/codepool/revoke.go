package codepool

import (
	"fmt"
	"sort"
	"sync"
)

// Revoker implements the local revocation defence of §V-D: each node keeps
// a counter per spread code it holds; every invalid neighbor-discovery
// request received under that code (e.g. a bad signature, a MAC mismatch)
// increments the counter, and once it exceeds the threshold γ the node
// locally revokes the code — subsequent messages spread with it are
// ignored. A compromised code can therefore be used against each of its
// l−1 other holders at most γ times, bounding the DoS verification load to
// (l−1)·γ per compromised code.
//
// The table is safe for concurrent use: a real receiver reports invalid
// requests from its demodulation path while other goroutines consult
// Revoked before transmitting, and a racing pair of reports must agree on
// which one crossed the threshold.
type Revoker struct {
	mu       sync.Mutex
	gamma    int
	counters map[CodeID]int
	revoked  map[CodeID]bool
}

// NewRevoker creates a revocation table with threshold gamma >= 1.
func NewRevoker(gamma int) (*Revoker, error) {
	if gamma < 1 {
		return nil, fmt.Errorf("codepool: revocation threshold γ=%d must be >= 1", gamma)
	}
	return &Revoker{
		gamma:    gamma,
		counters: map[CodeID]int{},
		revoked:  map[CodeID]bool{},
	}, nil
}

// Gamma returns the configured threshold.
func (r *Revoker) Gamma() int { return r.gamma }

// ReportInvalid records one invalid request received under code c and
// reports whether this report crossed the revocation threshold. Exactly
// one of any set of concurrent reports observes revokedNow == true.
func (r *Revoker) ReportInvalid(c CodeID) (revokedNow bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.revoked[c] {
		return false
	}
	r.counters[c]++
	if r.counters[c] > r.gamma {
		r.revoked[c] = true
		return true
	}
	return false
}

// Revoked reports whether c has been locally revoked.
func (r *Revoker) Revoked(c CodeID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.revoked[c]
}

// Count returns the current invalid-request count for c.
func (r *Revoker) Count(c CodeID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[c]
}

// RevokedCodes returns the number of locally revoked codes.
func (r *Revoker) RevokedCodes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.revoked)
}

// RevocationState is a point-in-time copy of the table, for the
// authority's durability snapshots (internal/authd). Revoked is sorted so
// a dump is canonical.
type RevocationState struct {
	Counters map[CodeID]int
	Revoked  []CodeID
}

// Dump copies the table. The copy is consistent: both maps are read under
// one critical section.
func (r *Revoker) Dump() RevocationState {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RevocationState{Counters: make(map[CodeID]int, len(r.counters))}
	for c, n := range r.counters {
		st.Counters[c] = n
	}
	st.Revoked = make([]CodeID, 0, len(r.revoked))
	for c := range r.revoked {
		st.Revoked = append(st.Revoked, c)
	}
	sort.Slice(st.Revoked, func(i, j int) bool { return st.Revoked[i] < st.Revoked[j] })
	return st
}

// Restore replaces the table's contents with a previously dumped state.
// Only valid on a table that has seen no reports yet (a freshly built
// authority replaying its snapshot); restoring over live counters would
// break the exactly-one-revocation accounting.
func (r *Revoker) Restore(st RevocationState) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) != 0 || len(r.revoked) != 0 {
		return fmt.Errorf("codepool: Restore on a revocation table with live state")
	}
	for c, n := range st.Counters {
		if n < 0 {
			return fmt.Errorf("codepool: restored counter for code %d is negative (%d)", c, n)
		}
		if n > 0 {
			r.counters[c] = n
		}
	}
	for _, c := range st.Revoked {
		r.revoked[c] = true
	}
	return nil
}
