package codepool

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRevokerConcurrentReportInvalid hammers one code from many goroutines
// (run under -race): the counters must neither tear nor double-fire — of
// all concurrent reports, exactly one crosses the threshold.
func TestRevokerConcurrentReportInvalid(t *testing.T) {
	const (
		gamma      = 5
		goroutines = 16
		reports    = 50
	)
	r, err := NewRevoker(gamma)
	if err != nil {
		t.Fatal(err)
	}
	var crossed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reports; i++ {
				if r.ReportInvalid(7) {
					crossed.Add(1)
				}
				_ = r.Revoked(7)
				_ = r.Count(7)
				_ = r.RevokedCodes()
			}
		}()
	}
	wg.Wait()
	if got := crossed.Load(); got != 1 {
		t.Fatalf("revocation threshold crossed %d times, want exactly 1", got)
	}
	if !r.Revoked(7) {
		t.Fatal("code not revoked after the threshold was crossed")
	}
	if got := r.Count(7); got != gamma+1 {
		t.Fatalf("count = %d after revocation, want frozen at γ+1 = %d", got, gamma+1)
	}
	if r.RevokedCodes() != 1 {
		t.Fatalf("RevokedCodes = %d, want 1", r.RevokedCodes())
	}
}

// TestRevokerConcurrentDisjointCodes checks independent codes do not
// serialize into each other's state under concurrency.
func TestRevokerConcurrentDisjointCodes(t *testing.T) {
	r, err := NewRevoker(2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := CodeID(0); c < 8; c++ {
		wg.Add(1)
		go func(c CodeID) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				r.ReportInvalid(c)
			}
		}(c)
	}
	wg.Wait()
	for c := CodeID(0); c < 8; c++ {
		if !r.Revoked(c) {
			t.Fatalf("code %d not revoked", c)
		}
		if got := r.Count(c); got != 3 {
			t.Fatalf("code %d count = %d, want 3", c, got)
		}
	}
	if r.RevokedCodes() != 8 {
		t.Fatalf("RevokedCodes = %d, want 8", r.RevokedCodes())
	}
}
