package chips

import (
	"math/rand"
	"testing"
)

// The correlation kernels are //jrsnd:hotpath roots: the DSSS receiver
// evaluates them once per (offset, code) candidate, so they must not
// allocate. The static hotpathalloc analyzer enforces this at lint time;
// these tests pin it at runtime.

func TestCorrelateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := NewRandom(rng, 512)
	v := NewRandom(rng, 512)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := Correlate(u, v); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Correlate allocates %v objects per run, want 0", allocs)
	}
}

func TestCorrelateAtAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	code := NewRandom(rng, 512)
	buf := make([]int32, 4096)
	for i := range buf {
		buf[i] = int32(rng.Intn(7) - 3)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = CorrelateAt(code, buf, 128)
	})
	if allocs != 0 {
		t.Fatalf("CorrelateAt allocates %v objects per run, want 0", allocs)
	}
}
