// Package chips implements NRZ (non-return-to-zero) chip sequences, the
// elementary signal representation of a DSSS system. A chip sequence is a
// vector over {+1, -1}; spread codes, spread messages and jamming signals
// are all chip sequences. Sequences are stored packed, one bit per chip
// (bit 1 means chip +1, bit 0 means chip -1), so correlation reduces to
// popcount over XOR-ed words.
package chips

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
)

// Sequence is an NRZ chip sequence over {+1, -1}. The zero value is the
// empty sequence. Sequences are value types; Clone before mutating a shared
// one.
type Sequence struct {
	n     int
	words []uint64
}

// ErrLengthMismatch is returned by operations that require equal-length
// sequences.
var ErrLengthMismatch = errors.New("chips: sequence length mismatch")

// New returns an all -1 (all bits zero) sequence of n chips.
func New(n int) Sequence {
	if n < 0 {
		panic("chips: negative length")
	}
	return Sequence{n: n, words: make([]uint64, (n+63)/64)}
}

// FromBits builds a sequence from a slice of bits, mapping 1 → +1 and
// 0 → -1 (the NRZ convention of the paper, §III).
func FromBits(bs []byte) Sequence {
	s := New(len(bs))
	for i, b := range bs {
		if b != 0 {
			s.set(i, true)
		}
	}
	return s
}

// FromSigns builds a sequence from a slice of ±1 values. Any positive value
// maps to +1; zero or negative maps to -1.
func FromSigns(signs []int8) Sequence {
	s := New(len(signs))
	for i, v := range signs {
		if v > 0 {
			s.set(i, true)
		}
	}
	return s
}

// NewRandom returns a uniformly random sequence of n chips drawn from rng.
// It is intended for tests and simulations that need reproducibility.
func NewRandom(rng *rand.Rand, n int) Sequence {
	s := New(n)
	for i := range s.words {
		s.words[i] = rng.Uint64()
	}
	s.maskTail()
	return s
}

// Derive deterministically expands a seed into an n-chip sequence using a
// SHA-256 counter stream. It is used both for pool-code generation by the
// authority and for session spread-code derivation h_K(n_A ⊗ n_B).
func Derive(seed []byte, n int) Sequence {
	s := New(n)
	var counter [8]byte
	var buf []byte
	h := sha256.New()
	for i := range s.words {
		if len(buf) < 8 {
			h.Reset()
			h.Write(seed)
			h.Write(counter[:])
			binary.BigEndian.PutUint64(counter[:], binary.BigEndian.Uint64(counter[:])+1)
			buf = h.Sum(nil)
		}
		s.words[i] = binary.BigEndian.Uint64(buf[:8])
		buf = buf[8:]
	}
	s.maskTail()
	return s
}

// Len returns the number of chips in the sequence.
func (s Sequence) Len() int { return s.n }

// At returns the i-th chip as +1 or -1.
func (s Sequence) At(i int) int8 {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("chips: index %d out of range [0,%d)", i, s.n))
	}
	if s.bit(i) {
		return 1
	}
	return -1
}

// Bit reports whether the i-th chip is +1.
func (s Sequence) Bit(i int) bool {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("chips: index %d out of range [0,%d)", i, s.n))
	}
	return s.bit(i)
}

// Clone returns an independent copy of s.
func (s Sequence) Clone() Sequence {
	c := Sequence{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Equal reports whether two sequences have identical length and chips.
func (s Sequence) Equal(t Sequence) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// Invert returns the chip-wise negation of s (every +1 becomes -1 and vice
// versa). In DSSS terms this is the spreading of a -1 data bit.
func (s Sequence) Invert() Sequence {
	c := s.Clone()
	for i := range c.words {
		c.words[i] = ^c.words[i]
	}
	c.maskTail()
	return c
}

// Xor returns the chip-wise product of s and t interpreted over {+1,-1}
// (equal chips yield +1). Both sequences must have the same length.
func (s Sequence) Xor(t Sequence) (Sequence, error) {
	if s.n != t.n {
		return Sequence{}, ErrLengthMismatch
	}
	c := s.Clone()
	for i := range c.words {
		// +1*+1 = +1 and -1*-1 = +1: the product bit is the XNOR of the
		// operand bits, i.e. NOT XOR.
		c.words[i] = ^(c.words[i] ^ t.words[i])
	}
	c.maskTail()
	return c, nil
}

// Slice returns the subsequence [from, to). It copies; the result does not
// alias s.
func (s Sequence) Slice(from, to int) Sequence {
	if from < 0 || to > s.n || from > to {
		panic(fmt.Sprintf("chips: slice [%d,%d) out of range [0,%d]", from, to, s.n))
	}
	c := New(to - from)
	for i := 0; i < c.n; i++ {
		if s.bit(from + i) {
			c.set(i, true)
		}
	}
	return c
}

// Append returns the concatenation of s and t.
func (s Sequence) Append(t Sequence) Sequence {
	c := New(s.n + t.n)
	copy(c.words, s.words)
	if s.n%64 == 0 {
		copy(c.words[s.n/64:], t.words)
	} else {
		for i := 0; i < t.n; i++ {
			if t.bit(i) {
				c.set(s.n+i, true)
			}
		}
	}
	return c
}

// Signs returns the sequence as a freshly allocated ±1 slice.
func (s Sequence) Signs() []int8 {
	out := make([]int8, s.n)
	for i := range out {
		out[i] = s.At(i)
	}
	return out
}

// Bits returns the sequence as 0/1 bytes (+1 → 1, -1 → 0).
func (s Sequence) Bits() []byte {
	out := make([]byte, s.n)
	for i := range out {
		if s.bit(i) {
			out[i] = 1
		}
	}
	return out
}

// FlipChips flips the chips at the given indices in place. It is used by
// channel models to corrupt a transmission.
func (s *Sequence) FlipChips(idx ...int) {
	for _, i := range idx {
		if i < 0 || i >= s.n {
			panic(fmt.Sprintf("chips: flip index %d out of range [0,%d)", i, s.n))
		}
		s.words[i/64] ^= 1 << uint(i%64)
	}
}

// Seed returns a 32-byte digest of the sequence suitable for use as a map
// key or for deriving dependent material.
func (s Sequence) Seed() [32]byte {
	buf := make([]byte, 8+8*len(s.words))
	binary.BigEndian.PutUint64(buf, uint64(s.n))
	for i, w := range s.words {
		binary.BigEndian.PutUint64(buf[8+8*i:], w)
	}
	return sha256.Sum256(buf)
}

// String renders short sequences as +- strings and long ones as a summary.
func (s Sequence) String() string {
	if s.n <= 64 {
		b := make([]byte, s.n)
		for i := 0; i < s.n; i++ {
			if s.bit(i) {
				b[i] = '+'
			} else {
				b[i] = '-'
			}
		}
		return string(b)
	}
	seed := s.Seed()
	return fmt.Sprintf("Sequence(n=%d, seed=%x)", s.n, seed[:4])
}

// Weight returns the number of +1 chips.
func (s Sequence) Weight() int {
	w := 0
	for _, word := range s.words {
		w += bits.OnesCount64(word)
	}
	return w
}

func (s Sequence) bit(i int) bool {
	return s.words[i/64]&(1<<uint(i%64)) != 0
}

func (s *Sequence) set(i int, v bool) {
	if v {
		s.words[i/64] |= 1 << uint(i%64)
	} else {
		s.words[i/64] &^= 1 << uint(i%64)
	}
}

func (s *Sequence) maskTail() {
	if rem := s.n % 64; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}
