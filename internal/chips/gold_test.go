package chips

import (
	"math"
	"testing"
)

func TestMSequencePeriodAndBalance(t *testing.T) {
	// x^5 + x^2 + 1 is primitive: period 31, weight 16 (one more +1 than
	// −1, the m-sequence balance property).
	s, err := MSequence([]int{5, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 31 {
		t.Fatalf("length %d, want 31", s.Len())
	}
	if s.Weight() != 16 {
		t.Fatalf("weight %d, want 16", s.Weight())
	}
}

func TestMSequenceAutocorrelation(t *testing.T) {
	// m-sequence cyclic autocorrelation is 1 at lag 0 and −1/N elsewhere.
	s, err := MSequence([]int{7, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := s.Len()
	if n != 127 {
		t.Fatalf("length %d, want 127", n)
	}
	for lag := 0; lag < n; lag++ {
		c, err := Correlate(s, rotate(s, lag))
		if err != nil {
			t.Fatal(err)
		}
		want := -1.0 / float64(n)
		if lag == 0 {
			want = 1
		}
		if math.Abs(c-want) > 1e-12 {
			t.Fatalf("lag %d: autocorrelation %v, want %v", lag, c, want)
		}
	}
}

func TestMSequenceValidation(t *testing.T) {
	if _, err := MSequence(nil, 1); err == nil {
		t.Fatal("accepted empty taps")
	}
	if _, err := MSequence([]int{0}, 1); err == nil {
		t.Fatal("accepted tap 0")
	}
	if _, err := MSequence([]int{64}, 1); err == nil {
		t.Fatal("accepted tap 64")
	}
	if _, err := MSequence([]int{5, 2}, 0); err == nil {
		t.Fatal("accepted zero seed")
	}
}

func TestGoldFamilyCrossCorrelationBound(t *testing.T) {
	for _, degree := range []int{5, 6, 7, 9} {
		family, err := GoldFamily(degree, 12)
		if err != nil {
			t.Fatalf("degree %d: %v", degree, err)
		}
		bound := GoldBound(degree) + 1e-12
		n := family[0].Len()
		for i := 0; i < len(family); i++ {
			for j := i + 1; j < len(family); j++ {
				// Check a spread of relative cyclic shifts.
				for lag := 0; lag < n; lag += 1 + n/37 {
					c, err := Correlate(family[i], rotate(family[j], lag))
					if err != nil {
						t.Fatal(err)
					}
					if math.Abs(c) > bound {
						t.Fatalf("degree %d: |corr(%d,%d @%d)| = %v exceeds Gold bound %v",
							degree, i, j, lag, math.Abs(c), bound)
					}
				}
			}
		}
	}
}

func TestGoldFamilyDistinctCodes(t *testing.T) {
	family, err := GoldFamily(7, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range family {
		if family[i].Len() != 127 {
			t.Fatalf("code %d has length %d, want 127", i, family[i].Len())
		}
		for j := i + 1; j < len(family); j++ {
			if family[i].Equal(family[j]) {
				t.Fatalf("codes %d and %d identical", i, j)
			}
		}
	}
}

func TestGoldFamilyValidation(t *testing.T) {
	if _, err := GoldFamily(4, 3); err == nil {
		t.Fatal("accepted degree without a preferred pair")
	}
	if _, err := GoldFamily(5, 0); err == nil {
		t.Fatal("accepted count 0")
	}
	if _, err := GoldFamily(5, 1000); err == nil {
		t.Fatal("accepted count beyond the family size")
	}
	if len(GoldDegrees()) == 0 {
		t.Fatal("no degrees advertised")
	}
}

func TestGoldBoundValues(t *testing.T) {
	// t(k) = 2^⌊(k+2)/2⌋ + 1: t(5)=9, t(7)=17, t(9)=33, t(10)=65.
	for _, c := range []struct {
		degree int
		t      float64
	}{
		{5, 9}, {7, 17}, {9, 33}, {10, 65},
	} {
		n := float64(int(1)<<uint(c.degree)) - 1
		if got := GoldBound(c.degree); math.Abs(got-c.t/n) > 1e-12 {
			t.Fatalf("GoldBound(%d) = %v, want %v", c.degree, got, c.t/n)
		}
	}
}

func TestWalshFamilyOrthogonal(t *testing.T) {
	family, err := WalshFamily(6, 64) // 64 codes of 64 chips
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(family); i++ {
		self, err := Correlate(family[i], family[i])
		if err != nil || self != 1 {
			t.Fatalf("code %d self-correlation %v", i, self)
		}
		for j := i + 1; j < len(family); j++ {
			c, err := Correlate(family[i], family[j])
			if err != nil {
				t.Fatal(err)
			}
			if c != 0 {
				t.Fatalf("Walsh codes %d,%d correlate %v, want exactly 0", i, j, c)
			}
		}
	}
}

func TestWalshLosesOrthogonalityWhenMisaligned(t *testing.T) {
	// The reason MANET discovery cannot use orthogonal codes: one chip of
	// misalignment destroys the orthogonality guarantee.
	family, err := WalshFamily(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	violated := false
	for i := 0; i < len(family) && !violated; i++ {
		for j := 0; j < len(family) && !violated; j++ {
			if i == j {
				continue
			}
			c, err := Correlate(family[i], rotate(family[j], 1))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(c) > 0.15 {
				violated = true
			}
		}
	}
	if !violated {
		t.Fatal("misaligned Walsh codes stayed below τ everywhere; expected orthogonality loss")
	}
}

func TestWalshFamilyValidation(t *testing.T) {
	if _, err := WalshFamily(0, 1); err == nil {
		t.Fatal("accepted degree 0")
	}
	if _, err := WalshFamily(17, 1); err == nil {
		t.Fatal("accepted degree 17")
	}
	if _, err := WalshFamily(3, 0); err == nil {
		t.Fatal("accepted count 0")
	}
	if _, err := WalshFamily(3, 9); err == nil {
		t.Fatal("accepted count beyond the family")
	}
}

func TestRotate(t *testing.T) {
	s := FromBits([]byte{1, 0, 0, 1, 1})
	r := rotate(s, 2)
	want := FromBits([]byte{0, 1, 1, 1, 0})
	if !r.Equal(want) {
		t.Fatalf("rotate = %v, want %v", r, want)
	}
	if !rotate(s, 0).Equal(s) || !rotate(s, 5).Equal(s) {
		t.Fatal("identity rotations broken")
	}
}
