package chips

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAllMinusOne(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if s.At(i) != -1 {
			t.Fatalf("At(%d) = %d, want -1", i, s.At(i))
		}
	}
	if s.Weight() != 0 {
		t.Fatalf("Weight = %d, want 0", s.Weight())
	}
}

func TestFromBitsRoundTrip(t *testing.T) {
	in := []byte{1, 0, 0, 1, 1, 1, 0, 1, 0}
	s := FromBits(in)
	got := s.Bits()
	if len(got) != len(in) {
		t.Fatalf("len = %d, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("bit %d = %d, want %d", i, got[i], in[i])
		}
	}
}

func TestFromSigns(t *testing.T) {
	in := []int8{1, -1, 1, 1, -1}
	s := FromSigns(in)
	for i, want := range in {
		if s.At(i) != want {
			t.Fatalf("At(%d) = %d, want %d", i, s.At(i), want)
		}
	}
}

func TestSelfCorrelationIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 63, 64, 65, 512, 1000} {
		s := NewRandom(rng, n)
		c, err := Correlate(s, s)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if c != 1 {
			t.Errorf("n=%d: self correlation = %v, want 1", n, c)
		}
	}
}

func TestInverseCorrelationIsMinusOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewRandom(rng, 512)
	c, err := Correlate(s, s.Invert())
	if err != nil {
		t.Fatal(err)
	}
	if c != -1 {
		t.Errorf("correlation with inverse = %v, want -1", c)
	}
}

func TestIndependentCodesNearZeroCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, trials = 512, 200
	var sum, sumAbs float64
	for i := 0; i < trials; i++ {
		u := NewRandom(rng, n)
		v := NewRandom(rng, n)
		c, err := Correlate(u, v)
		if err != nil {
			t.Fatal(err)
		}
		sum += c
		sumAbs += abs(c)
	}
	// E[corr] = 0, sd per trial = 1/sqrt(512) ≈ 0.044.
	if mean := sum / trials; abs(mean) > 0.02 {
		t.Errorf("mean correlation = %v, want ≈ 0", mean)
	}
	if meanAbs := sumAbs / trials; meanAbs > 0.15 {
		t.Errorf("mean |correlation| = %v, want well below τ=0.15", meanAbs)
	}
}

func TestCorrelateLengthMismatch(t *testing.T) {
	if _, err := Correlate(New(3), New(4)); err != ErrLengthMismatch {
		t.Fatalf("err = %v, want ErrLengthMismatch", err)
	}
	if _, err := Hamming(New(3), New(4)); err != ErrLengthMismatch {
		t.Fatalf("err = %v, want ErrLengthMismatch", err)
	}
	if _, err := New(3).Xor(New(4)); err != ErrLengthMismatch {
		t.Fatalf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestDeriveDeterministic(t *testing.T) {
	a := Derive([]byte("seed"), 512)
	b := Derive([]byte("seed"), 512)
	if !a.Equal(b) {
		t.Fatal("Derive is not deterministic")
	}
	c := Derive([]byte("other"), 512)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical sequences")
	}
	// Derived codes should look balanced.
	w := a.Weight()
	if w < 200 || w > 312 {
		t.Fatalf("Weight = %d, want ≈ 256", w)
	}
}

func TestXorActsAsChipProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	u := NewRandom(rng, 100)
	v := NewRandom(rng, 100)
	p, err := u.Xor(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if want := u.At(i) * v.At(i); p.At(i) != want {
			t.Fatalf("chip %d: got %d, want %d", i, p.At(i), want)
		}
	}
}

func TestSliceAndAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewRandom(rng, 200)
	left, right := s.Slice(0, 77), s.Slice(77, 200)
	joined := left.Append(right)
	if !joined.Equal(s) {
		t.Fatal("Slice+Append did not reconstruct the sequence")
	}
	// Word-aligned fast path.
	l2, r2 := s.Slice(0, 128), s.Slice(128, 200)
	if !l2.Append(r2).Equal(s) {
		t.Fatal("aligned Slice+Append did not reconstruct the sequence")
	}
}

func TestFlipChips(t *testing.T) {
	s := New(10)
	s.FlipChips(0, 5, 9)
	for i := 0; i < 10; i++ {
		want := int8(-1)
		if i == 0 || i == 5 || i == 9 {
			want = 1
		}
		if s.At(i) != want {
			t.Fatalf("At(%d) = %d, want %d", i, s.At(i), want)
		}
	}
	s.FlipChips(5)
	if s.At(5) != -1 {
		t.Fatal("double flip did not restore the chip")
	}
}

func TestCorrelateAtMatchesCorrelate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	code := NewRandom(rng, 64)
	signal := NewRandom(rng, 256)
	buf := make([]int32, 256)
	for i := range buf {
		buf[i] = int32(signal.At(i))
	}
	for off := 0; off+64 <= 256; off += 17 {
		want, err := Correlate(code, signal.Slice(off, off+64))
		if err != nil {
			t.Fatal(err)
		}
		if got := CorrelateAt(code, buf, off); abs(got-want) > 1e-12 {
			t.Fatalf("off=%d: CorrelateAt = %v, want %v", off, got, want)
		}
	}
}

func TestHamming(t *testing.T) {
	u := FromBits([]byte{1, 1, 0, 0})
	v := FromBits([]byte{1, 0, 0, 1})
	d, err := Hamming(u, v)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("Hamming = %d, want 2", d)
	}
}

func TestSeedStableAndDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewRandom(rng, 512)
	if s.Seed() != s.Clone().Seed() {
		t.Fatal("Seed not stable under Clone")
	}
	other := NewRandom(rng, 512)
	if s.Seed() == other.Seed() {
		t.Fatal("distinct sequences share a Seed")
	}
}

// Property: spreading a bit with a code and correlating with the same code
// recovers the bit exactly (+1 → corr 1, -1 → corr -1).
func TestPropertySpreadDespreadIdentity(t *testing.T) {
	f := func(seed int64, bit bool) bool {
		rng := rand.New(rand.NewSource(seed))
		code := NewRandom(rng, 512)
		tx := code
		if !bit {
			tx = code.Invert()
		}
		c, err := Correlate(code, tx)
		if err != nil {
			return false
		}
		if bit {
			return c == 1
		}
		return c == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Xor is commutative and self-inverse on equal lengths.
func TestPropertyXorAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := NewRandom(rng, 200)
		v := NewRandom(rng, 200)
		uv, err1 := u.Xor(v)
		vu, err2 := v.Xor(u)
		if err1 != nil || err2 != nil || !uv.Equal(vu) {
			return false
		}
		// (u⊗v)⊗v == u
		back, err := uv.Xor(v)
		return err == nil && back.Equal(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
