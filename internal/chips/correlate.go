package chips

import "math/bits"

// Correlate computes the normalized correlation between two equal-length
// NRZ sequences, (1/N) Σ u_i v_i, as defined in §III of the paper. The
// result lies in [-1, 1]: +1 for identical sequences, -1 for chip-wise
// inverses, and near 0 for independent random sequences.
//
//jrsnd:hotpath
func Correlate(u, v Sequence) (float64, error) {
	if u.n != v.n {
		return 0, ErrLengthMismatch
	}
	if u.n == 0 {
		return 0, nil
	}
	agree := 0
	for i := range u.words {
		agree += 64 - bits.OnesCount64(u.words[i]^v.words[i])
	}
	// The tail beyond n was masked to zero in both words, so those
	// positions always "agree"; subtract them back out.
	agree -= len(u.words)*64 - u.n
	disagree := u.n - agree
	return float64(agree-disagree) / float64(u.n), nil
}

// CorrelateAt computes the normalized correlation between code and the
// window buf[off : off+code.Len()) of a raw multi-level chip buffer (the
// output of a channel that superimposes several ±1 signals). Each buffer
// element is the signed sum of the concurrently transmitted chips at that
// position. The caller must guarantee off+code.Len() <= len(buf).
//
//jrsnd:hotpath
func CorrelateAt(code Sequence, buf []int32, off int) float64 {
	n := code.Len()
	if n == 0 {
		return 0
	}
	var acc int64
	for i := 0; i < n; i++ {
		v := int64(buf[off+i])
		if code.bit(i) {
			acc += v
		} else {
			acc -= v
		}
	}
	return float64(acc) / float64(n)
}

// Hamming returns the number of chip positions where u and v differ.
func Hamming(u, v Sequence) (int, error) {
	if u.n != v.n {
		return 0, ErrLengthMismatch
	}
	d := 0
	for i := range u.words {
		d += bits.OnesCount64(u.words[i] ^ v.words[i])
	}
	return d, nil
}
