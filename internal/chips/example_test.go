package chips_test

import (
	"fmt"
	"math/rand"

	"repro/internal/chips"
)

// Correlation is the receiver's only tool: a code against itself gives 1,
// against its inverse −1, and against an independent code nearly 0.
func ExampleCorrelate() {
	rng := rand.New(rand.NewSource(1))
	code := chips.NewRandom(rng, 512)
	other := chips.NewRandom(rng, 512)

	self, _ := chips.Correlate(code, code)
	inv, _ := chips.Correlate(code, code.Invert())
	cross, _ := chips.Correlate(code, other)

	fmt.Printf("self: %.0f  inverse: %.0f  independent below τ=0.15: %v\n",
		self, inv, cross < 0.15 && cross > -0.15)
	// Output: self: 1  inverse: -1  independent below τ=0.15: true
}

// Gold families provide guaranteed cross-correlation bounds, unlike
// unstructured random codes.
func ExampleGoldFamily() {
	family, _ := chips.GoldFamily(7, 3) // degree 7 → 127-chip codes
	c01, _ := chips.Correlate(family[0], family[1])
	bound := chips.GoldBound(7)
	fmt.Printf("len=%d |corr|<=t(7)/127: %v\n", family[0].Len(), c01 <= bound && c01 >= -bound)
	// Output: len=127 |corr|<=t(7)/127: true
}

// Derive expands a secret seed into a deterministic spread code — how the
// authority materializes pool codes and how endpoints derive session codes.
func ExampleDerive() {
	a := chips.Derive([]byte("shared-secret"), 512)
	b := chips.Derive([]byte("shared-secret"), 512)
	fmt.Println("both sides derive the same code:", a.Equal(b))
	// Output: both sides derive the same code: true
}
