package chips

import "fmt"

// Gold codes — the classical DSSS spreading-code family with provably
// bounded cross-correlation, generated from a preferred pair of maximal-
// length LFSR sequences. The paper uses unstructured pseudorandom codes
// (whose cross-correlation is only statistically near zero); Gold codes
// are the engineering alternative a real DSSS radio would ship, and the
// package provides them so the chip-level experiments can quantify the
// difference.

// MSequence generates a maximal-length sequence from a Fibonacci LFSR with
// the given feedback taps (tap k means the polynomial term x^k; the
// highest tap sets the register degree). seed must be nonzero in the low
// `degree` bits. The period is 2^degree − 1 when the polynomial is
// primitive.
func MSequence(taps []int, seed uint64) (Sequence, error) {
	if len(taps) == 0 {
		return Sequence{}, fmt.Errorf("chips: no LFSR taps")
	}
	degree := 0
	for _, t := range taps {
		if t < 1 || t > 63 {
			return Sequence{}, fmt.Errorf("chips: tap %d out of range [1,63]", t)
		}
		if t > degree {
			degree = t
		}
	}
	stateMask := (uint64(1) << uint(degree)) - 1
	state := seed & stateMask
	if state == 0 {
		return Sequence{}, fmt.Errorf("chips: LFSR seed must be nonzero in the low %d bits", degree)
	}
	// Galois form: on a 1 output, xor in the feedback mask (one bit per
	// polynomial tap, including the degree term).
	var fbMask uint64
	for _, t := range taps {
		fbMask |= 1 << uint(t-1)
	}
	n := int(stateMask) // period 2^degree − 1
	out := New(n)
	for i := 0; i < n; i++ {
		bit := state & 1
		if bit != 0 {
			out.set(i, true)
		}
		state >>= 1
		if bit != 0 {
			state ^= fbMask
		}
	}
	return out, nil
}

// goldPair is a preferred pair of primitive polynomials (as tap lists) for
// one register degree.
type goldPair struct {
	a, b []int
}

// preferredPairs lists known preferred pairs. Preferred pairs do not exist
// for degrees divisible by 4.
var preferredPairs = map[int]goldPair{
	5:  {a: []int{5, 2}, b: []int{5, 4, 3, 2}},
	6:  {a: []int{6, 1}, b: []int{6, 5, 2, 1}},
	7:  {a: []int{7, 3}, b: []int{7, 3, 2, 1}},
	9:  {a: []int{9, 4}, b: []int{9, 6, 4, 3}},
	10: {a: []int{10, 3}, b: []int{10, 8, 3, 2}},
}

// GoldDegrees returns the register degrees this package has preferred
// pairs for.
func GoldDegrees() []int {
	return []int{5, 6, 7, 9, 10}
}

// GoldBound returns the Gold cross-correlation bound t(k)/N: for degree k,
// t(k) = 2^⌊(k+2)/2⌋ + 1 and N = 2^k − 1. Every pair of distinct codes in
// the family correlates within ±t(k)/N at zero lag.
func GoldBound(degree int) float64 {
	t := float64(int(1)<<uint((degree+2)/2)) + 1
	n := float64(int(1)<<uint(degree)) - 1
	return t / n
}

// GoldFamily generates up to count Gold codes of length 2^degree − 1 from
// the stored preferred pair: the two m-sequences themselves plus the XOR
// of the first with every cyclic shift of the second (family size
// 2^degree + 1).
func GoldFamily(degree, count int) ([]Sequence, error) {
	pair, ok := preferredPairs[degree]
	if !ok {
		return nil, fmt.Errorf("chips: no preferred pair for degree %d (have %v)", degree, GoldDegrees())
	}
	u, err := MSequence(pair.a, 1)
	if err != nil {
		return nil, err
	}
	v, err := MSequence(pair.b, 1)
	if err != nil {
		return nil, err
	}
	n := u.Len()
	maxCount := n + 2
	if count < 1 || count > maxCount {
		return nil, fmt.Errorf("chips: count %d out of [1, %d]", count, maxCount)
	}
	family := make([]Sequence, 0, count)
	family = append(family, u)
	if count > 1 {
		family = append(family, v)
	}
	for shift := 0; len(family) < count; shift++ {
		shifted := rotate(v, shift)
		code, err := u.Xor(shifted)
		if err != nil {
			return nil, err
		}
		family = append(family, code)
	}
	return family, nil
}

// WalshFamily generates the first count rows of the 2^degree-order
// Walsh–Hadamard matrix as chip sequences: a perfectly orthogonal code
// family (cross-correlation exactly 0 at chip alignment). Orthogonal codes
// are what synchronized cellular CDMA downlinks use; they lose their
// orthogonality under misalignment, which is why asynchronous MANET
// neighbor discovery uses pseudorandom or Gold codes instead — the
// comparison the chip-level tests quantify.
func WalshFamily(degree, count int) ([]Sequence, error) {
	if degree < 1 || degree > 16 {
		return nil, fmt.Errorf("chips: Walsh degree %d out of [1,16]", degree)
	}
	n := 1 << uint(degree)
	if count < 1 || count > n {
		return nil, fmt.Errorf("chips: count %d out of [1, %d]", count, n)
	}
	family := make([]Sequence, count)
	for row := 0; row < count; row++ {
		s := New(n)
		for col := 0; col < n; col++ {
			// H[row][col] = (−1)^popcount(row AND col): +1 when the
			// parity is even.
			if parity(uint(row)&uint(col)) == 0 {
				s.set(col, true)
			}
		}
		family[row] = s
	}
	return family, nil
}

func parity(v uint) int {
	p := 0
	for v != 0 {
		p ^= 1
		v &= v - 1
	}
	return p
}

// rotate returns s cyclically rotated left by k chips.
func rotate(s Sequence, k int) Sequence {
	n := s.Len()
	if n == 0 {
		return s
	}
	k %= n
	if k == 0 {
		return s.Clone()
	}
	return s.Slice(k, n).Append(s.Slice(0, k))
}
