package analysis

import (
	"math"
	"testing"
)

func TestDefaultsValidate(t *testing.T) {
	if err := Defaults().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.N = 1 },
		func(p *Params) { p.M = 0 },
		func(p *Params) { p.L = 1 },
		func(p *Params) { p.L = p.N + 1 },
		func(p *Params) { p.Q = -1 },
		func(p *Params) { p.ChipLen = 0 },
		func(p *Params) { p.ChipRate = 0 },
		func(p *Params) { p.Rho = 0 },
		func(p *Params) { p.Mu = 0 },
		func(p *Params) { p.Nu = 0 },
		func(p *Params) { p.Z = -1 },
		func(p *Params) { p.LenID = 0 },
		func(p *Params) { p.Range = 0 },
	}
	for i, mutate := range mutations {
		p := Defaults()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

func TestDerivedQuantitiesMatchPaperExamples(t *testing.T) {
	p := Defaults()
	// §V-B: "if N = 512, m = 1000, and R = 22 Mbps, we have λ ≈ 94" with
	// ρ ≈ 8.3e-12.
	ex := p
	ex.M = 1000
	ex.Rho = 8.3e-12
	if lambda := ex.Lambda(); math.Abs(lambda-93.5) > 1 {
		t.Errorf("λ = %v, want ≈ 94 (paper §V-B example)", lambda)
	}
	// Table I defaults: s = (2000/40)·100 = 5000.
	if p.S() != 5000 {
		t.Errorf("s = %d, want 5000", p.S())
	}
	// l_h = 2·21 = 42 bits, l_f = 2·196 = 392 bits.
	if lh := p.HelloBits(); lh != 42 {
		t.Errorf("l_h = %v, want 42", lh)
	}
	if lf := p.AuthBits(); lf != 392 {
		t.Errorf("l_f = %v, want 392", lf)
	}
	// g ≈ 22.6 physical neighbors.
	if g := p.AvgDegree(); math.Abs(g-22.6) > 0.1 {
		t.Errorf("g = %v, want ≈ 22.6", g)
	}
	// λ = ρNmR = 1e-11·512·100·22e6 ≈ 11.3.
	if lambda := p.Lambda(); math.Abs(lambda-11.264) > 0.01 {
		t.Errorf("λ = %v, want ≈ 11.26", lambda)
	}
	if r := p.HelloRounds(); r != 13 {
		t.Errorf("r = %d, want ⌈(λ+1)(m+1)/m⌉ = 13", r)
	}
}

func TestPrSharedIsDistribution(t *testing.T) {
	p := Defaults()
	var sum, mean float64
	for x := 0; x <= p.M; x++ {
		pr := PrShared(p, x)
		if pr < 0 || pr > 1 {
			t.Fatalf("Pr[%d] = %v out of range", x, pr)
		}
		sum += pr
		mean += float64(x) * pr
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Σ Pr[x] = %v, want 1", sum)
	}
	want := float64(p.M) * float64(p.L-1) / float64(p.N-1)
	if math.Abs(mean-want) > 1e-9 {
		t.Fatalf("E[x] = %v, want %v", mean, want)
	}
	if PrShared(p, -1) != 0 || PrShared(p, p.M+1) != 0 {
		t.Fatal("out-of-support Pr[x] must be 0")
	}
}

func TestAlphaBoundsAndMonotonicity(t *testing.T) {
	p := Defaults()
	if a := AlphaQ(p, 0); a != 0 {
		t.Fatalf("α(q=0) = %v, want 0", a)
	}
	prev := 0.0
	for q := 1; q <= 200; q += 10 {
		a := AlphaQ(p, q)
		if a < prev || a > 1 {
			t.Fatalf("α(q=%d) = %v not monotone in [0,1]", q, a)
		}
		prev = a
	}
	if a := AlphaQ(p, p.N); a != 1 {
		t.Fatalf("α(q=n) = %v, want 1", a)
	}
	// Closed-form spot check: α ≈ 1 − ((n−l)/n)^q for small q/n.
	got := AlphaQ(p, 20)
	approx := 1 - math.Exp(20*(math.Log(float64(p.N-p.L))-math.Log(float64(p.N))))
	if math.Abs(got-approx) > 0.01 {
		t.Fatalf("α(20) = %v, approx %v", got, approx)
	}
}

func TestJamBeta(t *testing.T) {
	p := Defaults() // z=10, μ=1 → tries = 20
	beta, betaPrime := JamBeta(p, 100)
	if math.Abs(beta-0.2) > 1e-12 || math.Abs(betaPrime-0.6) > 1e-12 {
		t.Fatalf("JamBeta = %v,%v, want 0.2, 0.6", beta, betaPrime)
	}
	// Saturation at 1.
	beta, betaPrime = JamBeta(p, 10)
	if beta != 1 || betaPrime != 1 {
		t.Fatalf("JamBeta small c = %v,%v, want 1,1", beta, betaPrime)
	}
	if b, bp := JamBeta(p, 0); b != 0 || bp != 0 {
		t.Fatalf("JamBeta(c=0) = %v,%v, want 0,0", b, bp)
	}
}

func TestDNDPBoundsOrderingAndLimits(t *testing.T) {
	p := Defaults()
	lower, upper := DNDPBounds(p)
	if lower < 0 || upper > 1 || lower > upper {
		t.Fatalf("bounds (%v, %v) violate 0 <= P̂− <= P̂+ <= 1", lower, upper)
	}
	// No compromise → both equal 1 − Pr[no shared code].
	clean := p
	clean.Q = 0
	lo, up := DNDPBounds(clean)
	pShare := float64(p.L-1) / float64(p.N-1)
	want := 1 - math.Pow(1-pShare, float64(p.M))
	if math.Abs(lo-want) > 1e-9 || math.Abs(up-want) > 1e-9 {
		t.Fatalf("q=0 bounds (%v, %v), want both %v", lo, up, want)
	}
	// Everything compromised → reactive P̂− = 0.
	owned := p
	owned.Q = p.N
	lo, _ = DNDPBounds(owned)
	if lo > 1e-12 {
		t.Fatalf("P̂− with all nodes compromised = %v, want 0", lo)
	}
}

func TestDNDPReactiveMatchesPaperFig4Anchor(t *testing.T) {
	// Fig. 5(a) caption: P̂_D = 0.2 corresponds to q = 100 at l = 40.
	p := Defaults()
	p.Q = 100
	pd := DNDPReactive(p)
	if pd < 0.15 || pd > 0.30 {
		t.Fatalf("P̂_D(q=100) = %v, want ≈ 0.2 (paper anchor)", pd)
	}
}

func TestDNDPLatencyMatchesPaperAnchor(t *testing.T) {
	// §VI-B: at m = 100 (defaults), JR-SND latency is "under 2 seconds";
	// the D-NDP identification term dominates at ≈ 1.7 s.
	p := Defaults()
	td := DNDPLatency(p)
	if td < 1.0 || td > 2.0 {
		t.Fatalf("T̄_D = %v s, want within (1, 2) s", td)
	}
	// Quadratic growth in m: T̄_D(2m)/T̄_D(m) ≈ 4 for large m.
	p2 := p
	p2.M = 200
	ratio := DNDPLatency(p2) / td
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("T̄_D(200)/T̄_D(100) = %v, want ≈ 4", ratio)
	}
}

func TestLatencyCrossoverNearM60(t *testing.T) {
	// Fig. 2(b): T̄_D exceeds T̄_M (ν=2) when m > 60.
	p := Defaults()
	g := p.AvgDegree()
	tm := MNDPLatency(p, 2, g)
	below := p
	below.M = 50
	above := p
	above.M = 80
	if DNDPLatency(below) >= tm {
		t.Fatalf("T̄_D(m=50) = %v >= T̄_M = %v; crossover too early", DNDPLatency(below), tm)
	}
	if DNDPLatency(above) <= tm {
		t.Fatalf("T̄_D(m=80) = %v <= T̄_M = %v; crossover too late", DNDPLatency(above), tm)
	}
}

func TestMNDPLowerBound(t *testing.T) {
	// Degenerate cases.
	if pm := MNDPLowerBound(0, 22.6); pm != 0 {
		t.Fatalf("P̂_M(P̂_D=0) = %v, want 0", pm)
	}
	if pm := MNDPLowerBound(1, 22.6); pm != 1 {
		t.Fatalf("P̂_M(P̂_D=1) = %v, want 1", pm)
	}
	// Monotone in both arguments.
	if MNDPLowerBound(0.3, 22.6) <= MNDPLowerBound(0.2, 22.6) {
		t.Fatal("P̂_M not monotone in P̂_D")
	}
	if MNDPLowerBound(0.2, 30) <= MNDPLowerBound(0.2, 20) {
		t.Fatal("P̂_M not monotone in g")
	}
	// Sparse graph: exponent clamps at 0 → bound 0.
	if pm := MNDPLowerBound(0.5, 0.5); pm != 0 {
		t.Fatalf("P̂_M(sparse) = %v, want 0", pm)
	}
}

func TestMNDPLatencyShape(t *testing.T) {
	p := Defaults()
	g := p.AvgDegree()
	prev := 0.0
	for nu := 1; nu <= 8; nu++ {
		tm := MNDPLatency(p, nu, g)
		if tm <= prev {
			t.Fatalf("T̄_M not increasing at ν=%d", nu)
		}
		prev = tm
	}
	// Fig. 5(b): T̄_M ≈ 4 s at ν = 6 (the signature verification chain
	// dominates). Allow the reproduction band to be generous on the
	// absolute number but pin the order of magnitude.
	tm6 := MNDPLatency(p, 6, g)
	if tm6 < 2 || tm6 > 8 {
		t.Fatalf("T̄_M(ν=6) = %v s, want a few seconds (paper ≈ 4 s)", tm6)
	}
}

func TestCombined(t *testing.T) {
	p := Defaults()
	pHat, tBar := Combined(p)
	pd := DNDPReactive(p)
	if pHat < pd || pHat > 1 {
		t.Fatalf("P̂ = %v must be in [P̂_D=%v, 1]", pHat, pd)
	}
	if tBar < DNDPLatency(p) {
		t.Fatalf("T̄ = %v < T̄_D = %v", tBar, DNDPLatency(p))
	}
	// Defaults: Fig. 2 shows JR-SND with P̂ near 1 and T̄ < 2 s at m=100.
	if pHat < 0.95 {
		t.Fatalf("P̂(defaults) = %v, want > 0.95", pHat)
	}
	if tBar > 2 {
		t.Fatalf("T̄(defaults) = %v s, want < 2 s", tBar)
	}
}

func TestOverlapFactor(t *testing.T) {
	want := 1 - 3*math.Sqrt(3)/(4*math.Pi)
	if math.Abs(OverlapFactor()-want) > 1e-15 {
		t.Fatal("overlap factor mismatch")
	}
	if f := OverlapFactor(); f < 0.58 || f > 0.59 {
		t.Fatalf("overlap factor = %v, want ≈ 0.5865", f)
	}
}

func TestBinomialPMF(t *testing.T) {
	// Exact small case: Binomial(4, 0.5).
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for k, w := range want {
		if got := binomialPMF(4, k, 0.5); math.Abs(got-w) > 1e-12 {
			t.Fatalf("pmf(4,%d,0.5) = %v, want %v", k, got, w)
		}
	}
	if binomialPMF(4, 0, 0) != 1 || binomialPMF(4, 4, 1) != 1 {
		t.Fatal("degenerate p handling wrong")
	}
	if binomialPMF(4, 2, 0) != 0 || binomialPMF(4, 2, 1) != 0 {
		t.Fatal("degenerate p handling wrong")
	}
}
