package analysis

import "math"

// Extensions beyond the paper's evaluation, implementing the future work
// it names: "The extension of JR-SND to an arbitrary number of antennas is
// left as future work" (§IV-A) and "MANET nodes may dynamically adjust ν
// to achieve satisfactory neighbor-discovery probabilities" (§VI-B).

// DNDPLatencyAntennas generalizes Theorem 2 to a receiver with k parallel
// de-spreading chains (k receive antennas/correlator banks). The
// buffer-processing time t_p divides by k, since the m-code correlation
// scan parallelizes across chains:
//
//	T̄_D(k) ≈ ρ·m(3m+4)·N²·l_h/(2k) + 2N·l_f/R + 2t_key.
//
// k = 1 reduces to Theorem 2 (the paper's single receive antenna).
func DNDPLatencyAntennas(p Params, k int) float64 {
	if k < 1 {
		k = 1
	}
	n2 := float64(p.ChipLen) * float64(p.ChipLen)
	identify := p.Rho * float64(p.M) * float64(3*p.M+4) * n2 * p.HelloBits() / (2 * float64(k))
	authTx := 2 * float64(p.ChipLen) * p.AuthBits() / p.ChipRate
	return identify + authTx + 2*p.TKey
}

// HelloRoundsAntennas generalizes the r = ⌈(λ+1)(m+1)/m⌉ broadcast budget:
// with k parallel receive chains the effective λ shrinks k-fold, so the
// initiator needs fewer repetitions to guarantee a buffered copy.
func HelloRoundsAntennas(p Params, k int) int {
	if k < 1 {
		k = 1
	}
	lambda := p.Lambda() / float64(k)
	return int(math.Ceil((lambda + 1) * float64(p.M+1) / float64(p.M)))
}

// MonitorCapacity is the number of session codes a node can monitor in
// real time with k receive chains, assuming one chain per code as in the
// CDMA-receiver literature the paper cites ([12]). It is the natural
// budget for the monitor-expiry policy in the protocol engine.
func MonitorCapacity(k int) int {
	if k < 1 {
		return 1
	}
	return k
}

// AdaptiveNu returns the smallest hop bound ν in [1, maxNu] whose
// predicted combined probability P̂ = P̂_D + (1−P̂_D)·P̂_M(ν) reaches
// target, plus that prediction. P̂_M(ν) extends the Theorem 3 recurrence:
// each extra hop multiplies the candidate relay pool, modeled by
// iterating the two-hop bound on the residual failure probability. When
// even maxNu falls short it returns maxNu and the achieved value.
func AdaptiveNu(p Params, target float64, maxNu int) (nu int, predicted float64) {
	if maxNu < 1 {
		maxNu = 1
	}
	pd := DNDPReactive(p)
	g := p.AvgDegree()
	for nu = 1; nu <= maxNu; nu++ {
		pm := MNDPBoundNu(pd, g, nu)
		predicted = pd + (1-pd)*pm
		if predicted >= target {
			return nu, predicted
		}
	}
	return maxNu, predicted
}

// OptimalL returns the sharing parameter l in [2, maxL] that maximizes the
// reactive-jamming D-NDP probability P̂− at the given parameters, together
// with that probability — the quantitative version of the Fig. 3(a)
// tradeoff (larger l shares more codes but exposes each one to more
// captures). At the Table I defaults the peak sits near l ≈ 100.
func OptimalL(p Params, maxL int) (bestL int, bestP float64) {
	if maxL > p.N {
		maxL = p.N
	}
	bestL = 2
	for l := 2; l <= maxL; l++ {
		trial := p
		trial.L = l
		pd := DNDPReactive(trial)
		if pd > bestP {
			bestP = pd
			bestL = l
		}
	}
	return bestL, bestP
}

// MNDPBoundNu extends the Theorem 3 lower bound beyond ν = 2 by iterating
// it: a ν-hop discovery is a 2-hop discovery where each "edge" is itself
// discoverable with the (ν−1)-hop probability. ν = 1 degenerates to 0 (no
// intermediate hop); ν = 2 is exactly Theorem 3. The paper evaluates ν ≥ 3
// only by simulation ("we have not been able to give a closed-form
// solution to P̂_M for ν ≥ 3"); this recurrence is our analytical
// stand-in. Beyond ν = 2 it is *optimistic* — the independence assumption
// double-counts overlapping relay neighborhoods — so treat it as an upper
// estimate and the Fig. 5(a) campaign as ground truth.
func MNDPBoundNu(pd, g float64, nu int) float64 {
	if nu <= 1 {
		return 0 // M-NDP needs at least one intermediate hop
	}
	edge := pd
	var pm float64
	for h := 2; h <= nu; h++ {
		pm = MNDPLowerBound(edge, g)
		// The edge reliability for the next level counts either a direct
		// or an indirect discovery.
		edge = pd + (1-pd)*pm
	}
	return pm
}
