package analysis

import (
	"math"
	"testing"
)

func TestDNDPLatencyAntennasReducesToTheorem2(t *testing.T) {
	p := Defaults()
	if got, want := DNDPLatencyAntennas(p, 1), DNDPLatency(p); math.Abs(got-want) > 1e-12 {
		t.Fatalf("k=1: %v, want Theorem 2 value %v", got, want)
	}
	// k <= 0 clamps to 1.
	if got := DNDPLatencyAntennas(p, 0); got != DNDPLatency(p) {
		t.Fatalf("k=0 not clamped: %v", got)
	}
}

func TestDNDPLatencyAntennasScaling(t *testing.T) {
	p := Defaults()
	floor := 2*float64(p.ChipLen)*p.AuthBits()/p.ChipRate + 2*p.TKey
	prev := DNDPLatencyAntennas(p, 1)
	for k := 2; k <= 16; k *= 2 {
		cur := DNDPLatencyAntennas(p, k)
		if cur >= prev {
			t.Fatalf("latency not decreasing at k=%d: %v >= %v", k, cur, prev)
		}
		if cur < floor {
			t.Fatalf("latency %v below the tx+key floor %v", cur, floor)
		}
		// The identification term must divide by exactly k.
		ident1 := DNDPLatencyAntennas(p, 1) - floor
		identK := cur - floor
		if math.Abs(identK-ident1/float64(k)) > 1e-9 {
			t.Fatalf("k=%d: identification term %v, want %v", k, identK, ident1/float64(k))
		}
		prev = cur
	}
}

func TestHelloRoundsAntennas(t *testing.T) {
	p := Defaults()
	if got, want := HelloRoundsAntennas(p, 1), p.HelloRounds(); got != want {
		t.Fatalf("k=1: r=%d, want %d", got, want)
	}
	prev := HelloRoundsAntennas(p, 1)
	for k := 2; k <= 8; k++ {
		cur := HelloRoundsAntennas(p, k)
		if cur > prev {
			t.Fatalf("r not non-increasing at k=%d", k)
		}
		if cur < 2 {
			t.Fatalf("r=%d below the (m+1)/m floor", cur)
		}
		prev = cur
	}
}

func TestMonitorCapacity(t *testing.T) {
	if MonitorCapacity(0) != 1 || MonitorCapacity(-3) != 1 {
		t.Fatal("capacity must clamp to 1")
	}
	if MonitorCapacity(4) != 4 {
		t.Fatal("capacity must equal k")
	}
}

func TestMNDPBoundNu(t *testing.T) {
	const g = 22.6
	if MNDPBoundNu(0.5, g, 1) != 0 {
		t.Fatal("ν=1 must give 0 (no intermediate hop)")
	}
	// ν=2 equals Theorem 3 exactly.
	if got, want := MNDPBoundNu(0.3, g, 2), MNDPLowerBound(0.3, g); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ν=2: %v, want Theorem 3 value %v", got, want)
	}
	// Monotone non-decreasing in ν.
	prev := 0.0
	for nu := 2; nu <= 8; nu++ {
		cur := MNDPBoundNu(0.2, g, nu)
		if cur < prev-1e-12 || cur > 1 {
			t.Fatalf("bound not monotone at ν=%d: %v < %v", nu, cur, prev)
		}
		prev = cur
	}
	// At the paper's stressed point (P̂_D≈0.2) the recurrence must reach
	// >0.9 within the ν range the paper explores.
	if MNDPBoundNu(0.22, g, 6) < 0.9 {
		t.Fatalf("recurrence at ν=6 gives %v, expected > 0.9 per Fig. 5(a)", MNDPBoundNu(0.22, g, 6))
	}
}

func TestOptimalLMatchesFig3aPeak(t *testing.T) {
	p := Defaults()
	bestL, bestP := OptimalL(p, 200)
	// Fig. 3(a): the peak sits near l ≈ 100 at the defaults.
	if bestL < 70 || bestL > 130 {
		t.Fatalf("optimal l = %d, want near 100 (Fig. 3(a) peak)", bestL)
	}
	// The optimum dominates the endpoints.
	lo := p
	lo.L = 5
	hi := p
	hi.L = 200
	if bestP <= DNDPReactive(lo) || bestP <= DNDPReactive(hi) {
		t.Fatalf("optimum %v does not dominate the sweep endpoints", bestP)
	}
	// maxL caps at n.
	small := Defaults()
	small.N = 50
	small.Q = 2
	if l, _ := OptimalL(small, 500); l > 50 {
		t.Fatalf("OptimalL exceeded n: %d", l)
	}
}

func TestAdaptiveNu(t *testing.T) {
	p := Defaults()
	p.Q = 100 // P̂_D ≈ 0.2
	// A trivial target is met at ν=1 (D-NDP alone).
	nu, pred := AdaptiveNu(p, 0.1, 8)
	if nu != 1 {
		t.Fatalf("trivial target chose ν=%d, want 1", nu)
	}
	if pred < 0.1 {
		t.Fatalf("prediction %v below target", pred)
	}
	// A stretch target requires more hops; monotone in target.
	prevNu := 0
	for _, target := range []float64{0.3, 0.6, 0.9} {
		nu, pred := AdaptiveNu(p, target, 8)
		if nu < prevNu {
			t.Fatalf("chosen ν not monotone in target: %d < %d", nu, prevNu)
		}
		if pred < target && nu < 8 {
			t.Fatalf("target %v: stopped at ν=%d with prediction %v < target", target, nu, pred)
		}
		prevNu = nu
	}
	// An impossible target saturates at maxNu.
	nu, _ = AdaptiveNu(p, 1.1, 5)
	if nu != 5 {
		t.Fatalf("impossible target chose ν=%d, want maxNu=5", nu)
	}
	// maxNu clamps.
	if nu, _ := AdaptiveNu(p, 0.5, 0); nu < 1 {
		t.Fatal("maxNu=0 not clamped")
	}
}
