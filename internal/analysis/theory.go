package analysis

import (
	"math"
)

// PrShared returns Pr[x] from Eq. (1): the probability that two given
// nodes share exactly x spread codes after the m-round pre-distribution,
// Binomial(m, (l-1)/(n-1)).
func PrShared(p Params, x int) float64 {
	if x < 0 || x > p.M {
		return 0
	}
	pr := float64(p.L-1) / float64(p.N-1)
	return binomialPMF(p.M, x, pr)
}

// Alpha returns α from Eq. (2): the probability that any given pool code is
// compromised when q random nodes are compromised,
// α = 1 − C(n−l, q)/C(n, q).
func Alpha(p Params) float64 {
	return AlphaQ(p, p.Q)
}

// AlphaQ is Alpha for an explicit q.
func AlphaQ(p Params, q int) float64 {
	if q <= 0 {
		return 0
	}
	if q > p.N-p.L {
		return 1
	}
	// C(n−l, q)/C(n, q) = Π_{i=0}^{q−1} (n−l−i)/(n−i), computed in log
	// space for stability.
	logRatio := 0.0
	for i := 0; i < q; i++ {
		logRatio += math.Log(float64(p.N-p.L-i)) - math.Log(float64(p.N-i))
	}
	return 1 - math.Exp(logRatio)
}

// ExpectedCompromisedCodes returns c = s·α, the expected number of pool
// codes the adversary holds.
func ExpectedCompromisedCodes(p Params) float64 {
	return float64(p.S()) * Alpha(p)
}

// JamBeta returns (β, β′) from Theorem 1: the probabilities that a random
// jammer hits the HELLO transmission's code (β) and at least one of the
// three follow-up messages (β′), given c expected compromised codes.
func JamBeta(p Params, c float64) (beta, betaPrime float64) {
	if c <= 0 {
		return 0, 0
	}
	tries := float64(p.Z) * (1 + p.Mu) / p.Mu
	beta = math.Min(tries/c, 1)
	betaPrime = math.Min(3*tries/c, 1)
	return beta, betaPrime
}

// DNDPBounds returns (P̂−, P̂+) from Theorem 1: the D-NDP discovery
// probability under reactive jamming (lower bound) and random jamming
// (upper bound).
func DNDPBounds(p Params) (lower, upper float64) {
	alpha := Alpha(p)
	c := float64(p.S()) * alpha
	beta, betaPrime := JamBeta(p, c)
	jam := beta + betaPrime - beta*betaPrime

	// P̂− = 1 − Σ_x Pr[x]·α^x  = 1 − (1 − p·(1−α))^m  (binomial identity).
	// P̂+ = 1 − Σ_x Pr[x]·(α·jam)^x = 1 − (1 − p·(1−α·jam))^m.
	pShare := float64(p.L-1) / float64(p.N-1)
	lower = 1 - math.Pow(1-pShare*(1-alpha), float64(p.M))
	upper = 1 - math.Pow(1-pShare*(1-alpha*jam), float64(p.M))
	return lower, upper
}

// DNDPReactive returns P̂− (the reactive-jamming D-NDP probability), the
// worst case the paper's figures plot.
func DNDPReactive(p Params) float64 {
	lower, _ := DNDPBounds(p)
	return lower
}

// DNDPLatency returns T̄_D from Theorem 2 (Eq. 3):
// T̄_D ≈ ρ·m(3m+4)·N²·l_h/2 + 2N·l_f/R + 2t_key.
func DNDPLatency(p Params) float64 {
	n2 := float64(p.ChipLen) * float64(p.ChipLen)
	identify := p.Rho * float64(p.M) * float64(3*p.M+4) * n2 * p.HelloBits() / 2
	authTx := 2 * float64(p.ChipLen) * p.AuthBits() / p.ChipRate
	return identify + authTx + 2*p.TKey
}

// OverlapFactor returns (1 − 3√3/(4π)), the expected fraction of a node's
// neighborhood that also neighbors an adjacent node (Theorem 3).
func OverlapFactor() float64 {
	return 1 - 3*math.Sqrt(3)/(4*math.Pi)
}

// MNDPLowerBound returns the Theorem 3 bound for ν = 2:
// P̂_M ≥ 1 − (1 − P̂_D²)^{g·(1−3√3/4π) − 1},
// where g is the average physical degree.
func MNDPLowerBound(pd, g float64) float64 {
	exp := g*OverlapFactor() - 1
	if exp < 0 {
		exp = 0
	}
	return 1 - math.Pow(1-pd*pd, exp)
}

// MNDPLatency returns T̄_M from Theorem 4 for a ν-hop path:
// T̄_M = T_ν + 2ν(ν+1)·t_ver + 2ν·t_sig with
// T_ν = (N/R)·(3ν(ν+1)/2·((g+1)l_id + 2l_sig) + 2ν(l_n + l_ν)).
func MNDPLatency(p Params, nu int, g float64) float64 {
	nuF := float64(nu)
	tnu := float64(p.ChipLen) / p.ChipRate *
		(3*nuF*(nuF+1)/2*((g+1)*float64(p.LenID)+2*float64(p.LenSig)) +
			2*nuF*float64(p.LenNonce+p.LenNu))
	return tnu + 2*nuF*(nuF+1)*p.TVer + 2*nuF*p.TSig
}

// Combined returns the JR-SND totals: P̂ = P̂_D + (1−P̂_D)·P̂_M and
// T̄ = max(T̄_D, T̄_M), using the reactive (worst-case) P̂_D and the
// Theorem 3 bound for P̂_M.
func Combined(p Params) (pHat, tBar float64) {
	pd := DNDPReactive(p)
	g := p.AvgDegree()
	pm := MNDPLowerBound(pd, g)
	pHat = pd + (1-pd)*pm
	tBar = math.Max(DNDPLatency(p), MNDPLatency(p, p.Nu, g))
	return pHat, tBar
}

// binomialPMF returns C(n,k)·p^k·(1−p)^(n−k), computed in log space.
func binomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg := logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lg)
}

func logChoose(n, k int) float64 {
	lgN, _ := math.Lgamma(float64(n + 1))
	lgK, _ := math.Lgamma(float64(k + 1))
	lgNK, _ := math.Lgamma(float64(n - k + 1))
	return lgN - lgK - lgNK
}
