// Package analysis implements the closed-form performance model of §VI-A:
// the code pre-distribution statistics (Eqs. 1–2), the D-NDP discovery
// probability bounds (Theorem 1), the D-NDP latency (Theorem 2), the M-NDP
// discovery probability bound (Theorem 3), and the M-NDP latency
// (Theorem 4), plus the derived protocol constants (λ, r, t_h, t_b, t_p).
package analysis

import (
	"fmt"
	"math"
)

// Params is the full evaluation parameter set of Table I. All lengths are
// in bits, times in seconds, rates in bits per second, distances in meters.
type Params struct {
	N int // number of nodes (n)
	M int // spread codes per node (m)
	L int // nodes sharing each code (l)
	Q int // compromised nodes (q)

	ChipLen  int     // spread-code length N in chips
	ChipRate float64 // transmission speed R (chips/s)
	Rho      float64 // ρ: seconds per bit to correlate two sequences
	Mu       float64 // μ: ECC expansion factor
	Nu       int     // ν: M-NDP hop bound
	Z        int     // z: parallel jamming signals
	Tau      float64 // τ: de-spreading correlation threshold

	LenType  int // l_t: message type identifier bits
	LenID    int // l_id: node ID bits
	LenNonce int // l_n: nonce bits
	LenMAC   int // l_mac (l_f in Table I): MAC bits
	LenNu    int // l_ν: hop-bound field bits
	LenSig   int // l_sig: signature bits

	TKey float64 // t_key: ID-based shared-key computation time
	TSig float64 // t_sig: signing time
	TVer float64 // t_ver: signature verification time

	FieldWidth  float64 // deployment field width (m)
	FieldHeight float64 // deployment field height (m)
	Range       float64 // transmission radius a (m)

	Gamma int // γ: local revocation threshold (§V-D)
}

// Defaults returns Table I's default parameter values. z and γ are not
// listed in Table I; see DESIGN.md §2 for the chosen defaults.
func Defaults() Params {
	return Params{
		N:        2000,
		M:        100,
		L:        40,
		Q:        20,
		ChipLen:  512,
		ChipRate: 22e6,
		Rho:      1e-11,
		Mu:       1,
		Nu:       2,
		Z:        10,
		Tau:      0.15,
		LenType:  5,
		LenID:    16,
		LenNonce: 20,
		LenMAC:   160,
		LenNu:    4,
		LenSig:   672,
		TKey:     11e-3,
		TSig:     5.7e-3,
		TVer:     35.5e-3,

		FieldWidth:  5000,
		FieldHeight: 5000,
		Range:       300,

		Gamma: 5,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.N < 2:
		return fmt.Errorf("analysis: n=%d must be >= 2", p.N)
	case p.M < 1:
		return fmt.Errorf("analysis: m=%d must be >= 1", p.M)
	case p.L < 2 || p.L > p.N:
		return fmt.Errorf("analysis: l=%d must be in [2, n=%d]", p.L, p.N)
	case p.Q < 0 || p.Q > p.N:
		return fmt.Errorf("analysis: q=%d must be in [0, n=%d]", p.Q, p.N)
	case p.ChipLen < 1:
		return fmt.Errorf("analysis: chip length %d must be >= 1", p.ChipLen)
	case p.ChipRate <= 0:
		return fmt.Errorf("analysis: chip rate %v must be positive", p.ChipRate)
	case p.Rho <= 0:
		return fmt.Errorf("analysis: ρ=%v must be positive", p.Rho)
	case p.Mu <= 0:
		return fmt.Errorf("analysis: μ=%v must be positive", p.Mu)
	case p.Nu < 1:
		return fmt.Errorf("analysis: ν=%d must be >= 1", p.Nu)
	case p.Z < 0:
		return fmt.Errorf("analysis: z=%d must be >= 0", p.Z)
	case p.LenType < 1 || p.LenID < 1 || p.LenNonce < 1 || p.LenMAC < 1 || p.LenSig < 1:
		return fmt.Errorf("analysis: message field lengths must be >= 1")
	case p.Range <= 0 || p.FieldWidth <= 0 || p.FieldHeight <= 0:
		return fmt.Errorf("analysis: geometry must be positive")
	}
	return nil
}

// S returns the pool size s = w·m with w = ⌈n/l⌉.
func (p Params) S() int { return ((p.N + p.L - 1) / p.L) * p.M }

// HelloBits returns l_h = (1+μ)(l_t + l_id), the ECC-coded HELLO length.
func (p Params) HelloBits() float64 { return (1 + p.Mu) * float64(p.LenType+p.LenID) }

// AuthBits returns l_f = (1+μ)(l_id + l_n + l_mac), the ECC-coded length of
// each mutual-authentication message.
func (p Params) AuthBits() float64 {
	return (1 + p.Mu) * float64(p.LenID+p.LenNonce+p.LenMAC)
}

// THello returns t_h = l_h·N/R, the airtime of one spread HELLO.
func (p Params) THello() float64 {
	return p.HelloBits() * float64(p.ChipLen) / p.ChipRate
}

// TBuffer returns t_b = (m+1)·t_h, the buffering duration guaranteeing a
// complete HELLO copy.
func (p Params) TBuffer() float64 { return float64(p.M+1) * p.THello() }

// Lambda returns λ = t_p/t_b = ρ·N·m·R, the processing-to-buffering ratio.
func (p Params) Lambda() float64 {
	return p.Rho * float64(p.ChipLen) * float64(p.M) * p.ChipRate
}

// TProcess returns t_p = λ·t_b, the time to scan one buffer against all m
// codes.
func (p Params) TProcess() float64 { return p.Lambda() * p.TBuffer() }

// HelloRounds returns r = ⌈(λ+1)(m+1)/m⌉, the number of HELLO rounds that
// guarantee the receiver buffers a complete copy (§V-B).
func (p Params) HelloRounds() int {
	return int(math.Ceil((p.Lambda() + 1) * float64(p.M+1) / float64(p.M)))
}

// AvgDegree returns the expected physical-neighbor count g = n·π·a²/Area
// (ignoring border effects).
func (p Params) AvgDegree() float64 {
	return float64(p.N) * math.Pi * p.Range * p.Range / (p.FieldWidth * p.FieldHeight)
}
