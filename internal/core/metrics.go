package core

import (
	"fmt"

	"repro/internal/metrics"
)

// coreMetrics is the protocol engine's telemetry handle set, resolved once
// at network construction so the hot paths (every transmission, every
// discovery) update instruments with a single atomic op. All handles come
// from the registry in NetworkConfig.Metrics; when that is nil the whole
// struct is nil and call sites skip instrumentation with one pointer check.
type coreMetrics struct {
	tx     map[int]*metrics.Counter // transmissions by message kind
	jammed map[int]*metrics.Counter // jammed transmissions by message kind

	discoveryLatency *metrics.Histogram
	discoveries      map[DiscoveryMethod]*metrics.Counter

	mndpForwards *metrics.Counter   // M-NDP request relays sent
	mndpFanout   *metrics.Histogram // unicast targets per flood step

	invalidReports *metrics.Counter
	revokedLocal   *metrics.Counter
	revokedGlobal  *metrics.Counter
	expiries       *metrics.Counter
	evictions      *metrics.Counter

	// Robustness instruments: retry/backoff state machine and churn.
	retries        *metrics.Counter
	fallbacks      *metrics.Counter
	halfOpenGC     *metrics.Counter
	crashes        *metrics.Counter
	restarts       *metrics.Counter
	silentExpiries *metrics.Counter

	// Byzantine-defense instruments: the wire codec and the replay/DoS
	// defenses.
	decodeErrors   *metrics.Counter
	replaysDropped *metrics.Counter
	ratelimited    *metrics.Counter
}

// messageKinds lists every protocol message kind, for per-kind counters.
var messageKinds = []int{
	kindHello, kindConfirm, kindAuth1, kindAuth2,
	kindMNDPRequest, kindMNDPResponse, kindSessionHello, kindSessionConfirm,
}

// discoveryLatencyBounds is parameter-independent (exponential from 1 ms to
// ~17 min) so snapshots from campaigns with different Table I settings
// still merge.
var discoveryLatencyBounds = metrics.ExponentialBounds(0.001, 2, 20)

// fanoutBounds covers the M-NDP flood fan-out per step.
var fanoutBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// newCoreMetrics registers the protocol-engine instruments. A nil registry
// returns nil (instrumentation off).
func newCoreMetrics(reg *metrics.Registry) *coreMetrics {
	if reg == nil {
		return nil
	}
	m := &coreMetrics{
		tx:          map[int]*metrics.Counter{},
		jammed:      map[int]*metrics.Counter{},
		discoveries: map[DiscoveryMethod]*metrics.Counter{},

		discoveryLatency: reg.Histogram("jrsnd_core_discovery_latency_seconds",
			"mutual pair-discovery latency", discoveryLatencyBounds),
		mndpForwards: reg.Counter("jrsnd_core_mndp_forwards_total",
			"M-NDP request unicasts sent during flooding"),
		mndpFanout: reg.Histogram("jrsnd_core_mndp_fanout",
			"M-NDP flood fan-out (unicast targets per flood step)", fanoutBounds),
		invalidReports: reg.Counter("jrsnd_core_invalid_reports_total",
			"invalid-message reports feeding the revocation counters (§V-D)"),
		revokedLocal: reg.Counter("jrsnd_core_revocations_local_total",
			"codes locally revoked after gamma invalid messages"),
		revokedGlobal: reg.Counter("jrsnd_core_revocations_global_total",
			"authority-driven network-wide code revocations"),
		expiries: reg.Counter("jrsnd_core_neighbor_expiries_total",
			"logical neighbors dropped by the monitor timeout"),
		evictions: reg.Counter("jrsnd_core_monitor_evictions_total",
			"sessions evicted by the monitor-capacity budget (§IV-A)"),
		retries: reg.Counter("jrsnd_core_handshake_retries_total",
			"D-NDP re-initiations by the retry/backoff state machine"),
		fallbacks: reg.Counter("jrsnd_core_mndp_fallbacks_total",
			"graceful degradations from D-NDP to M-NDP after retry exhaustion"),
		halfOpenGC: reg.Counter("jrsnd_core_halfopen_gc_total",
			"half-open handshake records reclaimed by the session timeout"),
		crashes: reg.Counter("jrsnd_core_node_crashes_total",
			"node crashes injected by churn fault plans"),
		restarts: reg.Counter("jrsnd_core_node_restarts_total",
			"node restarts after churn crashes"),
		silentExpiries: reg.Counter("jrsnd_core_silent_expiries_total",
			"one-sided sessions dropped by the inactivity monitor timeout"),
		decodeErrors: reg.Counter("jrsnd_core_decode_errors_total",
			"received frames rejected by the wire codec (truncated, oversized, or malformed)"),
		replaysDropped: reg.Counter("jrsnd_core_replays_dropped_total",
			"valid-looking AUTH frames dropped by the per-peer replay window"),
		ratelimited: reg.Counter("jrsnd_core_ratelimited_total",
			"handshake-record creations refused by the per-transmitter half-open budget"),
	}
	for _, k := range messageKinds {
		label := fmt.Sprintf("{kind=%q}", messageKindName(k))
		m.tx[k] = reg.Counter("jrsnd_core_tx_total"+label, "protocol transmissions by message kind")
		m.jammed[k] = reg.Counter("jrsnd_core_jammed_total"+label, "jammed transmissions by message kind")
	}
	for _, via := range []DiscoveryMethod{ViaDNDP, ViaMNDP} {
		m.discoveries[via] = reg.Counter(fmt.Sprintf("jrsnd_core_discoveries_total{via=%q}", via),
			"mutual discoveries by protocol")
	}
	return m
}

// onTransmission records one medium transmission and its jam verdict.
func (m *coreMetrics) onTransmission(kind int, jammedVerdict bool) {
	if m == nil {
		return
	}
	m.tx[kind].Inc()
	if jammedVerdict {
		m.jammed[kind].Inc()
	}
}

// onDiscovery records one completed mutual discovery.
func (m *coreMetrics) onDiscovery(via DiscoveryMethod, latencySeconds float64) {
	if m == nil {
		return
	}
	m.discoveries[via].Inc()
	m.discoveryLatency.Observe(latencySeconds)
}

// onMNDPFlood records one flood step's fan-out.
func (m *coreMetrics) onMNDPFlood(targets int) {
	if m == nil || targets == 0 {
		return
	}
	m.mndpForwards.Add(uint64(targets))
	m.mndpFanout.Observe(float64(targets))
}

// onRetry records one D-NDP re-initiation by the backoff state machine.
func (m *coreMetrics) onRetry() {
	if m == nil {
		return
	}
	m.retries.Inc()
}

// onFallback records one graceful degradation to M-NDP.
func (m *coreMetrics) onFallback() {
	if m == nil {
		return
	}
	m.fallbacks.Inc()
}

// onHalfOpenGC records one half-open handshake record reclaimed by the
// session timeout.
func (m *coreMetrics) onHalfOpenGC() {
	if m == nil {
		return
	}
	m.halfOpenGC.Inc()
}

// onDecodeError records one frame the wire codec rejected.
func (m *coreMetrics) onDecodeError() {
	if m == nil {
		return
	}
	m.decodeErrors.Inc()
}

// onReplayDropped records one AUTH frame dropped by the replay window.
func (m *coreMetrics) onReplayDropped() {
	if m == nil {
		return
	}
	m.replaysDropped.Inc()
}

// onRateLimited records one handshake record refused by the half-open
// budget.
func (m *coreMetrics) onRateLimited() {
	if m == nil {
		return
	}
	m.ratelimited.Inc()
}
