package core

import (
	"fmt"

	"repro/internal/ibc"
	"repro/internal/radio"
	"repro/internal/sim"
)

// DoS attack of §V-D: an adversary holding compromised spread codes injects
// fake neighbor-discovery requests to occupy honest nodes with expensive
// verifications. JR-SND bounds the damage: each compromised code can burn
// at most γ verifications per victim before the victim locally revokes it,
// i.e. (l−1)·γ verifications network-wide per code.

// DoSReport aggregates the verification work the attack forced. Injected
// counts frames the attacker actually put on the air — waves scheduled
// after the attacker crashed (churn) do not transmit and are not counted.
type DoSReport struct {
	Injected         int
	KeyComputations  int
	MACVerifications int
	MACFailures      int
	InvalidReports   int
	RevokedCodes     int
}

// RunDoSAttack makes the compromised node `attacker` inject `rounds` waves
// of fake first-authentication messages: one message per (compromised code,
// physical neighbor holding that code) pair per wave, each under a fresh
// forged sender identity so every injection forces a key computation and a
// MAC verification until the victims revoke the code. It returns the work
// counters accumulated by honest nodes during the attack (deltas over the
// run).
func (n *Network) RunDoSAttack(attacker int, rounds int) (DoSReport, error) {
	if attacker < 0 || attacker >= len(n.nodes) {
		return DoSReport{}, fmt.Errorf("core: attacker index %d out of range", attacker)
	}
	if !n.compromisedNodes[attacker] {
		return DoSReport{}, fmt.Errorf("core: node %d is not compromised; compromise it first", attacker)
	}
	if rounds < 1 {
		return DoSReport{}, fmt.Errorf("core: rounds=%d must be >= 1", rounds)
	}
	before := n.aggregateStats()
	att := n.nodes[attacker]
	p := n.params
	bits := p.LenID + p.LenNonce + p.LenMAC
	fakeID := uint16(60000)
	injected := 0
	interval := sim.Time(p.TKey) // pace waves roughly at victim work rate
	for round := 0; round < rounds; round++ {
		at := interval * sim.Time(round)
		for _, c := range att.codes {
			for _, victim := range n.graph.Adj[attacker] {
				vn := n.nodes[victim]
				if vn.compromised || !vn.codeSet[c] {
					continue
				}
				sender := ibc.NodeID(fakeID)
				fakeID++
				c, victim := c, victim
				garbageMAC := make([]byte, p.LenMAC/8)
				for i := range garbageMAC {
					garbageMAC[i] = byte(att.rng.Intn(256))
				}
				nonce := att.newNonce()
				n.engine.MustSchedule(at, func() {
					// A crashed attacker radio transmits nothing: waves
					// scheduled past a mid-attack churn crash must not
					// count as injected work.
					if att.down {
						return
					}
					injected++
					_ = n.send(attacker, victim, radio.Message{
						Kind:        kindAuth1,
						Code:        c,
						PayloadBits: bits,
						Payload: authPayload{
							Sender: sender,
							Peer:   ibc.NodeID(victim),
							Nonce:  nonce,
							MAC:    garbageMAC,
						},
					})
				})
			}
		}
	}
	if err := n.engine.Run(); err != nil {
		return DoSReport{}, err
	}
	after := n.aggregateStats()
	return DoSReport{
		Injected:         injected,
		KeyComputations:  after.KeyComputations - before.KeyComputations,
		MACVerifications: after.MACVerifications - before.MACVerifications,
		MACFailures:      after.MACFailures - before.MACFailures,
		InvalidReports:   after.InvalidReports - before.InvalidReports,
		RevokedCodes:     after.RevokedCodes - before.RevokedCodes,
	}, nil
}

// aggregateStats sums honest-node work counters.
func (n *Network) aggregateStats() NodeStats {
	var total NodeStats
	for _, nd := range n.nodes {
		if nd.compromised {
			continue
		}
		s := nd.Stats()
		total.KeyComputations += s.KeyComputations
		total.MACVerifications += s.MACVerifications
		total.MACFailures += s.MACFailures
		total.SigVerifications += s.SigVerifications
		total.SigFailures += s.SigFailures
		total.InvalidReports += s.InvalidReports
		total.RevokedCodes += s.RevokedCodes
	}
	return total
}

// AggregateStats exposes the network-wide honest-node work counters.
func (n *Network) AggregateStats() NodeStats { return n.aggregateStats() }
