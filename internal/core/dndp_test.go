package core

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/field"
	"repro/internal/ibc"
	"repro/internal/sim"
)

// smallParams returns a compact deployment for protocol tests: every node
// shares every code (l = n), so discovery structure is fully controlled by
// jamming and compromise.
func smallParams(n, m int) analysis.Params {
	p := analysis.Defaults()
	p.N = n
	p.M = m
	p.L = n
	p.Q = 0
	p.FieldWidth, p.FieldHeight = 1000, 1000
	p.Range = 300
	return p
}

// clusterPositions places all n nodes within mutual range.
func clusterPositions(n int) []field.Point {
	pts := make([]field.Point, n)
	for i := range pts {
		pts[i] = field.Point{X: 100 + float64(i%5)*30, Y: 100 + float64(i/5)*30}
	}
	return pts
}

func TestDNDPTwoNodesDiscoverWithoutJamming(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(2, 5),
		Seed:      1,
		Jammer:    JamNone,
		Positions: clusterPositions(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if !net.DiscoveredPair(0, 1) {
		t.Fatal("physical neighbors with shared codes failed to discover each other")
	}
	ds := net.Discoveries()
	if len(ds) != 1 {
		t.Fatalf("got %d discoveries, want 1", len(ds))
	}
	if ds[0].Via != ViaDNDP {
		t.Fatalf("Via = %v, want D-NDP", ds[0].Via)
	}
	// Both directions authenticated with the same pairwise key.
	var key0, key1 [32]byte
	for _, nb := range net.Node(0).Neighbors() {
		key0 = nb.SessionKey
	}
	for _, nb := range net.Node(1).Neighbors() {
		key1 = nb.SessionKey
	}
	if key0 != key1 {
		t.Fatal("endpoints derived different session keys")
	}
}

func TestDNDPOutOfRangeNodesDoNotDiscover(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Params: smallParams(2, 5),
		Seed:   2,
		Jammer: JamNone,
		Positions: []field.Point{
			{X: 100, Y: 100},
			{X: 900, Y: 900}, // far beyond the 300 m range
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if len(net.Discoveries()) != 0 {
		t.Fatal("out-of-range nodes discovered each other")
	}
}

func TestDNDPFailsWhenAllCodesCompromisedUnderReactiveJamming(t *testing.T) {
	// With l = n every node holds the same code set, so compromising one
	// node compromises the entire pool and reactive jamming kills all
	// D-NDP traffic among the remaining nodes.
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(3, 5),
		Seed:      3,
		Jammer:    JamReactive,
		Positions: clusterPositions(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Compromise([]int{2}); err != nil {
		t.Fatal(err)
	}
	if net.CompromisedCodes() != net.Pool().S() {
		t.Fatalf("compromised %d codes, want the whole pool %d", net.CompromisedCodes(), net.Pool().S())
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if net.DiscoveredPair(0, 1) {
		t.Fatal("discovery succeeded although every code is jammed")
	}
}

func TestDNDPSucceedsWithOneCleanSharedCode(t *testing.T) {
	// Theorem 1 reactive bound is exact: one non-compromised shared code
	// suffices. Build two pools' worth of nodes where codes are partially
	// compromised: n=4, l=2 → w=2 subsets per round, so node pairs share
	// only some codes. Compromise node 3 and check pairs that still share
	// a clean code discover each other.
	p := smallParams(4, 8)
	p.L = 2
	net, err := NewNetwork(NetworkConfig{
		Params:    p,
		Seed:      4,
		Jammer:    JamReactive,
		Positions: clusterPositions(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Compromise([]int{3}); err != nil {
		t.Fatal(err)
	}
	compromised := map[int32]bool{}
	for _, c := range net.Pool().Codes(3) {
		compromised[int32(c)] = true
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			clean := 0
			for _, c := range net.Pool().Shared(a, b) {
				if !compromised[int32(c)] {
					clean++
				}
			}
			got := net.DiscoveredPair(a, b)
			want := clean > 0
			if got != want {
				t.Errorf("pair (%d,%d): discovered=%v, want %v (clean shared codes: %d)",
					a, b, got, want, clean)
			}
		}
	}
}

func TestRedundancyDefeatsIntelligentJammer(t *testing.T) {
	// §V-B: under the intelligent attack (HELLO passes, later messages
	// reactively jammed), a pair sharing x codes of which at least one is
	// clean succeeds *only* thanks to the all-codes redundancy design.
	// With redundancy disabled, the responder picks one random code and
	// fails whenever it picks a compromised one.
	run := func(disable bool, seed int64) (succ, total int) {
		// l = 3 so a code shared by an honest pair can have the
		// compromised node as its third holder (mixed pairs need that).
		p := smallParams(6, 10)
		p.L = 3
		net, err := NewNetwork(NetworkConfig{
			Params:            p,
			Seed:              seed,
			Jammer:            JamIntelligent,
			Positions:         clusterPositions(6),
			DisableRedundancy: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Compromise([]int{5}); err != nil {
			t.Fatal(err)
		}
		compromised := map[int32]bool{}
		for _, c := range net.Pool().Codes(5) {
			compromised[int32(c)] = true
		}
		if err := net.RunDNDP(1); err != nil {
			t.Fatal(err)
		}
		for a := 0; a < 5; a++ {
			for b := a + 1; b < 5; b++ {
				// Only count pairs with both clean and compromised shared
				// codes — the interesting mixed case.
				clean, dirty := 0, 0
				for _, c := range net.Pool().Shared(a, b) {
					if compromised[int32(c)] {
						dirty++
					} else {
						clean++
					}
				}
				if clean == 0 || dirty == 0 {
					continue
				}
				total++
				if net.DiscoveredPair(a, b) {
					succ++
				}
			}
		}
		return succ, total
	}
	var withSucc, withTotal, withoutSucc, withoutTotal int
	for seed := int64(0); seed < 40; seed++ {
		s, n := run(false, 100+seed)
		withSucc += s
		withTotal += n
		s, n = run(true, 100+seed)
		withoutSucc += s
		withoutTotal += n
	}
	if withTotal == 0 || withoutTotal == 0 {
		t.Fatal("no mixed-code pairs generated; the topology must produce them")
	}
	if withSucc != withTotal {
		t.Fatalf("with redundancy: %d/%d mixed pairs succeeded, want all", withSucc, withTotal)
	}
	// Without redundancy each of the two discovery directions picks one
	// random code, so a mixed pair with one dirty code among x shared
	// still fails with probability ≈ (d/x)². Demand real failures and a
	// strict gap to the redundant design.
	withoutRate := float64(withoutSucc) / float64(withoutTotal)
	if withoutSucc >= withoutTotal {
		t.Fatalf("without redundancy no mixed pair failed (%d/%d); the intelligent attack had no effect", withoutSucc, withoutTotal)
	}
	if withoutRate > 0.95 {
		t.Fatalf("without redundancy success rate %.3f too close to 1; expected a visible gap", withoutRate)
	}
}

func TestDNDPLatencyMatchesTheorem2(t *testing.T) {
	// With processing delays modeled, the measured mean latency over many
	// two-node runs must track Eq. (3). Use a small m to keep t_p small.
	p := smallParams(2, 10)
	var sum float64
	const runs = 60
	completed := 0
	for seed := int64(0); seed < runs; seed++ {
		net, err := NewNetwork(NetworkConfig{
			Params:                p,
			Seed:                  500 + seed,
			Jammer:                JamNone,
			Positions:             clusterPositions(2),
			ModelProcessingDelays: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Single initiator so the latency is a clean Theorem-2 sample.
		net.Engine().MustSchedule(0, func() { net.Node(0).initiateDNDP() })
		if err := net.Engine().Run(); err != nil {
			t.Fatal(err)
		}
		ds := net.Discoveries()
		if len(ds) != 1 {
			t.Fatalf("seed %d: %d discoveries", seed, len(ds))
		}
		sum += float64(ds[0].Latency)
		completed++
	}
	got := sum / float64(completed)
	want := analysis.DNDPLatency(p)
	if math.Abs(got-want) > 0.25*want {
		t.Fatalf("mean latency = %v s, Theorem 2 predicts %v s", got, want)
	}
}

func TestDNDPUnderRandomJammer(t *testing.T) {
	// Event-engine coverage for the random jammer: with a weak z the
	// discovery rate must sit between the Theorem-1 bounds (and above the
	// reactive outcome on the same seeds).
	p := smallParams(8, 8)
	p.L = 4
	p.Z = 1
	var randomSucc, reactiveSucc, edges int
	for seed := int64(0); seed < 15; seed++ {
		for _, jam := range []JammerKind{JamRandom, JamReactive} {
			net, err := NewNetwork(NetworkConfig{
				Params:    p,
				Seed:      200 + seed,
				Jammer:    jam,
				Positions: clusterPositions(8),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := net.Compromise([]int{7}); err != nil {
				t.Fatal(err)
			}
			if err := net.RunDNDP(1); err != nil {
				t.Fatal(err)
			}
			succ := 0
			for a := 0; a < 7; a++ {
				for b := a + 1; b < 7; b++ {
					if net.DiscoveredPair(a, b) {
						succ++
					}
				}
			}
			if jam == JamRandom {
				randomSucc += succ
				edges += 21
			} else {
				reactiveSucc += succ
			}
		}
	}
	if randomSucc < reactiveSucc {
		t.Fatalf("random jamming (%d) outperformed by reactive (%d)?", randomSucc, reactiveSucc)
	}
	if randomSucc == 0 || randomSucc > edges {
		t.Fatalf("random-jammer successes %d out of range (0, %d]", randomSucc, edges)
	}
}

func TestCompromisedNodesDoNotParticipate(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(3, 5),
		Seed:      6,
		Jammer:    JamNone,
		Positions: clusterPositions(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Compromise([]int{1}); err != nil {
		t.Fatal(err)
	}
	if !net.Node(1).Compromised() {
		t.Fatal("node 1 not marked compromised")
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if net.DiscoveredPair(0, 1) || net.DiscoveredPair(1, 2) {
		t.Fatal("a compromised node completed discovery")
	}
	if !net.DiscoveredPair(0, 2) {
		t.Fatal("honest pair failed to discover")
	}
}

func TestCompromiseValidation(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(2, 3),
		Seed:      7,
		Jammer:    JamNone,
		Positions: clusterPositions(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Compromise([]int{5}); err == nil {
		t.Fatal("accepted out-of-range index")
	}
	if _, err := net.CompromiseRandom(-1); err == nil {
		t.Fatal("accepted negative q")
	}
	if _, err := net.CompromiseRandom(3); err == nil {
		t.Fatal("accepted q > n")
	}
	// Idempotent double compromise.
	if err := net.Compromise([]int{0}); err != nil {
		t.Fatal(err)
	}
	if err := net.Compromise([]int{0}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkConfigValidation(t *testing.T) {
	bad := smallParams(2, 3)
	bad.M = 0
	if _, err := NewNetwork(NetworkConfig{Params: bad, Seed: 1}); err == nil {
		t.Fatal("accepted invalid params")
	}
	p := smallParams(2, 3)
	if _, err := NewNetwork(NetworkConfig{Params: p, Seed: 1, Positions: clusterPositions(5)}); err == nil {
		t.Fatal("accepted position/count mismatch")
	}
	if _, err := NewNetwork(NetworkConfig{Params: p, Seed: 1, Jammer: JammerKind(99)}); err == nil {
		t.Fatal("accepted unknown jammer kind")
	}
}

func TestNodeAccessors(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(3, 4),
		Seed:      8,
		Jammer:    JamNone,
		Positions: clusterPositions(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", net.NumNodes())
	}
	nd := net.Node(2)
	if nd.ID() != ibc.NodeID(2) || nd.Index() != 2 {
		t.Fatal("node identity wrong")
	}
	if nd.IsLogicalNeighbor(0) {
		t.Fatal("fresh node has neighbors")
	}
	if got := len(net.Positions()); got != 3 {
		t.Fatalf("Positions len = %d", got)
	}
	if net.PhysicalGraph().AvgDegree() != 2 {
		t.Fatalf("cluster of 3 should be complete: avg degree %v", net.PhysicalGraph().AvgDegree())
	}
	if net.Params().N != 3 {
		t.Fatal("Params not propagated")
	}
	var zero sim.Time
	if net.Engine().Now() != zero {
		t.Fatal("fresh engine clock nonzero")
	}
}
