package core

import (
	"bytes"
	"testing"

	"repro/internal/adversary"
	"repro/internal/metrics"
	"repro/internal/radio"
	"repro/internal/wire"
)

// byzantineNet builds a 4-node cluster with the Byzantine defenses and
// metrics enabled. Discovery has not run yet.
func byzantineNet(t *testing.T, seed int64) (*Network, *metrics.Registry) {
	t.Helper()
	p := smallParams(4, 5)
	reg := metrics.New()
	net, err := NewNetwork(NetworkConfig{
		Params:    p,
		Seed:      seed,
		Jammer:    JamNone,
		Positions: clusterPositions(4),
		Defense:   DefaultDefenseConfig(p),
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, reg
}

func requireAllDiscovered(t *testing.T, net *Network, n int) {
	t.Helper()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !net.DiscoveredPair(a, b) {
				t.Fatalf("pair (%d,%d) not discovered", a, b)
			}
		}
	}
}

// TestReplayedAuthDroppedByNonceCache is the acceptance criterion: a
// byte-exact recording of a valid AUTH1, reinjected after the victim's
// handshake record was reaped, must be dropped by the replay window and
// counted — not re-open a handshake or force a key computation.
func TestReplayedAuthDroppedByNonceCache(t *testing.T) {
	net, reg := byzantineNet(t, 71)

	var recorded *radio.Message
	net.medium.SetInterceptor(radio.InterceptorFunc(func(from, to int, msg radio.Message) radio.Message {
		if recorded == nil && msg.Kind == wire.KindAuth1 {
			cp := msg
			cp.Payload = append([]byte(nil), msg.Payload.([]byte)...)
			recorded = &cp
		}
		return msg
	}))
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	net.medium.SetInterceptor(nil)
	requireAllDiscovered(t, net, 4) // defenses must not break honest discovery
	if recorded == nil {
		t.Fatal("no AUTH1 frame captured")
	}
	_, payload, err := wire.Decode(recorded.Payload.([]byte), net.limits)
	if err != nil {
		t.Fatal(err)
	}
	auth := payload.(wire.Auth)
	victim := net.Node(int(auth.Peer))

	// Simulate the passage of time: the half-open GC reaped the completed
	// handshake record, but the nonce window remembers the verified nonce.
	delete(victim.responders, auth.Sender)
	keysBefore := victim.Stats().KeyComputations

	adv := 0
	for adv == int(auth.Sender) || adv == int(auth.Peer) {
		adv++
	}
	if err := net.medium.Broadcast(adv, *recorded); err != nil {
		t.Fatal(err)
	}
	if err := net.engine.Run(); err != nil {
		t.Fatal(err)
	}

	if got := reg.Snapshot().Counters["jrsnd_core_replays_dropped_total"]; got < 1 {
		t.Fatalf("replays_dropped = %v, want >= 1", got)
	}
	if victim.responders[auth.Sender] != nil {
		t.Fatal("replayed AUTH1 re-opened a handshake record")
	}
	if got := victim.Stats().KeyComputations; got != keysBefore {
		t.Fatalf("replay forced %d key computations", got-keysBefore)
	}
}

// TestArmAdversaryReplayEndToEnd drives the Replay behavior through
// ArmAdversary: the compromised node records AUTH frames off the air and
// reinjects them; the protocol must finish discovery untouched and the
// adversary's counters must show real activity.
func TestArmAdversaryReplayEndToEnd(t *testing.T) {
	net, _ := byzantineNet(t, 72)
	b, err := net.ArmAdversary(3, adversary.Replay)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	requireAllDiscovered(t, net, 3)
	c := b.Counts()
	if c.Recorded == 0 || c.Injected == 0 {
		t.Fatalf("replay adversary idle: %+v", c)
	}
	if c.Injected > c.Recorded {
		t.Fatalf("injected %d frames but only recorded %d", c.Injected, c.Recorded)
	}
}

// TestFloodRateLimited: the §V-D flood through the codec — forged AUTH1
// waves under fresh identities — must hit the per-transmitter half-open
// budget: the victims refuse most records, count the refusals, and honest
// discovery still completes.
func TestFloodRateLimited(t *testing.T) {
	net, reg := byzantineNet(t, 73)
	b, err := net.ArmAdversary(3, adversary.Flood)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	requireAllDiscovered(t, net, 3)
	if c := b.Counts(); c.Injected == 0 {
		t.Fatalf("flooder injected nothing: %+v", c)
	}
	if got := reg.Snapshot().Counters["jrsnd_core_ratelimited_total"]; got < 1 {
		t.Fatalf("ratelimited = %v, want >= 1", got)
	}
	burst := net.cfg.Defense.HalfOpenBurst
	for i := 0; i < 3; i++ {
		nd := net.Node(i)
		// Per victim: at most `burst` flood records (+ small refill) from the
		// attacker's radio, plus one record per honest peer.
		if got, limit := len(nd.responders), burst+2+3; got > limit {
			t.Fatalf("node %d holds %d handshake records, want <= %d", i, got, limit)
		}
		for id := range nd.neighbors {
			if int(id) >= 50000 {
				t.Fatalf("node %d accepted forged identity %d", i, id)
			}
		}
	}
}

// TestForgerKilledAtMAC: forged AUTH1 frames — structurally perfect,
// cryptographically wrong — must die at MAC verification and never
// produce a logical neighbor.
func TestForgerKilledAtMAC(t *testing.T) {
	net, _ := byzantineNet(t, 74)
	b, err := net.ArmAdversary(3, adversary.Forge)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if c := b.Counts(); c.Injected == 0 {
		t.Fatalf("forger injected nothing: %+v", c)
	}
	macFailures := 0
	for i := 0; i < 3; i++ {
		macFailures += net.Node(i).Stats().MACFailures
		for id := range net.Node(i).neighbors {
			if int(id) >= 50000 {
				t.Fatalf("node %d accepted forged identity %d", i, id)
			}
		}
	}
	if macFailures == 0 {
		t.Fatal("no forgery reached MAC verification")
	}
}

// TestBitFlipperCountsDecodeErrors: frames corrupted in flight must be
// rejected by the decoder (or die at MAC/signature checks) and counted —
// never crash the engine or poison protocol state.
func TestBitFlipperCountsDecodeErrors(t *testing.T) {
	net, reg := byzantineNet(t, 75)
	b, err := net.ArmAdversary(3, adversary.BitFlip)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if c := b.Counts(); c.Corrupted == 0 {
		t.Fatalf("bitflipper corrupted nothing: %+v", c)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["jrsnd_core_decode_errors_total"]; got < 1 {
		t.Fatalf("decode_errors = %v, want >= 1", got)
	}
}

// TestDecoderCopyDefeatsMutateAfterDeliver is the aliasing regression: a
// Byzantine transmitter that keeps a reference to the delivered frame and
// scribbles over it after the fact must not be able to corrupt victim
// state — every decoded field is a copy.
func TestDecoderCopyDefeatsMutateAfterDeliver(t *testing.T) {
	net, _ := byzantineNet(t, 76)

	var live []byte     // the exact slice handed down the receive path
	var pristine []byte // a copy for comparison
	net.medium.SetInterceptor(radio.InterceptorFunc(func(from, to int, msg radio.Message) radio.Message {
		if live == nil {
			if frame, ok := msg.Payload.([]byte); ok && msg.Kind == wire.KindAuth1 {
				live = frame
				pristine = append([]byte(nil), frame...)
			}
		}
		return msg
	}))
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	net.medium.SetInterceptor(nil)
	requireAllDiscovered(t, net, 4)
	if live == nil {
		t.Fatal("no AUTH1 frame captured")
	}
	_, payload, err := wire.Decode(pristine, net.limits)
	if err != nil {
		t.Fatal(err)
	}
	auth := payload.(wire.Auth)
	victim := net.Node(int(auth.Peer))

	// The Byzantine sender mutates its buffer post-send.
	for i := range live {
		live[i] = 0xFF
	}

	// The victim's replay window recorded the nonce at verification time;
	// it must still hold the original bytes, not the scribbled ones.
	w := victim.seenNonces[auth.Sender]
	if w == nil || !w.contains(auth.Nonce) {
		t.Fatal("victim's nonce window lost the verified nonce after the sender mutated its buffer")
	}
	if w.contains(bytes.Repeat([]byte{0xFF}, len(auth.Nonce))) && !bytes.Equal(auth.Nonce, bytes.Repeat([]byte{0xFF}, len(auth.Nonce))) {
		t.Fatal("victim's nonce window aliases the mutated frame buffer")
	}
	if !victim.IsLogicalNeighbor(auth.Sender) {
		t.Fatal("victim lost a discovered neighbor after the sender mutated its buffer")
	}
}
