package core

import (
	"encoding/json"
	"testing"

	"repro/internal/codepool"
	"repro/internal/field"
	"repro/internal/metrics"
	"repro/internal/radio"
	"repro/internal/sim"
)

// allPoolCodes lists every code in the network's pool.
func allPoolCodes(net *Network) []codepool.CodeID {
	codes := make([]codepool.CodeID, net.Pool().S())
	for i := range codes {
		codes[i] = codepool.CodeID(i)
	}
	return codes
}

func TestRetryConfigValidation(t *testing.T) {
	bad := []RetryConfig{
		{SessionTimeout: 0, MaxAttempts: 1},
		{SessionTimeout: 1, MaxAttempts: 0},
		{SessionTimeout: 1, MaxAttempts: 1, BackoffBase: -1},
	}
	for i, cfg := range bad {
		cfg := cfg
		_, err := NewNetwork(NetworkConfig{
			Params:    smallParams(2, 5),
			Seed:      1,
			Positions: clusterPositions(2),
			Retry:     &cfg,
		})
		if err == nil {
			t.Fatalf("config %d: invalid RetryConfig accepted", i)
		}
	}
	if err := DefaultRetryConfig(smallParams(2, 5)).validate(); err != nil {
		t.Fatalf("DefaultRetryConfig invalid: %v", err)
	}
}

func TestClockSkewSpreadValidationAndBounds(t *testing.T) {
	if _, err := NewNetwork(NetworkConfig{
		Params:          smallParams(2, 5),
		Seed:            1,
		Positions:       clusterPositions(2),
		ClockSkewSpread: 1.0,
	}); err == nil {
		t.Fatal("ClockSkewSpread = 1.0 accepted")
	}
	net, err := NewNetwork(NetworkConfig{
		Params:          smallParams(4, 5),
		Seed:            1,
		Positions:       clusterPositions(4),
		ClockSkewSpread: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < net.NumNodes(); i++ {
		s := net.Node(i).ClockSkew()
		if s < 0.8 || s > 1.2 {
			t.Fatalf("node %d skew %v outside [0.8, 1.2]", i, s)
		}
	}
}

// TestHalfOpenLeakReapedByGC is the regression test for the half-open
// session leak: under the intelligent attack with the whole pool
// compromised, HELLOs pass but every CONFIRM/AUTH is destroyed, so the
// paper's happy-path engine strands responder state forever. The retry
// state machine's session-timeout GC must reap all of it.
func TestHalfOpenLeakReapedByGC(t *testing.T) {
	build := func(retry *RetryConfig, reg *metrics.Registry) *Network {
		net, err := NewNetwork(NetworkConfig{
			Params:    smallParams(4, 5),
			Seed:      7,
			Jammer:    JamIntelligent,
			Positions: clusterPositions(4),
			Retry:     retry,
			Metrics:   reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.CompromiseCodes(allPoolCodes(net)); err != nil {
			t.Fatal(err)
		}
		return net
	}
	leak := func(net *Network) int {
		total := 0
		for i := 0; i < net.NumNodes(); i++ {
			total += net.Node(i).HalfOpenOlderThan(0)
		}
		return total
	}

	seed := build(nil, nil)
	if err := seed.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if got := leak(seed); got == 0 {
		t.Fatal("seed behavior expected to strand half-open responder state under the intelligent attack")
	}

	reg := metrics.New()
	hardened := build(DefaultRetryConfig(smallParams(4, 5)), reg)
	if err := hardened.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if got := leak(hardened); got != 0 {
		t.Fatalf("retry GC left %d half-open records at quiescence", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["jrsnd_core_halfopen_gc_total"] == 0 {
		t.Fatal("half-open GC counter never incremented")
	}
	if snap.Counters["jrsnd_core_handshake_retries_total"] == 0 {
		t.Fatal("retry counter never incremented")
	}
}

// TestRetryFallbackRecoversDiscovery is the acceptance test: a fault
// schedule the seed protocol cannot survive (every CONFIRM from nodes 0
// and 1 destroyed, so D-NDP between them can never complete) is recovered
// by the hardened engine — retries exhaust the budget, the nodes degrade
// to M-NDP through node 2, and the pair completes discovery.
func TestRetryFallbackRecoversDiscovery(t *testing.T) {
	dropConfirms := radio.InjectorFunc(func(from, to int, msg radio.Message) radio.FaultDecision {
		if msg.Kind == KindConfirm && from <= 1 {
			return radio.FaultDecision{Drop: true}
		}
		return radio.FaultDecision{}
	})
	build := func(retry *RetryConfig, reg *metrics.Registry) *Network {
		net, err := NewNetwork(NetworkConfig{
			Params:    smallParams(3, 5),
			Seed:      11,
			Positions: clusterPositions(3),
			Faults:    dropConfirms,
			Retry:     retry,
			Metrics:   reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return net
	}

	seed := build(nil, nil)
	if err := seed.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if seed.DiscoveredPair(0, 1) {
		t.Fatal("fault schedule too weak: seed protocol discovered the pair anyway")
	}

	reg := metrics.New()
	hardened := build(DefaultRetryConfig(smallParams(3, 5)), reg)
	if err := hardened.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if !hardened.DiscoveredPair(0, 1) {
		t.Fatal("retry + M-NDP fallback failed to recover discovery of the faulted pair")
	}
	via := DiscoveryMethod(0)
	for _, d := range hardened.Discoveries() {
		if d.A == 0 && d.B == 1 {
			via = d.Via
		}
	}
	if via != ViaMNDP {
		t.Fatalf("faulted pair discovered via %v, want M-NDP fallback", via)
	}
	if reg.Snapshot().Counters["jrsnd_core_mndp_fallbacks_total"] == 0 {
		t.Fatal("fallback counter never incremented")
	}
	leak := 0
	for i := 0; i < hardened.NumNodes(); i++ {
		leak += hardened.Node(i).HalfOpenOlderThan(0)
	}
	if leak != 0 {
		t.Fatalf("%d half-open records left at quiescence", leak)
	}
}

// TestNetworkSameSeedDeterminism runs the full hardened stack twice with
// identical seeds — pulse jamming, channel faults, retries, skewed clocks,
// modeled delays — and requires byte-identical discovery records and
// metric snapshots.
func TestNetworkSameSeedDeterminism(t *testing.T) {
	run := func() ([]byte, []byte) {
		faultRng := sim.NewStreams(99).Get("channel-faults")
		loss := radio.InjectorFunc(func(from, to int, msg radio.Message) radio.FaultDecision {
			return radio.FaultDecision{Drop: faultRng.Float64() < 0.15}
		})
		reg := metrics.New()
		net, err := NewNetwork(NetworkConfig{
			Params:                smallParams(8, 5),
			Seed:                  42,
			Jammer:                JamPulse,
			Positions:             clusterPositions(8),
			Faults:                loss,
			Retry:                 DefaultRetryConfig(smallParams(8, 5)),
			ClockSkewSpread:       0.1,
			ModelProcessingDelays: true,
			Metrics:               reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.CompromiseRandom(2); err != nil {
			t.Fatal(err)
		}
		if err := net.RunDNDP(1); err != nil {
			t.Fatal(err)
		}
		if err := net.RunMNDP(1); err != nil {
			t.Fatal(err)
		}
		pairs, err := json.Marshal(net.Discoveries())
		if err != nil {
			t.Fatal(err)
		}
		s := reg.Snapshot()
		// The virtual/wall speed ratio measures the host, not the run.
		delete(s.Gauges, "jrsnd_sim_virtual_wall_ratio")
		snap, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return pairs, snap
	}
	pairs1, snap1 := run()
	pairs2, snap2 := run()
	if string(pairs1) != string(pairs2) {
		t.Fatalf("same seed produced different discoveries:\n%s\nvs\n%s", pairs1, pairs2)
	}
	if string(snap1) != string(snap2) {
		t.Fatalf("same seed produced different metric snapshots:\n%s\nvs\n%s", snap1, snap2)
	}
}

// TestChurnCrashRestartRediscovery drives a crash → expire → restart →
// re-discover cycle and checks that the pair ledger gains exactly one new
// record per re-formed link and none for links that never broke.
func TestChurnCrashRestartRediscovery(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(3, 5),
		Seed:      5,
		Positions: clusterPositions(3),
		Retry:     DefaultRetryConfig(smallParams(3, 5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if len(net.Discoveries()) != 3 {
		t.Fatalf("initial discoveries = %d, want 3", len(net.Discoveries()))
	}

	if err := net.CrashNode(0); err != nil {
		t.Fatal(err)
	}
	if !net.Node(0).Down() {
		t.Fatal("node 0 not down after crash")
	}
	if got := len(net.Node(0).Neighbors()); got != 0 {
		t.Fatalf("crashed node kept %d neighbors", got)
	}
	if dropped := net.ExpireStaleNeighbors(); dropped != 2 {
		t.Fatalf("ExpireStaleNeighbors dropped %d links, want 2 (0-1, 0-2)", dropped)
	}
	if net.Node(1).IsLogicalNeighbor(0) || net.Node(2).IsLogicalNeighbor(0) {
		t.Fatal("peers kept the crashed node as a logical neighbor past the monitor timeout")
	}

	// A discovery round while the node is down must not duplicate the
	// still-live 1-2 pair record.
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if len(net.Discoveries()) != 3 {
		t.Fatalf("discovery round while node down grew the ledger to %d, want 3", len(net.Discoveries()))
	}

	if err := net.RestartNode(0); err != nil {
		t.Fatal(err)
	}
	if err := net.RunDiscoveryFor(0); err != nil {
		t.Fatal(err)
	}
	if !net.DiscoveredPair(0, 1) || !net.DiscoveredPair(0, 2) {
		t.Fatal("restarted node failed to re-discover its neighbors")
	}
	counts := map[[2]int]int{}
	for _, d := range net.Discoveries() {
		counts[[2]int{int(d.A), int(d.B)}]++
	}
	want := map[[2]int]int{{0, 1}: 2, {0, 2}: 2, {1, 2}: 1}
	for pair, n := range want {
		if counts[pair] != n {
			t.Fatalf("pair %v has %d records, want %d (ledger %v)", pair, counts[pair], n, counts)
		}
	}

	// Late join under the same churned deployment: the joiner discovers
	// everyone exactly once.
	idx, err := net.JoinNode(field.Point{X: 130, Y: 130})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDiscoveryFor(idx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < idx; i++ {
		if !net.DiscoveredPair(idx, i) {
			t.Fatalf("joiner failed to discover node %d", i)
		}
	}
	if got := len(net.Discoveries()); got != 8 {
		t.Fatalf("ledger has %d records after join, want 8", got)
	}
}

// TestExpireSilentSessions checks the inactivity-timeout sweep drops only
// one-sided entries: a crash wipes node 0's acceptance records, so a peer
// that accepted node 0 mid-handshake is left one-sided and must be reaped.
func TestExpireSilentSessions(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(3, 5),
		Seed:      3,
		Positions: clusterPositions(3),
		Retry:     DefaultRetryConfig(smallParams(3, 5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if got := net.ExpireSilentSessions(); got != 0 {
		t.Fatalf("healthy network reaped %d silent sessions, want 0", got)
	}
	// Crash node 0: peers 1 and 2 still list it, but its acceptance records
	// are gone — their entries are now one-sided.
	if err := net.CrashNode(0); err != nil {
		t.Fatal(err)
	}
	if got := net.ExpireSilentSessions(); got != 2 {
		t.Fatalf("reaped %d silent sessions, want 2", got)
	}
	if net.Node(1).IsLogicalNeighbor(0) || net.Node(2).IsLogicalNeighbor(0) {
		t.Fatal("one-sided sessions survived the inactivity sweep")
	}
	if net.Node(1).IsLogicalNeighbor(2) == false {
		t.Fatal("healthy 1-2 session was wrongly reaped")
	}
}
