package core

import (
	"repro/internal/codepool"
	"repro/internal/ibc"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/trace"
)

// D-NDP — the direct neighbor-discovery protocol of §V-B.
//
// A initiates by broadcasting {HELLO, ID_A} spread with each of its m
// codes (repeated for r rounds on the air; at message level the jam
// decision per transmission already models the per-message success
// probability, so one logical transmission per code is simulated and the
// r-round repetition is reflected only in the buffering/processing delay
// model). B de-spreads copies on every shared code, CONFIRMs on all of
// them (the x-sub-session redundancy design), and the pair completes
// mutual authentication with two MAC'd messages, deriving the session
// spread code C_AB = h_K(n_A ⊗ n_B).

// dndpDelays samples the §V-B receiver-side delays (Theorem 2's t_r and
// t_d terms) when the configuration models them.

// helloProcDelay is the responder's residual-processing plus buffer-scan
// time before it can act on a buffered HELLO: t_r + t_d ~ U[0,t_p]+U[0,t_p].
func (nd *Node) helloProcDelay() sim.Time {
	if !nd.net.cfg.ModelProcessingDelays {
		return 0
	}
	tp := nd.net.params.TProcess()
	return sim.Time((nd.rng.Float64()*tp + nd.rng.Float64()*tp) * nd.skew)
}

// confirmProcDelay is the initiator's residual-processing plus scan time
// for the CONFIRM: t_r ~ U[0,t_p] plus t_d ~ U[0,λ·t_h] (the CONFIRM is
// found within the first N chip positions).
func (nd *Node) confirmProcDelay() sim.Time {
	if !nd.net.cfg.ModelProcessingDelays {
		return 0
	}
	p := nd.net.params
	return sim.Time((nd.rng.Float64()*p.TProcess() + nd.rng.Float64()*p.Lambda()*p.THello()) * nd.skew)
}

// keyDelay is the ID-based shared-key computation time t_key.
func (nd *Node) keyDelay() sim.Time {
	if !nd.net.cfg.ModelProcessingDelays {
		return 0
	}
	return sim.Time(nd.net.params.TKey * nd.skew)
}

// initiateDNDP starts one D-NDP round: broadcast the HELLO spread with
// every code in ℂ, sequentially.
func (nd *Node) initiateDNDP() {
	if nd.down || nd.compromised {
		return
	}
	now := nd.net.engine.Now()
	if prev := nd.initiator; prev != nil {
		// A fresh round supersedes the previous one (retry/backoff); its
		// attempt span ends here rather than dangling forever.
		nd.net.spanEnd(prev.attemptSpan, nd.index, -1, "superseded by new attempt")
	}
	nd.initiator = &dndpInitiatorState{
		nonce:     nd.newNonce(),
		startedAt: now,
		peers:     map[ibc.NodeID]*dndpInitiatorPeer{},
	}
	nd.initiator.attemptSpan = nd.net.spanStart(nd.net.engine.RunSpan(), nd.index, -1, "dndp.attempt")
	if _, ok := nd.net.initTime[nd.id]; !ok {
		nd.net.initTime[nd.id] = now
	}
	nd.dndpAttempts++
	nd.scheduleDNDPRetryCheck()
	p := nd.net.params
	helloBits := p.LenType + p.LenID
	th := sim.Time(p.THello())
	// The sweep span covers the sequential m-slot HELLO broadcast (the
	// code-assignment phase); its end rides a dedicated timer so it closes
	// even if the node goes down mid-sweep.
	if sweep := nd.net.spanStart(nd.initiator.attemptSpan, nd.index, -1, "dndp.hello_sweep"); sweep != 0 {
		nd.net.engine.MustSchedule(sim.Time(len(nd.codes))*th, func() {
			nd.net.spanEnd(sweep, nd.index, -1, "")
		})
	}
	for i, c := range nd.codes {
		if nd.revoker.Revoked(c) {
			continue
		}
		c := c
		nd.net.engine.MustSchedule(sim.Time(i)*th, func() {
			if nd.down {
				return
			}
			_ = nd.net.send(nd.index, -1, radio.Message{
				Kind:        kindHello,
				Code:        c,
				PayloadBits: helloBits,
				Payload:     helloPayload{Initiator: nd.id},
			})
		})
	}
}

// onHello is the responder path: collect HELLO copies per initiator, then
// CONFIRM on every shared code after the processing delay.
func (nd *Node) onHello(from int, msg radio.Message) {
	p, ok := msg.Payload.(helloPayload)
	if !ok || p.Initiator == nd.id {
		return
	}
	if !nd.holdsCode(msg.Code) {
		return // cannot de-spread, or locally revoked (§V-D)
	}
	if nd.IsLogicalNeighbor(p.Initiator) {
		if !nd.retryEnabled() {
			return
		}
		// The peer is re-initiating even though we hold a session with it:
		// its side of the handshake never completed (e.g. our AUTH2 was
		// destroyed). Re-run the responder path so the peer can finish —
		// acceptNeighbor is idempotent and the ID-derived key is unchanged,
		// so our own state only gains a fresh handshake record.
		if rs := nd.responders[p.Initiator]; rs != nil && rs.accepted {
			delete(nd.responders, p.Initiator)
		}
	}
	rs := nd.responders[p.Initiator]
	if rs == nil {
		if !nd.admitHalfOpen(from) {
			return // transmitter exceeded its half-open budget
		}
		rs = &dndpResponderState{
			helloSeen:  map[codepool.CodeID]bool{},
			auth2Codes: map[codepool.CodeID]bool{},
			firstHello: nd.net.engine.Now(),
		}
		nd.responders[p.Initiator] = rs
		nd.scheduleResponderReap(p.Initiator, rs)
	}
	if rs.accepted {
		return
	}
	if !rs.helloSeen[msg.Code] {
		rs.helloSeen[msg.Code] = true
		rs.helloCodes = append(rs.helloCodes, msg.Code)
	}
	if rs.scheduled {
		return
	}
	rs.scheduled = true
	initiator := p.Initiator
	// The responder's t_b buffer spans the initiator's whole m-code HELLO
	// sweep (the sweep lasts m·t_h < t_b), so by the time the buffer is
	// processed every shared code's copy is available. Model that by
	// waiting at least the remaining sweep time before CONFIRMing —
	// otherwise the x-sub-session redundancy could never engage.
	delay := nd.helloProcDelay()
	if sweep := sim.Time(float64(nd.net.params.M) * nd.net.params.THello()); delay < sweep {
		delay = sweep
	}
	rs.bufferSpan = nd.net.spanStart(nd.net.attemptSpanOf(initiator), nd.index, int(initiator), "dndp.hello_buffer")
	nd.net.engine.MustSchedule(delay, func() { nd.sendConfirm(initiator) })
}

// sendConfirm transmits the CONFIRM on every code the HELLO arrived on
// (redundancy design) or on a single random one when the ablation switch
// disables redundancy.
func (nd *Node) sendConfirm(initiator ibc.NodeID) {
	rs := nd.responders[initiator]
	if rs != nil && rs.bufferSpan != 0 {
		detail := ""
		if nd.down {
			detail = "down"
		} else if rs.accepted {
			detail = "already accepted"
		}
		nd.net.spanEnd(rs.bufferSpan, nd.index, int(initiator), detail)
		rs.bufferSpan = 0
	}
	if nd.down {
		return
	}
	if rs == nil || rs.accepted {
		return
	}
	codes := rs.helloCodes
	if nd.net.cfg.DisableRedundancy && len(codes) > 1 {
		codes = []codepool.CodeID{codes[nd.rng.Intn(len(codes))]}
		rs.helloCodes = codes
	}
	p := nd.net.params
	for _, c := range codes {
		if nd.revoker.Revoked(c) {
			continue
		}
		_ = nd.net.send(nd.index, -1, radio.Message{
			Kind:        kindConfirm,
			Code:        c,
			PayloadBits: p.LenType + p.LenID,
			Payload:     confirmPayload{Responder: nd.id, Initiator: initiator},
		})
	}
}

// onConfirm is the initiator path: gather CONFIRM copies from a responder,
// then compute the pairwise key and send the first authentication message
// on every confirmed code.
func (nd *Node) onConfirm(msg radio.Message) {
	p, ok := msg.Payload.(confirmPayload)
	if !ok || p.Initiator != nd.id || p.Responder == nd.id {
		return
	}
	if !nd.holdsCode(msg.Code) {
		return
	}
	st := nd.initiator
	if st == nil || nd.IsLogicalNeighbor(p.Responder) {
		return
	}
	peer := st.peers[p.Responder]
	if peer == nil {
		peer = &dndpInitiatorPeer{firstConfirm: nd.net.engine.Now()}
		st.peers[p.Responder] = peer
		nd.scheduleInitiatorPeerReap(st, p.Responder, peer)
	}
	if peer.done {
		return
	}
	dup := false
	for _, c := range peer.confirmCodes {
		if c == msg.Code {
			dup = true
		}
	}
	if !dup {
		peer.confirmCodes = append(peer.confirmCodes, msg.Code)
	}
	if peer.scheduled {
		return
	}
	peer.scheduled = true
	responder := p.Responder
	peer.prepSpan = nd.net.spanStart(st.attemptSpan, nd.index, int(responder), "dndp.auth1_prep")
	nd.net.engine.MustSchedule(nd.confirmProcDelay()+nd.keyDelay(), func() {
		nd.sendAuth1(responder)
	})
}

// sendAuth1 computes K_AB and transmits {ID_A, n_A, f_K(ID_A|n_A)} on every
// confirmed code.
func (nd *Node) sendAuth1(responder ibc.NodeID) {
	st := nd.initiator
	if st != nil {
		if peer := st.peers[responder]; peer != nil && peer.prepSpan != 0 {
			detail := ""
			if nd.down {
				detail = "down"
			}
			nd.net.spanEnd(peer.prepSpan, nd.index, int(responder), detail)
			peer.prepSpan = 0
		}
	}
	if nd.down || st == nil {
		return
	}
	peer := st.peers[responder]
	if peer == nil || peer.done {
		return
	}
	if !peer.haveKey {
		peer.key = nd.priv.SharedKey(responder)
		peer.haveKey = true
		nd.stats.KeyComputations++
	}
	p := nd.net.params
	mac := ibc.MAC(peer.key, p.LenMAC/8, idBytes(nd.id), st.nonce)
	bits := p.LenID + p.LenNonce + p.LenMAC
	for _, c := range peer.confirmCodes {
		_ = nd.net.send(nd.index, -1, radio.Message{
			Kind:        kindAuth1,
			Code:        c,
			PayloadBits: bits,
			Payload: authPayload{
				Sender: nd.id,
				Peer:   responder,
				Nonce:  append([]byte(nil), st.nonce...),
				MAC:    mac,
			},
		})
	}
}

// onAuth1 is the responder's verification step: compute K_BA (first copy
// pays t_key), verify the MAC, accept the initiator, and answer with the
// second authentication message on the same code. Invalid MACs feed the
// §V-D revocation counters — this is the DoS-attack work the adversary can
// force with compromised codes.
func (nd *Node) onAuth1(from int, msg radio.Message) {
	p, ok := msg.Payload.(authPayload)
	if !ok || p.Peer != nd.id || p.Sender == nd.id {
		return
	}
	if !nd.holdsCode(msg.Code) {
		return
	}
	rs := nd.responders[p.Sender]
	if rs == nil {
		// Unsolicited AUTH1: either a replayed recording of a real
		// handshake (the replay window catches known-good nonces before
		// any expensive work) or a DoS injection (the half-open budget
		// caps how fast one radio can force fresh records). Copies that
		// arrive while a record exists ride the x-sub-session redundancy
		// path below and are exempt from both checks.
		if nd.replaySeen(p.Sender, p.Nonce) {
			return
		}
		if !nd.admitHalfOpen(from) {
			return
		}
		rs = &dndpResponderState{
			helloSeen:  map[codepool.CodeID]bool{},
			auth2Codes: map[codepool.CodeID]bool{},
			firstHello: nd.net.engine.Now(),
		}
		nd.responders[p.Sender] = rs
		nd.scheduleResponderReap(p.Sender, rs)
	}
	delay := sim.Time(0)
	if !rs.haveKey {
		delay = nd.keyDelay()
	}
	sender := p.Sender
	payload := p
	code := msg.Code
	// The verify span covers the key-derivation delay plus the MAC check;
	// verifyAuth1 closes it on every outcome.
	sp := nd.net.spanStart(nd.net.attemptSpanOf(sender), nd.index, int(sender), "dndp.auth1_verify")
	nd.net.engine.MustSchedule(delay, func() { nd.verifyAuth1(sender, payload, code, sp) })
}

func (nd *Node) verifyAuth1(sender ibc.NodeID, p authPayload, code codepool.CodeID, sp trace.SpanID) {
	if nd.down {
		nd.net.spanEnd(sp, nd.index, int(sender), "down")
		return
	}
	rs := nd.responders[sender]
	if rs == nil {
		nd.net.spanEnd(sp, nd.index, int(sender), "reaped")
		return
	}
	if !rs.haveKey {
		rs.key = nd.priv.SharedKey(sender)
		rs.haveKey = true
		nd.stats.KeyComputations++
	}
	nd.stats.MACVerifications++
	if !ibc.VerifyMAC(rs.key, p.MAC, idBytes(sender), p.Nonce) {
		nd.stats.MACFailures++
		nd.reportInvalid(code)
		nd.net.spanEnd(sp, nd.index, int(sender), "mac invalid")
		return
	}
	nd.net.spanEnd(sp, nd.index, int(sender), "verified")
	// The MAC checks out: remember the nonce so a recording of this frame
	// reinjected later (after this handshake record is reaped) is
	// recognized as a replay instead of re-opening the handshake.
	nd.recordNonce(sender, p.Nonce)
	if rs.nonce == nil {
		rs.nonce = nd.newNonce()
	}
	if !rs.accepted {
		rs.accepted = true
		nd.acceptNeighbor(sender, ViaDNDP, rs.key)
	}
	if rs.auth2Codes[code] {
		return
	}
	rs.auth2Codes[code] = true
	if rs.confirmSpan == 0 {
		// The confirm span tracks the AUTH2 in flight across nodes: it
		// closes only when the initiator renders a verdict, so one left
		// open is a handshake the jammer destroyed on the last message.
		rs.confirmSpan = nd.net.spanStart(nd.net.attemptSpanOf(sender), nd.index, int(sender), "dndp.confirm")
	}
	params := nd.net.params
	mac := ibc.MAC(rs.key, params.LenMAC/8, idBytes(nd.id), rs.nonce)
	_ = nd.net.send(nd.index, -1, radio.Message{
		Kind:        kindAuth2,
		Code:        code,
		PayloadBits: params.LenID + params.LenNonce + params.LenMAC,
		Payload: authPayload{
			Sender: nd.id,
			Peer:   sender,
			Nonce:  append([]byte(nil), rs.nonce...),
			MAC:    mac,
		},
	})
}

// onAuth2 is the initiator's final step: verify the responder's MAC and
// accept it as an authenticated logical neighbor.
func (nd *Node) onAuth2(msg radio.Message) {
	p, ok := msg.Payload.(authPayload)
	if !ok || p.Peer != nd.id || p.Sender == nd.id {
		return
	}
	if !nd.holdsCode(msg.Code) {
		return
	}
	st := nd.initiator
	if st == nil {
		return
	}
	peer := st.peers[p.Sender]
	if peer == nil || !peer.haveKey || peer.done {
		return
	}
	nd.stats.MACVerifications++
	if !ibc.VerifyMAC(peer.key, p.MAC, idBytes(p.Sender), p.Nonce) {
		nd.stats.MACFailures++
		nd.reportInvalid(msg.Code)
		nd.net.endConfirmSpan(p.Sender, nd.id, "mac invalid")
		return
	}
	peer.done = true
	nd.net.endConfirmSpan(p.Sender, nd.id, "discovered")
	nd.acceptNeighbor(p.Sender, ViaDNDP, peer.key)
}

// idBytes encodes a NodeID for MAC/signature payloads.
func idBytes(id ibc.NodeID) []byte {
	return []byte{byte(id >> 8), byte(id)}
}
