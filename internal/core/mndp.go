package core

import (
	"bytes"
	"encoding/binary"

	"repro/internal/ibc"
	"repro/internal/radio"
	"repro/internal/sim"
)

// M-NDP — the multi-hop neighbor-discovery protocol of §V-C.
//
// The origin unicasts a signed request over its established session codes;
// intermediate nodes verify the signature chain, forward to logical
// neighbors not yet covered, and candidate responders derive the pairwise
// key and session code, return a signed response along the reverse path,
// and beacon {HELLO} spread with the derived session code. If origin and
// responder really are physical neighbors the beacon is heard, a CONFIRM
// completes the mutual discovery. Without the beacon step (ablation
// AcceptWithoutBeacon) nodes up to ν hops away are accepted sight unseen —
// the false positives the paper warns about.

// initiateMNDP starts one M-NDP round toward every logical neighbor.
func (nd *Node) initiateMNDP() {
	if nd.down || nd.compromised || len(nd.neighbors) == 0 {
		return
	}
	now := nd.net.engine.Now()
	nd.net.initTime[nd.id] = now
	nonce := nd.newNonce()
	p := nd.net.params
	req := mndpRequest{
		Nonce: nonce,
		Nu:    p.Nu,
		Hops:  []mndpHop{{ID: nd.id, Neighbors: nd.neighborIDs()}},
	}
	pos := nd.net.positions[nd.index]
	req.OriginPosX, req.OriginPosY = pos.X, pos.Y
	req.HasOriginPos = nd.net.cfg.GPSFilter
	nd.seenRequests[requestKey(nd.id, nonce)] = true
	nd.net.engine.MustSchedule(nd.sigDelay(), func() {
		if nd.down {
			return
		}
		req.Hops[0].Sig = nd.signRequest(req, 0)
		nd.forwardRequest(req)
	})
}

// sigDelay charges t_sig; verDelay charges k signature verifications.
func (nd *Node) sigDelay() sim.Time {
	if !nd.net.cfg.ModelProcessingDelays {
		return 0
	}
	return sim.Time(nd.net.params.TSig * nd.skew)
}

func (nd *Node) verDelay(k int) sim.Time {
	if !nd.net.cfg.ModelProcessingDelays {
		return 0
	}
	return sim.Time(float64(k) * nd.net.params.TVer * nd.skew)
}

// signRequest signs the request contents up to and including hop i.
func (nd *Node) signRequest(req mndpRequest, uptoHop int) ibc.Signature {
	return nd.priv.Sign(encodeRequest(req, uptoHop))
}

// encodeRequest canonically encodes the request fields covered by hop i's
// signature: nonce, ν, and every hop's ID and neighbor list up to i.
func encodeRequest(req mndpRequest, uptoHop int) []byte {
	var buf bytes.Buffer
	buf.WriteString("mndp-req")
	buf.Write(req.Nonce)
	_ = binary.Write(&buf, binary.BigEndian, int32(req.Nu))
	for i := 0; i <= uptoHop && i < len(req.Hops); i++ {
		_ = binary.Write(&buf, binary.BigEndian, uint16(req.Hops[i].ID))
		_ = binary.Write(&buf, binary.BigEndian, int32(len(req.Hops[i].Neighbors)))
		for _, nb := range req.Hops[i].Neighbors {
			_ = binary.Write(&buf, binary.BigEndian, uint16(nb))
		}
	}
	return buf.Bytes()
}

// encodeResponse canonically encodes the response fields covered by the
// signature of path hop uptoHop: origin, nonces, ν, and every path hop's
// ID and neighbor list up to and including that hop (Path[0] is the
// responder; later entries are relays, each signing the response so far —
// "each node verifies the previous signatures and adds its own ID, logical
// neighbor list and signature", §V-C).
func encodeResponse(resp mndpResponse, uptoHop int) []byte {
	var buf bytes.Buffer
	buf.WriteString("mndp-resp")
	_ = binary.Write(&buf, binary.BigEndian, uint16(resp.Origin))
	buf.Write(resp.OriginNonce)
	buf.Write(resp.Nonce)
	_ = binary.Write(&buf, binary.BigEndian, int32(resp.Nu))
	for i := 0; i <= uptoHop && i < len(resp.Path); i++ {
		h := resp.Path[i]
		_ = binary.Write(&buf, binary.BigEndian, uint16(h.ID))
		_ = binary.Write(&buf, binary.BigEndian, int32(len(h.Neighbors)))
		for _, nb := range h.Neighbors {
			_ = binary.Write(&buf, binary.BigEndian, uint16(nb))
		}
	}
	return buf.Bytes()
}

func requestKey(origin ibc.NodeID, nonce []byte) string {
	return string(idBytes(origin)) + string(nonce)
}

// requestBits is the airtime size of a request in bits.
func (nd *Node) requestBits(req mndpRequest) int {
	p := nd.net.params
	bits := p.LenNonce + p.LenNu
	for _, h := range req.Hops {
		bits += p.LenID + bitsOfNeighborList(len(h.Neighbors), p.LenID) + p.LenSig
	}
	return bits
}

func (nd *Node) responseBits(resp mndpResponse) int {
	p := nd.net.params
	bits := 2*p.LenNonce + p.LenNu + p.LenID
	for _, h := range resp.Path {
		bits += p.LenID + bitsOfNeighborList(len(h.Neighbors), p.LenID) + p.LenSig
	}
	return bits
}

// forwardRequest unicasts req to every logical neighbor not already
// covered by the hop records.
func (nd *Node) forwardRequest(req mndpRequest) {
	// Targets are our logical neighbors minus everything already covered
	// by earlier hops (ℒ_B − ℒ_A ∪ ℒ_C in the paper's notation). Our own
	// hop record — the last one — lists our neighbors and must not count
	// as coverage.
	covered := map[ibc.NodeID]bool{}
	for i, h := range req.Hops {
		covered[h.ID] = true
		if i == len(req.Hops)-1 && h.ID == nd.id {
			continue
		}
		for _, nb := range h.Neighbors {
			covered[nb] = true
		}
	}
	bits := nd.requestBits(req)
	targets := 0
	// Iterate in sorted ID order: map order would vary run to run, and the
	// resulting unicast scheduling order perturbs downstream duplicate
	// suppression — breaking same-seed reproducibility.
	for _, id := range nd.neighborIDs() {
		// The origin sends to everyone in ℒ; forwarders only to nodes not
		// already reachable per the recorded neighbor lists.
		if len(req.Hops) > 1 && covered[id] {
			continue
		}
		if id == req.Hops[0].ID {
			continue
		}
		targets++
		_ = nd.net.send(nd.index, int(id), radio.Message{
			Kind:        kindMNDPRequest,
			Code:        radio.SessionCode,
			PayloadBits: bits,
			Payload:     req,
		})
	}
	nd.net.m.onMNDPFlood(targets)
}

// onMNDPRequest verifies and processes a request relayed by a logical
// neighbor.
func (nd *Node) onMNDPRequest(from int, msg radio.Message) {
	req, ok := msg.Payload.(mndpRequest)
	if !ok || len(req.Hops) == 0 {
		return
	}
	relay := ibc.NodeID(from)
	if !nd.IsLogicalNeighbor(relay) || req.Hops[len(req.Hops)-1].ID != relay {
		return
	}
	origin := req.Hops[0].ID
	if origin == nd.id {
		return
	}
	key := requestKey(origin, req.Nonce)
	if nd.seenRequests[key] {
		return
	}
	nd.seenRequests[key] = true
	// Verify the whole signature chain (t_ver each), then continue.
	k := len(req.Hops)
	sp := nd.net.spanStart(nd.net.engine.RunSpan(), nd.index, int(origin), "mndp.verify")
	nd.net.engine.MustSchedule(nd.verDelay(k), func() {
		nd.net.spanEnd(sp, nd.index, int(origin), "")
		nd.processRequest(req)
	})
}

func (nd *Node) processRequest(req mndpRequest) {
	// 1. Signatures of the origin and every forwarder.
	for i, h := range req.Hops {
		nd.stats.SigVerifications++
		if err := ibc.Verify(nd.net.rootPub, h.ID, encodeRequest(req, i), h.Sig); err != nil {
			nd.stats.SigFailures++
			nd.reportInvalid(radio.SessionCode)
			return
		}
	}
	// 2. Path validity: each forwarder must be a declared neighbor of the
	// previous hop, and the last hop a logical neighbor of ours.
	for i := 1; i < len(req.Hops); i++ {
		if !containsID(req.Hops[i-1].Neighbors, req.Hops[i].ID) {
			return
		}
	}
	origin := req.Hops[0].ID
	// Respond only when the origin is not already a logical neighbor;
	// forwarding continues regardless so other candidates are reached.
	respond := !nd.IsLogicalNeighbor(origin)
	// Optional GPS filter: only answer if the origin claims a position
	// within our transmission range.
	if respond && nd.net.cfg.GPSFilter && req.HasOriginPos {
		self := nd.net.positions[nd.index]
		dx, dy := self.X-req.OriginPosX, self.Y-req.OriginPosY
		if dx*dx+dy*dy > nd.net.params.Range*nd.net.params.Range {
			respond = false
		}
	}
	if respond {
		nd.respondToRequest(req)
	}

	// 3. Forward while the hop budget allows.
	if len(req.Hops) < req.Nu {
		fwd := req
		fwd.Hops = append(append([]mndpHop(nil), req.Hops...), mndpHop{
			ID:        nd.id,
			Neighbors: nd.neighborIDs(),
		})
		nd.net.engine.MustSchedule(nd.sigDelay(), func() {
			if nd.down {
				return
			}
			fwd.Hops[len(fwd.Hops)-1].Sig = nd.signRequest(fwd, len(fwd.Hops)-1)
			nd.forwardRequest(fwd)
		})
	}
}

// respondToRequest derives the pairwise key and session code with the
// origin, returns the signed response along the reverse path, and beacons
// the session HELLO.
func (nd *Node) respondToRequest(req mndpRequest) {
	origin := req.Hops[0].ID
	if _, pending := nd.mndpIn[origin]; pending {
		return
	}
	nonce := nd.newNonce()
	resp := mndpResponse{
		Origin:      origin,
		Nonce:       nonce,
		OriginNonce: append([]byte(nil), req.Nonce...),
		Nu:          req.Nu,
	}
	// Reverse route: back through the relays that carried the request.
	for i := len(req.Hops) - 1; i >= 1; i-- {
		resp.ReturnRoute = append(resp.ReturnRoute, req.Hops[i].ID)
	}
	// The respond span covers key derivation plus signing until the signed
	// response leaves the radio.
	sp := nd.net.spanStart(nd.net.engine.RunSpan(), nd.index, int(origin), "mndp.respond")
	nd.net.engine.MustSchedule(nd.keyDelay()+nd.sigDelay(), func() {
		if nd.down {
			nd.net.spanEnd(sp, nd.index, int(origin), "down")
			return
		}
		key := nd.priv.SharedKey(origin)
		nd.stats.KeyComputations++
		pending := &mndpPending{peer: origin, key: key, initiatedAt: nd.net.engine.Now()}
		nd.mndpIn[origin] = pending
		nd.scheduleMNDPReap(nd.mndpIn, origin, pending)
		resp.Path = []mndpHop{{ID: nd.id, Neighbors: nd.neighborIDs()}}
		resp.Path[0].Sig = nd.priv.Sign(encodeResponse(resp, 0))
		next := int(origin)
		if len(resp.ReturnRoute) > 0 {
			next = int(resp.ReturnRoute[0])
			resp.ReturnRoute = resp.ReturnRoute[1:]
		}
		_ = nd.net.send(nd.index, next, radio.Message{
			Kind:        kindMNDPResponse,
			Code:        radio.SessionCode,
			PayloadBits: nd.responseBits(resp),
			Payload:     resp,
		})
		nd.net.spanEnd(sp, nd.index, int(origin), "responded")
		if nd.net.cfg.AcceptWithoutBeacon {
			nd.acceptNeighbor(origin, ViaMNDP, key)
			delete(nd.mndpIn, origin)
			return
		}
		nd.beaconSessionHello(origin)
	})
}

// beaconSessionHello broadcasts {HELLO, ID} spread with the derived session
// code several times over the τ_h window so the origin, after processing
// the response, can hear at least one copy.
func (nd *Node) beaconSessionHello(origin ibc.NodeID) {
	p := nd.net.params
	// τ_h upper-bounds the response's travel time over ν hops: per hop,
	// up to ν+1 signature verifications plus signing and airtime.
	perHop := float64(p.Nu+1)*p.TVer + p.TSig + p.TKey + 0.01
	tauH := sim.Time(float64(p.Nu) * perHop * 2)
	const beacons = 8
	for i := 1; i <= beacons; i++ {
		at := tauH * sim.Time(i) / sim.Time(beacons)
		nd.net.engine.MustSchedule(at, func() {
			if nd.down {
				return
			}
			if _, pending := nd.mndpIn[origin]; !pending {
				return // already confirmed (or reaped by the session timeout)
			}
			_ = nd.net.send(nd.index, -1, radio.Message{
				Kind:        kindSessionHello,
				Code:        radio.SessionCode,
				PayloadBits: p.LenType + p.LenID,
				Payload:     sessionPayload{Sender: nd.id, Peer: origin},
			})
		})
	}
}

// onMNDPResponse relays a response toward the origin, or completes the
// exchange at the origin.
func (nd *Node) onMNDPResponse(from int, msg radio.Message) {
	resp, ok := msg.Payload.(mndpResponse)
	if !ok || len(resp.Path) == 0 {
		return
	}
	if !nd.IsLogicalNeighbor(ibc.NodeID(from)) {
		return
	}
	k := len(resp.Path)
	nd.net.engine.MustSchedule(nd.verDelay(k), func() { nd.processResponse(resp) })
}

func (nd *Node) processResponse(resp mndpResponse) {
	// Verify the whole signature chain: the responder's plus every
	// relay's.
	responder := resp.Path[0].ID
	for i, h := range resp.Path {
		nd.stats.SigVerifications++
		if err := ibc.Verify(nd.net.rootPub, h.ID, encodeResponse(resp, i), h.Sig); err != nil {
			nd.stats.SigFailures++
			nd.reportInvalid(radio.SessionCode)
			return
		}
	}
	// Path validity: every relay must be a declared logical neighbor of
	// the previous path entry (origin's final check "whether C ∈ ℒ_B").
	for i := 1; i < len(resp.Path); i++ {
		if !containsID(resp.Path[i-1].Neighbors, resp.Path[i].ID) {
			return
		}
	}
	if resp.Origin != nd.id {
		// Relay toward the origin: append our own signed hop record.
		next := int(resp.Origin)
		fwd := resp
		if len(resp.ReturnRoute) > 0 {
			next = int(resp.ReturnRoute[0])
			fwd.ReturnRoute = resp.ReturnRoute[1:]
		}
		fwd.Path = append(append([]mndpHop(nil), resp.Path...), mndpHop{
			ID:        nd.id,
			Neighbors: nd.neighborIDs(),
		})
		nd.net.engine.MustSchedule(nd.sigDelay(), func() {
			if nd.down {
				return
			}
			fwd.Path[len(fwd.Path)-1].Sig = nd.priv.Sign(encodeResponse(fwd, len(fwd.Path)-1))
			_ = nd.net.send(nd.index, next, radio.Message{
				Kind:        kindMNDPResponse,
				Code:        radio.SessionCode,
				PayloadBits: nd.responseBits(fwd),
				Payload:     fwd,
			})
		})
		return
	}
	// Origin: derive the pairwise key and session code, then listen for
	// the responder's beacon.
	if nd.IsLogicalNeighbor(responder) {
		return
	}
	if _, pending := nd.mndpOut[responder]; pending {
		return
	}
	nd.net.engine.MustSchedule(nd.keyDelay(), func() {
		if nd.down {
			return
		}
		key := nd.priv.SharedKey(responder)
		nd.stats.KeyComputations++
		pending := &mndpPending{peer: responder, key: key, initiatedAt: nd.net.engine.Now()}
		nd.mndpOut[responder] = pending
		if nd.net.cfg.AcceptWithoutBeacon {
			nd.acceptNeighbor(responder, ViaMNDP, key)
			delete(nd.mndpOut, responder)
			return
		}
		nd.scheduleMNDPReap(nd.mndpOut, responder, pending)
	})
}

// onSessionHello completes M-NDP at the origin: the beacon proves the
// responder is physically in range.
func (nd *Node) onSessionHello(from int, msg radio.Message) {
	p, ok := msg.Payload.(sessionPayload)
	if !ok || p.Peer != nd.id {
		return
	}
	if int(p.Sender) != from {
		return
	}
	pending, exists := nd.mndpOut[p.Sender]
	if !exists {
		// With retries on, a beacon from a peer we already accepted means
		// our previous SESS-CONFIRM was destroyed and the responder is
		// still waiting: re-acknowledge so it can close its half-open side.
		if !nd.retryEnabled() || !nd.IsLogicalNeighbor(p.Sender) {
			return
		}
	} else {
		nd.acceptNeighbor(p.Sender, ViaMNDP, pending.key)
		delete(nd.mndpOut, p.Sender)
	}
	params := nd.net.params
	_ = nd.net.send(nd.index, from, radio.Message{
		Kind:        kindSessionConfirm,
		Code:        radio.SessionCode,
		PayloadBits: params.LenType + params.LenID,
		Payload:     sessionPayload{Sender: nd.id, Peer: p.Sender},
	})
}

// onSessionConfirm completes M-NDP at the responder.
func (nd *Node) onSessionConfirm(from int, msg radio.Message) {
	p, ok := msg.Payload.(sessionPayload)
	if !ok || p.Peer != nd.id {
		return
	}
	pending, exists := nd.mndpIn[p.Sender]
	if !exists || int(p.Sender) != from {
		return
	}
	nd.acceptNeighbor(p.Sender, ViaMNDP, pending.key)
	delete(nd.mndpIn, p.Sender)
}

func containsID(ids []ibc.NodeID, id ibc.NodeID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
