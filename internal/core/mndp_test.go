package core

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/field"
)

// findMNDPTopology searches seeds for a network where nodes 0 and 1 are
// physical neighbors with no shared codes, but node 2 shares codes with
// both — the canonical M-NDP scenario of Fig. 1.
func findMNDPTopology(t *testing.T, cfg func(seed int64) NetworkConfig) *Network {
	t.Helper()
	for seed := int64(0); seed < 400; seed++ {
		net, err := NewNetwork(cfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		pool := net.Pool()
		if len(pool.Shared(0, 1)) == 0 && len(pool.Shared(0, 2)) > 0 && len(pool.Shared(1, 2)) > 0 {
			return net
		}
	}
	t.Fatal("no seed produced the A–B/C topology; loosen the search")
	return nil
}

// mndpParams: sparse sharing so a no-shared-codes pair exists.
func mndpParams(n int) analysis.Params {
	p := analysis.Defaults()
	p.N = n
	p.M = 2
	p.L = 3
	p.Q = 0
	p.Nu = 2
	p.FieldWidth, p.FieldHeight = 2000, 2000
	p.Range = 300
	return p
}

// trianglePositions puts nodes 0,1,2 in mutual range and scatters the rest
// far away in a corner grid.
func trianglePositions(n int) []field.Point {
	pts := make([]field.Point, n)
	pts[0] = field.Point{X: 200, Y: 200}
	pts[1] = field.Point{X: 400, Y: 200}
	pts[2] = field.Point{X: 300, Y: 300}
	for i := 3; i < n; i++ {
		pts[i] = field.Point{X: 1500 + float64(i%8)*40, Y: 1500 + float64(i/8)*40}
	}
	return pts
}

func TestMNDPDiscoversViaCommonNeighbor(t *testing.T) {
	net := findMNDPTopology(t, func(seed int64) NetworkConfig {
		return NetworkConfig{
			Params:    mndpParams(30),
			Seed:      seed,
			Jammer:    JamNone,
			Positions: trianglePositions(30),
		}
	})
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if net.DiscoveredPair(0, 1) {
		t.Fatal("pair without shared codes discovered via D-NDP — topology search broken")
	}
	if !net.DiscoveredPair(0, 2) || !net.DiscoveredPair(1, 2) {
		t.Fatal("D-NDP failed on the shared-code edges")
	}
	if err := net.RunMNDP(1); err != nil {
		t.Fatal(err)
	}
	if !net.DiscoveredPair(0, 1) {
		t.Fatal("M-NDP failed to discover the pair via the common neighbor")
	}
	// Verify the discovery is recorded as M-NDP.
	found := false
	for _, d := range net.Discoveries() {
		if (d.A == 0 && d.B == 1) || (d.A == 1 && d.B == 0) {
			found = true
			if d.Via != ViaMNDP {
				t.Fatalf("pair (0,1) Via = %v, want M-NDP", d.Via)
			}
		}
	}
	if !found {
		t.Fatal("pair (0,1) missing from discovery records")
	}
}

func TestMNDPHonorsHopBound(t *testing.T) {
	// Chain: 0-1-2-3 where only adjacent nodes are in range; node 0 and
	// node 2 are NOT physical neighbors, so even though requests reach
	// them, the beacon exchange cannot complete. With AcceptWithoutBeacon
	// the (0,2) pair *would* be falsely accepted (next test).
	p := mndpParams(20)
	p.L = 20 // all nodes share all codes → D-NDP succeeds on every edge
	p.M = 3
	positions := make([]field.Point, 20)
	for i := 0; i < 4; i++ {
		positions[i] = field.Point{X: 200 + float64(i)*250, Y: 200} // 250 m spacing < 300 range
	}
	for i := 4; i < 20; i++ {
		positions[i] = field.Point{X: 1800, Y: 1500 + float64(i)*20}
	}
	net, err := NewNetwork(NetworkConfig{
		Params:    p,
		Seed:      11,
		Jammer:    JamNone,
		Positions: positions,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !net.DiscoveredPair(i, i+1) {
			t.Fatalf("chain edge (%d,%d) not discovered", i, i+1)
		}
	}
	if err := net.RunMNDP(1); err != nil {
		t.Fatal(err)
	}
	// 0 and 2 are 500 m apart: no physical edge, so no logical edge even
	// though the M-NDP request reached node 2.
	if net.DiscoveredPair(0, 2) {
		t.Fatal("M-NDP accepted a non-physical neighbor (beacon check failed)")
	}
}

func TestMNDPFalsePositivesWithoutBeacon(t *testing.T) {
	// Ablation: accepting on the signed response alone produces the §V-C
	// false positives — ν-hop nodes become "neighbors" without being in
	// range.
	p := mndpParams(20)
	p.L = 20
	p.M = 3
	positions := make([]field.Point, 20)
	for i := 0; i < 4; i++ {
		positions[i] = field.Point{X: 200 + float64(i)*250, Y: 200}
	}
	for i := 4; i < 20; i++ {
		positions[i] = field.Point{X: 1800, Y: 1500 + float64(i)*20}
	}
	net, err := NewNetwork(NetworkConfig{
		Params:              p,
		Seed:                12,
		Jammer:              JamNone,
		Positions:           positions,
		AcceptWithoutBeacon: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if err := net.RunMNDP(1); err != nil {
		t.Fatal(err)
	}
	if !net.DiscoveredPair(0, 2) {
		t.Fatal("expected false positive (0,2) with AcceptWithoutBeacon")
	}
}

func TestMNDPGPSFilterSuppressesFarResponders(t *testing.T) {
	// Same chain, naive acceptance, but the GPS filter makes far nodes
	// decline to respond — no false positives even without the beacon.
	p := mndpParams(20)
	p.L = 20
	p.M = 3
	positions := make([]field.Point, 20)
	for i := 0; i < 4; i++ {
		positions[i] = field.Point{X: 200 + float64(i)*250, Y: 200}
	}
	for i := 4; i < 20; i++ {
		positions[i] = field.Point{X: 1800, Y: 1500 + float64(i)*20}
	}
	net, err := NewNetwork(NetworkConfig{
		Params:              p,
		Seed:                13,
		Jammer:              JamNone,
		Positions:           positions,
		AcceptWithoutBeacon: true,
		GPSFilter:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if err := net.RunMNDP(1); err != nil {
		t.Fatal(err)
	}
	if net.DiscoveredPair(0, 2) {
		t.Fatal("GPS filter failed to suppress the out-of-range responder")
	}
}

func TestMNDPSignatureVerificationWork(t *testing.T) {
	// Every processed request charges signature verifications; the stats
	// must reflect that (the DoS argument rests on this cost being real).
	net := findMNDPTopology(t, func(seed int64) NetworkConfig {
		return NetworkConfig{
			Params:    mndpParams(30),
			Seed:      seed,
			Jammer:    JamNone,
			Positions: trianglePositions(30),
		}
	})
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if err := net.RunMNDP(1); err != nil {
		t.Fatal(err)
	}
	total := net.AggregateStats()
	if total.SigVerifications == 0 {
		t.Fatal("M-NDP ran without any signature verifications")
	}
	if total.SigFailures != 0 {
		t.Fatalf("%d signature failures among honest nodes", total.SigFailures)
	}
}

func TestMNDPLatencyMatchesTheorem4Magnitude(t *testing.T) {
	// With processing delays modeled, the M-NDP completion time for a
	// 2-hop discovery must land in the Theorem-4 regime: dominated by the
	// 2ν(ν+1)·t_ver signature-verification chain plus key computation and
	// beacon airtime. Theorem 4 is an average-case formula over larger
	// neighborhoods, so assert the order of magnitude, not the digit.
	var sumLatency float64
	completed := 0
	for seed := int64(0); seed < 400 && completed < 5; seed++ {
		net, err := NewNetwork(NetworkConfig{
			Params:                mndpParams(30),
			Seed:                  seed,
			Jammer:                JamNone,
			Positions:             trianglePositions(30),
			ModelProcessingDelays: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		pool := net.Pool()
		if !(len(pool.Shared(0, 1)) == 0 && len(pool.Shared(0, 2)) > 0 && len(pool.Shared(1, 2)) > 0) {
			continue
		}
		if err := net.RunDNDP(1); err != nil {
			t.Fatal(err)
		}
		if !net.DiscoveredPair(0, 2) || !net.DiscoveredPair(1, 2) {
			continue
		}
		if err := net.RunMNDP(1); err != nil {
			t.Fatal(err)
		}
		if !net.DiscoveredPair(0, 1) {
			continue
		}
		for _, d := range net.Discoveries() {
			if d.Via == ViaMNDP && ((d.A == 0 && d.B == 1) || (d.A == 1 && d.B == 0)) {
				sumLatency += float64(d.Latency)
				completed++
			}
		}
	}
	if completed == 0 {
		t.Fatal("no M-NDP discovery completed across the seed sweep")
	}
	measured := sumLatency / float64(completed)
	p := mndpParams(30)
	theory := analysis.MNDPLatency(p, 2, 2) // tiny neighborhoods: g ≈ 2
	if measured < theory/4 || measured > theory*4 {
		t.Fatalf("mean M-NDP latency %.3fs outside [T̄_M/4, 4·T̄_M] around Theorem 4's %.3fs",
			measured, theory)
	}
}

func TestMNDPRequiresLogicalNeighbors(t *testing.T) {
	// A node with no logical neighbors initiating M-NDP is a no-op.
	net, err := NewNetwork(NetworkConfig{
		Params:    mndpParams(10),
		Seed:      14,
		Jammer:    JamNone,
		Positions: trianglePositions(10),
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Node(0).initiateMNDP()
	if err := net.Engine().Run(); err != nil {
		t.Fatal(err)
	}
	if got := net.MediumStats().Transmissions; got != 0 {
		t.Fatalf("lonely M-NDP initiation transmitted %d messages", got)
	}
}
