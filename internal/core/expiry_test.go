package core

import (
	"testing"

	"repro/internal/field"
)

func TestExpireStaleNeighborsDropsOutOfRangePairs(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(3, 5),
		Seed:      41,
		Jammer:    JamNone,
		Positions: clusterPositions(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if !net.DiscoveredPair(0, 1) || !net.DiscoveredPair(0, 2) {
		t.Fatal("cluster failed to discover")
	}
	// Nothing is stale while everyone stays in range.
	if dropped := net.ExpireStaleNeighbors(); dropped != 0 {
		t.Fatalf("dropped %d links without any movement", dropped)
	}
	// Node 2 wanders away.
	pos := net.Positions()
	pos[2] = field.Point{X: 950, Y: 950}
	if err := net.UpdatePositions(pos); err != nil {
		t.Fatal(err)
	}
	dropped := net.ExpireStaleNeighbors()
	if dropped != 2 {
		t.Fatalf("dropped %d links, want 2 (2-0 and 2-1)", dropped)
	}
	if net.DiscoveredPair(0, 2) || net.DiscoveredPair(1, 2) {
		t.Fatal("stale pairs still discovered")
	}
	if !net.DiscoveredPair(0, 1) {
		t.Fatal("in-range pair was wrongly expired")
	}
}

func TestRediscoveryAfterExpiry(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(2, 5),
		Seed:      42,
		Jammer:    JamNone,
		Positions: clusterPositions(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if !net.DiscoveredPair(0, 1) {
		t.Fatal("initial discovery failed")
	}
	// Separate, expire, then reunite and re-run discovery.
	apart := []field.Point{{X: 100, Y: 100}, {X: 900, Y: 900}}
	if err := net.UpdatePositions(apart); err != nil {
		t.Fatal(err)
	}
	if dropped := net.ExpireStaleNeighbors(); dropped != 1 {
		t.Fatalf("dropped %d, want 1", dropped)
	}
	together := clusterPositions(2)
	if err := net.UpdatePositions(together); err != nil {
		t.Fatal(err)
	}
	if net.DiscoveredPair(0, 1) {
		t.Fatal("pair discovered before re-running the protocol")
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if !net.DiscoveredPair(0, 1) {
		t.Fatal("re-discovery after expiry failed")
	}
}
