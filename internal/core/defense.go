package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ibc"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Byzantine-input defenses. The wire codec makes hostile bytes *parse*
// safely; this layer makes well-formed hostile frames *ineffective*:
//
//   - A sliding replay window per peer remembers the nonces of recently
//     verified AUTH messages. A replayed valid handshake frame — captured
//     on the air and reinjected after the victim's handshake record was
//     reaped — would otherwise force a fresh key computation, MAC
//     verification, and a spurious re-acceptance. The window drops it at
//     the door (`replays_dropped`).
//   - A per-transmitter token bucket caps how fast any single radio can
//     make this node create new half-open handshake records (HELLO or
//     unsolicited AUTH1). The §V-D flood forges a fresh sender identity
//     per injection, so per-sender-ID limiting is useless; the transmitter
//     index models the physical radio the frames actually come from
//     (`ratelimited`). Refill runs on virtual time, so the limiter is
//     deterministic.
//
// Both defenses hold volatile per-node state and are wiped by a crash,
// like every other protocol table.

// DefenseConfig enables the replay window and half-open rate limiter.
// A nil config (the NetworkConfig default) disables both, preserving the
// seed engine's behavior.
type DefenseConfig struct {
	// ReplayWindow is how many verified AUTH nonces are remembered per
	// peer ID before the oldest is forgotten.
	ReplayWindow int
	// HalfOpenRate is the sustained rate (records per virtual second) at
	// which one transmitter may create new handshake records here.
	HalfOpenRate float64
	// HalfOpenBurst is the bucket depth: how many records one transmitter
	// may create back-to-back before the rate applies.
	HalfOpenBurst int
}

// DefaultDefenseConfig sizes the defenses for the Table I parameter set:
// the replay window comfortably covers a full x-sub-session redundancy
// round (≤ m codes) per peer, and the bucket admits an honest node's
// handshake burst (one HELLO record plus one AUTH1 record per round)
// with an order of magnitude of headroom.
func DefaultDefenseConfig(p analysis.Params) *DefenseConfig {
	window := 4 * p.M
	if window < 64 {
		window = 64
	}
	return &DefenseConfig{
		ReplayWindow:  window,
		HalfOpenRate:  16,
		HalfOpenBurst: 8,
	}
}

func (d *DefenseConfig) validate() error {
	if d == nil {
		return nil
	}
	switch {
	case d.ReplayWindow < 1:
		return fmt.Errorf("ReplayWindow %d must be >= 1", d.ReplayWindow)
	case d.HalfOpenRate <= 0:
		return fmt.Errorf("HalfOpenRate %v must be positive", d.HalfOpenRate)
	case d.HalfOpenBurst < 1:
		return fmt.Errorf("HalfOpenBurst %d must be >= 1", d.HalfOpenBurst)
	}
	return nil
}

// nonceWindow is a per-peer sliding window of verified AUTH nonces: a set
// for O(1) membership plus a FIFO ring for eviction.
type nonceWindow struct {
	seen  map[string]bool
	order []string
	next  int // ring cursor once full
	cap   int
}

func newNonceWindow(capacity int) *nonceWindow {
	return &nonceWindow{seen: make(map[string]bool, capacity), cap: capacity}
}

// contains reports whether nonce was verified recently.
func (w *nonceWindow) contains(nonce []byte) bool { return w.seen[string(nonce)] }

// record remembers a verified nonce, evicting the oldest when full. The
// string conversion copies, so the window never aliases a frame buffer.
func (w *nonceWindow) record(nonce []byte) {
	key := string(nonce)
	if w.seen[key] {
		return
	}
	if len(w.order) < w.cap {
		w.order = append(w.order, key)
	} else {
		delete(w.seen, w.order[w.next])
		w.order[w.next] = key
		w.next = (w.next + 1) % w.cap
	}
	w.seen[key] = true
}

// tokenBucket is a deterministic virtual-time token bucket.
type tokenBucket struct {
	tokens float64
	last   sim.Time
	rate   float64
	burst  float64
}

func newTokenBucket(rate float64, burst int, now sim.Time) *tokenBucket {
	return &tokenBucket{tokens: float64(burst), last: now, rate: rate, burst: float64(burst)}
}

// allow refills by elapsed virtual time and spends one token if available.
func (b *tokenBucket) allow(now sim.Time) bool {
	if now > b.last {
		b.tokens += float64(now-b.last) * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// defenseOn reports whether the Byzantine defenses are configured.
func (nd *Node) defenseOn() bool { return nd.net.cfg.Defense != nil }

// replaySeen reports whether peer's AUTH nonce is inside the replay
// window — i.e. this exact handshake material was already verified once.
func (nd *Node) replaySeen(peer ibc.NodeID, nonce []byte) bool {
	if !nd.defenseOn() || len(nonce) == 0 {
		return false
	}
	w := nd.seenNonces[peer]
	if w == nil || !w.contains(nonce) {
		return false
	}
	nd.net.m.onReplayDropped()
	nd.net.emit(trace.Event{
		At:     float64(nd.net.engine.Now()),
		Kind:   trace.KindDrop,
		Node:   nd.index,
		Peer:   int(peer),
		Detail: "replayed AUTH nonce inside the replay window",
	})
	return true
}

// recordNonce remembers a verified AUTH nonce for the replay window.
func (nd *Node) recordNonce(peer ibc.NodeID, nonce []byte) {
	if !nd.defenseOn() || len(nonce) == 0 {
		return
	}
	w := nd.seenNonces[peer]
	if w == nil {
		w = newNonceWindow(nd.net.cfg.Defense.ReplayWindow)
		nd.seenNonces[peer] = w
	}
	w.record(nonce)
}

// admitHalfOpen charges transmitter `from`'s token bucket for creating a
// new handshake record on this node; false means the record must not be
// created (the transmitter exceeded its half-open budget).
func (nd *Node) admitHalfOpen(from int) bool {
	if !nd.defenseOn() || from == nd.index {
		return true
	}
	d := nd.net.cfg.Defense
	now := nd.net.engine.Now()
	b := nd.buckets[from]
	if b == nil {
		b = newTokenBucket(d.HalfOpenRate, d.HalfOpenBurst, now)
		nd.buckets[from] = b
	}
	if b.allow(now) {
		return true
	}
	nd.net.m.onRateLimited()
	nd.net.emit(trace.Event{
		At:     float64(now),
		Kind:   trace.KindDrop,
		Node:   nd.index,
		Peer:   from,
		Detail: "half-open budget exceeded: handshake record refused",
	})
	return false
}

// resetDefenses wipes the volatile defense state (crash semantics).
func (nd *Node) resetDefenses() {
	nd.seenNonces = map[ibc.NodeID]*nonceWindow{}
	nd.buckets = map[int]*tokenBucket{}
}
