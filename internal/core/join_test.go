package core

import (
	"testing"

	"repro/internal/field"
)

func TestJoinNodeDiscoversExistingNetwork(t *testing.T) {
	// n = 5 with l = 2 leaves vacant virtual slots (w = 3, padding 1).
	p := smallParams(5, 6)
	p.L = 2
	net, err := NewNetwork(NetworkConfig{
		Params:    p,
		Seed:      81,
		Jammer:    JamNone,
		Positions: clusterPositions(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	before := net.NumNodes()
	idx, err := net.JoinNode(field.Point{X: 130, Y: 110})
	if err != nil {
		t.Fatal(err)
	}
	if idx != before || net.NumNodes() != before+1 {
		t.Fatalf("join index %d, node count %d", idx, net.NumNodes())
	}
	// The joined node holds m codes and is physically adjacent to the
	// cluster.
	if got := len(net.Pool().Codes(idx)); got != p.M {
		t.Fatalf("joined node has %d codes, want %d", got, p.M)
	}
	if len(net.PhysicalGraph().Adj[idx]) == 0 {
		t.Fatal("joined node has no physical neighbors")
	}
	// Its first discovery round secures every shared-code neighbor.
	if err := net.RunDiscoveryFor(idx); err != nil {
		t.Fatal(err)
	}
	discovered := 0
	for _, v := range net.PhysicalGraph().Adj[idx] {
		if len(net.Pool().Shared(idx, v)) > 0 {
			if !net.DiscoveredPair(idx, v) {
				t.Fatalf("joined node failed to discover shared-code neighbor %d", v)
			}
			discovered++
		}
	}
	if discovered == 0 {
		t.Fatal("joined node shares codes with nobody in range; topology too sparse for the test")
	}
}

func TestJoinNodeBatchExpansion(t *testing.T) {
	// l | n leaves no vacant slots: joining triggers a batch expansion.
	p := smallParams(4, 5)
	p.L = 4
	net, err := NewNetwork(NetworkConfig{
		Params:    p,
		Seed:      82,
		Jammer:    JamNone,
		Positions: clusterPositions(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if net.Pool().VacantSlots() != 0 {
		t.Fatalf("expected no vacant slots, have %d", net.Pool().VacantSlots())
	}
	idx, err := net.JoinNode(field.Point{X: 140, Y: 120})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDiscoveryFor(idx); err != nil {
		t.Fatal(err)
	}
	found := false
	for v := 0; v < idx; v++ {
		if net.DiscoveredPair(idx, v) {
			found = true
		}
	}
	if !found {
		t.Fatal("batch-expanded joiner discovered nobody")
	}
}

func TestJoinNodeValidation(t *testing.T) {
	p := smallParams(3, 4)
	net, err := NewNetwork(NetworkConfig{
		Params:    p,
		Seed:      83,
		Jammer:    JamNone,
		Positions: clusterPositions(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.JoinNode(field.Point{X: -5, Y: 0}); err == nil {
		t.Fatal("accepted out-of-field position")
	}
	if err := net.RunDiscoveryFor(99); err == nil {
		t.Fatal("accepted bad node index")
	}
	if err := net.Compromise([]int{2}); err != nil {
		t.Fatal(err)
	}
	if err := net.RunDiscoveryFor(2); err == nil {
		t.Fatal("ran discovery for a compromised node")
	}
}
