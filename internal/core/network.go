package core

import (
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/codepool"
	"repro/internal/field"
	"repro/internal/ibc"
	"repro/internal/metrics"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/trace"
)

// messageKindName names protocol message kinds for traces.
func messageKindName(kind int) string {
	switch kind {
	case kindHello:
		return "HELLO"
	case kindConfirm:
		return "CONFIRM"
	case kindAuth1:
		return "AUTH1"
	case kindAuth2:
		return "AUTH2"
	case kindMNDPRequest:
		return "MNDP-REQ"
	case kindMNDPResponse:
		return "MNDP-RESP"
	case kindSessionHello:
		return "SESS-HELLO"
	case kindSessionConfirm:
		return "SESS-CONFIRM"
	default:
		return "UNKNOWN"
	}
}

// JammerKind selects the adversary model of §IV-B.
type JammerKind int

// Jammer models.
const (
	JamNone JammerKind = iota
	JamRandom
	JamReactive
	// JamIntelligent is the §V-B "intelligent attack": let HELLOs pass so
	// victims commit to a code, then reactively jam the follow-ups.
	JamIntelligent
)

func (k JammerKind) String() string {
	switch k {
	case JamNone:
		return "none"
	case JamRandom:
		return "random"
	case JamReactive:
		return "reactive"
	case JamIntelligent:
		return "intelligent"
	default:
		return "unknown"
	}
}

// NetworkConfig configures a simulated JR-SND deployment.
type NetworkConfig struct {
	// Params holds the Table I parameter set.
	Params analysis.Params
	// Seed makes the whole run reproducible.
	Seed int64
	// Jammer selects the adversary model.
	Jammer JammerKind
	// Positions optionally fixes node placement; default is uniform.
	Positions []field.Point
	// GPSFilter enables the §V-C false-positive filter: nodes answer
	// M-NDP requests only when the origin's claimed position is within
	// transmission range.
	GPSFilter bool
	// AcceptWithoutBeacon models the naive M-NDP variant that accepts a
	// peer upon the signed response alone, skipping the session-code
	// HELLO/CONFIRM beacon. It exhibits the false positives the paper
	// warns about and exists for the ablation experiment.
	AcceptWithoutBeacon bool
	// DisableRedundancy turns off the x-sub-session redundancy design of
	// §V-B (responders pick a single shared code instead of all of them);
	// for the ablation experiment.
	DisableRedundancy bool
	// ModelProcessingDelays samples the §V-B buffering/processing delays
	// (t_r, t_d uniform in [0, t_p]) so discovery latency follows
	// Theorem 2. When false, handlers respond immediately (faster tests).
	ModelProcessingDelays bool
	// Trace, when set, receives structured protocol events
	// (transmissions, jam verdicts, discoveries, revocations, expiries).
	// Any trace.Sink works: the bounded in-memory trace.Recorder, a
	// streaming trace.JSONLWriter, or several at once via trace.Multi.
	Trace trace.Sink
	// Metrics, when set, receives the engine's telemetry: per-kind tx and
	// jam counters, the discovery-latency histogram, M-NDP flood fan-out,
	// revocation/expiry counters, and the sim-engine event counters. A nil
	// registry disables instrumentation at near-zero hot-path cost.
	Metrics *metrics.Registry
	// MonitorBudget caps how many session codes a node can monitor in
	// real time (§IV-A: real-time de-spreading needs one correlator chain
	// per code; see analysis.MonitorCapacity). When a new neighbor would
	// exceed the budget, the node stops monitoring its oldest session —
	// evicting that logical neighbor. 0 means unlimited.
	MonitorBudget int
}

// PairDiscovery records a completed mutual discovery.
type PairDiscovery struct {
	A, B    ibc.NodeID
	Via     DiscoveryMethod
	At      sim.Time
	Latency sim.Time
}

// Network is a full simulated deployment: nodes, medium, jammer, and the
// authority with its code pool.
type Network struct {
	params    analysis.Params
	cfg       NetworkConfig
	engine    *sim.Engine
	streams   *sim.Streams
	pool      *codepool.Pool
	authority *ibc.Authority
	rootPub   []byte
	medium    *radio.Medium
	deploy    field.Field
	positions []field.Point
	graph     *field.Graph
	nodes     []*Node
	jammer    radio.Jammer
	sink      trace.Sink   // normalized from cfg.Trace; nil when tracing is off
	m         *coreMetrics // nil when cfg.Metrics is nil

	compromisedCodes *codepool.CodeSet
	compromisedNodes map[int]bool

	// one-directional acceptances; a pair is discovered when both exist
	accepted map[[2]ibc.NodeID]sim.Time
	pairs    []PairDiscovery
	pairLive map[[2]ibc.NodeID]bool // currently-recorded mutual pairs
	initTime map[ibc.NodeID]sim.Time
}

// NewNetwork builds the deployment. Nodes are created, issued keys and
// codes, and attached to the medium; no protocol activity is scheduled yet.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	p := cfg.Params
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if p.N > 1<<16 {
		return nil, fmt.Errorf("core: n=%d exceeds the 16-bit ID space", p.N)
	}
	streams := sim.NewStreams(cfg.Seed)
	engine := sim.NewEngine()

	deploy, err := field.New(p.FieldWidth, p.FieldHeight)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	positions := cfg.Positions
	if positions == nil {
		positions = deploy.PlaceUniform(streams.Get("placement"), p.N)
	}
	if len(positions) != p.N {
		return nil, fmt.Errorf("core: %d positions for %d nodes", len(positions), p.N)
	}
	graph, err := field.PhysicalGraph(deploy, positions, p.Range)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	pool, err := codepool.New(codepool.Config{N: p.N, M: p.M, L: p.L, Rand: streams.Get("codepool")})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	authority, err := ibc.NewAuthority(ibc.AuthorityConfig{Rand: streams.Get("authority")})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	compromised := codepool.NewCodeSet(pool.S())
	var jammer radio.Jammer
	switch cfg.Jammer {
	case JamNone:
		jammer = radio.NoJammer{}
	case JamReactive:
		jammer = radio.NewReactiveJammer(compromised)
	case JamRandom:
		jammer, err = radio.NewRandomJammer(p.Z, p.Mu, compromised, streams.Get("jammer"))
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	case JamIntelligent:
		jammer = radio.NewIntelligentJammer(compromised, []int{kindHello})
	default:
		return nil, fmt.Errorf("core: unknown jammer kind %d", cfg.Jammer)
	}

	n := &Network{
		params:           p,
		cfg:              cfg,
		engine:           engine,
		streams:          streams,
		pool:             pool,
		authority:        authority,
		rootPub:          authority.RootPublicKey(),
		deploy:           deploy,
		positions:        positions,
		graph:            graph,
		jammer:           jammer,
		compromisedCodes: compromised,
		compromisedNodes: map[int]bool{},
		accepted:         map[[2]ibc.NodeID]sim.Time{},
		pairLive:         map[[2]ibc.NodeID]bool{},
		initTime:         map[ibc.NodeID]sim.Time{},
	}
	n.sink = trace.Multi(cfg.Trace) // normalizes typed-nil recorders to nil
	n.m = newCoreMetrics(cfg.Metrics)
	if cfg.Metrics != nil {
		engine.Instrument(sim.NewEngineMetrics(cfg.Metrics))
	}
	var observer func(from, to int, msg radio.Message, jammed bool)
	if n.sink != nil || n.m != nil {
		observer = func(from, to int, msg radio.Message, jammed bool) {
			n.m.onTransmission(msg.Kind, jammed)
			if n.sink == nil {
				return
			}
			kind := trace.KindTx
			if jammed {
				kind = trace.KindJammed
			}
			n.sink.Emit(trace.Event{
				At:     float64(engine.Now()),
				Kind:   kind,
				Node:   from,
				Peer:   to,
				Detail: fmt.Sprintf("%s code=%d bits=%d", messageKindName(msg.Kind), msg.Code, msg.PayloadBits),
			})
		}
	}
	n.medium, err = radio.NewMedium(radio.MediumConfig{
		Engine:   engine,
		Jammer:   jammer,
		Adjacent: func(node int) []int { return n.graph.Adj[node] },
		ChipLen:  p.ChipLen,
		ChipRate: p.ChipRate,
		Mu:       p.Mu,
		Observer: observer,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	n.nodes = make([]*Node, p.N)
	keyRng := streams.Get("node-keys")
	for i := 0; i < p.N; i++ {
		priv, err := authority.Issue(ibc.NodeID(i), keyRng)
		if err != nil {
			return nil, fmt.Errorf("core: issue node %d: %w", i, err)
		}
		revoker, err := codepool.NewRevoker(p.Gamma)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		codes := pool.Codes(i)
		codeSet := make(map[codepool.CodeID]bool, len(codes))
		for _, c := range codes {
			codeSet[c] = true
		}
		node := &Node{
			net:          n,
			index:        i,
			id:           ibc.NodeID(i),
			codes:        codes,
			codeSet:      codeSet,
			priv:         priv,
			revoker:      revoker,
			rng:          streams.Get(fmt.Sprintf("node-%d", i)),
			neighbors:    map[ibc.NodeID]*Neighbor{},
			responders:   map[ibc.NodeID]*dndpResponderState{},
			seenRequests: map[string]bool{},
			mndpOut:      map[ibc.NodeID]*mndpPending{},
			mndpIn:       map[ibc.NodeID]*mndpPending{},
			mndpStart:    map[ibc.NodeID]sim.Time{},
		}
		n.nodes[i] = node
		n.medium.Attach(i, node.handle)
	}
	return n, nil
}

// emit forwards a protocol event to the configured trace sink, if any.
func (n *Network) emit(e trace.Event) {
	if n.sink != nil {
		n.sink.Emit(e)
	}
}

// Engine exposes the simulation engine (tests and examples drive it).
func (n *Network) Engine() *sim.Engine { return n.engine }

// Params returns the parameter set.
func (n *Network) Params() analysis.Params { return n.params }

// Node returns node i.
func (n *Network) Node(i int) *Node { return n.nodes[i] }

// Pool exposes the authority's code pre-distribution (tests and the
// experiment harness inspect shared-code structure through it).
func (n *Network) Pool() *codepool.Pool { return n.pool }

// NumNodes returns the deployment size.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Positions returns the node placement (a copy).
func (n *Network) Positions() []field.Point {
	out := make([]field.Point, len(n.positions))
	copy(out, n.positions)
	return out
}

// PhysicalGraph returns the physical-neighbor graph.
func (n *Network) PhysicalGraph() *field.Graph { return n.graph }

// RevokeGlobally distributes an authority revocation for the given code:
// every honest node locally drops it, so subsequent messages spread with
// it are ignored network-wide (§I: compromised codes "can fortunately be
// revoked after being identified"). It returns how many nodes held the
// code.
func (n *Network) RevokeGlobally(code codepool.CodeID) (int, error) {
	if code < 0 || int(code) >= n.pool.S() {
		return 0, fmt.Errorf("core: code %d out of pool range [0, %d)", code, n.pool.S())
	}
	held := 0
	for _, nd := range n.nodes {
		if !nd.codeSet[code] {
			continue
		}
		held++
		if nd.compromised {
			continue
		}
		// Drive the local revoker past its threshold so holdsCode rejects
		// the code from now on.
		for !nd.revoker.Revoked(code) {
			nd.revoker.ReportInvalid(code)
		}
	}
	if held > 0 {
		if n.m != nil {
			n.m.revokedGlobal.Inc()
		}
		n.emit(trace.Event{
			At:     float64(n.engine.Now()),
			Kind:   trace.KindRevocation,
			Node:   -1,
			Peer:   -1,
			Detail: fmt.Sprintf("authority revoked code %d network-wide (%d holders)", code, held),
		})
	}
	return held, nil
}

// JoinNode admits a new node at the given position (§V-A late join): the
// authority hands it a pre-provisioned virtual-node code set (or runs a
// batch expansion) and issues its ID-based private key; the node is placed
// on the field and attached to the medium, ready to run discovery. It
// returns the new node's index.
func (n *Network) JoinNode(pos field.Point) (int, error) {
	if len(n.nodes) >= 1<<16 {
		return 0, fmt.Errorf("core: ID space exhausted")
	}
	if !n.deploy.Contains(pos) {
		return 0, fmt.Errorf("core: join position %v outside the field", pos)
	}
	idx, err := n.pool.Join(n.streams.Get("join"))
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	if idx != len(n.nodes) {
		return 0, fmt.Errorf("core: pool join index %d does not match node count %d", idx, len(n.nodes))
	}
	priv, err := n.authority.Issue(ibc.NodeID(idx), n.streams.Get("node-keys"))
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	revoker, err := codepool.NewRevoker(n.params.Gamma)
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	codes := n.pool.Codes(idx)
	codeSet := make(map[codepool.CodeID]bool, len(codes))
	for _, c := range codes {
		codeSet[c] = true
	}
	node := &Node{
		net:          n,
		index:        idx,
		id:           ibc.NodeID(idx),
		codes:        codes,
		codeSet:      codeSet,
		priv:         priv,
		revoker:      revoker,
		rng:          n.streams.Get(fmt.Sprintf("node-%d", idx)),
		neighbors:    map[ibc.NodeID]*Neighbor{},
		responders:   map[ibc.NodeID]*dndpResponderState{},
		seenRequests: map[string]bool{},
		mndpOut:      map[ibc.NodeID]*mndpPending{},
		mndpIn:       map[ibc.NodeID]*mndpPending{},
		mndpStart:    map[ibc.NodeID]sim.Time{},
	}
	n.nodes = append(n.nodes, node)
	n.positions = append(n.positions, pos)
	n.medium.Attach(idx, node.handle)
	graph, err := field.PhysicalGraph(n.deploy, n.positions, n.params.Range)
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	n.graph = graph
	return idx, nil
}

// RunDiscoveryFor schedules one D-NDP initiation by the given node and
// drains the engine — the natural first act of a freshly joined node.
func (n *Network) RunDiscoveryFor(node int) error {
	if node < 0 || node >= len(n.nodes) {
		return fmt.Errorf("core: node index %d out of range", node)
	}
	if n.nodes[node].compromised {
		return fmt.Errorf("core: node %d is compromised", node)
	}
	nd := n.nodes[node]
	if _, err := n.engine.Schedule(0, func() { nd.initiateDNDP() }); err != nil {
		return err
	}
	return n.engine.Run()
}

// ExpireStaleNeighbors implements the monitor-timeout policy of §IV-A at
// the message level: a node stops monitoring a session code once the
// corresponding neighbor has been silent past the threshold, i.e. — at
// this fidelity — once the peer is no longer a physical neighbor. Both
// endpoints drop the relationship and the per-peer protocol state, so a
// later encounter runs discovery afresh. It returns the number of logical
// links dropped.
func (n *Network) ExpireStaleNeighbors() int {
	dropped := 0
	for _, nd := range n.nodes {
		adjacent := map[ibc.NodeID]bool{}
		for _, v := range n.graph.Adj[nd.index] {
			adjacent[ibc.NodeID(v)] = true
		}
		for peer := range nd.neighbors {
			if adjacent[peer] {
				continue
			}
			delete(nd.neighbors, peer)
			delete(nd.responders, peer)
			delete(nd.mndpOut, peer)
			delete(nd.mndpIn, peer)
			if nd.initiator != nil {
				delete(nd.initiator.peers, peer)
			}
			delete(n.accepted, [2]ibc.NodeID{nd.id, peer})
			a, b := nd.id, peer
			if a > b {
				a, b = b, a
			}
			delete(n.pairLive, [2]ibc.NodeID{a, b})
			if n.m != nil {
				n.m.expiries.Inc()
			}
			n.emit(trace.Event{
				At:     float64(n.engine.Now()),
				Kind:   trace.KindExpiry,
				Node:   nd.index,
				Peer:   int(peer),
				Detail: "monitor timeout: peer out of range",
			})
			dropped++
		}
	}
	return dropped / 2 // counted once per endpoint
}

// UpdatePositions moves the nodes (e.g. one mobility step) and rebuilds
// the physical-neighbor graph; subsequent transmissions use the new
// topology. Logical-neighbor state is kept — as in the paper, a node drops
// a logical neighbor only when its monitoring timer expires, which the
// next discovery round models by simply re-running the protocols.
func (n *Network) UpdatePositions(positions []field.Point) error {
	if len(positions) != len(n.nodes) {
		return fmt.Errorf("core: %d positions for %d nodes", len(positions), len(n.nodes))
	}
	graph, err := field.PhysicalGraph(n.deploy, positions, n.params.Range)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	copy(n.positions, positions)
	n.graph = graph
	return nil
}

// MediumStats returns the radio counters.
func (n *Network) MediumStats() radio.Stats { return n.medium.Stats() }

// CompromisedCodes returns the number of codes the adversary knows.
func (n *Network) CompromisedCodes() int { return n.compromisedCodes.Len() }

// Compromise hands the listed nodes (and their spread codes) to the
// adversary.
func (n *Network) Compromise(nodes []int) error {
	for _, i := range nodes {
		if i < 0 || i >= len(n.nodes) {
			return fmt.Errorf("core: compromise index %d out of range", i)
		}
		if n.compromisedNodes[i] {
			continue
		}
		n.compromisedNodes[i] = true
		n.nodes[i].compromised = true
		for _, c := range n.nodes[i].codes {
			n.compromisedCodes.Add(c)
		}
	}
	return nil
}

// CompromiseRandom compromises q distinct random nodes.
func (n *Network) CompromiseRandom(q int) ([]int, error) {
	if q < 0 || q > len(n.nodes) {
		return nil, fmt.Errorf("core: cannot compromise %d of %d nodes", q, len(n.nodes))
	}
	perm := n.streams.Get("compromise").Perm(len(n.nodes))[:q]
	if err := n.Compromise(perm); err != nil {
		return nil, err
	}
	return perm, nil
}

// rngFor returns the per-purpose RNG stream.
func (n *Network) rngFor(name string) *rand.Rand { return n.streams.Get(name) }

// dropAccepted clears a one-directional acceptance and the live-pair mark
// (used by monitor-budget eviction and expiry).
func (n *Network) dropAccepted(self, peer ibc.NodeID) {
	delete(n.accepted, [2]ibc.NodeID{self, peer})
	a, b := self, peer
	if a > b {
		a, b = b, a
	}
	delete(n.pairLive, [2]ibc.NodeID{a, b})
}

// recordDiscovery notes a one-directional acceptance; when both directions
// exist the pair is recorded as mutually discovered.
func (n *Network) recordDiscovery(self, peer ibc.NodeID, via DiscoveryMethod) {
	now := n.engine.Now()
	n.accepted[[2]ibc.NodeID{self, peer}] = now
	if _, ok := n.accepted[[2]ibc.NodeID{peer, self}]; !ok {
		return
	}
	a, b := self, peer
	if a > b {
		a, b = b, a
	}
	if n.pairLive[[2]ibc.NodeID{a, b}] {
		return
	}
	n.pairLive[[2]ibc.NodeID{a, b}] = true
	latency := sim.Time(0)
	if t0, ok := n.initTime[a]; ok {
		latency = now - t0
	}
	if t0, ok := n.initTime[b]; ok && (latency == 0 || now-t0 < latency) {
		if now-t0 > 0 {
			latency = now - t0
		}
	}
	n.m.onDiscovery(via, float64(latency))
	n.pairs = append(n.pairs, PairDiscovery{A: a, B: b, Via: via, At: now, Latency: latency})
}

// Discoveries returns all mutually discovered pairs so far.
func (n *Network) Discoveries() []PairDiscovery {
	out := make([]PairDiscovery, len(n.pairs))
	copy(out, n.pairs)
	return out
}

// DiscoveredPair reports whether nodes i and j are mutual logical
// neighbors.
func (n *Network) DiscoveredPair(i, j int) bool {
	return n.nodes[i].IsLogicalNeighbor(ibc.NodeID(j)) &&
		n.nodes[j].IsLogicalNeighbor(ibc.NodeID(i))
}

// RunDNDP schedules every non-compromised node to initiate D-NDP at a
// uniform random time in [0, window) — the paper's randomized periodic
// initiation — and runs the engine until quiescent.
func (n *Network) RunDNDP(window sim.Time) error {
	rng := n.rngFor("dndp-start")
	for _, node := range n.nodes {
		if node.compromised {
			continue
		}
		node := node
		start := sim.Time(rng.Float64()) * window
		if _, err := n.engine.Schedule(start, func() { node.initiateDNDP() }); err != nil {
			return err
		}
	}
	return n.engine.Run()
}

// RunMNDP schedules every non-compromised node to initiate M-NDP at a
// uniform random time in [0, window) and runs the engine until quiescent.
func (n *Network) RunMNDP(window sim.Time) error {
	rng := n.rngFor("mndp-start")
	for _, node := range n.nodes {
		if node.compromised {
			continue
		}
		node := node
		start := sim.Time(rng.Float64()) * window
		if _, err := n.engine.Schedule(start, func() { node.initiateMNDP() }); err != nil {
			return err
		}
	}
	return n.engine.Run()
}

// handle dispatches a received message to the protocol handlers.
func (nd *Node) handle(from int, msg radio.Message) {
	if nd.compromised {
		return // compromised nodes do not run the honest protocol
	}
	switch msg.Kind {
	case kindHello:
		nd.onHello(msg)
	case kindConfirm:
		nd.onConfirm(msg)
	case kindAuth1:
		nd.onAuth1(msg)
	case kindAuth2:
		nd.onAuth2(msg)
	case kindMNDPRequest:
		nd.onMNDPRequest(from, msg)
	case kindMNDPResponse:
		nd.onMNDPResponse(from, msg)
	case kindSessionHello:
		nd.onSessionHello(from, msg)
	case kindSessionConfirm:
		nd.onSessionConfirm(from, msg)
	}
}
