package core

import (
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/codepool"
	"repro/internal/field"
	"repro/internal/ibc"
	"repro/internal/metrics"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// JammerKind selects the adversary model of §IV-B.
type JammerKind int

// Jammer models.
const (
	JamNone JammerKind = iota
	JamRandom
	JamReactive
	// JamIntelligent is the §V-B "intelligent attack": let HELLOs pass so
	// victims commit to a code, then reactively jam the follow-ups.
	JamIntelligent
	// JamPulse is a duty-cycled (partial-time) reactive jammer: it only
	// destroys a known-code transmission while its pulse is on
	// (NetworkConfig.PulseDuty fraction of the time).
	JamPulse
	// JamSweep rotates a window of jamming emitters across the compromised
	// codes once per epoch (NetworkConfig.SweepWindow/SweepEpoch).
	JamSweep
)

func (k JammerKind) String() string {
	switch k {
	case JamNone:
		return "none"
	case JamRandom:
		return "random"
	case JamReactive:
		return "reactive"
	case JamIntelligent:
		return "intelligent"
	case JamPulse:
		return "pulse"
	case JamSweep:
		return "sweep"
	default:
		return "unknown"
	}
}

// NetworkConfig configures a simulated JR-SND deployment.
type NetworkConfig struct {
	// Params holds the Table I parameter set.
	Params analysis.Params
	// Seed makes the whole run reproducible.
	Seed int64
	// Jammer selects the adversary model.
	Jammer JammerKind
	// Positions optionally fixes node placement; default is uniform.
	Positions []field.Point
	// GPSFilter enables the §V-C false-positive filter: nodes answer
	// M-NDP requests only when the origin's claimed position is within
	// transmission range.
	GPSFilter bool
	// AcceptWithoutBeacon models the naive M-NDP variant that accepts a
	// peer upon the signed response alone, skipping the session-code
	// HELLO/CONFIRM beacon. It exhibits the false positives the paper
	// warns about and exists for the ablation experiment.
	AcceptWithoutBeacon bool
	// DisableRedundancy turns off the x-sub-session redundancy design of
	// §V-B (responders pick a single shared code instead of all of them);
	// for the ablation experiment.
	DisableRedundancy bool
	// ModelProcessingDelays samples the §V-B buffering/processing delays
	// (t_r, t_d uniform in [0, t_p]) so discovery latency follows
	// Theorem 2. When false, handlers respond immediately (faster tests).
	ModelProcessingDelays bool
	// Trace, when set, receives structured protocol events
	// (transmissions, jam verdicts, discoveries, revocations, expiries).
	// Any trace.Sink works: the bounded in-memory trace.Recorder, a
	// streaming trace.JSONLWriter, or several at once via trace.Multi.
	Trace trace.Sink
	// Metrics, when set, receives the engine's telemetry: per-kind tx and
	// jam counters, the discovery-latency histogram, M-NDP flood fan-out,
	// revocation/expiry counters, and the sim-engine event counters. A nil
	// registry disables instrumentation at near-zero hot-path cost.
	Metrics *metrics.Registry
	// MonitorBudget caps how many session codes a node can monitor in
	// real time (§IV-A: real-time de-spreading needs one correlator chain
	// per code; see analysis.MonitorCapacity). When a new neighbor would
	// exceed the budget, the node stops monitoring its oldest session —
	// evicting that logical neighbor. 0 means unlimited.
	MonitorBudget int
	// Retry enables the handshake retry/backoff state machine (per-session
	// timeouts, half-open GC, randomized-backoff D-NDP retries, M-NDP
	// fallback). Nil keeps the paper's happy-path behavior.
	Retry *RetryConfig
	// Faults injects channel faults (loss, duplication, bounded reorder)
	// into the medium; see internal/faults for seed-driven plans.
	Faults radio.FaultInjector
	// Defense enables the Byzantine-input defenses: the per-peer replay
	// window over verified AUTH nonces and the per-transmitter half-open
	// rate limiter. Nil keeps the seed engine's behavior; see
	// DefaultDefenseConfig.
	Defense *DefenseConfig
	// PulseDuty is the JamPulse on-fraction in (0, 1]; 0 defaults to 0.5.
	PulseDuty float64
	// SweepWindow is the number of codes JamSweep targets at once;
	// 0 defaults to 1/4 of the compromised set (at least 1).
	SweepWindow int
	// SweepEpoch is the JamSweep rotation period in virtual seconds;
	// 0 defaults to 0.1 s.
	SweepEpoch float64
	// ClockSkewSpread gives each node a local-clock skew multiplier drawn
	// uniformly from [1-spread, 1+spread], applied to its processing
	// delays (visible when ModelProcessingDelays is on). Must be in [0, 1).
	ClockSkewSpread float64
	// Conduit, when set, decorates (or replaces) the delivery substrate:
	// it receives the in-memory medium the network just built and returns
	// the radio.Conduit the engine will actually send and receive through.
	// Returning the inner conduit unchanged is the sim path; returning a
	// wrapper observes every frame; returning something else entirely
	// (e.g. a transport.Conduit over UDP sockets) reroutes the engine's
	// delivery off the simulator. Nil keeps the in-memory medium.
	Conduit func(inner radio.Conduit) radio.Conduit
}

// PairDiscovery records a completed mutual discovery.
type PairDiscovery struct {
	A, B    ibc.NodeID
	Via     DiscoveryMethod
	At      sim.Time
	Latency sim.Time
}

// Network is a full simulated deployment: nodes, medium, jammer, and the
// authority with its code pool.
type Network struct {
	params    analysis.Params
	cfg       NetworkConfig
	engine    *sim.Engine
	streams   *sim.Streams
	pool      *codepool.Pool
	authority *ibc.Authority
	rootPub   []byte
	medium    *radio.Medium // the in-memory substrate (adversary arming needs it)
	conduit   radio.Conduit // the delivery substrate the engine sends through
	deploy    field.Field
	positions []field.Point
	graph     *field.Graph
	nodes     []*Node
	jammer    radio.Jammer
	sink      trace.Sink    // normalized from cfg.Trace; nil when tracing is off
	tracer    *trace.Tracer // span emission over sink; nil when tracing is off
	m         *coreMetrics  // nil when cfg.Metrics is nil
	limits    wire.Limits   // frame codec caps, derived from Params

	compromisedCodes *codepool.CodeSet
	compromisedNodes map[int]bool

	// one-directional acceptances; a pair is discovered when both exist
	accepted map[[2]ibc.NodeID]sim.Time
	pairs    []PairDiscovery
	pairLive map[[2]ibc.NodeID]bool // currently-recorded mutual pairs
	initTime map[ibc.NodeID]sim.Time
}

// NewNetwork builds the deployment. Nodes are created, issued keys and
// codes, and attached to the medium; no protocol activity is scheduled yet.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	p := cfg.Params
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if p.N > 1<<16 {
		return nil, fmt.Errorf("core: n=%d exceeds the 16-bit ID space", p.N)
	}
	if err := cfg.Retry.validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := cfg.Defense.validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.ClockSkewSpread < 0 || cfg.ClockSkewSpread >= 1 {
		return nil, fmt.Errorf("core: ClockSkewSpread %v outside [0, 1)", cfg.ClockSkewSpread)
	}
	streams := sim.NewStreams(cfg.Seed)
	engine := sim.NewEngine()

	deploy, err := field.New(p.FieldWidth, p.FieldHeight)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	positions := cfg.Positions
	if positions == nil {
		positions = deploy.PlaceUniform(streams.Get("placement"), p.N)
	}
	if len(positions) != p.N {
		return nil, fmt.Errorf("core: %d positions for %d nodes", len(positions), p.N)
	}
	graph, err := field.PhysicalGraph(deploy, positions, p.Range)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	pool, err := codepool.New(codepool.Config{N: p.N, M: p.M, L: p.L, Rand: streams.Get("codepool")})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	authority, err := ibc.NewAuthority(ibc.AuthorityConfig{Rand: streams.Get("authority")})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	compromised := codepool.NewCodeSet(pool.S())
	var jammer radio.Jammer
	switch cfg.Jammer {
	case JamNone:
		jammer = radio.NoJammer{}
	case JamReactive:
		jammer = radio.NewReactiveJammer(compromised)
	case JamRandom:
		jammer, err = radio.NewRandomJammer(p.Z, p.Mu, compromised, streams.Get("jammer"))
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	case JamIntelligent:
		jammer = radio.NewIntelligentJammer(compromised, []int{kindHello})
	case JamPulse:
		duty := cfg.PulseDuty
		if duty == 0 {
			duty = 0.5
		}
		jammer, err = radio.NewPulseJammer(radio.NewReactiveJammer(compromised), duty, streams.Get("jammer"))
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	case JamSweep:
		window := cfg.SweepWindow
		if window == 0 {
			window = max(1, p.Q*p.M/4) // ~1/4 of the worst-case compromised set
		}
		epoch := cfg.SweepEpoch
		if epoch == 0 {
			epoch = 0.1
		}
		jammer, err = radio.NewSweepJammer(compromised, window, sim.Time(epoch), engine.Now)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	default:
		return nil, fmt.Errorf("core: unknown jammer kind %d", cfg.Jammer)
	}

	n := &Network{
		params:           p,
		cfg:              cfg,
		engine:           engine,
		streams:          streams,
		pool:             pool,
		authority:        authority,
		rootPub:          authority.RootPublicKey(),
		deploy:           deploy,
		positions:        positions,
		graph:            graph,
		jammer:           jammer,
		compromisedCodes: compromised,
		compromisedNodes: map[int]bool{},
		accepted:         map[[2]ibc.NodeID]sim.Time{},
		pairLive:         map[[2]ibc.NodeID]bool{},
		initTime:         map[ibc.NodeID]sim.Time{},
		limits:           wire.LimitsFromParams(p),
	}
	n.sink = trace.Multi(cfg.Trace) // normalizes typed-nil recorders to nil
	n.tracer = trace.NewTracer(n.sink)
	engine.Trace(n.tracer)
	n.m = newCoreMetrics(cfg.Metrics)
	if cfg.Metrics != nil {
		engine.Instrument(sim.NewEngineMetrics(cfg.Metrics))
	}
	var observer func(from, to int, msg radio.Message, jammed bool)
	if n.sink != nil || n.m != nil {
		observer = func(from, to int, msg radio.Message, jammed bool) {
			n.m.onTransmission(msg.Kind, jammed)
			if n.sink == nil {
				return
			}
			kind := trace.KindTx
			if jammed {
				kind = trace.KindJammed
			}
			n.sink.Emit(trace.Event{
				At:     float64(engine.Now()),
				Kind:   kind,
				Node:   from,
				Peer:   to,
				Detail: fmt.Sprintf("%s code=%d bits=%d", messageKindName(msg.Kind), msg.Code, msg.PayloadBits),
			})
		}
	}
	n.medium, err = radio.NewMedium(radio.MediumConfig{
		Engine:   engine,
		Jammer:   jammer,
		Adjacent: func(node int) []int { return n.graph.Adj[node] },
		ChipLen:  p.ChipLen,
		ChipRate: p.ChipRate,
		Mu:       p.Mu,
		Observer: observer,
		Faults:   cfg.Faults,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	n.conduit = n.medium
	if cfg.Conduit != nil {
		if n.conduit = cfg.Conduit(n.medium); n.conduit == nil {
			return nil, fmt.Errorf("core: Conduit decorator returned nil")
		}
	}

	n.nodes = make([]*Node, p.N)
	keyRng := streams.Get("node-keys")
	for i := 0; i < p.N; i++ {
		node, err := n.newNode(i, keyRng)
		if err != nil {
			return nil, err
		}
		n.nodes[i] = node
		n.conduit.Attach(i, node.handle)
	}
	return n, nil
}

// newNode issues keys and codes for node idx and builds its protocol
// state. The caller appends it to n.nodes and attaches it to the medium.
func (n *Network) newNode(idx int, keyRng *rand.Rand) (*Node, error) {
	priv, err := n.authority.Issue(ibc.NodeID(idx), keyRng)
	if err != nil {
		return nil, fmt.Errorf("core: issue node %d: %w", idx, err)
	}
	revoker, err := codepool.NewRevoker(n.params.Gamma)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	codes := n.pool.Codes(idx)
	codeSet := make(map[codepool.CodeID]bool, len(codes))
	for _, c := range codes {
		codeSet[c] = true
	}
	skew := 1.0
	if spread := n.cfg.ClockSkewSpread; spread > 0 {
		skew = 1 + spread*(2*n.streams.Get("clock-skew").Float64()-1)
	}
	return &Node{
		net:          n,
		index:        idx,
		id:           ibc.NodeID(idx),
		codes:        codes,
		codeSet:      codeSet,
		priv:         priv,
		revoker:      revoker,
		rng:          n.streams.Get(fmt.Sprintf("node-%d", idx)),
		neighbors:    map[ibc.NodeID]*Neighbor{},
		responders:   map[ibc.NodeID]*dndpResponderState{},
		seenRequests: map[string]bool{},
		mndpOut:      map[ibc.NodeID]*mndpPending{},
		mndpIn:       map[ibc.NodeID]*mndpPending{},
		mndpStart:    map[ibc.NodeID]sim.Time{},
		skew:         skew,
		seenNonces:   map[ibc.NodeID]*nonceWindow{},
		buckets:      map[int]*tokenBucket{},
	}, nil
}

// emit forwards a protocol event to the configured trace sink, if any.
func (n *Network) emit(e trace.Event) {
	if n.sink != nil {
		n.sink.Emit(e)
	}
}

// Engine exposes the simulation engine (tests and examples drive it).
func (n *Network) Engine() *sim.Engine { return n.engine }

// Params returns the parameter set.
func (n *Network) Params() analysis.Params { return n.params }

// Node returns node i.
func (n *Network) Node(i int) *Node { return n.nodes[i] }

// Pool exposes the authority's code pre-distribution (tests and the
// experiment harness inspect shared-code structure through it).
func (n *Network) Pool() *codepool.Pool { return n.pool }

// NumNodes returns the deployment size.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Positions returns the node placement (a copy).
func (n *Network) Positions() []field.Point {
	out := make([]field.Point, len(n.positions))
	copy(out, n.positions)
	return out
}

// PhysicalGraph returns the physical-neighbor graph.
func (n *Network) PhysicalGraph() *field.Graph { return n.graph }

// RevokeGlobally distributes an authority revocation for the given code:
// every honest node locally drops it, so subsequent messages spread with
// it are ignored network-wide (§I: compromised codes "can fortunately be
// revoked after being identified"). It returns how many nodes held the
// code.
func (n *Network) RevokeGlobally(code codepool.CodeID) (int, error) {
	if code < 0 || int(code) >= n.pool.S() {
		return 0, fmt.Errorf("core: code %d out of pool range [0, %d)", code, n.pool.S())
	}
	held := 0
	for _, nd := range n.nodes {
		if !nd.codeSet[code] {
			continue
		}
		held++
		if nd.compromised {
			continue
		}
		// Drive the local revoker past its threshold so holdsCode rejects
		// the code from now on.
		for !nd.revoker.Revoked(code) {
			nd.revoker.ReportInvalid(code)
		}
	}
	if held > 0 {
		if n.m != nil {
			n.m.revokedGlobal.Inc()
		}
		n.emit(trace.Event{
			At:     float64(n.engine.Now()),
			Kind:   trace.KindRevocation,
			Node:   -1,
			Peer:   -1,
			Detail: fmt.Sprintf("authority revoked code %d network-wide (%d holders)", code, held),
		})
	}
	return held, nil
}

// JoinNode admits a new node at the given position (§V-A late join): the
// authority hands it a pre-provisioned virtual-node code set (or runs a
// batch expansion) and issues its ID-based private key; the node is placed
// on the field and attached to the medium, ready to run discovery. It
// returns the new node's index.
func (n *Network) JoinNode(pos field.Point) (int, error) {
	if len(n.nodes) >= 1<<16 {
		return 0, fmt.Errorf("core: ID space exhausted")
	}
	if !n.deploy.Contains(pos) {
		return 0, fmt.Errorf("core: join position %v outside the field", pos)
	}
	idx, err := n.pool.Join(n.streams.Get("join"))
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	if idx != len(n.nodes) {
		return 0, fmt.Errorf("core: pool join index %d does not match node count %d", idx, len(n.nodes))
	}
	node, err := n.newNode(idx, n.streams.Get("node-keys"))
	if err != nil {
		return 0, err
	}
	n.nodes = append(n.nodes, node)
	n.positions = append(n.positions, pos)
	n.conduit.Attach(idx, node.handle)
	graph, err := field.PhysicalGraph(n.deploy, n.positions, n.params.Range)
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	n.graph = graph
	return idx, nil
}

// RunDiscoveryFor schedules one D-NDP initiation by the given node and
// drains the engine — the natural first act of a freshly joined node.
func (n *Network) RunDiscoveryFor(node int) error {
	if err := n.ScheduleDiscovery(node, 0); err != nil {
		return err
	}
	return n.engine.Run()
}

// ScheduleDiscovery queues one D-NDP initiation by the given node after
// delay without draining the engine, so churn plans can interleave
// restarts and re-discovery with other scheduled faults.
func (n *Network) ScheduleDiscovery(node int, delay sim.Time) error {
	if node < 0 || node >= len(n.nodes) {
		return fmt.Errorf("core: node index %d out of range", node)
	}
	nd := n.nodes[node]
	if nd.compromised {
		return fmt.Errorf("core: node %d is compromised", node)
	}
	_, err := n.engine.Schedule(delay, func() {
		if !nd.down && !nd.compromised {
			nd.startDNDP()
		}
	})
	return err
}

// CrashNode fails node i (churn fault model): it loses all volatile
// protocol state — neighbor table, handshake state, M-NDP pendings — and
// neither sends nor receives until RestartNode. Peers keep their stale
// view of it until the monitor timeout (ExpireStaleNeighbors) reaps it.
func (n *Network) CrashNode(i int) error {
	if i < 0 || i >= len(n.nodes) {
		return fmt.Errorf("core: node index %d out of range", i)
	}
	nd := n.nodes[i]
	if nd.down {
		return nil
	}
	nd.down = true
	n.endNodeSpans(nd, "crashed")
	for peer := range nd.neighbors {
		n.dropAccepted(nd.id, peer)
	}
	nd.neighbors = map[ibc.NodeID]*Neighbor{}
	nd.responders = map[ibc.NodeID]*dndpResponderState{}
	nd.initiator = nil
	nd.seenRequests = map[string]bool{}
	nd.mndpOut = map[ibc.NodeID]*mndpPending{}
	nd.mndpIn = map[ibc.NodeID]*mndpPending{}
	nd.mndpStart = map[ibc.NodeID]sim.Time{}
	nd.dndpAttempts = 0
	nd.mndpFallback = false
	nd.resetDefenses()
	delete(n.initTime, nd.id)
	if n.m != nil {
		n.m.crashes.Inc()
	}
	n.emit(trace.Event{
		At:     float64(n.engine.Now()),
		Kind:   trace.KindCrash,
		Node:   i,
		Peer:   -1,
		Detail: "node crashed: volatile state lost",
	})
	return nil
}

// RestartNode brings a crashed node back up with empty protocol state; it
// re-runs discovery only when the caller schedules it (ScheduleDiscovery
// or the next RunDNDP round).
func (n *Network) RestartNode(i int) error {
	if i < 0 || i >= len(n.nodes) {
		return fmt.Errorf("core: node index %d out of range", i)
	}
	nd := n.nodes[i]
	if !nd.down {
		return nil
	}
	nd.down = false
	if n.m != nil {
		n.m.restarts.Inc()
	}
	n.emit(trace.Event{
		At:     float64(n.engine.Now()),
		Kind:   trace.KindRestart,
		Node:   i,
		Peer:   -1,
		Detail: "node restarted with empty state",
	})
	return nil
}

// ExpireStaleNeighbors implements the monitor-timeout policy of §IV-A at
// the message level: a node stops monitoring a session code once the
// corresponding neighbor has been silent past the threshold, i.e. — at
// this fidelity — once the peer is no longer a physical neighbor. Both
// endpoints drop the relationship and the per-peer protocol state, so a
// later encounter runs discovery afresh. It returns the number of logical
// links dropped.
func (n *Network) ExpireStaleNeighbors() int {
	droppedPairs := map[[2]ibc.NodeID]bool{}
	for _, nd := range n.nodes {
		if nd.down {
			continue // crashed nodes already lost all state
		}
		adjacent := map[ibc.NodeID]bool{}
		for _, v := range n.graph.Adj[nd.index] {
			if !n.nodes[v].down {
				adjacent[ibc.NodeID(v)] = true // a crashed peer is silent: expire it
			}
		}
		for peer := range nd.neighbors {
			if adjacent[peer] {
				continue
			}
			delete(nd.neighbors, peer)
			delete(nd.responders, peer)
			delete(nd.mndpOut, peer)
			delete(nd.mndpIn, peer)
			if nd.initiator != nil {
				delete(nd.initiator.peers, peer)
			}
			delete(n.accepted, [2]ibc.NodeID{nd.id, peer})
			a, b := nd.id, peer
			if a > b {
				a, b = b, a
			}
			delete(n.pairLive, [2]ibc.NodeID{a, b})
			droppedPairs[[2]ibc.NodeID{a, b}] = true
			if n.m != nil {
				n.m.expiries.Inc()
			}
			n.emit(trace.Event{
				At:     float64(n.engine.Now()),
				Kind:   trace.KindExpiry,
				Node:   nd.index,
				Peer:   int(peer),
				Detail: "monitor timeout: peer out of range or silent",
			})
		}
	}
	return len(droppedPairs)
}

// ExpireSilentSessions models the §IV-A inactivity monitor timeout on the
// session itself: any logical-neighbor entry whose peer never reciprocated
// (the peer's acceptance record is absent — its side crashed mid-handshake
// or the closing message was destroyed) is dropped. Together with the
// half-open GC this restores the symmetry invariant after arbitrary fault
// schedules. It returns the number of one-sided entries dropped.
func (n *Network) ExpireSilentSessions() int {
	dropped := 0
	for _, nd := range n.nodes {
		if nd.down || nd.compromised {
			continue
		}
		for peer := range nd.neighbors {
			if _, ok := n.accepted[[2]ibc.NodeID{peer, nd.id}]; ok {
				continue
			}
			delete(nd.neighbors, peer)
			n.dropAccepted(nd.id, peer)
			dropped++
			if n.m != nil {
				n.m.silentExpiries.Inc()
			}
			n.emit(trace.Event{
				At:     float64(n.engine.Now()),
				Kind:   trace.KindExpiry,
				Node:   nd.index,
				Peer:   int(peer),
				Detail: "inactivity timeout: peer never reciprocated",
			})
		}
	}
	return dropped
}

// CompromiseCodes hands the listed pool codes to the adversary without
// compromising any node — modeling code leakage (e.g. side-channel capture
// of a correlator). Chaos scenarios use it to build worst-case jamming
// fault plans.
func (n *Network) CompromiseCodes(codes []codepool.CodeID) error {
	for _, c := range codes {
		if c < 0 || int(c) >= n.pool.S() {
			return fmt.Errorf("core: code %d out of pool range [0, %d)", c, n.pool.S())
		}
		n.compromisedCodes.Add(c)
	}
	return nil
}

// UpdatePositions moves the nodes (e.g. one mobility step) and rebuilds
// the physical-neighbor graph; subsequent transmissions use the new
// topology. Logical-neighbor state is kept — as in the paper, a node drops
// a logical neighbor only when its monitoring timer expires, which the
// next discovery round models by simply re-running the protocols.
func (n *Network) UpdatePositions(positions []field.Point) error {
	if len(positions) != len(n.nodes) {
		return fmt.Errorf("core: %d positions for %d nodes", len(positions), len(n.nodes))
	}
	graph, err := field.PhysicalGraph(n.deploy, positions, n.params.Range)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	copy(n.positions, positions)
	n.graph = graph
	return nil
}

// MediumStats returns the delivery counters of the active conduit (the
// in-memory medium unless NetworkConfig.Conduit rerouted delivery).
func (n *Network) MediumStats() radio.Stats { return n.conduit.Stats() }

// CompromisedCodes returns the number of codes the adversary knows.
func (n *Network) CompromisedCodes() int { return n.compromisedCodes.Len() }

// Compromise hands the listed nodes (and their spread codes) to the
// adversary.
func (n *Network) Compromise(nodes []int) error {
	for _, i := range nodes {
		if i < 0 || i >= len(n.nodes) {
			return fmt.Errorf("core: compromise index %d out of range", i)
		}
		if n.compromisedNodes[i] {
			continue
		}
		n.compromisedNodes[i] = true
		n.nodes[i].compromised = true
		for _, c := range n.nodes[i].codes {
			n.compromisedCodes.Add(c)
		}
	}
	return nil
}

// CompromiseRandom compromises q distinct random nodes.
func (n *Network) CompromiseRandom(q int) ([]int, error) {
	if q < 0 || q > len(n.nodes) {
		return nil, fmt.Errorf("core: cannot compromise %d of %d nodes", q, len(n.nodes))
	}
	perm := n.streams.Get("compromise").Perm(len(n.nodes))[:q]
	if err := n.Compromise(perm); err != nil {
		return nil, err
	}
	return perm, nil
}

// rngFor returns the per-purpose RNG stream.
func (n *Network) rngFor(name string) *rand.Rand { return n.streams.Get(name) }

// dropAccepted clears a one-directional acceptance and the live-pair mark
// (used by monitor-budget eviction and expiry).
func (n *Network) dropAccepted(self, peer ibc.NodeID) {
	delete(n.accepted, [2]ibc.NodeID{self, peer})
	a, b := self, peer
	if a > b {
		a, b = b, a
	}
	delete(n.pairLive, [2]ibc.NodeID{a, b})
}

// recordDiscovery notes a one-directional acceptance; when both directions
// exist the pair is recorded as mutually discovered.
func (n *Network) recordDiscovery(self, peer ibc.NodeID, via DiscoveryMethod) {
	now := n.engine.Now()
	n.accepted[[2]ibc.NodeID{self, peer}] = now
	if _, ok := n.accepted[[2]ibc.NodeID{peer, self}]; !ok {
		return
	}
	a, b := self, peer
	if a > b {
		a, b = b, a
	}
	if n.pairLive[[2]ibc.NodeID{a, b}] {
		return
	}
	n.pairLive[[2]ibc.NodeID{a, b}] = true
	latency := sim.Time(0)
	if t0, ok := n.initTime[a]; ok {
		latency = now - t0
	}
	if t0, ok := n.initTime[b]; ok && (latency == 0 || now-t0 < latency) {
		if now-t0 > 0 {
			latency = now - t0
		}
	}
	n.m.onDiscovery(via, float64(latency))
	n.pairs = append(n.pairs, PairDiscovery{A: a, B: b, Via: via, At: now, Latency: latency})
}

// Discoveries returns all mutually discovered pairs so far.
func (n *Network) Discoveries() []PairDiscovery {
	out := make([]PairDiscovery, len(n.pairs))
	copy(out, n.pairs)
	return out
}

// DiscoveredPair reports whether nodes i and j are mutual logical
// neighbors.
func (n *Network) DiscoveredPair(i, j int) bool {
	return n.nodes[i].IsLogicalNeighbor(ibc.NodeID(j)) &&
		n.nodes[j].IsLogicalNeighbor(ibc.NodeID(i))
}

// RunDNDP schedules every non-compromised node to initiate D-NDP at a
// uniform random time in [0, window) — the paper's randomized periodic
// initiation — and runs the engine until quiescent.
func (n *Network) RunDNDP(window sim.Time) error {
	rng := n.rngFor("dndp-start")
	for _, node := range n.nodes {
		if node.compromised || node.down {
			continue
		}
		node := node
		start := sim.Time(rng.Float64()) * window
		if _, err := n.engine.Schedule(start, func() {
			if !node.down {
				node.startDNDP()
			}
		}); err != nil {
			return err
		}
	}
	if err := n.engine.Run(); err != nil {
		return err
	}
	n.closeAttemptSpans("quiesced")
	return nil
}

// RunMNDP schedules every non-compromised node to initiate M-NDP at a
// uniform random time in [0, window) and runs the engine until quiescent.
func (n *Network) RunMNDP(window sim.Time) error {
	rng := n.rngFor("mndp-start")
	for _, node := range n.nodes {
		if node.compromised || node.down {
			continue
		}
		node := node
		start := sim.Time(rng.Float64()) * window
		if _, err := n.engine.Schedule(start, func() {
			if !node.down {
				node.initiateMNDP()
			}
		}); err != nil {
			return err
		}
	}
	return n.engine.Run()
}

// send is the single egress path of the protocol engine: it encodes the
// typed payload into a canonical wire frame and puts the frame on the
// medium (to == -1 broadcasts). Everything a receiver sees is bytes — an
// on-air interceptor can corrupt, record, or replay them, and the
// receiver's decoder is the only thing standing between those bytes and
// protocol state.
func (n *Network) send(from, to int, msg radio.Message) error {
	frame, err := wire.Encode(msg.Kind, msg.Payload, n.limits)
	if err != nil {
		return fmt.Errorf("core: encode %s: %w", messageKindName(msg.Kind), err)
	}
	msg.Payload = frame
	if to < 0 {
		return n.conduit.Broadcast(from, msg)
	}
	return n.conduit.Unicast(from, to, msg)
}

// handle is the single ingress path: decode the delivered frame under the
// derived limits, then dispatch on the *decoded* kind — a corrupted kind
// byte or payload is a decode error, not a misrouted struct. Rejected
// frames are counted (`decode_errors`) and traced, never processed.
func (nd *Node) handle(from int, msg radio.Message) {
	if nd.compromised || nd.down {
		return // compromised nodes do not run the honest protocol; crashed radios are off
	}
	frame, ok := msg.Payload.([]byte)
	if !ok {
		return // not a wire frame; nothing the engine can parse
	}
	kind, payload, err := wire.Decode(frame, nd.net.limits)
	if err != nil {
		nd.net.m.onDecodeError()
		nd.net.emit(trace.Event{
			At:     float64(nd.net.engine.Now()),
			Kind:   trace.KindDrop,
			Node:   nd.index,
			Peer:   from,
			Detail: fmt.Sprintf("frame rejected by decoder: %v", err),
		})
		return
	}
	msg.Payload = payload
	switch kind {
	case kindHello:
		nd.onHello(from, msg)
	case kindConfirm:
		nd.onConfirm(msg)
	case kindAuth1:
		nd.onAuth1(from, msg)
	case kindAuth2:
		nd.onAuth2(msg)
	case kindMNDPRequest:
		nd.onMNDPRequest(from, msg)
	case kindMNDPResponse:
		nd.onMNDPResponse(from, msg)
	case kindSessionHello:
		nd.onSessionHello(from, msg)
	case kindSessionConfirm:
		nd.onSessionConfirm(from, msg)
	}
}
