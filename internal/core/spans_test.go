package core

import (
	"testing"

	"repro/internal/trace"
)

// TestDNDPSpansReconstructPipeline: a clean two-node discovery must leave
// a reconstructable causal trace — attempt roots under sim.run, with the
// sweep/buffer/prep/verify/confirm phases hanging off them.
func TestDNDPSpansReconstructPipeline(t *testing.T) {
	rec, err := trace.NewRecorder(4096)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(NetworkConfig{
		Params:                smallParams(2, 5),
		Seed:                  1,
		Jammer:                JamNone,
		Positions:             clusterPositions(2),
		Trace:                 rec,
		ModelProcessingDelays: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if !net.DiscoveredPair(0, 1) {
		t.Fatal("pair failed to discover")
	}

	f := trace.BuildSpans(rec.Events())
	if f.OrphanEnds != 0 {
		t.Fatalf("OrphanEnds = %d, want 0", f.OrphanEnds)
	}
	if len(f.Roots) != 1 || f.Roots[0].Name != "sim.run" {
		t.Fatalf("roots = %+v, want single sim.run", f.Roots)
	}
	attempts := f.Named("dndp.attempt")
	if len(attempts) != 2 {
		t.Fatalf("got %d dndp.attempt spans, want 2 (one per initiator)", len(attempts))
	}
	for _, a := range attempts {
		if a.Parent == 0 {
			t.Fatalf("attempt span %d has no parent; want the sim.run span", a.ID)
		}
	}
	// Each phase of the pipeline must appear, with nonzero virtual duration
	// for the delay-modeled ones.
	for _, phase := range []string{
		"dndp.hello_sweep", "dndp.hello_buffer", "dndp.auth1_prep",
		"dndp.auth1_verify", "dndp.confirm",
	} {
		spans := f.Named(phase)
		if len(spans) == 0 {
			t.Errorf("no %s spans recorded", phase)
			continue
		}
		for _, s := range spans {
			if s.Open {
				t.Errorf("%s span %d left open in a clean run", phase, s.ID)
			}
			if s.Parent == 0 {
				t.Errorf("%s span %d has no parent attempt", phase, s.ID)
			}
		}
	}
	// The buffer phase models t_b >= the m-code sweep, so it must have real
	// virtual extent.
	if buf := f.Named("dndp.hello_buffer"); buf[0].Duration() <= 0 {
		t.Errorf("hello_buffer duration = %v, want > 0", buf[0].Duration())
	}
	// A successful handshake ends its confirm span with the verdict.
	confirmed := false
	for _, s := range f.Named("dndp.confirm") {
		if s.EndDetail == "discovered" {
			confirmed = true
		}
	}
	if !confirmed {
		t.Error("no dndp.confirm span ended with \"discovered\"")
	}
}

// TestSpansUntracedRunIsUnchanged: with no sink configured the tracer is
// nil and a run must work exactly as before (guard against span plumbing
// perturbing the untraced path).
func TestSpansUntracedRunIsUnchanged(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(3, 5),
		Seed:      7,
		Jammer:    JamNone,
		Positions: clusterPositions(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if got := len(net.Discoveries()); got != 3 {
		t.Fatalf("got %d discoveries, want 3", got)
	}
}

// TestDNDPSpansCrashClosesAttempt: crashing a node must close its open
// spans with a "crashed" verdict rather than leaking them.
func TestDNDPSpansCrashClosesAttempt(t *testing.T) {
	rec, err := trace.NewRecorder(4096)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(2, 5),
		Seed:      3,
		Jammer:    JamNone,
		Positions: clusterPositions(2),
		Trace:     rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Start a round, crash the initiator mid-flight.
	if err := net.ScheduleDiscovery(0, 0); err != nil {
		t.Fatal(err)
	}
	net.Engine().MustSchedule(0.0001, func() {
		if err := net.CrashNode(0); err != nil {
			t.Error(err)
		}
	})
	if err := net.Engine().Run(); err != nil {
		t.Fatal(err)
	}
	f := trace.BuildSpans(rec.Events())
	attempts := f.Named("dndp.attempt")
	if len(attempts) != 1 {
		t.Fatalf("got %d attempts, want 1", len(attempts))
	}
	if attempts[0].Open || attempts[0].EndDetail != "crashed" {
		t.Fatalf("attempt = %+v, want closed with \"crashed\"", attempts[0])
	}
}
