package core

import (
	"testing"

	"repro/internal/sim"
)

// dosNetwork builds a cluster where node `attackerIdx` is compromised.
func dosNetwork(t *testing.T, n, m, l, gamma int, seed int64) *Network {
	t.Helper()
	p := smallParams(n, m)
	p.L = l
	p.Gamma = gamma
	net, err := NewNetwork(NetworkConfig{
		Params:    p,
		Seed:      seed,
		Jammer:    JamNone,
		Positions: clusterPositions(n),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Compromise([]int{n - 1}); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestDoSAttackForcesVerificationWork(t *testing.T) {
	net := dosNetwork(t, 6, 4, 6, 1000, 21) // γ huge: no revocation kicks in
	report, err := net.RunDoSAttack(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if report.Injected == 0 {
		t.Fatal("attack injected nothing")
	}
	// Without effective revocation every injection costs a key computation
	// and a failed MAC verification.
	if report.MACVerifications != report.Injected {
		t.Fatalf("MAC verifications = %d, want %d (one per injection)",
			report.MACVerifications, report.Injected)
	}
	if report.MACFailures != report.Injected {
		t.Fatalf("MAC failures = %d, want %d", report.MACFailures, report.Injected)
	}
	if report.KeyComputations != report.Injected {
		t.Fatalf("key computations = %d, want %d (fresh forged identity each time)",
			report.KeyComputations, report.Injected)
	}
	if report.RevokedCodes != 0 {
		t.Fatalf("revoked %d codes with γ=1000", report.RevokedCodes)
	}
}

func TestDoSAttackBoundedByRevocation(t *testing.T) {
	// §V-D: with threshold γ, a compromised code can burn at most γ+1
	// verifications per victim before it is locally revoked.
	const gamma = 3
	net := dosNetwork(t, 6, 4, 6, gamma, 22)
	report, err := net.RunDoSAttack(5, 50) // many rounds; most must be ignored
	if err != nil {
		t.Fatal(err)
	}
	// 5 honest victims × 4 codes × (γ+1) is the hard bound on forced
	// verifications (the attacker reuses the same 4 codes every round).
	bound := 5 * 4 * (gamma + 1)
	if report.MACVerifications > bound {
		t.Fatalf("MAC verifications = %d exceed the (l−1)·γ-style bound %d",
			report.MACVerifications, bound)
	}
	if report.MACVerifications >= report.Injected {
		t.Fatalf("revocation saved nothing: %d verifications for %d injections",
			report.MACVerifications, report.Injected)
	}
	if report.RevokedCodes == 0 {
		t.Fatal("no codes were revoked despite sustained attack")
	}
	// Every victim ends up revoking all four attacker codes.
	if want := 5 * 4; report.RevokedCodes != want {
		t.Fatalf("revoked codes = %d, want %d", report.RevokedCodes, want)
	}
}

func TestDoSRevokedCodesStayUsableForOthers(t *testing.T) {
	// Local revocation must not poison discovery between honest nodes on
	// other codes: with l = n every code is shared, so after the attack
	// revokes the attacker's codes... which is the whole pool here. Use a
	// sparser pool (l < n) so honest pairs keep clean codes.
	net := dosNetwork(t, 8, 6, 2, 2, 23)
	if _, err := net.RunDoSAttack(7, 30); err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	// At least one honest pair with a clean shared code must discover.
	found := false
	for a := 0; a < 7 && !found; a++ {
		for b := a + 1; b < 7 && !found; b++ {
			if net.DiscoveredPair(a, b) {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("DoS attack plus revocation wiped out all honest discovery")
	}
}

func TestDoSAttackerCrashMidWaveStopsInjecting(t *testing.T) {
	// Churn meets DoS: crash the attacker between waves. Waves scheduled
	// past the crash must transmit nothing, and the report must account
	// only frames that actually hit the air.
	const rounds = 4
	net := dosNetwork(t, 4, 5, 4, 1000, 25)
	p := net.Params()
	// Waves fire at 0, t_key, 2·t_key, 3·t_key; crash at 1.5·t_key, so
	// exactly the first two waves transmit.
	if _, err := net.Engine().Schedule(sim.Time(1.5*p.TKey), func() {
		_ = net.CrashNode(3)
	}); err != nil {
		t.Fatal(err)
	}
	report, err := net.RunDoSAttack(3, rounds)
	if err != nil {
		t.Fatal(err)
	}
	perWave := len(net.Node(3).codes) * 3 // every victim holds every code here
	if want := 2 * perWave; report.Injected != want {
		t.Fatalf("injected = %d after mid-attack crash, want %d (2 of %d waves)",
			report.Injected, want, rounds)
	}
	if report.MACVerifications != report.Injected {
		t.Fatalf("MAC verifications = %d, want %d: victims must only pay for frames on the air",
			report.MACVerifications, report.Injected)
	}
}

func TestDoSValidation(t *testing.T) {
	net := dosNetwork(t, 4, 3, 4, 5, 24)
	if _, err := net.RunDoSAttack(99, 1); err == nil {
		t.Fatal("accepted out-of-range attacker")
	}
	if _, err := net.RunDoSAttack(0, 1); err == nil {
		t.Fatal("accepted non-compromised attacker")
	}
	if _, err := net.RunDoSAttack(3, 0); err == nil {
		t.Fatal("accepted zero rounds")
	}
}
