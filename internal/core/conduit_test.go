package core

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/radio"
)

// countingConduit decorates the in-memory medium: every frame the engine
// sends passes through it unchanged, and every frame must already be a
// canonical wire byte slice (the single-egress-path promise of send).
type countingConduit struct {
	radio.Conduit
	broadcasts int
	unicasts   int
	badPayload int
}

func (c *countingConduit) Broadcast(from int, msg radio.Message) error {
	c.broadcasts++
	if _, ok := msg.Payload.([]byte); !ok {
		c.badPayload++
	}
	return c.Conduit.Broadcast(from, msg)
}

func (c *countingConduit) Unicast(from, to int, msg radio.Message) error {
	c.unicasts++
	if _, ok := msg.Payload.([]byte); !ok {
		c.badPayload++
	}
	return c.Conduit.Unicast(from, to, msg)
}

func conduitTestParams() analysis.Params {
	p := analysis.Defaults()
	p.N = 12
	p.M = 8
	p.L = 4
	p.Q = 0
	return p
}

// TestConduitSeam: a decorated conduit sees every transmission the engine
// makes, all of them already-encoded wire frames, and the protocol outcome
// is unaffected by the decoration.
func TestConduitSeam(t *testing.T) {
	var cc *countingConduit
	cfg := NetworkConfig{
		Params: conduitTestParams(),
		Seed:   7,
		Conduit: func(inner radio.Conduit) radio.Conduit {
			cc = &countingConduit{Conduit: inner}
			return cc
		},
	}
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.RunDNDP(1.0); err != nil {
		t.Fatal(err)
	}
	if err := n.RunMNDP(1.0); err != nil { // M-NDP adds the unicast paths
		t.Fatal(err)
	}
	if cc.broadcasts == 0 {
		t.Fatal("decorated conduit saw no broadcasts; the engine bypassed the seam")
	}
	if cc.unicasts == 0 {
		t.Fatal("decorated conduit saw no unicasts; the engine bypassed the seam")
	}
	if cc.badPayload != 0 {
		t.Fatalf("%d frames crossed the conduit without being wire-encoded bytes", cc.badPayload)
	}
	if len(n.Discoveries()) == 0 {
		t.Fatal("no discoveries through the decorated conduit")
	}
	if got, want := n.MediumStats().Transmissions, cc.broadcasts+cc.unicasts; got != want {
		t.Fatalf("MediumStats().Transmissions = %d, conduit saw %d", got, want)
	}
}

// TestConduitDecorationPreservesDeterminism: the same seed must produce an
// identical discovery transcript with and without a pass-through decorator
// — the seam adds observation, never behavior.
func TestConduitDecorationPreservesDeterminism(t *testing.T) {
	run := func(decorate bool) []PairDiscovery {
		cfg := NetworkConfig{Params: conduitTestParams(), Seed: 11}
		if decorate {
			cfg.Conduit = func(inner radio.Conduit) radio.Conduit {
				return &countingConduit{Conduit: inner}
			}
		}
		n, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.RunDNDP(1.0); err != nil {
			t.Fatal(err)
		}
		return n.Discoveries()
	}
	plain, decorated := run(false), run(true)
	if fmt.Sprint(plain) != fmt.Sprint(decorated) {
		t.Fatalf("decoration changed the discovery transcript:\nplain:     %v\ndecorated: %v", plain, decorated)
	}
}

// TestConduitNilDecoratorRejected: a decorator returning nil is a
// construction error, not a latent nil dereference at first send.
func TestConduitNilDecoratorRejected(t *testing.T) {
	cfg := NetworkConfig{
		Params:  conduitTestParams(),
		Seed:    1,
		Conduit: func(radio.Conduit) radio.Conduit { return nil },
	}
	if _, err := NewNetwork(cfg); err == nil {
		t.Fatal("NewNetwork accepted a nil conduit")
	}
}
