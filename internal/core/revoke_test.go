package core

import (
	"testing"

	"repro/internal/codepool"
)

func TestGlobalRevocationSilencesCode(t *testing.T) {
	// With l = n there is a single shared pool; revoke every code globally
	// and discovery must die entirely.
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(3, 4),
		Seed:      101,
		Jammer:    JamNone,
		Positions: clusterPositions(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < net.Pool().S(); c++ {
		held, err := net.RevokeGlobally(codepool.CodeID(c))
		if err != nil {
			t.Fatal(err)
		}
		if held != 3 {
			t.Fatalf("code %d held by %d nodes, want 3", c, held)
		}
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if len(net.Discoveries()) != 0 {
		t.Fatal("discovery succeeded on globally revoked codes")
	}
}

func TestGlobalRevocationPartialKeepsOtherCodes(t *testing.T) {
	// Revoking a single compromised code must not break discovery via the
	// remaining codes.
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(2, 6),
		Seed:      102,
		Jammer:    JamNone,
		Positions: clusterPositions(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.RevokeGlobally(0); err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if !net.DiscoveredPair(0, 1) {
		t.Fatal("single-code revocation broke discovery entirely")
	}
}

func TestGlobalRevocationNeutralizesReactiveJamming(t *testing.T) {
	// The full §V-D story: the adversary compromises a node; the
	// authority identifies and revokes the leaked codes; honest nodes
	// fall back to their remaining clean codes and rediscover each other
	// despite the reactive jammer still using the leaked material.
	p := smallParams(6, 10)
	p.L = 3
	net, err := NewNetwork(NetworkConfig{
		Params:    p,
		Seed:      103,
		Jammer:    JamReactive,
		Positions: clusterPositions(6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Compromise([]int{5}); err != nil {
		t.Fatal(err)
	}
	for _, c := range net.Pool().Codes(5) {
		if _, err := net.RevokeGlobally(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	// Pairs sharing at least one clean (non-leaked) code must discover;
	// the leaked codes are both jammed AND revoked, so they play no part.
	leaked := map[codepool.CodeID]bool{}
	for _, c := range net.Pool().Codes(5) {
		leaked[c] = true
	}
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			clean := 0
			for _, c := range net.Pool().Shared(a, b) {
				if !leaked[c] {
					clean++
				}
			}
			if clean > 0 && !net.DiscoveredPair(a, b) {
				t.Fatalf("pair (%d,%d) with %d clean codes failed despite revocation", a, b, clean)
			}
		}
	}
}

func TestRevokeGloballyValidation(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(2, 3),
		Seed:      104,
		Jammer:    JamNone,
		Positions: clusterPositions(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.RevokeGlobally(-1); err == nil {
		t.Fatal("accepted negative code")
	}
	if _, err := net.RevokeGlobally(codepool.CodeID(net.Pool().S())); err == nil {
		t.Fatal("accepted out-of-pool code")
	}
}
