package core

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/sim"
)

// Epoch-driven operation: the paper's nodes "periodically perform neighbor
// discovery" as mobility changes the topology. RunEpochs packages the loop
// the examples hand-roll: step the mobility model, expire monitor-timed-out
// sessions, re-run both protocols, and report per-epoch coverage.

// EpochStats summarizes one discovery epoch.
type EpochStats struct {
	Epoch          int
	PhysicalLinks  int // honest physical links at the epoch's topology
	SecuredLinks   int // of those, mutually discovered
	Expired        int // sessions dropped by the monitor timeout this epoch
	NewDiscoveries int // pairs recorded during this epoch's rounds
}

// Coverage returns the secured fraction.
func (s EpochStats) Coverage() float64 {
	if s.PhysicalLinks == 0 {
		return 0
	}
	return float64(s.SecuredLinks) / float64(s.PhysicalLinks)
}

// EpochConfig drives RunEpochs.
type EpochConfig struct {
	// Mobility steps node positions between epochs; nil keeps the
	// topology static.
	Mobility *field.Waypoint
	// StepSeconds of mobility per epoch (must be > 0 when Mobility set).
	StepSeconds float64
	// Epochs to run (>= 1).
	Epochs int
	// Window is the randomized-initiation window per protocol round.
	Window sim.Time
	// MNDP also runs an M-NDP round each epoch.
	MNDP bool
}

// RunEpochs executes the periodic-discovery loop and returns one stats row
// per epoch.
func (n *Network) RunEpochs(cfg EpochConfig) ([]EpochStats, error) {
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("core: epochs=%d must be >= 1", cfg.Epochs)
	}
	if cfg.Mobility != nil {
		if cfg.StepSeconds <= 0 {
			return nil, fmt.Errorf("core: StepSeconds=%v must be positive with mobility", cfg.StepSeconds)
		}
		if cfg.Mobility.Len() != n.NumNodes() {
			return nil, fmt.Errorf("core: mobility tracks %d nodes, network has %d",
				cfg.Mobility.Len(), n.NumNodes())
		}
	}
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	out := make([]EpochStats, 0, cfg.Epochs)
	prevDiscoveries := len(n.Discoveries())
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		st := EpochStats{Epoch: epoch}
		if epoch > 0 && cfg.Mobility != nil {
			cfg.Mobility.Step(cfg.StepSeconds)
			if err := n.UpdatePositions(cfg.Mobility.Positions()); err != nil {
				return nil, err
			}
			st.Expired = n.ExpireStaleNeighbors()
		}
		if err := n.RunDNDP(cfg.Window); err != nil {
			return nil, err
		}
		if cfg.MNDP {
			if err := n.RunMNDP(cfg.Window); err != nil {
				return nil, err
			}
		}
		st.SecuredLinks, st.PhysicalLinks = n.securedHonestLinks()
		st.NewDiscoveries = len(n.Discoveries()) - prevDiscoveries
		prevDiscoveries = len(n.Discoveries())
		out = append(out, st)
	}
	return out, nil
}

// securedHonestLinks counts current physical links between honest nodes
// and how many are mutually discovered.
func (n *Network) securedHonestLinks() (secured, total int) {
	for u := 0; u < n.NumNodes(); u++ {
		if n.nodes[u].compromised {
			continue
		}
		for _, v := range n.graph.Adj[u] {
			if v <= u || n.nodes[v].compromised {
				continue
			}
			total++
			if n.DiscoveredPair(u, v) {
				secured++
			}
		}
	}
	return secured, total
}
