package core

import (
	"testing"

	"repro/internal/radio"
	"repro/internal/wire"
)

// prefixed frames a chunk with the u16 length prefix FuzzHandshakeTranscript
// uses to split its input into individual deliveries.
func prefixed(frames ...[]byte) []byte {
	var out []byte
	for _, fr := range frames {
		out = append(out, byte(len(fr)>>8), byte(len(fr)))
		out = append(out, fr...)
	}
	return out
}

// FuzzHandshakeTranscript feeds an arbitrary transcript of frames into a
// fresh victim node's receive path — the exact surface a Byzantine
// transmitter controls. The input is chunked by u16 length prefixes; each
// chunk is delivered as one frame on a rotating spread code. Properties:
// the engine never panics, always quiesces, and no transcript the fuzzer
// can synthesize produces an accepted neighbor (that would require forging
// a MAC or signature).
func FuzzHandshakeTranscript(f *testing.F) {
	p := smallParams(2, 5)
	lim := wire.LimitsFromParams(p)
	hello, err := wire.Encode(wire.KindHello, wire.Hello{Initiator: 1}, lim)
	if err != nil {
		f.Fatal(err)
	}
	auth, err := wire.Encode(wire.KindAuth1, wire.Auth{
		Sender: 1, Peer: 0,
		Nonce: []byte{1, 2, 3},
		MAC:   make([]byte, 20),
	}, lim)
	if err != nil {
		f.Fatal(err)
	}
	confirm, err := wire.Encode(wire.KindConfirm, wire.Confirm{Responder: 1, Initiator: 0}, lim)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(prefixed(hello))
	f.Add(prefixed(hello, auth))
	f.Add(prefixed(confirm, auth, auth))
	f.Add(prefixed([]byte{0xFF, 0xFF, 0xFF}, hello[:3], auth))

	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := NewNetwork(NetworkConfig{
			Params:    p,
			Seed:      9,
			Jammer:    JamNone,
			Positions: clusterPositions(2),
			Defense:   DefaultDefenseConfig(p),
		})
		if err != nil {
			t.Fatal(err)
		}
		victim := net.Node(0)
		codes := victim.codes

		off := 0
		for i := 0; off+2 <= len(data) && i < 64; i++ {
			ln := int(data[off])<<8 | int(data[off+1])
			off += 2
			if ln > len(data)-off {
				ln = len(data) - off
			}
			frame := append([]byte(nil), data[off:off+ln]...)
			off += ln
			code := codes[i%len(codes)]
			if i%5 == 4 {
				code = radio.SessionCode
			}
			victim.handle(1, radio.Message{Code: code, Payload: frame})
		}
		if err := net.engine.Run(); err != nil {
			t.Fatal(err)
		}
		if got := len(victim.neighbors); got != 0 {
			t.Fatalf("fuzz transcript produced %d accepted neighbors", got)
		}
	})
}
