package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ibc"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Handshake retry/backoff state machine.
//
// The paper's protocols are described happy-path: a destroyed CONFIRM or
// AUTH message leaves both endpoints stuck with half-open per-peer state
// and no discovery. With a RetryConfig set, every handshake gets a
// per-session timeout: half-open state is garbage-collected when it ages
// past the timeout, the D-NDP initiator re-runs its HELLO sweep under
// randomized exponential backoff while physical neighbors with shared
// codes remain undiscovered, and — once the retry budget is exhausted (or
// no shared code can ever work) — the node degrades gracefully to M-NDP
// through the logical neighbors it does have.

// RetryConfig enables the handshake retry/backoff state machine. The zero
// value is invalid; use DefaultRetryConfig for parameter-derived defaults.
type RetryConfig struct {
	// SessionTimeout is the per-session half-open timeout: handshake state
	// (D-NDP responder/initiator-peer records, M-NDP pendings) that has not
	// completed within this span is reclaimed, and the D-NDP initiator
	// re-evaluates its neighborhood this long after each HELLO sweep. It
	// must exceed the worst-case handshake span or retries thrash.
	SessionTimeout sim.Time
	// MaxAttempts is the total D-NDP initiation budget per node (the first
	// attempt included). Must be >= 1.
	MaxAttempts int
	// BackoffBase scales the randomized exponential backoff before retry
	// k (k = 1 is the first retry): the delay is drawn uniformly from
	// [0, BackoffBase·2^(k-1)).
	BackoffBase sim.Time
	// FallbackToMNDP degrades gracefully once the D-NDP budget toward a
	// physical neighbor is exhausted: the node runs one M-NDP round through
	// its established logical neighbors.
	FallbackToMNDP bool
}

// DefaultRetryConfig derives a retry configuration from the parameter set:
// the session timeout covers several worst-case D-NDP handshake spans
// (HELLO sweep, processing delays, key computation, MAC round-trips), so
// a timeout never fires on a handshake that is merely slow.
func DefaultRetryConfig(p analysis.Params) *RetryConfig {
	span := float64(p.M)*p.THello() + 2*p.TProcess() + p.Lambda()*p.THello() +
		2*p.TKey + float64(p.Nu+1)*p.TVer + p.TSig
	timeout := sim.Time(4*span + 0.1)
	return &RetryConfig{
		SessionTimeout: timeout,
		MaxAttempts:    4,
		BackoffBase:    timeout / 2,
		FallbackToMNDP: true,
	}
}

// validate rejects configurations the state machine cannot run with.
func (c *RetryConfig) validate() error {
	if c == nil {
		return nil
	}
	if c.SessionTimeout <= 0 {
		return fmt.Errorf("retry: SessionTimeout %v must be positive", c.SessionTimeout)
	}
	if c.MaxAttempts < 1 {
		return fmt.Errorf("retry: MaxAttempts %d must be >= 1", c.MaxAttempts)
	}
	if c.BackoffBase < 0 {
		return fmt.Errorf("retry: BackoffBase %v must be >= 0", c.BackoffBase)
	}
	return nil
}

// retryEnabled reports whether the retry state machine is active.
func (nd *Node) retryEnabled() bool { return nd.net.cfg.Retry != nil }

// startDNDP is the harness-facing D-NDP entry point: it resets the retry
// budget and runs the first initiation. Retries go through initiateDNDP
// directly so the budget carries across rounds.
func (nd *Node) startDNDP() {
	nd.dndpAttempts = 0
	nd.initiateDNDP()
}

// scheduleDNDPRetryCheck arms the per-initiation timeout: one sweep span
// plus the session timeout after the HELLO sweep began, the initiator
// reaps half-open peers and decides whether to retry or fall back.
func (nd *Node) scheduleDNDPRetryCheck() {
	cfg := nd.net.cfg.Retry
	if cfg == nil {
		return
	}
	sweep := sim.Time(float64(nd.net.params.M) * nd.net.params.THello())
	nd.net.engine.MustSchedule(sweep+cfg.SessionTimeout, func() { nd.dndpRetryCheck() })
}

// dndpRetryCheck runs at each initiation timeout: reap this round's
// half-open initiator peers, then retry or degrade to M-NDP.
func (nd *Node) dndpRetryCheck() {
	if nd.down || nd.compromised {
		return
	}
	cfg := nd.net.cfg.Retry
	if st := nd.initiator; st != nil {
		for peer, ps := range st.peers {
			if !ps.done {
				delete(st.peers, peer)
				nd.net.m.onHalfOpenGC()
			}
		}
	}
	missingShared, missingAny := nd.undiscoveredPhysicalPeers()
	if missingAny == 0 {
		return
	}
	if missingShared > 0 && nd.dndpAttempts < cfg.MaxAttempts {
		retry := nd.dndpAttempts // k-th retry, 1-based
		shift := retry - 1
		if shift > 16 {
			shift = 16 // cap the exponential window; beyond this jitter dominates anyway
		}
		backoff := sim.Time(nd.rng.Float64()) * cfg.BackoffBase * sim.Time(uint64(1)<<uint(shift))
		nd.net.m.onRetry()
		nd.net.emit(trace.Event{
			At:     float64(nd.net.engine.Now()),
			Kind:   trace.KindRetry,
			Node:   nd.index,
			Peer:   -1,
			Detail: fmt.Sprintf("D-NDP retry %d/%d after backoff %.4fs (%d peers undiscovered)", retry, cfg.MaxAttempts-1, float64(backoff), missingShared),
		})
		nd.net.engine.MustSchedule(backoff, func() {
			if nd.down || nd.compromised {
				return
			}
			nd.initiateDNDP()
		})
		return
	}
	// Budget exhausted toward at least one physical neighbor (or no shared
	// code can ever complete D-NDP): graceful degradation to M-NDP through
	// the logical neighbors we do have.
	if cfg.FallbackToMNDP && !nd.mndpFallback && len(nd.neighbors) > 0 {
		nd.mndpFallback = true
		nd.net.m.onFallback()
		nd.net.emit(trace.Event{
			At:     float64(nd.net.engine.Now()),
			Kind:   trace.KindRetry,
			Node:   nd.index,
			Peer:   -1,
			Detail: fmt.Sprintf("D-NDP budget exhausted, falling back to M-NDP (%d peers undiscovered)", missingAny),
		})
		nd.initiateMNDP()
	}
}

// undiscoveredPhysicalPeers counts live, honest physical neighbors that
// are not yet logical neighbors: those reachable by D-NDP (some mutually
// usable code) and the total (reachable by M-NDP regardless of codes).
func (nd *Node) undiscoveredPhysicalPeers() (shared, any int) {
	for _, v := range nd.net.graph.Adj[nd.index] {
		peer := nd.net.nodes[v]
		if peer.down || peer.compromised || nd.IsLogicalNeighbor(peer.id) {
			continue
		}
		any++
		if nd.sharesUsableCode(peer) {
			shared++
		}
	}
	return shared, any
}

// sharesUsableCode reports whether both endpoints still hold (and have not
// revoked) at least one common pool code.
func (nd *Node) sharesUsableCode(peer *Node) bool {
	for _, c := range nd.codes {
		if nd.holdsCode(c) && peer.holdsCode(c) {
			return true
		}
	}
	return false
}

// scheduleResponderReap garbage-collects a responder record that never
// reached acceptance within the session timeout (e.g. its CONFIRM or the
// peer's AUTH1 was destroyed).
func (nd *Node) scheduleResponderReap(initiator ibc.NodeID, rs *dndpResponderState) {
	cfg := nd.net.cfg.Retry
	if cfg == nil {
		return
	}
	nd.net.engine.MustSchedule(cfg.SessionTimeout, func() {
		if cur := nd.responders[initiator]; cur == rs && !cur.accepted {
			delete(nd.responders, initiator)
			nd.net.m.onHalfOpenGC()
		}
	})
}

// scheduleInitiatorPeerReap garbage-collects an initiator-side peer record
// that never completed mutual auth within the session timeout (e.g. the
// AUTH2 was destroyed). The round's periodic retry check reaps these too;
// this per-record timer covers peers created after the final check.
func (nd *Node) scheduleInitiatorPeerReap(st *dndpInitiatorState, responder ibc.NodeID, ps *dndpInitiatorPeer) {
	cfg := nd.net.cfg.Retry
	if cfg == nil {
		return
	}
	nd.net.engine.MustSchedule(cfg.SessionTimeout, func() {
		if nd.initiator != st {
			return // a newer round owns the peer table now
		}
		if cur := st.peers[responder]; cur == ps && !cur.done {
			delete(st.peers, responder)
			nd.net.m.onHalfOpenGC()
		}
	})
}

// scheduleMNDPReap garbage-collects a pending M-NDP exchange (beacon sent
// or awaited) that never completed within the session timeout.
func (nd *Node) scheduleMNDPReap(table map[ibc.NodeID]*mndpPending, peer ibc.NodeID, p *mndpPending) {
	cfg := nd.net.cfg.Retry
	if cfg == nil {
		return
	}
	nd.net.engine.MustSchedule(cfg.SessionTimeout, func() {
		if cur, ok := table[peer]; ok && cur == p {
			delete(table, peer)
			nd.net.m.onHalfOpenGC()
		}
	})
}

// HalfOpenOlderThan counts the node's half-open handshake records older
// than the given age: responder records without acceptance, initiator
// peers without completed mutual auth, and pending M-NDP exchanges. With
// age 0 it counts every half-open record. The chaos invariant checker
// asserts this is zero past the retry budget.
func (nd *Node) HalfOpenOlderThan(age sim.Time) int {
	now := nd.net.engine.Now()
	count := 0
	for _, rs := range nd.responders {
		if !rs.accepted && now-rs.firstHello > age {
			count++
		}
	}
	if st := nd.initiator; st != nil {
		for _, ps := range st.peers {
			if !ps.done && now-ps.firstConfirm > age {
				count++
			}
		}
	}
	for _, p := range nd.mndpOut {
		if now-p.initiatedAt > age {
			count++
		}
	}
	for _, p := range nd.mndpIn {
		if now-p.initiatedAt > age {
			count++
		}
	}
	return count
}
