package core

import (
	"repro/internal/ibc"
	"repro/internal/trace"
)

// Causal-span instrumentation of the handshake pipeline. Virtual time
// only advances between engine events, so every meaningful span is
// cross-event: it opens in one handler and closes in the scheduled
// continuation, with the span ID carried in the protocol state structs.
// The phase decomposition (all children of the initiator's dndp.attempt
// root, which itself nests under the engine's sim.run span):
//
//	dndp.attempt      initiator: one HELLO round, until superseded/crash
//	dndp.hello_sweep  initiator: the sequential m-code HELLO broadcast
//	dndp.hello_buffer responder: buffer + scan delay before CONFIRM
//	dndp.auth1_prep   initiator: CONFIRM processing + pairwise-key time
//	dndp.auth1_verify responder: key derivation + MAC verification
//	dndp.confirm      cross-node: AUTH2 in flight until the initiator
//	                  accepts — left open when jamming destroys it
//	mndp.verify       relay/responder: signature-chain verification
//	mndp.respond      responder: key + signing until the response is sent
//
// A span that never ends is not a bug: it is the trace of a destroyed
// handshake, clamped and counted by trace.BuildSpans.

// spanStart opens a span at the current virtual time; 0 when tracing is
// off.
func (n *Network) spanStart(parent trace.SpanID, node, peer int, name string) trace.SpanID {
	if n.tracer == nil {
		return 0
	}
	return n.tracer.Start(float64(n.engine.Now()), parent, node, peer, name)
}

// spanEnd closes a span at the current virtual time; ending span 0 is a
// no-op so call sites stay unconditional.
func (n *Network) spanEnd(id trace.SpanID, node, peer int, detail string) {
	if n.tracer == nil {
		return
	}
	n.tracer.End(float64(n.engine.Now()), id, node, peer, detail)
}

// attemptSpanOf returns the open dndp.attempt span of the given
// initiator, so responder-side phases can parent to the handshake they
// serve without widening the wire format.
func (n *Network) attemptSpanOf(id ibc.NodeID) trace.SpanID {
	if n.tracer == nil || int(id) < 0 || int(id) >= len(n.nodes) {
		return 0
	}
	if st := n.nodes[id].initiator; st != nil {
		return st.attemptSpan
	}
	return 0
}

// endConfirmSpan closes the responder-held dndp.confirm span once the
// initiator's verdict on the AUTH2 is known.
func (n *Network) endConfirmSpan(responder, initiator ibc.NodeID, detail string) {
	if n.tracer == nil || int(responder) < 0 || int(responder) >= len(n.nodes) {
		return
	}
	rs := n.nodes[responder].responders[initiator]
	if rs == nil || rs.confirmSpan == 0 {
		return
	}
	n.spanEnd(rs.confirmSpan, int(initiator), int(responder), detail)
	rs.confirmSpan = 0
}

// closeAttemptSpans ends every still-open dndp.attempt span once the
// event queue has drained: the round is over, nothing can advance those
// handshakes further, and their duration — start to quiescence — is the
// real time the initiator's round stayed live. Per-message phases are
// left to their own closers; an open confirm at quiescence stays open
// deliberately (it is the trace of a destroyed handshake).
func (n *Network) closeAttemptSpans(detail string) {
	if n.tracer == nil {
		return
	}
	for _, nd := range n.nodes {
		if st := nd.initiator; st != nil && st.attemptSpan != 0 {
			n.spanEnd(st.attemptSpan, nd.index, -1, detail)
			st.attemptSpan = 0
		}
	}
}

// endNodeSpans closes every span the crashing node holds: its open
// attempt (and per-peer prep phases) plus its responder-side phases. The
// spans of peers talking to it stay open — their handshakes really are
// dead, and the open-span count in the report is how that shows up.
func (n *Network) endNodeSpans(nd *Node, detail string) {
	if n.tracer == nil {
		return
	}
	if st := nd.initiator; st != nil {
		for peer, ip := range st.peers {
			n.spanEnd(ip.prepSpan, nd.index, int(peer), detail)
			ip.prepSpan = 0
		}
		n.spanEnd(st.attemptSpan, nd.index, -1, detail)
		st.attemptSpan = 0
	}
	for peer, rs := range nd.responders {
		n.spanEnd(rs.bufferSpan, nd.index, int(peer), detail)
		rs.bufferSpan = 0
		n.spanEnd(rs.confirmSpan, nd.index, int(peer), detail)
		rs.confirmSpan = 0
	}
}
