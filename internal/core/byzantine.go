package core

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/sim"
)

// ArmAdversary compromises node idx and plugs the given Byzantine
// behavior into the medium as an on-air interceptor (composing with the
// jammer and any channel FaultInjector). The behavior's profile is
// derived from the network: codec limits from Params, the replay delay
// from the session timeout (so replays land on reaped handshake state),
// and flood targets from idx's compromised codes × its physical neighbors
// holding them — the same targeting RunDoSAttack uses. The returned
// Byzantine exposes activity counters for assertions.
func (n *Network) ArmAdversary(idx int, kind adversary.Kind) (adversary.Byzantine, error) {
	if idx < 0 || idx >= len(n.nodes) {
		return nil, fmt.Errorf("core: adversary index %d out of range", idx)
	}
	if kind == adversary.None {
		return nil, fmt.Errorf("core: adversary kind none cannot be armed")
	}
	if err := n.Compromise([]int{idx}); err != nil {
		return nil, err
	}
	att := n.nodes[idx]
	p := n.params

	// Replays must outlive the half-open GC to probe the replay window:
	// 1.5× the session timeout lands after the responder reap fires.
	retry := n.cfg.Retry
	if retry == nil {
		retry = DefaultRetryConfig(p)
	}
	replayDelay := retry.SessionTimeout * 3 / 2

	var targets []adversary.FloodTarget
	for _, c := range att.codes {
		for _, victim := range n.graph.Adj[idx] {
			vn := n.nodes[victim]
			if vn.compromised || !vn.codeSet[c] {
				continue
			}
			targets = append(targets, adversary.FloodTarget{Victim: victim, Code: c})
		}
	}

	b, err := adversary.New(kind, adversary.Profile{
		Node:          idx,
		Rng:           n.streams.Get("adversary"),
		Engine:        n.engine,
		Tx:            n.medium,
		Limits:        n.limits,
		ReplayDelay:   replayDelay,
		NonceBytes:    (p.LenNonce + 7) / 8,
		MACBytes:      (p.LenMAC + 7) / 8,
		AuthBits:      p.LenID + p.LenNonce + p.LenMAC,
		FloodTargets:  targets,
		FloodInterval: sim.Time(p.TKey),
	})
	if err != nil {
		return nil, err
	}
	n.medium.SetInterceptor(b)
	if err := b.Launch(); err != nil {
		return nil, err
	}
	return b, nil
}
