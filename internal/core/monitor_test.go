package core

import (
	"testing"
)

func TestMonitorBudgetCapsNeighborTable(t *testing.T) {
	// 6-node cluster, budget 3: no node may monitor more than 3 sessions.
	net, err := NewNetwork(NetworkConfig{
		Params:        smallParams(6, 5),
		Seed:          91,
		Jammer:        JamNone,
		Positions:     clusterPositions(6),
		MonitorBudget: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < net.NumNodes(); i++ {
		if got := len(net.Node(i).Neighbors()); got > 3 {
			t.Fatalf("node %d monitors %d sessions, budget is 3", i, got)
		}
	}
	// The network still secured links — the budget limits, not disables.
	if len(net.Discoveries()) == 0 {
		t.Fatal("no discoveries under a budget of 3")
	}
}

func TestMonitorBudgetEvictsOldestFirst(t *testing.T) {
	// Budget 1 on a 3-node cluster: each node keeps only its most recent
	// session.
	net, err := NewNetwork(NetworkConfig{
		Params:        smallParams(3, 4),
		Seed:          92,
		Jammer:        JamNone,
		Positions:     clusterPositions(3),
		MonitorBudget: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		nbs := net.Node(i).Neighbors()
		if len(nbs) > 1 {
			t.Fatalf("node %d monitors %d sessions, budget is 1", i, len(nbs))
		}
	}
	// Eviction must be re-discoverable: run another round and the evicted
	// sessions can re-form (churn, not deadlock).
	before := len(net.Discoveries())
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if len(net.Discoveries()) < before {
		t.Fatal("discovery record shrank")
	}
}

func TestUnlimitedBudgetByDefault(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(5, 4),
		Seed:      93,
		Jammer:    JamNone,
		Positions: clusterPositions(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	// Full clique: everyone monitors everyone.
	for i := 0; i < 5; i++ {
		if got := len(net.Node(i).Neighbors()); got != 4 {
			t.Fatalf("node %d has %d neighbors, want 4", i, got)
		}
	}
}
