// Package core implements the JR-SND protocols of §V: D-NDP (direct
// neighbor discovery over pre-distributed spread codes, §V-B) and M-NDP
// (multi-hop neighbor discovery over established session codes, §V-C),
// together with the DoS-resilience defence of §V-D, as an event-driven
// protocol engine over the message-level radio medium.
package core

import (
	"repro/internal/ibc"
)

// Message kinds on the medium.
const (
	kindHello = iota + 1
	kindConfirm
	kindAuth1
	kindAuth2
	kindMNDPRequest
	kindMNDPResponse
	kindSessionHello
	kindSessionConfirm
)

// Exported message-kind aliases, so fault plans and tooling outside the
// package can target specific protocol messages (e.g. "drop every
// CONFIRM") without depending on the internal iota order.
const (
	KindHello          = kindHello
	KindConfirm        = kindConfirm
	KindAuth1          = kindAuth1
	KindAuth2          = kindAuth2
	KindMNDPRequest    = kindMNDPRequest
	KindMNDPResponse   = kindMNDPResponse
	KindSessionHello   = kindSessionHello
	KindSessionConfirm = kindSessionConfirm
)

// helloPayload is the D-NDP HELLO: {HELLO, ID_A} spread with one of A's
// pool codes.
type helloPayload struct {
	Initiator ibc.NodeID
}

// confirmPayload is the D-NDP CONFIRM: {CONFIRM, ID_B} spread with a code
// shared with the initiator.
type confirmPayload struct {
	Responder ibc.NodeID
	Initiator ibc.NodeID
}

// authPayload carries the two mutual-authentication messages:
// {ID, n, f_K(ID|n)}.
type authPayload struct {
	Sender ibc.NodeID
	Peer   ibc.NodeID
	Nonce  []byte
	MAC    []byte
}

// mndpHop is one signed hop record appended to an M-NDP request or
// response: the node's ID, its logical-neighbor list, and its signature
// over the request so far.
type mndpHop struct {
	ID        ibc.NodeID
	Neighbors []ibc.NodeID
	Sig       ibc.Signature
}

// mndpRequest is the M-NDP request of §V-C. Hops[0] is the origin; each
// forwarder appends itself. Nu bounds the total hops the request may
// traverse.
type mndpRequest struct {
	Nonce []byte
	Nu    int
	Hops  []mndpHop
	// OriginPos carries the origin's claimed position for the optional
	// GPS false-positive filter (§V-C last paragraph). Units: meters.
	OriginPosX, OriginPosY float64
	HasOriginPos           bool
}

// mndpResponse travels back along the request path from the responder to
// the origin. Path[0] is the responder; intermediate nodes append
// themselves. ReturnRoute holds the remaining relay IDs toward the origin,
// innermost next hop last.
type mndpResponse struct {
	Origin      ibc.NodeID
	Nonce       []byte // responder's nonce n_B
	OriginNonce []byte // echoed origin nonce n_A
	Nu          int
	Path        []mndpHop
	ReturnRoute []ibc.NodeID
}

// sessionPayload completes M-NDP: HELLO/CONFIRM spread with the derived
// session code C_BA.
type sessionPayload struct {
	Sender ibc.NodeID
	Peer   ibc.NodeID
}

// bitsOfNeighborList returns the airtime size in bits of a neighbor list.
func bitsOfNeighborList(count, lenID int) int { return count * lenID }
