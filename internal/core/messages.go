// Package core implements the JR-SND protocols of §V: D-NDP (direct
// neighbor discovery over pre-distributed spread codes, §V-B) and M-NDP
// (multi-hop neighbor discovery over established session codes, §V-C),
// together with the DoS-resilience defence of §V-D, as an event-driven
// protocol engine over the message-level radio medium.
package core

import (
	"repro/internal/wire"
)

// Message kinds on the medium. internal/wire owns the numbering — the
// frame codec and the protocol engine must agree byte-for-byte — so these
// are aliases of the wire constants.
const (
	kindHello          = wire.KindHello
	kindConfirm        = wire.KindConfirm
	kindAuth1          = wire.KindAuth1
	kindAuth2          = wire.KindAuth2
	kindMNDPRequest    = wire.KindMNDPRequest
	kindMNDPResponse   = wire.KindMNDPResponse
	kindSessionHello   = wire.KindSessionHello
	kindSessionConfirm = wire.KindSessionConfirm
)

// Exported message-kind aliases, so fault plans and tooling outside the
// package can target specific protocol messages (e.g. "drop every
// CONFIRM") without depending on the internal iota order.
const (
	KindHello          = kindHello
	KindConfirm        = kindConfirm
	KindAuth1          = kindAuth1
	KindAuth2          = kindAuth2
	KindMNDPRequest    = kindMNDPRequest
	KindMNDPResponse   = kindMNDPResponse
	KindSessionHello   = kindSessionHello
	KindSessionConfirm = kindSessionConfirm
)

// The protocol payloads are the wire package's canonical message types:
// every in-sim delivery is encoded to a bounded binary frame and decoded
// at the receiver, so the structs handlers see are exactly what survives
// a round trip through hostile bytes.
type (
	// helloPayload is the D-NDP HELLO: {HELLO, ID_A} spread with one of
	// A's pool codes.
	helloPayload = wire.Hello
	// confirmPayload is the D-NDP CONFIRM: {CONFIRM, ID_B} spread with a
	// code shared with the initiator.
	confirmPayload = wire.Confirm
	// authPayload carries the two mutual-authentication messages:
	// {ID, n, f_K(ID|n)}.
	authPayload = wire.Auth
	// mndpHop is one signed hop record appended to an M-NDP request or
	// response: the node's ID, its logical-neighbor list, and its
	// signature over the request so far.
	mndpHop = wire.Hop
	// mndpRequest is the M-NDP request of §V-C. Hops[0] is the origin;
	// each forwarder appends itself. Nu bounds the total hops the request
	// may traverse.
	mndpRequest = wire.MNDPRequest
	// mndpResponse travels back along the request path from the responder
	// to the origin. Path[0] is the responder; intermediate nodes append
	// themselves. ReturnRoute holds the remaining relay IDs toward the
	// origin, innermost next hop last.
	mndpResponse = wire.MNDPResponse
	// sessionPayload completes M-NDP: HELLO/CONFIRM spread with the
	// derived session code C_BA.
	sessionPayload = wire.Session
)

// messageKindName names protocol message kinds for traces.
func messageKindName(kind int) string { return wire.KindName(kind) }

// bitsOfNeighborList returns the airtime size in bits of a neighbor list.
func bitsOfNeighborList(count, lenID int) int { return count * lenID }
