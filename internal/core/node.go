package core

import (
	"fmt"
	"math/rand"

	"repro/internal/codepool"
	"repro/internal/ibc"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DiscoveryMethod records how a logical neighbor was discovered.
type DiscoveryMethod int

// Discovery methods.
const (
	ViaDNDP DiscoveryMethod = iota + 1
	ViaMNDP
)

func (m DiscoveryMethod) String() string {
	switch m {
	case ViaDNDP:
		return "D-NDP"
	case ViaMNDP:
		return "M-NDP"
	default:
		return "unknown"
	}
}

// Neighbor is an authenticated logical neighbor relationship.
type Neighbor struct {
	ID           ibc.NodeID
	Via          DiscoveryMethod
	DiscoveredAt sim.Time
	SessionKey   [32]byte
}

// NodeStats counts the cryptographic work a node performed; the DoS
// experiment of §V-D reports these.
type NodeStats struct {
	KeyComputations  int
	MACVerifications int
	MACFailures      int
	SigVerifications int
	SigFailures      int
	InvalidReports   int
	RevokedCodes     int
}

// dndpInitiatorState tracks one of the node's own HELLO rounds.
type dndpInitiatorState struct {
	nonce     []byte
	startedAt sim.Time
	peers     map[ibc.NodeID]*dndpInitiatorPeer
	// attemptSpan is the open dndp.attempt root span (0 when tracing is
	// off); every phase of this round parents to it.
	attemptSpan trace.SpanID
}

// dndpInitiatorPeer tracks the initiator's view of one responder.
type dndpInitiatorPeer struct {
	confirmCodes []codepool.CodeID
	scheduled    bool
	key          [32]byte
	haveKey      bool
	done         bool
	firstConfirm sim.Time     // when the record was created (half-open aging)
	prepSpan     trace.SpanID // open dndp.auth1_prep span
}

// dndpResponderState tracks the responder's view of one initiator.
type dndpResponderState struct {
	helloCodes []codepool.CodeID
	helloSeen  map[codepool.CodeID]bool
	scheduled  bool
	nonce      []byte
	key        [32]byte
	haveKey    bool
	accepted   bool
	firstHello sim.Time
	auth2Codes map[codepool.CodeID]bool
	// bufferSpan/confirmSpan are the open dndp.hello_buffer and
	// dndp.confirm spans held on the responder side.
	bufferSpan  trace.SpanID
	confirmSpan trace.SpanID
}

// mndpPending tracks an M-NDP exchange awaiting the session HELLO/CONFIRM
// beacon.
type mndpPending struct {
	peer        ibc.NodeID
	key         [32]byte
	initiatedAt sim.Time
}

// Node is one MANET node running JR-SND.
type Node struct {
	net   *Network
	index int
	id    ibc.NodeID

	codes   []codepool.CodeID
	codeSet map[codepool.CodeID]bool
	priv    *ibc.PrivateKey
	revoker *codepool.Revoker
	rng     *rand.Rand

	neighbors map[ibc.NodeID]*Neighbor

	initiator  *dndpInitiatorState
	responders map[ibc.NodeID]*dndpResponderState

	// M-NDP state.
	seenRequests map[string]bool             // (origin, nonce) dedup
	mndpOut      map[ibc.NodeID]*mndpPending // awaiting beacon from peer
	mndpIn       map[ibc.NodeID]*mndpPending // sent beacon, awaiting confirm
	mndpStart    map[ibc.NodeID]sim.Time     // my own M-NDP initiation time

	// Retry/backoff state machine (active when NetworkConfig.Retry is set).
	dndpAttempts int  // D-NDP initiations so far (budget accounting)
	mndpFallback bool // already degraded to M-NDP once

	// Byzantine defenses (active when NetworkConfig.Defense is set).
	seenNonces map[ibc.NodeID]*nonceWindow // verified AUTH nonces per peer
	buckets    map[int]*tokenBucket        // half-open budget per transmitter

	stats NodeStats

	compromised bool
	down        bool    // crashed (node churn); neither sends nor receives
	skew        float64 // local-clock skew multiplier on processing delays
}

// ID returns the node's identity.
func (nd *Node) ID() ibc.NodeID { return nd.id }

// Index returns the node's simulation index.
func (nd *Node) Index() int { return nd.index }

// Stats returns a copy of the node's work counters.
func (nd *Node) Stats() NodeStats {
	s := nd.stats
	s.RevokedCodes = nd.revoker.RevokedCodes()
	return s
}

// Compromised reports whether the adversary controls this node.
func (nd *Node) Compromised() bool { return nd.compromised }

// Down reports whether the node is crashed (churn fault model).
func (nd *Node) Down() bool { return nd.down }

// ClockSkew returns the node's local-clock skew multiplier (1 = nominal).
func (nd *Node) ClockSkew() float64 { return nd.skew }

// Neighbors returns the node's logical-neighbor table (a copy).
func (nd *Node) Neighbors() []Neighbor {
	out := make([]Neighbor, 0, len(nd.neighbors))
	for _, n := range nd.neighbors {
		out = append(out, *n)
	}
	return out
}

// IsLogicalNeighbor reports whether peer has been discovered.
func (nd *Node) IsLogicalNeighbor(peer ibc.NodeID) bool {
	_, ok := nd.neighbors[peer]
	return ok
}

// neighborIDs returns the sorted logical-neighbor ID list ℒ.
func (nd *Node) neighborIDs() []ibc.NodeID {
	out := make([]ibc.NodeID, 0, len(nd.neighbors))
	for id := range nd.neighbors {
		out = append(out, id)
	}
	sortNodeIDs(out)
	return out
}

func sortNodeIDs(ids []ibc.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// acceptNeighbor installs peer as an authenticated logical neighbor,
// evicting the oldest session first when the monitor budget is exhausted.
func (nd *Node) acceptNeighbor(peer ibc.NodeID, via DiscoveryMethod, key [32]byte) {
	if _, ok := nd.neighbors[peer]; ok {
		return
	}
	if budget := nd.net.cfg.MonitorBudget; budget > 0 && len(nd.neighbors) >= budget {
		nd.evictOldestNeighbor()
	}
	nd.neighbors[peer] = &Neighbor{
		ID:           peer,
		Via:          via,
		DiscoveredAt: nd.net.engine.Now(),
		SessionKey:   key,
	}
	nd.net.emit(trace.Event{
		At:     float64(nd.net.engine.Now()),
		Kind:   trace.KindDiscovery,
		Node:   nd.index,
		Peer:   int(peer),
		Detail: "via " + via.String(),
	})
	nd.net.recordDiscovery(nd.id, peer, via)
}

// evictOldestNeighbor stops monitoring the least-recently-established
// session (the §IV-A capacity limit) and drops the corresponding logical
// neighbor on this side.
func (nd *Node) evictOldestNeighbor() {
	var victim ibc.NodeID
	first := true
	var oldest sim.Time
	for id, nb := range nd.neighbors {
		if first || nb.DiscoveredAt < oldest || (nb.DiscoveredAt == oldest && id < victim) {
			victim = id
			oldest = nb.DiscoveredAt
			first = false
		}
	}
	if first {
		return
	}
	delete(nd.neighbors, victim)
	delete(nd.responders, victim)
	delete(nd.mndpOut, victim)
	delete(nd.mndpIn, victim)
	if nd.initiator != nil {
		delete(nd.initiator.peers, victim)
	}
	nd.net.dropAccepted(nd.id, victim)
	if nd.net.m != nil {
		nd.net.m.evictions.Inc()
	}
	nd.net.emit(trace.Event{
		At:     float64(nd.net.engine.Now()),
		Kind:   trace.KindExpiry,
		Node:   nd.index,
		Peer:   int(victim),
		Detail: "monitor budget exceeded: oldest session evicted",
	})
}

// newNonce draws a fresh nonce of the configured length.
func (nd *Node) newNonce() []byte {
	bits := nd.net.params.LenNonce
	buf := make([]byte, (bits+7)/8)
	for i := range buf {
		buf[i] = byte(nd.rng.Intn(256))
	}
	return buf
}

// holdsCode reports whether the node may de-spread code c (it was issued
// the code and has not locally revoked it).
func (nd *Node) holdsCode(c codepool.CodeID) bool {
	return nd.codeSet[c] && !nd.revoker.Revoked(c)
}

// reportInvalid feeds the §V-D revocation counter for c.
func (nd *Node) reportInvalid(c codepool.CodeID) {
	if c < 0 {
		return
	}
	nd.stats.InvalidReports++
	if nd.net.m != nil {
		nd.net.m.invalidReports.Inc()
	}
	if nd.revoker.ReportInvalid(c) {
		if nd.net.m != nil {
			nd.net.m.revokedLocal.Inc()
		}
		nd.net.emit(trace.Event{
			At:     float64(nd.net.engine.Now()),
			Kind:   trace.KindRevocation,
			Node:   nd.index,
			Peer:   -1,
			Detail: fmt.Sprintf("code %d locally revoked (γ=%d exceeded)", c, nd.revoker.Gamma()),
		})
	}
}
