package core

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestTraceRecordsProtocolEvents(t *testing.T) {
	rec, err := trace.NewRecorder(4096)
	if err != nil {
		t.Fatal(err)
	}
	p := smallParams(3, 5)
	net, err := NewNetwork(NetworkConfig{
		Params:    p,
		Seed:      71,
		Jammer:    JamReactive,
		Positions: clusterPositions(3),
		Trace:     rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Compromise node 2 so the jammer knows the (fully shared) pool and
	// jam events appear.
	if err := net.Compromise([]int{2}); err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	counts := rec.Counts()
	if counts[trace.KindTx]+counts[trace.KindJammed] == 0 {
		t.Fatal("no transmissions traced")
	}
	if counts[trace.KindJammed] == 0 {
		t.Fatal("no jam verdicts traced despite a fully compromised pool")
	}
	// With every code compromised under reactive jamming there are no
	// discoveries; all HELLOs must be jammed.
	if counts[trace.KindDiscovery] != 0 {
		t.Fatal("discovery traced although the pool is fully compromised")
	}
	hellos := rec.Filter(0, -1, "HELLO")
	if len(hellos) == 0 {
		t.Fatal("no HELLO events traced")
	}
	for _, e := range hellos {
		if e.Kind != trace.KindJammed {
			t.Fatalf("HELLO escaped the reactive jammer: %+v", e)
		}
	}
}

func TestTraceRecordsDiscoveryAndExpiry(t *testing.T) {
	rec, err := trace.NewRecorder(4096)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(2, 4),
		Seed:      72,
		Jammer:    JamNone,
		Positions: clusterPositions(2),
		Trace:     rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Filter(trace.KindDiscovery, -1, "")); got != 2 {
		t.Fatalf("traced %d discovery events, want 2 (one per endpoint)", got)
	}
	// Move apart and expire: expiry events must appear.
	pos := net.Positions()
	pos[1].X, pos[1].Y = 900, 900
	if err := net.UpdatePositions(pos); err != nil {
		t.Fatal(err)
	}
	net.ExpireStaleNeighbors()
	if got := len(rec.Filter(trace.KindExpiry, -1, "")); got != 2 {
		t.Fatalf("traced %d expiry events, want 2", got)
	}
	// The rendered dump mentions the protocol message names.
	var sb strings.Builder
	if err := rec.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"HELLO", "CONFIRM", "AUTH1", "AUTH2", "discovery", "expiry"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("dump missing %q", want)
		}
	}
}
