package core

import (
	"testing"

	"repro/internal/ibc"
	"repro/internal/radio"
)

// securityNet builds a 4-node cluster, completes D-NDP, and returns the
// network: all nodes are mutual logical neighbors afterwards.
func securityNet(t *testing.T, seed int64) *Network {
	t.Helper()
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(4, 5),
		Seed:      seed,
		Jammer:    JamNone,
		Positions: clusterPositions(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			if !net.DiscoveredPair(a, b) {
				t.Fatalf("setup: pair (%d,%d) not discovered", a, b)
			}
		}
	}
	return net
}

// inject wire-encodes and delivers a message from `from` and drains the
// engine — the same egress path honest nodes use, so the forgery reaches
// the victim as a well-formed frame and exercises the handlers, not the
// decoder.
func inject(t *testing.T, net *Network, from, to int, msg radio.Message) {
	t.Helper()
	if err := net.send(from, to, msg); err != nil {
		t.Fatal(err)
	}
	if err := net.engine.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMNDPRejectsForgedOriginSignature(t *testing.T) {
	net := securityNet(t, 61)
	victim := net.Node(0)
	before := victim.Stats()

	// A compromised relay (node 1) fabricates a request claiming origin 2
	// with a garbage signature.
	forged := mndpRequest{
		Nonce: []byte{9, 9, 9},
		Nu:    2,
		Hops: []mndpHop{
			{
				ID:        2,
				Neighbors: []ibc.NodeID{1},
				Sig: ibc.Signature{
					SignerID: 2,
					PubKey:   make([]byte, 32),
					Cert:     []byte("forged"),
					Sig:      []byte("forged"),
				},
			},
			{ID: 1, Neighbors: []ibc.NodeID{0, 2}, Sig: net.Node(1).priv.Sign([]byte("whatever"))},
		},
	}
	inject(t, net, 1, 0, radio.Message{
		Kind:        kindMNDPRequest,
		Code:        radio.SessionCode,
		PayloadBits: victim.requestBits(forged),
		Payload:     forged,
	})
	after := victim.Stats()
	if after.SigFailures <= before.SigFailures {
		t.Fatal("forged origin signature was not rejected")
	}
	if len(victim.mndpIn) != 0 {
		t.Fatal("victim derived a session for a forged request")
	}
}

func TestMNDPRejectsTamperedNeighborList(t *testing.T) {
	net := securityNet(t, 62)
	victim := net.Node(0)
	origin := net.Node(2)

	// Build a correctly signed request from node 2, then tamper with its
	// neighbor list after signing.
	req := mndpRequest{
		Nonce: origin.newNonce(),
		Nu:    2,
		Hops:  []mndpHop{{ID: origin.id, Neighbors: origin.neighborIDs()}},
	}
	req.Hops[0].Sig = origin.signRequest(req, 0)
	req.Hops[0].Neighbors = append(req.Hops[0].Neighbors, 999) // tamper

	before := victim.Stats()
	inject(t, net, 2, 0, radio.Message{
		Kind:        kindMNDPRequest,
		Code:        radio.SessionCode,
		PayloadBits: victim.requestBits(req),
		Payload:     req,
	})
	after := victim.Stats()
	if after.SigFailures <= before.SigFailures {
		t.Fatal("tampered neighbor list passed signature verification")
	}
}

func TestMNDPDedupSuppressesReplay(t *testing.T) {
	net := securityNet(t, 63)
	victim := net.Node(0)
	origin := net.Node(2)

	req := mndpRequest{
		Nonce: []byte{1, 2, 3},
		Nu:    2,
		Hops:  []mndpHop{{ID: origin.id, Neighbors: origin.neighborIDs()}},
	}
	req.Hops[0].Sig = origin.signRequest(req, 0)

	msg := radio.Message{
		Kind:        kindMNDPRequest,
		Code:        radio.SessionCode,
		PayloadBits: victim.requestBits(req),
		Payload:     req,
	}
	inject(t, net, 2, 0, msg)
	firstVerifications := victim.Stats().SigVerifications
	// Replay the identical request: the (origin, nonce) dedup must drop it
	// before any signature verification runs.
	inject(t, net, 2, 0, msg)
	if got := victim.Stats().SigVerifications; got != firstVerifications {
		t.Fatalf("replay caused %d extra verifications", got-firstVerifications)
	}
}

func TestMNDPRejectsInvalidPathChain(t *testing.T) {
	net := securityNet(t, 64)
	victim := net.Node(0)
	origin := net.Node(2)
	relay := net.Node(1)

	// Origin's signed list deliberately excludes the relay; the relay
	// appends itself anyway. Signatures all verify, but the path check
	// hop[i-1].Neighbors ∋ hop[i].ID must fail.
	req := mndpRequest{
		Nonce: []byte{7, 7},
		Nu:    3,
		Hops:  []mndpHop{{ID: origin.id, Neighbors: []ibc.NodeID{3}}}, // no relay
	}
	req.Hops[0].Sig = origin.signRequest(req, 0)
	req.Hops = append(req.Hops, mndpHop{ID: relay.id, Neighbors: relay.neighborIDs()})
	req.Hops[1].Sig = relay.signRequest(req, 1)

	inject(t, net, 1, 0, radio.Message{
		Kind:        kindMNDPRequest,
		Code:        radio.SessionCode,
		PayloadBits: victim.requestBits(req),
		Payload:     req,
	})
	if len(victim.mndpIn) != 0 {
		t.Fatal("victim answered a request whose path chain is invalid")
	}
	if victim.Stats().SigFailures != 0 {
		t.Fatal("signatures were valid; rejection must come from the path check")
	}
}

func TestMNDPRejectsForgedResponse(t *testing.T) {
	net := securityNet(t, 65)
	origin := net.Node(0)
	before := origin.Stats()

	forged := mndpResponse{
		Origin:      origin.id,
		Nonce:       []byte{1},
		OriginNonce: []byte{2},
		Nu:          2,
		Path: []mndpHop{{
			ID:        3,
			Neighbors: []ibc.NodeID{0},
			Sig: ibc.Signature{
				SignerID: 3,
				PubKey:   make([]byte, 32),
				Cert:     []byte("bad"),
				Sig:      []byte("bad"),
			},
		}},
	}
	inject(t, net, 1, 0, radio.Message{
		Kind:        kindMNDPResponse,
		Code:        radio.SessionCode,
		PayloadBits: origin.responseBits(forged),
		Payload:     forged,
	})
	after := origin.Stats()
	if after.SigFailures <= before.SigFailures {
		t.Fatal("forged response signature was not rejected")
	}
	if len(origin.mndpOut) != 0 {
		t.Fatal("origin derived a session key from a forged response")
	}
}

func TestMNDPRejectsTamperedResponseRelayHop(t *testing.T) {
	net := securityNet(t, 67)
	origin := net.Node(0)
	responder := net.Node(3)
	relay := net.Node(1)

	// A well-formed responder hop…
	resp := mndpResponse{
		Origin:      origin.id,
		Nonce:       responder.newNonce(),
		OriginNonce: []byte{1, 2},
		Nu:          2,
		Path:        []mndpHop{{ID: responder.id, Neighbors: responder.neighborIDs()}},
	}
	resp.Path[0].Sig = responder.priv.Sign(encodeResponse(resp, 0))
	// …relayed with a correctly signed relay hop…
	resp.Path = append(resp.Path, mndpHop{ID: relay.id, Neighbors: relay.neighborIDs()})
	resp.Path[1].Sig = relay.priv.Sign(encodeResponse(resp, 1))
	// …then the relay's neighbor list is tampered after signing.
	resp.Path[1].Neighbors = append(resp.Path[1].Neighbors, 777)

	before := origin.Stats()
	inject(t, net, 1, 0, radio.Message{
		Kind:        kindMNDPResponse,
		Code:        radio.SessionCode,
		PayloadBits: origin.responseBits(resp),
		Payload:     resp,
	})
	after := origin.Stats()
	if after.SigFailures <= before.SigFailures {
		t.Fatal("tampered relay hop passed verification")
	}
	if len(origin.mndpOut) != 0 {
		t.Fatal("origin derived a key from a tampered response")
	}
}

func TestMNDPResponsePathChainChecked(t *testing.T) {
	net := securityNet(t, 68)
	origin := net.Node(0)
	responder := net.Node(3)
	relay := net.Node(1)

	// The responder's signed list deliberately excludes the relay; the
	// relay still appends itself with a valid signature. All signatures
	// verify, but the origin's C ∈ ℒ_B check must fail.
	resp := mndpResponse{
		Origin:      origin.id,
		Nonce:       responder.newNonce(),
		OriginNonce: []byte{3, 4},
		Nu:          2,
		Path:        []mndpHop{{ID: responder.id, Neighbors: []ibc.NodeID{2}}}, // no relay
	}
	resp.Path[0].Sig = responder.priv.Sign(encodeResponse(resp, 0))
	resp.Path = append(resp.Path, mndpHop{ID: relay.id, Neighbors: relay.neighborIDs()})
	resp.Path[1].Sig = relay.priv.Sign(encodeResponse(resp, 1))

	inject(t, net, 1, 0, radio.Message{
		Kind:        kindMNDPResponse,
		Code:        radio.SessionCode,
		PayloadBits: origin.responseBits(resp),
		Payload:     resp,
	})
	if origin.Stats().SigFailures != 0 {
		t.Fatal("signatures were valid; rejection must come from the path check")
	}
	if len(origin.mndpOut) != 0 {
		t.Fatal("origin accepted a response whose relay is not in ℒ_B")
	}
}

func TestMNDPIgnoresRequestsFromStrangers(t *testing.T) {
	// Requests arriving from a node that is not a logical neighbor (no
	// session code exists) are undecodable/ignored.
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(3, 5),
		Seed:      66,
		Jammer:    JamNone,
		Positions: clusterPositions(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	// No D-NDP ran: nobody is anyone's logical neighbor.
	origin := net.Node(2)
	req := mndpRequest{
		Nonce: []byte{5},
		Nu:    2,
		Hops:  []mndpHop{{ID: origin.id, Neighbors: nil}},
	}
	req.Hops[0].Sig = origin.signRequest(req, 0)
	victim := net.Node(0)
	inject(t, net, 2, 0, radio.Message{
		Kind:        kindMNDPRequest,
		Code:        radio.SessionCode,
		PayloadBits: victim.requestBits(req),
		Payload:     req,
	})
	if victim.Stats().SigVerifications != 0 {
		t.Fatal("victim verified a request from a stranger")
	}
}
