package core

import (
	"math/rand"
	"testing"

	"repro/internal/field"
)

func TestRunEpochsStaticTopology(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(5, 4),
		Seed:      111,
		Jammer:    JamNone,
		Positions: clusterPositions(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.RunEpochs(EpochConfig{Epochs: 3, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("got %d epochs, want 3", len(stats))
	}
	// A static clique with full code sharing reaches full coverage in the
	// first epoch and stays there.
	for i, s := range stats {
		if s.PhysicalLinks != 10 {
			t.Fatalf("epoch %d: %d links, want 10", i, s.PhysicalLinks)
		}
		if s.Coverage() != 1 {
			t.Fatalf("epoch %d: coverage %v, want 1", i, s.Coverage())
		}
		if s.Expired != 0 {
			t.Fatalf("epoch %d: %d expiries on a static topology", i, s.Expired)
		}
	}
	if stats[0].NewDiscoveries != 10 {
		t.Fatalf("epoch 0 recorded %d discoveries, want 10", stats[0].NewDiscoveries)
	}
	if stats[1].NewDiscoveries != 0 || stats[2].NewDiscoveries != 0 {
		t.Fatal("later epochs rediscovered on a static topology")
	}
}

func TestRunEpochsWithMobility(t *testing.T) {
	p := smallParams(20, 6)
	p.FieldWidth, p.FieldHeight = 800, 800
	deploy, err := field.New(p.FieldWidth, p.FieldHeight)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	positions := deploy.PlaceUniform(rng, p.N)
	mob, err := field.NewWaypoint(field.WaypointConfig{
		Field: deploy, MinSpeed: 10, MaxSpeed: 30, Pause: 0, Rand: rng,
	}, positions)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(NetworkConfig{
		Params:    p,
		Seed:      112,
		Jammer:    JamNone,
		Positions: positions,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.RunEpochs(EpochConfig{
		Mobility:    mob,
		StepSeconds: 30,
		Epochs:      4,
		Window:      1,
		MNDP:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every epoch fully secures the current topology (no jamming, full
	// sharing), and the mobility churn shows up as expiries/new pairs.
	churn := 0
	for i, s := range stats {
		if s.PhysicalLinks > 0 && s.Coverage() < 1 {
			t.Fatalf("epoch %d: coverage %v with no jamming", i, s.Coverage())
		}
		churn += s.Expired + s.NewDiscoveries
	}
	if churn == 0 {
		t.Fatal("fast mobility produced no churn at all")
	}
}

func TestRunEpochsValidation(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Params:    smallParams(2, 3),
		Seed:      113,
		Jammer:    JamNone,
		Positions: clusterPositions(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.RunEpochs(EpochConfig{Epochs: 0}); err == nil {
		t.Fatal("accepted zero epochs")
	}
	deploy, _ := field.New(1000, 1000)
	rng := rand.New(rand.NewSource(1))
	mob, _ := field.NewWaypoint(field.WaypointConfig{
		Field: deploy, MinSpeed: 1, MaxSpeed: 2, Rand: rng,
	}, deploy.PlaceUniform(rng, 5))
	if _, err := net.RunEpochs(EpochConfig{Epochs: 1, Mobility: mob, StepSeconds: 1}); err == nil {
		t.Fatal("accepted mobility size mismatch")
	}
	mob2, _ := field.NewWaypoint(field.WaypointConfig{
		Field: deploy, MinSpeed: 1, MaxSpeed: 2, Rand: rng,
	}, deploy.PlaceUniform(rng, 2))
	if _, err := net.RunEpochs(EpochConfig{Epochs: 1, Mobility: mob2}); err == nil {
		t.Fatal("accepted zero StepSeconds with mobility")
	}
}
