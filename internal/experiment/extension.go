package experiment

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/codepool"
	"repro/internal/field"
	"repro/internal/sim"
)

// Extension experiments beyond the paper's figures: the multi-antenna
// future work named in §IV-A and the dynamic-ν adjustment suggested in
// §VI-B.

// ExtAntennas sweeps the number of parallel receive chains k and reports
// the generalized Theorem 2 latency T̄_D(k) plus the HELLO round budget
// r(k). k = 1 is the paper's baseline.
func ExtAntennas(base analysis.Params) (Figure, error) {
	if base.N == 0 {
		base = analysis.Defaults()
	}
	if err := base.Validate(); err != nil {
		return Figure{}, fmt.Errorf("experiment: %w", err)
	}
	ks := []float64{1, 2, 3, 4, 6, 8}
	lat := Series{Label: "T̄_D(k) (generalized Theorem 2)", X: ks, Y: make([]float64, len(ks))}
	rounds := Series{Label: "r(k) (HELLO rounds)", X: ks, Y: make([]float64, len(ks))}
	floor := Series{Label: "tx+key floor", X: ks, Y: make([]float64, len(ks))}
	floorVal := 2*float64(base.ChipLen)*base.AuthBits()/base.ChipRate + 2*base.TKey
	for i, k := range ks {
		lat.Y[i] = analysis.DNDPLatencyAntennas(base, int(k))
		rounds.Y[i] = float64(analysis.HelloRoundsAntennas(base, int(k)))
		floor.Y[i] = floorVal
	}
	return Figure{
		ID:     "ext-antennas",
		Title:  "Extension — D-NDP latency with k parallel receive chains (§IV-A future work)",
		XLabel: "k (receive chains)",
		YLabel: "T̄_D (s)",
		Series: []Series{lat, rounds, floor},
		Notes: []string{
			"k=1 reduces to Theorem 2; the identification term divides by k",
			"latency approaches the transmission + key-computation floor as k grows",
		},
	}, nil
}

// ExtZ sweeps the jammer's parallel-emitter budget z under *random*
// jamming, where z matters (Theorem 1's β = z(1+μ)/(μ·c)); reactive
// jamming is insensitive to z. The measured P̂_D must track the Theorem-1
// upper bound P̂+ and collapse toward the reactive floor as z grows.
func ExtZ(cfg SweepConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	cfg.Jammer = JamRandom
	xs := []float64{0, 5, 10, 20, 40, 80, 160}
	ms, ps, err := sweep(cfg, xs, func(p *analysis.Params, x float64) { p.Z = int(x) })
	if err != nil {
		return Figure{}, err
	}
	n := len(xs)
	sim := Series{Label: "D-NDP (sim, random jam)", X: xs, Y: make([]float64, n)}
	upper := Series{Label: "Theorem 1 P̂+ (random)", X: xs, Y: make([]float64, n)}
	floor := Series{Label: "Theorem 1 P̂− (reactive floor)", X: xs, Y: make([]float64, n)}
	for i := range xs {
		sim.Y[i] = ms[i].PD
		lo, up := analysis.DNDPBounds(ps[i])
		upper.Y[i] = up
		floor.Y[i] = lo
	}
	return Figure{
		ID:     "ext-z",
		Title:  "Extension — impact of the jammer's emitter budget z (random jamming)",
		XLabel: "z (parallel jamming signals)",
		YLabel: "P̂_D",
		Series: []Series{sim, upper, floor},
		Notes: []string{
			"z=0 recovers the no-jamming sharing probability; large z approaches the reactive floor",
			"the paper bounds z ≪ N since unbounded emitters defeat any spread-spectrum scheme (§IV-B)",
		},
	}, nil
}

// NuProfile is the per-ν outcome of one campaign: for each hop bound ν in
// [1, MaxNu], the M-NDP and combined probabilities.
type NuProfile struct {
	MaxNu int
	PD    float64
	PM    []float64 // index ν-1
	PHat  []float64 // index ν-1
}

// MeasureNuProfile runs the campaign once per seed and evaluates every hop
// bound ν ≤ maxNu in a single pass over the logical graph (one BFS per
// edge, recording the indirect hop distance). It is how Fig. 5(a) and the
// adaptive-ν experiment share work.
func MeasureNuProfile(cfg PointConfig, maxNu int) (NuProfile, error) {
	if err := cfg.Params.Validate(); err != nil {
		return NuProfile{}, fmt.Errorf("experiment: %w", err)
	}
	if cfg.Runs < 1 {
		return NuProfile{}, fmt.Errorf("experiment: Runs=%d must be >= 1", cfg.Runs)
	}
	if maxNu < 1 {
		return NuProfile{}, fmt.Errorf("experiment: maxNu=%d must be >= 1", maxNu)
	}
	agg := NuProfile{MaxNu: maxNu, PM: make([]float64, maxNu), PHat: make([]float64, maxNu)}
	for run := 0; run < cfg.Runs; run++ {
		one, err := nuProfileOnce(cfg, cfg.Seed+int64(run)*7919, maxNu)
		if err != nil {
			return NuProfile{}, err
		}
		agg.PD += one.PD
		for i := 0; i < maxNu; i++ {
			agg.PM[i] += one.PM[i]
			agg.PHat[i] += one.PHat[i]
		}
	}
	r := float64(cfg.Runs)
	agg.PD /= r
	for i := 0; i < maxNu; i++ {
		agg.PM[i] /= r
		agg.PHat[i] /= r
	}
	return agg, nil
}

func nuProfileOnce(cfg PointConfig, seed int64, maxNu int) (NuProfile, error) {
	p := cfg.Params
	streams := sim.NewStreams(seed)
	deploy, err := field.New(p.FieldWidth, p.FieldHeight)
	if err != nil {
		return NuProfile{}, err
	}
	positions := deploy.PlaceUniform(streams.Get("placement"), p.N)
	graph, err := field.PhysicalGraph(deploy, positions, p.Range)
	if err != nil {
		return NuProfile{}, err
	}
	pool, err := codepool.New(codepool.Config{N: p.N, M: p.M, L: p.L, Rand: streams.Get("codepool")})
	if err != nil {
		return NuProfile{}, err
	}
	compromisedNodes, compromised, err := pool.CompromiseRandom(streams.Get("compromise"), p.Q)
	if err != nil {
		return NuProfile{}, err
	}
	isCompromised := make([]bool, p.N)
	for _, i := range compromisedNodes {
		isCompromised[i] = true
	}
	jammer, err := buildJammer(cfg, compromised, streams.Get("jammer"))
	if err != nil {
		return NuProfile{}, err
	}
	redundancyRng := streams.Get("redundancy")

	type edge struct{ u, v int }
	var edges []edge
	logical := &field.Graph{Adj: make([][]int, p.N)}
	dSucc := 0
	for u := 0; u < p.N; u++ {
		if isCompromised[u] {
			continue
		}
		for _, v := range graph.Adj[u] {
			if v <= u || isCompromised[v] {
				continue
			}
			edges = append(edges, edge{u, v})
			if dndpSucceeds(pool.Shared(u, v), jammer, cfg.DisableRedundancy, redundancyRng) {
				dSucc++
				logical.Adj[u] = append(logical.Adj[u], v)
				logical.Adj[v] = append(logical.Adj[v], u)
			}
		}
	}
	if len(edges) == 0 {
		return NuProfile{}, fmt.Errorf("experiment: no physical edges; increase density")
	}

	out := NuProfile{MaxNu: maxNu, PM: make([]float64, maxNu), PHat: make([]float64, maxNu)}
	total := float64(len(edges))
	out.PD = float64(dSucc) / total
	mAtDist := make([]int, maxNu+1) // indirect-path length histogram
	directCount := 0
	for _, e := range edges {
		if dist, ok := logical.HopDistance(e.u, e.v, maxNu, true); ok && dist >= 2 {
			mAtDist[dist]++
		}
		if containsInt(logical.Adj[e.u], e.v) {
			directCount++
		}
	}
	cum := 0
	for nu := 1; nu <= maxNu; nu++ {
		cum += mAtDist[nu]
		out.PM[nu-1] = float64(cum) / total
	}
	// P̂(ν) = fraction discovered directly or via an indirect ≤ν-hop path.
	// Indirect paths only help the edges that failed D-NDP; for those no
	// direct logical edge exists, so the histogram entries are disjoint
	// from directCount except for succeeded edges that *also* have an
	// indirect path. Count precisely:
	cumEither := make([]int, maxNu+1)
	for _, e := range edges {
		direct := containsInt(logical.Adj[e.u], e.v)
		dist, ok := logical.HopDistance(e.u, e.v, maxNu, true)
		for nu := 1; nu <= maxNu; nu++ {
			if direct || (ok && dist <= nu) {
				cumEither[nu]++
			}
		}
	}
	for nu := 1; nu <= maxNu; nu++ {
		out.PHat[nu-1] = float64(cumEither[nu]) / total
	}
	return out, nil
}

// ExtAdaptiveNu reproduces the §VI-B suggestion that nodes dynamically
// raise ν until discovery is satisfactory: for a range of target
// probabilities it reports the ν the analytical controller picks, its
// prediction, and the probability the campaign actually measures at that
// ν.
func ExtAdaptiveNu(cfg SweepConfig, targets []float64, maxNu int) (Figure, error) {
	cfg = cfg.withDefaults()
	if len(targets) == 0 {
		targets = []float64{0.5, 0.7, 0.8, 0.9, 0.95, 0.99}
	}
	p := cfg.Base
	// The paper's stressed operating point is 5% compromised nodes
	// (q = 100 at n = 2000, where P̂_D ≈ 0.2); scale with n so reduced
	// deployments stay meaningful.
	p.Q = p.N / 20
	if p.Q < 1 {
		p.Q = 1
	}
	profile, err := MeasureNuProfile(PointConfig{
		Params: p,
		Jammer: cfg.Jammer,
		Runs:   cfg.Runs,
		Seed:   cfg.Seed,
	}, maxNu)
	if err != nil {
		return Figure{}, err
	}
	chosen := Series{Label: "chosen ν", X: targets, Y: make([]float64, len(targets))}
	predicted := Series{Label: "predicted P̂ (recurrence)", X: targets, Y: make([]float64, len(targets))}
	measured := Series{Label: "measured P̂ at chosen ν", X: targets, Y: make([]float64, len(targets))}
	for i, target := range targets {
		nu, pred := analysis.AdaptiveNu(p, target, maxNu)
		chosen.Y[i] = float64(nu)
		predicted.Y[i] = pred
		measured.Y[i] = profile.PHat[nu-1]
	}
	return Figure{
		ID:     "ext-adaptive-nu",
		Title:  "Extension — dynamic ν adjustment toward a target P̂ (§VI-B suggestion)",
		XLabel: "target P̂",
		YLabel: "ν / P̂",
		Series: []Series{chosen, predicted, measured},
		Notes: []string{
			"controller picks the smallest ν whose predicted P̂ reaches the target",
			"prediction uses the iterated Theorem-3 recurrence (closed form beyond ν=2)",
		},
	}, nil
}
