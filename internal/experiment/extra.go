package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/chips"
	"repro/internal/codepool"
	"repro/internal/core"
	"repro/internal/dsss"
	"repro/internal/field"
	"repro/internal/sim"
)

// DSSSValidation sweeps the fraction of a frame jammed with the correct
// spread code and measures chip-level decode success — validating the
// μ/(1+μ) ECC tolerance claim of §V-B that the message-level jamming model
// relies on.
func DSSSValidation(seed int64, trialsPerPoint int) (Figure, error) {
	if trialsPerPoint < 1 {
		return Figure{}, fmt.Errorf("experiment: trialsPerPoint=%d must be >= 1", trialsPerPoint)
	}
	p := analysis.Defaults()
	frame, err := dsss.NewFrame(p.Mu, p.Tau)
	if err != nil {
		return Figure{}, err
	}
	fractions := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.45, 0.55, 0.6, 0.7, 0.8}
	success := Series{Label: "decode success rate", X: fractions, Y: make([]float64, len(fractions))}
	rng := rand.New(rand.NewSource(seed))
	const msgLen = 25 // ≈ the authentication message size in bytes
	for fi, frac := range fractions {
		ok := 0
		for trial := 0; trial < trialsPerPoint; trial++ {
			code := chips.NewRandom(rng, p.ChipLen)
			msg := make([]byte, msgLen)
			rng.Read(msg)
			sig, err := frame.Transmit(msg, code)
			if err != nil {
				return Figure{}, err
			}
			ch, err := dsss.NewChannel(sig.Len())
			if err != nil {
				return Figure{}, err
			}
			ch.Add(sig, 0)
			// Jam a contiguous burst of the given fraction with the
			// correct code (the strongest per-chip attack).
			jamChips := int(frac * float64(sig.Len()))
			if jamChips > 0 {
				start := rng.Intn(sig.Len() - jamChips + 1)
				ch.AddInverted(sig.Slice(start, start+jamChips), start)
			}
			if got, err := frame.Receive(ch.Samples(), 0, code, msgLen); err == nil && string(got) == string(msg) {
				ok++
			}
		}
		success.Y[fi] = float64(ok) / float64(trialsPerPoint)
	}
	return Figure{
		ID:     "dsss",
		Title:  "Chip-level validation — frame decode vs same-code jam fraction (μ=1)",
		XLabel: "jammed fraction of frame",
		YLabel: "decode success rate",
		Series: []Series{success},
		Notes: []string{
			"§V-B contract: frames survive jamming below μ/(1+μ) = 0.5 of the frame and die above it",
		},
	}, nil
}

// PredistributionComparison quantifies the paper's second contribution
// claim — that its partition-based pre-distribution gives "fine control of
// the damage from compromised spread codes" compared to the plain uniform
// random pre-distribution of ref [11]. Both schemes are built at the same
// density (same n, m, s); the figure reports the per-code holder-count cap
// and tail, the resulting worst-case DoS exposure (holders−1)·(γ+1) per
// code, and the (equivalent) pairwise sharing probability.
func PredistributionComparison(base analysis.Params, seed int64) (Figure, error) {
	if base.N == 0 {
		base = analysis.Defaults()
	}
	if err := base.Validate(); err != nil {
		return Figure{}, fmt.Errorf("experiment: %w", err)
	}
	streams := sim.NewStreams(seed)
	structured, err := codepool.New(codepool.Config{
		N: base.N, M: base.M, L: base.L, Rand: streams.Get("structured"),
	})
	if err != nil {
		return Figure{}, err
	}
	uniform, err := codepool.NewUniform(codepool.Config{
		N: base.N, M: base.M, Rand: streams.Get("uniform"),
	}, structured.S())
	if err != nil {
		return Figure{}, err
	}
	shareRate := func(p *codepool.Pool) float64 {
		rng := streams.Get("pairs")
		pairs, shared := 0, 0
		for i := 0; i < 4000; i++ {
			a, b := rng.Intn(base.N), rng.Intn(base.N)
			if a == b {
				continue
			}
			pairs++
			if len(p.Shared(a, b)) > 0 {
				shared++
			}
		}
		return float64(shared) / float64(pairs)
	}
	point := func(label string, v float64) Series {
		return Series{Label: label, X: []float64{0}, Y: []float64{v}}
	}
	gammaCost := float64(base.Gamma + 1)
	return Figure{
		ID:    "ext-predistribution",
		Title: "Extension — partition scheme (§V-A) vs uniform pre-distribution [11]",
		Series: []Series{
			point("structured: max holders per code", float64(structured.MaxHolders())),
			point("uniform:    max holders per code", float64(uniform.MaxHolders())),
			point("structured: p99 holders", float64(structured.HolderQuantile(0.99))),
			point("uniform:    p99 holders", float64(uniform.HolderQuantile(0.99))),
			point("structured: worst DoS exposure/code", float64(structured.MaxHolders()-1)*gammaCost),
			point("uniform:    worst DoS exposure/code", float64(uniform.MaxHolders()-1)*gammaCost),
			point("structured: Pr[share >= 1 code]", shareRate(structured)),
			point("uniform:    Pr[share >= 1 code]", shareRate(uniform)),
		},
		Notes: []string{
			"equal density: same n, m and pool size for both schemes",
			"the partition scheme caps every code at exactly l holders; uniform drawing has a binomial tail",
			"sharing probability (and hence discovery) is unaffected — the cap is free",
		},
	}, nil
}

// InterferenceValidation sweeps the number of concurrent foreign-code
// transmissions superimposed on a frame and measures chip-level decode
// success — validating the §IV-A assumption that "concurrent transmissions
// spread with different pseudorandom codes interfere with each other with
// negligible probability" for N = 512, and locating where it breaks down.
func InterferenceValidation(seed int64, trialsPerPoint int) (Figure, error) {
	if trialsPerPoint < 1 {
		return Figure{}, fmt.Errorf("experiment: trialsPerPoint=%d must be >= 1", trialsPerPoint)
	}
	p := analysis.Defaults()
	frame, err := dsss.NewFrame(p.Mu, p.Tau)
	if err != nil {
		return Figure{}, err
	}
	interferers := []float64{0, 4, 16, 64, 128, 256, 512, 1024}
	success := Series{Label: "decode success rate", X: interferers, Y: make([]float64, len(interferers))}
	rng := rand.New(rand.NewSource(seed))
	const msgLen = 12
	for ki, k := range interferers {
		ok := 0
		for trial := 0; trial < trialsPerPoint; trial++ {
			code := chips.NewRandom(rng, p.ChipLen)
			msg := make([]byte, msgLen)
			rng.Read(msg)
			sig, err := frame.Transmit(msg, code)
			if err != nil {
				return Figure{}, err
			}
			ch, err := dsss.NewChannel(sig.Len())
			if err != nil {
				return Figure{}, err
			}
			ch.Add(sig, 0)
			for i := 0; i < int(k); i++ {
				// Independent same-length foreign transmissions, fully
				// overlapping — the worst alignment.
				foreign := chips.NewRandom(rng, sig.Len())
				ch.Add(foreign, 0)
			}
			if got, err := frame.Receive(ch.Samples(), 0, code, msgLen); err == nil && string(got) == string(msg) {
				ok++
			}
		}
		success.Y[ki] = float64(ok) / float64(trialsPerPoint)
	}
	return Figure{
		ID:     "ext-noise",
		Title:  "Chip-level validation — decode vs concurrent foreign transmissions (N=512, τ=0.15)",
		XLabel: "concurrent foreign-code transmissions",
		YLabel: "decode success rate",
		Series: []Series{success},
		Notes: []string{
			"§IV-A assumes negligible cross-code interference at N=512; the curve locates the breakdown",
			"correlation noise grows as √(k/N): erasures appear once √(k/512) nears 1−τ",
		},
	}, nil
}

// GoldComparison contrasts the paper's unstructured pseudorandom codes
// with classical Gold codes of comparable length (degree 9 → N = 511 vs
// the paper's N = 512): the worst pairwise cross-correlation over the
// family, and the rate at which a receiver scanning for its own codes
// falsely locks onto foreign traffic at the paper's τ = 0.15. Gold codes
// carry a hard bound t(9)/511 ≈ 0.065 < τ, so their false-lock rate is
// structurally zero at chip alignment.
func GoldComparison(seed int64, familySize, trials int) (Figure, error) {
	if familySize < 2 || trials < 1 {
		return Figure{}, fmt.Errorf("experiment: need familySize >= 2 and trials >= 1")
	}
	const degree = 9
	gold, err := chips.GoldFamily(degree, familySize)
	if err != nil {
		return Figure{}, err
	}
	n := gold[0].Len()
	rng := rand.New(rand.NewSource(seed))
	random := make([]chips.Sequence, familySize)
	for i := range random {
		random[i] = chips.NewRandom(rng, n)
	}

	maxAbsCorr := func(family []chips.Sequence) float64 {
		worst := 0.0
		for i := 0; i < len(family); i++ {
			for j := i + 1; j < len(family); j++ {
				c, err := chips.Correlate(family[i], family[j])
				if err != nil {
					continue
				}
				if c < 0 {
					c = -c
				}
				if c > worst {
					worst = c
				}
			}
		}
		return worst
	}

	// False-lock: a receiver holding family[0] watches trials of foreign
	// single-bit transmissions (other family members) at chip alignment
	// and counts |corr| >= τ.
	const tau = 0.15
	falseLock := func(family []chips.Sequence) float64 {
		locks := 0
		for trial := 0; trial < trials; trial++ {
			foreign := family[1+rng.Intn(len(family)-1)]
			tx := foreign
			if rng.Intn(2) == 0 {
				tx = foreign.Invert()
			}
			c, err := chips.Correlate(family[0], tx)
			if err != nil {
				continue
			}
			if c >= tau || c <= -tau {
				locks++
			}
		}
		return float64(locks) / float64(trials)
	}

	point := func(label string, v float64) Series {
		return Series{Label: label, X: []float64{0}, Y: []float64{v}}
	}
	return Figure{
		ID:    "ext-gold",
		Title: "Extension — pseudorandom vs Gold spreading codes (N≈512, τ=0.15)",
		Series: []Series{
			point("random: max |cross-corr|", maxAbsCorr(random)),
			point("gold:   max |cross-corr|", maxAbsCorr(gold)),
			point("gold bound t(9)/511", chips.GoldBound(degree)),
			point("random: false-lock rate", falseLock(random)),
			point("gold:   false-lock rate", falseLock(gold)),
		},
		Notes: []string{
			"Gold cross-correlation is bounded below τ by construction; random codes only statistically",
			"the paper assumes unstructured random codes (s ≪ 2^N keeps them secret); Gold codes trade secrecy structure for guaranteed separation",
		},
	}, nil
}

// DoSExperiment measures the verification work a compromised-code DoS
// attacker can force, with and without the §V-D revocation defence,
// demonstrating the (l−1)·γ bound.
func DoSExperiment(seed int64, rounds int) (Figure, error) {
	run := func(gamma int) (core.DoSReport, error) {
		p := analysis.Defaults()
		p.N = 12
		p.M = 6
		p.L = 12
		p.Q = 0
		p.Gamma = gamma
		p.FieldWidth, p.FieldHeight = 1000, 1000
		positions := make([]field.Point, p.N)
		for i := range positions {
			positions[i] = field.Point{X: 100 + float64(i%4)*50, Y: 100 + float64(i/4)*50}
		}
		net, err := core.NewNetwork(core.NetworkConfig{
			Params:    p,
			Seed:      seed,
			Jammer:    core.JamNone,
			Positions: positions,
		})
		if err != nil {
			return core.DoSReport{}, err
		}
		attacker := p.N - 1
		if err := net.Compromise([]int{attacker}); err != nil {
			return core.DoSReport{}, err
		}
		return net.RunDoSAttack(attacker, rounds)
	}
	noDefense, err := run(1 << 20) // effectively no revocation
	if err != nil {
		return Figure{}, err
	}
	const gamma = 5
	withDefense, err := run(gamma)
	if err != nil {
		return Figure{}, err
	}
	point := func(label string, v float64) Series {
		return Series{Label: label, X: []float64{0}, Y: []float64{v}}
	}
	return Figure{
		ID:    "dos",
		Title: "DoS resilience (§V-D) — forced verifications with and without revocation",
		Series: []Series{
			point("injected messages", float64(noDefense.Injected)),
			point("verifications, no revocation", float64(noDefense.MACVerifications)),
			point("verifications, gamma=5", float64(withDefense.MACVerifications)),
			point("revoked codes, gamma=5", float64(withDefense.RevokedCodes)),
		},
		Notes: []string{
			"with revocation each compromised code costs each victim at most γ+1 verifications",
			"the network-wide bound per code is (l−1)·γ (§V-D)",
		},
	}, nil
}
