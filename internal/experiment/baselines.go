package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/baseline"
)

// Baseline experiments: quantify the §I/§II comparisons against the
// alternative schemes implemented in internal/baseline.

// BaselineQ compares discovery probability versus compromised nodes q for
// JR-SND and the two intuitive code-assignment schemes of §I plus the
// public-code-set schemes of refs [7]–[10].
func BaselineQ(cfg SweepConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	xs := []float64{0, 1, 10, 20, 40, 60, 80, 100}
	ms, _, err := sweep(cfg, xs, func(p *analysis.Params, x float64) { p.Q = int(x) })
	if err != nil {
		return Figure{}, err
	}
	n := len(xs)
	jr := Series{Label: "JR-SND (sim)", X: xs, Y: make([]float64, n)}
	common := Series{Label: "common secret code", X: xs, Y: make([]float64, n)}
	pairwise := Series{Label: "pairwise secret codes", X: xs, Y: make([]float64, n)}
	public := Series{Label: "public code set [7]-[10]", X: xs, Y: make([]float64, n)}
	pub := baseline.PublicCodeSet{PoolSize: 64, Z: cfg.Base.Z, Mu: cfg.Base.Mu, Retries: 3}
	if err := pub.Validate(); err != nil {
		return Figure{}, err
	}
	var cc baseline.CommonCode
	var pw baseline.PairwiseCode
	for i, x := range xs {
		jr.Y[i] = ms[i].PHat
		common.Y[i] = cc.DiscoveryProbability(int(x))
		pairwise.Y[i] = pw.DiscoveryProbability(true)
		public.Y[i] = pub.DiscoveryProbability() // independent of q: codes are public anyway
	}
	return Figure{
		ID:     "baseline-q",
		Title:  "Baselines — discovery probability vs q across schemes (§I comparison)",
		XLabel: "q (compromised nodes)",
		YLabel: "P̂",
		Series: []Series{jr, common, pairwise, public},
		Notes: []string{
			"common code: perfect until the first compromise, then zero (single point of failure)",
			"pairwise codes: cannot bootstrap under jamming at all (circular dependency)",
			"public code set: jamming-resilient vs bounded emitters but wide open to the DoS attack (see baseline-dos)",
			"JR-SND: degrades gracefully in q",
		},
	}, nil
}

// BaselineLatency compares the time to secure a new neighbor: D-NDP
// (Theorem 2) versus UFH key establishment (ref [3]) across jammer
// strengths.
func BaselineLatency(base analysis.Params, seed int64, samples int) (Figure, error) {
	if base.N == 0 {
		base = analysis.Defaults()
	}
	if err := base.Validate(); err != nil {
		return Figure{}, fmt.Errorf("experiment: %w", err)
	}
	if samples < 1 {
		return Figure{}, fmt.Errorf("experiment: samples=%d must be >= 1", samples)
	}
	zs := []float64{0, 10, 20, 40, 80}
	dndp := Series{Label: "JR-SND D-NDP T̄ (Theorem 2)", X: zs, Y: make([]float64, len(zs))}
	ufhA := Series{Label: "UFH expected (analytic)", X: zs, Y: make([]float64, len(zs))}
	ufhS := Series{Label: "UFH mean (simulated)", X: zs, Y: make([]float64, len(zs))}
	rng := rand.New(rand.NewSource(seed))
	td := analysis.DNDPLatency(base)
	for i, z := range zs {
		u := baseline.DefaultUFH()
		u.JammedChannels = int(z)
		if u.JammedChannels >= u.Channels {
			u.JammedChannels = u.Channels - 1
		}
		if err := u.Validate(); err != nil {
			return Figure{}, err
		}
		dndp.Y[i] = td // D-NDP latency is independent of z (Theorem 2)
		ufhA.Y[i] = u.ExpectedEstablishmentTime()
		var sum float64
		for s := 0; s < samples; s++ {
			sum += u.SimulateEstablishment(rng)
		}
		ufhS.Y[i] = sum / float64(samples)
	}
	return Figure{
		ID:     "baseline-latency",
		Title:  "Baselines — time to secure a new neighbor: D-NDP vs UFH [3]",
		XLabel: "jammed channels / emitters z",
		YLabel: "seconds",
		Series: []Series{dndp, ufhA, ufhS},
		Notes: []string{
			"the paper's motivation: encounters last a few seconds; UFH-style establishment takes an order of magnitude longer",
		},
	}, nil
}

// BaselineDoS contrasts the verification load an injector can force:
// JR-SND's (l−1)·(γ+1) per-code cap versus the unbounded load of a
// public-code-set scheme, as a function of injected messages.
func BaselineDoS(base analysis.Params) (Figure, error) {
	if base.N == 0 {
		base = analysis.Defaults()
	}
	if err := base.Validate(); err != nil {
		return Figure{}, fmt.Errorf("experiment: %w", err)
	}
	xs := []float64{100, 1000, 10000, 100000, 1000000}
	jrCap := float64(base.L-1) * float64(base.Gamma+1) * float64(base.M)
	jr := Series{Label: "JR-SND bound (l−1)(γ+1)·m", X: xs, Y: make([]float64, len(xs))}
	pub := Series{Label: "public code set (every injection verified)", X: xs, Y: make([]float64, len(xs))}
	for i, x := range xs {
		jr.Y[i] = math.Min(x, jrCap)
		pub.Y[i] = x
	}
	return Figure{
		ID:     "baseline-dos",
		Title:  "Baselines — forced verifications vs injected fake requests (§V-D)",
		XLabel: "injected fake requests",
		YLabel: "verifications performed network-wide",
		Series: []Series{jr, pub},
		Notes: []string{
			"with public codes every injection reaches every victim's verifier: cost grows without bound",
			"JR-SND saturates once each compromised code crosses γ at each of its l−1 honest holders",
		},
	}, nil
}
