// Package experiment reproduces every table and figure of the paper's
// evaluation (§VI-B). The figure campaigns run the same Monte-Carlo
// procedure as the authors' simulator: place n nodes on the field, run the
// random code pre-distribution, compromise q random nodes, decide each
// physical-neighbor pair's D-NDP outcome under the jamming model of
// Theorem 1, then decide M-NDP outcomes over the resulting logical graph,
// averaging over independent seeded runs. Latency is sampled from the
// Theorem-2 delay model (which the event-driven protocol engine in
// internal/core matches; see core's tests).
package experiment

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/analysis"
	"repro/internal/codepool"
	"repro/internal/field"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/stats"
)

// JammerModel selects the adversary for a campaign.
type JammerModel int

// Jammer models.
const (
	JamNone JammerModel = iota
	JamRandom
	JamReactive
)

func (j JammerModel) String() string {
	switch j {
	case JamNone:
		return "none"
	case JamRandom:
		return "random"
	case JamReactive:
		return "reactive"
	default:
		return "unknown"
	}
}

// PointConfig configures the measurement of one parameter point.
type PointConfig struct {
	Params analysis.Params
	Jammer JammerModel
	// Runs is the number of independent seeded repetitions (the paper
	// averages 100 runs per point).
	Runs int
	Seed int64
	// IterateMNDP repeats M-NDP rounds until no new logical edges appear
	// (the paper's protocol runs periodically; a single round gives the
	// Theorem-3 lower bound).
	IterateMNDP bool
	// DisableRedundancy models responders that pick a single shared code
	// (ablation of the §V-B redundancy design).
	DisableRedundancy bool
}

// PointMeasure aggregates one parameter point over all runs.
type PointMeasure struct {
	PD   float64 // D-NDP discovery probability over physical edges
	PM   float64 // M-NDP discovery probability over physical edges
	PHat float64 // JR-SND combined: discovered by either protocol
	TD   float64 // mean D-NDP latency (s), Theorem-2 delay model sampled
	TD50 float64 // median sampled D-NDP latency (s)
	TD95 float64 // 95th-percentile sampled D-NDP latency (s)
	TM   float64 // M-NDP latency (s), Theorem 4 with measured degree
	TBar float64 // max(TD, TM)

	// 95% Student-t confidence-interval half-widths of the per-run means.
	PDCI   float64
	PMCI   float64
	PHatCI float64

	AvgDegree        float64 // measured g
	CompromisedCodes float64 // mean |compromised pool codes|
	Edges            float64 // mean physical edges per run
}

// MeasurePoint runs the Monte-Carlo campaign for one parameter point.
func MeasurePoint(cfg PointConfig) (PointMeasure, error) {
	if err := cfg.Params.Validate(); err != nil {
		return PointMeasure{}, fmt.Errorf("experiment: %w", err)
	}
	if cfg.Runs < 1 {
		return PointMeasure{}, fmt.Errorf("experiment: Runs=%d must be >= 1", cfg.Runs)
	}
	// Runs are independent and individually seeded, so they execute in
	// parallel; aggregation happens sequentially in run order, keeping the
	// result bit-for-bit deterministic.
	type runResult struct {
		measure PointMeasure
		tdSum   float64
		tdCount int
		tdHist  *stats.Histogram
		err     error
	}
	results := make([]runResult, cfg.Runs)
	// Latency histogram bounds: the Theorem-2 delay model is bounded by
	// 3t_p + λt_h + transmissions + 2t_key; 3× the mean covers it.
	histHi := 3 * analysis.DNDPLatency(cfg.Params)
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Runs {
		workers = cfg.Runs
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for run := range next {
				hist, herr := stats.NewHistogram(0, histHi, 256)
				if herr != nil {
					results[run] = runResult{err: herr}
					continue
				}
				one, tdS, tdC, err := measureOnce(cfg, cfg.Seed+int64(run)*7919, hist)
				results[run] = runResult{measure: one, tdSum: tdS, tdCount: tdC, tdHist: hist, err: err}
			}
		}()
	}
	for run := 0; run < cfg.Runs; run++ {
		next <- run
	}
	close(next)
	wg.Wait()

	var agg PointMeasure
	var pd, pm, pHat stats.Sample
	var tdSum float64
	var tdCount int
	merged, err := stats.NewHistogram(0, histHi, 256)
	if err != nil {
		return PointMeasure{}, err
	}
	for _, res := range results {
		if res.err != nil {
			return PointMeasure{}, res.err
		}
		one := res.measure
		pd.Add(one.PD)
		pm.Add(one.PM)
		pHat.Add(one.PHat)
		agg.AvgDegree += one.AvgDegree
		agg.CompromisedCodes += one.CompromisedCodes
		agg.Edges += one.Edges
		tdSum += res.tdSum
		tdCount += res.tdCount
		merged.Merge(res.tdHist)
	}
	if merged.Count() > 0 {
		agg.TD50 = merged.Quantile(0.5)
		agg.TD95 = merged.Quantile(0.95)
	}
	r := float64(cfg.Runs)
	agg.PD, agg.PDCI = pd.Mean(), pd.CI95()
	agg.PM, agg.PMCI = pm.Mean(), pm.CI95()
	agg.PHat, agg.PHatCI = pHat.Mean(), pHat.CI95()
	agg.AvgDegree /= r
	agg.CompromisedCodes /= r
	agg.Edges /= r
	if tdCount > 0 {
		agg.TD = tdSum / float64(tdCount)
	} else {
		agg.TD = analysis.DNDPLatency(cfg.Params)
	}
	agg.TM = analysis.MNDPLatency(cfg.Params, cfg.Params.Nu, agg.AvgDegree)
	agg.TBar = agg.TD
	if agg.TM > agg.TBar {
		agg.TBar = agg.TM
	}
	return agg, nil
}

// measureOnce runs a single seeded deployment. tdHist, when non-nil,
// receives every sampled D-NDP latency.
func measureOnce(cfg PointConfig, seed int64, tdHist *stats.Histogram) (PointMeasure, float64, int, error) {
	p := cfg.Params
	streams := sim.NewStreams(seed)

	deploy, err := field.New(p.FieldWidth, p.FieldHeight)
	if err != nil {
		return PointMeasure{}, 0, 0, err
	}
	positions := deploy.PlaceUniform(streams.Get("placement"), p.N)
	graph, err := field.PhysicalGraph(deploy, positions, p.Range)
	if err != nil {
		return PointMeasure{}, 0, 0, err
	}

	pool, err := codepool.New(codepool.Config{N: p.N, M: p.M, L: p.L, Rand: streams.Get("codepool")})
	if err != nil {
		return PointMeasure{}, 0, 0, err
	}
	compromisedNodes, compromised, err := pool.CompromiseRandom(streams.Get("compromise"), p.Q)
	if err != nil {
		return PointMeasure{}, 0, 0, err
	}
	isCompromised := make([]bool, p.N)
	for _, i := range compromisedNodes {
		isCompromised[i] = true
	}

	jammer, err := buildJammer(cfg, compromised, streams.Get("jammer"))
	if err != nil {
		return PointMeasure{}, 0, 0, err
	}

	// D-NDP outcome per physical edge.
	type edge struct{ u, v int }
	var edges []edge
	logical := &field.Graph{Adj: make([][]int, p.N)}
	dSucc := 0
	redundancyRng := streams.Get("redundancy")
	latRng := streams.Get("latency")
	var tdSum float64
	tdCount := 0
	for u := 0; u < p.N; u++ {
		if isCompromised[u] {
			continue // compromised nodes do not run the honest protocol
		}
		for _, v := range graph.Adj[u] {
			if v <= u || isCompromised[v] {
				continue
			}
			edges = append(edges, edge{u, v})
			shared := pool.Shared(u, v)
			if dndpSucceeds(shared, jammer, cfg.DisableRedundancy, redundancyRng) {
				dSucc++
				logical.Adj[u] = append(logical.Adj[u], v)
				logical.Adj[v] = append(logical.Adj[v], u)
				sample := sampleDNDPLatency(p, latRng)
				tdSum += sample
				tdCount++
				if tdHist != nil {
					tdHist.Add(sample)
				}
			}
		}
	}
	if len(edges) == 0 {
		return PointMeasure{}, 0, 0, fmt.Errorf("experiment: deployment produced no physical edges; increase density")
	}

	// M-NDP outcome per physical edge: an indirect logical path of at most
	// ν hops (excluding the direct logical edge, if any).
	mndpEdge := func(u, v int) bool {
		_, ok := logical.HopDistance(u, v, p.Nu, true)
		return ok
	}
	mSucc := 0
	either := dSucc
	newEdges := 0
	for _, e := range edges {
		direct := containsInt(logical.Adj[e.u], e.v)
		if mndpEdge(e.u, e.v) {
			mSucc++
			if !direct {
				either++
				newEdges++
			}
		}
	}
	if cfg.IterateMNDP && newEdges > 0 {
		// Close the logical graph under repeated M-NDP rounds.
		for {
			added := 0
			for _, e := range edges {
				if containsInt(logical.Adj[e.u], e.v) {
					continue
				}
				if _, ok := logical.HopDistance(e.u, e.v, p.Nu, true); ok {
					logical.Adj[e.u] = append(logical.Adj[e.u], e.v)
					logical.Adj[e.v] = append(logical.Adj[e.v], e.u)
					added++
				}
			}
			if added == 0 {
				break
			}
		}
		either = 0
		mSucc = 0
		for _, e := range edges {
			if containsInt(logical.Adj[e.u], e.v) {
				either++
			}
			if _, ok := logical.HopDistance(e.u, e.v, p.Nu, true); ok {
				mSucc++
			}
		}
	}

	total := float64(len(edges))
	return PointMeasure{
		PD:               float64(dSucc) / total,
		PM:               float64(mSucc) / total,
		PHat:             float64(either) / total,
		AvgDegree:        graph.AvgDegree(),
		CompromisedCodes: float64(compromised.Len()),
		Edges:            total,
	}, tdSum, tdCount, nil
}

func buildJammer(cfg PointConfig, compromised *codepool.CodeSet, rng *rand.Rand) (radio.Jammer, error) {
	switch cfg.Jammer {
	case JamNone:
		return radio.NoJammer{}, nil
	case JamReactive:
		return radio.NewReactiveJammer(compromised), nil
	case JamRandom:
		return radio.NewRandomJammer(cfg.Params.Z, cfg.Params.Mu, compromised, rng)
	default:
		return nil, fmt.Errorf("experiment: unknown jammer model %d", cfg.Jammer)
	}
}

// dndpSucceeds plays out the x sub-sessions of one D-NDP execution under
// the message-level jamming model: a sub-session on code c survives when
// the HELLO and all three follow-up messages escape jamming; the execution
// succeeds when any sub-session survives (Theorem 1).
func dndpSucceeds(shared []codepool.CodeID, jammer radio.Jammer, disableRedundancy bool, rng *rand.Rand) bool {
	if len(shared) == 0 {
		return false
	}
	// First the HELLOs: the responder can only use codes whose HELLO copy
	// it actually decoded.
	received := shared[:0:0]
	for _, c := range shared {
		if !jammer.TryJam(radio.Transmission{Code: c, Kind: 1}) {
			received = append(received, c)
		}
	}
	if len(received) == 0 {
		return false
	}
	if disableRedundancy {
		pick := received[rng.Intn(len(received))]
		received = []codepool.CodeID{pick}
	}
	for _, c := range received {
		if subSessionSurvives(c, jammer) {
			return true
		}
	}
	return false
}

// subSessionSurvives checks the three post-HELLO messages of one
// sub-session.
func subSessionSurvives(c codepool.CodeID, jammer radio.Jammer) bool {
	for kind := 2; kind <= 4; kind++ {
		if jammer.TryJam(radio.Transmission{Code: c, Kind: kind}) {
			return false
		}
	}
	return true
}

// sampleDNDPLatency draws one latency sample from the Theorem-2 model:
// three U[0,t_p] delays plus one U[0,λ·t_h] scan, the two authentication
// airtimes, and two key computations.
func sampleDNDPLatency(p analysis.Params, rng *rand.Rand) float64 {
	tp := p.TProcess()
	scan := p.Lambda() * p.THello()
	delays := rng.Float64()*tp + rng.Float64()*tp + rng.Float64()*tp + rng.Float64()*scan
	authTx := 2 * float64(p.ChipLen) * p.AuthBits() / p.ChipRate
	return delays + authTx + 2*p.TKey
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
