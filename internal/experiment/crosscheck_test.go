package experiment

import (
	"math"
	"testing"

	"repro/internal/analysis"
)

func TestCrossCheckEnginesAgree(t *testing.T) {
	// The repository's central consistency claim: the pair-level campaign,
	// the full event-driven protocol engine, and Theorem 1 all measure the
	// same quantity.
	p := analysis.Defaults()
	p.N = 200
	p.L = 20
	p.Q = 5
	p.M = 30
	p.FieldWidth, p.FieldHeight = 1580, 1580
	res, err := CrossCheck(p, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CampaignPD-res.TheoryPD) > 0.05 {
		t.Fatalf("campaign %v vs theory %v", res.CampaignPD, res.TheoryPD)
	}
	if math.Abs(res.EventPD-res.TheoryPD) > 0.05 {
		t.Fatalf("event engine %v vs theory %v", res.EventPD, res.TheoryPD)
	}
	if math.Abs(res.EventPD-res.CampaignPD) > 0.05 {
		t.Fatalf("event engine %v vs campaign %v", res.EventPD, res.CampaignPD)
	}
}

func TestCrossCheckValidation(t *testing.T) {
	p := analysis.Defaults()
	if _, err := CrossCheck(p, 0, 1); err == nil {
		t.Fatal("accepted zero runs")
	}
	bad := p
	bad.M = 0
	if _, err := CrossCheck(bad, 1, 1); err == nil {
		t.Fatal("accepted invalid params")
	}
}

func TestCrossCheckFigureDefaults(t *testing.T) {
	fig, err := CrossCheckFigure(analysis.Params{}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "ext-crosscheck" || len(fig.Series) != 3 {
		t.Fatal("malformed figure")
	}
	for _, s := range fig.Series {
		if s.Y[0] < 0 || s.Y[0] > 1 {
			t.Fatalf("%s = %v out of range", s.Label, s.Y[0])
		}
	}
}
