package experiment

import (
	"math"
	"testing"

	"repro/internal/analysis"
)

func TestBaselineQ(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := SweepConfig{Base: testParams(), Runs: 2, Seed: 21, Jammer: JamReactive}
	fig, err := BaselineQ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range fig.Series {
		series[s.Label] = s.Y
	}
	common := series["common secret code"]
	if common[0] != 1 {
		t.Fatal("common code must be perfect at q=0")
	}
	for i := 1; i < len(common); i++ {
		if common[i] != 0 {
			t.Fatal("common code must be dead for q >= 1")
		}
	}
	for _, v := range series["pairwise secret codes"] {
		if v != 0 {
			t.Fatal("pairwise codes must be unable to bootstrap under jamming")
		}
	}
	jr := series["JR-SND (sim)"]
	// JR-SND strictly dominates the common-code scheme at q >= 1.
	for i := 1; i < len(jr); i++ {
		if jr[i] <= 0 {
			t.Fatalf("JR-SND collapsed at point %d", i)
		}
	}
}

func TestBaselineLatency(t *testing.T) {
	fig, err := BaselineLatency(analysis.Params{}, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	var dndp, ufhA, ufhS []float64
	for _, s := range fig.Series {
		switch s.Label {
		case "JR-SND D-NDP T̄ (Theorem 2)":
			dndp = s.Y
		case "UFH expected (analytic)":
			ufhA = s.Y
		case "UFH mean (simulated)":
			ufhS = s.Y
		}
	}
	for i := range dndp {
		if ufhA[i] <= dndp[i] {
			t.Fatalf("point %d: UFH (%v) not slower than D-NDP (%v)", i, ufhA[i], dndp[i])
		}
		if math.Abs(ufhS[i]-ufhA[i]) > 0.35*ufhA[i] {
			t.Fatalf("point %d: simulated UFH %v far from analytic %v", i, ufhS[i], ufhA[i])
		}
	}
	// UFH latency grows with jamming.
	for i := 1; i < len(ufhA); i++ {
		if ufhA[i] < ufhA[i-1] {
			t.Fatal("UFH latency not monotone in z")
		}
	}
	if _, err := BaselineLatency(analysis.Params{}, 1, 0); err == nil {
		t.Fatal("accepted zero samples")
	}
}

func TestBaselineDoS(t *testing.T) {
	fig, err := BaselineDoS(analysis.Params{})
	if err != nil {
		t.Fatal(err)
	}
	p := analysis.Defaults()
	cap := float64(p.L-1) * float64(p.Gamma+1) * float64(p.M)
	var jr, pub []float64
	for _, s := range fig.Series {
		if s.Label[:6] == "JR-SND" {
			jr = s.Y
		} else {
			pub = s.Y
		}
	}
	for i := range jr {
		if jr[i] > cap {
			t.Fatalf("JR-SND verification load %v exceeds its cap %v", jr[i], cap)
		}
		if pub[i] < jr[i] {
			t.Fatalf("public scheme (%v) cheaper than JR-SND (%v)?", pub[i], jr[i])
		}
	}
	// The public scheme's load must keep growing; JR-SND saturates.
	last := len(jr) - 1
	if jr[last] != cap {
		t.Fatalf("JR-SND did not saturate at its cap: %v", jr[last])
	}
	if pub[last] <= pub[last-1] {
		t.Fatal("public scheme load must grow with injections")
	}
	bad := analysis.Defaults()
	bad.M = 0
	if _, err := BaselineDoS(bad); err == nil {
		t.Fatal("accepted invalid params")
	}
}
