package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Print renders a figure as an aligned text table: one row per X value,
// one column per series.
func Print(w io.Writer, f Figure) error {
	if _, err := fmt.Fprintf(w, "== %s [%s]\n", f.Title, f.ID); err != nil {
		return err
	}
	if len(f.Series) == 0 {
		_, err := fmt.Fprintln(w, "(empty)")
		return err
	}
	// Parameter-style tables (single X per series) print label: value.
	if len(f.Series[0].X) == 1 && f.XLabel == "" {
		for _, s := range f.Series {
			if _, err := fmt.Fprintf(w, "  %-22s %v\n", s.Label, trimFloat(s.Y[0])); err != nil {
				return err
			}
		}
		return printNotes(w, f.Notes)
	}
	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	rows := [][]string{header}
	for i := range f.Series[0].X {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, trimFloat(f.Series[0].X[i]))
		for _, s := range f.Series {
			row = append(row, trimFloat(s.Y[i]))
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			b.WriteString(fmt.Sprintf("%-*s", widths[c], cell))
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
	}
	return printNotes(w, f.Notes)
}

// WriteCSV emits the figure as CSV: a header row of x-label plus series
// labels, then one row per X value. Parameter-style tables become
// label,value pairs.
func WriteCSV(w io.Writer, f Figure) error {
	if len(f.Series) == 0 {
		return nil
	}
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	if len(f.Series[0].X) == 1 && f.XLabel == "" {
		for _, s := range f.Series {
			if _, err := fmt.Fprintf(w, "%s,%v\n", esc(s.Label), s.Y[0]); err != nil {
				return err
			}
		}
		return nil
	}
	cols := make([]string, 0, len(f.Series)+1)
	cols = append(cols, esc(f.XLabel))
	for _, s := range f.Series {
		cols = append(cols, esc(s.Label))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i := range f.Series[0].X {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, fmt.Sprintf("%v", f.Series[0].X[i]))
		for _, s := range f.Series {
			row = append(row, fmt.Sprintf("%v", s.Y[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func printNotes(w io.Writer, notes []string) error {
	for _, n := range notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e9 && v > -1e9 {
		return fmt.Sprintf("%d", int64(v))
	}
	if v != 0 && (v < 1e-3 || v >= 1e7) {
		return fmt.Sprintf("%.3e", v)
	}
	return fmt.Sprintf("%.4f", v)
}
