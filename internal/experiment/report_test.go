package experiment

import (
	"strings"
	"testing"
)

func TestBuildReportScaledDown(t *testing.T) {
	if testing.Short() {
		t.Skip("full report pass is slow")
	}
	// A scaled deployment with preserved density: claim checks that depend
	// on absolute anchor values (q=100 at n=2000) are evaluated but not
	// asserted here — this test checks the machinery, the bench/cmd pass
	// checks the claims at full scale.
	cfg := SweepConfig{Base: testParams(), Runs: 1, Seed: 5, Jammer: JamReactive}
	report, err := BuildReport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Figures) < 10 {
		t.Fatalf("report has %d figures, want >= 10", len(report.Figures))
	}
	if len(report.Checks) < 12 {
		t.Fatalf("report has %d claim checks, want >= 12", len(report.Checks))
	}
	var sb strings.Builder
	if err := WriteMarkdown(&sb, report); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# JR-SND reproduction report", "Claim checks", "| fig2a |", "Measured series"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q", want)
		}
	}
}

func TestReportHelpers(t *testing.T) {
	if valueAt([]float64{1, 2, 3}, []float64{10, 20, 30}, 2) != 20 {
		t.Fatal("valueAt wrong")
	}
	if valueAt([]float64{1}, []float64{10}, 9) != -1 {
		t.Fatal("valueAt miss should be -1")
	}
	if last(nil) != 0 || last([]float64{1, 5}) != 5 {
		t.Fatal("last wrong")
	}
	if argmax([]float64{1, 7, 3}) != 1 {
		t.Fatal("argmax wrong")
	}
	if max([]float64{1, 7, 3}) != 7 || minOf([]float64{4, 2, 9}) != 2 {
		t.Fatal("max/min wrong")
	}
	if !nonDecreasing([]float64{1, 1.5, 1.4}, 0.2) || nonDecreasing([]float64{1, 0.5}, 0.1) {
		t.Fatal("nonDecreasing wrong")
	}
	if !nonIncreasing([]float64{3, 2, 2.1}, 0.2) || nonIncreasing([]float64{1, 2}, 0.1) {
		t.Fatal("nonIncreasing wrong")
	}
}
