package experiment

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/stats"
)

// Cross-fidelity check: the repository measures discovery probability with
// two independent engines — the pair-level Monte-Carlo campaign (this
// package) and the full event-driven protocol engine (internal/core),
// which actually exchanges the four D-NDP messages over the simulated
// medium. Both must agree with each other and with Theorem 1. CrossCheck
// runs both on the same parameter point and reports all three numbers.

// CrossCheckResult carries the three independent measurements.
type CrossCheckResult struct {
	CampaignPD float64 // pair-level Monte Carlo
	EventPD    float64 // event-driven protocol engine
	TheoryPD   float64 // Theorem 1 (reactive)
	Runs       int
}

// CrossCheck measures P̂_D three ways at the given parameters under
// reactive jamming. The event engine is O(n·m) messages per run, so keep n
// modest (a few hundred).
func CrossCheck(p analysis.Params, runs int, seed int64) (CrossCheckResult, error) {
	if err := p.Validate(); err != nil {
		return CrossCheckResult{}, fmt.Errorf("experiment: %w", err)
	}
	if runs < 1 {
		return CrossCheckResult{}, fmt.Errorf("experiment: runs=%d must be >= 1", runs)
	}

	campaign, err := MeasurePoint(PointConfig{
		Params: p,
		Jammer: JamReactive,
		Runs:   runs,
		Seed:   seed,
	})
	if err != nil {
		return CrossCheckResult{}, err
	}

	var event stats.Sample
	for run := 0; run < runs; run++ {
		pd, err := eventEnginePD(p, seed+int64(run)*104729)
		if err != nil {
			return CrossCheckResult{}, err
		}
		event.Add(pd)
	}

	return CrossCheckResult{
		CampaignPD: campaign.PD,
		EventPD:    event.Mean(),
		TheoryPD:   analysis.DNDPReactive(p),
		Runs:       runs,
	}, nil
}

// eventEnginePD runs one full protocol-engine deployment and returns the
// fraction of honest physical links secured by D-NDP.
func eventEnginePD(p analysis.Params, seed int64) (float64, error) {
	net, err := core.NewNetwork(core.NetworkConfig{
		Params: p,
		Seed:   seed,
		Jammer: core.JamReactive,
	})
	if err != nil {
		return 0, err
	}
	if _, err := net.CompromiseRandom(p.Q); err != nil {
		return 0, err
	}
	if err := net.RunDNDP(1); err != nil {
		return 0, err
	}
	g := net.PhysicalGraph()
	edges, secured := 0, 0
	for u := 0; u < net.NumNodes(); u++ {
		if net.Node(u).Compromised() {
			continue
		}
		for _, v := range g.Adj[u] {
			if v <= u || net.Node(v).Compromised() {
				continue
			}
			edges++
			if net.DiscoveredPair(u, v) {
				secured++
			}
		}
	}
	if edges == 0 {
		return 0, fmt.Errorf("experiment: event-engine deployment has no honest edges")
	}
	return float64(secured) / float64(edges), nil
}

// CrossCheckFigure wraps CrossCheck as a printable figure (experiment id
// ext-crosscheck).
func CrossCheckFigure(p analysis.Params, runs int, seed int64) (Figure, error) {
	if p.N == 0 {
		p = analysis.Defaults()
		// The event engine exchanges every protocol message; scale the
		// deployment down while keeping the density and code-compromise
		// geometry of Table I.
		p.N = 250
		p.L = 20
		p.Q = 5
		p.M = 40
		p.FieldWidth, p.FieldHeight = 1770, 1770
	}
	res, err := CrossCheck(p, runs, seed)
	if err != nil {
		return Figure{}, err
	}
	point := func(label string, v float64) Series {
		return Series{Label: label, X: []float64{0}, Y: []float64{v}}
	}
	return Figure{
		ID:    "ext-crosscheck",
		Title: "Cross-fidelity check — P̂_D from three independent engines",
		Series: []Series{
			point("campaign Monte Carlo", res.CampaignPD),
			point("event-driven protocol engine", res.EventPD),
			point("Theorem 1 (reactive)", res.TheoryPD),
		},
		Notes: []string{
			"the campaign models jam outcomes per Theorem 1; the event engine exchanges every message",
			"all three must agree within Monte-Carlo error",
		},
	}, nil
}
