package experiment

import (
	"fmt"

	"repro/internal/analysis"
)

// Series is one plotted curve: Y[i] measured at X[i].
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is the reproduction of one paper figure (or table): a set of
// series plus free-form notes recording the paper's qualitative claims.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// SweepConfig configures a figure reproduction run.
type SweepConfig struct {
	// Base is the parameter set to sweep from; zero value means Table I
	// defaults.
	Base analysis.Params
	// Runs per point (paper: 100).
	Runs int
	// Seed for reproducibility.
	Seed int64
	// Jammer model; the paper's figures report reactive jamming (the
	// worst case).
	Jammer JammerModel
	// IterateMNDP closes the logical graph under repeated M-NDP rounds.
	IterateMNDP bool
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.Base.N == 0 {
		c.Base = analysis.Defaults()
	}
	if c.Runs == 0 {
		c.Runs = 100
	}
	if c.Jammer == 0 {
		c.Jammer = JamReactive
	}
	return c
}

// sweep measures a list of parameter points and assembles the standard
// five series (P̂ for D-NDP/M-NDP/JR-SND plus theory bounds) against xs.
func sweep(cfg SweepConfig, xs []float64, mutate func(p *analysis.Params, x float64)) ([]PointMeasure, []analysis.Params, error) {
	measures := make([]PointMeasure, len(xs))
	params := make([]analysis.Params, len(xs))
	for i, x := range xs {
		p := cfg.Base
		mutate(&p, x)
		params[i] = p
		m, err := MeasurePoint(PointConfig{
			Params:      p,
			Jammer:      cfg.Jammer,
			Runs:        cfg.Runs,
			Seed:        cfg.Seed + int64(i)*104729,
			IterateMNDP: cfg.IterateMNDP,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("experiment: point x=%v: %w", x, err)
		}
		measures[i] = m
	}
	return measures, params, nil
}

func probabilitySeries(xs []float64, ms []PointMeasure, ps []analysis.Params) []Series {
	n := len(xs)
	sd := Series{Label: "D-NDP (sim)", X: xs, Y: make([]float64, n)}
	sm := Series{Label: "M-NDP (sim)", X: xs, Y: make([]float64, n)}
	sj := Series{Label: "JR-SND (sim)", X: xs, Y: make([]float64, n)}
	td := Series{Label: "D-NDP (Theorem 1, reactive)", X: xs, Y: make([]float64, n)}
	tm := Series{Label: "M-NDP (Theorem 3 bound)", X: xs, Y: make([]float64, n)}
	for i := range xs {
		sd.Y[i] = ms[i].PD
		sm.Y[i] = ms[i].PM
		sj.Y[i] = ms[i].PHat
		pd := analysis.DNDPReactive(ps[i])
		td.Y[i] = pd
		tm.Y[i] = analysis.MNDPLowerBound(pd, ms[i].AvgDegree)
	}
	return []Series{sd, sm, sj, td, tm}
}

// Fig2a reproduces Fig. 2(a): impact of m on P̂.
func Fig2a(cfg SweepConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	xs := []float64{20, 40, 60, 80, 100, 120, 140, 160, 180, 200}
	ms, ps, err := sweep(cfg, xs, func(p *analysis.Params, x float64) { p.M = int(x) })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig2a",
		Title:  "Fig. 2(a) — impact of m on neighbor-discovery probability",
		XLabel: "m (spread codes per node)",
		YLabel: "P̂",
		Series: probabilitySeries(xs, ms, ps),
		Notes: []string{
			"paper: larger m raises P̂ for D-NDP, M-NDP and JR-SND",
			"paper: JR-SND ≈ 1 at the default m = 100",
		},
	}, nil
}

// Fig2b reproduces Fig. 2(b): impact of m on T̄.
func Fig2b(cfg SweepConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	xs := []float64{20, 40, 60, 80, 100, 120, 140, 160, 180, 200}
	ms, ps, err := sweep(cfg, xs, func(p *analysis.Params, x float64) { p.M = int(x) })
	if err != nil {
		return Figure{}, err
	}
	n := len(xs)
	sd := Series{Label: "D-NDP T̄ (sim)", X: xs, Y: make([]float64, n)}
	sm := Series{Label: "M-NDP T̄ (Theorem 4)", X: xs, Y: make([]float64, n)}
	sj := Series{Label: "JR-SND T̄ = max", X: xs, Y: make([]float64, n)}
	th := Series{Label: "D-NDP T̄ (Theorem 2)", X: xs, Y: make([]float64, n)}
	for i := range xs {
		sd.Y[i] = ms[i].TD
		sm.Y[i] = ms[i].TM
		sj.Y[i] = ms[i].TBar
		th.Y[i] = analysis.DNDPLatency(ps[i])
	}
	return Figure{
		ID:     "fig2b",
		Title:  "Fig. 2(b) — impact of m on average discovery latency",
		XLabel: "m (spread codes per node)",
		YLabel: "T̄ (s)",
		Series: []Series{sd, sm, sj, th},
		Notes: []string{
			"paper: T̄_D grows quadratically in m and crosses T̄_M near m = 60",
			"paper: JR-SND latency under 2 s at the default m = 100",
		},
	}, nil
}

// Fig3a reproduces Fig. 3(a): P̂ vs l.
func Fig3a(cfg SweepConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	xs := []float64{5, 10, 20, 40, 60, 80, 100, 120, 140, 160}
	ms, ps, err := sweep(cfg, xs, func(p *analysis.Params, x float64) { p.L = int(x) })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig3a",
		Title:  "Fig. 3(a) — impact of l on neighbor-discovery probability",
		XLabel: "l (nodes sharing each code)",
		YLabel: "P̂",
		Series: probabilitySeries(xs, ms, ps),
		Notes: []string{
			"paper: P̂ increases with l up to ≈ 100, then slowly decreases",
			"mechanism: larger l raises sharing probability but also the chance a code is compromised",
		},
	}, nil
}

// Fig3b reproduces Fig. 3(b): P̂ vs n.
func Fig3b(cfg SweepConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	xs := []float64{500, 1000, 1500, 2000, 2500, 3000, 3500, 4000}
	ms, ps, err := sweep(cfg, xs, func(p *analysis.Params, x float64) { p.N = int(x) })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig3b",
		Title:  "Fig. 3(b) — impact of n on neighbor-discovery probability",
		XLabel: "n (number of nodes)",
		YLabel: "P̂",
		Series: probabilitySeries(xs, ms, ps),
		Notes: []string{
			"paper: D-NDP first rises (α falls) then declines (sharing probability falls)",
			"paper: M-NDP keeps improving with density; JR-SND stays high throughout",
		},
	}, nil
}

// Fig4 reproduces Fig. 4: impact of q at a given l (4(a): l=40, 4(b): l=20).
func Fig4(cfg SweepConfig, l int) (Figure, error) {
	cfg = cfg.withDefaults()
	xs := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	ms, ps, err := sweep(cfg, xs, func(p *analysis.Params, x float64) {
		p.L = l
		p.Q = int(x)
	})
	if err != nil {
		return Figure{}, err
	}
	id, sub := "fig4a", "(a)"
	if l != 40 {
		id, sub = "fig4b", "(b)"
	}
	return Figure{
		ID:     id,
		Title:  fmt.Sprintf("Fig. 4%s — impact of q (compromised nodes) at l = %d", sub, l),
		XLabel: "q (compromised nodes)",
		YLabel: "P̂",
		Series: probabilitySeries(xs, ms, ps),
		Notes: []string{
			"paper: P̂ of D-NDP, M-NDP and JR-SND all decrease with q",
			"paper (l=40): JR-SND ≈ 0.5 at q = 60",
		},
	}, nil
}

// Fig5a reproduces Fig. 5(a): impact of ν on P̂_M with P̂_D ≈ 0.2 (q=100).
// All hop bounds are evaluated in one pass over each run's logical graph
// (MeasureNuProfile), and the theory overlay uses the iterated Theorem-3
// recurrence for ν > 2.
func Fig5a(cfg SweepConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	const maxNu = 8
	p := cfg.Base
	p.Q = 100 // the paper's P̂_D = 0.2 operating point
	profile, err := MeasureNuProfile(PointConfig{
		Params:      p,
		Jammer:      cfg.Jammer,
		Runs:        cfg.Runs,
		Seed:        cfg.Seed,
		IterateMNDP: cfg.IterateMNDP,
	}, maxNu)
	if err != nil {
		return Figure{}, err
	}
	xs := make([]float64, maxNu)
	sd := Series{Label: "D-NDP (sim)", X: xs, Y: make([]float64, maxNu)}
	sm := Series{Label: "M-NDP (sim)", X: xs, Y: make([]float64, maxNu)}
	sj := Series{Label: "JR-SND (sim)", X: xs, Y: make([]float64, maxNu)}
	tm := Series{Label: "M-NDP (recurrence; optimistic for ν>2)", X: xs, Y: make([]float64, maxNu)}
	pdTheory := analysis.DNDPReactive(p)
	g := p.AvgDegree()
	for i := 0; i < maxNu; i++ {
		xs[i] = float64(i + 1)
		sd.Y[i] = profile.PD
		sm.Y[i] = profile.PM[i]
		sj.Y[i] = profile.PHat[i]
		tm.Y[i] = analysis.MNDPBoundNu(pdTheory, g, i+1)
	}
	return Figure{
		ID:     "fig5a",
		Title:  "Fig. 5(a) — impact of ν on P̂ at P̂_D ≈ 0.2 (q = 100)",
		XLabel: "ν (M-NDP hop bound)",
		YLabel: "P̂",
		Series: []Series{sd, sm, sj, tm},
		Notes: []string{
			"paper: P̂_D is flat (ν does not affect D-NDP)",
			"paper: P̂_M and P̂ exceed 0.9 for ν >= 6",
		},
	}, nil
}

// Fig5b reproduces Fig. 5(b): T̄ vs ν.
func Fig5b(cfg SweepConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ms, _, err := sweep(cfg, xs, func(p *analysis.Params, x float64) {
		p.Q = 100
		p.Nu = int(x)
	})
	if err != nil {
		return Figure{}, err
	}
	n := len(xs)
	sm := Series{Label: "M-NDP T̄ (Theorem 4, measured g)", X: xs, Y: make([]float64, n)}
	sj := Series{Label: "JR-SND T̄ = max", X: xs, Y: make([]float64, n)}
	sd := Series{Label: "D-NDP T̄ (sim)", X: xs, Y: make([]float64, n)}
	for i := range xs {
		sm.Y[i] = ms[i].TM
		sj.Y[i] = ms[i].TBar
		sd.Y[i] = ms[i].TD
	}
	return Figure{
		ID:     "fig5b",
		Title:  "Fig. 5(b) — impact of ν on average discovery latency",
		XLabel: "ν (M-NDP hop bound)",
		YLabel: "T̄ (s)",
		Series: []Series{sd, sm, sj},
		Notes: []string{
			"paper: T̄_M increases with ν; about 4 s at ν = 6",
		},
	}, nil
}

// Table1 reproduces Table I plus the derived quantities of §V-B.
func Table1() Figure {
	p := analysis.Defaults()
	row := func(label string, v float64) Series {
		return Series{Label: label, X: []float64{0}, Y: []float64{v}}
	}
	return Figure{
		ID:    "table1",
		Title: "Table I — default evaluation parameters and derived quantities",
		Series: []Series{
			row("n", float64(p.N)), row("m", float64(p.M)), row("l", float64(p.L)),
			row("q", float64(p.Q)), row("N (chips)", float64(p.ChipLen)), row("R (b/s)", p.ChipRate),
			row("rho (s/bit)", p.Rho), row("mu", p.Mu), row("nu", float64(p.Nu)),
			row("l_t", float64(p.LenType)), row("l_id", float64(p.LenID)), row("l_n", float64(p.LenNonce)),
			row("l_f=l_mac", float64(p.LenMAC)), row("l_nu", float64(p.LenNu)), row("l_sig", float64(p.LenSig)),
			row("t_key (s)", p.TKey), row("t_sig (s)", p.TSig), row("t_ver (s)", p.TVer),
			row("s = w*m", float64(p.S())),
			row("l_h (bits)", p.HelloBits()),
			row("l_f coded (bits)", p.AuthBits()),
			row("t_h (s)", p.THello()),
			row("t_b (s)", p.TBuffer()),
			row("lambda", p.Lambda()),
			row("t_p (s)", p.TProcess()),
			row("r (hello rounds)", float64(p.HelloRounds())),
			row("g (avg degree)", p.AvgDegree()),
		},
		Notes: []string{"derived quantities computed per §V-B"},
	}
}
