package experiment

import (
	"math"
	"strings"
	"testing"

	"repro/internal/analysis"
)

func TestExtAntennas(t *testing.T) {
	fig, err := ExtAntennas(analysis.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "ext-antennas" || len(fig.Series) != 3 {
		t.Fatalf("malformed figure: %+v", fig.ID)
	}
	lat := fig.Series[0]
	// k=1 equals Theorem 2; strictly decreasing after.
	if math.Abs(lat.Y[0]-analysis.DNDPLatency(analysis.Defaults())) > 1e-12 {
		t.Fatalf("k=1 latency %v != Theorem 2", lat.Y[0])
	}
	for i := 1; i < len(lat.Y); i++ {
		if lat.Y[i] >= lat.Y[i-1] {
			t.Fatalf("latency not decreasing at k=%v", lat.X[i])
		}
	}
	bad := analysis.Defaults()
	bad.M = 0
	if _, err := ExtAntennas(bad); err == nil {
		t.Fatal("accepted invalid params")
	}
}

func TestMeasureNuProfileValidation(t *testing.T) {
	p := testParams()
	if _, err := MeasureNuProfile(PointConfig{Params: p, Runs: 0}, 4); err == nil {
		t.Fatal("accepted zero runs")
	}
	if _, err := MeasureNuProfile(PointConfig{Params: p, Runs: 1}, 0); err == nil {
		t.Fatal("accepted maxNu=0")
	}
	bad := p
	bad.L = 0
	if _, err := MeasureNuProfile(PointConfig{Params: bad, Runs: 1}, 2); err == nil {
		t.Fatal("accepted invalid params")
	}
}

func TestMeasureNuProfileMonotoneAndConsistent(t *testing.T) {
	p := testParams()
	p.Q = 30
	profile, err := MeasureNuProfile(PointConfig{
		Params: p,
		Jammer: JamReactive,
		Runs:   3,
		Seed:   11,
	}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(profile.PM) != 6 || len(profile.PHat) != 6 {
		t.Fatalf("profile lengths %d/%d, want 6", len(profile.PM), len(profile.PHat))
	}
	if profile.PM[0] != 0 {
		t.Fatalf("P̂_M(ν=1) = %v, want 0 (no intermediate hop)", profile.PM[0])
	}
	for nu := 1; nu < 6; nu++ {
		if profile.PM[nu] < profile.PM[nu-1]-1e-12 {
			t.Fatalf("P̂_M not monotone at ν=%d", nu+1)
		}
		if profile.PHat[nu] < profile.PHat[nu-1]-1e-12 {
			t.Fatalf("P̂ not monotone at ν=%d", nu+1)
		}
	}
	for nu := 0; nu < 6; nu++ {
		if profile.PHat[nu] < profile.PD-1e-12 {
			t.Fatalf("P̂(ν=%d) = %v below P̂_D = %v", nu+1, profile.PHat[nu], profile.PD)
		}
		if profile.PHat[nu] > 1+1e-12 || profile.PM[nu] > 1+1e-12 {
			t.Fatalf("probability out of range at ν=%d", nu+1)
		}
	}
	// The ν=2 profile must agree with MeasurePoint at ν=2 on the same
	// seeds.
	p2 := p
	p2.Nu = 2
	point, err := MeasurePoint(PointConfig{Params: p2, Jammer: JamReactive, Runs: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(point.PM-profile.PM[1]) > 1e-9 {
		t.Fatalf("ν=2 profile (%v) disagrees with MeasurePoint (%v)", profile.PM[1], point.PM)
	}
	if math.Abs(point.PHat-profile.PHat[1]) > 1e-9 {
		t.Fatalf("ν=2 P̂ profile (%v) disagrees with MeasurePoint (%v)", profile.PHat[1], point.PHat)
	}
	if math.Abs(point.PD-profile.PD) > 1e-9 {
		t.Fatalf("P̂_D mismatch: %v vs %v", profile.PD, point.PD)
	}
}

func TestExtZTracksTheorem1UpperBound(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := SweepConfig{Base: testParams(), Runs: 3, Seed: 41}
	fig, err := ExtZ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sim, upper, floor []float64
	for _, s := range fig.Series {
		switch {
		case strings.Contains(s.Label, "sim"):
			sim = s.Y
		case strings.Contains(s.Label, "P̂+"):
			upper = s.Y
		case strings.Contains(s.Label, "P̂−"):
			floor = s.Y
		}
	}
	for i := range sim {
		// The simulation includes the x-sub-session redundancy, so it may
		// sit slightly above the theorem's pessimistic product bound, but
		// never below the reactive floor.
		if sim[i] < floor[i]-0.05 {
			t.Fatalf("point %d: sim %v below the reactive floor %v", i, sim[i], floor[i])
		}
		if sim[i] < upper[i]-0.08 {
			t.Fatalf("point %d: sim %v far below P̂+ %v", i, sim[i], upper[i])
		}
	}
	// P̂+ must decline with z while the floor stays flat.
	if upper[len(upper)-1] >= upper[0] {
		t.Fatal("P̂+ did not decline with z")
	}
	if floor[0] != floor[len(floor)-1] {
		t.Fatal("reactive floor moved with z")
	}
}

func TestInterferenceValidationShape(t *testing.T) {
	fig, err := InterferenceValidation(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	// Perfect decode at the paper's operating density, breakdown at the
	// extreme end.
	if s.Y[0] != 1 {
		t.Fatalf("decode rate %v with no interferers", s.Y[0])
	}
	for i, k := range s.X {
		if k <= 64 && s.Y[i] < 0.9 {
			t.Fatalf("decode rate %v at %v interferers; §IV-A assumption violated", s.Y[i], k)
		}
	}
	if last := s.Y[len(s.Y)-1]; last > 0.1 {
		t.Fatalf("decode rate %v at %v interferers; expected breakdown", last, s.X[len(s.X)-1])
	}
	if _, err := InterferenceValidation(1, 0); err == nil {
		t.Fatal("accepted zero trials")
	}
}

func TestPredistributionComparison(t *testing.T) {
	p := testParams()
	fig, err := PredistributionComparison(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, s := range fig.Series {
		vals[s.Label] = s.Y[0]
	}
	if vals["structured: max holders per code"] != float64(p.L) {
		t.Fatalf("structured cap %v, want exactly l=%d", vals["structured: max holders per code"], p.L)
	}
	if vals["uniform:    max holders per code"] <= vals["structured: max holders per code"] {
		t.Fatal("uniform scheme did not show a holder tail above the cap")
	}
	if vals["uniform:    worst DoS exposure/code"] <= vals["structured: worst DoS exposure/code"] {
		t.Fatal("uniform DoS exposure not worse than structured")
	}
	s, u := vals["structured: Pr[share >= 1 code]"], vals["uniform:    Pr[share >= 1 code]"]
	if math.Abs(s-u) > 0.1 {
		t.Fatalf("sharing probabilities diverge: %v vs %v", s, u)
	}
	bad := p
	bad.M = 0
	if _, err := PredistributionComparison(bad, 1); err == nil {
		t.Fatal("accepted invalid params")
	}
}

func TestExtAdaptiveNu(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := SweepConfig{Base: testParams(), Runs: 2, Seed: 13, Jammer: JamReactive}
	// testParams has n=400; q=100 stresses it hard but stays valid.
	fig, err := ExtAdaptiveNu(cfg, []float64{0.3, 0.6, 0.9}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "ext-adaptive-nu" || len(fig.Series) != 3 {
		t.Fatal("malformed figure")
	}
	chosen := fig.Series[0].Y
	for i := 1; i < len(chosen); i++ {
		if chosen[i] < chosen[i-1] {
			t.Fatalf("chosen ν not monotone in target: %v", chosen)
		}
	}
	measured := fig.Series[2].Y
	for i, v := range measured {
		if v < 0 || v > 1 {
			t.Fatalf("measured[%d] = %v out of range", i, v)
		}
	}
}
