package experiment

import (
	"math"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// testParams returns a scaled-down deployment (n=400) that keeps Monte
// Carlo cheap while preserving the density (g ≈ 22).
func testParams() analysis.Params {
	p := analysis.Defaults()
	p.N = 400
	p.L = 20
	p.Q = 8
	p.FieldWidth, p.FieldHeight = 2250, 2250
	return p
}

func TestMeasurePointValidation(t *testing.T) {
	p := testParams()
	if _, err := MeasurePoint(PointConfig{Params: p, Runs: 0}); err == nil {
		t.Fatal("accepted zero runs")
	}
	bad := p
	bad.M = 0
	if _, err := MeasurePoint(PointConfig{Params: bad, Runs: 1}); err == nil {
		t.Fatal("accepted invalid params")
	}
	if _, err := MeasurePoint(PointConfig{Params: p, Runs: 1, Jammer: JammerModel(99)}); err == nil {
		t.Fatal("accepted unknown jammer")
	}
}

func TestMeasurePointNoJammerMatchesSharingProbability(t *testing.T) {
	// Without jamming, P̂_D equals the probability two nodes share at
	// least one code: 1 − (1 − (l−1)/(n−1))^m.
	p := testParams()
	p.Q = 0
	m, err := MeasurePoint(PointConfig{Params: p, Jammer: JamNone, Runs: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pShare := float64(p.L-1) / float64(p.N-1)
	want := 1 - math.Pow(1-pShare, float64(p.M))
	if math.Abs(m.PD-want) > 0.03 {
		t.Fatalf("P̂_D = %v, want ≈ %v (pure sharing probability)", m.PD, want)
	}
	if m.PHat < m.PD || m.PHat > 1 {
		t.Fatalf("P̂ = %v inconsistent with P̂_D = %v", m.PHat, m.PD)
	}
}

func TestMeasurePointReactiveMatchesTheorem1(t *testing.T) {
	p := testParams()
	p.Q = 20
	m, err := MeasurePoint(PointConfig{Params: p, Jammer: JamReactive, Runs: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := analysis.DNDPReactive(p)
	if math.Abs(m.PD-want) > 0.04 {
		t.Fatalf("P̂_D = %v, Theorem 1 reactive bound %v", m.PD, want)
	}
}

func TestMeasurePointRandomJammerBetweenBounds(t *testing.T) {
	p := testParams()
	p.Q = 20
	p.Z = 2 // weak jammer so the bounds separate
	m, err := MeasurePoint(PointConfig{Params: p, Jammer: JamRandom, Runs: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lower, upper := analysis.DNDPBounds(p)
	if m.PD < lower-0.04 || m.PD > upper+0.04 {
		t.Fatalf("random-jammer P̂_D = %v outside [%v, %v]", m.PD, lower, upper)
	}
	// Random jamming is weaker than reactive.
	reactive, err := MeasurePoint(PointConfig{Params: p, Jammer: JamReactive, Runs: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.PD < reactive.PD-0.02 {
		t.Fatalf("random jammer (%v) outperformed reactive (%v)", m.PD, reactive.PD)
	}
}

func TestConfidenceIntervalsShrinkWithRuns(t *testing.T) {
	p := testParams()
	few, err := MeasurePoint(PointConfig{Params: p, Jammer: JamReactive, Runs: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	many, err := MeasurePoint(PointConfig{Params: p, Jammer: JamReactive, Runs: 12, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if few.PDCI <= 0 || many.PDCI <= 0 {
		t.Fatal("CIs must be positive with >= 2 runs")
	}
	if many.PDCI >= few.PDCI {
		t.Fatalf("CI did not shrink: %v (3 runs) vs %v (12 runs)", few.PDCI, many.PDCI)
	}
	// The CI must bracket the Theorem-1 value at a few sigma.
	want := analysis.DNDPReactive(p)
	if math.Abs(many.PD-want) > 4*many.PDCI+0.02 {
		t.Fatalf("P̂_D = %v ± %v too far from theory %v", many.PD, many.PDCI, want)
	}
	single, err := MeasurePoint(PointConfig{Params: p, Jammer: JamReactive, Runs: 1, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if single.PDCI != 0 {
		t.Fatal("CI with a single run must be 0")
	}
}

func TestMNDPImprovesOnDNDP(t *testing.T) {
	p := testParams()
	p.Q = 30 // substantial compromise so D-NDP suffers
	m, err := MeasurePoint(PointConfig{Params: p, Jammer: JamReactive, Runs: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.PHat <= m.PD {
		t.Fatalf("JR-SND (%v) did not improve on D-NDP (%v)", m.PHat, m.PD)
	}
	// Theorem 3 assumes every physical neighbor participates; with q
	// compromised (non-participating) nodes the effective degree shrinks
	// by (1 − q/n), so compare against the bound at the reduced degree.
	gEff := m.AvgDegree * (1 - float64(p.Q)/float64(p.N))
	bound := analysis.MNDPLowerBound(m.PD, gEff)
	if m.PM < bound-0.1 {
		t.Fatalf("P̂_M = %v well below the Theorem 3 bound %v (g_eff=%v)", m.PM, bound, gEff)
	}
}

func TestIterateMNDPMonotone(t *testing.T) {
	p := testParams()
	p.Q = 30
	single, err := MeasurePoint(PointConfig{Params: p, Jammer: JamReactive, Runs: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	iterated, err := MeasurePoint(PointConfig{Params: p, Jammer: JamReactive, Runs: 3, Seed: 5, IterateMNDP: true})
	if err != nil {
		t.Fatal(err)
	}
	if iterated.PHat < single.PHat-1e-9 {
		t.Fatalf("iterated M-NDP (%v) below single round (%v)", iterated.PHat, single.PHat)
	}
}

func TestRedundancyAblationHurtsUnderRandomJamming(t *testing.T) {
	p := testParams()
	p.Q = 60
	p.Z = 30 // strong random jammer: sub-session survival matters
	with, err := MeasurePoint(PointConfig{Params: p, Jammer: JamRandom, Runs: 6, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	without, err := MeasurePoint(PointConfig{Params: p, Jammer: JamRandom, Runs: 6, Seed: 6, DisableRedundancy: true})
	if err != nil {
		t.Fatal(err)
	}
	if without.PD >= with.PD {
		t.Fatalf("disabling redundancy did not hurt: with=%v without=%v", with.PD, without.PD)
	}
}

func TestLatencyMeasuresMatchTheorems(t *testing.T) {
	p := testParams()
	m, err := MeasurePoint(PointConfig{Params: p, Jammer: JamNone, Runs: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wantTD := analysis.DNDPLatency(p)
	if math.Abs(m.TD-wantTD) > 0.1*wantTD {
		t.Fatalf("T̄_D = %v, Theorem 2 gives %v", m.TD, wantTD)
	}
	// Latency distribution: the median tracks the mean (the delay model is
	// a sum of uniforms, nearly symmetric) and the tail sits above it.
	if math.Abs(m.TD50-m.TD) > 0.15*m.TD {
		t.Fatalf("TD50 = %v far from mean %v", m.TD50, m.TD)
	}
	if m.TD95 <= m.TD50 {
		t.Fatalf("TD95 = %v not above TD50 = %v", m.TD95, m.TD50)
	}
	wantTM := analysis.MNDPLatency(p, p.Nu, m.AvgDegree)
	if math.Abs(m.TM-wantTM) > 1e-9 {
		t.Fatalf("T̄_M = %v, want %v", m.TM, wantTM)
	}
	if m.TBar != math.Max(m.TD, m.TM) {
		t.Fatalf("T̄ = %v is not max(T̄_D, T̄_M)", m.TBar)
	}
}

func TestFiguresSmoke(t *testing.T) {
	// Scaled-down pass over every figure: runs must succeed and produce
	// full-length, in-range series.
	if testing.Short() {
		t.Skip("figure sweeps are slow; skipped with -short")
	}
	cfg := SweepConfig{Base: testParams(), Runs: 2, Seed: 9, Jammer: JamReactive}
	figs := []struct {
		name string
		fn   func() (Figure, error)
	}{
		{"fig2a", func() (Figure, error) { return Fig2a(cfg) }},
		{"fig2b", func() (Figure, error) { return Fig2b(cfg) }},
		{"fig3a", func() (Figure, error) { return Fig3a(cfg) }},
		{"fig4a", func() (Figure, error) { return Fig4(cfg, 40) }},
		{"fig4b", func() (Figure, error) { return Fig4(cfg, 20) }},
		{"fig5a", func() (Figure, error) { return Fig5a(cfg) }},
		{"fig5b", func() (Figure, error) { return Fig5b(cfg) }},
	}
	for _, tc := range figs {
		fig, err := tc.fn()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(fig.Series) == 0 {
			t.Fatalf("%s: no series", tc.name)
		}
		for _, s := range fig.Series {
			if len(s.X) != len(s.Y) || len(s.X) == 0 {
				t.Fatalf("%s/%s: malformed series", tc.name, s.Label)
			}
			if strings.Contains(fig.YLabel, "P̂") {
				for i, y := range s.Y {
					if y < -1e-9 || y > 1+1e-9 {
						t.Fatalf("%s/%s[%d]: probability %v out of range", tc.name, s.Label, i, y)
					}
				}
			}
		}
	}
}

func TestFig3bSweepsN(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Fig 3(b) varies n itself, so run it with the real base but tiny runs.
	cfg := SweepConfig{Runs: 1, Seed: 10, Jammer: JamReactive}
	fig, err := Fig3b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig3b" || len(fig.Series) == 0 {
		t.Fatal("malformed fig3b")
	}
}

func TestTable1Printable(t *testing.T) {
	fig := Table1()
	var sb strings.Builder
	if err := Print(&sb, fig); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"s = w*m", "5000", "lambda", "g (avg degree)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintSeriesTable(t *testing.T) {
	fig := Figure{
		ID: "x", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{0.5, 0.25}}},
		Notes:  []string{"hello"},
	}
	var sb strings.Builder
	if err := Print(&sb, fig); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== t [x]", "0.5000", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Print output missing %q:\n%s", want, out)
		}
	}
}

func TestDSSSValidationExperiment(t *testing.T) {
	fig, err := DSSSValidation(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	// Below the μ/(1+μ)=0.5 budget, decoding succeeds; above, it fails.
	for i, frac := range s.X {
		if frac <= 0.45 && s.Y[i] < 0.99 {
			t.Fatalf("decode rate %v at jam fraction %v, want ≈ 1", s.Y[i], frac)
		}
		if frac >= 0.55 && s.Y[i] > 0.01 {
			t.Fatalf("decode rate %v at jam fraction %v, want ≈ 0", s.Y[i], frac)
		}
	}
	if _, err := DSSSValidation(1, 0); err == nil {
		t.Fatal("accepted zero trials")
	}
}

func TestGoldComparison(t *testing.T) {
	fig, err := GoldComparison(1, 32, 500)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, s := range fig.Series {
		vals[s.Label] = s.Y[0]
	}
	goldMax := vals["gold:   max |cross-corr|"]
	bound := vals["gold bound t(9)/511"]
	if goldMax > bound+1e-12 {
		t.Fatalf("gold max cross-corr %v exceeds its bound %v", goldMax, bound)
	}
	if vals["random: max |cross-corr|"] <= goldMax {
		t.Fatalf("random family (%v) not worse than gold (%v): suspicious",
			vals["random: max |cross-corr|"], goldMax)
	}
	if vals["gold:   false-lock rate"] != 0 {
		t.Fatal("gold codes false-locked below their bound")
	}
	if _, err := GoldComparison(1, 1, 10); err == nil {
		t.Fatal("accepted familySize=1")
	}
	if _, err := GoldComparison(1, 8, 0); err == nil {
		t.Fatal("accepted trials=0")
	}
}

func TestWriteCSV(t *testing.T) {
	fig := Figure{
		ID: "x", XLabel: "x",
		Series: []Series{
			{Label: "a,b", X: []float64{1, 2}, Y: []float64{0.5, 0.25}},
			{Label: "c", X: []float64{1, 2}, Y: []float64{3, 4}},
		},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, fig); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := "x,\"a,b\",c\n1,0.5,3\n2,0.25,4\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
	// Parameter-style figure.
	tab := Figure{Series: []Series{{Label: "p", X: []float64{0}, Y: []float64{7}}}}
	sb.Reset()
	if err := WriteCSV(&sb, tab); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "p,7\n" {
		t.Fatalf("param CSV = %q", sb.String())
	}
	if err := WriteCSV(&sb, Figure{}); err != nil {
		t.Fatal("empty figure must be a no-op")
	}
}

func TestDoSExperiment(t *testing.T) {
	fig, err := DoSExperiment(1, 12)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, s := range fig.Series {
		vals[s.Label] = s.Y[0]
	}
	if vals["verifications, no revocation"] <= vals["verifications, gamma=5"] {
		t.Fatalf("revocation did not reduce verification work: %+v", vals)
	}
	if vals["revoked codes, gamma=5"] == 0 {
		t.Fatal("no codes revoked under sustained attack")
	}
}
