package experiment

import (
	"fmt"
	"io"
)

// Report bundles a full reproduction pass: every figure plus automated
// verdicts on the paper's qualitative claims, so a reader can tell at a
// glance whether the reproduction still holds after a change.
type Report struct {
	Config  SweepConfig
	Figures []Figure
	Checks  []ClaimCheck
}

// ClaimCheck is one automated verdict on a paper claim.
type ClaimCheck struct {
	Artifact string
	Claim    string
	Pass     bool
	Detail   string
}

// BuildReport runs the full evaluation (all paper figures plus the
// validation experiments) and checks the paper's qualitative claims
// against the measurements.
func BuildReport(cfg SweepConfig) (Report, error) {
	cfg = cfg.withDefaults()
	r := Report{Config: cfg}

	add := func(fig Figure, err error) (Figure, error) {
		if err != nil {
			return Figure{}, err
		}
		r.Figures = append(r.Figures, fig)
		return fig, nil
	}
	check := func(artifact, claim string, pass bool, format string, args ...any) {
		r.Checks = append(r.Checks, ClaimCheck{
			Artifact: artifact,
			Claim:    claim,
			Pass:     pass,
			Detail:   fmt.Sprintf(format, args...),
		})
	}
	series := func(fig Figure, label string) []float64 {
		for _, s := range fig.Series {
			if s.Label == label {
				return s.Y
			}
		}
		return nil
	}

	r.Figures = append(r.Figures, Table1())

	// Fig. 2(a): P̂ rises with m; JR-SND ≈ 1 at m = 100.
	fig2a, err := add(Fig2a(cfg))
	if err != nil {
		return Report{}, err
	}
	jr := series(fig2a, "JR-SND (sim)")
	at100 := valueAt(fig2a.Series[0].X, jr, 100)
	check("fig2a", "JR-SND ≈ 1 at m=100", at100 >= 0.99, "measured %.4f", at100)
	check("fig2a", "D-NDP increases with m", nonDecreasing(series(fig2a, "D-NDP (sim)"), 0.02),
		"first %.3f last %.3f", series(fig2a, "D-NDP (sim)")[0], last(series(fig2a, "D-NDP (sim)")))

	// Fig. 2(b): T̄_D quadratic, crossover near m=60, < 2 s at m=100.
	fig2b, err := add(Fig2b(cfg))
	if err != nil {
		return Report{}, err
	}
	td := series(fig2b, "D-NDP T̄ (sim)")
	tm := series(fig2b, "M-NDP T̄ (Theorem 4)")
	crossover := -1.0
	for i := range td {
		if td[i] > tm[i] {
			crossover = fig2b.Series[0].X[i]
			break
		}
	}
	check("fig2b", "T̄_D crosses T̄_M for m just above 60", crossover > 60 && crossover <= 100,
		"crossover at m=%v", crossover)
	tAt100 := valueAt(fig2b.Series[0].X, series(fig2b, "JR-SND T̄ = max"), 100)
	check("fig2b", "JR-SND latency < 2 s at m=100", tAt100 < 2, "measured %.3f s", tAt100)

	// Fig. 3(a): peak near l = 100, then slow decline.
	fig3a, err := add(Fig3a(cfg))
	if err != nil {
		return Report{}, err
	}
	dnd3a := series(fig3a, "D-NDP (sim)")
	peakL := fig3a.Series[0].X[argmax(dnd3a)]
	check("fig3a", "P̂ peaks near l ≈ 100 then declines", peakL >= 60 && peakL <= 140 && last(dnd3a) < max(dnd3a),
		"peak at l=%v (%.3f), endpoint %.3f", peakL, max(dnd3a), last(dnd3a))

	// Fig. 3(b): D-NDP rises then falls; JR-SND stays high.
	fig3b, err := add(Fig3b(cfg))
	if err != nil {
		return Report{}, err
	}
	dnd3b := series(fig3b, "D-NDP (sim)")
	iPeak := argmax(dnd3b)
	check("fig3b", "D-NDP rises then declines in n", iPeak > 0 && iPeak < len(dnd3b)-1,
		"peak at n=%v", fig3b.Series[0].X[iPeak])
	check("fig3b", "JR-SND stays high across n", minOf(series(fig3b, "JR-SND (sim)")) > 0.9,
		"min %.3f", minOf(series(fig3b, "JR-SND (sim)")))

	// Fig. 4(a)/(b): monotone decline in q; P̂_D(q=100) ≈ 0.2 at l=40;
	// l=20 declines more gently at large q.
	fig4a, err := add(Fig4(cfg, 40))
	if err != nil {
		return Report{}, err
	}
	fig4b, err := add(Fig4(cfg, 20))
	if err != nil {
		return Report{}, err
	}
	pd4a := series(fig4a, "D-NDP (sim)")
	check("fig4a", "all curves decline with q", nonIncreasing(pd4a, 0.02) &&
		nonIncreasing(series(fig4a, "JR-SND (sim)"), 0.02), "D-NDP %.3f→%.3f", pd4a[0], last(pd4a))
	pdAt100 := valueAt(fig4a.Series[0].X, pd4a, 100)
	check("fig4a", "P̂_D ≈ 0.2 at q=100 (the Fig. 5(a) anchor)", pdAt100 > 0.15 && pdAt100 < 0.3,
		"measured %.3f", pdAt100)
	jr4aEnd := valueAt(fig4a.Series[0].X, series(fig4a, "JR-SND (sim)"), 100)
	jr4bEnd := valueAt(fig4b.Series[0].X, series(fig4b, "JR-SND (sim)"), 100)
	check("fig4b", "l=20 degrades more slowly than l=40 at q=100", jr4bEnd > jr4aEnd,
		"l=20: %.3f vs l=40: %.3f", jr4bEnd, jr4aEnd)

	// Fig. 5(a): P̂_D flat in ν; P̂ > 0.9 for ν >= 6.
	fig5a, err := add(Fig5a(cfg))
	if err != nil {
		return Report{}, err
	}
	pd5a := series(fig5a, "D-NDP (sim)")
	check("fig5a", "P̂_D flat in ν", max(pd5a)-minOf(pd5a) < 0.05, "spread %.4f", max(pd5a)-minOf(pd5a))
	p5aAt6 := valueAt(fig5a.Series[0].X, series(fig5a, "JR-SND (sim)"), 6)
	check("fig5a", "P̂ > 0.9 for ν >= 6", p5aAt6 > 0.9, "P̂(ν=6) = %.3f", p5aAt6)

	// Fig. 5(b): T̄_M increasing, a few seconds at ν=6.
	fig5b, err := add(Fig5b(cfg))
	if err != nil {
		return Report{}, err
	}
	tm5b := series(fig5b, "M-NDP T̄ (Theorem 4, measured g)")
	check("fig5b", "T̄_M increases with ν, seconds-scale at ν=6",
		nonDecreasing(tm5b, 0) && valueAt(fig5b.Series[0].X, tm5b, 6) > 2 && valueAt(fig5b.Series[0].X, tm5b, 6) < 10,
		"T̄_M(6) = %.2f s", valueAt(fig5b.Series[0].X, tm5b, 6))

	// Chip-level ECC threshold.
	dsssFig, err := add(DSSSValidation(cfg.Seed, maxInt(cfg.Runs, 10)))
	if err != nil {
		return Report{}, err
	}
	dsssY := dsssFig.Series[0].Y
	dsssX := dsssFig.Series[0].X
	sharp := true
	for i := range dsssX {
		if dsssX[i] <= 0.45 && dsssY[i] < 0.99 {
			sharp = false
		}
		if dsssX[i] >= 0.55 && dsssY[i] > 0.01 {
			sharp = false
		}
	}
	check("dsss", "ECC threshold sharp at μ/(1+μ) = 0.5", sharp, "curve %v", dsssY)

	// DoS bound.
	dosFig, err := add(DoSExperiment(cfg.Seed, 20))
	if err != nil {
		return Report{}, err
	}
	var noRev, withRev float64
	for _, s := range dosFig.Series {
		switch s.Label {
		case "verifications, no revocation":
			noRev = s.Y[0]
		case "verifications, gamma=5":
			withRev = s.Y[0]
		}
	}
	check("dos", "revocation bounds the DoS verification load", withRev < noRev,
		"%v → %v verifications", noRev, withRev)

	return r, nil
}

// WriteMarkdown renders the report.
func WriteMarkdown(w io.Writer, r Report) error {
	fmt.Fprintf(w, "# JR-SND reproduction report\n\n")
	fmt.Fprintf(w, "Configuration: n=%d, %d runs per point, seed %d, %s jamming.\n\n",
		r.Config.Base.N, r.Config.Runs, r.Config.Seed, r.Config.Jammer)

	passed := 0
	for _, c := range r.Checks {
		if c.Pass {
			passed++
		}
	}
	fmt.Fprintf(w, "## Claim checks — %d/%d passed\n\n", passed, len(r.Checks))
	fmt.Fprintf(w, "| Artifact | Claim | Verdict | Measured |\n|---|---|---|---|\n")
	for _, c := range r.Checks {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s |\n", c.Artifact, c.Claim, verdict, c.Detail)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "## Measured series\n\n")
	for _, fig := range r.Figures {
		fmt.Fprintf(w, "### %s\n\n```\n", fig.Title)
		if err := Print(w, fig); err != nil {
			return err
		}
		fmt.Fprintf(w, "```\n\n")
	}
	return nil
}

func valueAt(xs, ys []float64, x float64) float64 {
	for i := range xs {
		if xs[i] == x {
			return ys[i]
		}
	}
	return -1
}

func last(ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	return ys[len(ys)-1]
}

func argmax(ys []float64) int {
	best := 0
	for i, v := range ys {
		if v > ys[best] {
			best = i
		}
	}
	return best
}

func max(ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	return ys[argmax(ys)]
}

func minOf(ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	m := ys[0]
	for _, v := range ys {
		if v < m {
			m = v
		}
	}
	return m
}

func nonDecreasing(ys []float64, slack float64) bool {
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1]-slack {
			return false
		}
	}
	return true
}

func nonIncreasing(ys []float64, slack float64) bool {
	for i := 1; i < len(ys); i++ {
		if ys[i] > ys[i-1]+slack {
			return false
		}
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
