// Package rs implements Reed–Solomon codes over GF(2^8) (Reed & Solomon,
// 1960 — reference [15] of the paper), including a systematic encoder and a
// full errors-and-erasures decoder (syndromes, Forney syndromes,
// Berlekamp–Massey, Chien search, Forney magnitude algorithm).
//
// JR-SND uses the code through the Codec wrapper: a message of k data
// symbols is expanded to (1+μ)k symbols, which tolerates a μ/(1+μ)
// fraction of erased symbols — exactly the ECC contract assumed in §V-B of
// the paper ("this ECC method can tolerate up to a fraction of μ/(1+μ) bit
// errors or losses").
package rs

// The field GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d), generator α = 2.
const primitivePoly = 0x11d

type gfTables struct {
	exp [512]byte // exp[i] = α^i, doubled to avoid mod in mul
	log [256]byte // log[α^i] = i; log[0] unused
}

var tables = buildTables()

func buildTables() *gfTables {
	t := &gfTables{}
	x := 1
	for i := 0; i < 255; i++ {
		t.exp[i] = byte(x)
		t.log[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= primitivePoly
		}
	}
	for i := 255; i < 512; i++ {
		t.exp[i] = t.exp[i-255]
	}
	return t
}

// gfAdd adds two field elements (XOR in characteristic 2).
func gfAdd(a, b byte) byte { return a ^ b }

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return tables.exp[int(tables.log[a])+int(tables.log[b])]
}

// gfDiv divides a by b. b must be nonzero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("rs: division by zero in GF(2^8)")
	}
	if a == 0 {
		return 0
	}
	return tables.exp[int(tables.log[a])+255-int(tables.log[b])]
}

// gfInv returns the multiplicative inverse of a. a must be nonzero.
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfPow returns a^n for n >= 0.
func gfPow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return tables.exp[(int(tables.log[a])*n)%255]
}

// alphaPow returns α^n, for any integer n (negative allowed).
func alphaPow(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return tables.exp[n]
}

// Polynomials are represented low-degree-first: p[i] is the coefficient of
// x^i.

// polyEval evaluates p at x using Horner's method.
func polyEval(p []byte, x byte) byte {
	var y byte
	for i := len(p) - 1; i >= 0; i-- {
		y = gfAdd(gfMul(y, x), p[i])
	}
	return y
}

// polyMul multiplies two polynomials.
func polyMul(a, b []byte) []byte {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]byte, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] ^= gfMul(ai, bj)
		}
	}
	return out
}

// polyScale multiplies every coefficient by c.
func polyScale(p []byte, c byte) []byte {
	out := make([]byte, len(p))
	for i, v := range p {
		out[i] = gfMul(v, c)
	}
	return out
}

// polyAdd adds two polynomials.
func polyAdd(a, b []byte) []byte {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]byte, n)
	copy(out, a)
	for i, v := range b {
		out[i] ^= v
	}
	return out
}

// polyDeriv returns the formal derivative of p. In characteristic 2 the
// even-power terms vanish: d/dx Σ p_i x^i = Σ_{i odd} p_i x^{i-1}.
func polyDeriv(p []byte) []byte {
	if len(p) <= 1 {
		return []byte{0}
	}
	out := make([]byte, len(p)-1)
	for i := 1; i < len(p); i += 2 {
		out[i-1] = p[i]
	}
	return out
}

// polyTrim removes trailing zero coefficients (keeping at least one).
func polyTrim(p []byte) []byte {
	n := len(p)
	for n > 1 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}
