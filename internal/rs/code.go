package rs

import (
	"errors"
	"fmt"
)

// Code is a Reed–Solomon code RS(n, k) over GF(2^8) with n = k + parity,
// n <= 255. It corrects up to parity erasures, or up to parity/2 unknown
// errors, or any mix with 2·errors + erasures <= parity.
type Code struct {
	k      int    // data symbols per block
	parity int    // parity symbols per block
	gen    []byte // generator polynomial, low-degree first, degree = parity
}

var (
	// ErrTooManyErrors is returned when the received word is too corrupted
	// to decode. The decoder never silently returns wrong data for
	// correctable inputs; beyond the design distance it reports this error
	// with high probability.
	ErrTooManyErrors = errors.New("rs: too many errors to decode")

	// ErrBlockLength is returned for inputs of the wrong length.
	ErrBlockLength = errors.New("rs: wrong block length")
)

// NewCode constructs an RS(k+parity, k) code. k >= 1, parity >= 1 and
// k+parity <= 255.
func NewCode(k, parity int) (*Code, error) {
	if k < 1 || parity < 1 || k+parity > 255 {
		return nil, fmt.Errorf("rs: invalid parameters k=%d parity=%d (need 1<=k, 1<=parity, k+parity<=255)", k, parity)
	}
	// Generator g(x) = Π_{i=0}^{parity-1} (x - α^i).
	gen := []byte{1}
	for i := 0; i < parity; i++ {
		gen = polyMul(gen, []byte{alphaPow(i), 1})
	}
	return &Code{k: k, parity: parity, gen: gen}, nil
}

// K returns the number of data symbols per block.
func (c *Code) K() int { return c.k }

// Parity returns the number of parity symbols per block.
func (c *Code) Parity() int { return c.parity }

// N returns the total block length k + parity.
func (c *Code) N() int { return c.k + c.parity }

// Encode encodes exactly k data bytes into an n-byte systematic codeword.
// The codeword is parity-first: positions [0, parity) hold the parity
// symbols (the low-degree coefficients of the codeword polynomial) and
// positions [parity, n) hold the data unchanged. With this layout the
// codeword polynomial is c(x) = x^parity·d(x) + (x^parity·d(x) mod g(x)),
// which vanishes at every root of the generator.
func (c *Code) Encode(data []byte) ([]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("%w: got %d data bytes, want %d", ErrBlockLength, len(data), c.k)
	}
	out := make([]byte, c.N())
	copy(out[c.parity:], data)
	rem := make([]byte, c.parity)
	for i := c.k - 1; i >= 0; i-- {
		// rem ← rem·x + data[i]·x^parity (mod g).
		factor := gfAdd(data[i], rem[c.parity-1])
		copy(rem[1:], rem[:c.parity-1])
		rem[0] = 0
		if factor != 0 {
			for j := 0; j < c.parity; j++ {
				rem[j] ^= gfMul(factor, c.gen[j])
			}
		}
	}
	copy(out[:c.parity], rem)
	return out, nil
}

// Decode decodes an n-byte received word, correcting unknown errors and the
// erasures whose positions are listed in erasures (indices into the block).
// It returns the k recovered data bytes. Erasure positions may hold any
// byte value in the input. It fails with ErrTooManyErrors when
// 2·(unknown errors) + len(erasures) exceeds the parity budget.
func (c *Code) Decode(received []byte, erasures []int) ([]byte, error) {
	if len(received) != c.N() {
		return nil, fmt.Errorf("%w: got %d bytes, want %d", ErrBlockLength, len(received), c.N())
	}
	if len(erasures) > c.parity {
		return nil, fmt.Errorf("%w: %d erasures exceed parity %d", ErrTooManyErrors, len(erasures), c.parity)
	}
	for _, e := range erasures {
		if e < 0 || e >= c.N() {
			return nil, fmt.Errorf("rs: erasure position %d out of range [0,%d)", e, c.N())
		}
	}

	word := make([]byte, len(received))
	copy(word, received)
	// Zero out erased positions so syndromes reflect a known value there.
	for _, e := range erasures {
		word[e] = 0
	}

	synd := c.syndromes(word)
	if allZero(synd) && len(erasures) == 0 {
		return word[c.parity:], nil
	}

	// The codeword c(x) = Σ word[i] x^i with evaluation points α^i; the
	// locator of position i is X_i = α^i.
	erasureLoc := []byte{1}
	for _, e := range erasures {
		erasureLoc = polyMul(erasureLoc, []byte{1, alphaPow(e)}) // (1 + X_i x)
	}

	// Forney syndromes: fold erasure information into the syndromes so
	// Berlekamp–Massey only has to find the unknown-error locator. The
	// first len(erasures) entries of T(x) = S(x)·Γ(x) mod x^parity carry a
	// polynomial term contributed by the erasures themselves; only the
	// shifted tail T_f, …, T_{parity-1} is a pure exponential sum
	// annihilated by the error locator, so BM runs on that tail.
	forney := c.forneySyndromes(synd, erasureLoc)
	maxErrors := (c.parity - len(erasures)) / 2
	errLoc, err := berlekampMassey(forney[len(erasures):], maxErrors)
	if err != nil {
		return nil, err
	}

	// Combined locator covers both erasures and errors.
	loc := polyTrim(polyMul(erasureLoc, errLoc))
	positions, err := c.chienSearch(loc)
	if err != nil {
		return nil, err
	}
	if err := c.forneyCorrect(word, synd, loc, positions); err != nil {
		return nil, err
	}
	// Verify: a successful correction must yield zero syndromes.
	if !allZero(c.syndromes(word)) {
		return nil, ErrTooManyErrors
	}
	return word[c.parity:], nil
}

// syndromes computes S_j = r(α^j) for j = 0..parity-1.
func (c *Code) syndromes(word []byte) []byte {
	s := make([]byte, c.parity)
	for j := 0; j < c.parity; j++ {
		s[j] = polyEval(word, alphaPow(j))
	}
	return s
}

// forneySyndromes computes the modified syndromes T(x) = S(x)·Γ(x) mod
// x^parity, where Γ is the erasure locator.
func (c *Code) forneySyndromes(synd, erasureLoc []byte) []byte {
	t := polyMul(synd, erasureLoc)
	if len(t) > c.parity {
		t = t[:c.parity]
	}
	out := make([]byte, c.parity)
	copy(out, t)
	return out
}

// berlekampMassey finds the minimal error-locator polynomial Λ(x) (constant
// term 1) consistent with the given syndromes, allowing at most maxErrors
// errors.
func berlekampMassey(synd []byte, maxErrors int) ([]byte, error) {
	lambda := []byte{1}
	prev := []byte{1}
	length := 0 // current LFSR length
	shift := 1
	for n := 0; n < len(synd); n++ {
		// Discrepancy δ = S_n + Σ_{i=1..L} λ_i S_{n-i}.
		delta := synd[n]
		for i := 1; i <= length && i < len(lambda); i++ {
			delta ^= gfMul(lambda[i], synd[n-i])
		}
		if delta == 0 {
			shift++
			continue
		}
		// λ' = λ - δ·x^shift·prev
		shifted := make([]byte, shift+len(prev))
		copy(shifted[shift:], prev)
		candidate := polyAdd(lambda, polyScale(shifted, delta))
		if 2*length <= n {
			prev = polyScale(lambda, gfInv(delta))
			lambda = candidate
			length = n + 1 - length
			shift = 1
		} else {
			lambda = candidate
			shift++
		}
	}
	lambda = polyTrim(lambda)
	if length > maxErrors || len(lambda)-1 != length {
		return nil, ErrTooManyErrors
	}
	return lambda, nil
}

// chienSearch finds the positions i in [0, n) for which the locator has a
// root at α^{-i}, i.e. the corrupted symbol positions.
func (c *Code) chienSearch(loc []byte) ([]int, error) {
	degree := len(loc) - 1
	if degree == 0 {
		return nil, nil
	}
	positions := make([]int, 0, degree)
	for i := 0; i < c.N(); i++ {
		if polyEval(loc, alphaPow(-i)) == 0 {
			positions = append(positions, i)
		}
	}
	if len(positions) != degree {
		// Locator roots don't all lie inside the block: uncorrectable.
		return nil, ErrTooManyErrors
	}
	return positions, nil
}

// forneyCorrect computes the error magnitudes with Forney's algorithm and
// patches word in place.
func (c *Code) forneyCorrect(word, synd, loc []byte, positions []int) error {
	if len(positions) == 0 {
		return nil
	}
	// Error evaluator Ω(x) = S(x)·Λ(x) mod x^parity.
	omega := polyMul(synd, loc)
	if len(omega) > c.parity {
		omega = omega[:c.parity]
	}
	locDeriv := polyDeriv(loc)
	for _, pos := range positions {
		xInv := alphaPow(-pos)
		denom := polyEval(locDeriv, xInv)
		if denom == 0 {
			return ErrTooManyErrors
		}
		// With the b=0 syndrome convention (S_j = r(α^j), j starting at 0)
		// the magnitude is e = X·Ω(X^-1)/Λ'(X^-1) with X = α^pos.
		num := gfMul(polyEval(omega, xInv), alphaPow(pos))
		word[pos] ^= gfDiv(num, denom)
	}
	return nil
}

func allZero(p []byte) bool {
	for _, v := range p {
		if v != 0 {
			return false
		}
	}
	return true
}
