package rs_test

import (
	"fmt"

	"repro/internal/rs"
)

// A μ=1 codec doubles the message and tolerates erasure of just under half
// the coded symbols — the §V-B ECC contract.
func ExampleCodec() {
	codec, _ := rs.NewCodec(1.0)
	msg := []byte("neighbor discovery")
	enc, _ := codec.Encode(msg)

	// Jam a burst within the budget.
	budget := len(enc)*codec.BlockCode().Parity()/codec.BlockCode().N() - 1
	erasures := make([]int, budget)
	for i := range erasures {
		erasures[i] = i
		enc[i] ^= 0xFF
	}
	got, err := codec.Decode(enc, len(msg), erasures)
	fmt.Printf("expanded %d→%d bytes, decoded %q (err=%v)\n", len(msg), len(enc), got, err)
	// Output: expanded 18→36 bytes, decoded "neighbor discovery" (err=<nil>)
}

// The block code corrects both unknown errors and known erasures within
// 2·errors + erasures <= parity.
func ExampleCode_Decode() {
	code, _ := rs.NewCode(10, 6)
	cw, _ := code.Encode([]byte("0123456789"))
	cw[0] ^= 0xAA // unknown error
	cw[7] ^= 0x55 // known erasure
	cw[12] ^= 0x77
	data, err := code.Decode(cw, []int{7, 12})
	fmt.Printf("%s err=%v\n", data, err)
	// Output: 0123456789 err=<nil>
}
