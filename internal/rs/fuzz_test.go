package rs

import (
	"bytes"
	"testing"
)

// FuzzDecodeNeverPanics feeds arbitrary received words (and erasure
// patterns derived from them) to the block decoder: it must either decode
// or return an error, never panic, and a successful decode must
// re-encode-verify.
func FuzzDecodeNeverPanics(f *testing.F) {
	code, err := NewCode(20, 10)
	if err != nil {
		f.Fatal(err)
	}
	valid, _ := code.Encode(bytes.Repeat([]byte{7}, 20))
	f.Add(valid, uint8(0))
	f.Add(bytes.Repeat([]byte{0xFF}, 30), uint8(3))
	f.Add(make([]byte, 30), uint8(9))
	f.Fuzz(func(t *testing.T, word []byte, erasureSeed uint8) {
		if len(word) != code.N() {
			return
		}
		// Derive up to parity erasure positions from the seed.
		var erasures []int
		for i := 0; i < int(erasureSeed)%11; i++ {
			erasures = append(erasures, (i*7+int(erasureSeed))%code.N())
		}
		seen := map[int]bool{}
		dedup := erasures[:0]
		for _, e := range erasures {
			if !seen[e] {
				seen[e] = true
				dedup = append(dedup, e)
			}
		}
		data, err := code.Decode(word, dedup)
		if err != nil {
			return
		}
		// A successful decode must produce a valid codeword containing
		// that data.
		re, err := code.Encode(data)
		if err != nil {
			t.Fatalf("re-encode of decoded data failed: %v", err)
		}
		if !allZero(code.syndromes(re)) {
			t.Fatal("re-encoded word is not a codeword")
		}
	})
}

// FuzzCodecRoundTrip checks that arbitrary messages survive encode/decode
// with a burst of in-budget corruption.
func FuzzCodecRoundTrip(f *testing.F) {
	codec, err := NewCodec(1.0)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte("hello world"), uint16(3))
	f.Add(bytes.Repeat([]byte{0xA5}, 300), uint16(50))
	f.Add([]byte{0}, uint16(0))
	f.Fuzz(func(t *testing.T, msg []byte, burstStart uint16) {
		if len(msg) == 0 || len(msg) > 2048 {
			return
		}
		enc, err := codec.Encode(msg)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		// Corrupt a burst within the guaranteed budget.
		budget := len(enc)/3 - 1
		if budget < 0 {
			budget = 0
		}
		start := int(burstStart) % len(enc)
		var erasures []int
		for i := 0; i < budget; i++ {
			pos := (start + i) % len(enc)
			enc[pos] ^= 0x3C
			erasures = append(erasures, pos)
		}
		got, err := codec.Decode(enc, len(msg), erasures)
		if err != nil {
			t.Fatalf("decode within budget failed: %v", err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatal("round trip mismatch")
		}
	})
}
