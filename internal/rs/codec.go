package rs

import (
	"errors"
	"fmt"
	"math"
)

// Codec frames arbitrary-length messages over the block code. A message of
// b bytes is split into blocks of k data symbols, each expanded with ⌈μ·k⌉
// parity symbols, and the blocks are interleaved symbol-wise so that a
// contiguous jamming burst is spread evenly across blocks. With erasure
// decoding the codec tolerates a μ/(1+μ) fraction of erased symbols of the
// encoded stream — the ECC contract of §V-B of the paper.
type Codec struct {
	mu    float64
	code  *Code
	small map[int]*Code // cache of codes for messages shorter than one block
}

// ErrEmptyMessage is returned when encoding a zero-length message.
var ErrEmptyMessage = errors.New("rs: empty message")

// NewCodec builds a codec with expansion factor μ > 0 (encoded length ≈
// (1+μ)·message length). The block size is chosen as large as the 255-byte
// RS limit allows for the given μ.
func NewCodec(mu float64) (*Codec, error) {
	if mu <= 0 || math.IsNaN(mu) || math.IsInf(mu, 0) {
		return nil, fmt.Errorf("rs: invalid expansion factor μ=%v (need μ > 0)", mu)
	}
	// Largest k with k + ceil(mu*k) <= 255.
	k := int(math.Floor(255 / (1 + mu)))
	for k > 1 && k+parityFor(k, mu) > 255 {
		k--
	}
	if k < 1 {
		k = 1
	}
	code, err := NewCode(k, parityFor(k, mu))
	if err != nil {
		return nil, err
	}
	return &Codec{mu: mu, code: code, small: map[int]*Code{}}, nil
}

// codeFor returns the block code used for a msgLen-byte message: messages
// shorter than one full block use a right-sized RS(k+⌈μk⌉, k) code so that
// protocol-sized messages keep the paper's (1+μ)-expansion airtime instead
// of padding to a full block.
func (c *Codec) codeFor(msgLen int) (*Code, error) {
	if msgLen >= c.code.k {
		return c.code, nil
	}
	if small, ok := c.small[msgLen]; ok {
		return small, nil
	}
	small, err := NewCode(msgLen, parityFor(msgLen, c.mu))
	if err != nil {
		return nil, err
	}
	c.small[msgLen] = small
	return small, nil
}

func parityFor(k int, mu float64) int {
	p := int(math.Ceil(mu * float64(k)))
	if p < 1 {
		p = 1
	}
	return p
}

// Mu returns the configured expansion factor.
func (c *Codec) Mu() float64 { return c.mu }

// BlockCode returns the underlying RS block code.
func (c *Codec) BlockCode() *Code { return c.code }

// EncodedLen returns the length in bytes of the encoding of a msgLen-byte
// message.
func (c *Codec) EncodedLen(msgLen int) int {
	if msgLen <= 0 {
		return 0
	}
	code, err := c.codeFor(msgLen)
	if err != nil {
		return 0
	}
	blocks := (msgLen + code.k - 1) / code.k
	return blocks * code.N()
}

// Encode expands msg into the interleaved coded stream.
func (c *Codec) Encode(msg []byte) ([]byte, error) {
	if len(msg) == 0 {
		return nil, ErrEmptyMessage
	}
	code, err := c.codeFor(len(msg))
	if err != nil {
		return nil, err
	}
	k, n := code.k, code.N()
	blocks := (len(msg) + k - 1) / k
	coded := make([][]byte, blocks)
	for b := 0; b < blocks; b++ {
		chunk := make([]byte, k)
		copy(chunk, msg[b*k:min(len(msg), (b+1)*k)])
		cw, err := code.Encode(chunk)
		if err != nil {
			return nil, fmt.Errorf("rs: encode block %d: %w", b, err)
		}
		coded[b] = cw
	}
	// Interleave: output position i*blocks + b holds symbol i of block b.
	out := make([]byte, blocks*n)
	for b, cw := range coded {
		for i, sym := range cw {
			out[i*blocks+b] = sym
		}
	}
	return out, nil
}

// Decode recovers the original msgLen-byte message from the interleaved
// stream. erasures lists symbol positions of the encoded stream known to be
// corrupted (e.g. chips jammed below the correlation threshold); their byte
// values are ignored. Unknown errors elsewhere are also corrected, within
// the 2·errors + erasures <= parity budget per block.
func (c *Codec) Decode(encoded []byte, msgLen int, erasures []int) ([]byte, error) {
	if msgLen <= 0 {
		return nil, ErrEmptyMessage
	}
	code, err := c.codeFor(msgLen)
	if err != nil {
		return nil, err
	}
	k, n := code.k, code.N()
	blocks := (msgLen + k - 1) / k
	if len(encoded) != blocks*n {
		return nil, fmt.Errorf("%w: got %d bytes, want %d for a %d-byte message",
			ErrBlockLength, len(encoded), blocks*n, msgLen)
	}
	perBlockErasures := make([][]int, blocks)
	for _, e := range erasures {
		if e < 0 || e >= len(encoded) {
			return nil, fmt.Errorf("rs: erasure position %d out of range [0,%d)", e, len(encoded))
		}
		b := e % blocks
		perBlockErasures[b] = append(perBlockErasures[b], e/blocks)
	}
	msg := make([]byte, 0, blocks*k)
	for b := 0; b < blocks; b++ {
		word := make([]byte, n)
		for i := 0; i < n; i++ {
			word[i] = encoded[i*blocks+b]
		}
		data, err := code.Decode(word, perBlockErasures[b])
		if err != nil {
			return nil, fmt.Errorf("rs: decode block %d: %w", b, err)
		}
		msg = append(msg, data...)
	}
	return msg[:msgLen], nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
