package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFAxioms(t *testing.T) {
	// Spot-check field axioms on a pseudorandom sample.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("mul not commutative for %d,%d", a, b)
		}
		if gfMul(a, gfMul(b, c)) != gfMul(gfMul(a, b), c) {
			t.Fatalf("mul not associative for %d,%d,%d", a, b, c)
		}
		if gfMul(a, gfAdd(b, c)) != gfAdd(gfMul(a, b), gfMul(a, c)) {
			t.Fatalf("distributivity fails for %d,%d,%d", a, b, c)
		}
		if gfMul(a, 1) != a {
			t.Fatalf("1 is not identity for %d", a)
		}
		if a != 0 && gfMul(a, gfInv(a)) != 1 {
			t.Fatalf("inverse wrong for %d", a)
		}
	}
}

func TestGFPow(t *testing.T) {
	for _, tc := range []struct {
		a    byte
		n    int
		want byte
	}{
		{2, 0, 1}, {2, 1, 2}, {2, 2, 4}, {2, 8, 0x1d}, {0, 5, 0}, {7, 1, 7},
	} {
		if got := gfPow(tc.a, tc.n); got != tc.want {
			t.Errorf("gfPow(%d,%d) = %d, want %d", tc.a, tc.n, got, tc.want)
		}
	}
	if alphaPow(-1) != gfInv(2) {
		t.Error("alphaPow(-1) != inv(α)")
	}
	if alphaPow(255) != 1 {
		t.Error("alphaPow(255) != 1")
	}
}

func TestNewCodeValidation(t *testing.T) {
	for _, tc := range []struct{ k, parity int }{
		{0, 4}, {4, 0}, {200, 100}, {-1, 4},
	} {
		if _, err := NewCode(tc.k, tc.parity); err == nil {
			t.Errorf("NewCode(%d,%d) accepted invalid parameters", tc.k, tc.parity)
		}
	}
}

func TestEncodeIsSystematicAndValid(t *testing.T) {
	code, err := NewCode(11, 8)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello world")
	cw, err := code.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cw[8:], data) {
		t.Fatal("codeword is not systematic (data must follow the 8 parity bytes)")
	}
	if !allZero(code.syndromes(cw)) {
		t.Fatal("valid codeword has nonzero syndromes")
	}
}

func TestDecodeNoErrors(t *testing.T) {
	code, _ := NewCode(20, 10)
	data := make([]byte, 20)
	for i := range data {
		data[i] = byte(i * 7)
	}
	cw, _ := code.Encode(data)
	got, err := code.Decode(cw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("clean decode mismatch")
	}
}

func TestDecodeCorrectsErrors(t *testing.T) {
	code, _ := NewCode(20, 10)
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 20)
	rng.Read(data)
	cw, _ := code.Encode(data)
	// Up to parity/2 = 5 unknown errors.
	for numErr := 1; numErr <= 5; numErr++ {
		corrupted := append([]byte(nil), cw...)
		perm := rng.Perm(len(cw))[:numErr]
		for _, p := range perm {
			corrupted[p] ^= byte(1 + rng.Intn(255))
		}
		got, err := code.Decode(corrupted, nil)
		if err != nil {
			t.Fatalf("numErr=%d: %v", numErr, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("numErr=%d: decode mismatch", numErr)
		}
	}
}

func TestDecodeCorrectsErasures(t *testing.T) {
	code, _ := NewCode(20, 10)
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 20)
	rng.Read(data)
	cw, _ := code.Encode(data)
	// Up to parity = 10 erasures.
	for numEras := 1; numEras <= 10; numEras++ {
		corrupted := append([]byte(nil), cw...)
		positions := rng.Perm(len(cw))[:numEras]
		for _, p := range positions {
			corrupted[p] = byte(rng.Intn(256))
		}
		got, err := code.Decode(corrupted, positions)
		if err != nil {
			t.Fatalf("numEras=%d: %v", numEras, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("numEras=%d: decode mismatch", numEras)
		}
	}
}

func TestDecodeMixedErrorsAndErasures(t *testing.T) {
	code, _ := NewCode(30, 12)
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 30)
	rng.Read(data)
	cw, _ := code.Encode(data)
	// 2e + f <= 12: try e=3, f=6.
	corrupted := append([]byte(nil), cw...)
	perm := rng.Perm(len(cw))
	erasures := perm[:6]
	errs := perm[6:9]
	for _, p := range erasures {
		corrupted[p] = byte(rng.Intn(256))
	}
	for _, p := range errs {
		corrupted[p] ^= byte(1 + rng.Intn(255))
	}
	got, err := code.Decode(corrupted, erasures)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mixed decode mismatch")
	}
}

func TestDecodeBeyondCapacityFails(t *testing.T) {
	code, _ := NewCode(20, 10)
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 20)
	rng.Read(data)
	cw, _ := code.Encode(data)
	failures := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		corrupted := append([]byte(nil), cw...)
		// 9 unknown errors >> capacity 5.
		for _, p := range rng.Perm(len(cw))[:9] {
			corrupted[p] ^= byte(1 + rng.Intn(255))
		}
		got, err := code.Decode(corrupted, nil)
		if err != nil {
			failures++
			continue
		}
		if bytes.Equal(got, data) {
			// Extremely unlikely fluke; count as failure of the test only
			// if it happens, which it should not for 9 errors.
			t.Fatal("decode succeeded correctly beyond capacity (unexpected)")
		}
		// Miscorrection without detection is possible for RS beyond the
		// design distance but must be rare.
	}
	if failures < trials*9/10 {
		t.Fatalf("only %d/%d overloaded words were rejected", failures, trials)
	}
}

func TestDecodeTooManyErasures(t *testing.T) {
	code, _ := NewCode(10, 4)
	cw, _ := code.Encode(make([]byte, 10))
	if _, err := code.Decode(cw, []int{0, 1, 2, 3, 4}); !errors.Is(err, ErrTooManyErrors) {
		t.Fatalf("err = %v, want ErrTooManyErrors", err)
	}
}

func TestDecodeBadLengths(t *testing.T) {
	code, _ := NewCode(10, 4)
	if _, err := code.Encode(make([]byte, 9)); !errors.Is(err, ErrBlockLength) {
		t.Fatalf("Encode err = %v, want ErrBlockLength", err)
	}
	if _, err := code.Decode(make([]byte, 13), nil); !errors.Is(err, ErrBlockLength) {
		t.Fatalf("Decode err = %v, want ErrBlockLength", err)
	}
	if _, err := code.Decode(make([]byte, 14), []int{99}); err == nil {
		t.Fatal("Decode accepted out-of-range erasure")
	}
}

func TestCodecRoundTripVariousLengths(t *testing.T) {
	codec, err := NewCodec(1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for _, msgLen := range []int{1, 5, 6, 100, 127, 128, 300, 1000} {
		msg := make([]byte, msgLen)
		rng.Read(msg)
		enc, err := codec.Encode(msg)
		if err != nil {
			t.Fatalf("len=%d: %v", msgLen, err)
		}
		if len(enc) != codec.EncodedLen(msgLen) {
			t.Fatalf("len=%d: EncodedLen=%d but Encode produced %d",
				msgLen, codec.EncodedLen(msgLen), len(enc))
		}
		got, err := codec.Decode(enc, msgLen, nil)
		if err != nil {
			t.Fatalf("len=%d: %v", msgLen, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("len=%d: round trip mismatch", msgLen)
		}
	}
}

func TestCodecToleratesMuFraction(t *testing.T) {
	// μ=1 must tolerate erasure of just under half the encoded stream,
	// even as one contiguous burst (thanks to interleaving).
	codec, _ := NewCodec(1.0)
	rng := rand.New(rand.NewSource(7))
	msg := make([]byte, 500)
	rng.Read(msg)
	enc, err := codec.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	burst := len(enc) * codec.BlockCode().Parity() / codec.BlockCode().N() // exactly the guaranteed budget
	erasures := make([]int, 0, burst)
	start := 100
	for i := 0; i < burst; i++ {
		pos := (start + i) % len(enc)
		enc[pos] ^= 0xA5
		erasures = append(erasures, pos)
	}
	got, err := codec.Decode(enc, len(msg), erasures)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("burst-erasure decode mismatch")
	}
}

func TestCodecRejectsInvalidMu(t *testing.T) {
	for _, mu := range []float64{0, -1} {
		if _, err := NewCodec(mu); err == nil {
			t.Errorf("NewCodec(%v) accepted invalid μ", mu)
		}
	}
}

func TestCodecEmptyMessage(t *testing.T) {
	codec, _ := NewCodec(1.0)
	if _, err := codec.Encode(nil); !errors.Is(err, ErrEmptyMessage) {
		t.Fatalf("err = %v, want ErrEmptyMessage", err)
	}
	if _, err := codec.Decode(nil, 0, nil); !errors.Is(err, ErrEmptyMessage) {
		t.Fatalf("err = %v, want ErrEmptyMessage", err)
	}
}

// Property: for random messages, random correctable corruption patterns
// always decode to the original message.
func TestPropertyDecodeWithinBudget(t *testing.T) {
	code, _ := NewCode(40, 16)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 40)
		rng.Read(data)
		cw, err := code.Encode(data)
		if err != nil {
			return false
		}
		// Random split of the budget: 2e + f <= 16.
		e := rng.Intn(9)          // 0..8
		f := rng.Intn(17 - 2*e)   // 0..16-2e
		perm := rng.Perm(len(cw)) // distinct positions
		corrupted := append([]byte(nil), cw...)
		for _, p := range perm[:e] {
			corrupted[p] ^= byte(1 + rng.Intn(255))
		}
		erasures := perm[e : e+f]
		for _, p := range erasures {
			corrupted[p] = byte(rng.Intn(256))
		}
		got, err := code.Decode(corrupted, erasures)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: codec round trip with random erasures up to the per-block
// guaranteed budget always succeeds.
func TestPropertyCodecErasures(t *testing.T) {
	codec, _ := NewCodec(0.5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		msg := make([]byte, 64+rng.Intn(400))
		rng.Read(msg)
		enc, err := codec.Encode(msg)
		if err != nil {
			return false
		}
		// Erase a random set of at most parity-per-block symbols from each
		// block's interleaved positions; the global guaranteed fraction.
		budget := len(enc) * codec.BlockCode().Parity() / codec.BlockCode().N()
		count := rng.Intn(budget + 1)
		// A contiguous burst stresses interleaving evenly.
		start := rng.Intn(len(enc))
		erasures := make([]int, count)
		for i := range erasures {
			pos := (start + i) % len(enc)
			erasures[i] = pos
			enc[pos] ^= byte(1 + rng.Intn(255))
		}
		got, err := codec.Decode(enc, len(msg), erasures)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
