// Package baseline implements the alternative schemes the paper argues
// against (§I intuition and §II related work), so that the comparisons
// become measurable experiments rather than prose:
//
//   - CommonCode: every node shares one network-wide secret spread code.
//     Perfect until the first node compromise, then the jammer owns the
//     whole network — the "single point of failure" of §I.
//   - PairwiseCode: every pair shares a unique secret code. Immune to
//     other nodes' compromise, but two nodes that have not yet discovered
//     each other do not know which code to use — the circular dependency
//     of §I: under jamming the scheme cannot bootstrap at all.
//   - PublicCodeSet: the DSSS broadcast schemes of refs [7]–[10], built on
//     a publicly known spread-code set. Jamming-resilient against an
//     outsider with bounded emitters, but the public codes let the
//     adversary inject unlimited forged neighbor-discovery requests — the
//     DoS attack of §V-D, unbounded here.
//   - UFH: uncoordinated frequency hopping key establishment (Strasser et
//     al., ref [3]): no pre-shared secret, but establishment needs many
//     lucky sender/receiver channel coincidences, so it is far too slow
//     for the "a few seconds" encounter budget of mobile MANETs (§I).
package baseline

import (
	"fmt"
	"math"
	"math/rand"
)

// CommonCode models the single-shared-code scheme.
type CommonCode struct{}

// DiscoveryProbability returns the probability two physical neighbors
// discover each other under reactive jamming with q compromised nodes:
// the code stays secret only while q = 0.
func (CommonCode) DiscoveryProbability(q int) float64 {
	if q == 0 {
		return 1
	}
	return 0
}

// Name identifies the scheme in experiment output.
func (CommonCode) Name() string { return "common-code" }

// PairwiseCode models the unique-code-per-pair scheme.
type PairwiseCode struct{}

// DiscoveryProbability returns the discovery probability under jamming:
// without a prior discovery the endpoints cannot agree on which code to
// use, so anti-jamming bootstrap is impossible (the §I circular
// dependency). Without jamming the scheme works fine.
func (PairwiseCode) DiscoveryProbability(jammed bool) float64 {
	if jammed {
		return 0
	}
	return 1
}

// Name identifies the scheme.
func (PairwiseCode) Name() string { return "pairwise-code" }

// PublicCodeSet models the DSSS broadcast schemes of refs [7]–[10]: each
// message is spread with a code drawn uniformly from a public pool of
// PoolSize codes; the jammer (who also knows the pool) can jam
// ⌊Z(1+μ)/μ⌋ codes per message.
type PublicCodeSet struct {
	PoolSize int
	Z        int
	Mu       float64
	// Retries is the number of times a discovery execution may be
	// re-attempted within the encounter window.
	Retries int
}

// Validate checks parameters.
func (s PublicCodeSet) Validate() error {
	if s.PoolSize < 1 {
		return fmt.Errorf("baseline: pool size %d must be >= 1", s.PoolSize)
	}
	if s.Z < 0 {
		return fmt.Errorf("baseline: z=%d must be >= 0", s.Z)
	}
	if s.Mu <= 0 {
		return fmt.Errorf("baseline: μ=%v must be positive", s.Mu)
	}
	if s.Retries < 1 {
		return fmt.Errorf("baseline: retries %d must be >= 1", s.Retries)
	}
	return nil
}

// MessageSurvival returns the probability one message escapes jamming:
// 1 − min(1, tries/pool).
func (s PublicCodeSet) MessageSurvival() float64 {
	tries := float64(s.Z) * (1 + s.Mu) / s.Mu
	frac := tries / float64(s.PoolSize)
	if frac > 1 {
		frac = 1
	}
	return 1 - frac
}

// DiscoveryProbability returns the probability a four-message discovery
// handshake completes within the retry budget.
func (s PublicCodeSet) DiscoveryProbability() float64 {
	perTry := math.Pow(s.MessageSurvival(), 4)
	return 1 - math.Pow(1-perTry, float64(s.Retries))
}

// DoSVerificationsBound returns the §V-D comparison: the number of forced
// verifications an adversary can extract per victim. With public codes
// every injection is de-spreadable by every victim, so the bound is
// infinite (represented as +Inf); JR-SND caps it at (l−1)·(γ+1) per
// compromised code.
func (s PublicCodeSet) DoSVerificationsBound() float64 { return math.Inf(1) }

// Name identifies the scheme.
func (s PublicCodeSet) Name() string { return "public-code-set" }

// UFH models uncoordinated-frequency-hopping key establishment (ref [3]):
// sender and receiver hop independently over Channels; a fragment
// transfers in a slot when they coincide on an unjammed channel, and the
// key exchange completes after Fragments successful transfers.
type UFH struct {
	Channels       int
	JammedChannels int     // channels the jammer blocks per slot
	Fragments      int     // fragments per key-establishment message
	SlotTime       float64 // seconds per hop slot
}

// Validate checks parameters.
func (u UFH) Validate() error {
	if u.Channels < 1 {
		return fmt.Errorf("baseline: channels %d must be >= 1", u.Channels)
	}
	if u.JammedChannels < 0 || u.JammedChannels >= u.Channels {
		return fmt.Errorf("baseline: jammed channels %d must be in [0, channels)", u.JammedChannels)
	}
	if u.Fragments < 1 {
		return fmt.Errorf("baseline: fragments %d must be >= 1", u.Fragments)
	}
	if u.SlotTime <= 0 {
		return fmt.Errorf("baseline: slot time %v must be positive", u.SlotTime)
	}
	return nil
}

// SlotSuccess returns the per-slot fragment-transfer probability:
// coincidence (1/c) on an unjammed channel ((c−z)/c).
func (u UFH) SlotSuccess() float64 {
	c := float64(u.Channels)
	return (1 / c) * ((c - float64(u.JammedChannels)) / c)
}

// ExpectedEstablishmentTime returns the expected time to transfer all
// fragments: Fragments/p slots (negative-binomial mean).
func (u UFH) ExpectedEstablishmentTime() float64 {
	return float64(u.Fragments) / u.SlotSuccess() * u.SlotTime
}

// SimulateEstablishment draws one establishment-time sample.
func (u UFH) SimulateEstablishment(rng *rand.Rand) float64 {
	p := u.SlotSuccess()
	slots := 0
	for got := 0; got < u.Fragments; {
		slots++
		if rng.Float64() < p {
			got++
		}
	}
	return float64(slots) * u.SlotTime
}

// Name identifies the scheme.
func (u UFH) Name() string { return "ufh" }

// DefaultUFH returns parameters in the regime of ref [3]: 200 channels,
// a key-establishment message split into 60 fragments, ~1 ms hop slots,
// and a jammer blocking 10 channels.
func DefaultUFH() UFH {
	return UFH{Channels: 200, JammedChannels: 10, Fragments: 60, SlotTime: 1e-3}
}
