package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCommonCodeSinglePointOfFailure(t *testing.T) {
	var s CommonCode
	if s.DiscoveryProbability(0) != 1 {
		t.Fatal("uncompromised common code must work")
	}
	for _, q := range []int{1, 5, 100} {
		if s.DiscoveryProbability(q) != 0 {
			t.Fatalf("q=%d: common code must fail after any compromise", q)
		}
	}
	if s.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestPairwiseCodeCircularDependency(t *testing.T) {
	var s PairwiseCode
	if s.DiscoveryProbability(false) != 1 {
		t.Fatal("pairwise codes must work without jamming")
	}
	if s.DiscoveryProbability(true) != 0 {
		t.Fatal("pairwise codes cannot bootstrap under jamming")
	}
}

func TestPublicCodeSetValidation(t *testing.T) {
	bad := []PublicCodeSet{
		{PoolSize: 0, Z: 1, Mu: 1, Retries: 1},
		{PoolSize: 10, Z: -1, Mu: 1, Retries: 1},
		{PoolSize: 10, Z: 1, Mu: 0, Retries: 1},
		{PoolSize: 10, Z: 1, Mu: 1, Retries: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	good := PublicCodeSet{PoolSize: 64, Z: 4, Mu: 1, Retries: 3}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicCodeSetSurvival(t *testing.T) {
	s := PublicCodeSet{PoolSize: 100, Z: 10, Mu: 1, Retries: 1}
	// tries = 20 → survival 0.8.
	if got := s.MessageSurvival(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("survival = %v, want 0.8", got)
	}
	// Saturated jammer.
	sat := PublicCodeSet{PoolSize: 10, Z: 10, Mu: 1, Retries: 1}
	if sat.MessageSurvival() != 0 {
		t.Fatal("saturated jammer must kill every message")
	}
	// Discovery with retries is monotone in retries.
	prev := 0.0
	for r := 1; r <= 5; r++ {
		s.Retries = r
		cur := s.DiscoveryProbability()
		if cur <= prev || cur > 1 {
			t.Fatalf("retries=%d: discovery %v not increasing in (0,1]", r, cur)
		}
		prev = cur
	}
	if !math.IsInf(s.DoSVerificationsBound(), 1) {
		t.Fatal("public code set must have an unbounded DoS verification load")
	}
}

func TestUFHValidation(t *testing.T) {
	bad := []UFH{
		{Channels: 0, Fragments: 1, SlotTime: 1},
		{Channels: 10, JammedChannels: -1, Fragments: 1, SlotTime: 1},
		{Channels: 10, JammedChannels: 10, Fragments: 1, SlotTime: 1},
		{Channels: 10, Fragments: 0, SlotTime: 1},
		{Channels: 10, Fragments: 1, SlotTime: 0},
	}
	for i, u := range bad {
		if err := u.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultUFH().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUFHSlotSuccess(t *testing.T) {
	u := UFH{Channels: 100, JammedChannels: 20, Fragments: 1, SlotTime: 1}
	// (1/100)·(80/100) = 0.008.
	if got := u.SlotSuccess(); math.Abs(got-0.008) > 1e-12 {
		t.Fatalf("slot success = %v, want 0.008", got)
	}
}

func TestUFHExpectedTimeMatchesSimulation(t *testing.T) {
	u := DefaultUFH()
	want := u.ExpectedEstablishmentTime()
	rng := rand.New(rand.NewSource(1))
	const samples = 400
	var sum float64
	for i := 0; i < samples; i++ {
		sum += u.SimulateEstablishment(rng)
	}
	got := sum / samples
	if math.Abs(got-want) > 0.1*want {
		t.Fatalf("simulated mean %v, analytic %v", got, want)
	}
}

func TestUFHIsSlowerThanDNDP(t *testing.T) {
	// The paper's core latency claim: JR-SND discovers in under 2 s at the
	// defaults while UFH-style establishment takes far longer.
	u := DefaultUFH()
	if u.ExpectedEstablishmentTime() < 5 {
		t.Fatalf("UFH expected time %v s suspiciously fast; check parameters",
			u.ExpectedEstablishmentTime())
	}
}

// Property: UFH expected time decreases with more channels jammed? No —
// it increases with jamming and decreases with channel coincidence; check
// monotonicity in both directions.
func TestPropertyUFHMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 20 + rng.Intn(400)
		z := rng.Intn(c / 2)
		u := UFH{Channels: c, JammedChannels: z, Fragments: 10, SlotTime: 1e-3}
		if u.Validate() != nil {
			return false
		}
		// More jamming → slower.
		worse := u
		worse.JammedChannels = z + c/4
		if worse.Validate() == nil &&
			worse.ExpectedEstablishmentTime() < u.ExpectedEstablishmentTime() {
			return false
		}
		// More fragments → slower.
		bigger := u
		bigger.Fragments = 20
		return bigger.ExpectedEstablishmentTime() > u.ExpectedEstablishmentTime()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
