package ibc

import (
	"crypto/ed25519"
	"errors"
	"fmt"
)

// Signature is an ID-verifiable signature: anyone holding the authority's
// root public key can verify it against the claimed signer ID alone,
// mirroring the paper's "verify SIG_{K_A^{-1}} using ID_A as the public
// key". It carries the signer's certified verification key so that no
// per-node key distribution is needed.
type Signature struct {
	SignerID NodeID
	PubKey   []byte // signer's ed25519 public key
	Cert     []byte // authority signature over (SignerID, PubKey)
	Sig      []byte // signature over the message
}

// ErrBadSignature is returned when signature verification fails for any
// reason (wrong message, forged certificate, ID mismatch).
var ErrBadSignature = errors.New("ibc: signature verification failed")

// SigBits is the paper's signature length l_sig in bits (Table I). Our
// concrete encoding differs, but protocol message sizes are computed from
// the paper's constant so that latency results match.
const SigBits = 672

// Sign signs msg with the node's certified key.
func (k *PrivateKey) Sign(msg []byte) Signature {
	pub := k.signKey.Public().(ed25519.PublicKey)
	return Signature{
		SignerID: k.id,
		PubKey:   append([]byte(nil), pub...),
		Cert:     append([]byte(nil), k.cert...),
		Sig:      ed25519.Sign(k.signKey, msg),
	}
}

// Verify checks sig over msg against the claimed signer ID, using only the
// authority root public key.
func Verify(rootPub ed25519.PublicKey, claimedSigner NodeID, msg []byte, sig Signature) error {
	if sig.SignerID != claimedSigner {
		return fmt.Errorf("%w: signer ID %d does not match claimed %d", ErrBadSignature, sig.SignerID, claimedSigner)
	}
	if len(sig.PubKey) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: bad public key length %d", ErrBadSignature, len(sig.PubKey))
	}
	if !ed25519.Verify(rootPub, certPayload(claimedSigner, ed25519.PublicKey(sig.PubKey)), sig.Cert) {
		return fmt.Errorf("%w: certificate does not bind ID %d to the key", ErrBadSignature, claimedSigner)
	}
	if !ed25519.Verify(ed25519.PublicKey(sig.PubKey), msg, sig.Sig) {
		return fmt.Errorf("%w: message signature invalid for ID %d", ErrBadSignature, claimedSigner)
	}
	return nil
}
