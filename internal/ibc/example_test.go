package ibc_test

import (
	"fmt"
	"math/rand"

	"repro/internal/ibc"
)

// Non-interactive pairwise keys: each node derives K_AB from its own
// private key and the peer's ID alone — no message exchange needed.
func ExamplePrivateKey_SharedKey() {
	auth, _ := ibc.NewAuthority(ibc.AuthorityConfig{Rand: rand.New(rand.NewSource(1))})
	alice, _ := auth.Issue(10, rand.New(rand.NewSource(2)))
	bob, _ := auth.Issue(20, rand.New(rand.NewSource(3)))

	kAB := alice.SharedKey(20)
	kBA := bob.SharedKey(10)
	fmt.Println("keys agree:", kAB == kBA)
	// Output: keys agree: true
}

// ID-verifiable signatures: verification needs only the authority's root
// key and the claimed signer ID.
func ExampleVerify() {
	auth, _ := ibc.NewAuthority(ibc.AuthorityConfig{Rand: rand.New(rand.NewSource(1))})
	alice, _ := auth.Issue(10, rand.New(rand.NewSource(2)))

	sig := alice.Sign([]byte("m-ndp request"))
	err := ibc.Verify(auth.RootPublicKey(), 10, []byte("m-ndp request"), sig)
	forged := ibc.Verify(auth.RootPublicKey(), 11, []byte("m-ndp request"), sig)
	fmt.Printf("genuine=%v forged rejected=%v\n", err == nil, forged != nil)
	// Output: genuine=true forged rejected=true
}

// Both endpoints derive the same session spread code from the pairwise key
// and the exchanged nonces.
func ExampleSessionCode() {
	auth, _ := ibc.NewAuthority(ibc.AuthorityConfig{Rand: rand.New(rand.NewSource(1))})
	alice, _ := auth.Issue(10, rand.New(rand.NewSource(2)))
	bob, _ := auth.Issue(20, rand.New(rand.NewSource(3)))

	nA, nB := []byte{1, 2, 3}, []byte{4, 5, 6}
	cAB, _ := ibc.SessionCode(alice.SharedKey(20), nA, nB, 512)
	cBA, _ := ibc.SessionCode(bob.SharedKey(10), nB, nA, 512)
	fmt.Println("session codes agree:", cAB.Equal(cBA))
	// Output: session codes agree: true
}
