// Package ibc provides the identity-based cryptography substrate of
// JR-SND. The paper (§IV-A, refs [13][14]) assumes pairing-based
// certificateless keys; this package substitutes primitives with the same
// interface properties (see DESIGN.md §4):
//
//   - Non-interactive pairwise keys: node A computes K_AB from its private
//     key and ID_B; node B computes K_BA from its private key and ID_A;
//     K_AB = K_BA and no third party (below the collusion threshold) can
//     compute it. Implemented with Blom's symmetric-matrix scheme over the
//     Mersenne prime field F_{2^61-1}.
//   - ID-bound signatures: verification takes only the authority's public
//     key and the signer's ID, matching the paper's "verify SIG using ID_A
//     as the public key". Implemented as Ed25519 keys certified by the
//     authority (sig.go).
//   - Session spread-code derivation C_AB = h_{K_AB}(n_A ⊗ n_B) (session.go).
//
// Wall-clock costs of the pairing operations (t_key, t_sig, t_ver from
// Table I) are charged to the simulation's virtual clock by the protocol
// layer, so latency results are unaffected by the substitution.
package ibc

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/bits"
)

// NodeID identifies a MANET node. The paper uses l_id = 16-bit IDs
// (Table I).
type NodeID uint16

// blomPrime is the Mersenne prime 2^61 - 1.
const blomPrime uint64 = (1 << 61) - 1

// mulMod returns a*b mod 2^61-1 for a, b < 2^61.
func mulMod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi·2^64 + lo; 2^64 ≡ 2^3 (mod 2^61-1).
	r := (hi<<3 | lo>>61) + (lo & blomPrime)
	if r >= blomPrime {
		r -= blomPrime
	}
	// hi < 2^58 so hi<<3 < 2^61 and one extra fold suffices.
	r = (r >> 61) + (r & blomPrime)
	if r >= blomPrime {
		r -= blomPrime
	}
	return r
}

// addMod returns a+b mod 2^61-1 for a, b < 2^61-1.
func addMod(a, b uint64) uint64 {
	r := a + b
	if r >= blomPrime {
		r -= blomPrime
	}
	return r
}

// blomScheme holds the authority's secret symmetric matrix D of size
// (t+1)×(t+1); any coalition of at most t compromised nodes learns nothing
// about keys between non-compromised nodes.
type blomScheme struct {
	t int
	d [][]uint64 // symmetric
}

func newBlomScheme(t int, randUint64 func() uint64) (*blomScheme, error) {
	if t < 1 {
		return nil, fmt.Errorf("ibc: collusion threshold t=%d must be >= 1", t)
	}
	d := make([][]uint64, t+1)
	for i := range d {
		d[i] = make([]uint64, t+1)
	}
	for i := 0; i <= t; i++ {
		for j := i; j <= t; j++ {
			v := randUint64() & blomPrime
			if v == blomPrime {
				v = 0
			}
			d[i][j] = v
			d[j][i] = v
		}
	}
	return &blomScheme{t: t, d: d}, nil
}

// idPoint maps a node ID to its public evaluation point s in F_p. The map
// must be injective on the ID space; hashing a 16-bit ID into a 61-bit
// field makes collisions impossible in practice, and we mix the raw ID into
// the low bits to guarantee injectivity outright.
func idPoint(id NodeID) uint64 {
	var buf [2]byte
	binary.BigEndian.PutUint16(buf[:], uint16(id))
	h := sha256.Sum256(append([]byte("jrsnd-blom-point"), buf[:]...))
	s := binary.BigEndian.Uint64(h[:8]) & blomPrime
	// Force injectivity: replace the low 16 bits with the ID itself.
	s = (s &^ 0xffff) | uint64(id)
	if s >= blomPrime {
		s -= 1 << 16
	}
	if s == 0 {
		s = 1 // the Vandermonde point must be nonzero
	}
	return s
}

// publicVector returns g(ID) = (1, s, s^2, …, s^t).
func (b *blomScheme) publicVector(id NodeID) []uint64 {
	g := make([]uint64, b.t+1)
	s := idPoint(id)
	g[0] = 1
	for i := 1; i <= b.t; i++ {
		g[i] = mulMod(g[i-1], s)
	}
	return g
}

// privateRow returns the node's Blom private key D·g(ID).
func (b *blomScheme) privateRow(id NodeID) []uint64 {
	g := b.publicVector(id)
	row := make([]uint64, b.t+1)
	for i := 0; i <= b.t; i++ {
		var acc uint64
		for j := 0; j <= b.t; j++ {
			acc = addMod(acc, mulMod(b.d[i][j], g[j]))
		}
		row[i] = acc
	}
	return row
}

// sharedScalar evaluates g(A)ᵀ·D·g(B) from A's private row and B's ID.
func sharedScalar(privateRow []uint64, peer NodeID, t int) uint64 {
	s := idPoint(peer)
	var acc uint64
	pow := uint64(1)
	for i := 0; i <= t; i++ {
		acc = addMod(acc, mulMod(privateRow[i], pow))
		pow = mulMod(pow, s)
	}
	return acc
}

// kdf expands the shared Blom scalar into a 32-byte symmetric key bound to
// the (unordered) pair of IDs.
func kdf(scalar uint64, a, b NodeID) [32]byte {
	if a > b {
		a, b = b, a
	}
	mac := hmac.New(sha256.New, []byte("jrsnd-pairwise-key"))
	var buf [12]byte
	binary.BigEndian.PutUint64(buf[:8], scalar)
	binary.BigEndian.PutUint16(buf[8:10], uint16(a))
	binary.BigEndian.PutUint16(buf[10:12], uint16(b))
	mac.Write(buf[:])
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}
