package ibc

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"math/rand"
)

// Authority is the single MANET authority of the paper's network model. It
// owns the Blom master matrix and the signature root key and issues each
// node a PrivateKey before deployment.
type Authority struct {
	blom    *blomScheme
	rootPub ed25519.PublicKey
	rootKey ed25519.PrivateKey
	issued  map[NodeID]bool
}

// AuthorityConfig tunes authority creation.
type AuthorityConfig struct {
	// CollusionThreshold is the Blom parameter t: keys between
	// non-compromised nodes stay secret as long as at most t nodes are
	// compromised. The default (0) means 64.
	CollusionThreshold int
	// Rand supplies deterministic randomness for reproducible simulations.
	// It must be non-nil.
	Rand *rand.Rand
}

// NewAuthority creates the MANET authority.
func NewAuthority(cfg AuthorityConfig) (*Authority, error) {
	if cfg.Rand == nil {
		return nil, fmt.Errorf("ibc: AuthorityConfig.Rand must be set for reproducibility")
	}
	t := cfg.CollusionThreshold
	if t == 0 {
		t = 64
	}
	blom, err := newBlomScheme(t, cfg.Rand.Uint64)
	if err != nil {
		return nil, err
	}
	seed := make([]byte, ed25519.SeedSize)
	fillRand(cfg.Rand, seed)
	rootKey := ed25519.NewKeyFromSeed(seed)
	return &Authority{
		blom:    blom,
		rootKey: rootKey,
		rootPub: rootKey.Public().(ed25519.PublicKey),
		issued:  map[NodeID]bool{},
	}, nil
}

// RootPublicKey returns the authority's signature-verification key, which
// is preloaded into every node (it plays the role of the IBC public system
// parameters).
func (a *Authority) RootPublicKey() ed25519.PublicKey {
	out := make(ed25519.PublicKey, len(a.rootPub))
	copy(out, a.rootPub)
	return out
}

// PrivateKey is the ID-based private key K_A^{-1} issued to node A: the
// Blom private row (for non-interactive pairwise keys) plus a certified
// signing key (for ID-verifiable signatures).
type PrivateKey struct {
	id      NodeID
	t       int
	blomRow []uint64
	signKey ed25519.PrivateKey
	cert    []byte // authority signature over (id, signing public key)
	rootPub ed25519.PublicKey
}

// Issue generates the ID-based private key for id. Each ID may be issued at
// most once (re-issuing would model key escrow abuse, which the single
// authority does not do).
func (a *Authority) Issue(id NodeID, rng *rand.Rand) (*PrivateKey, error) {
	if rng == nil {
		return nil, fmt.Errorf("ibc: rng must be set")
	}
	if a.issued[id] {
		return nil, fmt.Errorf("ibc: private key for node %d already issued", id)
	}
	seed := make([]byte, ed25519.SeedSize)
	fillRand(rng, seed)
	signKey := ed25519.NewKeyFromSeed(seed)
	cert := ed25519.Sign(a.rootKey, certPayload(id, signKey.Public().(ed25519.PublicKey)))
	a.issued[id] = true
	return &PrivateKey{
		id:      id,
		t:       a.blom.t,
		blomRow: a.blom.privateRow(id),
		signKey: signKey,
		cert:    cert,
		rootPub: a.rootPub,
	}, nil
}

// ID returns the node ID the key was issued for.
func (k *PrivateKey) ID() NodeID { return k.id }

// SharedKey computes the pairwise key K_AB with peer non-interactively.
// SharedKey is symmetric: a.SharedKey(b.ID()) == b.SharedKey(a.ID()).
func (k *PrivateKey) SharedKey(peer NodeID) [32]byte {
	return kdf(sharedScalar(k.blomRow, peer, k.t), k.id, peer)
}

func certPayload(id NodeID, pub ed25519.PublicKey) []byte {
	buf := make([]byte, 2+len(pub))
	binary.BigEndian.PutUint16(buf[:2], uint16(id))
	copy(buf[2:], pub)
	return buf
}

func fillRand(rng *rand.Rand, buf []byte) {
	for i := 0; i < len(buf); i += 8 {
		var w [8]byte
		binary.BigEndian.PutUint64(w[:], rng.Uint64())
		copy(buf[i:], w[:])
	}
}
