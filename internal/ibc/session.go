package ibc

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"

	"repro/internal/chips"
)

// MAC computes the message authentication code f_K(·) of §V-B using
// HMAC-SHA256, truncated to macLen bytes (the paper uses l_mac = 160 bits
// = 20 bytes).
func MAC(key [32]byte, macLen int, parts ...[]byte) []byte {
	m := hmac.New(sha256.New, key[:])
	for _, p := range parts {
		m.Write(p)
	}
	sum := m.Sum(nil)
	if macLen <= 0 || macLen > len(sum) {
		macLen = len(sum)
	}
	return sum[:macLen]
}

// VerifyMAC checks a MAC in constant time.
func VerifyMAC(key [32]byte, mac []byte, parts ...[]byte) bool {
	return hmac.Equal(mac, MAC(key, len(mac), parts...))
}

// SessionCode derives the session spread code C_AB = h_{K_AB}(n_A ⊗ n_B) of
// §V-B: an N-chip sequence keyed by the pairwise key and the XOR of the two
// nonces, so both endpoints derive the same code regardless of role.
func SessionCode(key [32]byte, nonceA, nonceB []byte, n int) (chips.Sequence, error) {
	if len(nonceA) != len(nonceB) {
		return chips.Sequence{}, fmt.Errorf("ibc: nonce lengths differ (%d vs %d)", len(nonceA), len(nonceB))
	}
	x := make([]byte, len(nonceA))
	for i := range x {
		x[i] = nonceA[i] ^ nonceB[i]
	}
	m := hmac.New(sha256.New, key[:])
	m.Write([]byte("jrsnd-session-code"))
	m.Write(x)
	return chips.Derive(m.Sum(nil), n), nil
}
