package ibc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestAuthority(t *testing.T, seed int64) *Authority {
	t.Helper()
	a, err := NewAuthority(AuthorityConfig{CollusionThreshold: 8, Rand: rand.New(rand.NewSource(seed))})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func issue(t *testing.T, a *Authority, id NodeID, seed int64) *PrivateKey {
	t.Helper()
	k, err := a.Issue(id, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestMulModAgainstBigArithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a := rng.Uint64() & blomPrime
		b := rng.Uint64() & blomPrime
		if a == blomPrime {
			a = 0
		}
		if b == blomPrime {
			b = 0
		}
		// Reference via 128-bit decomposition using smaller chunks.
		want := refMulMod(a, b)
		if got := mulMod(a, b); got != want {
			t.Fatalf("mulMod(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

// refMulMod computes a*b mod 2^61-1 by splitting a into 31-bit halves.
func refMulMod(a, b uint64) uint64 {
	const p = blomPrime
	lo := a & ((1 << 31) - 1)
	hi := a >> 31
	// a*b = hi*2^31*b + lo*b; compute each term mod p with 64-bit safety by
	// iterated doubling of small pieces.
	res := mulSmall(hi, b)
	for i := 0; i < 31; i++ {
		res = (res * 2) % p
	}
	return (res + mulSmall(lo, b)) % p
}

// mulSmall multiplies a (< 2^31) by b (< 2^61) mod p using schoolbook
// splitting of b.
func mulSmall(a, b uint64) uint64 {
	const p = blomPrime
	bLo := b & ((1 << 31) - 1)
	bHi := b >> 31
	res := (a * bHi) % p
	for i := 0; i < 31; i++ {
		res = (res * 2) % p
	}
	return (res + (a*bLo)%p) % p
}

func TestSharedKeySymmetry(t *testing.T) {
	auth := newTestAuthority(t, 42)
	keys := make([]*PrivateKey, 10)
	for i := range keys {
		keys[i] = issue(t, auth, NodeID(i), int64(100+i))
	}
	for i := range keys {
		for j := range keys {
			if i == j {
				continue
			}
			kij := keys[i].SharedKey(NodeID(j))
			kji := keys[j].SharedKey(NodeID(i))
			if kij != kji {
				t.Fatalf("K_%d%d != K_%d%d", i, j, j, i)
			}
		}
	}
}

func TestSharedKeysDistinctAcrossPairs(t *testing.T) {
	auth := newTestAuthority(t, 43)
	a := issue(t, auth, 1, 1)
	b := issue(t, auth, 2, 2)
	c := issue(t, auth, 3, 3)
	kab := a.SharedKey(2)
	kac := a.SharedKey(3)
	kbc := b.SharedKey(3)
	if kab == kac || kab == kbc || kac == kbc {
		t.Fatal("pairwise keys collide across distinct pairs")
	}
	// A third party's key with either endpoint differs from K_AB.
	if c.SharedKey(1) == kab || c.SharedKey(2) == kab {
		t.Fatal("outsider derived the pair key")
	}
}

func TestIssueRejectsDuplicateID(t *testing.T) {
	auth := newTestAuthority(t, 44)
	issue(t, auth, 7, 1)
	if _, err := auth.Issue(7, rand.New(rand.NewSource(2))); err == nil {
		t.Fatal("duplicate issue accepted")
	}
}

func TestAuthorityRequiresRand(t *testing.T) {
	if _, err := NewAuthority(AuthorityConfig{}); err == nil {
		t.Fatal("NewAuthority accepted nil Rand")
	}
	auth := newTestAuthority(t, 45)
	if _, err := auth.Issue(1, nil); err == nil {
		t.Fatal("Issue accepted nil rng")
	}
}

func TestIDPointInjectiveOnSample(t *testing.T) {
	seen := make(map[uint64]NodeID, 1<<16)
	for id := 0; id < 1<<16; id++ {
		p := idPoint(NodeID(id))
		if p == 0 || p >= blomPrime {
			t.Fatalf("idPoint(%d) = %d out of field range", id, p)
		}
		if prev, ok := seen[p]; ok {
			t.Fatalf("idPoint collision: %d and %d → %d", prev, id, p)
		}
		seen[p] = NodeID(id)
	}
}

func TestSignVerify(t *testing.T) {
	auth := newTestAuthority(t, 46)
	a := issue(t, auth, 10, 1)
	msg := []byte("m-ndp request payload")
	sig := a.Sign(msg)
	if err := Verify(auth.RootPublicKey(), 10, msg, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	auth := newTestAuthority(t, 47)
	a := issue(t, auth, 10, 1)
	b := issue(t, auth, 11, 2)
	msg := []byte("payload")
	sig := a.Sign(msg)

	if err := Verify(auth.RootPublicKey(), 10, []byte("other payload"), sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("modified message: err = %v, want ErrBadSignature", err)
	}
	if err := Verify(auth.RootPublicKey(), 11, msg, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong claimed ID: err = %v, want ErrBadSignature", err)
	}
	// Signature swapped onto another identity's cert.
	forged := sig
	forged.SignerID = 11
	forged.Cert = b.Sign(msg).Cert
	if err := Verify(auth.RootPublicKey(), 11, msg, forged); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("spliced cert: err = %v, want ErrBadSignature", err)
	}
	// Self-signed cert (attacker without the authority key).
	rogue := sig
	rogue.Cert = append([]byte(nil), sig.Sig...)
	if err := Verify(auth.RootPublicKey(), 10, msg, rogue); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("rogue cert: err = %v, want ErrBadSignature", err)
	}
	// Truncated public key.
	short := sig
	short.PubKey = sig.PubKey[:5]
	if err := Verify(auth.RootPublicKey(), 10, msg, short); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("short pubkey: err = %v, want ErrBadSignature", err)
	}
}

func TestVerifyRejectsForeignAuthority(t *testing.T) {
	auth1 := newTestAuthority(t, 48)
	auth2 := newTestAuthority(t, 49)
	a := issue(t, auth1, 10, 1)
	sig := a.Sign([]byte("msg"))
	if err := Verify(auth2.RootPublicKey(), 10, []byte("msg"), sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("foreign authority: err = %v, want ErrBadSignature", err)
	}
}

func TestMACRoundTrip(t *testing.T) {
	var key [32]byte
	key[0] = 1
	mac := MAC(key, 20, []byte("idA"), []byte("nonce"))
	if len(mac) != 20 {
		t.Fatalf("MAC length = %d, want 20", len(mac))
	}
	if !VerifyMAC(key, mac, []byte("idA"), []byte("nonce")) {
		t.Fatal("valid MAC rejected")
	}
	if VerifyMAC(key, mac, []byte("idA"), []byte("other")) {
		t.Fatal("wrong-message MAC accepted")
	}
	var otherKey [32]byte
	otherKey[0] = 2
	if VerifyMAC(otherKey, mac, []byte("idA"), []byte("nonce")) {
		t.Fatal("wrong-key MAC accepted")
	}
}

func TestSessionCodeSymmetricInNonces(t *testing.T) {
	var key [32]byte
	key[5] = 9
	nA := []byte{1, 2, 3}
	nB := []byte{9, 8, 7}
	c1, err := SessionCode(key, nA, nB, 512)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := SessionCode(key, nB, nA, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !c1.Equal(c2) {
		t.Fatal("session code not symmetric in nonce order")
	}
	if c1.Len() != 512 {
		t.Fatalf("Len = %d, want 512", c1.Len())
	}
	// Different nonces give different codes.
	c3, err := SessionCode(key, []byte{1, 2, 4}, nB, 512)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Equal(c3) {
		t.Fatal("distinct nonces yielded the same session code")
	}
	if _, err := SessionCode(key, nA, []byte{1}, 512); err == nil {
		t.Fatal("mismatched nonce lengths accepted")
	}
}

func TestSessionCodeEndToEnd(t *testing.T) {
	// The full §V-B flow: both ends derive the pairwise key from their own
	// private key and the peer ID, then the same session code.
	auth := newTestAuthority(t, 50)
	a := issue(t, auth, 100, 1)
	b := issue(t, auth, 200, 2)
	nA := []byte{0xde, 0xad}
	nB := []byte{0xbe, 0xef}
	cA, err := SessionCode(a.SharedKey(200), nA, nB, 512)
	if err != nil {
		t.Fatal(err)
	}
	cB, err := SessionCode(b.SharedKey(100), nB, nA, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !cA.Equal(cB) {
		t.Fatal("endpoints derived different session codes")
	}
}

// Property: shared-key symmetry holds for arbitrary ID pairs.
func TestPropertySharedKeySymmetry(t *testing.T) {
	auth := newTestAuthority(t, 51)
	issued := map[NodeID]*PrivateKey{}
	get := func(id NodeID) *PrivateKey {
		if k, ok := issued[id]; ok {
			return k
		}
		k, err := auth.Issue(id, rand.New(rand.NewSource(int64(id)+1)))
		if err != nil {
			t.Fatal(err)
		}
		issued[id] = k
		return k
	}
	f := func(x, y uint16) bool {
		if x == y {
			return true
		}
		a, b := get(NodeID(x)), get(NodeID(y))
		return a.SharedKey(NodeID(y)) == b.SharedKey(NodeID(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
