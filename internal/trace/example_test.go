package trace_test

import (
	"fmt"

	"repro/internal/trace"
)

// A recorder collects typed protocol events; nil recorders are valid
// no-op sinks so emit sites need no guards.
func ExampleRecorder() {
	rec, _ := trace.NewRecorder(16)
	rec.Emit(trace.Event{At: 0.1, Kind: trace.KindTx, Node: 0, Peer: -1, Detail: "HELLO code=3"})
	rec.Emit(trace.Event{At: 0.2, Kind: trace.KindJammed, Node: 0, Peer: -1, Detail: "HELLO code=7"})
	rec.Emit(trace.Event{At: 0.3, Kind: trace.KindDiscovery, Node: 1, Peer: 0, Detail: "via D-NDP"})

	fmt.Println("events:", rec.Len())
	fmt.Println("jammed HELLOs:", len(rec.Filter(trace.KindJammed, -1, "HELLO")))
	var nilRec *trace.Recorder
	nilRec.Emit(trace.Event{}) // no-op
	fmt.Println("nil recorder len:", nilRec.Len())
	// Output:
	// events: 3
	// jammed HELLOs: 1
	// nil recorder len: 0
}
