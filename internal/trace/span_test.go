package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestTracerEmitsPairedEvents(t *testing.T) {
	rec, err := NewRecorder(16)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(rec)
	root := tr.Start(1.0, 0, 3, -1, "dndp.attempt")
	child := tr.Start(1.5, root, 3, 5, "dndp.hello_sweep")
	tr.End(2.0, child, 3, 5, "swept")
	tr.End(4.0, root, 3, -1, "discovered")

	evs := rec.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if evs[0].Kind != KindSpanStart || evs[0].Span != root || evs[0].Parent != 0 {
		t.Fatalf("root start malformed: %+v", evs[0])
	}
	if evs[1].Parent != root {
		t.Fatalf("child should carry parent %d: %+v", root, evs[1])
	}
	if root == child {
		t.Fatal("span IDs must be unique")
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	id := tr.Start(0, 0, -1, -1, "x")
	if id != 0 {
		t.Fatalf("nil tracer Start = %d, want 0", id)
	}
	tr.End(1, id, -1, -1, "") // must not panic
	if NewTracer(nil) != nil {
		t.Fatal("NewTracer(nil) should be nil")
	}
	var nilRec *Recorder
	if NewTracer(nilRec) != nil {
		t.Fatal("NewTracer(nil *Recorder) should be nil")
	}
}

func TestBuildSpansForest(t *testing.T) {
	rec, _ := NewRecorder(64)
	tr := NewTracer(rec)
	run := tr.Start(0, 0, -1, -1, "sim.run")
	a := tr.Start(0.1, run, 1, -1, "dndp.attempt")
	sweep := tr.Start(0.1, a, 1, -1, "dndp.hello_sweep")
	tr.End(0.3, sweep, 1, -1, "")
	verify := tr.Start(0.4, a, 2, 1, "dndp.auth1_verify")
	tr.End(0.5, verify, 2, 1, "ok")
	tr.End(0.9, a, 1, -1, "discovered")
	open := tr.Start(1.0, run, 4, -1, "dndp.attempt")
	_ = open // never ended: destroyed handshake
	tr.End(2.0, run, -1, -1, "")

	f := BuildSpans(rec.Events())
	if len(f.Roots) != 1 || f.Roots[0].Name != "sim.run" {
		t.Fatalf("want single sim.run root, got %+v", f.Roots)
	}
	if f.Open != 1 {
		t.Fatalf("Open = %d, want 1", f.Open)
	}
	if f.OrphanEnds != 0 {
		t.Fatalf("OrphanEnds = %d, want 0", f.OrphanEnds)
	}
	attempts := f.Named("dndp.attempt")
	if len(attempts) != 2 {
		t.Fatalf("got %d attempts, want 2", len(attempts))
	}
	if got := attempts[0].Duration(); got < 0.79 || got > 0.81 {
		t.Fatalf("first attempt duration = %v, want 0.8", got)
	}
	// The open attempt is clamped to the last event time.
	if !attempts[1].Open || attempts[1].End != 2.0 {
		t.Fatalf("open attempt not clamped: %+v", attempts[1])
	}
	if len(attempts[0].Children) != 2 {
		t.Fatalf("first attempt children = %d, want 2", len(attempts[0].Children))
	}
}

func TestBuildSpansOrphanEnd(t *testing.T) {
	f := BuildSpans([]Event{
		{At: 1, Kind: KindSpanEnd, Span: 99, Node: -1, Peer: -1},
	})
	if f.OrphanEnds != 1 {
		t.Fatalf("OrphanEnds = %d, want 1", f.OrphanEnds)
	}
}

func TestSelfTimeAndFolded(t *testing.T) {
	rec, _ := NewRecorder(64)
	tr := NewTracer(rec)
	run := tr.Start(0, 0, -1, -1, "sim.run")
	a := tr.Start(0, run, 1, -1, "dndp.attempt")
	s := tr.Start(0, a, 1, -1, "dndp.hello_sweep")
	tr.End(0.25, s, 1, -1, "")
	tr.End(1.0, a, 1, -1, "")
	tr.End(1.0, run, -1, -1, "")
	f := BuildSpans(rec.Events())

	attempt := f.Named("dndp.attempt")[0]
	if got := attempt.SelfTime(); got < 0.74 || got > 0.76 {
		t.Fatalf("attempt self time = %v, want 0.75", got)
	}

	var buf bytes.Buffer
	if err := WriteFolded(&buf, f); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := []string{
		"sim.run 0\n",
		"sim.run;dndp.attempt 750000\n",
		"sim.run;dndp.attempt;dndp.hello_sweep 250000\n",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Fatalf("folded output missing %q:\n%s", w, out)
		}
	}
	// Folded output must be sorted and stable.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatalf("folded output not sorted at line %d:\n%s", i, out)
		}
	}
}

func TestPhases(t *testing.T) {
	rec, _ := NewRecorder(64)
	tr := NewTracer(rec)
	for i := 0; i < 4; i++ {
		sp := tr.Start(float64(i), 0, i, -1, "dndp.attempt")
		tr.End(float64(i)+0.5, sp, i, -1, "")
	}
	short := tr.Start(10, 0, 9, -1, "dndp.hello_buffer")
	tr.End(10.1, short, 9, -1, "")
	f := BuildSpans(rec.Events())
	ps := Phases(f)
	if len(ps) != 2 {
		t.Fatalf("got %d phases, want 2", len(ps))
	}
	// Sorted by total descending: 4×0.5s beats 1×0.1s.
	if ps[0].Name != "dndp.attempt" || ps[0].Count != 4 {
		t.Fatalf("first phase = %+v", ps[0])
	}
	if got := ps[0].Mean(); got < 0.49 || got > 0.51 {
		t.Fatalf("attempt mean = %v, want 0.5", got)
	}
	if ps[1].Name != "dndp.hello_buffer" {
		t.Fatalf("second phase = %+v", ps[1])
	}
}

func TestRecorderInstrumentDropped(t *testing.T) {
	rec, _ := NewRecorder(2)
	reg := metrics.New()
	rec.Emit(Event{At: 0, Kind: KindTx, Node: 0, Peer: -1})
	rec.Emit(Event{At: 1, Kind: KindTx, Node: 0, Peer: -1})
	rec.Emit(Event{At: 2, Kind: KindTx, Node: 0, Peer: -1}) // evicts one pre-Instrument
	rec.Instrument(reg)
	rec.Emit(Event{At: 3, Kind: KindTx, Node: 0, Peer: -1}) // evicts one post-Instrument
	c := reg.Counter("jrsnd_trace_dropped_total", "")
	if got := c.Value(); got != 2 {
		t.Fatalf("jrsnd_trace_dropped_total = %d, want 2", got)
	}
	if rec.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", rec.Dropped())
	}
	// nil recorder / nil registry must not panic.
	var nilRec *Recorder
	nilRec.Instrument(reg)
	rec.Instrument(nil)
}
