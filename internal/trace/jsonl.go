package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// jsonEvent is the wire form of an Event: one JSON object per line, with
// the kind rendered as its string name so traces stay greppable.
type jsonEvent struct {
	At     float64 `json:"at"`
	Kind   string  `json:"kind"`
	Node   int     `json:"node"`
	Peer   int     `json:"peer"`
	Detail string  `json:"detail,omitempty"`
	// Span fields are omitted for non-span events, so pre-span trace files
	// and new ones share one schema: ReadJSONL fills missing fields with 0.
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
}

// KindFromString inverts Kind.String; unknown names map to 0.
func KindFromString(s string) Kind {
	for k := KindTx; k <= KindSpanEnd; k++ {
		if k.String() == s {
			return k
		}
	}
	return 0
}

// JSONLWriter streams events to an io.Writer as JSON Lines, preserving
// monotonic virtual-time ordering: events are staged in a small sorted
// window (reorderWindow entries) before being flushed, so the slightly
// out-of-order emissions that post-run bookkeeping produces still come out
// time-sorted. Emit is goroutine-safe. Call Close (or Flush) before reading
// the output; a nil *JSONLWriter is a valid no-op sink.
type JSONLWriter struct {
	mu      sync.Mutex
	w       *bufio.Writer
	pending []Event // sorted by At, stable for equal times
	err     error
	written int
}

// reorderWindow is how many events the writer holds back to restore
// monotonic ordering. The engine emits in time order, so the window only
// has to absorb same-instant jitter and post-run bookkeeping.
const reorderWindow = 64

// JSONLWriter is a Sink.
var _ Sink = (*JSONLWriter)(nil)

// NewJSONLWriter wraps w in a streaming JSONL trace sink.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w)}
}

// Emit stages an event for writing.
func (j *JSONLWriter) Emit(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	// Insert keeping pending sorted by At; equal times keep emission order.
	i := sort.Search(len(j.pending), func(i int) bool { return j.pending[i].At > e.At })
	j.pending = append(j.pending, Event{})
	copy(j.pending[i+1:], j.pending[i:])
	j.pending[i] = e
	for len(j.pending) > reorderWindow {
		j.writeLocked(j.pending[0])
		j.pending = j.pending[1:]
	}
}

func (j *JSONLWriter) writeLocked(e Event) {
	if j.err != nil {
		return
	}
	line, err := json.Marshal(jsonEvent{
		At: e.At, Kind: e.Kind.String(), Node: e.Node, Peer: e.Peer, Detail: e.Detail,
		Span: uint64(e.Span), Parent: uint64(e.Parent),
	})
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(line); err != nil {
		j.err = err
		return
	}
	if err := j.w.WriteByte('\n'); err != nil {
		j.err = err
		return
	}
	j.written++
}

// Flush drains the reorder window and the underlying buffer. The writer
// remains usable, but events emitted later with earlier timestamps than
// anything already flushed can no longer be reordered before them.
func (j *JSONLWriter) Flush() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, e := range j.pending {
		j.writeLocked(e)
	}
	j.pending = j.pending[:0]
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}

// Close flushes everything; the caller still owns the underlying writer.
func (j *JSONLWriter) Close() error { return j.Flush() }

// Written returns how many events have reached the underlying writer.
func (j *JSONLWriter) Written() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.written + len(j.pending)
}

// ReadJSONL parses a JSONL trace back into events, verifying that the
// stream is monotonic in virtual time.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	last := 0.0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		if len(out) > 0 && je.At < last {
			return nil, fmt.Errorf("trace: line %d: time %v before previous event at %v", lineNo, je.At, last)
		}
		last = je.At
		out = append(out, Event{
			At: je.At, Kind: KindFromString(je.Kind), Node: je.Node, Peer: je.Peer, Detail: je.Detail,
			Span: SpanID(je.Span), Parent: SpanID(je.Parent),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read JSONL: %w", err)
	}
	return out, nil
}
