// Package trace provides structured event tracing for the protocol
// engine: protocol components emit typed events into a pluggable Sink —
// a bounded in-memory ring Recorder with filtering and text rendering, a
// streaming JSONL writer, or any combination via Multi. Traces make the
// four-message D-NDP dance and the M-NDP flood inspectable in tests and
// examples without print-debugging the engine.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/metrics"
)

// Sink consumes protocol events. Implementations must tolerate concurrent
// Emit calls: the engine itself is single-threaded, but a sink may be
// shared by parallel campaign runs.
type Sink interface {
	Emit(Event)
}

// Multi fans every event out to all the given sinks, skipping nils. It
// returns nil when no usable sink remains, so the result can be stored
// directly in a config field.
func Multi(sinks ...Sink) Sink {
	var kept []Sink
	for _, s := range sinks {
		if s == nil {
			continue
		}
		if r, ok := s.(*Recorder); ok && r == nil {
			continue
		}
		kept = append(kept, s)
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return multiSink(kept)
}

type multiSink []Sink

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Kind classifies trace events.
type Kind int

// Event kinds.
const (
	KindTx Kind = iota + 1
	KindJammed
	KindRx
	KindDiscovery
	KindExpiry
	KindRevocation
	KindDrop
	KindCrash
	KindRestart
	KindRetry
	KindSpanStart
	KindSpanEnd
)

func (k Kind) String() string {
	switch k {
	case KindTx:
		return "tx"
	case KindJammed:
		return "jammed"
	case KindRx:
		return "rx"
	case KindDiscovery:
		return "discovery"
	case KindExpiry:
		return "expiry"
	case KindRevocation:
		return "revocation"
	case KindDrop:
		return "drop"
	case KindCrash:
		return "crash"
	case KindRestart:
		return "restart"
	case KindRetry:
		return "retry"
	case KindSpanStart:
		return "span_start"
	case KindSpanEnd:
		return "span_end"
	default:
		return "unknown"
	}
}

// Event is one recorded protocol event.
type Event struct {
	At     float64 // virtual time (s)
	Kind   Kind
	Node   int    // acting node (-1 when not applicable)
	Peer   int    // counterpart node (-1 when not applicable)
	Detail string // free-form context ("HELLO code=17", "via M-NDP", …)
	// Span/Parent carry causal-span identity for KindSpanStart/KindSpanEnd
	// events (see span.go); 0 elsewhere.
	Span   SpanID
	Parent SpanID
}

// String renders the event as one line.
func (e Event) String() string {
	spans := ""
	if e.Span != 0 {
		if e.Parent != 0 {
			spans = fmt.Sprintf(" span=%d parent=%d", e.Span, e.Parent)
		} else {
			spans = fmt.Sprintf(" span=%d", e.Span)
		}
	}
	switch {
	case e.Node >= 0 && e.Peer >= 0:
		return fmt.Sprintf("%10.6fs %-10s node=%d peer=%d %s%s", e.At, e.Kind, e.Node, e.Peer, e.Detail, spans)
	case e.Node >= 0:
		return fmt.Sprintf("%10.6fs %-10s node=%d %s%s", e.At, e.Kind, e.Node, e.Detail, spans)
	default:
		return fmt.Sprintf("%10.6fs %-10s %s%s", e.At, e.Kind, e.Detail, spans)
	}
}

// Recorder collects events up to a capacity, then drops the oldest
// (ring-buffer semantics). A nil *Recorder is a valid no-op sink, so
// callers can emit unconditionally. All methods are goroutine-safe, so a
// single Recorder can be shared across parallel campaign runs.
type Recorder struct {
	mu       sync.Mutex
	cap      int
	events   []Event
	start    int // ring start index
	dropped  int
	droppedC *metrics.Counter
}

// Recorder is the canonical Sink implementation.
var _ Sink = (*Recorder)(nil)

// NewRecorder creates a recorder holding at most capacity events.
func NewRecorder(capacity int) (*Recorder, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("trace: capacity %d must be >= 1", capacity)
	}
	return &Recorder{cap: capacity, events: make([]Event, 0, capacity)}, nil
}

// Emit records an event. Safe on a nil receiver.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) < r.cap {
		r.events = append(r.events, e)
		return
	}
	r.events[r.start] = e
	r.start = (r.start + 1) % r.cap
	r.dropped++
	if r.droppedC != nil {
		r.droppedC.Inc()
	}
}

// Instrument surfaces the recorder's eviction count as the
// jrsnd_trace_dropped_total counter, so a silently truncated trace shows
// up in scraped metrics instead of lying by omission. Evictions that
// happened before Instrument are folded in. Safe on a nil receiver.
func (r *Recorder) Instrument(reg *metrics.Registry) {
	if r == nil || reg == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.droppedC = reg.Counter("jrsnd_trace_dropped_total",
		"Trace events evicted from the bounded recorder ring (truncated trace).")
	if r.dropped > 0 {
		r.droppedC.Add(uint64(r.dropped))
	}
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped returns how many events were evicted.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns the retained events in chronological order (a copy).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.events))
	for i := 0; i < len(r.events); i++ {
		// The ring wraps at the configured capacity; before the buffer
		// first fills, start is 0 and the modulus is inert.
		out = append(out, r.events[(r.start+i)%r.cap])
	}
	return out
}

// Filter returns the retained events matching all non-zero criteria: kind
// (0 = any), node (-1 = any; matches Node or Peer), and substring (empty =
// any).
func (r *Recorder) Filter(kind Kind, node int, substring string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if kind != 0 && e.Kind != kind {
			continue
		}
		if node >= 0 && e.Node != node && e.Peer != node {
			continue
		}
		if substring != "" && !strings.Contains(e.Detail, substring) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Dump writes all retained events to w, one per line.
func (r *Recorder) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	if d := r.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "(%d earlier events dropped)\n", d); err != nil {
			return err
		}
	}
	return nil
}

// Counts aggregates retained events per kind.
func (r *Recorder) Counts() map[Kind]int {
	out := map[Kind]int{}
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}
