// Package trace provides structured event tracing for the protocol
// engine: a bounded in-memory recorder that protocol components emit typed
// events into, with filtering and text rendering. Traces make the
// four-message D-NDP dance and the M-NDP flood inspectable in tests and
// examples without print-debugging the engine.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Kind classifies trace events.
type Kind int

// Event kinds.
const (
	KindTx Kind = iota + 1
	KindJammed
	KindRx
	KindDiscovery
	KindExpiry
	KindRevocation
	KindDrop
)

func (k Kind) String() string {
	switch k {
	case KindTx:
		return "tx"
	case KindJammed:
		return "jammed"
	case KindRx:
		return "rx"
	case KindDiscovery:
		return "discovery"
	case KindExpiry:
		return "expiry"
	case KindRevocation:
		return "revocation"
	case KindDrop:
		return "drop"
	default:
		return "unknown"
	}
}

// Event is one recorded protocol event.
type Event struct {
	At     float64 // virtual time (s)
	Kind   Kind
	Node   int    // acting node (-1 when not applicable)
	Peer   int    // counterpart node (-1 when not applicable)
	Detail string // free-form context ("HELLO code=17", "via M-NDP", …)
}

// String renders the event as one line.
func (e Event) String() string {
	switch {
	case e.Node >= 0 && e.Peer >= 0:
		return fmt.Sprintf("%10.6fs %-10s node=%d peer=%d %s", e.At, e.Kind, e.Node, e.Peer, e.Detail)
	case e.Node >= 0:
		return fmt.Sprintf("%10.6fs %-10s node=%d %s", e.At, e.Kind, e.Node, e.Detail)
	default:
		return fmt.Sprintf("%10.6fs %-10s %s", e.At, e.Kind, e.Detail)
	}
}

// Recorder collects events up to a capacity, then drops the oldest
// (ring-buffer semantics). A nil *Recorder is a valid no-op sink, so
// callers can emit unconditionally.
type Recorder struct {
	cap     int
	events  []Event
	start   int // ring start index
	dropped int
}

// NewRecorder creates a recorder holding at most capacity events.
func NewRecorder(capacity int) (*Recorder, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("trace: capacity %d must be >= 1", capacity)
	}
	return &Recorder{cap: capacity, events: make([]Event, 0, capacity)}, nil
}

// Emit records an event. Safe on a nil receiver.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	if len(r.events) < r.cap {
		r.events = append(r.events, e)
		return
	}
	r.events[r.start] = e
	r.start = (r.start + 1) % r.cap
	r.dropped++
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Dropped returns how many events were evicted.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Events returns the retained events in chronological order (a copy).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.events))
	for i := 0; i < len(r.events); i++ {
		out = append(out, r.events[(r.start+i)%len(r.events)])
	}
	return out
}

// Filter returns the retained events matching all non-zero criteria: kind
// (0 = any), node (-1 = any; matches Node or Peer), and substring (empty =
// any).
func (r *Recorder) Filter(kind Kind, node int, substring string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if kind != 0 && e.Kind != kind {
			continue
		}
		if node >= 0 && e.Node != node && e.Peer != node {
			continue
		}
		if substring != "" && !strings.Contains(e.Detail, substring) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Dump writes all retained events to w, one per line.
func (r *Recorder) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	if d := r.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "(%d earlier events dropped)\n", d); err != nil {
			return err
		}
	}
	return nil
}

// Counts aggregates retained events per kind.
func (r *Recorder) Counts() map[Kind]int {
	out := map[Kind]int{}
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}
