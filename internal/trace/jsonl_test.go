package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{At: 0.1, Kind: KindTx, Node: 0, Peer: -1, Detail: "HELLO code=3 bits=26"},
		{At: 0.2, Kind: KindJammed, Node: 1, Peer: -1, Detail: "HELLO code=7 bits=26"},
		{At: 0.2, Kind: KindRx, Node: 2, Peer: 0, Detail: "same-instant ordering"},
		{At: 0.5, Kind: KindDiscovery, Node: 1, Peer: 0, Detail: "via D-NDP"},
		{At: 0.9, Kind: KindRevocation, Node: -1, Peer: -1, Detail: "code 5 revoked"},
	}
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	for _, e := range events {
		w.Emit(e)
	}
	if got := w.Written(); got != len(events) {
		t.Fatalf("Written = %d, want %d", got, len(events))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip returned %d events, want %d", len(back), len(events))
	}
	for i, e := range events {
		if back[i] != e {
			t.Errorf("event %d: got %+v, want %+v", i, back[i], e)
		}
	}
}

// TestJSONLReordersWithinWindow: events emitted slightly out of order (as
// post-run bookkeeping does) must still stream out monotonically.
func TestJSONLReordersWithinWindow(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.Emit(Event{At: 1.0, Kind: KindTx, Node: 0, Peer: -1})
	w.Emit(Event{At: 0.5, Kind: KindTx, Node: 1, Peer: -1}) // late emission
	w.Emit(Event{At: 2.0, Kind: KindTx, Node: 2, Peer: -1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("stream not monotonic: %v", err)
	}
	if back[0].At != 0.5 || back[1].At != 1.0 || back[2].At != 2.0 {
		t.Errorf("order = %v %v %v, want 0.5 1 2", back[0].At, back[1].At, back[2].At)
	}
}

func TestJSONLLargeStreamStaysMonotonic(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	// More than the reorder window, with interleaved same-time events.
	for i := 0; i < 1000; i++ {
		w.Emit(Event{At: float64(i / 2), Kind: KindTx, Node: i, Peer: -1})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1000 {
		t.Fatalf("got %d events, want 1000", len(back))
	}
}

func TestJSONLNilAndGarbage(t *testing.T) {
	var w *JSONLWriter
	w.Emit(Event{At: 1}) // no-op
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Written() != 0 {
		t.Fatal("nil writer must report zero events")
	}
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Error("garbage line must fail")
	}
	if _, err := ReadJSONL(strings.NewReader(
		"{\"at\":2,\"kind\":\"tx\",\"node\":0,\"peer\":-1}\n{\"at\":1,\"kind\":\"tx\",\"node\":1,\"peer\":-1}\n")); err == nil {
		t.Error("non-monotonic stream must fail")
	}
}

func TestKindFromString(t *testing.T) {
	// Every named kind must round-trip — KindFromString once stopped at
	// KindDrop, silently mapping crash/restart/retry back to 0.
	for k := KindTx; k <= KindSpanEnd; k++ {
		if got := KindFromString(k.String()); got != k {
			t.Errorf("KindFromString(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if KindFromString("nonsense") != 0 {
		t.Error("unknown kind name must map to 0")
	}
}

// TestJSONLSpanRoundTrip: span identity must survive the JSONL wire form.
func TestJSONLSpanRoundTrip(t *testing.T) {
	events := []Event{
		{At: 0.1, Kind: KindSpanStart, Node: 0, Peer: -1, Detail: "dndp.attempt", Span: 7},
		{At: 0.2, Kind: KindSpanStart, Node: 0, Peer: 1, Detail: "dndp.hello_sweep", Span: 8, Parent: 7},
		{At: 0.3, Kind: KindRetry, Node: 0, Peer: -1, Detail: "budget 2"},
		{At: 0.4, Kind: KindSpanEnd, Node: 0, Peer: 1, Detail: "swept", Span: 8},
		{At: 0.5, Kind: KindSpanEnd, Node: 0, Peer: -1, Detail: "discovered", Span: 7},
	}
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	for _, e := range events {
		w.Emit(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Non-span lines must not carry span keys (pre-span schema unchanged).
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.Contains(line, "retry") && strings.Contains(line, "span") {
			t.Fatalf("non-span event gained span fields: %s", line)
		}
	}
	back, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip returned %d events, want %d", len(back), len(events))
	}
	for i, e := range events {
		if back[i] != e {
			t.Errorf("event %d: got %+v, want %+v", i, back[i], e)
		}
	}
}

// TestReadJSONLPreSpanLines: trace files written before the span fields
// existed must still parse, with zero span identity.
func TestReadJSONLPreSpanLines(t *testing.T) {
	legacy := "{\"at\":0.1,\"kind\":\"tx\",\"node\":0,\"peer\":-1,\"detail\":\"HELLO code=3\"}\n" +
		"{\"at\":0.2,\"kind\":\"discovery\",\"node\":1,\"peer\":0}\n"
	back, err := ReadJSONL(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("got %d events, want 2", len(back))
	}
	for i, e := range back {
		if e.Span != 0 || e.Parent != 0 {
			t.Errorf("legacy event %d gained span identity: %+v", i, e)
		}
	}
	if back[0].Kind != KindTx || back[1].Kind != KindDiscovery {
		t.Fatalf("legacy kinds mangled: %+v", back)
	}
}

func TestMultiSink(t *testing.T) {
	rec, err := NewRecorder(8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	var nilRec *Recorder
	s := Multi(nilRec, nil, rec, w)
	s.Emit(Event{At: 1, Kind: KindTx, Node: 0, Peer: -1})
	if rec.Len() != 1 {
		t.Error("recorder missed the event")
	}
	if w.Written() != 1 {
		t.Error("JSONL writer missed the event")
	}
	if Multi(nil, nilRec) != nil {
		t.Error("Multi with no usable sinks must return nil")
	}
	if Multi(rec) != Sink(rec) {
		t.Error("Multi with one sink must return it unwrapped")
	}
}

func TestConcurrentSinks(t *testing.T) {
	rec, err := NewRecorder(128)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e := Event{At: float64(g), Kind: KindTx, Node: g, Peer: -1}
				rec.Emit(e)
				w.Emit(e)
				_ = rec.Len()
				_ = rec.Counts()
			}
		}()
	}
	wg.Wait()
	if rec.Len() != 128 || rec.Dropped() != 8*200-128 {
		t.Errorf("recorder len=%d dropped=%d", rec.Len(), rec.Dropped())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Written() != 8*200 {
		t.Errorf("writer saw %d events, want %d", w.Written(), 8*200)
	}
}
