package trace

import (
	"strings"
	"testing"
)

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(0); err == nil {
		t.Fatal("accepted zero capacity")
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Emit(Event{Kind: KindTx})
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Fatal("nil recorder must behave as empty")
	}
}

func TestEmitAndOrder(t *testing.T) {
	r, err := NewRecorder(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r.Emit(Event{At: float64(i), Kind: KindTx, Node: i})
	}
	events := r.Events()
	if len(events) != 5 {
		t.Fatalf("Len = %d, want 5", len(events))
	}
	for i, e := range events {
		if e.Node != i {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
}

func TestRingEviction(t *testing.T) {
	r, _ := NewRecorder(3)
	for i := 0; i < 7; i++ {
		r.Emit(Event{At: float64(i), Kind: KindRx, Node: i})
	}
	if r.Len() != 3 || r.Dropped() != 4 {
		t.Fatalf("len=%d dropped=%d, want 3/4", r.Len(), r.Dropped())
	}
	events := r.Events()
	for i, want := range []int{4, 5, 6} {
		if events[i].Node != want {
			t.Fatalf("ring order wrong: %+v", events)
		}
	}
}

// TestRingExactlyAtCapacity is the regression test for the wraparound
// boundary: with exactly cap events emitted, start is still 0 and the ring
// has just become full; the modular walk must use the configured capacity,
// not wrap early or skip entries.
func TestRingExactlyAtCapacity(t *testing.T) {
	const cap = 4
	r, err := NewRecorder(cap)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cap; i++ {
		r.Emit(Event{At: float64(i), Kind: KindTx, Node: i})
	}
	if r.Len() != cap || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d, want %d/0", r.Len(), r.Dropped(), cap)
	}
	events := r.Events()
	for i := 0; i < cap; i++ {
		if events[i].Node != i {
			t.Fatalf("at-capacity order wrong: %+v", events)
		}
	}
	// One more event crosses the boundary: the oldest is evicted and the
	// chronological walk now starts mid-ring.
	r.Emit(Event{At: float64(cap), Kind: KindTx, Node: cap})
	events = r.Events()
	if r.Dropped() != 1 || len(events) != cap {
		t.Fatalf("post-boundary len=%d dropped=%d", len(events), r.Dropped())
	}
	for i := 0; i < cap; i++ {
		if events[i].Node != i+1 {
			t.Fatalf("post-boundary order wrong: %+v", events)
		}
	}
}

func TestFilter(t *testing.T) {
	r, _ := NewRecorder(16)
	r.Emit(Event{Kind: KindTx, Node: 1, Peer: 2, Detail: "HELLO code=5"})
	r.Emit(Event{Kind: KindJammed, Node: 1, Peer: -1, Detail: "AUTH1 code=5"})
	r.Emit(Event{Kind: KindDiscovery, Node: 2, Peer: 1, Detail: "via D-NDP"})
	r.Emit(Event{Kind: KindTx, Node: 3, Peer: -1, Detail: "CONFIRM code=9"})

	if got := r.Filter(KindTx, -1, ""); len(got) != 2 {
		t.Fatalf("kind filter: %d events, want 2", len(got))
	}
	if got := r.Filter(0, 1, ""); len(got) != 3 {
		t.Fatalf("node filter: %d events, want 3 (node or peer = 1)", len(got))
	}
	if got := r.Filter(0, -1, "code=5"); len(got) != 2 {
		t.Fatalf("substring filter: %d events, want 2", len(got))
	}
	if got := r.Filter(KindTx, 3, "CONFIRM"); len(got) != 1 {
		t.Fatalf("combined filter: %d events, want 1", len(got))
	}
}

func TestDumpAndCounts(t *testing.T) {
	r, _ := NewRecorder(2)
	r.Emit(Event{At: 0.5, Kind: KindTx, Node: 1, Peer: 2, Detail: "x"})
	r.Emit(Event{At: 0.6, Kind: KindExpiry, Node: 1, Peer: -1, Detail: "y"})
	r.Emit(Event{At: 0.7, Kind: KindRevocation, Node: -1, Peer: -1, Detail: "z"})
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "expiry") || !strings.Contains(out, "revocation") {
		t.Fatalf("dump missing events:\n%s", out)
	}
	if !strings.Contains(out, "1 earlier events dropped") {
		t.Fatalf("dump missing dropped note:\n%s", out)
	}
	counts := r.Counts()
	if counts[KindExpiry] != 1 || counts[KindRevocation] != 1 || counts[KindTx] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{KindTx, KindJammed, KindRx, KindDiscovery, KindExpiry, KindRevocation, KindDrop, KindCrash, KindRestart, KindRetry, KindSpanStart, KindSpanEnd} {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("unknown kind must say so")
	}
}
