package trace

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Causal spans, layered on the flat Event stream: a span is a pair of
// KindSpanStart/KindSpanEnd events sharing a SpanID, carrying a ParentID
// for causality and virtual-time Start/End stamps. The protocol engine,
// the sim engine, the DSSS receive path, and authd all emit spans through
// a Tracer; BuildSpans reconstructs the forest from any recorded event
// stream so cmd/jrsnd-report can attribute where a handshake's latency
// went — per phase, per critical path, or as a flamegraph-compatible
// folded-stack export.

// SpanID identifies one span within a trace stream. 0 means "no span".
type SpanID uint64

// Tracer allocates span IDs and emits paired start/end events into a
// Sink. A nil *Tracer is a valid no-op, so instrumentation sites can call
// unconditionally. ID allocation is atomic: the sim engine is
// single-threaded (making IDs reproducible run to run), but authd shares
// one Tracer across handler goroutines.
type Tracer struct {
	sink Sink
	next atomic.Uint64
}

// NewTracer wraps sink in a Tracer; a nil (or normalized-to-nil) sink
// yields a nil Tracer so callers keep the one-pointer-check discipline.
func NewTracer(sink Sink) *Tracer {
	if s := Multi(sink); s != nil {
		return &Tracer{sink: s}
	}
	return nil
}

// Start opens a span named name at virtual time at, under parent (0 for a
// root), and returns its ID. Safe on a nil receiver (returns 0).
func (t *Tracer) Start(at float64, parent SpanID, node, peer int, name string) SpanID {
	if t == nil {
		return 0
	}
	id := SpanID(t.next.Add(1))
	t.sink.Emit(Event{At: at, Kind: KindSpanStart, Node: node, Peer: peer, Detail: name, Span: id, Parent: parent})
	return id
}

// End closes span id at virtual time at; detail records the outcome
// ("discovered", "mac failed", …). Ending span 0 (or on a nil receiver)
// is a no-op, so Start/End pairs compose with disabled tracing.
func (t *Tracer) End(at float64, id SpanID, node, peer int, detail string) {
	if t == nil || id == 0 {
		return
	}
	t.sink.Emit(Event{At: at, Kind: KindSpanEnd, Node: node, Peer: peer, Detail: detail, Span: id})
}

// Span is one reconstructed span.
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Node   int
	Peer   int
	Start  float64
	End    float64
	// EndDetail is the outcome recorded by the end event.
	EndDetail string
	// Open marks a span whose end event never arrived (the handshake was
	// destroyed, the node crashed, or the trace was truncated); End is
	// clamped to the last event time in the stream.
	Open     bool
	Children []*Span
}

// Duration returns the span's virtual-time extent.
func (s *Span) Duration() float64 { return s.End - s.Start }

// SelfTime returns the span's duration minus the (clamped) time covered
// by its children — the folded-stack sample value.
func (s *Span) SelfTime() float64 {
	covered := 0.0
	for _, c := range s.Children {
		d := c.Duration()
		if d > 0 {
			covered += d
		}
	}
	self := s.Duration() - covered
	if self < 0 {
		return 0
	}
	return self
}

// Forest is the reconstructed span forest of one trace stream.
type Forest struct {
	// Roots are spans with no (locatable) parent, in start order.
	Roots []*Span
	// ByID indexes every reconstructed span.
	ByID map[SpanID]*Span
	// Open counts spans whose end event never arrived.
	Open int
	// OrphanEnds counts end events with no matching start — evidence of a
	// truncated (ring-dropped) trace.
	OrphanEnds int
}

// Named returns every span with the given name, in start order.
func (f *Forest) Named(name string) []*Span {
	var out []*Span
	for _, s := range f.ByID {
		if s.Name == name {
			out = append(out, s)
		}
	}
	sortSpans(out)
	return out
}

// BuildSpans reconstructs the span forest from an event stream. Non-span
// events are ignored. Open spans are clamped to the last event time; end
// events without a start are counted as orphans (they indicate the start
// fell out of a bounded Recorder).
func BuildSpans(events []Event) *Forest {
	f := &Forest{ByID: map[SpanID]*Span{}}
	lastAt := 0.0
	for _, e := range events {
		if e.At > lastAt {
			lastAt = e.At
		}
		switch e.Kind {
		case KindSpanStart:
			if e.Span == 0 {
				continue
			}
			f.ByID[e.Span] = &Span{
				ID:     e.Span,
				Parent: e.Parent,
				Name:   e.Detail,
				Node:   e.Node,
				Peer:   e.Peer,
				Start:  e.At,
				Open:   true,
			}
		case KindSpanEnd:
			s, ok := f.ByID[e.Span]
			if !ok {
				f.OrphanEnds++
				continue
			}
			s.End = e.At
			s.EndDetail = e.Detail
			s.Open = false
		}
	}
	for _, s := range f.ByID {
		if s.Open {
			s.End = lastAt
			f.Open++
		}
		if s.Parent != 0 {
			if p, ok := f.ByID[s.Parent]; ok {
				p.Children = append(p.Children, s)
				continue
			}
		}
		f.Roots = append(f.Roots, s)
	}
	sortSpans(f.Roots)
	for _, s := range f.ByID {
		sortSpans(s.Children)
	}
	return f
}

// sortSpans orders spans by start time, breaking ties by ID (creation
// order) for deterministic output.
func sortSpans(spans []*Span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})
}

// PhaseStat aggregates every span sharing one name.
type PhaseStat struct {
	Name  string
	Count int
	// Open counts spans of this phase that never ended.
	Open  int
	Total float64
	Min   float64
	Max   float64
	P50   float64
	P95   float64
}

// Mean returns the average duration.
func (p PhaseStat) Mean() float64 {
	if p.Count == 0 {
		return 0
	}
	return p.Total / float64(p.Count)
}

// Phases aggregates one or more forests per span name, sorted by
// descending total time (the per-phase latency breakdown of
// cmd/jrsnd-report). Multiple forests arise from multi-file traces — e.g.
// one JSONL stream per chaos cell, where span IDs restart per file and so
// the forests cannot be merged at the event level.
func Phases(forests ...*Forest) []PhaseStat {
	durations := map[string][]float64{}
	open := map[string]int{}
	for _, f := range forests {
		for _, s := range f.ByID {
			durations[s.Name] = append(durations[s.Name], s.Duration())
			if s.Open {
				open[s.Name]++
			}
		}
	}
	out := make([]PhaseStat, 0, len(durations))
	for name, ds := range durations {
		sort.Float64s(ds)
		st := PhaseStat{
			Name:  name,
			Count: len(ds),
			Open:  open[name],
			Min:   ds[0],
			Max:   ds[len(ds)-1],
			P50:   quantile(ds, 0.5),
			P95:   quantile(ds, 0.95),
		}
		for _, d := range ds {
			st.Total += d
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// quantile reads the q-quantile from an ascending-sorted slice (nearest
// rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// WriteFolded renders one or more forests in the folded-stack format
// flamegraph tooling consumes: one line per unique root-to-leaf name path,
// stack frames joined by ';', value = aggregate self time in integer
// microseconds. Aggregation keys on name paths, so forests from separate
// trace files (colliding span IDs) fold together cleanly. Lines come out
// lexicographically sorted.
func WriteFolded(w io.Writer, forests ...*Forest) error {
	agg := map[string]int64{}
	var walk func(s *Span, prefix string)
	walk = func(s *Span, prefix string) {
		stack := s.Name
		if prefix != "" {
			stack = prefix + ";" + s.Name
		}
		agg[stack] += int64(s.SelfTime() * 1e6)
		for _, c := range s.Children {
			walk(c, stack)
		}
	}
	for _, f := range forests {
		for _, r := range f.Roots {
			walk(r, "")
		}
	}
	stacks := make([]string, 0, len(agg))
	for s := range agg {
		stacks = append(stacks, s)
	}
	sort.Strings(stacks)
	for _, s := range stacks {
		if _, err := fmt.Fprintf(w, "%s %d\n", s, agg[s]); err != nil {
			return err
		}
	}
	return nil
}
