// Package wire is the canonical binary codec for every JR-SND protocol
// message. Before this layer existed, in-sim deliveries carried in-memory
// Go structs, so an entire class of adversarial inputs — truncated frames,
// oversized neighbor lists, bit-flipped payloads, replayed byte sequences —
// was unrepresentable. Routing every delivery through encode→decode makes
// hostile bytes a reachable state: the decoder is strictly bounded (every
// variable-length field is capped by Limits before any allocation), the
// encoding is canonical (one byte sequence per message, so round-trips are
// byte-identical and replay detection can key on content), and decode
// failures surface as a typed error taxonomy (ErrTruncated, ErrOverflow,
// ErrBadKind) instead of panics.
//
// Frame layout (all integers big-endian):
//
//	byte 0      version (currently 1)
//	byte 1      kind (KindHello … KindSessionConfirm)
//	bytes 2..5  uint32 body length
//	bytes 6..   body (per-kind payload encoding)
//
// Variable-length byte fields (nonces, MACs, signature components) are
// uint16-length-prefixed; ID lists are uint16-count-prefixed; hop lists are
// uint8-count-prefixed. The decoder copies every field out of the frame
// buffer — a decoded payload never aliases the input, so a Byzantine
// sender mutating its transmit buffer after the fact cannot corrupt
// receiver state.
package wire

import (
	"errors"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ibc"
)

// Version is the frame format version emitted by Encode.
const Version = 1

// Message kinds, shared with the protocol engine (internal/core aliases
// these so the wire value is the single source of truth).
const (
	KindHello = iota + 1
	KindConfirm
	KindAuth1
	KindAuth2
	KindMNDPRequest
	KindMNDPResponse
	KindSessionHello
	KindSessionConfirm
	numKinds = KindSessionConfirm
)

// Typed decode-error taxonomy. Every decode failure wraps exactly one of
// these, so callers (and fuzz targets) can classify hostile inputs.
var (
	// ErrTruncated: the frame ends before a declared field does.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrOverflow: a declared length exceeds its Limits cap, the frame
	// exceeds MaxFrame, or trailing bytes follow the payload.
	ErrOverflow = errors.New("wire: field exceeds limit")
	// ErrBadKind: unknown message kind, unsupported version, or a field
	// holding a value outside its domain (e.g. a bool byte that is not 0/1).
	ErrBadKind = errors.New("wire: bad kind or malformed field")
)

// MaxSigComponent caps each signature component (public key, certificate,
// signature bytes) — ed25519 needs 32/64/64.
const MaxSigComponent = 128

// Limits bounds every variable-length field the decoder will allocate for.
// A frame declaring anything larger is rejected with ErrOverflow before
// allocation, so hostile length prefixes cannot drive memory use.
type Limits struct {
	// MaxFrame is the total frame size in bytes.
	MaxFrame int
	// MaxNonce caps nonce fields (bytes).
	MaxNonce int
	// MaxMAC caps MAC fields (bytes).
	MaxMAC int
	// MaxSigField caps each signature component (bytes).
	MaxSigField int
	// MaxNeighbors caps IDs per neighbor list.
	MaxNeighbors int
	// MaxHops caps hop records per request/response and return-route length.
	MaxHops int
}

// Validate rejects unusable limit sets.
func (l Limits) Validate() error {
	switch {
	case l.MaxFrame < 8:
		return fmt.Errorf("wire: MaxFrame %d too small", l.MaxFrame)
	case l.MaxNonce < 1, l.MaxMAC < 1, l.MaxSigField < 1:
		return fmt.Errorf("wire: byte-field caps must be >= 1 (nonce %d, mac %d, sig %d)",
			l.MaxNonce, l.MaxMAC, l.MaxSigField)
	case l.MaxNeighbors < 1 || l.MaxNeighbors > 1<<16:
		return fmt.Errorf("wire: MaxNeighbors %d outside [1, 65536]", l.MaxNeighbors)
	case l.MaxHops < 1 || l.MaxHops > 255:
		return fmt.Errorf("wire: MaxHops %d outside [1, 255]", l.MaxHops)
	}
	return nil
}

// DefaultLimits returns permissive caps for tooling and fuzzing.
func DefaultLimits() Limits {
	return Limits{
		MaxFrame:     1 << 20,
		MaxNonce:     64,
		MaxMAC:       64,
		MaxSigField:  MaxSigComponent,
		MaxNeighbors: 4096,
		MaxHops:      32,
	}
}

// LimitsFromParams derives hard caps from the Table I parameter set: nonce
// and MAC caps are the exact field widths, neighbor lists are capped at a
// multiple of the deployment size (late joins grow the network), and hop
// lists at a multiple of the ν hop budget. MaxFrame is the worst-case
// honest frame under those caps plus headroom.
func LimitsFromParams(p analysis.Params) Limits {
	l := Limits{
		MaxNonce:    (p.LenNonce + 7) / 8,
		MaxMAC:      (p.LenMAC + 7) / 8,
		MaxSigField: MaxSigComponent,
	}
	l.MaxNeighbors = 4 * p.N
	if l.MaxNeighbors < 64 {
		l.MaxNeighbors = 64
	}
	if l.MaxNeighbors > 1<<16 {
		l.MaxNeighbors = 1 << 16
	}
	l.MaxHops = 2*p.Nu + 2
	if l.MaxHops < 8 {
		l.MaxHops = 8
	}
	if l.MaxHops > 255 {
		l.MaxHops = 255
	}
	// Worst-case body: MaxHops hop records, each with a full neighbor list
	// and three signature components, plus fixed fields and slack.
	hopBytes := 2 + (2 + 2*l.MaxNeighbors) + (2 + 3*(2+l.MaxSigField))
	l.MaxFrame = 6 + l.MaxHops*hopBytes + 2*(2+l.MaxNonce) + 64
	return l
}

// Hello is the D-NDP HELLO: {HELLO, ID_A}.
type Hello struct {
	Initiator ibc.NodeID
}

// Confirm is the D-NDP CONFIRM: {CONFIRM, ID_B} addressed to the initiator.
type Confirm struct {
	Responder ibc.NodeID
	Initiator ibc.NodeID
}

// Auth carries the two mutual-authentication messages: {ID, n, f_K(ID|n)}.
type Auth struct {
	Sender ibc.NodeID
	Peer   ibc.NodeID
	Nonce  []byte
	MAC    []byte
}

// Hop is one signed hop record in an M-NDP request or response.
type Hop struct {
	ID        ibc.NodeID
	Neighbors []ibc.NodeID
	Sig       ibc.Signature
}

// MNDPRequest is the M-NDP request of §V-C.
type MNDPRequest struct {
	Nonce []byte
	Nu    int
	Hops  []Hop
	// OriginPos carries the origin's claimed position for the optional GPS
	// false-positive filter. Units: meters.
	OriginPosX, OriginPosY float64
	HasOriginPos           bool
}

// MNDPResponse travels back along the request path to the origin.
type MNDPResponse struct {
	Origin      ibc.NodeID
	Nonce       []byte // responder's nonce n_B
	OriginNonce []byte // echoed origin nonce n_A
	Nu          int
	Path        []Hop
	ReturnRoute []ibc.NodeID
}

// Session completes M-NDP: HELLO/CONFIRM spread with the derived session
// code.
type Session struct {
	Sender ibc.NodeID
	Peer   ibc.NodeID
}

// KindName names a message kind for traces and errors.
func KindName(kind int) string {
	switch kind {
	case KindHello:
		return "HELLO"
	case KindConfirm:
		return "CONFIRM"
	case KindAuth1:
		return "AUTH1"
	case KindAuth2:
		return "AUTH2"
	case KindMNDPRequest:
		return "MNDP-REQ"
	case KindMNDPResponse:
		return "MNDP-RESP"
	case KindSessionHello:
		return "SESS-HELLO"
	case KindSessionConfirm:
		return "SESS-CONFIRM"
	default:
		return "UNKNOWN"
	}
}
