package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/ibc"
)

// Encode serializes payload as a versioned frame of the given kind. The
// payload's concrete type must match the kind (a mismatch is ErrBadKind),
// and every variable-length field must fit the limits (ErrOverflow
// otherwise) — the encoder enforces the same caps as the decoder so that
// anything it emits is decodable, and a decode→encode round trip of any
// accepted frame is byte-identical.
func Encode(kind int, payload any, lim Limits) ([]byte, error) {
	if err := lim.Validate(); err != nil {
		return nil, err
	}
	w := &writer{lim: lim}
	switch kind {
	case KindHello:
		p, ok := payload.(Hello)
		if !ok {
			return nil, kindMismatch(kind, payload)
		}
		w.id(p.Initiator)
	case KindConfirm:
		p, ok := payload.(Confirm)
		if !ok {
			return nil, kindMismatch(kind, payload)
		}
		w.id(p.Responder)
		w.id(p.Initiator)
	case KindAuth1, KindAuth2:
		p, ok := payload.(Auth)
		if !ok {
			return nil, kindMismatch(kind, payload)
		}
		w.id(p.Sender)
		w.id(p.Peer)
		w.bytes(p.Nonce, lim.MaxNonce, "nonce")
		w.bytes(p.MAC, lim.MaxMAC, "mac")
	case KindMNDPRequest:
		p, ok := payload.(MNDPRequest)
		if !ok {
			return nil, kindMismatch(kind, payload)
		}
		w.bytes(p.Nonce, lim.MaxNonce, "nonce")
		w.hopCount(p.Nu, "nu")
		w.hops(p.Hops)
		w.bool(p.HasOriginPos)
		if p.HasOriginPos {
			w.f64(p.OriginPosX)
			w.f64(p.OriginPosY)
		}
	case KindMNDPResponse:
		p, ok := payload.(MNDPResponse)
		if !ok {
			return nil, kindMismatch(kind, payload)
		}
		w.id(p.Origin)
		w.bytes(p.Nonce, lim.MaxNonce, "nonce")
		w.bytes(p.OriginNonce, lim.MaxNonce, "origin nonce")
		w.hopCount(p.Nu, "nu")
		w.hops(p.Path)
		w.ids(p.ReturnRoute, lim.MaxHops, "return route")
	case KindSessionHello, KindSessionConfirm:
		p, ok := payload.(Session)
		if !ok {
			return nil, kindMismatch(kind, payload)
		}
		w.id(p.Sender)
		w.id(p.Peer)
	default:
		return nil, fmt.Errorf("%w: kind %d", ErrBadKind, kind)
	}
	if w.err != nil {
		return nil, w.err
	}
	frame := make([]byte, 6+len(w.buf))
	frame[0] = Version
	frame[1] = byte(kind)
	binary.BigEndian.PutUint32(frame[2:6], uint32(len(w.buf)))
	copy(frame[6:], w.buf)
	if len(frame) > lim.MaxFrame {
		return nil, fmt.Errorf("%w: frame %d bytes > MaxFrame %d", ErrOverflow, len(frame), lim.MaxFrame)
	}
	return frame, nil
}

// Decode parses a frame under the limits and returns its kind and payload.
// Every returned byte slice is a fresh copy — nothing aliases frame. The
// body must be exactly consumed; trailing bytes are ErrOverflow.
func Decode(frame []byte, lim Limits) (int, any, error) {
	if err := lim.Validate(); err != nil {
		return 0, nil, err
	}
	if len(frame) > lim.MaxFrame {
		return 0, nil, fmt.Errorf("%w: frame %d bytes > MaxFrame %d", ErrOverflow, len(frame), lim.MaxFrame)
	}
	if len(frame) < 6 {
		return 0, nil, fmt.Errorf("%w: header needs 6 bytes, have %d", ErrTruncated, len(frame))
	}
	if frame[0] != Version {
		return 0, nil, fmt.Errorf("%w: version %d (want %d)", ErrBadKind, frame[0], Version)
	}
	kind := int(frame[1])
	if kind < KindHello || kind > numKinds {
		return 0, nil, fmt.Errorf("%w: kind %d", ErrBadKind, kind)
	}
	bodyLen := binary.BigEndian.Uint32(frame[2:6])
	if int64(bodyLen) != int64(len(frame)-6) {
		if int64(bodyLen) > int64(len(frame)-6) {
			return 0, nil, fmt.Errorf("%w: body declares %d bytes, %d present", ErrTruncated, bodyLen, len(frame)-6)
		}
		return 0, nil, fmt.Errorf("%w: %d trailing bytes after body", ErrOverflow, len(frame)-6-int(bodyLen))
	}
	r := &reader{buf: frame[6:], lim: lim}
	var payload any
	switch kind {
	case KindHello:
		payload = Hello{Initiator: r.id()}
	case KindConfirm:
		payload = Confirm{Responder: r.id(), Initiator: r.id()}
	case KindAuth1, KindAuth2:
		p := Auth{Sender: r.id(), Peer: r.id()}
		p.Nonce = r.bytes(lim.MaxNonce, "nonce")
		p.MAC = r.bytes(lim.MaxMAC, "mac")
		payload = p
	case KindMNDPRequest:
		p := MNDPRequest{Nonce: r.bytes(lim.MaxNonce, "nonce")}
		p.Nu = r.hopCount("nu")
		p.Hops = r.hops()
		p.HasOriginPos = r.bool()
		if p.HasOriginPos {
			p.OriginPosX = r.f64()
			p.OriginPosY = r.f64()
		}
		payload = p
	case KindMNDPResponse:
		p := MNDPResponse{Origin: r.id()}
		p.Nonce = r.bytes(lim.MaxNonce, "nonce")
		p.OriginNonce = r.bytes(lim.MaxNonce, "origin nonce")
		p.Nu = r.hopCount("nu")
		p.Path = r.hops()
		p.ReturnRoute = r.ids(lim.MaxHops, "return route")
		payload = p
	case KindSessionHello, KindSessionConfirm:
		payload = Session{Sender: r.id(), Peer: r.id()}
	}
	if r.err != nil {
		return 0, nil, r.err
	}
	if len(r.buf) != r.off {
		return 0, nil, fmt.Errorf("%w: %d undeclared bytes after %s payload", ErrOverflow, len(r.buf)-r.off, KindName(kind))
	}
	return kind, payload, nil
}

func kindMismatch(kind int, payload any) error {
	return fmt.Errorf("%w: payload %T does not match kind %s", ErrBadKind, payload, KindName(kind))
}

// writer accumulates a body, carrying the first error.
type writer struct {
	buf []byte
	lim Limits
	err error
}

func (w *writer) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

func (w *writer) id(v ibc.NodeID) {
	w.buf = binary.BigEndian.AppendUint16(w.buf, uint16(v))
}

func (w *writer) bytes(b []byte, cap int, field string) {
	if len(b) > cap || len(b) > math.MaxUint16 {
		w.fail(fmt.Errorf("%w: %s %d bytes > cap %d", ErrOverflow, field, len(b), cap))
		return
	}
	w.buf = binary.BigEndian.AppendUint16(w.buf, uint16(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *writer) ids(v []ibc.NodeID, cap int, field string) {
	if len(v) > cap || len(v) > math.MaxUint16 {
		w.fail(fmt.Errorf("%w: %s %d IDs > cap %d", ErrOverflow, field, len(v), cap))
		return
	}
	w.buf = binary.BigEndian.AppendUint16(w.buf, uint16(len(v)))
	for _, id := range v {
		w.id(id)
	}
}

// hopCount encodes a small non-negative count (hop budgets) as one byte.
func (w *writer) hopCount(v int, field string) {
	if v < 0 || v > 255 {
		w.fail(fmt.Errorf("%w: %s %d outside [0, 255]", ErrOverflow, field, v))
		return
	}
	w.buf = append(w.buf, byte(v))
}

func (w *writer) bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

func (w *writer) f64(v float64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, math.Float64bits(v))
}

func (w *writer) hops(hops []Hop) {
	if len(hops) > w.lim.MaxHops {
		w.fail(fmt.Errorf("%w: %d hops > cap %d", ErrOverflow, len(hops), w.lim.MaxHops))
		return
	}
	w.buf = append(w.buf, byte(len(hops)))
	for _, h := range hops {
		w.id(h.ID)
		w.ids(h.Neighbors, w.lim.MaxNeighbors, "neighbor list")
		w.id(h.Sig.SignerID)
		w.bytes(h.Sig.PubKey, w.lim.MaxSigField, "sig pubkey")
		w.bytes(h.Sig.Cert, w.lim.MaxSigField, "sig cert")
		w.bytes(h.Sig.Sig, w.lim.MaxSigField, "sig bytes")
	}
}

// reader consumes a body, carrying the first error; accessors return zero
// values once failed so decode logic stays linear.
type reader struct {
	buf []byte
	off int
	lim Limits
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) take(n int, field string) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail(fmt.Errorf("%w: %s needs %d bytes, %d left", ErrTruncated, field, n, len(r.buf)-r.off))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) id() ibc.NodeID {
	b := r.take(2, "node ID")
	if b == nil {
		return 0
	}
	return ibc.NodeID(binary.BigEndian.Uint16(b))
}

func (r *reader) u16(field string) int {
	b := r.take(2, field)
	if b == nil {
		return 0
	}
	return int(binary.BigEndian.Uint16(b))
}

func (r *reader) bytes(cap int, field string) []byte {
	n := r.u16(field + " length")
	if r.err != nil {
		return nil
	}
	if n > cap {
		r.fail(fmt.Errorf("%w: %s %d bytes > cap %d", ErrOverflow, field, n, cap))
		return nil
	}
	b := r.take(n, field)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (r *reader) ids(cap int, field string) []ibc.NodeID {
	n := r.u16(field + " count")
	if r.err != nil {
		return nil
	}
	if n > cap {
		r.fail(fmt.Errorf("%w: %s %d IDs > cap %d", ErrOverflow, field, n, cap))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]ibc.NodeID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.id())
	}
	if r.err != nil {
		return nil
	}
	return out
}

func (r *reader) hopCount(field string) int {
	b := r.take(1, field)
	if b == nil {
		return 0
	}
	return int(b[0])
}

func (r *reader) bool() bool {
	b := r.take(1, "bool")
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(fmt.Errorf("%w: bool byte %d not 0/1", ErrBadKind, b[0]))
		return false
	}
}

func (r *reader) f64() float64 {
	b := r.take(8, "float64")
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

func (r *reader) hops() []Hop {
	n := r.hopCount("hop count")
	if r.err != nil {
		return nil
	}
	if n > r.lim.MaxHops {
		r.fail(fmt.Errorf("%w: %d hops > cap %d", ErrOverflow, n, r.lim.MaxHops))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]Hop, 0, n)
	for i := 0; i < n; i++ {
		h := Hop{ID: r.id()}
		h.Neighbors = r.ids(r.lim.MaxNeighbors, "neighbor list")
		h.Sig.SignerID = r.id()
		h.Sig.PubKey = r.bytes(r.lim.MaxSigField, "sig pubkey")
		h.Sig.Cert = r.bytes(r.lim.MaxSigField, "sig cert")
		h.Sig.Sig = r.bytes(r.lim.MaxSigField, "sig bytes")
		out = append(out, h)
	}
	if r.err != nil {
		return nil
	}
	return out
}
