package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/ibc"
)

// samplePayloads returns one representative payload per message kind,
// exercising every field shape (empty and non-empty slices, optional
// position, nested hops).
func samplePayloads() map[int]any {
	sig := ibc.Signature{
		SignerID: 7,
		PubKey:   bytes.Repeat([]byte{0xAA}, 32),
		Cert:     bytes.Repeat([]byte{0xBB}, 64),
		Sig:      bytes.Repeat([]byte{0xCC}, 64),
	}
	return map[int]any{
		KindHello:   Hello{Initiator: 3},
		KindConfirm: Confirm{Responder: 9, Initiator: 3},
		KindAuth1: Auth{
			Sender: 3, Peer: 9,
			Nonce: []byte{1, 2, 3},
			MAC:   bytes.Repeat([]byte{0xDD}, 20),
		},
		KindAuth2: Auth{
			Sender: 9, Peer: 3,
			Nonce: []byte{4, 5, 6},
			MAC:   bytes.Repeat([]byte{0xEE}, 20),
		},
		KindMNDPRequest: MNDPRequest{
			Nonce: []byte{7, 8, 9},
			Nu:    2,
			Hops: []Hop{
				{ID: 3, Neighbors: []ibc.NodeID{1, 2, 9}, Sig: sig},
				{ID: 9, Neighbors: nil, Sig: sig},
			},
			OriginPosX:   123.5,
			OriginPosY:   -77.25,
			HasOriginPos: true,
		},
		KindMNDPResponse: MNDPResponse{
			Origin:      3,
			Nonce:       []byte{10, 11, 12},
			OriginNonce: []byte{7, 8, 9},
			Nu:          2,
			Path:        []Hop{{ID: 12, Neighbors: []ibc.NodeID{9}, Sig: sig}},
			ReturnRoute: []ibc.NodeID{9, 3},
		},
		KindSessionHello:   Session{Sender: 12, Peer: 3},
		KindSessionConfirm: Session{Sender: 3, Peer: 12},
	}
}

// TestRoundTripByteIdentical is the acceptance criterion: every kind
// round-trips encode→decode→re-encode byte-identically with structural
// equality, under both derived and default limits.
func TestRoundTripByteIdentical(t *testing.T) {
	for name, lim := range map[string]Limits{
		"params":  LimitsFromParams(analysis.Defaults()),
		"default": DefaultLimits(),
	} {
		for kind, payload := range samplePayloads() {
			frame, err := Encode(kind, payload, lim)
			if err != nil {
				t.Fatalf("%s: Encode(%s): %v", name, KindName(kind), err)
			}
			gotKind, gotPayload, err := Decode(frame, lim)
			if err != nil {
				t.Fatalf("%s: Decode(%s): %v", name, KindName(kind), err)
			}
			if gotKind != kind {
				t.Fatalf("%s: kind %d != %d", name, gotKind, kind)
			}
			if !reflect.DeepEqual(gotPayload, payload) {
				t.Fatalf("%s: %s payload mismatch:\n got %#v\nwant %#v",
					name, KindName(kind), gotPayload, payload)
			}
			again, err := Encode(gotKind, gotPayload, lim)
			if err != nil {
				t.Fatalf("%s: re-Encode(%s): %v", name, KindName(kind), err)
			}
			if !bytes.Equal(frame, again) {
				t.Fatalf("%s: %s re-encode not byte-identical", name, KindName(kind))
			}
		}
	}
}

// TestDecodeCopiesFields asserts decoded byte fields never alias the input
// frame: mutating the frame after Decode must not change the payload.
func TestDecodeCopiesFields(t *testing.T) {
	lim := DefaultLimits()
	orig := Auth{Sender: 1, Peer: 2, Nonce: []byte{1, 2, 3}, MAC: bytes.Repeat([]byte{9}, 20)}
	frame, err := Encode(KindAuth1, orig, lim)
	if err != nil {
		t.Fatal(err)
	}
	_, payload, err := Decode(frame, lim)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		frame[i] = 0xFF
	}
	got := payload.(Auth)
	if !bytes.Equal(got.Nonce, orig.Nonce) || !bytes.Equal(got.MAC, orig.MAC) {
		t.Fatalf("decoded payload aliases frame buffer: %#v", got)
	}
}

func TestDecodeTruncated(t *testing.T) {
	lim := DefaultLimits()
	for kind, payload := range samplePayloads() {
		frame, err := Encode(kind, payload, lim)
		if err != nil {
			t.Fatal(err)
		}
		// Chop at every prefix length; all must fail with ErrTruncated
		// (short header or short field), never panic or succeed.
		for n := 0; n < len(frame); n++ {
			_, _, err := Decode(frame[:n], lim)
			if err == nil {
				t.Fatalf("%s truncated to %d/%d bytes decoded successfully", KindName(kind), n, len(frame))
			}
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("%s truncated to %d bytes: got %v, want ErrTruncated", KindName(kind), n, err)
			}
		}
	}
}

func TestDecodeErrorTaxonomy(t *testing.T) {
	lim := LimitsFromParams(analysis.Defaults())
	valid, err := Encode(KindAuth1, samplePayloads()[KindAuth1].(Auth), lim)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad version", func(t *testing.T) {
		f := append([]byte(nil), valid...)
		f[0] = 2
		if _, _, err := Decode(f, lim); !errors.Is(err, ErrBadKind) {
			t.Fatalf("got %v, want ErrBadKind", err)
		}
	})
	t.Run("unknown kind", func(t *testing.T) {
		f := append([]byte(nil), valid...)
		f[1] = 200
		if _, _, err := Decode(f, lim); !errors.Is(err, ErrBadKind) {
			t.Fatalf("got %v, want ErrBadKind", err)
		}
	})
	t.Run("kind zero", func(t *testing.T) {
		f := append([]byte(nil), valid...)
		f[1] = 0
		if _, _, err := Decode(f, lim); !errors.Is(err, ErrBadKind) {
			t.Fatalf("got %v, want ErrBadKind", err)
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		f := append(append([]byte(nil), valid...), 0xAB)
		if _, _, err := Decode(f, lim); !errors.Is(err, ErrOverflow) {
			t.Fatalf("got %v, want ErrOverflow", err)
		}
	})
	t.Run("nonce over cap", func(t *testing.T) {
		over := Auth{Sender: 1, Peer: 2, Nonce: bytes.Repeat([]byte{1}, lim.MaxNonce+1), MAC: []byte{1}}
		if _, err := Encode(KindAuth1, over, lim); !errors.Is(err, ErrOverflow) {
			t.Fatalf("Encode: got %v, want ErrOverflow", err)
		}
		// Hand-craft the same overflow on the wire: decode under a tighter
		// limit than the frame was encoded with.
		wide := lim
		wide.MaxNonce = lim.MaxNonce + 8
		frame, err := Encode(KindAuth1, over, wide)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := Decode(frame, lim); !errors.Is(err, ErrOverflow) {
			t.Fatalf("Decode: got %v, want ErrOverflow", err)
		}
	})
	t.Run("hop count over cap", func(t *testing.T) {
		sig := ibc.Signature{SignerID: 1, PubKey: []byte{1}, Cert: []byte{2}, Sig: []byte{3}}
		hops := make([]Hop, lim.MaxHops+1)
		for i := range hops {
			hops[i] = Hop{ID: ibc.NodeID(i), Sig: sig}
		}
		req := MNDPRequest{Nonce: []byte{1}, Nu: 2, Hops: hops}
		if _, err := Encode(KindMNDPRequest, req, lim); !errors.Is(err, ErrOverflow) {
			t.Fatalf("Encode: got %v, want ErrOverflow", err)
		}
	})
	t.Run("frame over MaxFrame", func(t *testing.T) {
		tiny := lim
		tiny.MaxFrame = 8
		if _, _, err := Decode(valid, tiny); !errors.Is(err, ErrOverflow) {
			t.Fatalf("got %v, want ErrOverflow", err)
		}
	})
	t.Run("kind-payload mismatch", func(t *testing.T) {
		if _, err := Encode(KindHello, Session{Sender: 1, Peer: 2}, lim); !errors.Is(err, ErrBadKind) {
			t.Fatalf("got %v, want ErrBadKind", err)
		}
	})
	t.Run("bad bool byte", func(t *testing.T) {
		req := MNDPRequest{Nonce: []byte{1}, Nu: 1}
		frame, err := Encode(KindMNDPRequest, req, lim)
		if err != nil {
			t.Fatal(err)
		}
		frame[len(frame)-1] = 7 // HasOriginPos flag is the last body byte
		if _, _, err := Decode(frame, lim); !errors.Is(err, ErrBadKind) {
			t.Fatalf("got %v, want ErrBadKind", err)
		}
	})
}

func TestLimitsFromParams(t *testing.T) {
	lim := LimitsFromParams(analysis.Defaults())
	if err := lim.Validate(); err != nil {
		t.Fatal(err)
	}
	if lim.MaxNonce != 3 { // 20 bits → 3 bytes
		t.Fatalf("MaxNonce = %d, want 3", lim.MaxNonce)
	}
	if lim.MaxMAC != 20 { // 160 bits → 20 bytes
		t.Fatalf("MaxMAC = %d, want 20", lim.MaxMAC)
	}
	if lim.MaxHops < 2*analysis.Defaults().Nu {
		t.Fatalf("MaxHops = %d too small for Nu", lim.MaxHops)
	}
	if lim.MaxNeighbors > 1<<16 {
		t.Fatalf("MaxNeighbors = %d exceeds u16 count", lim.MaxNeighbors)
	}
}

func TestValidateRejectsBadLimits(t *testing.T) {
	for _, bad := range []Limits{
		{},
		{MaxFrame: 1024, MaxNonce: 0, MaxMAC: 1, MaxSigField: 1, MaxNeighbors: 1, MaxHops: 1},
		{MaxFrame: 1024, MaxNonce: 1, MaxMAC: 1, MaxSigField: 1, MaxNeighbors: 1, MaxHops: 300},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("Validate(%+v) accepted bad limits", bad)
		}
	}
}
