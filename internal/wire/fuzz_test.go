package wire

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/analysis"
)

// FuzzDecodeFrame drives arbitrary bytes through Decode under the derived
// limits. Properties: no panic, every failure maps into the typed error
// taxonomy, and every accepted frame re-encodes byte-identically
// (canonical form) and decodes to the same payload again.
func FuzzDecodeFrame(f *testing.F) {
	lim := LimitsFromParams(analysis.Defaults())
	// Seed with one valid frame per kind, plus truncations and header
	// mutations of one of them, so the fuzzer starts past the header.
	for kind, payload := range samplePayloads() {
		frame, err := Encode(kind, payload, lim)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)/2])
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version, KindHello, 0, 0, 0, 0})
	f.Add([]byte{Version, KindAuth1, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, frame []byte) {
		kind, payload, err := Decode(frame, lim)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrOverflow) && !errors.Is(err, ErrBadKind) {
				t.Fatalf("error outside taxonomy: %v", err)
			}
			return
		}
		again, err := Encode(kind, payload, lim)
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		if !bytes.Equal(frame, again) {
			t.Fatalf("accepted frame not canonical:\n in  %x\n out %x", frame, again)
		}
		kind2, payload2, err := Decode(again, lim)
		if err != nil || kind2 != kind {
			t.Fatalf("re-decode failed: kind %d vs %d, err %v", kind2, kind, err)
		}
		_ = payload2
	})
}
