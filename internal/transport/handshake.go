package transport

import (
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"sort"

	"repro/internal/codepool"
)

// The handshake authenticates a peer's code-slot identity. When the
// jrsnd-authority provisions a deployment slot it hands the node its
// spread-code set; NodeKey compresses that assignment into a per-node
// key, and the handshake MACs prove the speaker holds the assignment the
// authority's registry records for the claimed node ID. A datagram
// source that cannot produce the MAC never becomes a peer — it is
// counted and dropped.
//
// Threat model: this binds a peer to an authority-issued identity and
// rejects accidental cross-deployment traffic and casual spoofing; it is
// not a full key exchange (no session encryption, and a recorded HELLO
// can be replayed toward a responder — the initiator side is protected
// by its fresh nonce). The paper's identity-based crypto runs at the
// protocol layer above; see docs/transport.md §3 for the split and the
// hardening path.

// ErrBadMAC: the handshake MAC did not verify against the directory's
// record for the claimed node ID.
var ErrBadMAC = errors.New("transport: handshake MAC verification failed")

// Directory resolves a node ID to its handshake key. The daemon backs it
// with the authority's GET /v1/node (plus a cache); tests use a
// StaticDirectory.
type Directory interface {
	NodeKey(ctx context.Context, node int) ([]byte, error)
}

// StaticDirectory is a fixed in-memory Directory for tests and
// single-process deployments.
type StaticDirectory map[int][]byte

// NodeKey returns the stored key; unknown nodes resolve to an error.
func (d StaticDirectory) NodeKey(_ context.Context, node int) ([]byte, error) {
	key, ok := d[node]
	if !ok {
		return nil, errors.New("transport: node not in static directory")
	}
	return key, nil
}

// NodeKey derives the handshake key of a provisioned node from its
// authority assignment: SHA-256 over a domain tag, the node ID, and the
// sorted code set. Both the node itself (from its provision response)
// and a verifier (from the authority's assignment registry) compute the
// same bytes.
func NodeKey(node int, codes []codepool.CodeID) []byte {
	sorted := make([]codepool.CodeID, len(codes))
	copy(sorted, codes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	h := sha256.New()
	h.Write([]byte("jrsnd-transport-key-v1"))
	var be [4]byte
	binary.BigEndian.PutUint32(be[:], uint32(node))
	h.Write(be[:])
	for _, c := range sorted {
		binary.BigEndian.PutUint32(be[:], uint32(c))
		h.Write(be[:])
	}
	return h.Sum(nil)
}

// macTranscript computes HMAC-SHA256(key, label || parties || nonces).
func macTranscript(key []byte, label string, parties []int, nonces ...[]byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte(label))
	var be [4]byte
	for _, p := range parties {
		binary.BigEndian.PutUint32(be[:], uint32(p))
		mac.Write(be[:])
	}
	for _, n := range nonces {
		binary.BigEndian.PutUint32(be[:], uint32(len(n)))
		mac.Write(be[:])
		mac.Write(n)
	}
	return mac.Sum(nil)
}

// helloMAC authenticates a dgHello: the initiator proves its code-slot
// key over (sender, nonce).
func helloMAC(key []byte, sender int, nonce []byte) []byte {
	return macTranscript(key, "jrsnd-hs1", []int{sender}, nonce)
}

// ackMAC authenticates a dgAck: the responder proves its code-slot key
// over the full transcript (responder, initiator, both nonces).
func ackMAC(key []byte, responder, initiator int, initiatorNonce, responderNonce []byte) []byte {
	return macTranscript(key, "jrsnd-hs2", []int{responder, initiator}, initiatorNonce, responderNonce)
}

// verifyMAC compares in constant time.
func verifyMAC(want, got []byte) bool { return hmac.Equal(want, got) }
