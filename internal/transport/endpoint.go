package transport

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Service-level error taxonomy.
var (
	// ErrClosed: the endpoint has been shut down.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrPeersFull: registration refused because MaxPeers are connected.
	ErrPeersFull = errors.New("transport: peer table full")
	// ErrNoPeer: the destination node is not a registered peer.
	ErrNoPeer = errors.New("transport: no such peer")
)

// Config configures an Endpoint. Node, Key, and Directory are required;
// everything else has a deployable default.
type Config struct {
	// Node is the local node ID (the authority-assigned deployment slot).
	Node int
	// Key is the local handshake key, NodeKey(Node, provisioned codes).
	Key []byte
	// Directory resolves peer IDs to handshake keys (the authority's
	// assignment registry, or a StaticDirectory in tests).
	Directory Directory
	// Limits bounds frame sizes, as on the simulated path; the zero value
	// selects wire.DefaultLimits.
	Limits wire.Limits
	// MaxPeers caps the peer table; registrations past it are refused and
	// counted. 0 means 64.
	MaxPeers int
	// QueueLen is the per-peer outbound queue depth; a full queue drops
	// (and counts) instead of blocking. 0 means 128.
	QueueLen int
	// IdleAfter reaps a peer silent this long. 0 means 30 s.
	IdleAfter time.Duration
	// PingEvery probes a quiet peer to keep live links from being reaped.
	// 0 means IdleAfter/3.
	PingEvery time.Duration
	// HandshakeTimeout bounds a directory lookup and garbage-collects
	// pending dials. 0 means 5 s.
	HandshakeTimeout time.Duration
	// MaxInflightVerify bounds concurrent handshake verifications (each
	// may hit the directory over the network); excess handshakes are
	// dropped and counted under the ratelimit reason. 0 means 32.
	MaxInflightVerify int
	// OnFrame, when set, receives every frame delivered by an
	// authenticated peer. The frame is the receiver's copy. Called from
	// the read loop: keep it fast, hand off anything slow.
	OnFrame func(from int, frame []byte)
	// OnPeerChange, when set, is told when a peer registers (up) or is
	// removed (down).
	OnPeerChange func(peer int, up bool)
	// Metrics receives the transport instruments; nil disables them.
	Metrics *metrics.Registry
	// Trace, when set, receives peer-lifecycle and drop events,
	// timestamped in seconds since the endpoint started.
	Trace trace.Sink

	// now is the wall clock, injectable for reap tests.
	now func() time.Time
}

// pendingDial is one outstanding initiator-side handshake.
type pendingDial struct {
	addr  *net.UDPAddr
	nonce []byte
	at    time.Time
}

// Endpoint owns one UDP socket and the peer manager over it: a bounded
// pooled read loop, authenticated peer registration capped at MaxPeers,
// per-peer send loops, broadcast fan-out, and idle-peer reaping.
type Endpoint struct {
	cfg    Config
	limits wire.Limits

	maxPeers  int
	queueLen  int
	idleAfter time.Duration
	pingEvery time.Duration
	hsTimeout time.Duration
	maxDgram  int

	conn  *net.UDPConn
	start time.Time
	now   func() time.Time
	sink  trace.Sink
	m     *transportMetrics
	bufs  sync.Pool

	ctx       context.Context
	cancel    context.CancelFunc
	done      chan struct{}
	wg        sync.WaitGroup
	verifySem chan struct{}

	txCount atomic.Uint64
	rxCount atomic.Uint64

	mu     sync.Mutex
	closed bool
	peers  map[int]*peer
	byAddr map[string]*peer
	dials  map[string]*pendingDial
}

// Listen binds a UDP socket on addr ("127.0.0.1:0" for an ephemeral
// loopback port) and starts the endpoint's read and reap loops.
func Listen(addr string, cfg Config) (*Endpoint, error) {
	if len(cfg.Key) == 0 {
		return nil, fmt.Errorf("transport: Key must be set (derive it with NodeKey)")
	}
	if cfg.Directory == nil {
		return nil, fmt.Errorf("transport: Directory must be set")
	}
	if cfg.Node < 0 {
		return nil, fmt.Errorf("transport: Node %d must be >= 0", cfg.Node)
	}
	limits := cfg.Limits
	if limits == (wire.Limits{}) {
		limits = wire.DefaultLimits()
	}
	if err := limits.Validate(); err != nil {
		return nil, err
	}
	e := &Endpoint{
		cfg:       cfg,
		limits:    limits,
		maxPeers:  cfg.MaxPeers,
		queueLen:  cfg.QueueLen,
		idleAfter: cfg.IdleAfter,
		pingEvery: cfg.PingEvery,
		hsTimeout: cfg.HandshakeTimeout,
		maxDgram:  maxDatagram(limits),
		now:       cfg.now,
		sink:      trace.Multi(cfg.Trace),
		m:         newTransportMetrics(cfg.Metrics),
		done:      make(chan struct{}),
		peers:     map[int]*peer{},
		byAddr:    map[string]*peer{},
		dials:     map[string]*pendingDial{},
	}
	if e.maxPeers <= 0 {
		e.maxPeers = 64
	}
	if e.queueLen <= 0 {
		e.queueLen = 128
	}
	if e.idleAfter <= 0 {
		e.idleAfter = 30 * time.Second
	}
	if e.pingEvery <= 0 {
		e.pingEvery = e.idleAfter / 3
	}
	if e.hsTimeout <= 0 {
		e.hsTimeout = 5 * time.Second
	}
	inflight := cfg.MaxInflightVerify
	if inflight <= 0 {
		inflight = 32
	}
	e.verifySem = make(chan struct{}, inflight)
	if e.now == nil {
		e.now = time.Now //jrsnd:allow wallclock the transport is the real path: peer liveness and handshake expiry follow the machine clock by design (injectable in tests)
	}
	e.bufs.New = func() any { return make([]byte, e.maxDgram) }

	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	if e.conn, err = net.ListenUDP("udp", ua); err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	e.start = e.now()
	e.ctx, e.cancel = context.WithCancel(context.Background())
	e.wg.Add(2)
	go e.readLoop()
	go e.reapLoop()
	return e, nil
}

// Addr returns the bound UDP address.
func (e *Endpoint) Addr() string { return e.conn.LocalAddr().String() }

// Node returns the local node ID.
func (e *Endpoint) Node() int { return e.cfg.Node }

// TxDatagrams and RxDatagrams return the datagram counters (also exposed
// as jrsnd_node_tx/rx_datagrams_total when a registry is configured).
func (e *Endpoint) TxDatagrams() uint64 { return e.txCount.Load() }

// RxDatagrams returns the received-datagram counter.
func (e *Endpoint) RxDatagrams() uint64 { return e.rxCount.Load() }

// Peers returns the registered peer IDs, sorted.
func (e *Endpoint) Peers() []int {
	e.mu.Lock()
	out := make([]int, 0, len(e.peers))
	for id := range e.peers {
		out = append(out, id)
	}
	e.mu.Unlock()
	sort.Ints(out)
	return out
}

// PeerCount returns the size of the peer table.
func (e *Endpoint) PeerCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.peers)
}

// maxFrame is the largest wire frame one datagram can carry: the wire
// limit, additionally capped by the UDP payload ceiling (the default
// wire MaxFrame is larger than a datagram; an engine that emits such a
// frame gets an explicit ErrOverflow, not silent fragmentation).
func (e *Endpoint) maxFrame() int { return e.maxDgram - headerLen }

// since timestamps trace events in seconds since the endpoint started.
func (e *Endpoint) since() float64 { return e.now().Sub(e.start).Seconds() }

// emit forwards a trace event to the configured sink, if any.
func (e *Endpoint) emit(kind trace.Kind, peerID int, detail string) {
	if e.sink == nil {
		return
	}
	e.sink.Emit(trace.Event{At: e.since(), Kind: kind, Node: e.cfg.Node, Peer: peerID, Detail: detail})
}

// drop counts and traces one rejected datagram.
func (e *Endpoint) drop(reason string, peerID int, detail string) {
	e.m.onDrop(reason)
	if e.sink != nil {
		e.emit(trace.KindDrop, peerID, reason+": "+detail)
	}
}

// Dial initiates a handshake toward addr. It is idempotent: an address
// that already belongs to a registered peer is left alone, and repeated
// dials of a pending address re-send the HELLO with the same nonce (UDP
// loses datagrams; the daemon re-dials from its beacon loop until the
// peer registers).
func (e *Endpoint) Dial(addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	nonce := make([]byte, nonceSize)
	if _, err := rand.Read(nonce); err != nil {
		return fmt.Errorf("transport: nonce: %w", err)
	}
	key := ua.String()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if p := e.byAddr[key]; p != nil && !p.removed {
		e.mu.Unlock()
		return nil // already an authenticated peer
	}
	pd := e.dials[key]
	if pd == nil {
		pd = &pendingDial{addr: ua, nonce: nonce}
		e.dials[key] = pd
	}
	pd.at = e.now()
	hello := helloBody{Nonce: pd.nonce, MAC: helloMAC(e.cfg.Key, e.cfg.Node, pd.nonce)}
	e.mu.Unlock()
	e.writeTo(ua, encodeEnvelope(dgHello, e.cfg.Node, encodeHello(hello)))
	return nil
}

// Send transmits one wire frame to a registered peer. A full outbound
// queue drops the datagram (counted under the ratelimit reason) rather
// than blocking — datagram semantics all the way down.
func (e *Endpoint) Send(to int, frame []byte) error {
	if len(frame) > e.maxFrame() {
		return fmt.Errorf("%w: frame of %d bytes (cap %d)", ErrOverflow, len(frame), e.maxFrame())
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	p := e.peers[to]
	e.mu.Unlock()
	if p == nil {
		return fmt.Errorf("%w: node %d", ErrNoPeer, to)
	}
	if !p.enqueue(encodeEnvelope(dgFrame, e.cfg.Node, frame)) {
		e.drop(dropRatelimit, to, "outbound queue full")
	}
	return nil
}

// Broadcast fans one wire frame out to every registered peer and returns
// how many peers it was queued for.
func (e *Endpoint) Broadcast(frame []byte) (int, error) {
	if len(frame) > e.maxFrame() {
		return 0, fmt.Errorf("%w: frame of %d bytes (cap %d)", ErrOverflow, len(frame), e.maxFrame())
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, ErrClosed
	}
	targets := make([]*peer, 0, len(e.peers))
	for _, p := range e.peers {
		targets = append(targets, p)
	}
	e.mu.Unlock()
	buf := encodeEnvelope(dgFrame, e.cfg.Node, frame) // one encode, shared read-only by every send loop
	sent := 0
	for _, p := range targets {
		if p.enqueue(buf) {
			sent++
		} else {
			e.drop(dropRatelimit, p.id, "outbound queue full")
		}
	}
	return sent, nil
}

// Close tears the endpoint down: the socket closes, every peer loop and
// the read/reap loops exit, and in-flight handshake verifications abort.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	for _, p := range e.peers {
		e.removeLocked(p)
	}
	e.mu.Unlock()
	close(e.done)
	e.cancel()
	err := e.conn.Close()
	e.wg.Wait()
	e.m.onPeers(0)
	return err
}

// Bye broadcasts a graceful-leave datagram so peers remove us now
// instead of waiting out the idle reaper. Call before Close.
func (e *Endpoint) Bye() {
	e.mu.Lock()
	targets := make([]*peer, 0, len(e.peers))
	for _, p := range e.peers {
		targets = append(targets, p)
	}
	e.mu.Unlock()
	buf := encodeEnvelope(dgBye, e.cfg.Node, nil)
	for _, p := range targets {
		e.writeTo(p.addr, buf) // direct: the queues are about to die
	}
}

// writeTo transmits one datagram, counting successful writes.
func (e *Endpoint) writeTo(addr *net.UDPAddr, buf []byte) {
	if _, err := e.conn.WriteToUDP(buf, addr); err == nil {
		e.txCount.Add(1)
		e.m.onTx()
	}
}

// sendLoop drains one peer's outbound queue until the peer is removed.
func (e *Endpoint) sendLoop(p *peer) {
	defer e.wg.Done()
	for {
		select {
		case buf := <-p.out:
			e.writeTo(p.addr, buf)
		case <-p.done:
			return
		}
	}
}

// readLoop receives datagrams into pooled buffers. Buffers are capped at
// maxDgram: an oversized datagram is truncated by the kernel and then
// rejected by the frame-length check, so hostile sizes never drive
// allocation.
func (e *Endpoint) readLoop() {
	defer e.wg.Done()
	for {
		buf := e.bufs.Get().([]byte)
		n, src, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			e.bufs.Put(buf) //nolint:staticcheck // fixed-size buffer, pooling by design
			select {
			case <-e.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		e.rxCount.Add(1)
		e.m.onRx()
		e.processDatagram(src, buf[:n])
		e.bufs.Put(buf) //nolint:staticcheck // fixed-size buffer, pooling by design
	}
}

// processDatagram dispatches one received datagram. data aliases a
// pooled buffer: anything that outlives this call is copied first (the
// handshake decoders copy their fields; the frame path copies the body).
func (e *Endpoint) processDatagram(src *net.UDPAddr, data []byte) {
	env, err := decodeEnvelope(data)
	if err != nil {
		e.drop(dropDecode, -1, err.Error())
		return
	}
	switch env.kind {
	case dgHello:
		e.onHello(src, env)
	case dgAck:
		e.onAck(src, env)
	case dgFrame:
		e.onWireFrame(src, env)
	case dgPing, dgPong, dgBye:
		e.onControl(src, env)
	}
}

// onHello handles a handshake initiation: verify the claimed code-slot
// identity against the directory (bounded, off the read loop), register
// the peer, and answer with an ACK proving our own identity.
func (e *Endpoint) onHello(src *net.UDPAddr, env envelope) {
	h, err := decodeHello(env.body)
	if err != nil {
		e.drop(dropDecode, env.sender, err.Error())
		return
	}
	e.verify(env.sender, func(key []byte) {
		if !verifyMAC(helloMAC(key, env.sender, h.Nonce), h.MAC) {
			e.drop(dropUnknown, env.sender, "HELLO MAC rejected")
			return
		}
		if _, err := e.register(env.sender, src); err != nil {
			return
		}
		myNonce := make([]byte, nonceSize)
		if _, err := rand.Read(myNonce); err != nil {
			return
		}
		ack := ackBody{
			Echo:  h.Nonce,
			Nonce: myNonce,
			MAC:   ackMAC(e.cfg.Key, e.cfg.Node, env.sender, h.Nonce, myNonce),
		}
		e.writeTo(src, encodeEnvelope(dgAck, e.cfg.Node, encodeAck(ack)))
	})
}

// onAck completes an initiator-side handshake: the ACK must answer a
// pending dial with the dial's fresh nonce, and its MAC must verify
// against the responder's directory record.
func (e *Endpoint) onAck(src *net.UDPAddr, env envelope) {
	a, err := decodeAck(env.body)
	if err != nil {
		e.drop(dropDecode, env.sender, err.Error())
		return
	}
	key := src.String()
	e.mu.Lock()
	pd := e.dials[key]
	e.mu.Unlock()
	if pd == nil || !bytes.Equal(pd.nonce, a.Echo) {
		e.drop(dropUnknown, env.sender, "unsolicited or stale ACK")
		return
	}
	e.verify(env.sender, func(dirKey []byte) {
		if !verifyMAC(ackMAC(dirKey, env.sender, e.cfg.Node, pd.nonce, a.Nonce), a.MAC) {
			e.drop(dropUnknown, env.sender, "ACK MAC rejected")
			return
		}
		e.mu.Lock()
		delete(e.dials, key)
		e.mu.Unlock()
		_, _ = e.register(env.sender, src)
	})
}

// onWireFrame delivers a frame from a registered peer; anything else is
// counted, not parsed.
func (e *Endpoint) onWireFrame(src *net.UDPAddr, env envelope) {
	e.mu.Lock()
	p := e.byAddr[src.String()]
	e.mu.Unlock()
	if p == nil || p.id != env.sender {
		e.drop(dropUnknown, env.sender, "frame from unregistered source "+src.String())
		return
	}
	if len(env.body) > e.maxFrame() {
		e.drop(dropDecode, env.sender, fmt.Sprintf("frame of %d bytes exceeds cap %d", len(env.body), e.maxFrame()))
		return
	}
	p.touch(e.now().UnixNano())
	if e.cfg.OnFrame != nil {
		frame := make([]byte, len(env.body))
		copy(frame, env.body)
		e.cfg.OnFrame(p.id, frame)
	}
}

// onControl handles keepalive and leave datagrams from registered peers.
func (e *Endpoint) onControl(src *net.UDPAddr, env envelope) {
	e.mu.Lock()
	p := e.byAddr[src.String()]
	e.mu.Unlock()
	if p == nil || p.id != env.sender {
		if env.kind != dgBye { // an unknown BYE is vacuously honored
			e.drop(dropUnknown, env.sender, dgKindName(env.kind)+" from unregistered source")
		}
		return
	}
	p.touch(e.now().UnixNano())
	switch env.kind {
	case dgPing:
		p.enqueue(encodeEnvelope(dgPong, e.cfg.Node, nil))
	case dgBye:
		e.removePeer(p, "peer said goodbye")
	}
}

// verify runs fn with the directory key of node, on a bounded worker:
// each verification may cost a network round trip to the authority, so
// concurrency is capped and excess handshakes are dropped (ratelimit) —
// a handshake flood cannot pile up goroutines.
func (e *Endpoint) verify(node int, fn func(key []byte)) {
	select {
	case e.verifySem <- struct{}{}:
	default:
		e.drop(dropRatelimit, node, "handshake verification backlog full")
		return
	}
	e.wg.Add(1)
	go func() {
		defer func() { <-e.verifySem; e.wg.Done() }()
		ctx, cancel := context.WithTimeout(e.ctx, e.hsTimeout)
		defer cancel()
		key, err := e.cfg.Directory.NodeKey(ctx, node)
		if err != nil {
			e.drop(dropUnknown, node, "directory lookup: "+err.Error())
			return
		}
		fn(key)
	}()
}

// register adds (or refreshes) an authenticated peer. A re-handshake
// from the same address refreshes liveness; one from a new address —
// the peer restarted on a different port — replaces the stale entry.
func (e *Endpoint) register(id int, addr *net.UDPAddr) (*peer, error) {
	nowNanos := e.now().UnixNano()
	key := addr.String()
	var replaced *peer
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if existing := e.peers[id]; existing != nil {
		if existing.key == key {
			existing.touch(nowNanos)
			e.mu.Unlock()
			return existing, nil
		}
		e.removeLocked(existing)
		replaced = existing
	}
	if len(e.peers) >= e.maxPeers {
		e.mu.Unlock()
		e.drop(dropRatelimit, id, fmt.Sprintf("peer table full (%d)", e.maxPeers))
		return nil, ErrPeersFull
	}
	p := &peer{
		id:   id,
		addr: addr,
		key:  key,
		out:  make(chan []byte, e.queueLen),
		done: make(chan struct{}),
	}
	p.touch(nowNanos)
	e.peers[id] = p
	e.byAddr[key] = p
	count := len(e.peers)
	e.wg.Add(1)
	e.mu.Unlock()

	go e.sendLoop(p)
	e.m.onPeers(count)
	e.m.onHandshake()
	if replaced != nil {
		e.emit(trace.KindExpiry, id, "peer re-registered from "+key+" (stale entry replaced)")
	}
	e.emit(trace.KindDiscovery, id, "peer authenticated at "+key)
	if e.cfg.OnPeerChange != nil {
		if replaced != nil {
			e.cfg.OnPeerChange(id, false)
		}
		e.cfg.OnPeerChange(id, true)
	}
	return p, nil
}

// removeLocked detaches a peer from the tables and stops its send loop.
// Caller holds mu; idempotent via p.removed.
func (e *Endpoint) removeLocked(p *peer) bool {
	if p.removed {
		return false
	}
	p.removed = true
	if e.peers[p.id] == p {
		delete(e.peers, p.id)
	}
	if e.byAddr[p.key] == p {
		delete(e.byAddr, p.key)
	}
	close(p.done)
	return true
}

// removePeer is the clean removal path: detach, update the gauge, trace,
// and notify.
func (e *Endpoint) removePeer(p *peer, reason string) {
	e.mu.Lock()
	removed := e.removeLocked(p)
	count := len(e.peers)
	e.mu.Unlock()
	if !removed {
		return
	}
	e.m.onPeers(count)
	e.emit(trace.KindExpiry, p.id, "peer removed: "+reason)
	if e.cfg.OnPeerChange != nil {
		e.cfg.OnPeerChange(p.id, false)
	}
}

// reapLoop periodically pings quiet peers, removes dead ones, and
// garbage-collects expired pending dials.
func (e *Endpoint) reapLoop() {
	defer e.wg.Done()
	period := e.pingEvery / 2
	if period <= 0 {
		period = e.pingEvery
	}
	ticker := time.NewTicker(period) //jrsnd:allow wallclock peer liveness on the socket path is wall-clock by nature; the reap decision itself is tested with an injected clock
	defer ticker.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-ticker.C:
			e.reap()
		}
	}
}

// reap applies the liveness policy once (called from reapLoop; tests
// call it directly with an injected clock).
func (e *Endpoint) reap() {
	now := e.now()
	nowNanos := now.UnixNano()
	var dead, quiet []*peer
	e.mu.Lock()
	for _, p := range e.peers {
		switch idle := p.idleNanos(nowNanos); {
		case idle > int64(e.idleAfter):
			dead = append(dead, p)
		case idle > int64(e.pingEvery):
			quiet = append(quiet, p)
		}
	}
	for key, pd := range e.dials {
		if now.Sub(pd.at) > e.hsTimeout {
			delete(e.dials, key)
		}
	}
	e.mu.Unlock()
	for _, p := range dead {
		e.removePeer(p, fmt.Sprintf("idle past %v", e.idleAfter))
	}
	if len(quiet) > 0 {
		ping := encodeEnvelope(dgPing, e.cfg.Node, nil)
		for _, p := range quiet {
			p.enqueue(ping)
		}
	}
}
