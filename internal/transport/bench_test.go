package transport

import (
	"testing"
	"time"
)

// Loopback benchmarks, gated by jrsnd-benchgate (suite "transport",
// baseline BENCH_transport.json). These measure the full socket path —
// encode, kernel round trip, dispatch — so they bound what any consumer
// of the transport can hope for on one machine.

// benchPair returns two mutually-registered endpoints.
func benchPair(b *testing.B, onFrame0, onFrame1 func(from int, frame []byte)) (*Endpoint, *Endpoint) {
	b.Helper()
	dir := StaticDirectory{0: testKey(0), 1: testKey(1)}
	e0, err := Listen("127.0.0.1:0", Config{Node: 0, Key: testKey(0), Directory: dir, OnFrame: onFrame0})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e0.Close() })
	e1, err := Listen("127.0.0.1:0", Config{Node: 1, Key: testKey(1), Directory: dir, OnFrame: onFrame1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e1.Close() })
	if err := e0.Dial(e1.Addr()); err != nil {
		b.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e0.PeerCount() != 1 || e1.PeerCount() != 1 {
		if time.Now().After(deadline) {
			b.Fatal("handshake did not complete")
		}
		time.Sleep(time.Millisecond)
	}
	return e0, e1
}

// BenchmarkLoopbackRoundTrip: node 0 sends a frame to node 1, node 1
// echoes it back; one iteration is the full there-and-back — two
// datagrams through the kernel plus both dispatch paths. UDP may drop
// even on loopback, so a lost echo is retransmitted after a timeout
// rather than hanging the benchmark.
func BenchmarkLoopbackRoundTrip(b *testing.B) {
	echoed := make(chan struct{}, 1)
	var e0, e1 *Endpoint
	e0, e1 = benchPair(b,
		func(from int, frame []byte) {
			select {
			case echoed <- struct{}{}:
			default:
			}
		},
		func(from int, frame []byte) { _ = e1.Send(0, frame) },
	)
	frame := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e0.Send(1, frame); err != nil {
			b.Fatal(err)
		}
		for done := false; !done; {
			select {
			case <-echoed:
				done = true
			case <-time.After(200 * time.Millisecond):
				if err := e0.Send(1, frame); err != nil { // the datagram was lost; go again
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkBroadcastFanOut: one broadcast to 8 registered peers; an
// iteration completes when every peer has received the frame.
func BenchmarkBroadcastFanOut(b *testing.B) {
	const peers = 8
	dir := StaticDirectory{0: testKey(0)}
	for i := 1; i <= peers; i++ {
		dir[i] = testKey(i)
	}
	rx := make(chan struct{}, peers*4)
	hub, err := Listen("127.0.0.1:0", Config{Node: 0, Key: testKey(0), Directory: dir, MaxPeers: peers})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { hub.Close() })
	for i := 1; i <= peers; i++ {
		e, err := Listen("127.0.0.1:0", Config{
			Node: i, Key: testKey(i), Directory: dir,
			OnFrame: func(from int, frame []byte) { rx <- struct{}{} },
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { e.Close() })
		if err := e.Dial(hub.Addr()); err != nil {
			b.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for hub.PeerCount() != peers {
		if time.Now().After(deadline) {
			b.Fatalf("only %d/%d peers registered", hub.PeerCount(), peers)
		}
		time.Sleep(time.Millisecond)
	}
	frame := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sent, err := hub.Broadcast(frame)
		if err != nil {
			b.Fatal(err)
		}
		for got := 0; got < sent; {
			select {
			case <-rx:
				got++
			case <-time.After(200 * time.Millisecond):
				got = sent // drops happen under load; don't wait on lost datagrams
			}
		}
	}
}
