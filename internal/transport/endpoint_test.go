package transport

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codepool"
	"repro/internal/metrics"
)

// Live-socket coverage on loopback: handshake and mutual registration,
// frame delivery, fan-out, the reject paths (unknown source, bad MAC,
// full table), reaping under an injected clock, and exposition-correct
// metrics.

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// collector accumulates delivered frames.
type collector struct {
	mu     sync.Mutex
	frames []string
	from   []int
}

func (c *collector) add(from int, frame []byte) {
	c.mu.Lock()
	c.frames = append(c.frames, string(frame))
	c.from = append(c.from, from)
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

// testCluster spins up n endpoints sharing one static directory.
func testCluster(t *testing.T, n int, mutate func(node int, cfg *Config)) []*Endpoint {
	t.Helper()
	dir := StaticDirectory{}
	for i := 0; i < n; i++ {
		dir[i] = testKey(i)
	}
	eps := make([]*Endpoint, n)
	for i := 0; i < n; i++ {
		cfg := Config{Node: i, Key: testKey(i), Directory: dir}
		if mutate != nil {
			mutate(i, &cfg)
		}
		e, err := Listen("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		eps[i] = e
	}
	return eps
}

// testKey derives each node's handshake key from a distinct fake code
// assignment, the same derivation both sides of a real deployment use.
func testKey(node int) []byte {
	return NodeKey(node, []codepool.CodeID{codepool.CodeID(node*2 + 1), codepool.CodeID(node*2 + 2)})
}

func TestHandshakeRegistersBothSides(t *testing.T) {
	eps := testCluster(t, 2, nil)
	if err := eps[0].Dial(eps[1].Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "mutual registration", func() bool {
		return eps[0].PeerCount() == 1 && eps[1].PeerCount() == 1
	})
	if got := eps[0].Peers(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("node 0 peers = %v, want [1]", got)
	}
	if got := eps[1].Peers(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("node 1 peers = %v, want [0]", got)
	}
	// Dial is idempotent once registered.
	if err := eps[0].Dial(eps[1].Addr()); err != nil {
		t.Fatal(err)
	}
}

func TestFrameDeliveryBothDirections(t *testing.T) {
	var c0, c1 collector
	eps := testCluster(t, 2, func(node int, cfg *Config) {
		if node == 0 {
			cfg.OnFrame = c0.add
		} else {
			cfg.OnFrame = c1.add
		}
	})
	if err := eps[0].Dial(eps[1].Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "mutual registration", func() bool {
		return eps[0].PeerCount() == 1 && eps[1].PeerCount() == 1
	})
	if err := eps[0].Send(1, []byte("zero to one")); err != nil {
		t.Fatal(err)
	}
	if err := eps[1].Send(0, []byte("one to zero")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "frame delivery", func() bool { return c0.count() == 1 && c1.count() == 1 })
	c1.mu.Lock()
	defer c1.mu.Unlock()
	if c1.frames[0] != "zero to one" || c1.from[0] != 0 {
		t.Fatalf("node 1 got %q from %d", c1.frames[0], c1.from[0])
	}
}

func TestBroadcastFanOut(t *testing.T) {
	const n = 5
	var rx [n]atomic.Int64
	eps := testCluster(t, n, func(node int, cfg *Config) {
		idx := node
		cfg.OnFrame = func(from int, frame []byte) { rx[idx].Add(1) }
	})
	for i := 1; i < n; i++ {
		if err := eps[i].Dial(eps[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "hub registration", func() bool { return eps[0].PeerCount() == n-1 })
	sent, err := eps[0].Broadcast([]byte("to everyone"))
	if err != nil {
		t.Fatal(err)
	}
	if sent != n-1 {
		t.Fatalf("broadcast queued for %d peers, want %d", sent, n-1)
	}
	waitFor(t, "fan-out delivery", func() bool {
		for i := 1; i < n; i++ {
			if rx[i].Load() != 1 {
				return false
			}
		}
		return true
	})
	if rx[0].Load() != 0 {
		t.Fatal("the sender heard its own broadcast")
	}
}

// TestUnauthenticatedFramesDropped: datagrams from sockets that never
// completed a handshake must be counted and discarded, not delivered.
func TestUnauthenticatedFramesDropped(t *testing.T) {
	var c collector
	reg := metrics.New()
	eps := testCluster(t, 1, func(node int, cfg *Config) {
		cfg.OnFrame = c.add
		cfg.Metrics = reg
	})
	raw, err := net.Dial("udp", eps[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write(encodeEnvelope(dgFrame, 99, []byte("sneaky"))); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte("not even an envelope")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "drops counted", func() bool {
		snap := reg.Snapshot()
		return snap.Counters[`jrsnd_transport_drops_total{reason="unknown_peer"}`] >= 1 &&
			snap.Counters[`jrsnd_transport_drops_total{reason="decode"}`] >= 1
	})
	if c.count() != 0 {
		t.Fatal("an unauthenticated frame reached the consumer")
	}
}

// TestBadMACRejected: a HELLO whose MAC was not produced by the key the
// directory records for the claimed node must not register a peer.
func TestBadMACRejected(t *testing.T) {
	reg := metrics.New()
	eps := testCluster(t, 1, func(node int, cfg *Config) { cfg.Metrics = reg })
	raw, err := net.Dial("udp", eps[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Claim to be node 0 but MAC with a key for a different code set.
	nonce := bytes.Repeat([]byte{9}, nonceSize)
	lie := helloBody{Nonce: nonce, MAC: helloMAC([]byte("wrong key entirely"), 0, nonce)}
	if _, err := raw.Write(encodeEnvelope(dgHello, 0, encodeHello(lie))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "MAC rejection counted", func() bool {
		return reg.Snapshot().Counters[`jrsnd_transport_drops_total{reason="unknown_peer"}`] >= 1
	})
	if eps[0].PeerCount() != 0 {
		t.Fatal("a forged HELLO registered a peer")
	}
}

// TestMaxPeersEnforced: registrations past the cap are refused and
// counted under the ratelimit reason.
func TestMaxPeersEnforced(t *testing.T) {
	reg := metrics.New()
	eps := testCluster(t, 4, func(node int, cfg *Config) {
		if node == 0 {
			cfg.MaxPeers = 2
			cfg.Metrics = reg
		}
	})
	for i := 1; i < 4; i++ {
		if err := eps[i].Dial(eps[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "table to fill and overflow to be counted", func() bool {
		return eps[0].PeerCount() == 2 &&
			reg.Snapshot().Counters[`jrsnd_transport_drops_total{reason="ratelimit"}`] >= 1
	})
}

// TestReapRemovesIdlePeers drives the liveness policy with an injected
// clock: advance past IdleAfter without traffic and the peer must go.
func TestReapRemovesIdlePeers(t *testing.T) {
	var clock atomic.Int64
	base := time.Now()
	now := func() time.Time { return base.Add(time.Duration(clock.Load())) }
	var downs atomic.Int64
	eps := testCluster(t, 2, func(node int, cfg *Config) {
		cfg.now = now
		cfg.IdleAfter = 10 * time.Second
		cfg.PingEvery = time.Hour // keep the prober out of this test
		if node == 0 {
			cfg.OnPeerChange = func(peer int, up bool) {
				if !up {
					downs.Add(1)
				}
			}
		}
	})
	if err := eps[0].Dial(eps[1].Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "registration", func() bool { return eps[0].PeerCount() == 1 })
	clock.Store(int64(11 * time.Second))
	eps[0].reap()
	if eps[0].PeerCount() != 0 {
		t.Fatal("idle peer survived the reaper")
	}
	if downs.Load() != 1 {
		t.Fatalf("OnPeerChange(down) fired %d times, want 1", downs.Load())
	}
}

// TestByeRemovesPeer: a graceful leave removes the peer immediately.
func TestByeRemovesPeer(t *testing.T) {
	eps := testCluster(t, 2, nil)
	if err := eps[0].Dial(eps[1].Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "mutual registration", func() bool {
		return eps[0].PeerCount() == 1 && eps[1].PeerCount() == 1
	})
	eps[0].Bye()
	waitFor(t, "peer removal on BYE", func() bool { return eps[1].PeerCount() == 0 })
}

// TestPingKeepsPeersAlive: quiet-but-live peers answer probes and are
// not reaped.
func TestPingKeepsPeersAlive(t *testing.T) {
	eps := testCluster(t, 2, func(node int, cfg *Config) {
		cfg.IdleAfter = 400 * time.Millisecond
		cfg.PingEvery = 50 * time.Millisecond
	})
	if err := eps[0].Dial(eps[1].Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "mutual registration", func() bool {
		return eps[0].PeerCount() == 1 && eps[1].PeerCount() == 1
	})
	time.Sleep(time.Second) // several idle windows, no frames — only pings
	if eps[0].PeerCount() != 1 || eps[1].PeerCount() != 1 {
		t.Fatal("a live peer was reaped despite keepalives")
	}
}

// TestMetricsExposition: the transport instruments must survive a
// write → parse round trip with the documented names intact.
func TestMetricsExposition(t *testing.T) {
	var c collector
	reg := metrics.New()
	eps := testCluster(t, 2, func(node int, cfg *Config) {
		if node == 0 {
			cfg.Metrics = reg
		}
		if node == 1 {
			cfg.OnFrame = c.add
		}
	})
	if err := eps[0].Dial(eps[1].Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "mutual registration", func() bool {
		return eps[0].PeerCount() == 1 && eps[1].PeerCount() == 1
	})
	if err := eps[0].Send(1, []byte("accounted")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery", func() bool { return c.count() == 1 })

	var buf bytes.Buffer
	if err := metrics.WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	snap, err := metrics.ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("exposition does not re-parse: %v\n%s", err, buf.String())
	}
	if got := snap.Gauges["jrsnd_transport_peers"]; got != 1 {
		t.Fatalf("jrsnd_transport_peers = %v, want 1", got)
	}
	if snap.Counters["jrsnd_node_tx_datagrams_total"] == 0 {
		t.Fatal("tx datagrams not counted")
	}
	if snap.Counters["jrsnd_node_rx_datagrams_total"] == 0 {
		t.Fatal("rx datagrams not counted")
	}
	if snap.Counters["jrsnd_transport_handshakes_total"] == 0 {
		t.Fatal("handshakes not counted")
	}
	for _, reason := range []string{dropDecode, dropRatelimit, dropUnknown} {
		name := fmt.Sprintf(`jrsnd_transport_drops_total{reason=%q}`, reason)
		if _, ok := snap.Counters[name]; !ok {
			t.Fatalf("drop counter %s missing from exposition", name)
		}
	}
}

// TestCloseIsCleanAndIdempotent: Close must stop every goroutine (the
// race detector would catch leaks touching freed state) and be callable
// twice.
func TestCloseIsCleanAndIdempotent(t *testing.T) {
	eps := testCluster(t, 2, nil)
	if err := eps[0].Dial(eps[1].Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "registration", func() bool { return eps[0].PeerCount() == 1 })
	if err := eps[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Dial(eps[1].Addr()); err != ErrClosed {
		t.Fatalf("Dial after Close = %v, want ErrClosed", err)
	}
	if err := eps[0].Send(1, []byte("x")); err != ErrClosed {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
}
