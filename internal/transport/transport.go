// Package transport binds the JR-SND protocol engine to actual sockets:
// canonical internal/wire frames ride UDP datagrams between authenticated
// peers, so the D-NDP/M-NDP byte formats that previously existed only
// inside the in-memory radio now cross real network interfaces — loopback
// for the multi-process e2e harness, a LAN segment for cluster
// experiments.
//
// The pieces:
//
//   - Endpoint (endpoint.go) owns one UDP socket: a pooled, bounded read
//     loop; a peer manager in the ProtocolManager style (registration
//     capped at MaxPeers, per-peer send loops over bounded queues,
//     broadcast fan-out, idle-peer reaping with a clean removePeer);
//     and the datagram dispatch that counts — never trusts — malformed
//     input.
//   - the handshake (handshake.go) authenticates a peer's code-slot
//     identity: the key is derived from the code set the jrsnd-authority
//     provisioned for that node ID, so two daemons provisioned by the
//     same authority admit each other and everything else is dropped.
//   - Conduit (conduit.go) adapts an Endpoint to the radio.Conduit
//     delivery interface the protocol engine sends through, making the
//     socket path a drop-in substrate next to the simulated medium.
//
// Datagram layout (all integers big-endian):
//
//	byte 0..1   magic "JR"
//	byte 2      transport version (currently 1)
//	byte 3      kind (dgHello … dgBye)
//	byte 4..7   uint32 sender node ID
//	byte 8..    per-kind body
//
// dgFrame bodies are wire frames verbatim — the transport does not parse
// them beyond bounding their length at the wire Limits cap; the consumer's
// wire.Decode is the only parser, exactly as on the simulated path.
// Handshake bodies are uint16-length-prefixed byte fields, each capped
// before allocation, in the bounded-decode discipline of internal/wire.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/wire"
)

// Version is the transport envelope version emitted by this package.
const Version = 1

// envelope header: "JR" + version + kind + uint32 sender.
const headerLen = 8

// Datagram kinds.
const (
	dgHello = iota + 1 // handshake initiation: nonce + code-slot MAC
	dgAck              // handshake completion: echoed nonce + responder MAC
	dgFrame            // one canonical wire frame
	dgPing             // keepalive probe
	dgPong             // keepalive answer
	dgBye              // graceful leave: remove me now, don't wait for the reaper
	numDgKinds = dgBye
)

// dgKindName names a datagram kind for traces and errors.
func dgKindName(kind int) string {
	switch kind {
	case dgHello:
		return "HELLO"
	case dgAck:
		return "ACK"
	case dgFrame:
		return "FRAME"
	case dgPing:
		return "PING"
	case dgPong:
		return "PONG"
	case dgBye:
		return "BYE"
	default:
		return "UNKNOWN"
	}
}

// Decode-error taxonomy, mirroring internal/wire: every hostile datagram
// dies with exactly one of these and a bumped drop counter.
var (
	// ErrTruncated: the datagram ends before a declared field does.
	ErrTruncated = errors.New("transport: truncated datagram")
	// ErrOverflow: a declared length exceeds its cap, or the datagram
	// exceeds the maximum size for the configured wire limits.
	ErrOverflow = errors.New("transport: field exceeds limit")
	// ErrBadKind: wrong magic, unsupported version, or unknown kind.
	ErrBadKind = errors.New("transport: bad magic, version, or kind")
)

// Handshake field caps. Senders emit nonceSize/macSize exactly; the
// decoder accepts up to the max so future versions can grow the fields
// without a flag day, but never allocates past the cap.
const (
	nonceSize    = 16
	macSize      = 32 // HMAC-SHA256
	maxNonceWire = 64
	maxMACWire   = 64
)

// maxDatagram returns the largest datagram the endpoint will read or
// send under the given wire limits: the envelope header plus the largest
// body (a full wire frame), capped at the UDP payload ceiling.
func maxDatagram(l wire.Limits) int {
	const udpMax = 65507
	n := headerLen + l.MaxFrame
	if n > udpMax {
		n = udpMax
	}
	return n
}

// envelope is one decoded datagram header; body aliases the receive
// buffer and must be copied before it escapes the dispatch call.
type envelope struct {
	kind   int
	sender int
	body   []byte
}

// encodeEnvelope prepends the transport header to body.
func encodeEnvelope(kind, sender int, body []byte) []byte {
	out := make([]byte, headerLen+len(body))
	out[0], out[1] = 'J', 'R'
	out[2] = Version
	out[3] = byte(kind)
	binary.BigEndian.PutUint32(out[4:8], uint32(sender))
	copy(out[headerLen:], body)
	return out
}

// decodeEnvelope validates the header and returns the envelope; the body
// aliases data.
func decodeEnvelope(data []byte) (envelope, error) {
	if len(data) < headerLen {
		return envelope{}, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(data))
	}
	if data[0] != 'J' || data[1] != 'R' {
		return envelope{}, fmt.Errorf("%w: magic %q", ErrBadKind, data[:2])
	}
	if data[2] != Version {
		return envelope{}, fmt.Errorf("%w: version %d", ErrBadKind, data[2])
	}
	kind := int(data[3])
	if kind < dgHello || kind > numDgKinds {
		return envelope{}, fmt.Errorf("%w: kind %d", ErrBadKind, kind)
	}
	return envelope{
		kind:   kind,
		sender: int(binary.BigEndian.Uint32(data[4:8])),
		body:   data[headerLen:],
	}, nil
}

// putField appends one uint16-length-prefixed byte field.
func putField(buf []byte, field []byte) []byte {
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(field)))
	return append(append(buf, l[:]...), field...)
}

// getField consumes one uint16-length-prefixed byte field, copying it out
// of the datagram buffer, with the declared length capped before the
// allocation.
func getField(data []byte, cap int) (field, rest []byte, err error) {
	if len(data) < 2 {
		return nil, nil, fmt.Errorf("%w: field length prefix", ErrTruncated)
	}
	n := int(binary.BigEndian.Uint16(data))
	if n > cap {
		return nil, nil, fmt.Errorf("%w: field of %d bytes (cap %d)", ErrOverflow, n, cap)
	}
	if len(data) < 2+n {
		return nil, nil, fmt.Errorf("%w: field of %d bytes, %d remain", ErrTruncated, n, len(data)-2)
	}
	field = make([]byte, n)
	copy(field, data[2:2+n])
	return field, data[2+n:], nil
}

// helloBody is the dgHello payload: {nonce, MAC over the hs1 transcript}.
type helloBody struct {
	Nonce []byte
	MAC   []byte
}

func encodeHello(h helloBody) []byte {
	buf := make([]byte, 0, 4+len(h.Nonce)+len(h.MAC))
	buf = putField(buf, h.Nonce)
	return putField(buf, h.MAC)
}

func decodeHello(data []byte) (helloBody, error) {
	var h helloBody
	var err error
	if h.Nonce, data, err = getField(data, maxNonceWire); err != nil {
		return helloBody{}, err
	}
	if h.MAC, data, err = getField(data, maxMACWire); err != nil {
		return helloBody{}, err
	}
	if len(data) != 0 {
		return helloBody{}, fmt.Errorf("%w: %d trailing bytes", ErrOverflow, len(data))
	}
	return h, nil
}

// ackBody is the dgAck payload: the echoed initiator nonce, the
// responder's own nonce, and the MAC over the hs2 transcript.
type ackBody struct {
	Echo  []byte
	Nonce []byte
	MAC   []byte
}

func encodeAck(a ackBody) []byte {
	buf := make([]byte, 0, 6+len(a.Echo)+len(a.Nonce)+len(a.MAC))
	buf = putField(buf, a.Echo)
	buf = putField(buf, a.Nonce)
	return putField(buf, a.MAC)
}

func decodeAck(data []byte) (ackBody, error) {
	var a ackBody
	var err error
	if a.Echo, data, err = getField(data, maxNonceWire); err != nil {
		return ackBody{}, err
	}
	if a.Nonce, data, err = getField(data, maxNonceWire); err != nil {
		return ackBody{}, err
	}
	if a.MAC, data, err = getField(data, maxMACWire); err != nil {
		return ackBody{}, err
	}
	if len(data) != 0 {
		return ackBody{}, fmt.Errorf("%w: %d trailing bytes", ErrOverflow, len(data))
	}
	return a, nil
}
