package transport

import (
	"net"
	"sync/atomic"
)

// peer is one registered, authenticated remote endpoint. Outbound
// datagrams go through a bounded queue drained by a dedicated send loop
// (sendLoop in endpoint.go); a full queue drops the datagram rather than
// blocking the caller — backpressure on a best-effort datagram transport
// is a drop, counted under the ratelimit reason.
type peer struct {
	id   int
	addr *net.UDPAddr
	key  string // addr.String(), the byAddr index key

	out  chan []byte   // bounded outbound queue
	done chan struct{} // closed exactly once by removeLocked

	lastSeen atomic.Int64 // unix nanoseconds of the last valid datagram
	removed  bool         // guarded by Endpoint.mu; makes removal idempotent
}

// touch records activity at the given unix-nano timestamp.
func (p *peer) touch(nanos int64) { p.lastSeen.Store(nanos) }

// idleNanos returns how long the peer has been silent.
func (p *peer) idleNanos(nowNanos int64) int64 { return nowNanos - p.lastSeen.Load() }

// enqueue offers a datagram to the send loop without blocking; false
// means the queue was full (or the peer is being torn down) and the
// datagram was dropped.
func (p *peer) enqueue(buf []byte) bool {
	select {
	case <-p.done:
		return false
	default:
	}
	select {
	case p.out <- buf:
		return true
	default:
		return false
	}
}
