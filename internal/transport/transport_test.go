package transport

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/codepool"
	"repro/internal/wire"
)

// Codec coverage: the envelope and handshake bodies must round-trip, and
// every malformed shape must die with a typed error — never a panic, and
// never an allocation driven by attacker-declared lengths.

func TestEnvelopeRoundTrip(t *testing.T) {
	body := []byte("the payload")
	data := encodeEnvelope(dgFrame, 42, body)
	env, err := decodeEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	if env.kind != dgFrame || env.sender != 42 || !bytes.Equal(env.body, body) {
		t.Fatalf("round trip mangled the envelope: %+v", env)
	}
}

func TestEnvelopeRejections(t *testing.T) {
	valid := encodeEnvelope(dgPing, 7, nil)
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", valid[:headerLen-1], ErrTruncated},
		{"bad magic", append([]byte("XX"), valid[2:]...), ErrBadKind},
		{"bad version", append([]byte{'J', 'R', 99}, valid[3:]...), ErrBadKind},
		{"kind zero", append([]byte{'J', 'R', Version, 0}, valid[4:]...), ErrBadKind},
		{"kind high", append([]byte{'J', 'R', Version, numDgKinds + 1}, valid[4:]...), ErrBadKind},
	}
	for _, c := range cases {
		if _, err := decodeEnvelope(c.data); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
}

func TestHandshakeBodiesRoundTrip(t *testing.T) {
	h := helloBody{Nonce: bytes.Repeat([]byte{1}, nonceSize), MAC: bytes.Repeat([]byte{2}, macSize)}
	got, err := decodeHello(encodeHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Nonce, h.Nonce) || !bytes.Equal(got.MAC, h.MAC) {
		t.Fatalf("hello mangled: %+v", got)
	}

	a := ackBody{
		Echo:  bytes.Repeat([]byte{3}, nonceSize),
		Nonce: bytes.Repeat([]byte{4}, nonceSize),
		MAC:   bytes.Repeat([]byte{5}, macSize),
	}
	gotA, err := decodeAck(encodeAck(a))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotA.Echo, a.Echo) || !bytes.Equal(gotA.Nonce, a.Nonce) || !bytes.Equal(gotA.MAC, a.MAC) {
		t.Fatalf("ack mangled: %+v", gotA)
	}
}

func TestHandshakeBodyRejections(t *testing.T) {
	hello := encodeHello(helloBody{Nonce: make([]byte, nonceSize), MAC: make([]byte, macSize)})

	// A declared field length past the cap must be refused before any
	// allocation sized by it.
	huge := []byte{0xFF, 0xFF} // declares a 65535-byte field
	if _, err := decodeHello(huge); !errors.Is(err, ErrOverflow) {
		t.Errorf("oversized field: got %v, want ErrOverflow", err)
	}
	if _, err := decodeHello(hello[:3]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated field: got %v, want ErrTruncated", err)
	}
	if _, err := decodeHello(append(hello, 0)); !errors.Is(err, ErrOverflow) {
		t.Errorf("trailing bytes: got %v, want ErrOverflow", err)
	}
	if _, err := decodeAck(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty ack: got %v, want ErrTruncated", err)
	}
}

// TestNodeKeyCanonical: the key must not depend on the order the codes
// arrived in — the node derives from its provision response, the verifier
// from the registry, and slice order is not part of the identity.
func TestNodeKeyCanonical(t *testing.T) {
	a := NodeKey(3, []codepool.CodeID{9, 1, 5})
	b := NodeKey(3, []codepool.CodeID{5, 9, 1})
	if !bytes.Equal(a, b) {
		t.Fatal("NodeKey depends on code order")
	}
	if bytes.Equal(a, NodeKey(4, []codepool.CodeID{9, 1, 5})) {
		t.Fatal("NodeKey ignores the node ID")
	}
	if bytes.Equal(a, NodeKey(3, []codepool.CodeID{9, 1, 6})) {
		t.Fatal("NodeKey ignores the code set")
	}
}

func TestHandshakeMACs(t *testing.T) {
	key := NodeKey(1, []codepool.CodeID{2, 3})
	nonce := bytes.Repeat([]byte{7}, nonceSize)
	mac := helloMAC(key, 1, nonce)
	if !verifyMAC(helloMAC(key, 1, nonce), mac) {
		t.Fatal("helloMAC does not verify against itself")
	}
	if verifyMAC(helloMAC(key, 2, nonce), mac) {
		t.Fatal("helloMAC ignores the sender ID")
	}
	wrong := NodeKey(1, []codepool.CodeID{2, 4})
	if verifyMAC(helloMAC(wrong, 1, nonce), mac) {
		t.Fatal("helloMAC ignores the key")
	}
}

func TestMaxDatagramCapped(t *testing.T) {
	lim := wire.DefaultLimits()
	lim.MaxFrame = 4096
	if got := maxDatagram(lim); got != headerLen+lim.MaxFrame {
		t.Fatalf("maxDatagram = %d, want %d", got, headerLen+lim.MaxFrame)
	}
	lim.MaxFrame = 1 << 20
	if got := maxDatagram(lim); got != 65507 {
		t.Fatalf("maxDatagram must cap at the UDP ceiling, got %d", got)
	}
}

func TestStaticDirectory(t *testing.T) {
	d := StaticDirectory{1: []byte("k")}
	if key, err := d.NodeKey(context.Background(), 1); err != nil || string(key) != "k" {
		t.Fatalf("lookup: %q, %v", key, err)
	}
	if _, err := d.NodeKey(context.Background(), 2); err == nil {
		t.Fatal("unknown node must not resolve")
	}
}
