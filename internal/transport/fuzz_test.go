package transport

import (
	"bytes"
	"net"
	"testing"

	"repro/internal/metrics"
)

// FuzzDatagram throws arbitrary bytes at the listener receive path — the
// exact dispatch the read loop runs on every datagram off the socket. The
// invariants: never panic, never deliver a frame from an unauthenticated
// source, and account for every rejected datagram (each hostile input
// either parses as a harmless control datagram or bumps a drop counter).
func FuzzDatagram(f *testing.F) {
	// Seeds: one valid specimen of each kind, plus classic malformations.
	f.Add(encodeEnvelope(dgHello, 1, encodeHello(helloBody{
		Nonce: bytes.Repeat([]byte{1}, nonceSize),
		MAC:   bytes.Repeat([]byte{2}, macSize),
	})))
	f.Add(encodeEnvelope(dgAck, 1, encodeAck(ackBody{
		Echo:  bytes.Repeat([]byte{3}, nonceSize),
		Nonce: bytes.Repeat([]byte{4}, nonceSize),
		MAC:   bytes.Repeat([]byte{5}, macSize),
	})))
	f.Add(encodeEnvelope(dgFrame, 1, []byte("frame bytes")))
	f.Add(encodeEnvelope(dgPing, 1, nil))
	f.Add(encodeEnvelope(dgPong, 1, nil))
	f.Add(encodeEnvelope(dgBye, 1, nil))
	f.Add([]byte{})
	f.Add([]byte("JR"))
	f.Add([]byte{'J', 'R', Version, dgHello, 0, 0, 0, 1, 0xFF, 0xFF})  // declares a 65535-byte field
	f.Add([]byte{'J', 'R', 99, dgFrame, 0, 0, 0, 1})                   // wrong version
	f.Add([]byte{'X', 'X', Version, dgFrame, 0, 0, 0, 1, 'h', 'i'})    // wrong magic
	f.Add([]byte{'J', 'R', Version, 200, 0, 0, 0, 1})                  // unknown kind

	reg := metrics.New()
	var delivered int
	e, err := Listen("127.0.0.1:0", Config{
		Node:      0,
		Key:       []byte("fuzz key"),
		Directory: StaticDirectory{}, // nobody resolves: handshakes cannot complete
		Metrics:   reg,
		OnFrame:   func(from int, frame []byte) { delivered++ },
	})
	if err != nil {
		f.Fatal(err)
	}
	defer e.Close()
	src := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 65000}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Datagrams past the read-buffer size cannot arrive off the
		// socket (the kernel truncates them); mirror that bound.
		if len(data) > e.maxDgram {
			data = data[:e.maxDgram]
		}
		e.processDatagram(src, data)
		if delivered != 0 {
			t.Fatalf("a fuzzed datagram was delivered as an authenticated frame: %q", data)
		}
		if e.PeerCount() != 0 {
			t.Fatal("a fuzzed datagram registered a peer (empty directory!)")
		}
	})
}
