package transport

import (
	"fmt"
	"sync"

	"repro/internal/radio"
)

// Conduit adapts an Endpoint to the radio.Conduit delivery interface the
// protocol engine sends through. The simulated Medium carries frames for
// every node in one process; a transport Conduit carries them for exactly
// one — the local daemon — so Attach only accepts the local node ID and
// remote identities come from the authenticated peer table instead of
// array indices.
type Conduit struct {
	e *Endpoint

	mu      sync.Mutex
	handler radio.Handler
}

var _ radio.Conduit = (*Conduit)(nil)

// ListenConduit binds an Endpoint (see Listen) and wraps it as a
// radio.Conduit. Frames from authenticated peers are delivered to the
// attached handler; cfg.OnFrame, if also set, still fires.
func ListenConduit(addr string, cfg Config) (*Conduit, error) {
	c := &Conduit{}
	inner := cfg.OnFrame
	cfg.OnFrame = func(from int, frame []byte) {
		c.deliver(from, frame)
		if inner != nil {
			inner(from, frame)
		}
	}
	e, err := Listen(addr, cfg)
	if err != nil {
		return nil, err
	}
	c.e = e
	return c, nil
}

// Endpoint returns the underlying endpoint (for Dial, Bye, Close, and
// the peer table).
func (c *Conduit) Endpoint() *Endpoint { return c.e }

// Attach registers the local receive handler. Only the endpoint's own
// node ID is meaningful here — a transport conduit is one node's view of
// the network, not the whole medium — so other IDs are ignored.
func (c *Conduit) Attach(node int, h radio.Handler) {
	if node != c.e.Node() {
		return
	}
	c.mu.Lock()
	c.handler = h
	c.mu.Unlock()
}

// deliver hands one received frame to the attached handler, shaped the
// way the simulated medium shapes it: Payload is the frame bytes, Kind is
// peeked from the frame header (the receiver's wire.Decode remains the
// authoritative parser, exactly as on the simulated path).
func (c *Conduit) deliver(from int, frame []byte) {
	c.mu.Lock()
	h := c.handler
	c.mu.Unlock()
	if h == nil {
		return
	}
	kind := 0
	if len(frame) >= 2 {
		kind = int(frame[1])
	}
	h(from, radio.Message{Kind: kind, PayloadBits: len(frame) * 8, Payload: frame})
}

// frameOf extracts the wire-frame bytes the engine's send path encodes
// into Message.Payload.
func frameOf(msg radio.Message) ([]byte, error) {
	frame, ok := msg.Payload.([]byte)
	if !ok {
		return nil, fmt.Errorf("transport: payload %T is not an encoded wire frame", msg.Payload)
	}
	return frame, nil
}

// Broadcast fans the frame out to every authenticated peer.
func (c *Conduit) Broadcast(from int, msg radio.Message) error {
	if from != c.e.Node() {
		return fmt.Errorf("transport: broadcast from %d, but this endpoint is node %d", from, c.e.Node())
	}
	frame, err := frameOf(msg)
	if err != nil {
		return err
	}
	_, err = c.e.Broadcast(frame)
	return err
}

// Unicast sends the frame to one authenticated peer.
func (c *Conduit) Unicast(from, to int, msg radio.Message) error {
	if from != c.e.Node() {
		return fmt.Errorf("transport: unicast from %d, but this endpoint is node %d", from, c.e.Node())
	}
	frame, err := frameOf(msg)
	if err != nil {
		return err
	}
	return c.e.Send(to, frame)
}

// Stats maps the datagram counters onto the radio stats shape:
// transmissions are datagrams sent, deliveries are datagrams received.
// Jamming and channel faults are physical-world phenomena the socket
// path cannot observe; those fields stay zero.
func (c *Conduit) Stats() radio.Stats {
	return radio.Stats{
		Transmissions: int(c.e.TxDatagrams()),
		Delivered:     int(c.e.RxDatagrams()),
	}
}
