package transport

import "repro/internal/metrics"

// transportMetrics holds the endpoint's instruments. A nil receiver (no
// registry configured) makes every update a no-op, matching the
// convention of internal/core's coreMetrics.
type transportMetrics struct {
	peers      *metrics.Gauge
	txDgrams   *metrics.Counter
	rxDgrams   *metrics.Counter
	handshakes *metrics.Counter

	dropDecode    *metrics.Counter
	dropRatelimit *metrics.Counter
	dropUnknown   *metrics.Counter
}

// Drop reasons, used both as metric labels and trace details.
const (
	dropDecode    = "decode"
	dropRatelimit = "ratelimit"
	dropUnknown   = "unknown_peer"
)

func newTransportMetrics(reg *metrics.Registry) *transportMetrics {
	if reg == nil {
		return nil
	}
	drops := func(reason string) *metrics.Counter {
		return reg.Counter(`jrsnd_transport_drops_total{reason="`+metrics.EscapeLabelValue(reason)+`"}`,
			"datagrams dropped by the transport receive path, by reason")
	}
	return &transportMetrics{
		peers:         reg.Gauge("jrsnd_transport_peers", "authenticated peers currently registered"),
		txDgrams:      reg.Counter("jrsnd_node_tx_datagrams_total", "UDP datagrams transmitted"),
		rxDgrams:      reg.Counter("jrsnd_node_rx_datagrams_total", "UDP datagrams received"),
		handshakes:    reg.Counter("jrsnd_transport_handshakes_total", "handshakes completed (peer registrations)"),
		dropDecode:    drops(dropDecode),
		dropRatelimit: drops(dropRatelimit),
		dropUnknown:   drops(dropUnknown),
	}
}

func (m *transportMetrics) onPeers(n int) {
	if m == nil {
		return
	}
	m.peers.Set(float64(n))
}

func (m *transportMetrics) onTx() {
	if m == nil {
		return
	}
	m.txDgrams.Inc()
}

func (m *transportMetrics) onRx() {
	if m == nil {
		return
	}
	m.rxDgrams.Inc()
}

func (m *transportMetrics) onHandshake() {
	if m == nil {
		return
	}
	m.handshakes.Inc()
}

func (m *transportMetrics) onDrop(reason string) {
	if m == nil {
		return
	}
	switch reason {
	case dropDecode:
		m.dropDecode.Inc()
	case dropRatelimit:
		m.dropRatelimit.Inc()
	case dropUnknown:
		m.dropUnknown.Inc()
	}
}
