package transport

import (
	"context"
	"sync"

	"repro/internal/authd"
)

// AuthorityDirectory resolves handshake keys from a running
// jrsnd-authority: GET /v1/node returns the code assignment the authority
// recorded for a deployment slot, and NodeKey compresses it to the
// handshake key. Resolutions are cached forever — an assignment is
// immutable for the life of an epoch, and the daemons of one deployment
// share one epoch (Invalidate exists for the revocation path).
type AuthorityDirectory struct {
	client *authd.Client

	mu    sync.Mutex
	cache map[int][]byte
}

var _ Directory = (*AuthorityDirectory)(nil)

// NewAuthorityDirectory wraps an authority client (which carries its own
// retry and failover policy) as a Directory.
func NewAuthorityDirectory(client *authd.Client) *AuthorityDirectory {
	return &AuthorityDirectory{client: client, cache: map[int][]byte{}}
}

// NodeKey returns the handshake key for node, consulting the authority on
// a cache miss.
func (d *AuthorityDirectory) NodeKey(ctx context.Context, node int) ([]byte, error) {
	d.mu.Lock()
	key, ok := d.cache[node]
	d.mu.Unlock()
	if ok {
		return key, nil
	}
	info, err := d.client.Node(ctx, node)
	if err != nil {
		return nil, err
	}
	key = NodeKey(info.Node, info.Codes)
	d.mu.Lock()
	d.cache[node] = key
	d.mu.Unlock()
	return key, nil
}

// Invalidate drops a cached key so the next lookup re-consults the
// authority (e.g. after a revocation changed the node's assignment).
func (d *AuthorityDirectory) Invalidate(node int) {
	d.mu.Lock()
	delete(d.cache, node)
	d.mu.Unlock()
}
