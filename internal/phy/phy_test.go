package phy

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/chips"
	"repro/internal/dsss"
	"repro/internal/ibc"
)

// testChips uses the paper's N = 512. At shorter code lengths τ = 0.15
// sits only ≈2.4σ above the cross-correlation noise of a misaligned
// foreign code, and a chance 2.6σ correlator can track the data bits
// through the "wrong" code (observed at N = 256 in development); at
// N = 512 the margin is 3.4σ and code identity is reliable — one of the
// reasons the paper fixes N = 512.
const (
	testChips = 512
	testTau   = 0.15
)

func twoNodes(t *testing.T, sharedCodes int) (*Node, *Node, []chips.Sequence) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	auth, err := ibc.NewAuthority(ibc.AuthorityConfig{Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	keyA, err := auth.Issue(10, rng)
	if err != nil {
		t.Fatal(err)
	}
	keyB, err := auth.Issue(20, rng)
	if err != nil {
		t.Fatal(err)
	}
	shared := make([]chips.Sequence, sharedCodes)
	for i := range shared {
		shared[i] = chips.NewRandom(rng, testChips)
	}
	aOnly := chips.NewRandom(rng, testChips)
	bOnly := chips.NewRandom(rng, testChips)
	a, err := NewNode(Config{Key: keyA, Codes: append([]chips.Sequence{aOnly}, shared...), Mu: 1, Tau: testTau})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(Config{Key: keyB, Codes: append([]chips.Sequence{bOnly}, shared...), Mu: 1, Tau: testTau})
	if err != nil {
		t.Fatal(err)
	}
	return a, b, shared
}

func TestNewNodeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	auth, _ := ibc.NewAuthority(ibc.AuthorityConfig{Rand: rng})
	key, _ := auth.Issue(1, rng)
	if _, err := NewNode(Config{Codes: []chips.Sequence{chips.NewRandom(rng, 64)}, Mu: 1, Tau: 0.15}); err == nil {
		t.Fatal("accepted nil key")
	}
	if _, err := NewNode(Config{Key: key, Mu: 1, Tau: 0.15}); err == nil {
		t.Fatal("accepted empty code set")
	}
	mixed := []chips.Sequence{chips.NewRandom(rng, 64), chips.NewRandom(rng, 128)}
	if _, err := NewNode(Config{Key: key, Codes: mixed, Mu: 1, Tau: 0.15}); err == nil {
		t.Fatal("accepted mixed chip lengths")
	}
	if _, err := NewNode(Config{Key: key, Codes: mixed[:1], Mu: 1, Tau: 2}); err == nil {
		t.Fatal("accepted bad τ")
	}
}

// TestFullExchange drives the complete four-message D-NDP at chip level
// using the phy.Node API, ending with a working session code.
func TestFullExchange(t *testing.T) {
	a, b, shared := twoNodes(t, 1)
	code := shared[0]

	// HELLO from A on the shared code; B scans and identifies A.
	relay := func(tx *Node, payload []byte, c chips.Sequence, rx *Node) []byte {
		t.Helper()
		sig, err := tx.Transmit(payload, c)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := dsss.NewChannel(sig.Len() + 300)
		if err != nil {
			t.Fatal(err)
		}
		ch.Add(sig, 150)
		got, gotCode, err := rx.Receive(ch.Samples(), len(payload))
		if err != nil {
			t.Fatalf("receive: %v", err)
		}
		if !gotCode.Equal(c) {
			t.Fatal("decoded with the wrong code")
		}
		return got
	}

	hello := relay(a, a.Hello(), code, b)
	typ, sender, err := ParseID(hello)
	if err != nil || typ != TypeHello || sender != a.ID() {
		t.Fatalf("HELLO parse: %v %d %v", typ, sender, err)
	}

	confirm := relay(b, b.Confirm(), code, a)
	typ, responder, err := ParseID(confirm)
	if err != nil || typ != TypeConfirm || responder != b.ID() {
		t.Fatalf("CONFIRM parse: %v %d %v", typ, responder, err)
	}

	auth1 := relay(a, a.Auth(TypeAuth1, b.ID(), []byte{1, 2, 3}, 20), code, b)
	peer, nA, err := b.VerifyAuth(auth1)
	if err != nil || peer != a.ID() {
		t.Fatalf("AUTH1 verify: %v peer=%d", err, peer)
	}
	if !bytes.Equal(nA, []byte{1, 2, 3}) {
		t.Fatal("nonce corrupted")
	}

	auth2 := relay(b, b.Auth(TypeAuth2, a.ID(), []byte{9, 8, 7}, 20), code, a)
	peer, _, err = a.VerifyAuth(auth2)
	if err != nil || peer != b.ID() {
		t.Fatalf("AUTH2 verify: %v", err)
	}

	// Both sides derive the same session code and can use it.
	sessA, err := a.SessionCode(b.ID())
	if err != nil {
		t.Fatal(err)
	}
	sessB, err := b.SessionCode(a.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !sessA.Equal(sessB) {
		t.Fatal("session codes differ")
	}
	secret := relay(a, []byte("post-discovery traffic"), sessA, b)
	if string(secret) != "post-discovery traffic" {
		t.Fatal("session-code traffic corrupted")
	}
}

func TestVerifyAuthRejectsForgery(t *testing.T) {
	a, b, _ := twoNodes(t, 1)
	genuine := a.Auth(TypeAuth1, b.ID(), []byte{5, 5}, 20)
	// Flip a MAC byte.
	forged := append([]byte(nil), genuine...)
	forged[len(forged)-1] ^= 0xFF
	if _, _, err := b.VerifyAuth(forged); err == nil {
		t.Fatal("forged MAC accepted")
	}
	// Claim a different sender.
	spoofed := append([]byte(nil), genuine...)
	spoofed[2] ^= 0x01
	if _, _, err := b.VerifyAuth(spoofed); err == nil {
		t.Fatal("spoofed sender accepted")
	}
	if _, _, err := b.VerifyAuth([]byte{1}); err == nil {
		t.Fatal("short payload accepted")
	}
	if _, _, err := b.VerifyAuth([]byte{99, 0, 1, 0}); err == nil {
		t.Fatal("bad type accepted")
	}
}

func TestSessionCodeRequiresBothNonces(t *testing.T) {
	a, b, _ := twoNodes(t, 1)
	if _, err := a.SessionCode(b.ID()); err == nil {
		t.Fatal("session code derived without nonces")
	}
	_ = a.Auth(TypeAuth1, b.ID(), []byte{1}, 20) // sets local nonce only
	if _, err := a.SessionCode(b.ID()); err == nil {
		t.Fatal("session code derived with one nonce")
	}
}

func TestParseIDValidation(t *testing.T) {
	if _, _, err := ParseID([]byte{1}); err == nil {
		t.Fatal("short payload accepted")
	}
	typ, id, err := ParseID([]byte{TypeHello, 0x12, 0x34})
	if err != nil || typ != TypeHello || id != 0x1234 {
		t.Fatalf("parse = %v %v %v", typ, id, err)
	}
}
