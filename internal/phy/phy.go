// Package phy provides a chip-level JR-SND endpoint: a node that owns real
// spread codes and an RS framer, transmits protocol messages as chip
// signals, and receives by sliding-window scan — the physical realization
// of the abstractions the message-level engine (internal/core) works with.
// It exists so examples and cross-fidelity tests can run the actual §V-B
// exchange on the air interface without re-implementing the receiver.
package phy

import (
	"errors"
	"fmt"

	"repro/internal/chips"
	"repro/internal/dsss"
	"repro/internal/ibc"
)

// Node is a chip-level endpoint with a code set and an identity.
type Node struct {
	id    ibc.NodeID
	key   *ibc.PrivateKey
	codes []chips.Sequence
	frame *dsss.Frame
	// session state per peer
	sessions map[ibc.NodeID]*session
}

type session struct {
	key         [32]byte
	localNonce  []byte
	remoteNonce []byte
	code        chips.Sequence
	haveCode    bool
}

// Config creates a chip-level node.
type Config struct {
	// Key is the node's ID-based private key (issued by the authority).
	Key *ibc.PrivateKey
	// Codes is the node's pre-distributed spread-code set ℂ.
	Codes []chips.Sequence
	// Mu and Tau are the ECC expansion and de-spread threshold.
	Mu, Tau float64
}

// NewNode builds the endpoint.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Key == nil {
		return nil, errors.New("phy: Key must be set")
	}
	if len(cfg.Codes) == 0 {
		return nil, errors.New("phy: at least one spread code required")
	}
	n := cfg.Codes[0].Len()
	for _, c := range cfg.Codes {
		if c.Len() != n {
			return nil, errors.New("phy: codes have mixed chip lengths")
		}
	}
	frame, err := dsss.NewFrame(cfg.Mu, cfg.Tau)
	if err != nil {
		return nil, err
	}
	return &Node{
		id:       cfg.Key.ID(),
		key:      cfg.Key,
		codes:    append([]chips.Sequence(nil), cfg.Codes...),
		frame:    frame,
		sessions: map[ibc.NodeID]*session{},
	}, nil
}

// ID returns the node identity.
func (n *Node) ID() ibc.NodeID { return n.id }

// ChipLen returns the spread-code length.
func (n *Node) ChipLen() int { return n.codes[0].Len() }

// Codes returns the node's code set (shared backing; treat as read-only).
func (n *Node) Codes() []chips.Sequence { return n.codes }

// Frame exposes the node's framer.
func (n *Node) Frame() *dsss.Frame { return n.frame }

// Message type identifiers on the chip channel (first payload byte).
const (
	TypeHello byte = iota + 1
	TypeConfirm
	TypeAuth1
	TypeAuth2
)

// Hello builds the {HELLO, ID} payload.
func (n *Node) Hello() []byte {
	return append([]byte{TypeHello}, idBytes(n.id)...)
}

// Confirm builds the {CONFIRM, ID} payload.
func (n *Node) Confirm() []byte {
	return append([]byte{TypeConfirm}, idBytes(n.id)...)
}

// Auth builds an authentication payload {type, ID, nonce, f_K(ID|nonce)}
// toward peer, deriving the pairwise key on first use. macLen is in bytes.
func (n *Node) Auth(msgType byte, peer ibc.NodeID, nonce []byte, macLen int) []byte {
	s := n.sessionWith(peer)
	if s.localNonce == nil {
		s.localNonce = append([]byte(nil), nonce...)
	}
	mac := ibc.MAC(s.key, macLen, idBytes(n.id), nonce)
	out := append([]byte{msgType}, idBytes(n.id)...)
	out = append(out, byte(len(nonce)))
	out = append(out, nonce...)
	return append(out, mac...)
}

// VerifyAuth validates a received authentication payload from peer and
// stores the peer nonce. It returns the nonce or an error.
func (n *Node) VerifyAuth(payload []byte) (ibc.NodeID, []byte, error) {
	if len(payload) < 4 {
		return 0, nil, errors.New("phy: auth payload too short")
	}
	if payload[0] != TypeAuth1 && payload[0] != TypeAuth2 {
		return 0, nil, fmt.Errorf("phy: unexpected message type %d", payload[0])
	}
	peer := ibc.NodeID(uint16(payload[1])<<8 | uint16(payload[2]))
	nlen := int(payload[3])
	if len(payload) < 4+nlen+1 {
		return 0, nil, errors.New("phy: truncated auth payload")
	}
	nonce := payload[4 : 4+nlen]
	mac := payload[4+nlen:]
	s := n.sessionWith(peer)
	if !ibc.VerifyMAC(s.key, mac, idBytes(peer), nonce) {
		return 0, nil, fmt.Errorf("phy: MAC verification failed for peer %d", peer)
	}
	s.remoteNonce = append([]byte(nil), nonce...)
	return peer, nonce, nil
}

// SessionCode derives (and caches) the session spread code with peer once
// both nonces are known.
func (n *Node) SessionCode(peer ibc.NodeID) (chips.Sequence, error) {
	s := n.sessionWith(peer)
	if s.haveCode {
		return s.code, nil
	}
	if s.localNonce == nil || s.remoteNonce == nil {
		return chips.Sequence{}, fmt.Errorf("phy: nonces with peer %d not yet exchanged", peer)
	}
	code, err := ibc.SessionCode(s.key, s.localNonce, s.remoteNonce, n.ChipLen())
	if err != nil {
		return chips.Sequence{}, err
	}
	s.code = code
	s.haveCode = true
	return code, nil
}

// Transmit frames msg and spreads it with the given code.
func (n *Node) Transmit(msg []byte, code chips.Sequence) (chips.Sequence, error) {
	return n.frame.Transmit(msg, code)
}

// Receive scans buf with the node's code set (plus any established session
// codes) for a frame of msgLen bytes and decodes it.
func (n *Node) Receive(buf []int32, msgLen int) (msg []byte, code chips.Sequence, err error) {
	candidates := append([]chips.Sequence(nil), n.codes...)
	for _, s := range n.sessions {
		if s.haveCode {
			candidates = append(candidates, s.code)
		}
	}
	m, idx, _, err := n.frame.ReceiveScan(buf, candidates, msgLen)
	if err != nil {
		return nil, chips.Sequence{}, err
	}
	return m, candidates[idx], nil
}

func (n *Node) sessionWith(peer ibc.NodeID) *session {
	if s, ok := n.sessions[peer]; ok {
		return s
	}
	s := &session{key: n.key.SharedKey(peer)}
	n.sessions[peer] = s
	return s
}

func idBytes(id ibc.NodeID) []byte {
	return []byte{byte(id >> 8), byte(id)}
}

// ParseID extracts the sender identity from a HELLO/CONFIRM payload.
func ParseID(payload []byte) (byte, ibc.NodeID, error) {
	if len(payload) < 3 {
		return 0, 0, errors.New("phy: payload too short")
	}
	return payload[0], ibc.NodeID(uint16(payload[1])<<8 | uint16(payload[2])), nil
}
