package authd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/codepool"
)

// Replication, primary side. The authority's durability layer (wal.go,
// recover.go) already makes one instance a deterministic state machine:
// the WAL is a total order of mutations and replay drives the same code
// paths that served live traffic. Replication is that observation made
// continuous — a follower is a server whose only mutation source is the
// primary's acknowledged WAL stream, applied through the very replay path
// recovery uses, fsynced into its own WAL so that it is itself durable
// and promotable.
//
// The stream is pull-based: followers issue long-polling
// GET /v1/replicate?after=S&fp=F requests and receive the records after
// sequence S, each paired with the primary's state fingerprint at that
// record. The fingerprint is a chained hash folded, at append time, over
// each record's sequence, kind, and an order-independent observation of
// the state the mutation produced (assigned slots and their code sets,
// the join's node/epoch, the revoked code). A follower computes the same
// chain from its own state as it applies; any divergence — a different
// pool, a different code set, a stale unreplicated tail — is detected at
// the exact record where histories split, loudly, instead of surfacing
// later as a wrong answer. The follower's `fp` parameter lets the
// primary make the converse check before streaming: a follower whose
// fingerprint at `after` does not match the primary's history is told it
// is divergent and must re-bootstrap from a snapshot.
//
// Catch-up: the primary only buffers records since its last snapshot
// (the WAL-truncation point), so a follower lagging past one snapshot
// cadence is redirected to GET /v1/replicate/snapshot — the same
// checksummed image recovery boots from — and resumes the stream from
// the snapshot's sequence.
//
// Ack policy: each fetch carrying after=S is the follower's durable
// acknowledgment of every record ≤ S (it applied and logged them before
// asking for more). With Replication.MinSync = K > 0 the primary
// acknowledges a mutation to its client only after K followers have
// fetched past its sequence, so a promotion gated on "holds the full
// acknowledged prefix" can always be satisfied by the most advanced
// follower: acknowledged ⇒ replicated to ≥ K ≥ 1 followers, and
// followers hold gapless prefixes.

// Typed replication error taxonomy.
var (
	// ErrNotPrimary: a mutation reached a follower. The response carries
	// the current primary in the X-JRSND-Primary header; the client
	// retries there.
	ErrNotPrimary = errors.New("authd: not the primary")
	// ErrNoReplication: a replication endpoint was called on a
	// non-durable server (replication requires a WAL to stream).
	ErrNoReplication = errors.New("authd: replication requires a durable server")
	// ErrReplicaDiverged: applying a replicated record produced state
	// that does not match the primary's fingerprint. The replica poisons
	// itself rather than serve a second history.
	ErrReplicaDiverged = errors.New("authd: replica state diverged from primary")
	// ErrSyncTimeout: the mutation is durable on the primary but MinSync
	// followers did not acknowledge it in time. The client sees 503 and
	// may retry; the mutation was never acknowledged.
	ErrSyncTimeout = errors.New("authd: replication sync timeout")
	// ErrPromotionGate: a promotion request named a minimum sequence the
	// follower does not hold; promoting it would lose acknowledged
	// mutations.
	ErrPromotionGate = errors.New("authd: promotion refused")
)

// ReplicationConfig configures the primary's acknowledgment policy.
type ReplicationConfig struct {
	// MinSync is the number of followers that must durably hold a
	// mutation before it is acknowledged to the client. 0 (the default)
	// acknowledges after the local fsync only (asynchronous replication).
	MinSync int
	// SyncTimeout bounds the wait for MinSync follower acknowledgments;
	// 0 means 5 s. On timeout the mutation is durable locally but the
	// client gets 503 (ErrSyncTimeout) — it was not acknowledged.
	SyncTimeout time.Duration
}

const defaultSyncTimeout = 5 * time.Second

// Fingerprint chain: FNV-1a folded 64 bits at a time. The basis is the
// chain's starting value on an empty history.
const (
	fpBasis   = 14695981039346656037
	fpPrime64 = 1099511628211
)

// fpFold folds one 64-bit value into the chain, byte by byte.
func fpFold(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fpPrime64
		v >>= 8
	}
	return h
}

// Observation digests: an order-independent 64-bit reduction of what one
// mutation did to the state machine, computed identically by the live
// mutation path (primary) and the replay path (recovery, followers).
// Only order-independent facts are folded — concurrent provisions and
// revokes append to the WAL in an order the lock does not fix, so a
// per-record observation must not depend on its neighbors. Joins run
// under the pool write lock and may fold the epoch they produced.

func obsProvision(start, count int, codes func(node int) []codepool.CodeID) uint64 {
	h := fpFold(uint64(fpBasis), uint64(walProvision))
	h = fpFold(h, uint64(start))
	h = fpFold(h, uint64(count))
	for node := start; node < start+count; node++ {
		for _, c := range codes(node) {
			h = fpFold(h, uint64(uint32(c)))
		}
	}
	return h
}

func obsJoin(node int, expanded bool, epochAfter int, codes []codepool.CodeID) uint64 {
	h := fpFold(uint64(fpBasis), uint64(walJoin))
	h = fpFold(h, uint64(node))
	if expanded {
		h = fpFold(h, 1)
	} else {
		h = fpFold(h, 0)
	}
	h = fpFold(h, uint64(epochAfter))
	for _, c := range codes {
		h = fpFold(h, uint64(uint32(c)))
	}
	return h
}

func obsRevoke(code int32) uint64 {
	h := fpFold(uint64(fpBasis), uint64(walRevoke))
	return fpFold(h, uint64(uint32(code)))
}

// replEntry is one acknowledged record held for streaming: its sequence,
// the chain fingerprint *after* applying it, and its canonical frame.
type replEntry struct {
	seq   uint64
	fp    uint64
	frame []byte
}

// replTracker is the primary's replication state: the fingerprint chain,
// the record buffer since the last snapshot (the streamable window), and
// the per-follower acknowledgment watermarks the MinSync policy waits on.
// It is maintained on every durable server — follower or primary — so a
// freshly promoted follower can stream to the remaining replicas without
// any hand-off.
type replTracker struct {
	mu      sync.Mutex
	baseSeq uint64 // sequence the local snapshot covers (buffer starts after)
	baseFP  uint64 // chain fingerprint at baseSeq
	fp      uint64 // chain fingerprint at the last buffered sequence
	entries []replEntry
	acks    map[string]uint64 // follower ID → highest durably-held sequence

	// Close-and-replace broadcast channels: appendCh wakes long-polling
	// fetches when a record lands, ackCh wakes MinSync waiters when a
	// follower advances.
	appendCh chan struct{}
	ackCh    chan struct{}
}

func newReplTracker() *replTracker {
	return &replTracker{
		baseFP:   fpBasis,
		fp:       fpBasis,
		acks:     map[string]uint64{},
		appendCh: make(chan struct{}),
		ackCh:    make(chan struct{}),
	}
}

// reset seeds the chain from a restored snapshot (or leaves the cold
// basis when seq is 0).
func (t *replTracker) reset(seq, fp uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.baseSeq, t.baseFP, t.fp = seq, fp, fp
	t.entries = t.entries[:0]
}

// extend chains one appended record. frame is copied; seq must continue
// the buffer without a gap (the WAL's own invariant, re-asserted here).
func (t *replTracker) extend(seq uint64, kind walKind, frame []byte, obs uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	last := t.baseSeq + uint64(len(t.entries))
	if seq != last+1 {
		// The WAL enforces contiguous sequences before this is reached; a
		// gap here is a programming error, not input.
		panic(fmt.Sprintf("authd: replication buffer gap: seq %d after %d", seq, last))
	}
	fp := fpFold(t.fp, seq)
	fp = fpFold(fp, uint64(kind))
	fp = fpFold(fp, obs)
	t.fp = fp
	t.entries = append(t.entries, replEntry{seq: seq, fp: fp, frame: append([]byte(nil), frame...)})
	close(t.appendCh)
	t.appendCh = make(chan struct{})
}

// compact drops buffered records a durable snapshot now covers.
func (t *replTracker) compact(seq uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if seq <= t.baseSeq {
		return
	}
	n := int(seq - t.baseSeq)
	if n > len(t.entries) {
		n = len(t.entries)
	}
	if n > 0 {
		t.baseFP = t.entries[n-1].fp
		t.entries = append(t.entries[:0], t.entries[n:]...)
	}
	t.baseSeq = seq
}

// chainFP returns the fingerprint at the last known sequence.
func (t *replTracker) chainFP() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fp
}

// appendChan returns the current broadcast channel, closed by the next
// extend. Long-polling fetchers capture it BEFORE their first fetch so an
// append landing between fetch and wait still wakes them.
func (t *replTracker) appendChan() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.appendCh
}

// lastSeq returns the highest buffered (or snapshot-covered) sequence.
func (t *replTracker) lastSeq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.baseSeq + uint64(len(t.entries))
}

// Fetch statuses, the first byte of a /v1/replicate response.
const (
	replOK             = 0 // records follow (possibly zero)
	replSnapshotNeeded = 1 // `after` precedes the buffered window; bootstrap from snapshot
	replDivergent      = 2 // the follower's fingerprint does not match this history
)

// fetch returns up to max records after `after`, verifying the caller's
// fingerprint against this server's history at that sequence.
func (t *replTracker) fetch(after, callerFP uint64, max int) (status int, ents []replEntry, lastSeq, snapSeq uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	lastSeq = t.baseSeq + uint64(len(t.entries))
	snapSeq = t.baseSeq
	switch {
	case after < t.baseSeq:
		return replSnapshotNeeded, nil, lastSeq, snapSeq
	case after > lastSeq:
		// The follower claims records this history never produced — a
		// stale tail from a dead primary. It must re-bootstrap.
		return replDivergent, nil, lastSeq, snapSeq
	case t.fpAtLocked(after) != callerFP:
		return replDivergent, nil, lastSeq, snapSeq
	}
	from := int(after - t.baseSeq)
	avail := t.entries[from:]
	if len(avail) > max {
		avail = avail[:max]
	}
	// Entries are append-only until compact; returning subslices is safe
	// because compact copies survivors into a fresh prefix while holding mu
	// and fetch callers only read frames they received under this lock.
	ents = append([]replEntry(nil), avail...)
	return replOK, ents, lastSeq, snapSeq
}

// fpAtLocked returns the chain fingerprint at seq; caller holds mu and
// has bounds-checked seq into [baseSeq, lastSeq].
func (t *replTracker) fpAtLocked(seq uint64) uint64 {
	if seq == t.baseSeq {
		return t.baseFP
	}
	return t.entries[seq-t.baseSeq-1].fp
}

// recordAck advances one follower's durable watermark. Regressions are
// ignored — a follower that re-bootstrapped from a snapshot re-acks from
// the snapshot point, which never un-acknowledges anything it held.
func (t *replTracker) recordAck(id string, seq uint64) {
	if id == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if seq > t.acks[id] {
		t.acks[id] = seq
		close(t.ackCh)
		t.ackCh = make(chan struct{})
	}
}

// ackedBy counts followers whose watermark covers seq.
func (t *replTracker) ackedBy(seq uint64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, s := range t.acks {
		if s >= seq {
			n++
		}
	}
	return n
}

// followerAcks snapshots the watermark table for the status endpoint.
func (t *replTracker) followerAcks() map[string]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]uint64, len(t.acks))
	for id, s := range t.acks {
		out[id] = s
	}
	return out
}

// waitSynced blocks until minSync followers acknowledge seq, the timeout
// elapses (ErrSyncTimeout), or done closes.
func (t *replTracker) waitSynced(done <-chan struct{}, seq uint64, minSync int, timeout time.Duration) error {
	timer := time.NewTimer(timeout) //jrsnd:allow wallclock bounds the real-time wait for follower acknowledgments of a live HTTP mutation; never runs under the simulator
	defer timer.Stop()
	for {
		t.mu.Lock()
		n := 0
		for _, s := range t.acks {
			if s >= seq {
				n++
			}
		}
		ch := t.ackCh
		t.mu.Unlock()
		if n >= minSync {
			return nil
		}
		select {
		case <-ch:
		case <-timer.C:
			return fmt.Errorf("%w: %d/%d follower acks for seq %d after %v", ErrSyncTimeout, n, minSync, seq, timeout)
		case <-done:
			return fmt.Errorf("%w: request cancelled with %d/%d follower acks for seq %d", ErrSyncTimeout, n, minSync, seq)
		}
	}
}

// waitAppend blocks until a record lands after the given channel was
// observed, or the timeout elapses. Used by the long-polling fetch.
func waitAppend(ch <-chan struct{}, timeout time.Duration) {
	timer := time.NewTimer(timeout) //jrsnd:allow wallclock bounds the long-poll window of a live replication fetch; never runs under the simulator
	defer timer.Stop()
	select {
	case <-ch:
	case <-timer.C:
	}
}

// Fetch response wire format (big-endian), in the bounded-decode style of
// the WAL codec:
//
//	byte  0      status (replOK | replSnapshotNeeded | replDivergent)
//	bytes 1..8   u64 primary last sequence
//	bytes 9..16  u64 primary snapshot sequence (buffer base)
//	bytes 17..20 u32 record count (0 unless status == replOK)
//	per record:  u64 fp | u32 frameLen | frame (a WAL record)
const (
	replRespHeaderLen = 21
	// replMaxBatch caps one fetch's record count before any allocation.
	replMaxBatch = 4096
	// replMaxFrame bounds one streamed frame: a WAL header plus the
	// maximum body the WAL codec itself accepts.
	replMaxFrame = walHeaderLen + walMaxBody
	// replMaxResp bounds a whole fetch response read.
	replMaxResp = 1 << 26
	// replMaxWait caps the server-side long-poll window.
	replMaxWait = 2 * time.Second
)

// encodeReplResponse renders a fetch response.
func encodeReplResponse(status int, lastSeq, snapSeq uint64, ents []replEntry) []byte {
	size := replRespHeaderLen
	for _, e := range ents {
		size += 12 + len(e.frame)
	}
	out := make([]byte, 0, size) //jrsnd:allow boundedalloc sized by our own replication buffer entries (each bounded by walMaxBody on append), not by untrusted wire input
	out = append(out, byte(status))
	out = binary.BigEndian.AppendUint64(out, lastSeq)
	out = binary.BigEndian.AppendUint64(out, snapSeq)
	out = binary.BigEndian.AppendUint32(out, uint32(len(ents)))
	for _, e := range ents {
		out = binary.BigEndian.AppendUint64(out, e.fp)
		out = binary.BigEndian.AppendUint32(out, uint32(len(e.frame)))
		out = append(out, e.frame...)
	}
	return out
}

// replBatch is a decoded fetch response on the follower side.
type replBatch struct {
	status  int
	lastSeq uint64
	snapSeq uint64
	entries []replEntry // frames reference the response buffer
}

// decodeReplResponse parses a fetch response with the usual discipline:
// counts and lengths are checked against the remaining bytes before any
// use, frames are sub-slices of data (no copy), trailing bytes are an
// error.
func decodeReplResponse(data []byte) (replBatch, error) {
	var b replBatch
	if len(data) < replRespHeaderLen {
		return b, fmt.Errorf("authd: replication response %d bytes is too short", len(data))
	}
	b.status = int(data[0])
	if b.status != replOK && b.status != replSnapshotNeeded && b.status != replDivergent {
		return b, fmt.Errorf("authd: replication response status %d", b.status)
	}
	b.lastSeq = binary.BigEndian.Uint64(data[1:9])
	b.snapSeq = binary.BigEndian.Uint64(data[9:17])
	count := int(binary.BigEndian.Uint32(data[17:21]))
	if count > replMaxBatch {
		return b, fmt.Errorf("authd: replication response declares %d records > %d", count, replMaxBatch)
	}
	off := replRespHeaderLen
	if count > (len(data)-off)/12 {
		return b, fmt.Errorf("authd: replication response declares %d records in %d bytes", count, len(data)-off)
	}
	for i := 0; i < count; i++ {
		if off+12 > len(data) {
			return b, fmt.Errorf("authd: replication response truncated at record %d", i)
		}
		fp := binary.BigEndian.Uint64(data[off : off+8])
		frameLen := int(binary.BigEndian.Uint32(data[off+8 : off+12]))
		off += 12
		if frameLen > replMaxFrame || off+frameLen > len(data) {
			return b, fmt.Errorf("authd: replication record %d declares %d frame bytes", i, frameLen)
		}
		b.entries = append(b.entries, replEntry{fp: fp, frame: data[off : off+frameLen]})
		off += frameLen
	}
	if off != len(data) {
		return b, fmt.Errorf("authd: replication response has %d trailing bytes", len(data)-off)
	}
	return b, nil
}

// ReplicationStatus answers GET /v1/replication — the role, stream
// position, and fingerprint a harness (or a follower probing for the
// primary) needs.
type ReplicationStatus struct {
	Role    string `json:"role"` // "primary" or "follower"
	Durable bool   `json:"durable"`
	LastSeq uint64 `json:"last_seq"`
	SnapSeq uint64 `json:"snap_seq"`
	// FP is the hex state fingerprint at LastSeq; two replicas with equal
	// (LastSeq, FP) hold identical histories.
	FP string `json:"fp"`
	// Primary is the follower's current upstream (follower role only).
	Primary string `json:"primary,omitempty"`
	// LagRecords is the follower's last observed distance behind its
	// primary (follower role only).
	LagRecords int64 `json:"lag_records"`
	// Followers maps follower IDs to their acknowledged sequence
	// (primary role only).
	Followers map[string]uint64 `json:"followers,omitempty"`
}

// PromoteRequest asks a follower to become the primary. MinSeq is the
// highest sequence any client saw acknowledged; a follower that does not
// hold it refuses (the promotion gate) — promoting it would lose
// acknowledged mutations.
type PromoteRequest struct {
	MinSeq uint64 `json:"min_seq"`
}

// PromoteResponse reports the post-promotion state.
type PromoteResponse struct {
	Role    string `json:"role"`
	LastSeq uint64 `json:"last_seq"`
}

// PauseRequest toggles a follower's replication pull loop — the harness's
// asymmetric partition (the follower cannot reach the primary; the
// primary, which never dials, is unaffected).
type PauseRequest struct {
	Paused bool `json:"paused"`
}

// applyReplicated applies one streamed record through the recovery path,
// logs it to the local WAL, and verifies the resulting fingerprint
// against the primary's. Any mismatch poisons the server: a replica that
// diverged must not serve (or later be promoted into) a second history.
func (s *Server) applyReplicated(frame []byte, wantFP uint64) error {
	rec, n, err := parseWALRecord(frame)
	if err != nil {
		return err
	}
	if n != len(frame) {
		return fmt.Errorf("%w: replicated frame has %d trailing bytes", ErrWALCorrupt, len(frame)-n)
	}
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	if s.wal == nil {
		return ErrNoReplication
	}
	if next := s.wal.lastSeq() + 1; rec.Seq != next {
		return fmt.Errorf("%w: replicated record seq %d, expected %d", ErrWALCorrupt, rec.Seq, next)
	}
	obs, err := s.applyRecord(rec)
	if err != nil {
		s.m.divergencePanics.Inc()
		s.poison(err)
		return fmt.Errorf("%w: %v", ErrReplicaDiverged, err)
	}
	if _, err := s.wal.append(rec, obs); err != nil {
		return err
	}
	if fp := s.repl.chainFP(); fp != wantFP {
		err := fmt.Errorf("%w: fingerprint %016x != primary %016x at seq %d", ErrReplicaDiverged, fp, wantFP, rec.Seq)
		s.m.divergencePanics.Inc()
		s.poison(err)
		return err
	}
	s.m.replApplied.Inc()
	return nil
}

// waitReplicated enforces the MinSync policy for one acknowledged-local
// mutation; a no-op on asynchronous or non-durable servers and on
// followers (whose mutations arrive pre-acknowledged).
func (s *Server) waitReplicated(done <-chan struct{}, seq uint64) error {
	rc := s.cfg.Replication
	if s.repl == nil || rc.MinSync <= 0 || seq == 0 || s.isFollower() {
		return nil
	}
	timeout := rc.SyncTimeout
	if timeout <= 0 {
		timeout = defaultSyncTimeout
	}
	return s.repl.waitSynced(done, seq, rc.MinSync, timeout)
}

// Role management. A server is born primary unless Config.Follower is
// set; BecomePrimary flips a follower after its manager has stopped the
// pull loop (the promotion path).

func (s *Server) isFollower() bool { return s.followerRole.Load() }

// BecomePrimary switches the server into the primary role. The caller
// (Follower.promote) has already verified the promotion gate and stopped
// the replication pull loop.
func (s *Server) BecomePrimary() {
	s.followerRole.Store(false)
	s.m.rolePrimary.Set(1)
	s.m.roleFollower.Set(0)
}

// setPrimaryHint records the upstream primary a follower redirects
// mutations to.
func (s *Server) setPrimaryHint(url string) {
	s.primaryHint.Store(url)
}

func (s *Server) getPrimaryHint() string {
	if v := s.primaryHint.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// replicationStatus assembles the GET /v1/replication payload.
func (s *Server) replicationStatus() ReplicationStatus {
	st := ReplicationStatus{Role: "primary", Durable: s.wal != nil}
	if s.isFollower() {
		st.Role = "follower"
		st.Primary = s.getPrimaryHint()
		st.LagRecords = s.replLag.Load()
	}
	if s.repl != nil {
		st.LastSeq = s.repl.lastSeq()
		st.SnapSeq = s.snapSeq.Load()
		st.FP = fmt.Sprintf("%016x", s.repl.chainFP())
		if !s.isFollower() {
			st.Followers = s.repl.followerAcks()
		}
	}
	return st
}
