package authd

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestRequestSpans: with a trace sink configured, every handled request
// must leave one closed "authd.<route>" span, including error paths
// (method-not-allowed still closes its span).
func TestRequestSpans(t *testing.T) {
	rec, err := trace.NewRecorder(256)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Params: testParams(16, 4, 4), Seed: 3, Rate: -1, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}

	do := func(method, path, body string) {
		var req *http.Request
		if body != "" {
			req = httptest.NewRequest(method, path, strings.NewReader(body))
		} else {
			req = httptest.NewRequest(method, path, nil)
		}
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, req)
	}
	do(http.MethodPost, "/v1/provision", `{"count":1}`)
	do(http.MethodGet, "/v1/epoch", "")
	do(http.MethodGet, "/v1/provision", "") // 405: span must still close

	f := trace.BuildSpans(rec.Events())
	if n := len(f.Named("authd.provision")); n != 2 {
		t.Fatalf("got %d authd.provision spans, want 2 (one OK, one 405)", n)
	}
	if n := len(f.Named("authd.epoch")); n != 1 {
		t.Fatalf("got %d authd.epoch spans, want 1", n)
	}
	if f.Open != 0 || f.OrphanEnds != 0 {
		t.Fatalf("unbalanced request spans: open=%d orphans=%d", f.Open, f.OrphanEnds)
	}
	for _, sp := range f.Roots {
		if sp.Duration() < 0 {
			t.Fatalf("span %s has negative duration %v", sp.Name, sp.Duration())
		}
	}
}

// TestProfilingSurface: EnableProfiling must mount /debug/pprof/ and fold
// runtime gauges into /metrics; without it both stay absent.
func TestProfilingSurface(t *testing.T) {
	get := func(s *Server, path string) (int, string) {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		return w.Code, w.Body.String()
	}

	on, err := New(Config{Params: testParams(16, 4, 4), Seed: 3, Rate: -1, EnableProfiling: true})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := get(on, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ with profiling on = %d, want 200", code)
	}
	if code, body := get(on, "/metrics"); code != http.StatusOK || !strings.Contains(body, "jrsnd_go_goroutines") {
		t.Fatalf("profiling-on /metrics (status %d) missing jrsnd_go_goroutines:\n%s", code, body)
	}

	off, err := New(Config{Params: testParams(16, 4, 4), Seed: 3, Rate: -1})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := get(off, "/debug/pprof/"); code == http.StatusOK {
		t.Fatal("GET /debug/pprof/ must 404 when profiling is off")
	}
	if _, body := get(off, "/metrics"); strings.Contains(body, "jrsnd_go_goroutines") {
		t.Fatal("runtime gauges must not register when profiling is off")
	}
}
