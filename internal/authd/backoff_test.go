package authd

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// Regression for the wall-clock jitter seed jrsnd-lint flagged at
// client.go: the default backoff source must derive from the client's
// identity, not time.Now, so equal configurations replay identical
// schedules.

func drawSchedule(c *Client, n int) []time.Duration {
	out := make([]time.Duration, 0, n)
	for k := 1; k <= n; k++ {
		out = append(out, c.jitter(k))
	}
	return out
}

func TestClientBackoffDeterministic(t *testing.T) {
	a := &Client{Base: "http://127.0.0.1:1", ClientID: "node-7"}
	b := &Client{Base: "http://127.0.0.1:1", ClientID: "node-7"}
	da := drawSchedule(a, 8)
	db := drawSchedule(b, 8)
	if !reflect.DeepEqual(da, db) {
		t.Fatalf("equal configs drew different schedules:\n%v\n%v", da, db)
	}
	for k, d := range da {
		window := 50 * time.Millisecond << k
		if window > 2*time.Second || window <= 0 {
			window = 2 * time.Second
		}
		if d < 0 || d > window {
			t.Errorf("draw %d = %v outside [0, %v]", k+1, d, window)
		}
	}
}

func TestClientBackoffVariesByIdentity(t *testing.T) {
	a := &Client{Base: "http://127.0.0.1:1", ClientID: "node-7"}
	c := &Client{Base: "http://127.0.0.1:1", ClientID: "node-8"}
	if reflect.DeepEqual(drawSchedule(a, 8), drawSchedule(c, 8)) {
		t.Fatal("different client IDs drew identical schedules; seed ignores identity")
	}
}

func TestClientBackoffInjectedRandWins(t *testing.T) {
	mk := func() *Client {
		return &Client{Base: "http://a", ClientID: "x", Rand: rand.New(rand.NewSource(42))}
	}
	if !reflect.DeepEqual(drawSchedule(mk(), 5), drawSchedule(mk(), 5)) {
		t.Fatal("injected Rand is not honored")
	}
}
