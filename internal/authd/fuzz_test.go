package authd

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/analysis"
)

// FuzzDecodeRequest drives arbitrary bytes through the bounded request
// decoder for every request kind, matching the internal/wire fuzz
// pattern. Properties: no panic, every failure maps into the typed
// error taxonomy (ErrTooLarge / ErrSyntax / ErrField), and every
// accepted request re-encodes to canonical JSON that decodes back to
// the identical value.
func FuzzDecodeRequest(f *testing.F) {
	lim := LimitsFromParams(analysis.Defaults())

	// Seed corpus: one valid body per kind, the empty-body default,
	// boundary values, and malformed variants the taxonomy must classify.
	f.Add(ReqProvision, []byte(`{"count":4,"tag":"platoon-7"}`))
	f.Add(ReqProvision, []byte(`{"count":1}`))
	f.Add(ReqProvision, []byte(``))
	f.Add(ReqJoin, []byte(`{"tag":"late-joiner"}`))
	f.Add(ReqJoin, []byte(`{}`))
	f.Add(ReqRevoke, []byte(`{"code":17,"reporter":"node-3"}`))
	f.Add(ReqRevoke, []byte(`{"code":0}`))
	f.Add(ReqProvision, []byte(`{"count":`))
	f.Add(ReqProvision, []byte(`{"cout":1}`))
	f.Add(ReqRevoke, []byte(`{"code":-1}`))
	f.Add(ReqJoin, []byte(`{} {}`))
	f.Add(ReqProvision, []byte(`{"count":999999999}`))
	f.Add(0, []byte(`{}`))

	f.Fuzz(func(t *testing.T, kind int, data []byte) {
		payload, err := DecodeRequest(kind, data, lim)
		if err != nil {
			if !errors.Is(err, ErrTooLarge) && !errors.Is(err, ErrSyntax) && !errors.Is(err, ErrField) {
				t.Fatalf("error outside taxonomy: %v", err)
			}
			return
		}
		again, err := EncodeRequest(payload)
		if err != nil {
			t.Fatalf("accepted request does not re-encode: %v", err)
		}
		payload2, err := DecodeRequest(kind, again, lim)
		if err != nil {
			t.Fatalf("canonical form does not re-decode: %v (body %s)", err, again)
		}
		if !reflect.DeepEqual(payload, payload2) {
			t.Fatalf("round trip diverged:\n in  %#v\n out %#v", payload, payload2)
		}
	})
}
