package authd

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestLoadgenMixedRunAgainstLoopback(t *testing.T) {
	_, cl := newTestServer(t, Config{Params: testParams(64, 4, 8), Seed: 5, Rate: -1})

	report, err := RunLoad(context.Background(), LoadConfig{
		Target:       cl.Base,
		Workers:      4,
		Requests:     80,
		MixProvision: 50, MixJoin: 20, MixRevoke: 30,
		Batch: 2,
		Seed:  42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Ops != 80 {
		t.Fatalf("ops = %d, want 80", report.Ops)
	}
	if report.Errors != 0 {
		t.Fatalf("errors = %d, want 0 (report: %s)", report.Errors, report.Format())
	}
	for _, op := range []string{"provision", "join", "revoke"} {
		st, ok := report.PerOp[op]
		if !ok || st.Count == 0 {
			t.Fatalf("op %q missing from the mix: %+v", op, report.PerOp)
		}
	}
	if report.Throughput <= 0 || report.P50 <= 0 || report.P99 < report.P50 {
		t.Fatalf("degenerate latency stats: throughput %.1f p50 %v p99 %v",
			report.Throughput, report.P50, report.P99)
	}
	out := report.Format()
	for _, want := range []string{"ops/s", "p50", "p99", "provision", "join", "revoke"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report output missing %q:\n%s", want, out)
		}
	}

	// 64 slots with up to 50%% provisions of batch 2 may exhaust; that is
	// a counted outcome, never an error.
	if st := report.PerOp["provision"]; st.Errors != 0 {
		t.Fatalf("provision errors = %d, want 0 (exhausted = %d)", st.Errors, st.Exhausted)
	}
}

func TestLoadgenValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := RunLoad(ctx, LoadConfig{}); err == nil {
		t.Fatal("empty config must fail")
	}
	if _, err := RunLoad(ctx, LoadConfig{Target: "http://x", Workers: 0, Requests: 1}); err == nil {
		t.Fatal("zero workers must fail")
	}
	if _, err := RunLoad(ctx, LoadConfig{Target: "http://x", Workers: 1, Requests: 0}); err == nil {
		t.Fatal("zero requests must fail")
	}
	if _, err := RunLoad(ctx, LoadConfig{Target: "http://x", Workers: 1, Requests: 1, MixJoin: -1}); err == nil {
		t.Fatal("negative mix weight must fail")
	}
}

func TestAggregateClassifiesOutcomes(t *testing.T) {
	samples := []sample{
		{op: "provision", latency: 2 * time.Millisecond},
		{op: "provision", latency: 4 * time.Millisecond, err: ErrExhausted},
		{op: "revoke", latency: time.Millisecond},
		{op: "join", latency: 3 * time.Millisecond, err: errors.New("boom")},
		{}, // cancelled slot
	}
	r := aggregate(samples, time.Second)
	if r.Ops != 4 {
		t.Fatalf("ops = %d, want 4 (cancelled slot excluded)", r.Ops)
	}
	if r.Errors != 1 {
		t.Fatalf("errors = %d, want 1", r.Errors)
	}
	if st := r.PerOp["provision"]; st.Count != 2 || st.Exhausted != 1 || st.Errors != 0 {
		t.Fatalf("provision stats = %+v", st)
	}
	if st := r.PerOp["join"]; st.Errors != 1 {
		t.Fatalf("join stats = %+v", st)
	}
	if r.Throughput != 4 {
		t.Fatalf("throughput = %v, want 4 ops/s", r.Throughput)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	lats := []time.Duration{5, 1, 4, 2, 3}
	if got := percentile(lats, 0.5); got != 3 {
		t.Fatalf("p50 = %v, want 3", got)
	}
	if got := percentile(lats, 0.99); got != 4 {
		t.Fatalf("p99 = %v (nearest rank below the max), want 4", got)
	}
	if got := percentile(lats, 1); got != 5 {
		t.Fatalf("p100 = %v, want 5", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty p50 = %v, want 0", got)
	}
}
