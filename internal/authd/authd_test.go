package authd

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/metrics"
)

// testParams returns a small parameter set the service tests run fast on.
func testParams(n, m, l int) analysis.Params {
	p := analysis.Defaults()
	p.N, p.M, p.L, p.Gamma = n, m, l, 2
	if p.Q > n {
		p.Q = 0
	}
	return p
}

func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, &Client{Base: "http://" + addr, ClientID: t.Name()}
}

func TestProvisionJoinRevokeEndToEnd(t *testing.T) {
	srv, cl := newTestServer(t, Config{Params: testParams(32, 4, 4), Seed: 7, Rate: -1})
	ctx := context.Background()

	if err := cl.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	// Provision a batch: sequential slots, m codes each.
	resp, err := cl.Provision(ctx, 3, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Nodes) != 3 {
		t.Fatalf("provisioned %d nodes, want 3", len(resp.Nodes))
	}
	for i, a := range resp.Nodes {
		if a.Node != i {
			t.Fatalf("node %d at index %d, want sequential slots", a.Node, i)
		}
		if len(a.Codes) != 4 {
			t.Fatalf("node %d got %d codes, want m=4", a.Node, len(a.Codes))
		}
	}

	// The assignment is visible through the sharded lookup.
	info, err := cl.Node(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Via != "provision" || info.Tag != "alpha" || len(info.Codes) != 4 {
		t.Fatalf("node record = %+v, want provision/alpha with 4 codes", info)
	}
	if _, err := cl.Node(ctx, 999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown node error = %v, want ErrNotFound", err)
	}

	// Join admits a node past the deployment.
	jr, err := cl.Join(ctx, "late")
	if err != nil {
		t.Fatal(err)
	}
	if jr.Node < 32 {
		t.Fatalf("joined node %d collides with deployment slots", jr.Node)
	}
	if len(jr.Codes) != 4 {
		t.Fatalf("joined node got %d codes, want 4", len(jr.Codes))
	}

	// Revoke crosses the γ=2 threshold on the third report, exactly once.
	revokedNow := 0
	for i := 0; i < 4; i++ {
		rr, err := cl.Revoke(ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rr.RevokedNow {
			revokedNow++
		}
		if i >= 2 && !rr.Revoked {
			t.Fatalf("report %d: code not revoked past γ", i+1)
		}
	}
	if revokedNow != 1 {
		t.Fatalf("RevokedNow observed %d times, want exactly 1", revokedNow)
	}

	// Out-of-pool code is a field error.
	if _, err := cl.Revoke(ctx, int32(srv.pool.S())); !errors.Is(err, ErrField) {
		t.Fatalf("out-of-pool revoke error = %v, want ErrField", err)
	}
}

func TestProvisionExhaustsDeploymentSlots(t *testing.T) {
	_, cl := newTestServer(t, Config{Params: testParams(8, 3, 4), Seed: 1, Rate: -1})
	ctx := context.Background()

	resp, err := cl.Provision(ctx, 6, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Nodes) != 6 {
		t.Fatalf("got %d nodes, want 6", len(resp.Nodes))
	}
	// Over-claim is clamped to the remaining slots.
	resp, err = cl.Provision(ctx, 6, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Nodes) != 2 {
		t.Fatalf("got %d nodes, want the 2 remaining", len(resp.Nodes))
	}
	// A further provision is a 409 → ErrExhausted.
	if _, err := cl.Provision(ctx, 1, ""); !errors.Is(err, ErrExhausted) {
		t.Fatalf("error = %v, want ErrExhausted", err)
	}
}

// TestJoinExhaustionAdvancesEpoch covers the §V-A late-join exhaustion
// path end-to-end through the service: consuming every pre-provisioned
// virtual-node slot forces the authority to run further distribution
// rounds, which advances the epoch counter visible via GET /v1/epoch.
func TestJoinExhaustionAdvancesEpoch(t *testing.T) {
	// n = 37, l = 8 → w = 5 subsets pad to 40: 3 vacant virtual slots.
	_, cl := newTestServer(t, Config{Params: testParams(37, 4, 8), Seed: 3, Rate: -1})
	ctx := context.Background()

	info, err := cl.Epoch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 0 || info.VacantSlots != 3 {
		t.Fatalf("initial epoch state = %+v, want epoch 0 with 3 vacant slots", info)
	}

	// The three vacant slots absorb three joins without expansion.
	for i := 0; i < 3; i++ {
		jr, err := cl.Join(ctx, "")
		if err != nil {
			t.Fatal(err)
		}
		if jr.Expanded || jr.Epoch != 0 {
			t.Fatalf("join %d: expanded=%v epoch=%d, want no expansion at epoch 0", i, jr.Expanded, jr.Epoch)
		}
	}

	// The fourth join exhausts the spares: the authority must run a
	// further batch of w = 5 rounds and the epoch advances.
	jr, err := cl.Join(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if !jr.Expanded || jr.Epoch != 1 {
		t.Fatalf("exhaustion join: expanded=%v epoch=%d, want expansion at epoch 1", jr.Expanded, jr.Epoch)
	}

	info, err = cl.Epoch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 1 {
		t.Fatalf("epoch = %d after expansion, want 1", info.Epoch)
	}
	if info.VacantSlots != 4 {
		t.Fatalf("vacant = %d after batch of 5 minus 1, want 4", info.VacantSlots)
	}
	if info.Joined != 4 {
		t.Fatalf("joined = %d, want 4", info.Joined)
	}

	// Drain the rest of the batch and push into a second expansion.
	for i := 0; i < 5; i++ {
		if _, err := cl.Join(ctx, ""); err != nil {
			t.Fatal(err)
		}
	}
	info, err = cl.Epoch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 2 {
		t.Fatalf("epoch = %d after 9 joins, want 2", info.Epoch)
	}
}

func TestRateLimiterRefusesAndRefills(t *testing.T) {
	clock := time.Unix(1000, 0)
	cfg := Config{
		Params: testParams(64, 3, 4),
		Seed:   1,
		Rate:   2, Burst: 2,
		now: func() time.Time { return clock },
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	do := func(client string) int {
		req := httptest.NewRequest(http.MethodPost, "/v1/provision", strings.NewReader(`{"count":1}`))
		req.Header.Set("X-Client-ID", client)
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, req)
		return w.Code
	}
	// Burst of 2, then refusal.
	if got := do("a"); got != http.StatusOK {
		t.Fatalf("request 1 = %d, want 200", got)
	}
	if got := do("a"); got != http.StatusOK {
		t.Fatalf("request 2 = %d, want 200", got)
	}
	if got := do("a"); got != http.StatusTooManyRequests {
		t.Fatalf("request 3 = %d, want 429", got)
	}
	// A different client has its own bucket.
	if got := do("b"); got != http.StatusOK {
		t.Fatalf("other client = %d, want 200", got)
	}
	// Half a second refills one token at 2 req/s.
	clock = clock.Add(500 * time.Millisecond)
	if got := do("a"); got != http.StatusOK {
		t.Fatalf("after refill = %d, want 200", got)
	}
	if got := do("a"); got != http.StatusTooManyRequests {
		t.Fatalf("bucket dry again = %d, want 429", got)
	}
	// GET routes are never limited.
	req := httptest.NewRequest(http.MethodGet, "/v1/epoch", nil)
	req.Header.Set("X-Client-ID", "a")
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("epoch while limited = %d, want 200", w.Code)
	}
	if srv.m.ratelimited.Value() != 2 {
		t.Fatalf("ratelimited counter = %d, want 2", srv.m.ratelimited.Value())
	}
}

// TestShutdownDrainsInflight parks a request inside a handler, starts a
// graceful shutdown, and asserts the shutdown waits for the request and
// the request completes successfully.
func TestShutdownDrainsInflight(t *testing.T) {
	srv, err := New(Config{Params: testParams(32, 3, 4), Seed: 1, Rate: -1})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.hookEntered = func(route string) {
		if route == "provision" {
			close(entered)
			<-release
		}
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := &Client{Base: "http://" + addr, MaxAttempts: 1}

	reqDone := make(chan error, 1)
	go func() {
		_, err := cl.Provision(context.Background(), 1, "drain")
		reqDone <- err
	}()
	<-entered

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()

	// The shutdown must not complete while the request is parked.
	select {
	case err := <-shutDone:
		t.Fatalf("shutdown returned %v with a request in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", err)
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	// After shutdown the listener is closed: a fresh request fails.
	if err := cl.Healthz(context.Background()); err == nil {
		t.Fatal("request succeeded after shutdown")
	}
}

func TestMetricsEndpointExposesCounters(t *testing.T) {
	reg := metrics.New()
	_, cl := newTestServer(t, Config{Params: testParams(32, 3, 4), Seed: 1, Rate: -1, Metrics: reg})
	ctx := context.Background()

	if _, err := cl.Provision(ctx, 2, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cl.Revoke(ctx, 5); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Join(ctx, ""); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(cl.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	snap, err := metrics.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{
		`authd_requests_total{route="provision"}`: 1,
		`authd_requests_total{route="revoke"}`:    3,
		`authd_requests_total{route="join"}`:      1,
		"authd_provisioned_nodes_total":           2,
		"authd_revoke_reports_total":              3,
		"authd_revoked_codes_total":               1,
		"authd_joins_total":                       1,
	}
	for name, v := range want {
		if got := snap.Counters[name]; got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
}

func TestDecodeErrorsSurfaceAsHTTPStatuses(t *testing.T) {
	srv, err := New(Config{Params: testParams(32, 3, 4), Seed: 1, Rate: -1})
	if err != nil {
		t.Fatal(err)
	}
	post := func(path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, req)
		return w
	}
	cases := []struct {
		name, path, body string
		wantStatus       int
	}{
		{"bad json", "/v1/provision", `{"count":`, http.StatusBadRequest},
		{"unknown field", "/v1/provision", `{"cout":1}`, http.StatusBadRequest},
		{"count too big", "/v1/provision", `{"count":100000}`, http.StatusBadRequest},
		{"negative code", "/v1/revoke", `{"code":-1}`, http.StatusBadRequest},
		{"trailing data", "/v1/join", `{} {}`, http.StatusBadRequest},
		{"oversized body", "/v1/provision", `{"tag":"` + strings.Repeat("x", 8192) + `"}`, http.StatusRequestEntityTooLarge},
		{"empty body ok", "/v1/provision", ``, http.StatusOK},
	}
	for _, tc := range cases {
		w := post(tc.path, tc.body)
		if w.Code != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, w.Code, tc.wantStatus, w.Body.String())
		}
		if w.Code >= 400 {
			var eb errorBody
			if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error == "" {
				t.Errorf("%s: error body %q not structured", tc.name, w.Body.String())
			}
		}
	}
	if srv.m.decodeErrors.Value() == 0 {
		t.Error("decode error counter never incremented")
	}
	// Method mismatch is 405 with an Allow header.
	req := httptest.NewRequest(http.MethodGet, "/v1/provision", nil)
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed || w.Header().Get("Allow") != http.MethodPost {
		t.Errorf("GET on provision: %d Allow=%q", w.Code, w.Header().Get("Allow"))
	}
}

func TestClientRetriesWithFullJitterBackoff(t *testing.T) {
	// A flaky upstream: two 503s, then success.
	var calls int
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(w).Encode(EpochInfo{Epoch: 42, PoolSize: 1})
	}))
	defer upstream.Close()

	cl := &Client{
		Base:        upstream.URL,
		MaxAttempts: 4,
		BackoffBase: time.Microsecond,
	}
	info, err := cl.Epoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 42 || calls != 3 {
		t.Fatalf("epoch %d after %d calls, want 42 after 3", info.Epoch, calls)
	}

	// Non-retryable statuses fail immediately.
	calls = 0
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.WriteHeader(http.StatusConflict)
		_ = json.NewEncoder(w).Encode(errorBody{Error: "deployment slots exhausted"})
	}))
	defer bad.Close()
	cl = &Client{Base: bad.URL, MaxAttempts: 5, BackoffBase: time.Microsecond}
	if _, err := cl.Provision(context.Background(), 1, ""); !errors.Is(err, ErrExhausted) {
		t.Fatalf("error = %v, want ErrExhausted", err)
	}
	if calls != 1 {
		t.Fatalf("409 retried %d times, want exactly 1 call", calls)
	}
}

func TestRegistryShardingInvariants(t *testing.T) {
	r := newRegistry(4)
	for node := 0; node < 100; node++ {
		if err := r.insert(node, record{Via: "provision"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.insert(7, record{}); err == nil {
		t.Fatal("double insert must fail")
	}
	if r.count() != 100 {
		t.Fatalf("count = %d, want 100", r.count())
	}
	if _, ok := r.get(-1); ok {
		t.Fatal("negative node must not resolve")
	}
}
