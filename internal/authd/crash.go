package authd

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
	"repro/internal/codepool"
)

// Crash-fault injection for the durability layer, in the spirit of
// internal/faults' chaos matrix: instead of jamming the radio, we kill the
// authority process at the worst possible instants of its write path and
// assert that kill-restart-replay preserves the recovery invariants:
//
//   - no deployment slot is ever assigned twice,
//   - no acknowledged mutation is lost,
//   - the exactly-one-revocation guarantee survives the restart,
//   - the distribution epoch never moves backwards.
//
// The hooks are threaded through Durability.CrashHook: production servers
// pass nil and pay a single predictable branch; the in-process matrix
// below panics a sentinel at the armed point (the "kill"), and the
// subprocess harness in cmd/jrsnd-authority calls os.Exit so the process
// dies with its locks held and its buffers unflushed, like a real crash.

// CrashPoint names one instant in the durability write path where a crash
// is interesting. The points bracket every durability transition: before
// the record exists, mid-write (a torn record), after the record but
// before the acknowledgment, and the two halves of the snapshot-truncate
// handoff.
type CrashPoint string

const (
	// CrashPreAppend: the mutation is applied in memory but no WAL bytes
	// have been written. The un-acknowledged mutation must vanish on
	// replay.
	CrashPreAppend CrashPoint = "pre-append"
	// CrashMidAppend: half the record's bytes are on disk — a torn tail.
	// Recovery must truncate it away.
	CrashMidAppend CrashPoint = "mid-append"
	// CrashPostAppend: the record is durable but the client never saw the
	// acknowledgment. Replay resurrects it (at-least-once).
	CrashPostAppend CrashPoint = "post-append"
	// CrashMidSnapshot: the snapshot tmp file is half-written. Recovery
	// must discard it and replay from the previous snapshot + full WAL.
	CrashMidSnapshot CrashPoint = "mid-snapshot"
	// CrashMidTruncate: the new snapshot is durably renamed but the WAL
	// has not been truncated yet. Replay must skip the WAL prefix the
	// snapshot already covers.
	CrashMidTruncate CrashPoint = "mid-truncate"
)

// CrashPoints lists every defined point, in write-path order.
var CrashPoints = []CrashPoint{
	CrashPreAppend, CrashMidAppend, CrashPostAppend, CrashMidSnapshot, CrashMidTruncate,
}

// CrashHook receives each crash point as the write path passes it. A hook
// that wants to "crash" there panics (in-process harness) or exits the
// process (subprocess harness); returning normally lets the write
// continue.
type CrashHook func(CrashPoint)

// crashSignal is the sentinel the in-process matrix panics with; the
// cycle driver recovers it and abandons the server instance, exactly as
// if the process had died there.
type crashSignal struct{ point CrashPoint }

// CrashConfig configures RunCrashMatrix.
type CrashConfig struct {
	// Dir is the root data directory; each crash point gets a
	// subdirectory that survives across that point's kill-restart cycles.
	Dir string
	// Params sizes the pool. Keep N small so provisions exhaust and joins
	// force batch expansions within a cycle.
	Params analysis.Params
	// Seed drives the pool and the operation mix.
	Seed int64
	// Cycles is the kill-restart count per crash point (0 = 6).
	Cycles int
	// OpsPerCycle bounds the mutations attempted per cycle (0 = 48).
	OpsPerCycle int
	// SnapshotEvery triggers a snapshot every this many driver ops
	// (0 = 16), so the snapshot/truncate points actually fire.
	SnapshotEvery int
}

// CrashReport is one crash point's outcome.
type CrashReport struct {
	Point    CrashPoint
	Cycles   int
	Crashes  int // cycles that actually died at the armed point
	AckedOps int // mutations acknowledged across all cycles
	// Violations lists every invariant breach observed; empty means the
	// point passed.
	Violations []string
}

// Passed reports whether the point held every invariant.
func (r CrashReport) Passed() bool { return len(r.Violations) == 0 }

// RunCrashMatrix runs the kill-restart loop at every crash point and
// returns one report per point. Deterministic in (Params, Seed) up to
// wall-clock timestamps, which the invariants never read.
func RunCrashMatrix(cfg CrashConfig) ([]CrashReport, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("authd: crash matrix needs a data directory")
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("authd: crash matrix: %w", err)
	}
	if cfg.Cycles <= 0 {
		cfg.Cycles = 6
	}
	if cfg.OpsPerCycle <= 0 {
		cfg.OpsPerCycle = 48
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 16
	}
	reports := make([]CrashReport, 0, len(CrashPoints))
	for i, point := range CrashPoints {
		reports = append(reports, runCrashPoint(point, i, cfg))
	}
	return reports, nil
}

// crashLedger is the harness's durable memory of what the authority
// acknowledged — the ground truth recovery is checked against. Recovered
// state may contain *more* than the ledger (a CrashPostAppend mutation is
// durable but unacknowledged; at-least-once is the contract), never less.
type crashLedger struct {
	nodes          map[int]ackedAssign
	maxEpoch       int
	revokeAcks     map[int32]int // acknowledged reports per code
	revokedNowAcks map[int32]int // acknowledged RevokedNow per code
}

type ackedAssign struct {
	codes string // fmt.Sprint fingerprint of the code set
	via   string
}

func newCrashLedger() *crashLedger {
	return &crashLedger{
		nodes:          map[int]ackedAssign{},
		revokeAcks:     map[int32]int{},
		revokedNowAcks: map[int32]int{},
	}
}

// runCrashPoint hammers one point: open → verify recovery → mutate until
// the armed crash fires (or the cycle's op budget runs out) → abandon or
// drain → repeat. The data directory persists across cycles; the ledger
// persists across the whole point.
func runCrashPoint(point CrashPoint, idx int, cfg CrashConfig) CrashReport {
	rep := CrashReport{Point: point, Cycles: cfg.Cycles}
	led := newCrashLedger()
	dir := filepath.Join(cfg.Dir, string(point))
	rng := rand.New(rand.NewSource(cfg.Seed + int64(idx)*7919))
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		runCrashCycle(point, dir, cfg, rng, led, &rep)
		if len(rep.Violations) > 8 {
			break // the point is broken; stop piling on
		}
	}
	// Determinism fingerprint: two clean recoveries of the final directory
	// must agree bit for bit — replay has no hidden inputs.
	fp1, err1 := crashFingerprint(dir, cfg)
	fp2, err2 := crashFingerprint(dir, cfg)
	switch {
	case err1 != nil:
		rep.Violations = append(rep.Violations, fmt.Sprintf("final recovery failed: %v", err1))
	case err2 != nil:
		rep.Violations = append(rep.Violations, fmt.Sprintf("second recovery failed: %v", err2))
	case fp1 != fp2:
		rep.Violations = append(rep.Violations, "recovery is nondeterministic: two replays of the same directory disagree")
	}
	return rep
}

// runCrashCycle runs one open-verify-mutate-kill cycle.
func runCrashCycle(point CrashPoint, dir string, cfg CrashConfig, rng *rand.Rand, led *crashLedger, rep *CrashReport) {
	hits, target := 0, 1+rng.Intn(4)
	hook := func(q CrashPoint) {
		if q == point {
			hits++
			if hits == target {
				panic(crashSignal{point: q})
			}
		}
	}
	s, err := New(Config{
		Params: cfg.Params,
		Seed:   cfg.Seed,
		Rate:   -1,
		Durable: Durability{
			Dir:           dir,
			SnapshotEvery: -1, // the driver snapshots explicitly
			FsyncEvery:    1,
			CrashHook:     hook,
		},
	})
	if err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("recovery failed: %v", err))
		return
	}
	verifyRecovered(s, led, rep)

	// The pool only grows, so the boot-time size is always a valid revoke
	// range.
	s.poolMu.RLock()
	poolSize := s.pool.S()
	s.poolMu.RUnlock()

	crashed := false
	for i := 0; i < cfg.OpsPerCycle && !crashed; i++ {
		crashed = runCrashOp(s, i, poolSize, cfg, rng, led, rep)
	}
	if crashed {
		rep.Crashes++
		s.wal.abandon() // the "dead" process's fd goes away; state is disk-only now
		return
	}
	if err := s.wal.close(); err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("clean close failed: %v", err))
	}
}

// runCrashOp performs one driver operation directly against the server's
// mutation path (the HTTP layer is exercised by the subprocess harness in
// cmd/jrsnd-authority), recording every acknowledged result in the
// ledger. It reports whether the armed crash fired.
func runCrashOp(s *Server, i, poolSize int, cfg CrashConfig, rng *rand.Rand, led *crashLedger, rep *CrashReport) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashSignal); ok {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	if i > 0 && i%cfg.SnapshotEvery == 0 {
		if err := s.Snapshot(); err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("snapshot failed: %v", err))
		}
	}
	switch pick := rng.Intn(100); {
	case pick < 45:
		out, _, err := s.provision(1+rng.Intn(3), "crash")
		switch {
		case err == nil:
			for _, a := range out {
				led.ackNode(a.Node, a.Codes, "provision", rep)
				rep.AckedOps++
			}
			led.observeEpoch(s.Epoch())
		case !errors.Is(err, ErrExhausted):
			rep.Violations = append(rep.Violations, fmt.Sprintf("provision error: %v", err))
		}
	case pick < 70:
		a, _, _, err := s.join("crash")
		if err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("join error: %v", err))
			return false
		}
		led.ackNode(a.Node, a.Codes, "join", rep)
		led.observeEpoch(s.Epoch())
		rep.AckedOps++
	default:
		code := int32(rng.Intn(poolSize))
		res, err := s.revoke(codepool.CodeID(code))
		if err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("revoke error: %v", err))
			return false
		}
		led.revokeAcks[code]++
		if res.RevokedNow {
			led.revokedNowAcks[code]++
			if led.revokedNowAcks[code] > 1 {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("code %d acknowledged RevokedNow %d times", code, led.revokedNowAcks[code]))
			}
		}
		rep.AckedOps++
	}
	return false
}

// ackNode records one acknowledged assignment, flagging a double
// assignment immediately: the authority must never acknowledge the same
// node twice across its whole (restarting) lifetime.
func (l *crashLedger) ackNode(node int, codes []codepool.CodeID, via string, rep *CrashReport) {
	fp := fmt.Sprint(codes)
	if prev, ok := l.nodes[node]; ok {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("node %d assigned twice (%s then %s)", node, prev.via, via))
		return
	}
	l.nodes[node] = ackedAssign{codes: fp, via: via}
}

func (l *crashLedger) observeEpoch(e int) {
	if e > l.maxEpoch {
		l.maxEpoch = e
	}
}

// verifyRecovered checks a freshly recovered server against everything
// the ledger knows was acknowledged before the kill.
func verifyRecovered(s *Server, led *crashLedger, rep *CrashReport) {
	for node, want := range led.nodes {
		rec, ok := s.reg.get(node)
		switch {
		case !ok:
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("acknowledged %s of node %d lost by recovery", want.via, node))
		case fmt.Sprint(rec.Codes) != want.codes:
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("node %d recovered with different codes (%s vs acked %s)", node, fmt.Sprint(rec.Codes), want.codes))
		}
	}
	if e := s.Epoch(); e < led.maxEpoch {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("epoch regressed: recovered %d < acknowledged %d", e, led.maxEpoch))
	}
	gamma := s.rev.Gamma()
	for code, acks := range led.revokeAcks {
		if acks > gamma && !s.rev.Revoked(codepool.CodeID(code)) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("code %d had %d acknowledged reports (γ=%d) but is not revoked after recovery", code, acks, gamma))
		}
	}
	for code, n := range led.revokedNowAcks {
		if n > 0 && !s.rev.Revoked(codepool.CodeID(code)) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("code %d's acknowledged revocation lost by recovery", code))
		}
	}
}

// crashFingerprint opens the directory cleanly and reduces the recovered
// state to a canonical string: registry contents, epoch, cursor, WAL
// position, and the whole revocation table.
func crashFingerprint(dir string, cfg CrashConfig) (string, error) {
	s, err := New(Config{
		Params:  cfg.Params,
		Seed:    cfg.Seed,
		Rate:    -1,
		Durable: Durability{Dir: dir, SnapshotEvery: -1, FsyncEvery: 1},
	})
	if err != nil {
		return "", err
	}
	defer func() { _ = s.wal.close() }()
	return s.stateFingerprint(), nil
}

// stateFingerprint reduces the server's durable-relevant state to a
// canonical string (timestamps excluded — they are wall-clock, not
// replayed decisions). Two servers recovered from the same directory must
// fingerprint identically.
func (s *Server) stateFingerprint() string {
	var b []byte
	seq := uint64(0)
	if s.wal != nil {
		seq = s.wal.lastSeq()
	}
	b = fmt.Appendf(b, "epoch=%d cursor=%d seq=%d\n", s.Epoch(), s.nextSlot.Load(), seq)
	if s.repl != nil {
		// The replication fingerprint chain is durable-relevant state too:
		// two replicas recovered from the same history must agree on it, or
		// the divergence check would misfire after a restart.
		b = fmt.Appendf(b, "fp=%016x\n", s.repl.chainFP())
	}
	for _, e := range s.reg.dump() {
		b = fmt.Appendf(b, "node %d via %s tag %q codes %v\n", e.Node, e.Rec.Via, e.Rec.Tag, e.Rec.Codes)
	}
	st := s.rev.Dump()
	codes := make([]codepool.CodeID, 0, len(st.Counters))
	for c := range st.Counters {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	for _, c := range codes {
		b = fmt.Appendf(b, "code %d count %d\n", c, st.Counters[c])
	}
	b = fmt.Appendf(b, "revoked %v\n", st.Revoked)
	return string(b)
}

// FormatCrashReports renders the matrix outcome for humans, one line per
// point plus every violation.
func FormatCrashReports(reports []CrashReport) string {
	var b []byte
	for _, r := range reports {
		status := "ok"
		if !r.Passed() {
			status = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
		}
		b = fmt.Appendf(b, "crash point %-13s %d cycles, %d crashes, %d acked ops: %s\n",
			r.Point, r.Cycles, r.Crashes, r.AckedOps, status)
		for _, v := range r.Violations {
			b = fmt.Appendf(b, "  violation: %s\n", v)
		}
	}
	return string(b)
}
