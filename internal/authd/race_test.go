package authd

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/codepool"
)

// TestConcurrentProvisionJoinRevoke hammers one Server with parallel
// provision + join + revoke traffic from many goroutines (run under
// -race via `make tier1`) and asserts the two service-level safety
// properties: no deployment slot or joined node ID is ever handed to two
// clients, and of all concurrent reports for one code exactly one
// observes the revocation.
func TestConcurrentProvisionJoinRevoke(t *testing.T) {
	const (
		provisioners = 8
		joiners      = 6
		revokers     = 8
		perWorker    = 12
	)
	srv, err := New(Config{Params: testParams(200, 4, 8), Seed: 11, Rate: -1, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()

	var (
		mu         sync.Mutex
		nodes      []int
		revokedNow = map[int32]int{}
	)
	var wg sync.WaitGroup

	for w := 0; w < provisioners; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := &Client{Base: ts.URL, ClientID: "prov", MaxAttempts: 1}
			for i := 0; i < perWorker; i++ {
				resp, err := cl.Provision(ctx, 3, "race")
				if errors.Is(err, ErrExhausted) {
					return
				}
				if err != nil {
					t.Errorf("provision: %v", err)
					return
				}
				mu.Lock()
				for _, a := range resp.Nodes {
					nodes = append(nodes, a.Node)
				}
				mu.Unlock()
			}
		}(w)
	}
	for w := 0; w < joiners; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := &Client{Base: ts.URL, ClientID: "join", MaxAttempts: 1}
			for i := 0; i < perWorker; i++ {
				resp, err := cl.Join(ctx, "race")
				if err != nil {
					t.Errorf("join: %v", err)
					return
				}
				mu.Lock()
				nodes = append(nodes, resp.Node)
				mu.Unlock()
			}
		}()
	}
	// All revokers gang up on the same few codes, far past γ.
	targets := []int32{0, 1, 2}
	for w := 0; w < revokers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := &Client{Base: ts.URL, ClientID: "rev", MaxAttempts: 1}
			for i := 0; i < perWorker; i++ {
				for _, code := range targets {
					rr, err := cl.Revoke(ctx, code)
					if err != nil {
						t.Errorf("revoke: %v", err)
						return
					}
					if rr.RevokedNow {
						mu.Lock()
						revokedNow[code]++
						mu.Unlock()
					}
				}
			}
		}()
	}
	wg.Wait()

	// No node ID was ever assigned twice.
	seen := map[int]bool{}
	for _, n := range nodes {
		if seen[n] {
			t.Fatalf("node %d assigned to two clients", n)
		}
		seen[n] = true
	}
	// Every provisioned and joined node has a consistent record.
	for _, n := range nodes {
		rec, ok := srv.reg.get(n)
		if !ok {
			t.Fatalf("node %d missing from the registry", n)
		}
		if len(rec.Codes) != 4 {
			t.Fatalf("node %d has %d codes, want 4", n, len(rec.Codes))
		}
	}
	// Exactly one revocation per hammered code.
	for _, code := range targets {
		if got := revokedNow[code]; got != 1 {
			t.Fatalf("code %d observed RevokedNow %d times, want exactly 1", code, got)
		}
		if !srv.rev.Revoked(codepool.CodeID(code)) {
			t.Fatalf("code %d not revoked after the hammer", code)
		}
	}
	// The epoch advanced at least once: 200 deployment slots with l=8
	// leave no vacant slots, so the very first join expanded.
	if srv.Epoch() < 1 {
		t.Fatalf("epoch = %d after %d joins, want >= 1", srv.Epoch(), joiners*perWorker)
	}
}
