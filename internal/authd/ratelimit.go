package authd

import (
	"hash/fnv"
	"sync"
	"time"
)

// Per-client token-bucket rate limiting, the defense pattern of
// internal/core/defense.go lifted from virtual to wall-clock time: each
// client (keyed by the X-Client-ID header, falling back to the remote
// host) owns a bucket of depth Burst refilling at Rate tokens/s, and a
// mutating request that finds the bucket empty is refused with 429.
// Buckets live in the same shard layout as the registry so hot clients
// on different shards never contend, and idle buckets are swept once a
// shard grows past a bound — the limiter's memory is O(active clients),
// not O(every client ever seen).

// sweepAt is the per-shard bucket count that triggers an idle sweep.
const sweepAt = 4096

type bucket struct {
	tokens float64
	last   time.Time
}

type limShard struct {
	mu      sync.Mutex
	buckets map[string]*bucket
}

type limiter struct {
	shards []limShard
	rate   float64
	burst  float64
	now    func() time.Time
}

func newLimiter(shards int, rate float64, burst int, now func() time.Time) *limiter {
	l := &limiter{
		shards: make([]limShard, shards), //jrsnd:allow boundedalloc shards is operator config validated by New (Shards >= 1), never a wire-decoded count
		rate:   rate,
		burst:  float64(burst),
		now:    now,
	}
	for i := range l.shards {
		l.shards[i].buckets = make(map[string]*bucket)
	}
	return l
}

func (l *limiter) shard(client string) *limShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(client))
	return &l.shards[int(h.Sum32())%len(l.shards)]
}

// allow refills client's bucket by elapsed wall time and spends one
// token if available.
func (l *limiter) allow(client string) bool {
	now := l.now()
	sh := l.shard(client)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := sh.buckets[client]
	if b == nil {
		if len(sh.buckets) >= sweepAt {
			l.sweepLocked(sh, now)
		}
		b = &bucket{tokens: l.burst, last: now}
		sh.buckets[client] = b
	}
	if now.After(b.last) {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// sweepLocked drops buckets that have been idle long enough to refill
// completely — indistinguishable from a fresh bucket, so dropping them
// cannot grant extra tokens.
func (l *limiter) sweepLocked(sh *limShard, now time.Time) {
	full := time.Duration(l.burst / l.rate * float64(time.Second))
	for key, b := range sh.buckets {
		if now.Sub(b.last) >= full {
			delete(sh.buckets, key)
		}
	}
}
