package authd

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
)

// WAL codec + scan semantics: round-trips, the torn-tail rule, and the
// refuse-to-skip-a-middle-record rule.

func walCounters(t testing.TB) (*metrics.Counter, *metrics.Counter) {
	t.Helper()
	reg := metrics.New()
	return reg.Counter("test_appends", "t"), reg.Counter("test_fsyncs", "t")
}

func testWAL(t testing.TB, syncEvery int) *wal {
	t.Helper()
	appends, fsyncs := walCounters(t)
	w, err := openWAL(filepath.Join(t.TempDir(), walFileName), 0, syncEvery, nil, nil, appends, fsyncs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.close() })
	return w
}

func sampleRecords() []walRecord {
	return []walRecord{
		{Kind: walProvision, Start: 0, Count: 4, Tag: "batch-a", At: 111},
		{Kind: walJoin, Node: 48, Expanded: true, Tag: "late", At: 222},
		{Kind: walRevoke, Code: 17, At: 333},
		{Kind: walProvision, Start: 4, Count: 1, At: 444},
		{Kind: walJoin, Node: 49, At: 555},
	}
}

func TestWALRoundTrip(t *testing.T) {
	w := testWAL(t, 1)
	want := sampleRecords()
	for _, rec := range want {
		if _, err := w.append(rec, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.lastSeq(); got != uint64(len(want)) {
		t.Fatalf("lastSeq %d, want %d", got, len(want))
	}
	data, err := os.ReadFile(w.path)
	if err != nil {
		t.Fatal(err)
	}
	recs, goodLen, err := scanWAL(data)
	if err != nil {
		t.Fatal(err)
	}
	if goodLen != len(data) {
		t.Fatalf("goodLen %d of %d", goodLen, len(data))
	}
	if len(recs) != len(want) {
		t.Fatalf("%d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d", i, rec.Seq)
		}
		exp := want[i]
		exp.Seq = uint64(i + 1)
		if rec != exp {
			t.Errorf("record %d: %+v, want %+v", i, rec, exp)
		}
	}
}

func TestWALTornTailTruncates(t *testing.T) {
	w := testWAL(t, 1)
	for _, rec := range sampleRecords() {
		if _, err := w.append(rec, 0); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(w.path)
	if err != nil {
		t.Fatal(err)
	}
	full, fullLen, err := scanWAL(data)
	if err != nil || fullLen != len(data) {
		t.Fatalf("clean scan: %v", err)
	}
	// Every proper prefix that tears the last record must scan to exactly
	// the records before it.
	lastStart := 0
	for i := 0; i < len(full)-1; i++ {
		_, n, err := parseWALRecord(data[lastStart:])
		if err != nil {
			t.Fatal(err)
		}
		lastStart += n
	}
	for cut := lastStart + 1; cut < len(data); cut++ {
		recs, goodLen, err := scanWAL(data[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if goodLen != lastStart {
			t.Fatalf("cut %d: goodLen %d, want %d", cut, goodLen, lastStart)
		}
		if len(recs) != len(full)-1 {
			t.Fatalf("cut %d: %d records, want %d", cut, len(recs), len(full)-1)
		}
	}
}

func TestWALMiddleCorruptionRefused(t *testing.T) {
	w := testWAL(t, 1)
	for _, rec := range sampleRecords() {
		if _, err := w.append(rec, 0); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(w.path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the second record's body: a damaged record with
	// valid successors is a lost acknowledged mutation, not a torn tail.
	_, n0, err := parseWALRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte(nil), data...)
	corrupted[n0+walHeaderLen+2] ^= 0xFF
	if _, _, err := scanWAL(corrupted); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("scan of middle-corrupted log: %v, want ErrWALCorrupt", err)
	}
}

func TestWALSequenceGapRefused(t *testing.T) {
	// Hand-build a log whose records are individually valid but whose
	// sequence numbers skip: 1 then 3.
	var data []byte
	var err error
	data, err = appendWALRecord(data, walRecord{Seq: 1, Kind: walRevoke, Code: 1, At: 1})
	if err != nil {
		t.Fatal(err)
	}
	data, err = appendWALRecord(data, walRecord{Seq: 3, Kind: walRevoke, Code: 2, At: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := scanWAL(data); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("scan of gapped log: %v, want ErrWALCorrupt", err)
	}
}

func TestWALStickyFailureAfterClose(t *testing.T) {
	w := testWAL(t, 1)
	if _, err := w.append(walRecord{Kind: walRevoke, Code: 1, At: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(walRecord{Kind: walRevoke, Code: 2, At: 2}, 0); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("append after close: %v, want ErrWALClosed", err)
	}
}

func TestWALRejectsOversizedTag(t *testing.T) {
	w := testWAL(t, 1)
	big := make([]byte, walMaxTag+1)
	for i := range big {
		big[i] = 'x'
	}
	if _, err := w.append(walRecord{Kind: walJoin, Node: 1, Tag: string(big), At: 1}, 0); err == nil {
		t.Fatal("oversized tag accepted")
	}
	// The failure is sticky by design (memory/log divergence).
	if _, err := w.append(walRecord{Kind: walRevoke, Code: 1, At: 1}, 0); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("append after encode failure: %v, want sticky ErrWALClosed", err)
	}
}

func TestWALGroupFsync(t *testing.T) {
	appends, fsyncs := walCounters(t)
	w, err := openWAL(filepath.Join(t.TempDir(), walFileName), 0, 8, nil, nil, appends, fsyncs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := w.append(walRecord{Kind: walRevoke, Code: int32(i), At: int64(i)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := fsyncs.Value(); got != 2 {
		t.Fatalf("fsyncs %d after 16 appends at syncEvery=8, want 2", got)
	}
	if got := appends.Value(); got != 16 {
		t.Fatalf("appends %d, want 16", got)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
}
